// EDA session: the paper's Figure 2 workflow. The analyst fires exploratory
// queries at a cyber-security log; each query result is displayed as an
// informative sub-table, re-using the embedding computed once at load time —
// which is why each display takes milliseconds, not the full pipeline cost.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"subtab"
)

func main() {
	ds, err := subtab.GenerateDataset("CY", 5000, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cyber log: %d rows x %d columns\n", ds.T.NumRows(), ds.T.NumCols())

	start := time.Now()
	opt := subtab.DefaultOptions()
	opt.Embedding = subtab.EmbeddingOptions{Dim: 24, Epochs: 3, Seed: 3}
	model, err := subtab.Preprocess(ds.T, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-processing (once): %s\n\n", time.Since(start).Round(time.Millisecond))

	session := []struct {
		title string
		q     *subtab.Query
	}{
		{"high-severity events", &subtab.Query{
			Where: []subtab.Predicate{{Col: "severity", Op: subtab.Eq, Str: "high"}},
		}},
		{"ssh traffic on port 22", &subtab.Query{
			Where: []subtab.Predicate{{Col: "dst_port", Op: subtab.Eq, Num: 22}},
		}},
		{"attacks by type (group-by)", &subtab.Query{
			GroupBy: []string{"attack_type"},
			Aggs:    []subtab.Aggregate{{Func: subtab.Count}, {Func: subtab.Mean, Col: "bytes_out"}},
		}},
		{"longest sessions first", &subtab.Query{
			OrderBy: "duration", Asc: false, Limit: 500,
		}},
	}

	failed := false
	for i, step := range session {
		start := time.Now()
		st, err := model.SelectQuery(step.q, 6, 6, nil)
		if err != nil {
			log.Printf("step %d (%s): %v", i+1, step.title, err)
			failed = true
			continue
		}
		fmt.Printf("step %d — %s\n  query: %s\n  selection took %s\n",
			i+1, step.title, step.q, time.Since(start).Round(time.Millisecond))
		fmt.Print(indent(st.View.String()))
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
