// Quickstart: build a table, pre-process it once, and display an
// informative sub-table — the minimal SubTab workflow.
package main

import (
	"fmt"
	"log"

	"subtab"
)

func main() {
	// A toy flights-like table; in practice use subtab.ReadCSVFile.
	ds, err := subtab.GenerateDataset("FL", 2000, 1)
	if err != nil {
		log.Fatal(err)
	}
	t := ds.T
	fmt.Printf("full table: %d rows x %d columns — too large to eyeball\n\n", t.NumRows(), t.NumCols())

	// Pre-processing runs once per table (binning + cell embedding).
	opt := subtab.DefaultOptions()
	opt.Embedding = subtab.EmbeddingOptions{Dim: 24, Epochs: 3, Seed: 1}
	model, err := subtab.Preprocess(t, opt)
	if err != nil {
		log.Fatal(err)
	}

	// Selection is interactive: here a 8x6 display of the whole table.
	st, err := model.Select(8, 6, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("informative 8x6 sub-table:")
	fmt.Print(st.View)
}
