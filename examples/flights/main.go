// Flights: the paper's running example (Figure 1). The analyst studies
// flight cancellations, so CANCELLED is a target column: it is forced into
// the sub-table and the mined rules that explain it are highlighted with
// [ ] markers — at most one rule per row, as in the paper's UI.
package main

import (
	"fmt"
	"log"

	"subtab"
)

func main() {
	ds, err := subtab.GenerateDataset("FL", 6000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flights table: %d rows x %d columns; task: understand CANCELLED\n\n",
		ds.T.NumRows(), ds.T.NumCols())

	opt := subtab.DefaultOptions()
	opt.Embedding = subtab.EmbeddingOptions{Dim: 32, Epochs: 3, Seed: 7}
	model, err := subtab.Preprocess(ds.T, opt)
	if err != nil {
		log.Fatal(err)
	}

	st, err := model.Select(10, 10, []string{"CANCELLED"})
	if err != nil {
		log.Fatal(err)
	}

	// Rules mined with the target column drive the highlighting.
	rs, err := subtab.MineRules(model, subtab.MiningOptions{
		TargetCols: []string{"CANCELLED"}, IncludeMissing: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	hl, perRow := subtab.Highlight(model, rs, st)

	fmt.Println("informative 10x10 sub-table (rule cells in [ ]):")
	fmt.Print(st.View.Render(hl))
	fmt.Println("\nhighlighted patterns:")
	for i, ri := range perRow {
		if ri >= 0 {
			fmt.Printf("  row %2d: %s\n", i+1, rs[ri].Label(model.B))
		}
	}
}
