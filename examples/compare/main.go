// Compare: score SubTab against the paper's baselines (RAN, NC, semi-greedy
// Algorithm 1) on one dataset with the paper's informativeness metrics —
// cell coverage (Def. 3.6), diversity (Def. 3.7) and the combined score.
package main

import (
	"fmt"
	"log"
	"time"

	"subtab"
)

func main() {
	ds, err := subtab.GenerateDataset("SP", 4000, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d rows x %d columns\n\n", ds.Name, ds.T.NumRows(), ds.T.NumCols())

	opt := subtab.DefaultOptions()
	opt.Embedding = subtab.EmbeddingOptions{Dim: 24, Epochs: 4, Seed: 11}
	model, err := subtab.Preprocess(ds.T, opt)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := subtab.MineRules(model, subtab.MiningOptions{})
	if err != nil {
		log.Fatal(err)
	}
	eval := subtab.NewEvaluator(model, rs, 0.5)
	fmt.Printf("mined %d association rules; upcov = %d describable cells\n\n", len(rs), eval.Upcov())

	const k, l = 10, 10
	report := func(name string, st subtab.MetricSubTable, took time.Duration) {
		fmt.Printf("%-8s  diversity %.3f  coverage %.3f  combined %.3f  (%s)\n",
			name, eval.Diversity(st), eval.CellCoverage(st), eval.Combined(st),
			took.Round(time.Millisecond))
	}

	start := time.Now()
	st, err := model.Select(k, l, nil)
	if err != nil {
		log.Fatal(err)
	}
	report("SubTab", st.AsMetricSubTable(), time.Since(start))

	ran, err := subtab.RandomBaseline(eval, subtab.RandomBaselineOptions{K: k, L: l, MaxIters: 25, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	report("RAN", ran.ST, ran.Elapsed)

	nc, err := subtab.NaiveClusteringBaseline(eval, subtab.NCBaselineOptions{K: k, L: l, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	report("NC", nc.ST, nc.Elapsed)

	gr, err := subtab.GreedyBaseline(eval, subtab.GreedyBaselineOptions{
		K: k, L: l, RandomOrder: true, MaxCombos: 6, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("Greedy", gr.ST, gr.Elapsed)
}
