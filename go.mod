module subtab

go 1.24
