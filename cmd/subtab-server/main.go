// Command subtab-server serves interactive sub-table selection over HTTP.
// Tables are uploaded as CSV, pre-processed once (bin → corpus → Word2Vec),
// cached in an LRU-bounded in-memory store, optionally persisted to disk,
// and then served to any number of concurrent sessions: select, query,
// rule-mining and highlighting all reuse the cached model, which is what
// turns the paper's one-off pre-processing cost into interactive request
// latencies.
//
// Usage:
//
//	subtab-server -addr :8080 -cache-dir /var/lib/subtab -max-models 8
//
// Pre-load tables at startup with name=path.csv arguments:
//
//	subtab-server flights=testdata/flights.csv
//
// Out-of-core serving: upload with store=1 to move a table's bin codes
// into an mmap'd code store beside the cached model (requires -cache-dir),
// and set -slab-budget to spill the sampled tuple-vector slab of scaled
// selects past that size; selections are byte-identical either way.
//
// Memory governance: -memory-budget caps the process's governed resident
// bytes — cached models, per-model vector and sample caches, coordinator
// sample caches, and in-flight select working sets — under one ledger
// (internal/memgov). Consumers growing past the budget shed cold models
// and caches; selects whose estimated working set cannot be admitted are
// refused with 429 + Retry-After, as are selects past -table-concurrency.
// See README.md "Memory model" for the full consumer table.
//
// Sharded serving: upload with shards=N to split a table's codes across N
// shard stores, then spread the shard files (plus a copy of the model
// file) across instances. Instances holding only some shards run with
// -shard-role worker; the instance clients talk to runs with -shard-role
// coordinator -shard-peers http://w1:8080,http://w2:8080 and serves
// scaled selections by scattering per-shard sample requests to its peers
// and merging — byte-identical to one instance holding every shard.
//
// API (see internal/serve and README.md for details):
//
//	GET    /healthz
//	GET    /tables
//	POST   /tables?name=N            (CSV body; store=1 = out-of-core)
//	GET    /tables/{name}
//	DELETE /tables/{name}
//	POST   /tables/{name}/append     (CSV body; incremental row ingestion)
//	POST   /tables/{name}/select     {"k":10,"l":10,"targets":[...]}
//	POST   /tables/{name}/query      {"query":{...},"k":10,"l":10}
//	GET    /tables/{name}/rules
//	POST   /shards/{name}/{idx}/sample  (shard-exec, instance-to-instance)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"subtab"
	"subtab/internal/memgov"
	"subtab/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("subtab-server: ")

	var (
		addr      = flag.String("addr", ":8080", "listen address")
		cacheDir  = flag.String("cache-dir", "", "persist pre-processed models to this directory (empty = memory only)")
		maxModels = flag.Int("max-models", serve.DefaultMaxModels, "models kept in memory (LRU; effective only with -cache-dir, memory-only stores never evict)")
		seed      = flag.Int64("seed", 1, "default pipeline seed for uploaded tables")
		timeout   = flag.Duration("shutdown-timeout", 15*time.Second, "graceful shutdown grace period")
		withPprof = flag.Bool("pprof", false, "expose net/http/pprof endpoints under /debug/pprof/ (profile serving hot spots in place)")
		memBudget = flag.String("memory-budget", "", "process-wide budget for every governed resident byte consumer — cached models, per-model vector/sample caches, coordinator sample caches, in-flight select working sets — e.g. 512MiB (plain bytes, or KiB/MiB/GiB). Growth past it evicts cold models and caches; selects that cannot be admitted get 429 + Retry-After. Empty = ungoverned. NOTE: before the governor this flag named the per-request slab spill budget, now spelled -slab-budget")
		slabFlag  = flag.String("slab-budget", "", "default per-request budget for the sampled tuple-vector slab, e.g. 64MiB; selections whose slab exceeds it spill to a temp file. Empty = never spill. Overridable per request via the select body's scale.slab_budget")
		tableConc = flag.Int("table-concurrency", 0, "max selects running concurrently against one table; excess requests are refused with 429. 0 = unlimited")
		shardRole = flag.String("shard-role", "", `role in a sharded deployment: "worker" (holds some shards of sharded tables, answers shard-exec requests) or "coordinator" (scatters scaled selects to -shard-peers). Empty = standalone: sharded tables must be fully local`)
		peerList  = flag.String("shard-peers", "", "comma-separated base URLs of the instances holding this server's missing shards (coordinator role only)")
	)
	flag.Parse()
	memoryBudget, err := parseByteSize(*memBudget)
	if err != nil {
		log.Fatalf("-memory-budget: %v", err)
	}
	slabBudget, err := parseByteSize(*slabFlag)
	if err != nil {
		log.Fatalf("-slab-budget: %v", err)
	}
	shardOpt, err := parseShardFlags(*shardRole, *peerList, *cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	lim := limitsConfig{memoryBudget: memoryBudget, slabBudget: slabBudget, tableConcurrency: *tableConc}
	if err := run(*addr, *cacheDir, *maxModels, *seed, lim, *timeout, *withPprof, shardOpt, flag.Args()); err != nil {
		log.Fatal(err)
	}
}

// limitsConfig carries the parsed resource-limit flags into run.
type limitsConfig struct {
	memoryBudget     int64 // process-wide governed budget (0 = ungoverned)
	slabBudget       int64 // per-request slab spill threshold (0 = never spill)
	tableConcurrency int   // concurrent selects per table (0 = unlimited)
}

// shardConfig is the validated form of the -shard-role/-shard-peers pair.
type shardConfig struct {
	role  string
	peers []string
}

func parseShardFlags(role, peerList, cacheDir string) (shardConfig, error) {
	var peers []string
	for _, p := range strings.Split(peerList, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	switch role {
	case "":
		if len(peers) > 0 {
			return shardConfig{}, fmt.Errorf("-shard-peers requires -shard-role coordinator")
		}
	case "worker":
		if len(peers) > 0 {
			return shardConfig{}, fmt.Errorf("-shard-peers is a coordinator flag; workers only answer shard-exec requests")
		}
	case "coordinator":
		if len(peers) == 0 {
			return shardConfig{}, fmt.Errorf("-shard-role coordinator requires -shard-peers")
		}
	default:
		return shardConfig{}, fmt.Errorf("-shard-role: want worker or coordinator, got %q", role)
	}
	if role != "" && cacheDir == "" {
		return shardConfig{}, fmt.Errorf("-shard-role %s requires -cache-dir (shard files live in the model cache)", role)
	}
	return shardConfig{role: role, peers: peers}, nil
}

// parseByteSize parses a byte count with an optional KiB/MiB/GiB suffix.
func parseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30}} {
		if strings.HasSuffix(s, u.suffix) {
			mult, s = u.mult, strings.TrimSuffix(s, u.suffix)
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 || n > math.MaxInt64/mult {
		return 0, fmt.Errorf("want a non-negative byte count with optional KiB/MiB/GiB suffix, got %q", s)
	}
	return n * mult, nil
}

func run(addr, cacheDir string, maxModels int, seed int64, lim limitsConfig, timeout time.Duration, withPprof bool, shardOpt shardConfig, preload []string) error {
	opt := subtab.DefaultOptions()
	opt.Bins.Seed = seed
	opt.Corpus.Seed = seed
	opt.Embedding.Seed = seed
	opt.ClusterSeed = seed
	opt.Scale.SlabBudgetBytes = lim.slabBudget

	var gov *memgov.Governor
	if lim.memoryBudget > 0 {
		gov = memgov.New(lim.memoryBudget)
		log.Printf("memory governor: budget %d bytes", lim.memoryBudget)
	}
	sopt := serve.StoreOptions{MaxModels: maxModels, Dir: cacheDir, Governor: gov}
	if shardOpt.role != "" {
		// Workers and coordinators both load sharded models whose files are
		// spread across instances; only the coordinator can sample the
		// missing shards from peers.
		sopt.AllowMissingShards = true
	}
	// The PrepareModel hook closes over the store it is installed into: it
	// only runs on disk loads, which cannot happen before NewStore returns.
	var store *serve.Store
	if shardOpt.role == "coordinator" {
		peers := shardOpt.peers
		sopt.PrepareModel = func(name string, m *subtab.Model) error {
			src := m.ShardSource()
			if src == nil || src.Complete() {
				return nil
			}
			popt := serve.ShardPeersOptions{
				Peers: peers,
				// Key the sampler's cross-request caches to the table's
				// replacement generation, so replacing a sharded table
				// invalidates samples gathered against its predecessor.
				Generation: func() uint64 { return store.Generation(name) },
				Governor:   gov,
			}
			sampler, err := serve.NewShardSampler(name, m, popt)
			if err != nil {
				return err
			}
			m.SetShardSampler(sampler)
			log.Printf("table %s: coordinating %d shards across %d peers", name, src.NumShards(), len(peers))
			return nil
		}
	}
	store = serve.NewStore(sopt)
	svc := serve.NewService(store, opt)
	if gov != nil || lim.tableConcurrency > 0 {
		svc.SetAdmission(gov, lim.tableConcurrency)
	}
	if shardOpt.role != "" {
		log.Printf("shard role: %s (peers: %s)", shardOpt.role, strings.Join(shardOpt.peers, ", "))
	}

	// Pre-load name=path.csv tables so the server starts warm. A table that
	// is already in the disk cache is served from there; Preprocess runs
	// only for genuinely new data.
	for _, arg := range preload {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			return fmt.Errorf("bad preload argument %q, want name=path.csv", arg)
		}
		start := time.Now()
		if store.Contains(name) {
			log.Printf("preload %s: already cached", name)
			continue
		}
		t, err := subtab.ReadCSVFile(path)
		if err != nil {
			return fmt.Errorf("preload %s: %w", name, err)
		}
		m, err := svc.AddTable(name, t, nil, false)
		if err != nil {
			return fmt.Errorf("preload %s: %w", name, err)
		}
		log.Printf("preload %s: %d rows x %d cols in %s",
			name, m.T.NumRows(), m.T.NumCols(), time.Since(start).Round(time.Millisecond))
	}

	var handler http.Handler = serve.NewHandler(svc, log.Default())
	if withPprof {
		// The profiling endpoints share the API listener so a warm serving
		// process can be profiled exactly as deployed; they are off by
		// default because they expose stacks and heap contents.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Print("pprof endpoints enabled at /debug/pprof/")
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (cache-dir=%q, max-models=%d)", addr, cacheDir, maxModels)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("received %s, draining connections", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Print("bye")
	return nil
}
