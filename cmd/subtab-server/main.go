// Command subtab-server serves interactive sub-table selection over HTTP.
// Tables are uploaded as CSV, pre-processed once (bin → corpus → Word2Vec),
// cached in an LRU-bounded in-memory store, optionally persisted to disk,
// and then served to any number of concurrent sessions: select, query,
// rule-mining and highlighting all reuse the cached model, which is what
// turns the paper's one-off pre-processing cost into interactive request
// latencies.
//
// Usage:
//
//	subtab-server -addr :8080 -cache-dir /var/lib/subtab -max-models 8
//
// Pre-load tables at startup with name=path.csv arguments:
//
//	subtab-server flights=testdata/flights.csv
//
// API (see internal/serve and README.md for details):
//
//	GET    /healthz
//	GET    /tables
//	POST   /tables?name=N            (CSV body)
//	GET    /tables/{name}
//	DELETE /tables/{name}
//	POST   /tables/{name}/append     (CSV body; incremental row ingestion)
//	POST   /tables/{name}/select     {"k":10,"l":10,"targets":[...]}
//	POST   /tables/{name}/query      {"query":{...},"k":10,"l":10}
//	GET    /tables/{name}/rules
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"subtab"
	"subtab/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("subtab-server: ")

	var (
		addr      = flag.String("addr", ":8080", "listen address")
		cacheDir  = flag.String("cache-dir", "", "persist pre-processed models to this directory (empty = memory only)")
		maxModels = flag.Int("max-models", serve.DefaultMaxModels, "models kept in memory (LRU; effective only with -cache-dir, memory-only stores never evict)")
		seed      = flag.Int64("seed", 1, "default pipeline seed for uploaded tables")
		timeout   = flag.Duration("shutdown-timeout", 15*time.Second, "graceful shutdown grace period")
		withPprof = flag.Bool("pprof", false, "expose net/http/pprof endpoints under /debug/pprof/ (profile serving hot spots in place)")
	)
	flag.Parse()
	if err := run(*addr, *cacheDir, *maxModels, *seed, *timeout, *withPprof, flag.Args()); err != nil {
		log.Fatal(err)
	}
}

func run(addr, cacheDir string, maxModels int, seed int64, timeout time.Duration, withPprof bool, preload []string) error {
	opt := subtab.DefaultOptions()
	opt.Bins.Seed = seed
	opt.Corpus.Seed = seed
	opt.Embedding.Seed = seed
	opt.ClusterSeed = seed

	store := serve.NewStore(serve.StoreOptions{MaxModels: maxModels, Dir: cacheDir})
	svc := serve.NewService(store, opt)

	// Pre-load name=path.csv tables so the server starts warm. A table that
	// is already in the disk cache is served from there; Preprocess runs
	// only for genuinely new data.
	for _, arg := range preload {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			return fmt.Errorf("bad preload argument %q, want name=path.csv", arg)
		}
		start := time.Now()
		if store.Contains(name) {
			log.Printf("preload %s: already cached", name)
			continue
		}
		t, err := subtab.ReadCSVFile(path)
		if err != nil {
			return fmt.Errorf("preload %s: %w", name, err)
		}
		m, err := svc.AddTable(name, t, nil, false)
		if err != nil {
			return fmt.Errorf("preload %s: %w", name, err)
		}
		log.Printf("preload %s: %d rows x %d cols in %s",
			name, m.T.NumRows(), m.T.NumCols(), time.Since(start).Round(time.Millisecond))
	}

	var handler http.Handler = serve.NewHandler(svc, log.Default())
	if withPprof {
		// The profiling endpoints share the API listener so a warm serving
		// process can be profiled exactly as deployed; they are off by
		// default because they expose stacks and heap contents.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Print("pprof endpoints enabled at /debug/pprof/")
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (cache-dir=%q, max-models=%d)", addr, cacheDir, maxModels)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("received %s, draining connections", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Print("bye")
	return nil
}
