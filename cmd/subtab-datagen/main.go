// Command subtab-datagen writes one of the paper's synthetic evaluation
// datasets as CSV (schema-faithful stand-ins for the Kaggle/honeynet
// datasets, with planted association rules — see DESIGN.md §4).
//
// Usage:
//
//	subtab-datagen -dataset FL -rows 60000 -seed 1 -out flights.csv
//
// The -rows knob scales any dataset to stress size; it accepts k/M suffixes
// so emitting the large-selection workloads is one flag:
//
//	subtab-datagen -dataset FL -rows 1M -out flights-1m.csv
//
// With -shards N the generated table is additionally binned and its codes
// exported as N shard code-store files plus a shard map, ready to be
// spread across subtab-server instances:
//
//	subtab-datagen -dataset FL -rows 1M -shards 4 -out flights-1m.csv
//
// writes flights-1m.csv, flights-1m.codes.000 … .003 and
// flights-1m.shards.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"subtab"
	"subtab/internal/binning"
	"subtab/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("subtab-datagen: ")

	var (
		dataset = flag.String("dataset", "FL", "dataset: "+strings.Join(subtab.DatasetNames(), ", "))
		rows    = flag.String("rows", "0", "row count, with optional k/M suffix, e.g. 100k or 1M (0 = dataset default)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output CSV path (default <dataset>.csv)")
		info    = flag.Bool("info", false, "print the dataset's planted patterns and exit")
		shards  = flag.Int("shards", 0, "also bin the table and export its codes as N shard code-store files plus a shard map (0 = CSV only)")
	)
	flag.Parse()

	n, err := parseRows(*rows)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := subtab.GenerateDataset(*dataset, n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if *info {
		fmt.Printf("%s: %d rows x %d columns; targets %v\n",
			ds.Name, ds.T.NumRows(), ds.T.NumCols(), ds.Targets)
		for _, pr := range ds.Planted {
			fmt.Printf("  - %s (columns %v)\n", pr.Description, pr.Cols)
		}
		return
	}
	path := *out
	if path == "" {
		path = strings.ToLower(*dataset) + ".csv"
	}
	if err := ds.T.WriteCSVFile(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d rows x %d columns\n", path, ds.T.NumRows(), ds.T.NumCols())
	if *shards > 0 {
		if err := exportShards(ds, path, *shards, *seed); err != nil {
			log.Fatal(err)
		}
	}
	_ = os.Stdout.Sync()
}

// exportShards bins the generated table (same default binning the server
// applies at upload, seeded like the CSV) and splits its codes evenly
// into n shard code-store files beside the CSV, plus a shard map naming
// them — the on-disk layout internal/shard.Open consumes.
func exportShards(ds *subtab.Dataset, csvPath string, n int, seed int64) error {
	bopt := subtab.DefaultOptions().Bins
	bopt.Seed = seed
	b, err := binning.Bin(ds.T, bopt)
	if err != nil {
		return fmt.Errorf("binning for shard export: %w", err)
	}
	base := strings.TrimSuffix(csvPath, ".csv")
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("%s.codes.%03d", base, i)
	}
	rows := ds.T.NumRows()
	cuts := make([]int, n+1)
	for i := range cuts {
		cuts[i] = i * rows / n
	}
	sink, err := shard.NewSplitSink(paths, cuts, ds.T.NumCols(), 0)
	if err != nil {
		return err
	}
	if err := b.ExportCodes(sink, 0); err != nil {
		sink.Abort()
		return fmt.Errorf("exporting shard stores: %w", err)
	}
	sm, err := sink.Close()
	if err != nil {
		return err
	}
	mapPath := base + ".shards"
	if err := shard.WriteFile(mapPath, sm); err != nil {
		return err
	}
	for i, d := range sm.Shards {
		fmt.Printf("wrote %s: shard %d, %d rows, checksum %08x\n", paths[i], i, d.Rows, d.Checksum)
	}
	fmt.Printf("wrote %s: shard map, %d shards x %d columns\n", mapPath, n, ds.T.NumCols())
	return nil
}

// parseRows parses the -rows value: a plain integer, or one with a k/M
// scale suffix (case-insensitive), e.g. 100k = 100_000, 1M = 1_000_000.
func parseRows(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1_000, s[:len(s)-1]
	case strings.HasSuffix(s, "m"), strings.HasSuffix(s, "M"):
		mult, s = 1_000_000, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("-rows: want an integer with optional k/M suffix, got %q", s)
	}
	return n * mult, nil
}
