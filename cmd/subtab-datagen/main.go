// Command subtab-datagen writes one of the paper's synthetic evaluation
// datasets as CSV (schema-faithful stand-ins for the Kaggle/honeynet
// datasets, with planted association rules — see DESIGN.md §4).
//
// Usage:
//
//	subtab-datagen -dataset FL -rows 60000 -seed 1 -out flights.csv
//
// The -rows knob scales any dataset to stress size; it accepts k/M suffixes
// so emitting the large-selection workloads is one flag:
//
//	subtab-datagen -dataset FL -rows 1M -out flights-1m.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"subtab"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("subtab-datagen: ")

	var (
		dataset = flag.String("dataset", "FL", "dataset: "+strings.Join(subtab.DatasetNames(), ", "))
		rows    = flag.String("rows", "0", "row count, with optional k/M suffix, e.g. 100k or 1M (0 = dataset default)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output CSV path (default <dataset>.csv)")
		info    = flag.Bool("info", false, "print the dataset's planted patterns and exit")
	)
	flag.Parse()

	n, err := parseRows(*rows)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := subtab.GenerateDataset(*dataset, n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if *info {
		fmt.Printf("%s: %d rows x %d columns; targets %v\n",
			ds.Name, ds.T.NumRows(), ds.T.NumCols(), ds.Targets)
		for _, pr := range ds.Planted {
			fmt.Printf("  - %s (columns %v)\n", pr.Description, pr.Cols)
		}
		return
	}
	path := *out
	if path == "" {
		path = strings.ToLower(*dataset) + ".csv"
	}
	if err := ds.T.WriteCSVFile(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d rows x %d columns\n", path, ds.T.NumRows(), ds.T.NumCols())
	_ = os.Stdout.Sync()
}

// parseRows parses the -rows value: a plain integer, or one with a k/M
// scale suffix (case-insensitive), e.g. 100k = 100_000, 1M = 1_000_000.
func parseRows(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1_000, s[:len(s)-1]
	case strings.HasSuffix(s, "m"), strings.HasSuffix(s, "M"):
		mult, s = 1_000_000, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("-rows: want an integer with optional k/M suffix, got %q", s)
	}
	return n * mult, nil
}
