// Command subtab-datagen writes one of the paper's synthetic evaluation
// datasets as CSV (schema-faithful stand-ins for the Kaggle/honeynet
// datasets, with planted association rules — see DESIGN.md §4).
//
// Usage:
//
//	subtab-datagen -dataset FL -rows 60000 -seed 1 -out flights.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"subtab"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("subtab-datagen: ")

	var (
		dataset = flag.String("dataset", "FL", "dataset: "+strings.Join(subtab.DatasetNames(), ", "))
		rows    = flag.Int("rows", 0, "row count (0 = dataset default)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output CSV path (default <dataset>.csv)")
		info    = flag.Bool("info", false, "print the dataset's planted patterns and exit")
	)
	flag.Parse()

	ds, err := subtab.GenerateDataset(*dataset, *rows, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if *info {
		fmt.Printf("%s: %d rows x %d columns; targets %v\n",
			ds.Name, ds.T.NumRows(), ds.T.NumCols(), ds.Targets)
		for _, pr := range ds.Planted {
			fmt.Printf("  - %s (columns %v)\n", pr.Description, pr.Cols)
		}
		return
	}
	path := *out
	if path == "" {
		path = strings.ToLower(*dataset) + ".csv"
	}
	if err := ds.T.WriteCSVFile(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d rows x %d columns\n", path, ds.T.NumRows(), ds.T.NumCols())
	_ = os.Stdout.Sync()
}
