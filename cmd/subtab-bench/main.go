// Command subtab-bench seeds and extends the repository's performance
// trajectory: it runs the key pipeline benchmarks (Fig. 9 preprocess and
// selection, k-means over row vectors, the serving layer's cold / disk /
// warm paths, and the large-table selection scenarios) in-process via
// testing.Benchmark and merges the results into a JSON file under a label,
// so successive PRs can record before/after numbers measured by the exact
// same harness:
//
//	subtab-bench -label baseline -out BENCH_PR8.json   # before a change
//	subtab-bench -label current  -out BENCH_PR8.json   # after
//
// The -suite flag picks what runs: "core" is the historical set over the
// 3000-row FL table, "large" is the Fig9SelectLarge set (exact-path 100k
// baseline, scaled 100k, scaled 1M — the interactivity claim for
// million-row tables), "oocore" is the out-of-core set (scaled selection
// over an mmap'd code store, with and without slab spilling, on a table
// larger than the configured memory budget), "shard" is the sharded
// scatter/gather set (scaled selection fanned out across 4 shard stores,
// the number to compare against OOCoreSelect/1M), "colstore" is the paged
// raw-column set (rendering a display-sized view from the mmap'd column
// store vs from inline column arrays, on a 1M-row table), "preprocess" is
// the cold-path set (the Fig. 9 preprocess plus its stages in isolation —
// binning+corpus, and embedding training at full parallelism and pinned to
// one worker), "all" runs everything.
//
// -benchtime passes through to the testing harness (e.g. "1x" for a
// compile-and-crash smoke, "2s" for stabler timings); a benchmark that
// fails or panics inside the harness produces an empty result, which this
// command treats as a hard error instead of silently recording nothing.
//
// The file maps label -> benchmark -> {ns_per_op, bytes_per_op,
// allocs_per_op, n}; existing labels other than the one being written are
// preserved, and the file is replaced atomically (temp file + rename) so a
// crashed run cannot clobber previously recorded results.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"testing"

	"subtab"
	"subtab/internal/binning"
	"subtab/internal/cluster"
	"subtab/internal/colstore"
	"subtab/internal/corpus"
	"subtab/internal/datagen"
	"subtab/internal/f32"
	"subtab/internal/modelio"
	"subtab/internal/serve"
	"subtab/internal/table"
	"subtab/internal/word2vec"
)

type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	N           int     `json:"n"`
}

func record(r testing.BenchmarkResult) entry {
	return entry{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		N:           r.N,
	}
}

func pipelineOptions() subtab.Options {
	opt := subtab.DefaultOptions()
	opt.Bins.Seed = 1
	opt.Corpus.Seed = 1
	opt.Embedding = subtab.EmbeddingOptions{Dim: 24, Epochs: 3, Seed: 1}
	opt.ClusterSeed = 1
	return opt
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("subtab-bench: ")
	// Register the testing flags before parsing so -benchtime can be
	// forwarded to the harness testing.Benchmark reads it from.
	testing.Init()
	var (
		out       = flag.String("out", "BENCH_PR8.json", "JSON file to merge results into")
		label     = flag.String("label", "current", "label to record results under")
		suite     = flag.String("suite", "all", "benchmark suite: core, large, oocore, shard, colstore, preprocess, or all")
		benchtime = flag.String("benchtime", "", `passed to the testing harness, e.g. "1x" or "2s" (empty = the 1s default)`)
	)
	flag.Parse()
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			log.Fatalf("-benchtime %q: %v", *benchtime, err)
		}
	}

	results := map[string]entry{}
	run := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		if r.N == 0 {
			// testing.Benchmark swallows b.Fatal/b.Skip into an empty result;
			// recording nothing silently would hide a broken benchmark from
			// CI, so treat it as a hard failure.
			log.Fatalf("benchmark %s failed inside the harness (empty result)", name)
		}
		results[name] = record(r)
		fmt.Printf("%-24s %12.0f ns/op %10d B/op %8d allocs/op  (n=%d)\n",
			name, results[name].NsPerOp, results[name].BytesPerOp, results[name].AllocsPerOp, r.N)
	}
	switch *suite {
	case "core":
		runCoreSuite(run)
	case "large":
		runLargeSuite(run)
	case "oocore":
		runOOCoreSuite(run)
	case "shard":
		runShardSuite(run)
	case "colstore":
		runColStoreSuite(run)
	case "preprocess":
		runPreprocessSuite(run)
	case "all":
		runCoreSuite(run)
		runLargeSuite(run)
		runOOCoreSuite(run)
		runShardSuite(run)
		runColStoreSuite(run)
		runPreprocessSuite(run)
	default:
		log.Fatalf("unknown -suite %q: want core, large, oocore, shard, colstore, preprocess or all", *suite)
	}

	merged := map[string]map[string]entry{}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &merged); err != nil {
			log.Fatalf("existing %s is not a bench file: %v", *out, err)
		}
	}
	// Merge per benchmark, not per label: partial runs (-suite core, then
	// -suite large) under one label accumulate instead of discarding the
	// other suite's numbers.
	if merged[*label] == nil {
		merged[*label] = map[string]entry{}
	}
	for name, e := range results {
		merged[*label][name] = e
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	// Write via temp file + rename: a crash partway through a suite (or
	// mid-write) must never truncate or clobber the labeled results file.
	tmp := *out + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.Rename(tmp, *out); err != nil {
		os.Remove(tmp)
		log.Fatal(err)
	}
	log.Printf("wrote %q results to %s", *label, *out)
}

// runCoreSuite is the historical benchmark set over the 3000-row FL table.
func runCoreSuite(run func(name string, fn func(b *testing.B))) {
	ds, err := datagen.ByName("FL", 3000, 1)
	if err != nil {
		log.Fatal(err)
	}
	opt := pipelineOptions()
	model, err := subtab.Preprocess(ds.T, opt)
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 9: the one-off pre-processing cost vs the per-display cost — the
	// paper's interactivity claim, and this repo's headline hot path.
	run("Fig9Preprocess", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := subtab.Preprocess(ds.T, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("Fig9Selection", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := model.Select(10, 10, nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Streaming ingestion: a 1% append on the Fig. 9 dataset through the
	// warm incremental path (bin reuse + frozen embedding + in-place vector
	// cache extension) vs the full re-preprocess it replaces. The
	// interactivity claim of the append PR is the ratio of this number to
	// Fig9Preprocess.
	appendRows := func() *subtab.Table {
		d, err := datagen.ByName("FL", 30, 99) // 1% of 3000, same distribution
		if err != nil {
			log.Fatal(err)
		}
		return d.T
	}
	if _, err := model.Select(10, 10, nil); err != nil { // warm the vector cache
		log.Fatal(err)
	}
	delta := appendRows()
	if _, stats, err := model.Append(delta, subtab.AppendOptions{}); err != nil {
		log.Fatal(err)
	} else if stats.Rebinned {
		log.Fatalf("1%% append unexpectedly rebinned (%s); the warm-path benchmark would be meaningless", stats.RebinReason)
	}
	run("Fig9Append1pct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := model.Append(delta, subtab.AppendOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// K-means over the table's row vectors (flat-matrix path, as Select
	// invokes it). Setup stays outside the closure: testing.Benchmark
	// re-invokes it for every b.N sizing round.
	pts := rowVectorMatrix()
	run("KMeansRows", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cluster.KMeansMatrix(pts, 10, cluster.Options{Seed: 1})
		}
	})

	// Serving layer: cold (preprocess per request), disk restore, and warm
	// steady state.
	serveTable := func() *subtab.Table {
		d, err := datagen.ByName("FL", 2000, 3)
		if err != nil {
			log.Fatal(err)
		}
		return d.T
	}
	coldTable := serveTable()
	run("ServeColdPreprocess", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := subtab.Preprocess(coldTable, opt)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Select(10, 5, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	diskModel, err := subtab.Preprocess(serveTable(), opt)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "subtab-bench")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	diskPath := filepath.Join(dir, "bench.subtab")
	if err := modelio.SaveFile(diskPath, diskModel); err != nil {
		log.Fatal(err)
	}
	run("ServeDiskLoadSelect", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			loaded, err := modelio.LoadFile(diskPath)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := loaded.Select(10, 5, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	svc := serve.NewService(serve.NewStore(serve.StoreOptions{}), opt)
	if _, err := svc.AddTable("bench", serveTable(), nil, false); err != nil {
		log.Fatal(err)
	}
	run("ServeWarmSelect", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Select("bench", nil, 10, 5, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// largePipelineOptions is the pipeline for the large-selection scenarios:
// selection cost does not depend on embedding quality, so training is cut to
// one epoch at dim 16 to keep the one-off 100k/1M pre-processing (which is
// setup here, not the thing measured) affordable on the bench box.
func largePipelineOptions() subtab.Options {
	opt := subtab.DefaultOptions()
	opt.Bins.Seed = 1
	opt.Corpus.Seed = 1
	opt.Embedding = subtab.EmbeddingOptions{Dim: 16, Epochs: 1, Seed: 1}
	opt.ClusterSeed = 1
	return opt
}

// runLargeSuite measures the Fig9SelectLarge scenarios: a full Select on
// 100k rows down the exact path (the baseline the scaled mode must beat by
// >= 5x at equal k) and down the scaled path, then the scaled path on a
// million rows (the interactivity claim: a full Select under 2s on the
// 1-vCPU bench box).
func runLargeSuite(run func(name string, fn func(b *testing.B))) {
	scale := &subtab.ScaleOptions{Threshold: 50_000} // budget/batch/iters: defaults

	largeModel := func(rows int) *subtab.Model {
		ds, err := datagen.ByName("FL", rows, 1)
		if err != nil {
			log.Fatal(err)
		}
		m, err := subtab.Preprocess(ds.T, largePipelineOptions())
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	log.Printf("preprocessing FL 100k (setup)")
	m100k := largeModel(100_000)
	if _, err := m100k.Select(10, 10, nil); err != nil { // warm the vector cache
		log.Fatal(err)
	}
	run("Fig9Select100kExact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m100k.Select(10, 10, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("Fig9SelectLarge/100k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m100k.SelectWith(nil, 10, 10, nil, scale); err != nil {
				b.Fatal(err)
			}
		}
	})

	log.Printf("preprocessing FL 1M (setup)")
	m1m := largeModel(1_000_000)
	run("Fig9SelectLarge/1M", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m1m.SelectWith(nil, 10, 10, nil, scale); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// runOOCoreSuite measures the out-of-core selection path: a 1M-row model
// whose bin codes live in an mmap'd code store (inline codes dropped), far
// larger than the configured slab budget. OOCoreSelect/1M is the
// store-streaming scaled select with an in-memory sampled slab — the
// number to compare against Fig9SelectLarge/1M, whose codes are resident;
// OOCoreSelectSpill/1M additionally caps the sampled tuple-vector slab at
// 256KiB so every select builds, spills and re-reads it from disk.
func runOOCoreSuite(run func(name string, fn func(b *testing.B))) {
	const rows = 1_000_000
	ds, err := datagen.ByName("FL", rows, 1)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("preprocessing FL 1M (setup)")
	m, err := subtab.Preprocess(ds.T, largePipelineOptions())
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "subtab-bench-oocore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cs, err := m.UseCodeStoreFile(filepath.Join(dir, "fl1m"+".codes"), 0)
	if err != nil {
		log.Fatal(err)
	}
	defer cs.Close()
	log.Printf("code store: %d blocks of %d rows, mmap=%v", cs.NumBlocks(), cs.BlockRows(), cs.Mapped())

	scale := &subtab.ScaleOptions{Threshold: 50_000}
	run("OOCoreSelect/1M", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.SelectWith(nil, 10, 10, nil, scale); err != nil {
				b.Fatal(err)
			}
		}
	})
	spill := &subtab.ScaleOptions{Threshold: 50_000, SlabBudgetBytes: 256 << 10}
	run("OOCoreSelectSpill/1M", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.SelectWith(nil, 10, 10, nil, spill); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// runShardSuite measures the sharded scatter/gather path: the same 1M-row
// model as the oocore suite, with its bin codes split across 4 shard
// stores instead of one. ShardSelect/1M-4 is the scaled select whose
// stratified sample fans out one goroutine per shard and merges the
// per-stratum minima associatively — selections are byte-identical to the
// single-store path, so the only question this number answers is what the
// split costs (or saves) against OOCoreSelect/1M.
func runShardSuite(run func(name string, fn func(b *testing.B))) {
	const rows = 1_000_000
	ds, err := datagen.ByName("FL", rows, 1)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("preprocessing FL 1M (setup)")
	m, err := subtab.Preprocess(ds.T, largePipelineOptions())
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "subtab-bench-shard")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	paths := make([]string, 4)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("fl1m.codes.%03d", i))
	}
	src, err := m.UseShardedStores(paths, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	log.Printf("shard stores: %d shards of ~%d rows, %d rows/block", src.NumShards(), src.ShardRows(0), src.BlockRows())

	scale := &subtab.ScaleOptions{Threshold: 50_000}
	run("ShardSelect/1M-4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.SelectWith(nil, 10, 10, nil, scale); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// runColStoreSuite measures what paging the raw columns costs at render
// time: the same display-sized view (10 rows x 10 cols, rows strided so
// each lands in a different block — the paged path's worst case), built
// from inline column arrays vs gathered from the mmap'd column store. No
// model is needed; rendering is a pure table/colstore operation, which is
// the point — a server can shed a 1M-row table's cell residency and still
// answer view renders at interactive latency.
func runColStoreSuite(run func(name string, fn func(b *testing.B))) {
	const rows = 1_000_000
	ds, err := datagen.ByName("FL", rows, 1)
	if err != nil {
		log.Fatal(err)
	}
	tbl := ds.T
	dir, err := os.MkdirTemp("", "subtab-bench-colstore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "fl1m.cols")
	if err := colstore.WriteTable(path, tbl, 0); err != nil {
		log.Fatal(err)
	}
	st, err := colstore.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	log.Printf("column store: %d blocks of %d rows, mmap=%v", st.NumBlocks(), st.BlockRows(), st.Mapped())

	const k, l = 10, 10
	viewRows := make([]int, k)
	for i := range viewRows {
		viewRows[i] = i*(rows/k) + i*137
	}
	colIdx := make([]int, l)
	names := make([]string, l)
	for i, name := range tbl.ColumnNames()[:l] {
		colIdx[i] = i
		names[i] = name
	}

	run("InlineRender/1M", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v, err := tbl.SubTableView(viewRows, names)
			if err != nil {
				b.Fatal(err)
			}
			v.Render(nil)
		}
	})
	run("ColStoreRender/1M", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v, err := table.GatherView(st, tbl.Name, viewRows, colIdx)
			if err != nil {
				b.Fatal(err)
			}
			v.Render(nil)
		}
	})
}

// runPreprocessSuite isolates the pre-processing cold path: the full Fig. 9
// preprocess over the 3000-row FL table (same benchmark and harness as the
// core suite, so numbers recorded under different labels are comparable),
// the embedding-training stage alone at the engine's full parallelism and
// pinned to one worker (their ratio is the parallel speedup — and since the
// deterministic sharded-gradient engine makes training a pure function of
// (corpus, options), both produce byte-identical vectors), and the binning +
// corpus stages that bound what faster training cannot cut.
func runPreprocessSuite(run func(name string, fn func(b *testing.B))) {
	ds, err := datagen.ByName("FL", 3000, 1)
	if err != nil {
		log.Fatal(err)
	}
	opt := pipelineOptions()
	run("Fig9Preprocess", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := subtab.Preprocess(ds.T, opt); err != nil {
				b.Fatal(err)
			}
		}
	})

	binned, err := binning.Bin(ds.T, opt.Bins)
	if err != nil {
		log.Fatal(err)
	}
	sents := corpus.Build(binned, opt.Corpus)
	run("BinAndCorpus", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bn, err := binning.Bin(ds.T, opt.Bins)
			if err != nil {
				b.Fatal(err)
			}
			corpus.Build(bn, opt.Corpus)
		}
	})
	run("Word2VecTrain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			word2vec.Train(sents, opt.Embedding)
		}
	})
	serial := opt.Embedding
	serial.Workers = 1
	run("Word2VecTrain/w1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			word2vec.Train(sents, serial)
		}
	})
}

// rowVectorMatrix reproduces the Select path's input: one mean-pooled
// tuple-vector per row, in one contiguous matrix.
func rowVectorMatrix() f32.Matrix {
	ds, err := datagen.ByName("FL", 3000, 1)
	if err != nil {
		log.Fatal(err)
	}
	bn, err := subtab.Preprocess(ds.T, func() subtab.Options {
		o := pipelineOptions()
		o.Embedding.Epochs = 2
		return o
	}())
	if err != nil {
		log.Fatal(err)
	}
	cols := make([]int, ds.T.NumCols())
	for i := range cols {
		cols[i] = i
	}
	pts := f32.New(ds.T.NumRows(), bn.Emb.Dim())
	for r := 0; r < ds.T.NumRows(); r++ {
		copy(pts.Row(r), bn.RowVector(r, cols))
	}
	return pts
}
