// Command subtab-experiments regenerates every table and figure of the
// paper's evaluation section (§6) and prints them in the paper's layout:
// Table 1 and Figure 5 (simulated user study), Figure 6 (EDA-session
// replay on CY), Figure 7 (slow baselines on FL), Figure 8 (quality
// metrics), Figure 9 (runtime split), Figure 10 (parameter tuning).
//
// Usage:
//
//	subtab-experiments -run all -scale bench
//	subtab-experiments -run fig8,fig9 -scale paper -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"subtab/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("subtab-experiments: ")

	var (
		run   = flag.String("run", "all", "experiments: all or comma list of table1,fig5,fig6,fig7,fig8,fig9,fig10")
		scale = flag.String("scale", "bench", "bench (seconds) or paper (scaled paper row counts, minutes)")
		seed  = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	var lab *experiments.Lab
	switch *scale {
	case "bench":
		lab = experiments.NewLab(*seed)
	case "paper":
		lab = experiments.NewPaperLab(*seed)
	default:
		log.Fatalf("unknown scale %q", *scale)
	}

	want := map[string]bool{}
	if *run == "all" {
		for _, e := range []string{"table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*run, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}

	start := time.Now()
	if want["table1"] || want["fig5"] {
		res, err := lab.UserStudy()
		if err != nil {
			log.Fatalf("user study: %v", err)
		}
		fmt.Println(res)
	}
	if want["fig6"] {
		res, err := lab.Fig6(122)
		if err != nil {
			log.Fatalf("fig6: %v", err)
		}
		fmt.Println(res)
	}
	if want["fig7"] {
		res, err := lab.Fig7()
		if err != nil {
			log.Fatalf("fig7: %v", err)
		}
		fmt.Println(res)
	}
	if want["fig8"] {
		res, err := lab.Fig8()
		if err != nil {
			log.Fatalf("fig8: %v", err)
		}
		fmt.Println(res)
	}
	if want["fig9"] {
		res, err := lab.Fig9()
		if err != nil {
			log.Fatalf("fig9: %v", err)
		}
		fmt.Println(res)
	}
	if want["fig10"] {
		res, err := lab.Fig10()
		if err != nil {
			log.Fatalf("fig10: %v", err)
		}
		fmt.Println(res)
	}
	fmt.Printf("total experiment time: %s\n", time.Since(start).Round(time.Millisecond))
}
