// Command subtab reads a CSV file and prints an informative k×l sub-table,
// optionally restricted to a selection query and with association-rule
// patterns highlighted (the paper's Figure 1 workflow).
//
// Usage:
//
//	subtab -input flights.csv -rows 10 -cols 10 -targets CANCELLED -highlight
//	subtab -input flights.csv -where 'CANCELLED=1' -rows 10 -cols 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"subtab"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("subtab: ")

	var (
		input     = flag.String("input", "", "input CSV file (required)")
		rows      = flag.Int("rows", 10, "sub-table rows (k)")
		cols      = flag.Int("cols", 10, "sub-table columns (l)")
		targets   = flag.String("targets", "", "comma-separated target columns always included")
		where     = flag.String("where", "", "selection, e.g. 'CANCELLED=1' or 'DISTANCE>=1600' (AND with commas)")
		highlight = flag.Bool("highlight", false, "highlight association-rule patterns with [ ] markers")
		bins      = flag.Int("bins", 5, "bins per column")
		dim       = flag.Int("dim", 32, "embedding dimensionality")
		epochs    = flag.Int("epochs", 3, "embedding training epochs")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *input == "" {
		flag.Usage()
		os.Exit(2)
	}

	t, err := subtab.ReadCSVFile(*input)
	if err != nil {
		log.Fatalf("reading %s: %v", *input, err)
	}
	fmt.Printf("loaded %s: %d rows x %d columns\n", *input, t.NumRows(), t.NumCols())

	opt := subtab.DefaultOptions()
	opt.Bins.MaxBins = *bins
	opt.Bins.Seed = *seed
	opt.Corpus.Seed = *seed
	opt.Embedding = subtab.EmbeddingOptions{Dim: *dim, Epochs: *epochs, Seed: *seed}
	opt.ClusterSeed = *seed

	model, err := subtab.Preprocess(t, opt)
	if err != nil {
		log.Fatalf("pre-processing: %v", err)
	}

	var tgt []string
	if *targets != "" {
		tgt = strings.Split(*targets, ",")
	}
	q, err := parseWhere(t, *where)
	if err != nil {
		log.Fatal(err)
	}

	st, err := model.SelectQuery(q, *rows, *cols, tgt)
	if err != nil {
		log.Fatalf("selecting sub-table: %v", err)
	}

	if !*highlight {
		fmt.Println()
		fmt.Print(st.View)
		return
	}
	rs, err := subtab.MineRules(model, subtab.MiningOptions{TargetCols: tgt})
	if err != nil {
		log.Fatalf("mining rules: %v", err)
	}
	hl, perRow := subtab.Highlight(model, rs, st)
	fmt.Println()
	fmt.Print(st.View.Render(hl))
	fmt.Println()
	for i, ri := range perRow {
		if ri >= 0 {
			fmt.Printf("row %d: %s\n", i+1, rs[ri].Label(model.B))
		}
	}
}

// parseWhere parses a tiny predicate language: comma-separated terms of the
// form col=value, col!=value, col>=num, col<=num, col>num, col<num.
func parseWhere(t *subtab.Table, s string) (*subtab.Query, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	q := &subtab.Query{}
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		var opStr string
		var op = subtab.Eq
		switch {
		case strings.Contains(term, ">="):
			opStr, op = ">=", subtab.Geq
		case strings.Contains(term, "<="):
			opStr, op = "<=", subtab.Leq
		case strings.Contains(term, "!="):
			opStr, op = "!=", subtab.Neq
		case strings.Contains(term, ">"):
			opStr, op = ">", subtab.Gt
		case strings.Contains(term, "<"):
			opStr, op = "<", subtab.Lt
		case strings.Contains(term, "="):
			opStr, op = "=", subtab.Eq
		default:
			return nil, fmt.Errorf("cannot parse predicate %q", term)
		}
		parts := strings.SplitN(term, opStr, 2)
		col := strings.TrimSpace(parts[0])
		val := strings.TrimSpace(parts[1])
		c := t.Column(col)
		if c == nil {
			return nil, fmt.Errorf("unknown column %q", col)
		}
		p := subtab.Predicate{Col: col, Op: op}
		if c.Kind == subtab.Numeric {
			num, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("numeric column %q needs a numeric comparand, got %q", col, val)
			}
			p.Num = num
		} else {
			p.Str = val
		}
		q.Where = append(q.Where, p)
	}
	return q, nil
}
