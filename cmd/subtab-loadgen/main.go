// Command subtab-loadgen is the multi-tenant load harness: it boots a
// fully-wired serving stack in-process (store + service + HTTP handler,
// governed by the same -memory-budget machinery subtab-server wires), then
// drives mixed upload / append / select / query traffic over hundreds of
// tables with zipfian popularity — the workload shape the memory governor
// exists for: far more tenants than fit resident, a hot head that should
// stay cached, and a cold tail that must page through the disk cache
// without ever growing the process past its budget.
//
// Everything is deterministic under -seed: table sizes, datasets, the
// per-worker operation streams and the zipf popularity draws all derive
// from it, so two runs at the same flags replay the same workload (only
// goroutine interleaving varies).
//
// The harness reports per-operation p50/p99 latency, shed counts (429s are
// load shedding working as designed, not failures), peak RSS (VmHWM) and
// the governor's ledger, and merges the numbers into a subtab-bench-format
// JSON file. CI gates on it:
//
//	GOMEMLIMIT=512MiB subtab-loadgen -tables 200 -memory-budget 64MiB \
//	    -filtered -assert-p99 2s -assert-filtered-p99 2s \
//	    -assert-rss 512MiB -assert-governor -out BENCH_PR9.json
//
// -filtered mixes /v1 exploration-session traffic into the select share:
// workers open sessions, run predicate-scoped streaming selects through
// POST /v1/sessions/{id}/select and drill into the returned views. Sessions
// stranded by replace traffic (409/404) are reopened, exercising the
// staleness path under real contention.
//
// -assert-p99 bounds the select p99, -assert-filtered-p99 the
// session-select p99, -assert-rss bounds VmHWM, -assert-governor requires
// the governed peak to stay within -memory-budget; any 5xx response or
// transport error is a hard failure.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"subtab"
	"subtab/internal/datagen"
	"subtab/internal/memgov"
	"subtab/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("subtab-loadgen: ")
	var (
		tables     = flag.Int("tables", 200, "number of tenant tables to upload")
		rowsMin    = flag.Int("rows-min", 60, "minimum rows per table")
		rowsMax    = flag.Int("rows-max", 140, "maximum rows per table")
		ops        = flag.Int("ops", 400, "mixed-traffic operations after the upload phase")
		workers    = flag.Int("concurrency", 8, "concurrent load-generating workers")
		seed       = flag.Int64("seed", 1, "workload seed (sizes, datasets, op streams, popularity)")
		zipfS      = flag.Float64("zipf-s", 1.2, "zipf exponent of table popularity (>1; larger = hotter head)")
		memBudget  = flag.String("memory-budget", "64MiB", "server's process-wide governed budget (empty = ungoverned)")
		slabBudget = flag.String("slab-budget", "", "server's per-request slab spill budget (empty = never spill)")
		tableConc  = flag.Int("table-concurrency", 4, "server's per-table concurrent select limit (0 = unlimited)")
		maxModels  = flag.Int("max-models", 256, "server's in-memory model count backstop")
		out        = flag.String("out", "BENCH_PR9.json", "subtab-bench-format JSON file to merge results into")
		label      = flag.String("label", "current", "label to record results under")
		filtered   = flag.Bool("filtered", false, "mix /v1 session predicate-scoped selects and drill-downs into the select share")
		assertP99  = flag.Duration("assert-p99", 0, "fail unless select p99 is at or under this (0 = no assertion)")
		assertFP99 = flag.Duration("assert-filtered-p99", 0, "fail unless the /v1 filtered-select p99 is at or under this (0 = no assertion)")
		assertRSS  = flag.String("assert-rss", "", "fail unless peak RSS (VmHWM) is at or under this byte size (empty = no assertion)")
		assertGov  = flag.Bool("assert-governor", false, "fail if the governor's peak tracked bytes exceeded -memory-budget")
		appendRows = flag.Int("append-rows", 10, "rows per append chunk")
		selectPct  = flag.Int("select-pct", 70, "percent of mixed ops that are selects")
		queryPct   = flag.Int("query-pct", 15, "percent of mixed ops that are query-selects")
		appendPct  = flag.Int("append-pct", 10, "percent of mixed ops that are appends (the rest are replace re-uploads)")
	)
	flag.Parse()
	if *tables <= 0 || *ops < 0 || *workers <= 0 || *rowsMin <= 0 || *rowsMax < *rowsMin {
		log.Fatal("want -tables > 0, -ops >= 0, -concurrency > 0 and 0 < -rows-min <= -rows-max")
	}
	if *selectPct+*queryPct+*appendPct > 100 {
		log.Fatal("-select-pct + -query-pct + -append-pct must not exceed 100")
	}
	budget, err := parseByteSize(*memBudget)
	if err != nil {
		log.Fatalf("-memory-budget: %v", err)
	}
	slab, err := parseByteSize(*slabBudget)
	if err != nil {
		log.Fatalf("-slab-budget: %v", err)
	}
	rssLimit, err := parseByteSize(*assertRSS)
	if err != nil {
		log.Fatalf("-assert-rss: %v", err)
	}

	// The server lives in this process, so the harness's RSS *is* the
	// server's RSS and GOMEMLIMIT covers the whole experiment.
	var gov *memgov.Governor
	if budget > 0 {
		gov = memgov.New(budget)
	}
	cacheDir, err := os.MkdirTemp("", "subtab-loadgen")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(cacheDir)
	opt := subtab.DefaultOptions()
	opt.Scale.SlabBudgetBytes = slab
	store := serve.NewStore(serve.StoreOptions{MaxModels: *maxModels, Dir: cacheDir, Governor: gov})
	svc := serve.NewService(store, opt)
	svc.SetAdmission(gov, *tableConc)
	srv := httptest.NewServer(serve.NewHandler(svc, nil))
	defer srv.Close()
	client := srv.Client()

	h := newHarness(client, srv.URL, *seed, *tables, *rowsMin, *rowsMax, *appendRows, *zipfS)

	log.Printf("uploading %d tables (%d-%d rows, %d workers, seed %d)", *tables, *rowsMin, *rowsMax, *workers, *seed)
	start := time.Now()
	h.runPhase(*workers, *tables, func(w *workerState, i int) {
		h.upload(w, i, false)
	})
	log.Printf("upload phase: %d ok, %d shed in %s", h.counts["upload"], h.shed.count("upload"), time.Since(start).Round(time.Millisecond))

	log.Printf("mixed phase: %d ops (select %d%%, query %d%%, append %d%%, replace %d%%, zipf s=%.2f)",
		*ops, *selectPct, *queryPct, *appendPct, 100-*selectPct-*queryPct-*appendPct, *zipfS)
	start = time.Now()
	h.runPhase(*workers, *ops, func(w *workerState, i int) {
		table := int(w.zipf.Uint64())
		switch p := w.rng.Intn(100); {
		case p < *selectPct:
			// With -filtered, half the select share goes through the /v1
			// session surface (p's parity keeps the split deterministic).
			if *filtered && p%2 == 1 {
				h.filteredSel(w, table)
			} else {
				h.sel(w, table)
			}
		case p < *selectPct+*queryPct:
			h.query(w, table)
		case p < *selectPct+*queryPct+*appendPct:
			h.append(w, table)
		default:
			h.upload(w, table, true)
		}
	})
	log.Printf("mixed phase done in %s", time.Since(start).Round(time.Millisecond))

	if h.errs.Load() != "" {
		log.Fatalf("hard failure during the run: %s", h.errs.Load())
	}

	// One pass through /healthz so the governed stats endpoint is exercised
	// end to end (and visible in the log for CI triage).
	if body, err := h.get("/healthz"); err != nil {
		log.Fatalf("healthz: %v", err)
	} else {
		log.Printf("healthz: %s", strings.TrimSpace(string(body)))
	}

	results := map[string]entry{}
	for _, op := range []string{"upload", "select", "query", "append", "session", "filtered", "drilldown"} {
		lat := h.latencies(op)
		if len(lat) == 0 {
			continue
		}
		results["Loadgen"+titleCase(op)] = entry{NsPerOp: float64(percentile(lat, 50).Nanoseconds()), N: len(lat)}
		results["Loadgen"+titleCase(op)+"P99"] = entry{NsPerOp: float64(percentile(lat, 99).Nanoseconds()), N: len(lat)}
		log.Printf("%-8s n=%-5d shed=%-4d p50=%-12s p99=%s", op, len(lat), h.shed.count(op),
			percentile(lat, 50).Round(time.Microsecond), percentile(lat, 99).Round(time.Microsecond))
	}
	rss, rssOK := procStatusBytes("VmHWM")
	if rssOK {
		results["LoadgenPeakRSS"] = entry{BytesPerOp: rss, N: 1}
		log.Printf("peak RSS (VmHWM): %d MiB", rss>>20)
	}
	if gov != nil {
		st := gov.Stats()
		results["LoadgenGovernorPeak"] = entry{BytesPerOp: st.PeakBytes, N: 1}
		log.Printf("governor: budget=%d peak=%d used=%d admitted=%d rejected=%d reclaims=%d reclaimed=%d",
			st.BudgetBytes, st.PeakBytes, st.UsedBytes, st.Admitted, st.Rejected, st.Reclaims, st.Reclaimed)
		log.Printf("store: %+v, limiter sheds: %d", store.Stats(), svc.LimiterRejections())
	}

	if err := mergeBenchFile(*out, *label, results); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %q results to %s", *label, *out)

	failed := false
	if *assertP99 > 0 {
		if lat := h.latencies("select"); len(lat) > 0 && percentile(lat, 99) > *assertP99 {
			log.Printf("ASSERT FAILED: select p99 %s > %s", percentile(lat, 99), *assertP99)
			failed = true
		}
	}
	if *assertFP99 > 0 {
		lat := h.latencies("filtered")
		switch {
		case len(lat) == 0:
			log.Print("ASSERT FAILED: -assert-filtered-p99 needs -filtered traffic, but no filtered select succeeded")
			failed = true
		case percentile(lat, 99) > *assertFP99:
			log.Printf("ASSERT FAILED: filtered select p99 %s > %s", percentile(lat, 99), *assertFP99)
			failed = true
		}
	}
	if rssLimit > 0 {
		if !rssOK {
			log.Printf("ASSERT SKIPPED: -assert-rss needs /proc/self/status (linux)")
		} else if rss > rssLimit {
			log.Printf("ASSERT FAILED: peak RSS %d > %d", rss, rssLimit)
			failed = true
		}
	}
	if *assertGov {
		switch {
		case gov == nil:
			log.Print("ASSERT FAILED: -assert-governor needs -memory-budget")
			failed = true
		case gov.Peak() > budget:
			log.Printf("ASSERT FAILED: governor peak %d exceeded budget %d", gov.Peak(), budget)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	log.Print("all assertions passed")
}

// entry matches subtab-bench's per-benchmark JSON shape, so loadgen numbers
// merge into the same trajectory files CI already archives.
type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	N           int     `json:"n"`
}

// harness drives the HTTP API and aggregates per-operation outcomes.
type harness struct {
	client  *http.Client
	baseURL string
	seed    int64
	tables  int
	rowsMin int
	rowsMax int
	chunk   int

	mu     sync.Mutex
	lats   map[string][]time.Duration
	counts map[string]int
	shed   shedCounter
	errs   firstError

	zipfS float64
}

// workerState is one worker's deterministic stream: its own rng and zipf
// draw, so the workload content does not depend on scheduling.
type workerState struct {
	id   int
	rng  *rand.Rand
	zipf *rand.Zipf
	ops  int64 // per-worker op counter, salts append/replace seeds

	// sessions caches this worker's open /v1 session per table, with
	// sessOrder tracking insertion order so eviction under the cap is
	// deterministic (map iteration is not).
	sessions  map[int]string
	sessOrder []int
}

// maxWorkerSessions caps each worker's cached sessions so the fleet stays
// under the server's session limit (workers × cap < 1024); the oldest is
// closed server-side and reopened on next use.
const maxWorkerSessions = 96

func newHarness(client *http.Client, baseURL string, seed int64, tables, rowsMin, rowsMax, chunk int, zipfS float64) *harness {
	return &harness{
		client:  client,
		baseURL: baseURL,
		seed:    seed,
		tables:  tables,
		rowsMin: rowsMin,
		rowsMax: rowsMax,
		chunk:   chunk,
		zipfS:   zipfS,
		lats:    make(map[string][]time.Duration),
		counts:  make(map[string]int),
	}
}

// runPhase fans n work items over the worker pool. Each worker's state is
// seeded from (harness seed, worker id) only.
func (h *harness) runPhase(workers, n int, fn func(w *workerState, i int)) {
	var wg sync.WaitGroup
	next := make(chan int)
	for wid := 0; wid < workers; wid++ {
		rng := rand.New(rand.NewSource(h.seed + int64(wid)*7919))
		w := &workerState{id: wid, rng: rng, zipf: rand.NewZipf(rng, h.zipfSExp(), 1, uint64(h.tables-1))}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(w, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

func (h *harness) zipfSExp() float64 {
	if h.zipfS > 1 {
		return h.zipfS
	}
	return 1.2
}

// tableName, tableDataset and tableRows are pure functions of the table
// index (and the harness seed), so every worker derives the same tenant
// layout without coordination.
func (h *harness) tableName(i int) string { return fmt.Sprintf("t%03d", i) }

func (h *harness) tableDataset(i int) string {
	names := datagen.Names()
	return names[i%len(names)]
}

func (h *harness) tableRows(i int) int {
	r := rand.New(rand.NewSource(h.seed ^ int64(i)*0x9e3779b9))
	return h.rowsMin + r.Intn(h.rowsMax-h.rowsMin+1)
}

// upload POSTs table i's CSV. replace re-uploads over the live table (a
// tenant re-publishing its data), exercising the store's replacement path
// and generation bumps under load.
func (h *harness) upload(w *workerState, i int, replace bool) {
	dataSeed := h.seed + int64(i)
	if replace {
		// A re-upload ships different rows (same schema), so the replacement
		// is a real model swap, not a no-op.
		dataSeed += 1_000_000 + w.ops
	}
	w.ops++
	ds, err := datagen.ByName(h.tableDataset(i), h.tableRows(i), dataSeed)
	if err != nil {
		h.errs.set(fmt.Sprintf("datagen %s: %v", h.tableDataset(i), err))
		return
	}
	var body bytes.Buffer
	if err := ds.T.WriteCSV(&body); err != nil {
		h.errs.set(fmt.Sprintf("csv %s: %v", h.tableName(i), err))
		return
	}
	// Tiny embedding knobs: the harness measures serving behavior under
	// memory pressure, not embedding quality, and 200 preprocesses must fit
	// a CI smoke.
	url := fmt.Sprintf("%s/tables?name=%s&dim=8&epochs=1&seed=%d&replace=%s",
		h.baseURL, h.tableName(i), h.seed, boolParam(replace))
	h.do("upload", http.MethodPost, url, body.Bytes())
}

// sel POSTs a select; every other request forces the scaled path so the
// sample caches and slab admission see traffic too.
func (h *harness) sel(w *workerState, i int) {
	w.ops++
	req := `{"k":6,"l":4}`
	if w.rng.Intn(2) == 0 {
		req = `{"k":6,"l":4,"scale":{"threshold":1,"sample_budget":64}}`
	}
	h.do("select", http.MethodPost, h.baseURL+"/tables/"+h.tableName(i)+"/select", []byte(req))
}

// query POSTs a query-select with a predicate every dataset satisfies
// partially (first column non-missing), keeping the query path exercised
// without dataset-specific knowledge.
func (h *harness) query(w *workerState, i int) {
	w.ops++
	ds, err := datagen.ByName(h.tableDataset(i), 1, h.seed+int64(i))
	if err != nil {
		h.errs.set(fmt.Sprintf("datagen %s: %v", h.tableDataset(i), err))
		return
	}
	col := ds.T.ColumnNames()[0]
	req := fmt.Sprintf(`{"k":5,"l":4,"query":{"where":[{"col":%q,"op":"not_missing"}]}}`, col)
	h.do("query", http.MethodPost, h.baseURL+"/tables/"+h.tableName(i)+"/query", []byte(req))
}

// append POSTs a small same-schema chunk to table i.
func (h *harness) append(w *workerState, i int) {
	w.ops++
	ds, err := datagen.ByName(h.tableDataset(i), h.chunk, h.seed+int64(i)*31+w.ops*7)
	if err != nil {
		h.errs.set(fmt.Sprintf("datagen %s: %v", h.tableDataset(i), err))
		return
	}
	var body bytes.Buffer
	if err := ds.T.WriteCSV(&body); err != nil {
		h.errs.set(fmt.Sprintf("csv chunk %s: %v", h.tableName(i), err))
		return
	}
	h.do("append", http.MethodPost, h.baseURL+"/tables/"+h.tableName(i)+"/append", body.Bytes())
}

// sessionFor returns the worker's live /v1 session on table i, opening one
// on first use (evicting its oldest cached session past the cap). Empty
// string means the open was shed or failed — the op is skipped.
func (h *harness) sessionFor(w *workerState, i int) string {
	if id, ok := w.sessions[i]; ok {
		return id
	}
	if w.sessions == nil {
		w.sessions = make(map[int]string)
	}
	for len(w.sessOrder) >= maxWorkerSessions {
		old := w.sessOrder[0]
		w.sessOrder = w.sessOrder[1:]
		if id, ok := w.sessions[old]; ok {
			delete(w.sessions, old)
			h.doStatus("session", http.MethodDelete, h.baseURL+"/v1/sessions/"+id, nil)
		}
	}
	body := fmt.Sprintf(`{"table":%q}`, h.tableName(i))
	status, resp := h.doStatus("session", http.MethodPost, h.baseURL+"/v1/sessions", []byte(body))
	if status != http.StatusCreated {
		return ""
	}
	var out struct {
		Session string `json:"session"`
	}
	if err := json.Unmarshal(resp, &out); err != nil || out.Session == "" {
		h.errs.set(fmt.Sprintf("session create: bad body %q", resp))
		return ""
	}
	w.sessions[i] = out.Session
	w.sessOrder = append(w.sessOrder, i)
	return out.Session
}

// filteredSel runs one predicate-scoped select through the worker's session
// on table i, reopening the session once if replace traffic stranded it
// (409/404 — the staleness contract, not a failure), and drills into a
// third of the returned views.
func (h *harness) filteredSel(w *workerState, i int) {
	w.ops++
	ds, err := datagen.ByName(h.tableDataset(i), 1, h.seed+int64(i))
	if err != nil {
		h.errs.set(fmt.Sprintf("datagen %s: %v", h.tableDataset(i), err))
		return
	}
	col := ds.T.ColumnNames()[0]
	drill := w.rng.Intn(3) == 0
	for attempt := 0; attempt < 2; attempt++ {
		id := h.sessionFor(w, i)
		if id == "" {
			return
		}
		req := fmt.Sprintf(`{"k":5,"l":4,"where":[{"col":%q,"op":"not_missing"}],"weights":{"view_count":0.5}}`, col)
		status, resp := h.doStatus("filtered", http.MethodPost, h.baseURL+"/v1/sessions/"+id+"/select", []byte(req))
		if status == http.StatusNotFound || status == http.StatusConflict {
			delete(w.sessions, i)
			continue
		}
		if status != http.StatusOK || !drill {
			return
		}
		var view struct {
			SourceRows []int    `json:"source_rows"`
			Cols       []string `json:"cols"`
		}
		if json.Unmarshal(resp, &view) != nil || len(view.SourceRows) == 0 || len(view.Cols) == 0 {
			return
		}
		dd := fmt.Sprintf(`{"row":%d,"col":%q,"k":4,"l":3}`, view.SourceRows[0], view.Cols[0])
		h.doStatus("drilldown", http.MethodPost, h.baseURL+"/v1/sessions/"+id+"/drilldown", []byte(dd))
		return
	}
}

// doStatus is do for the session surface: it returns the status and body,
// tolerates 404/409 (sessions stranded by replace traffic — the caller
// reopens) and counts 429s as shed; 5xx stays a hard failure.
func (h *harness) doStatus(op, method, url string, body []byte) (int, []byte) {
	start := time.Now()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		h.errs.set(fmt.Sprintf("%s: %v", op, err))
		return 0, nil
	}
	resp, err := h.client.Do(req)
	if err != nil {
		h.errs.set(fmt.Sprintf("%s %s: %v", op, url, err))
		return 0, nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	took := time.Since(start)
	switch {
	case resp.StatusCode < 300:
		h.mu.Lock()
		h.lats[op] = append(h.lats[op], took)
		h.counts[op]++
		h.mu.Unlock()
	case resp.StatusCode == http.StatusTooManyRequests:
		if resp.Header.Get("Retry-After") == "" {
			h.errs.set(fmt.Sprintf("%s: 429 without Retry-After", op))
			return resp.StatusCode, msg
		}
		h.shed.add(op)
	case resp.StatusCode == http.StatusNotFound, resp.StatusCode == http.StatusConflict:
		h.shed.add(op + "-stale")
	default:
		h.errs.set(fmt.Sprintf("%s %s: status %d: %s", op, url, resp.StatusCode, strings.TrimSpace(string(msg))))
	}
	return resp.StatusCode, msg
}

// do executes one request and buckets the outcome: 2xx latencies feed the
// percentiles, 429 counts as shed (the governor refusing work is the
// feature under test), anything else is a hard failure that fails the run.
func (h *harness) do(op, method, url string, body []byte) {
	start := time.Now()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		h.errs.set(fmt.Sprintf("%s: %v", op, err))
		return
	}
	resp, err := h.client.Do(req)
	if err != nil {
		h.errs.set(fmt.Sprintf("%s %s: %v", op, url, err))
		return
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	took := time.Since(start)
	switch {
	case resp.StatusCode < 300:
		h.mu.Lock()
		h.lats[op] = append(h.lats[op], took)
		h.counts[op]++
		h.mu.Unlock()
	case resp.StatusCode == http.StatusTooManyRequests:
		if resp.Header.Get("Retry-After") == "" {
			h.errs.set(fmt.Sprintf("%s: 429 without Retry-After", op))
			return
		}
		h.shed.add(op)
	default:
		h.errs.set(fmt.Sprintf("%s %s: status %d: %s", op, url, resp.StatusCode, strings.TrimSpace(string(msg))))
	}
}

func (h *harness) get(path string) ([]byte, error) {
	resp, err := h.client.Get(h.baseURL + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(io.LimitReader(resp.Body, 1<<20))
}

func (h *harness) latencies(op string) []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := append([]time.Duration(nil), h.lats[op]...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// shedCounter counts 429 responses per operation.
type shedCounter struct {
	mu sync.Mutex
	m  map[string]int
}

func (c *shedCounter) add(op string) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]int)
	}
	c.m[op]++
	c.mu.Unlock()
}

func (c *shedCounter) count(op string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[op]
}

// firstError keeps the first hard failure; the run continues (draining the
// worker pool) but exits non-zero.
type firstError struct {
	mu  sync.Mutex
	msg string
}

func (e *firstError) set(msg string) {
	e.mu.Lock()
	if e.msg == "" {
		e.msg = msg
	}
	e.mu.Unlock()
}

func (e *firstError) Load() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.msg
}

// percentile returns the p-th percentile of sorted latencies.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func boolParam(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// procStatusBytes reads one RSS figure (VmRSS: current, VmHWM: high-water)
// from /proc/self/status; non-Linux platforms report ok=false.
func procStatusBytes(key string) (int64, bool) {
	if runtime.GOOS != "linux" {
		return 0, false
	}
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || fields[0] != key+":" {
			continue
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb << 10, true
	}
	return 0, false
}

// mergeBenchFile merges results into the label's entry of a
// subtab-bench-format file, preserving other labels and writing atomically
// (temp file + rename) like subtab-bench does.
func mergeBenchFile(path, label string, results map[string]entry) error {
	merged := map[string]map[string]entry{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &merged); err != nil {
			return fmt.Errorf("existing %s is not a bench file: %w", path, err)
		}
	}
	if merged[label] == nil {
		merged[label] = map[string]entry{}
	}
	for name, e := range results {
		merged[label][name] = e
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// parseByteSize parses a byte count with an optional KiB/MiB/GiB suffix
// (same grammar as subtab-server's flags).
func parseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30}} {
		if strings.HasSuffix(s, u.suffix) {
			mult, s = u.mult, strings.TrimSuffix(s, u.suffix)
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 || n > math.MaxInt64/mult {
		return 0, fmt.Errorf("want a non-negative byte count with optional KiB/MiB/GiB suffix, got %q", s)
	}
	return n * mult, nil
}
