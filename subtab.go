// Package subtab is a Go implementation of SubTab — "Selecting Sub-tables
// for Data Exploration" (Razmadze, Amsterdamer, Somech, Davidson, Milo;
// ICDE 2023, arXiv:2203.02754).
//
// Given a large table, SubTab selects a small k×l sub-table — a subset of
// rows projected on a subset of columns — that is informative: it captures
// the prominent association-rule patterns of the full table (cell coverage)
// while showing diverse values (diversity). The algorithm never mines rules
// at selection time; instead a one-off pre-processing phase bins every
// column and embeds the binned cells with Word2Vec, and each display
// clusters the resulting row/column vectors and picks centroid
// representatives. Query results reuse the pre-computed embedding, which is
// what makes per-query sub-table displays interactive.
//
// Quickstart:
//
//	t, err := subtab.ReadCSVFile("flights.csv")
//	...
//	model, err := subtab.Preprocess(t, subtab.DefaultOptions())
//	...
//	st, err := model.Select(10, 10, []string{"CANCELLED"})
//	...
//	fmt.Println(st.View)
//
// To display a query result instead of the whole table:
//
//	q := &subtab.Query{Where: []subtab.Predicate{{Col: "CANCELLED", Op: subtab.Eq, Num: 1}}}
//	st, err := model.SelectQuery(q, 10, 10, nil)
//
// Pre-processing is the expensive phase, so models persist: SaveModel and
// LoadModel round-trip a pre-processed model through a versioned binary
// format (everything Select needs, embeddings and the column-affinity matrix
// included), and a loaded model produces identical selections without
// re-running Preprocess:
//
//	_ = subtab.SaveModelFile("flights.subtab", model)
//	model, err := subtab.LoadModelFile("flights.subtab")  // milliseconds, not minutes
//
// For serving many users over the same tables, cmd/subtab-server exposes
// upload/select/query/rules as an HTTP/JSON API on top of internal/serve,
// whose model store is LRU-bounded in memory, deduplicates concurrent
// pre-processing runs, and spills to disk using this same format.
//
// Million-row tables stay interactive through the large-table selection
// mode (Options.Scale, or per call via Model.SelectWith): above a row
// threshold, Select clusters a deterministic stratified sample of the
// candidate rows with seeded mini-batch k-means instead of exact k-means
// over every tuple-vector. Below the threshold the pipeline is bit-for-bit
// the exact path.
//
// Tables larger than memory serve out-of-core: Model.UseCodeStoreFile
// moves the bin codes into a chunked, checksummed, mmap-backed code store
// and releases the in-memory copy, the scaled Select streams its sampler
// over store blocks, and ScaleOptions.SlabBudgetBytes spills the sampled
// tuple-vector slab to a temp file past the budget — all byte-identical to
// the in-memory path. SaveModel on a store-backed model writes a
// checksummed reference to the store (format v5) instead of inlining the
// codes.
//
// The packages behind this facade also implement the paper's evaluation
// stack: the informativeness metrics (Defs. 3.6–3.7), an Apriori rule miner,
// the greedy/semi-greedy Algorithm 1, and the RAN/NC/MAB/EmbDI baselines of
// §6 — see MineRules, NewEvaluator and the *Baseline functions.
package subtab

import (
	"io"

	"subtab/internal/baselines"
	"subtab/internal/binning"
	"subtab/internal/core"
	"subtab/internal/corpus"
	"subtab/internal/datagen"
	"subtab/internal/metrics"
	"subtab/internal/modelio"
	"subtab/internal/query"
	"subtab/internal/rules"
	"subtab/internal/table"
	"subtab/internal/word2vec"
)

// Table is a relational table with typed, column-major storage and
// first-class missing values.
type Table = table.Table

// Column is a single typed table column.
type Column = table.Column

// Value is a dynamically typed cell value.
type Value = table.Value

// Kind is a column type (Numeric or Categorical).
type Kind = table.Kind

// Column kinds.
const (
	Numeric     = table.Numeric
	Categorical = table.Categorical
)

// NewTable returns an empty table with the given name.
func NewTable(name string) *Table { return table.New(name) }

// NewNumericColumn builds a numeric column (math.NaN() marks missing cells).
func NewNumericColumn(name string, vals []float64) *Column {
	return table.NewNumeric(name, vals)
}

// NewCategoricalColumn builds a categorical column (empty string marks
// missing cells).
func NewCategoricalColumn(name string, vals []string) *Column {
	return table.NewCategorical(name, vals)
}

// ReadCSV parses CSV with a header row, inferring numeric vs categorical
// columns.
func ReadCSV(name string, r io.Reader) (*Table, error) { return table.ReadCSV(name, r) }

// ReadCSVFile reads a CSV file into a table.
func ReadCSVFile(path string) (*Table, error) { return table.ReadCSVFile(path) }

// Query is an exploratory selection-projection-group-by-sort query.
type Query = query.Query

// Predicate is a single column comparison in a query's WHERE conjunction.
type Predicate = query.Predicate

// Aggregate pairs an aggregate function with a column for group-by queries.
type Aggregate = query.Aggregate

// Comparison operators for predicates.
const (
	Eq         = query.Eq
	Neq        = query.Neq
	Lt         = query.Lt
	Leq        = query.Leq
	Gt         = query.Gt
	Geq        = query.Geq
	IsMissing  = query.IsMissing
	NotMissing = query.NotMissing
)

// Aggregate functions for group-by queries.
const (
	Count = query.Count
	Sum   = query.Sum
	Mean  = query.Mean
	Min   = query.Min
	Max   = query.Max
)

// Options configures the SubTab pipeline (binning, corpus, embedding,
// column strategy, large-table selection mode).
type Options = core.Options

// ScaleOptions configures the large-table selection mode: above
// ScaleOptions.Threshold candidate rows, Select clusters a deterministic
// stratified sample with seeded mini-batch k-means instead of running exact
// k-means over every tuple-vector, keeping million-row tables interactive.
// Below the threshold (or with the zero value) selections are bit-for-bit
// the exact path. Set it model-wide via Options.Scale or per call via
// Model.SelectWith.
type ScaleOptions = core.ScaleOptions

// BinningOptions configures how columns are split into bins.
type BinningOptions = binning.Options

// CorpusOptions configures the tabular-sentence corpus.
type CorpusOptions = corpus.Options

// EmbeddingOptions configures Word2Vec training.
type EmbeddingOptions = word2vec.Options

// Binning strategies for numeric columns.
const (
	KDEValleys = binning.KDEValleys
	Quantile   = binning.Quantile
	EqualWidth = binning.EqualWidth
)

// Column-selection strategies.
const (
	PatternGroups = core.PatternGroups
	Centroids     = core.Centroids
)

// DefaultOptions returns the paper's default pipeline settings (5 KDE bins,
// 100K-sentence corpus cap, pattern-group column selection).
func DefaultOptions() Options { return core.Default() }

// Model is a pre-processed table: binned, embedded, ready for interactive
// sub-table selection.
type Model = core.Model

// SubTable is a selected k×l sub-table with its source rows, columns and
// rendered view.
type SubTable = core.SubTable

// Preprocess runs SubTab's pre-processing phase (normalize, bin, embed) on
// a table. Run once per table; every subsequent Select/SelectQuery reuses
// the result.
func Preprocess(t *Table, opt Options) (*Model, error) { return core.Preprocess(t, opt) }

// SaveModel writes a pre-processed model to w in SubTab's versioned binary
// format. Everything Select/SelectQuery needs is serialized — table, binned
// representation, embedding vectors and the precomputed column-affinity
// matrix — so LoadModel restores the model without re-running Preprocess.
func SaveModel(w io.Writer, m *Model) error { return modelio.Save(w, m) }

// LoadModel reads a model written by SaveModel. The loaded model produces
// selections identical to the model that was saved (same seeds). Corrupt or
// truncated input and unknown format versions return errors.
func LoadModel(r io.Reader) (*Model, error) { return modelio.Load(r) }

// SaveModelFile writes a pre-processed model to path.
func SaveModelFile(path string, m *Model) error { return modelio.SaveFile(path, m) }

// LoadModelFile reads a model written by SaveModelFile.
func LoadModelFile(path string) (*Model, error) { return modelio.LoadFile(path) }

// AppendOptions configures incremental row ingestion (drift threshold,
// fine-tune epochs, forced re-bin).
type AppendOptions = core.AppendOptions

// AppendStats describes what an AppendRows call did: rows ingested, whether
// the table drifted into a full re-preprocess, new categories/tokens, and
// how much cached state was recomputed.
type AppendStats = core.AppendStats

// AppendRows ingests additional rows (schema-compatible with the model's
// table) and returns a model over the concatenated table — the streaming
// counterpart of Preprocess. The input model is never mutated, so selections
// against it can proceed while the append runs. Bin boundaries, embedding
// vectors, bin counts, the column-affinity matrix and the full-table vector
// cache are reused incrementally; when the appended rows drift too far from
// the binned distribution (or are structurally incompatible with the
// binning), the call transparently falls back to a full Preprocess of the
// concatenated table and says so in AppendStats. The zero AppendOptions
// uses the documented defaults.
func AppendRows(m *Model, rows *Table, opt AppendOptions) (*Model, AppendStats, error) {
	return m.Append(rows, opt)
}

// Rule is a mined association rule over binned items.
type Rule = rules.Rule

// MiningOptions configures the Apriori rule miner.
type MiningOptions = rules.Options

// MineRules mines association rules from a pre-processed model's binned
// table (used for evaluation and for highlighting patterns in displays).
func MineRules(m *Model, opt MiningOptions) ([]Rule, error) {
	return rules.Mine(m.B, opt)
}

// Highlight returns a cell predicate for Table.Render marking, per
// sub-table row, the cells of one association rule that the row exemplifies
// (at most one rule per row, as in the paper's UI), plus the chosen rule
// index per row (-1 when none).
func Highlight(m *Model, rs []Rule, st *SubTable) (func(row, col int) bool, []int) {
	return core.Highlight(m.B, rs, st)
}

// Evaluator scores sub-tables with the paper's informativeness metrics.
type Evaluator = metrics.Evaluator

// MetricSubTable identifies a candidate sub-table for the evaluator.
type MetricSubTable = metrics.SubTable

// NewEvaluator builds an evaluator over a model's binned table and a mined
// rule set; alpha balances cell coverage against diversity (paper: 0.5).
func NewEvaluator(m *Model, rs []Rule, alpha float64) *Evaluator {
	return metrics.NewEvaluator(m.B, rs, alpha)
}

// BaselineResult is a baseline algorithm's selected sub-table with score
// and cost.
type BaselineResult = baselines.Result

// RandomBaselineOptions configures the RAN baseline.
type RandomBaselineOptions = baselines.RandomOptions

// RandomBaseline repeatedly draws random sub-tables and keeps the best
// (the paper's RAN baseline).
func RandomBaseline(e *Evaluator, opt RandomBaselineOptions) (*BaselineResult, error) {
	return baselines.Random(e, opt)
}

// NCBaselineOptions configures the naive-clustering baseline.
type NCBaselineOptions = baselines.NCOptions

// NaiveClusteringBaseline clusters one-hot encoded rows and raw column
// sequences directly (the paper's NC baseline).
func NaiveClusteringBaseline(e *Evaluator, opt NCBaselineOptions) (*BaselineResult, error) {
	return baselines.NaiveClustering(e, opt)
}

// GreedyBaselineOptions configures Algorithm 1 and its semi-greedy variant.
type GreedyBaselineOptions = baselines.GreedyOptions

// GreedyBaseline runs the paper's Algorithm 1: exhaustive (or randomized)
// column enumeration with (1-1/e)-approximate greedy row selection.
func GreedyBaseline(e *Evaluator, opt GreedyBaselineOptions) (*BaselineResult, error) {
	return baselines.Greedy(e, opt)
}

// MABBaselineOptions configures the multi-armed-bandit baseline.
type MABBaselineOptions = baselines.MABOptions

// MABBaseline runs the UCB multi-armed-bandit baseline of §6.1.
func MABBaseline(e *Evaluator, opt MABBaselineOptions) (*BaselineResult, error) {
	return baselines.MAB(e, opt)
}

// EmbDIBaselineOptions configures the graph-walk embedding baseline.
type EmbDIBaselineOptions = baselines.EmbDIOptions

// EmbDIBaseline runs the EmbDI-style graph-walk embedding baseline.
func EmbDIBaseline(e *Evaluator, opt EmbDIBaselineOptions) (*BaselineResult, error) {
	return baselines.EmbDI(e, opt)
}

// FairnessOptions constrains selections so every group of a protected
// column is represented (paper §7 future work); see Model.SelectFair.
type FairnessOptions = core.FairnessOptions

// JoinResult is an equi-join output with row provenance.
type JoinResult = table.JoinResult

// EquiJoin inner-joins two tables on equal key columns (hash join); the
// result can be Preprocessed like any table, enabling sub-tables over joins
// (paper §7 future work).
func EquiJoin(left, right *Table, leftCol, rightCol, rightPrefix string) (*JoinResult, error) {
	return table.EquiJoin(left, right, leftCol, rightCol, rightPrefix)
}

// Dataset is a generated evaluation dataset with its planted ground truth.
type Dataset = datagen.Dataset

// GenerateDataset builds one of the paper's evaluation datasets by
// abbreviation (FL, CY, SP, CC, USF, BL); n <= 0 uses the default scaled
// row count. The generators are schema-faithful synthetic stand-ins with
// planted association rules (see DESIGN.md §4).
func GenerateDataset(name string, n int, seed int64) (*Dataset, error) {
	return datagen.ByName(name, n, seed)
}

// DatasetNames lists the generatable evaluation datasets.
func DatasetNames() []string { return datagen.Names() }
