// Package session implements server-side exploration sessions: the state
// that turns independent sub-table selects into a drill-down dialogue. A
// session remembers, per table, which (column, bin) strata its views have
// already shown (a bitset over the binning's global item-id space) and how
// often each column has been displayed. Successive selects feed that state
// back into the selection — covered strata are deprioritized in the
// stratified reservoir, frequently viewed columns are down-weighted — so
// the session surfaces new regions of the table instead of re-showing the
// same representative rows (the Smart Drill-Down / DataPilot session model
// the paper's exploration setting motivates).
//
// The package is a pure state machine over integer ids: it never reads
// codes or cells itself. Neighborhood expansion is delegated through the
// Explorer interface (implemented by core.Model), which keeps the
// dependency one-way — core knows nothing about sessions.
package session

import (
	"fmt"
	"sync"

	"subtab/internal/bitset"
)

// Explorer computes drill-down neighborhoods — the one selection-side
// operation a session needs. core.Model implements it.
type Explorer interface {
	// Neighborhood returns the sorted source rows around an anchor: the rows
	// sharing the anchor's bin in column col (col >= 0), or the rows
	// agreeing with the anchor on at least half of viewCols (col < 0).
	Neighborhood(row, col int, viewCols []int) ([]int, error)
}

// Session is one exploration dialogue over one table. All methods are safe
// for concurrent use.
type Session struct {
	// ID is the manager-assigned identifier ("s1", "s2", ...).
	ID string
	// Table is the served table name the session explores.
	Table string
	// Gen is the table's store generation at session creation: a session
	// outliving a table replacement is stale (its item ids and row ids
	// describe the old data) and the serving layer refuses it.
	Gen uint64

	mu       sync.Mutex
	covered  *bitset.Set
	views    []int
	lastRows []int
	lastCols []int
	seq      int
}

// RecordView folds a displayed sub-table into the session: items are the
// view's (column, bin) strata (core.Model.ViewItems), rows its source rows
// and cols its source column indices. The last view becomes the anchor
// space for the next DrillDown.
func (s *Session) RecordView(items, rows, cols []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, it := range items {
		s.covered.Add(it)
	}
	for _, c := range cols {
		if c >= 0 && c < len(s.views) {
			s.views[c]++
		}
	}
	s.lastRows = append(s.lastRows[:0], rows...)
	s.lastCols = append(s.lastCols[:0], cols...)
	s.seq++
}

// Covered returns a snapshot of the covered-strata bitset. The clone is
// the caller's own: a select runs against a stable snapshot even while
// concurrent views extend the session.
func (s *Session) Covered() *bitset.Set {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.covered.Clone()
}

// ViewCounts returns a copy of the per-column display counts.
func (s *Session) ViewCounts() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.views...)
}

// Views returns how many views the session has recorded.
func (s *Session) Views() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// LastView returns the rows and columns of the most recent view (copies),
// or ok=false before the first view.
func (s *Session) LastView() (rows, cols []int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seq == 0 {
		return nil, nil, false
	}
	return append([]int(nil), s.lastRows...), append([]int(nil), s.lastCols...), true
}

// DrillDown expands an anchor from the session's last view into its
// neighborhood: the scope the next select is bounded to. row must be one
// of the last view's source rows; col, when >= 0, must be one of its
// columns (a cell anchor — the neighborhood is the rows sharing that
// cell's bin). col < 0 anchors the whole row (rows agreeing on at least
// half of the view's columns).
func (s *Session) DrillDown(ex Explorer, row, col int) ([]int, error) {
	rows, cols, ok := s.LastView()
	if !ok {
		return nil, fmt.Errorf("session %s: drill-down needs a previous view; run a select first", s.ID)
	}
	found := false
	for _, r := range rows {
		if r == row {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("session %s: anchor row %d is not in the last view", s.ID, row)
	}
	if col >= 0 {
		found = false
		for _, c := range cols {
			if c == col {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("session %s: anchor column %d is not in the last view", s.ID, col)
		}
	}
	return ex.Neighborhood(row, col, cols)
}

// Manager owns the live sessions of a serving process. Safe for concurrent
// use.
type Manager struct {
	mu   sync.Mutex
	seq  int
	max  int
	byID map[string]*Session
}

// NewManager returns a manager bounding the live-session count to max
// (<= 0 uses the default of 1024).
func NewManager(max int) *Manager {
	if max <= 0 {
		max = 1024
	}
	return &Manager{max: max, byID: make(map[string]*Session)}
}

// Create opens a session over the named table: numItems sizes the
// covered-strata bitset (the binning's global item count), numCols the
// per-column view counters, gen pins the table's store generation. Session
// ids are assigned sequentially ("s1", "s2", ...), so a single-client
// replay of the same operations addresses the same sessions.
func (m *Manager) Create(table string, gen uint64, numItems, numCols int) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.byID) >= m.max {
		return nil, fmt.Errorf("session: %d sessions already open (limit %d); delete one first", len(m.byID), m.max)
	}
	m.seq++
	s := &Session{
		ID:      fmt.Sprintf("s%d", m.seq),
		Table:   table,
		Gen:     gen,
		covered: bitset.New(numItems),
		views:   make([]int, numCols),
	}
	m.byID[s.ID] = s
	return s, nil
}

// Get returns the session with the given id.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.byID[id]
	return s, ok
}

// Delete removes the session with the given id, reporting whether it
// existed.
func (m *Manager) Delete(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.byID[id]
	delete(m.byID, id)
	return ok
}

// DeleteTable removes every session opened on the named table (the table
// was removed or replaced) and returns how many were dropped.
func (m *Manager) DeleteTable(table string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for id, s := range m.byID {
		if s.Table == table {
			delete(m.byID, id)
			n++
		}
	}
	return n
}

// Len returns the live-session count.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byID)
}
