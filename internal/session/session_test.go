package session

import (
	"reflect"
	"strings"
	"testing"
)

// fakeExplorer records the delegated Neighborhood call and returns a canned
// scope.
type fakeExplorer struct {
	row, col int
	viewCols []int
	scope    []int
}

func (f *fakeExplorer) Neighborhood(row, col int, viewCols []int) ([]int, error) {
	f.row, f.col, f.viewCols = row, col, append([]int(nil), viewCols...)
	return f.scope, nil
}

func TestManagerLifecycle(t *testing.T) {
	m := NewManager(2)
	a, err := m.Create("flights", 7, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "s1" || a.Table != "flights" || a.Gen != 7 {
		t.Fatalf("session = %+v, want s1/flights/gen 7", a)
	}
	b, err := m.Create("flights", 7, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != "s2" {
		t.Fatalf("second id = %q, want s2", b.ID)
	}
	if _, err := m.Create("other", 1, 10, 2); err == nil {
		t.Fatal("third session above the limit was not refused")
	} else if !strings.Contains(err.Error(), "delete one first") {
		t.Fatalf("limit error %q lacks guidance", err)
	}
	if got, ok := m.Get("s1"); !ok || got != a {
		t.Fatal("Get(s1) did not return the created session")
	}
	if !m.Delete("s1") || m.Delete("s1") {
		t.Fatal("Delete not idempotent-correct")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestManagerDeleteTable(t *testing.T) {
	m := NewManager(0)
	for i := 0; i < 3; i++ {
		if _, err := m.Create("flights", 1, 10, 2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Create("taxis", 1, 10, 2); err != nil {
		t.Fatal(err)
	}
	if n := m.DeleteTable("flights"); n != 3 {
		t.Fatalf("DeleteTable dropped %d sessions, want 3", n)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d after DeleteTable, want 1", m.Len())
	}
}

func TestRecordViewAccumulates(t *testing.T) {
	m := NewManager(0)
	s, err := m.Create("flights", 1, 50, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s.Views() != 0 {
		t.Fatal("fresh session reports views")
	}
	if _, _, ok := s.LastView(); ok {
		t.Fatal("fresh session reports a last view")
	}
	s.RecordView([]int{3, 7, 7, 12}, []int{10, 20, 30}, []int{0, 2})
	s.RecordView([]int{7, 40}, []int{40, 50}, []int{2, 4})
	if s.Views() != 2 {
		t.Fatalf("Views = %d, want 2", s.Views())
	}
	cov := s.Covered()
	for _, it := range []int{3, 7, 12, 40} {
		if !cov.Contains(it) {
			t.Fatalf("item %d not covered", it)
		}
	}
	if cov.Count() != 4 {
		t.Fatalf("covered count = %d, want 4", cov.Count())
	}
	// The snapshot is detached: mutating it never leaks back.
	cov.Add(49)
	if s.Covered().Contains(49) {
		t.Fatal("covered snapshot aliases session state")
	}
	if got := s.ViewCounts(); !reflect.DeepEqual(got, []int{1, 0, 2, 0, 1, 0}) {
		t.Fatalf("ViewCounts = %v", got)
	}
	rows, cols, ok := s.LastView()
	if !ok || !reflect.DeepEqual(rows, []int{40, 50}) || !reflect.DeepEqual(cols, []int{2, 4}) {
		t.Fatalf("LastView = %v/%v/%v, want the second view", rows, cols, ok)
	}
}

func TestDrillDownValidatesAnchor(t *testing.T) {
	m := NewManager(0)
	s, err := m.Create("flights", 1, 50, 6)
	if err != nil {
		t.Fatal(err)
	}
	ex := &fakeExplorer{scope: []int{1, 2, 3}}
	if _, err := s.DrillDown(ex, 10, -1); err == nil {
		t.Fatal("drill-down before any view was not refused")
	} else if !strings.Contains(err.Error(), "run a select first") {
		t.Fatalf("no-view error %q lacks guidance", err)
	}
	s.RecordView([]int{1}, []int{10, 20, 30}, []int{0, 2})
	if _, err := s.DrillDown(ex, 99, -1); err == nil || !strings.Contains(err.Error(), "anchor row 99") {
		t.Fatalf("foreign anchor row not refused: %v", err)
	}
	if _, err := s.DrillDown(ex, 20, 5); err == nil || !strings.Contains(err.Error(), "anchor column 5") {
		t.Fatalf("foreign anchor column not refused: %v", err)
	}
	scope, err := s.DrillDown(ex, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scope, []int{1, 2, 3}) {
		t.Fatalf("scope = %v", scope)
	}
	if ex.row != 20 || ex.col != 2 || !reflect.DeepEqual(ex.viewCols, []int{0, 2}) {
		t.Fatalf("explorer called with (%d, %d, %v)", ex.row, ex.col, ex.viewCols)
	}
	// Row anchor: col < 0 passes through without column validation.
	if _, err := s.DrillDown(ex, 30, -1); err != nil {
		t.Fatal(err)
	}
	if ex.col != -1 {
		t.Fatalf("row anchor delegated col %d, want -1", ex.col)
	}
}
