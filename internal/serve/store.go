// Package serve is SubTab's concurrent serving layer. The paper's two-phase
// design makes every display interactive *after* a table's one-off
// pre-processing; this package amortizes that pre-processing across
// requests, sessions and process restarts:
//
//   - Store is a concurrency-safe model cache: LRU-bounded in memory,
//     singleflight-deduplicated (N concurrent requests for the same table
//     trigger exactly one Preprocess) and optionally disk-backed through
//     package modelio, so evicted or restarted models reload in milliseconds
//     instead of re-training.
//   - Service exposes the user-facing operations — select, select-query,
//     mine-rules, highlight — over named tables.
//   - NewHandler adapts a Service to an HTTP/JSON API (cmd/subtab-server).
package serve

import (
	"container/list"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"subtab/internal/core"
	"subtab/internal/memgov"
	"subtab/internal/modelio"
	"subtab/internal/shard"
)

// ErrNotFound is returned for operations on tables the store does not know.
var ErrNotFound = errors.New("serve: table not found")

// DefaultMaxModels is the default in-memory LRU bound.
const DefaultMaxModels = 8

// StoreOptions configures a Store.
type StoreOptions struct {
	// MaxModels bounds the number of models held in memory (<= 0 uses
	// DefaultMaxModels). The bound only takes effect when Dir is set:
	// evicted models survive on disk and reload on demand. A memory-only
	// store never evicts — the source data is gone after pre-processing, so
	// eviction would silently unregister tables clients already created.
	MaxModels int
	// Dir, when non-empty, persists every cached model to disk via modelio
	// and serves cache misses from disk before rebuilding. The directory is
	// created on first use.
	Dir string
	// AllowMissingShards loads sharded models whose shard files are partly
	// absent (a coordinator owning the model but not every shard). Present
	// shards still validate against the model's shard map; selections on
	// such a model need a scatter/gather sampler, installed via
	// PrepareModel.
	AllowMissingShards bool
	// PrepareModel, when non-nil, runs on every model served from the disk
	// cache before it is installed — the hook a coordinator uses to attach
	// its shard-peer sampler to reloaded sharded models. It must be safe
	// for concurrent use and must not mutate models already serving.
	PrepareModel func(name string, m *core.Model) error
	// Governor, when non-nil, byte-accounts every resident model under
	// memgov.ClassModels (each entry weighted by core.Model.ResidentBytes)
	// and registers a cold-end eviction callback, turning the LRU from
	// entry-counted into byte-weighted: any consumer growing past the
	// process budget sheds this store's cold models first. MaxModels stays
	// as a count backstop. Models inserted into a governed store also get
	// core.Model.SetGovernor, so their vector/sample caches settle under
	// their own classes.
	Governor *memgov.Governor
}

// StoreStats are cumulative counters describing cache behavior.
type StoreStats struct {
	Hits      int64 // served from memory
	DiskLoads int64 // served by loading a persisted model
	Builds    int64 // served by running the build function (Preprocess)
	Evictions int64 // models dropped from memory by the LRU bound
}

// Store is a concurrency-safe, LRU-bounded, disk-backed model cache.
type Store struct {
	opt StoreOptions

	mu       sync.Mutex
	lru      *list.List // of *storeEntry, front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flightCall
	gen      map[string]uint64      // bumped by Put/Remove; stale flights check it
	nameMu   map[string]*sync.Mutex // serializes persist+insert per table name

	hits, diskLoads, builds, evictions atomic.Int64
}

type storeEntry struct {
	name  string
	model *core.Model
	// bytes is the model's ResidentBytes estimate, accounted under
	// memgov.ClassModels while the entry lives (0 on ungoverned stores).
	// Grows are issued by the insert wrapper after s.mu is released; every
	// removal path (evict, replace, Remove) Shrinks exactly once under
	// s.mu — Shrink is exact and never runs evictors, so the pairing nets
	// correctly whichever side lands first.
	bytes int64
}

// flightCall deduplicates concurrent builds of the same table.
type flightCall struct {
	done     chan struct{}
	hasBuild bool // the flight can create the model, not just look it up
	model    *core.Model
	err      error
}

// NewStore returns an empty store.
func NewStore(opt StoreOptions) *Store {
	if opt.MaxModels <= 0 {
		opt.MaxModels = DefaultMaxModels
	}
	s := &Store{
		opt:      opt,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flightCall),
		gen:      make(map[string]uint64),
		nameMu:   make(map[string]*sync.Mutex),
	}
	if opt.Governor != nil {
		// Registered under its own label, not ClassModels: the skip rule
		// exempts a class's own evictors from reclaims that class triggers,
		// but a model insert growing past the budget is exactly when the
		// cold end should shed — and the insert's Grow runs outside s.mu,
		// so self-eviction cannot deadlock. The callback never evicts the
		// hottest entry (the one just inserted or being served).
		opt.Governor.RegisterEvictor("store-lru", s.reclaimModels)
	}
	return s
}

// reclaimModels is the governor's eviction callback: drop cold-end LRU
// entries (disk-backed stores) or at least their per-model caches
// (memory-only stores, which must not unregister tables) until need bytes
// were freed or only the hottest entry remains. Runs without the governor
// lock held, per the memgov contract.
func (s *Store) reclaimModels(need int64) int64 {
	var freed int64
	for freed < need {
		s.mu.Lock()
		back := s.lru.Back()
		if back == nil || back == s.lru.Front() {
			s.mu.Unlock()
			break
		}
		if s.opt.Dir == "" {
			// Nowhere to reload from: keep every entry, but release the cold
			// half's rebuildable caches, coldest first.
			var released int64
			for el := back; el != nil && el != s.lru.Front() && freed+released < need; el = el.Prev() {
				ent := el.Value.(*storeEntry)
				released += ent.model.CacheBytes()
				ent.model.ReleaseVectorCache()
			}
			s.mu.Unlock()
			return freed + released
		}
		ent := s.lru.Remove(back).(*storeEntry)
		delete(s.entries, ent.name)
		s.opt.Governor.Shrink(memgov.ClassModels, ent.bytes)
		cacheBytes := ent.model.CacheBytes()
		ent.model.ReleaseVectorCache()
		s.evictions.Add(1)
		s.mu.Unlock()
		freed += ent.bytes + cacheBytes
	}
	return freed
}

// Stats returns a snapshot of the cache counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Hits:      s.hits.Load(),
		DiskLoads: s.diskLoads.Load(),
		Builds:    s.builds.Load(),
		Evictions: s.evictions.Load(),
	}
}

// Get returns the cached model for name, consulting memory first and then
// the disk cache. It returns ErrNotFound when the table is unknown.
func (s *Store) Get(name string) (*core.Model, error) {
	return s.GetOrBuild(name, nil)
}

// GetOrBuild returns the model for name, building it at most once across
// concurrent callers: requests arriving while a build is in flight wait for
// that build instead of starting their own (the singleflight pattern). The
// lookup order is memory, disk (when Dir is set), then build; a nil build
// turns the final step into ErrNotFound. Successful builds are persisted to
// disk and inserted into the in-memory LRU.
func (s *Store) GetOrBuild(name string, build func() (*core.Model, error)) (*core.Model, error) {
	for {
		s.mu.Lock()
		if el, ok := s.entries[name]; ok {
			s.lru.MoveToFront(el)
			m := el.Value.(*storeEntry).model
			s.mu.Unlock()
			s.hits.Add(1)
			return m, nil
		}
		if c, ok := s.inflight[name]; ok {
			// A flight that cannot build (a plain lookup) must not decide
			// the fate of a caller that can: wait it out, take a success,
			// but retry with our own build on its failure.
			joinable := c.hasBuild || build == nil
			s.mu.Unlock()
			<-c.done
			if joinable || c.err == nil {
				return c.model, c.err
			}
			continue
		}
		c := &flightCall{done: make(chan struct{}), hasBuild: build != nil}
		s.inflight[name] = c
		startGen := s.gen[name]
		s.mu.Unlock()

		var built bool
		c.model, built, c.err = s.miss(name, build)
		if c.err == nil {
			c.model, c.err = s.commit(name, c.model, built, startGen)
		}

		s.mu.Lock()
		delete(s.inflight, name)
		s.mu.Unlock()
		close(c.done)
		return c.model, c.err
	}
}

// commit installs a flight's result unless the table changed generation
// (Put or Remove) while the flight was running — then the flight's model is
// stale: whatever the store holds now wins, and nothing is persisted over
// it. The per-name lock serializes this against concurrent Put/Remove.
func (s *Store) commit(name string, m *core.Model, built bool, startGen uint64) (*core.Model, error) {
	nl := s.lockName(name)
	nl.Lock()
	defer nl.Unlock()
	s.mu.Lock()
	if s.gen[name] != startGen {
		if el, ok := s.entries[name]; ok {
			m = el.Value.(*storeEntry).model
		}
		s.mu.Unlock()
		return m, nil
	}
	s.mu.Unlock()
	if built && s.opt.Dir != "" {
		// Persist outside s.mu (file I/O) but under the name lock, so no
		// replacement can interleave between the write and the insert.
		if err := s.persist(name, m); err != nil {
			return nil, fmt.Errorf("serve: persisting model %q: %w", name, err)
		}
	}
	s.insert(name, m)
	return m, nil
}

// miss resolves a cache miss outside the store lock: disk first, then
// build. built reports that the model came from the build function and
// still needs persisting.
func (s *Store) miss(name string, build func() (*core.Model, error)) (*core.Model, bool, error) {
	if s.opt.Dir != "" {
		if m, err := s.loadDisk(name); err == nil {
			s.diskLoads.Add(1)
			return m, false, nil
		}
		// A missing file is the normal miss; a corrupt one is treated the
		// same way so the serving layer self-heals by rebuilding over it.
	}
	if build == nil {
		return nil, false, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	m, err := build()
	if err != nil {
		return nil, false, err
	}
	s.builds.Add(1)
	return m, true, nil
}

// loadDisk reads name's persisted model, honouring the store's shard
// policy and running the PrepareModel hook before anyone can see it.
func (s *Store) loadDisk(name string) (*core.Model, error) {
	m, err := modelio.LoadFileWith(s.path(name), modelio.LoadOptions{AllowMissingShards: s.opt.AllowMissingShards})
	if err != nil {
		return nil, err
	}
	if s.opt.PrepareModel != nil {
		if err := s.opt.PrepareModel(name, m); err != nil {
			return nil, fmt.Errorf("serve: preparing model %q: %w", name, err)
		}
	}
	return m, nil
}

// Put caches (and persists) a ready-made model under name, replacing any
// previous model with that name. In-flight builds of the same name that
// finish after a Put discard their result instead of clobbering it.
func (s *Store) Put(name string, m *core.Model) error {
	nl := s.lockName(name)
	nl.Lock()
	defer nl.Unlock()
	return s.putLocked(name, m)
}

// putLocked is Put for callers already holding the per-name lock (the
// out-of-core add path, which must keep the code-store file and the model
// insert under one critical section).
func (s *Store) putLocked(name string, m *core.Model) error {
	if s.opt.Dir != "" {
		if err := s.persist(name, m); err != nil {
			return fmt.Errorf("serve: persisting model %q: %w", name, err)
		}
	}
	if s.opt.Governor != nil {
		m.SetGovernor(s.opt.Governor)
	}
	s.mu.Lock()
	s.gen[name]++
	grow := s.insertLocked(name, m)
	s.mu.Unlock()
	s.opt.Governor.Grow(memgov.ClassModels, grow)
	return nil
}

// Update atomically replaces name's model with fn(current): the
// read-modify-write primitive behind streaming appends. Updates of one name
// are serialized by the per-name lock (two concurrent appends compose
// instead of the second clobbering the first), the generation is bumped so
// in-flight builds of the same name discard their now-stale results, and
// reads are never blocked — selections in flight keep the model they
// resolved, new requests see the replacement as soon as it is installed.
// fn must not mutate the model it is given; it builds and returns a new one
// (core.Model.Append's contract). Unknown names return ErrNotFound.
func (s *Store) Update(name string, fn func(*core.Model) (*core.Model, error)) (*core.Model, error) {
	nl := s.lockName(name)
	nl.Lock()
	defer nl.Unlock()
	s.mu.Lock()
	var cur *core.Model
	if el, ok := s.entries[name]; ok {
		cur = el.Value.(*storeEntry).model
		s.lru.MoveToFront(el)
	}
	s.mu.Unlock()
	if cur == nil && s.opt.Dir != "" {
		if m, err := s.loadDisk(name); err == nil {
			s.diskLoads.Add(1)
			cur = m
		}
	}
	if cur == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	next, err := fn(cur)
	if err != nil {
		return nil, err
	}
	if next == cur {
		// fn declined to change anything (e.g. a zero-row append): no
		// persist, no generation bump, no rules-cache churn — but a model
		// that was just deserialized from disk is worth keeping in memory,
		// or the next request pays the whole load again.
		s.insert(name, cur)
		return cur, nil
	}
	if s.opt.Dir != "" {
		if err := s.persist(name, next); err != nil {
			return nil, fmt.Errorf("serve: persisting model %q: %w", name, err)
		}
	}
	if s.opt.Governor != nil {
		next.SetGovernor(s.opt.Governor)
	}
	s.mu.Lock()
	s.gen[name]++
	grow := s.insertLocked(name, next)
	s.mu.Unlock()
	s.opt.Governor.Grow(memgov.ClassModels, grow)
	return next, nil
}

// lockName returns the mutex serializing mutations of one table name.
func (s *Store) lockName(name string) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	nl, ok := s.nameMu[name]
	if !ok {
		nl = &sync.Mutex{}
		s.nameMu[name] = nl
	}
	return nl
}

// Contains reports whether name is available in memory or on disk.
func (s *Store) Contains(name string) bool {
	s.mu.Lock()
	_, ok := s.entries[name]
	s.mu.Unlock()
	if ok {
		return true
	}
	if s.opt.Dir == "" {
		return false
	}
	_, err := os.Stat(s.path(name))
	return err == nil
}

// Remove drops name from memory and disk, and invalidates any in-flight
// build of the name so its result is not resurrected. Removing an unknown
// name is a no-op. Sharded tables drop every shard file their shard map
// references (plus the map itself), not just the single-store path — a
// table's disk footprint is whatever its map says it is.
func (s *Store) Remove(name string) {
	nl := s.lockName(name)
	nl.Lock()
	defer nl.Unlock()
	s.mu.Lock()
	s.gen[name]++
	if el, ok := s.entries[name]; ok {
		ent := s.lru.Remove(el).(*storeEntry)
		delete(s.entries, name)
		// Unaccount and release like an eviction: the table is gone, its
		// caches must not outlive it through stray model references.
		s.opt.Governor.Shrink(memgov.ClassModels, ent.bytes)
		ent.model.ReleaseVectorCache()
	}
	s.mu.Unlock()
	if s.opt.Dir != "" {
		if sm, err := shard.ReadFile(s.shardMapPath(name)); err == nil {
			for _, d := range sm.Shards {
				os.Remove(filepath.Join(s.opt.Dir, d.File))
			}
		}
		os.Remove(s.shardMapPath(name))
		os.Remove(s.path(name))
		os.Remove(s.path(name) + codesExt)
		// Paged raw columns: the single store plus any column shards. Model
		// paths are hex-encoded, so the glob pattern cannot be confused by
		// metacharacters in the table name.
		if files, err := filepath.Glob(s.path(name) + colsExt + "*"); err == nil {
			for _, f := range files {
				os.Remove(f)
			}
		}
	}
}

// Names lists every known table: in-memory models in MRU order followed by
// disk-only models in directory order.
func (s *Store) Names() []string {
	s.mu.Lock()
	names := make([]string, 0, len(s.entries))
	seen := make(map[string]bool, len(s.entries))
	for el := s.lru.Front(); el != nil; el = el.Next() {
		n := el.Value.(*storeEntry).name
		names = append(names, n)
		seen[n] = true
	}
	s.mu.Unlock()
	if s.opt.Dir == "" {
		return names
	}
	files, err := os.ReadDir(s.opt.Dir)
	if err != nil {
		return names
	}
	for _, f := range files {
		base, ok := strings.CutSuffix(f.Name(), modelExt)
		if !ok {
			continue
		}
		raw, err := hex.DecodeString(base)
		if err != nil || seen[string(raw)] {
			continue
		}
		names = append(names, string(raw))
	}
	return names
}

// MemoryLen returns the number of models currently held in memory.
func (s *Store) MemoryLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// insert wires a model into the cache and the governor: it registers the
// model with the governor (so its caches settle under their own classes),
// inserts under s.mu, and issues the entry's ClassModels grow after s.mu is
// released — Grow may run eviction callbacks, which take s.mu.
func (s *Store) insert(name string, m *core.Model) {
	if s.opt.Governor != nil {
		m.SetGovernor(s.opt.Governor)
	}
	s.mu.Lock()
	grow := s.insertLocked(name, m)
	s.mu.Unlock()
	s.opt.Governor.Grow(memgov.ClassModels, grow)
}

// insertLocked adds a model to the LRU, evicting from the cold end past
// MaxModels. Callers hold s.mu; the returned byte count must be Grown under
// memgov.ClassModels once s.mu is released (use insert unless already
// holding s.mu for other bookkeeping).
func (s *Store) insertLocked(name string, m *core.Model) (grow int64) {
	if el, ok := s.entries[name]; ok {
		ent := el.Value.(*storeEntry)
		s.lru.MoveToFront(el)
		if ent.model == m {
			return 0 // refresh only (e.g. a zero-row append): nothing changes
		}
		// Replacement: unaccount and release the predecessor — it left the
		// warm set for good (the generation bumped), and in-flight selections
		// on it keep their own references to whatever they already resolved.
		old := ent.model
		s.opt.Governor.Shrink(memgov.ClassModels, ent.bytes)
		old.ReleaseVectorCache()
		ent.model = m
		ent.bytes = s.modelBytes(m)
		return ent.bytes
	}
	ent := &storeEntry{name: name, model: m, bytes: s.modelBytes(m)}
	s.entries[name] = s.lru.PushFront(ent)
	grow = ent.bytes
	if s.opt.Dir == "" {
		return grow // nowhere to reload from: never evict (see StoreOptions)
	}
	for len(s.entries) > s.opt.MaxModels {
		back := s.lru.Back()
		if back == nil {
			break
		}
		ev := s.lru.Remove(back).(*storeEntry)
		delete(s.entries, ev.name)
		s.opt.Governor.Shrink(memgov.ClassModels, ev.bytes)
		// Release the evicted model's per-tenant caches (full tuple-vector
		// matrix, memoized samples) now: other references — a disk reload
		// that resurrects the entry, an in-flight selection — would otherwise
		// keep an O(rows×dim) cache alive for a table that left the warm set.
		// A selection racing the eviction rebuilds the cache it needs (and
		// keeps the backing array it already resolved; see core).
		ev.model.ReleaseVectorCache()
		s.evictions.Add(1)
	}
	return grow
}

// modelBytes is the entry weight of a model in a governed store (0 when
// ungoverned, keeping that path allocation- and scan-free).
func (s *Store) modelBytes(m *core.Model) int64 {
	if s.opt.Governor == nil {
		return 0
	}
	return m.ResidentBytes()
}

// modelExt is the on-disk model file suffix; codesExt is appended to the
// model path for a table's external code store (out-of-core selection);
// colsExt for its paged raw-column store (out-of-core view rendering);
// shardsExt is appended to the model path for a sharded table's sidecar
// shard map (the file Remove consults to delete every shard).
const (
	modelExt  = ".subtab"
	codesExt  = ".codes"
	colsExt   = ".cols"
	shardsExt = ".shards"
)

// CodeStorePath returns the disk-cache path of name's external code store
// — the file an out-of-core table's bin codes live in, next to its model
// file so modelio's relative references resolve. The cache directory is
// created if needed. Requires a disk-backed store.
func (s *Store) CodeStorePath(name string) (string, error) {
	if s.opt.Dir == "" {
		return "", errors.New("serve: out-of-core tables need a disk-backed store (set StoreOptions.Dir)")
	}
	if err := os.MkdirAll(s.opt.Dir, 0o755); err != nil {
		return "", err
	}
	return s.path(name) + codesExt, nil
}

// ColumnStorePath returns the disk-cache path of name's paged raw-column
// store — the file an out-of-core table's displayed cells live in, next to
// its model file so modelio's relative references resolve. Requires a
// disk-backed store.
func (s *Store) ColumnStorePath(name string) (string, error) {
	if s.opt.Dir == "" {
		return "", errors.New("serve: paged column stores need a disk-backed store (set StoreOptions.Dir)")
	}
	if err := os.MkdirAll(s.opt.Dir, 0o755); err != nil {
		return "", err
	}
	return s.path(name) + colsExt, nil
}

// ColumnShardPaths returns the disk-cache paths of name's n column-store
// shard files (".cols.000", ".cols.001", ...), cut at the same rows as the
// code shards so a worker holding 1/Nth of the codes holds 1/Nth of the
// column pages. Requires a disk-backed store.
func (s *Store) ColumnShardPaths(name string, n int) ([]string, error) {
	base, err := s.ColumnStorePath(name)
	if err != nil {
		return nil, err
	}
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("%s.%03d", base, i)
	}
	return paths, nil
}

// Generation returns name's replacement generation: it bumps on every Put,
// Update and Remove of the name. Coordinators key cross-request caches on
// it, so samples and cells gathered against a replaced table invalidate
// instead of serving the predecessor's rows.
func (s *Store) Generation(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen[name]
}

// ShardPaths returns the disk-cache paths of name's n shard files
// (".codes.000", ".codes.001", ...), creating the cache directory like
// CodeStorePath. Requires a disk-backed store.
func (s *Store) ShardPaths(name string, n int) ([]string, error) {
	base, err := s.CodeStorePath(name)
	if err != nil {
		return nil, err
	}
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("%s.%03d", base, i)
	}
	return paths, nil
}

// shardMapPath is the sidecar shard-map file for a sharded table.
func (s *Store) shardMapPath(name string) string {
	return s.path(name) + shardsExt
}

// path maps a table name to its cache file. Names are hex-encoded so
// arbitrary user-supplied names (slashes, dots, unicode) cannot escape Dir.
func (s *Store) path(name string) string {
	return filepath.Join(s.opt.Dir, hex.EncodeToString([]byte(name))+modelExt)
}

// persist writes the model file atomically: a temp file in the same
// directory is renamed over the final path, so concurrent readers never see
// a half-written model and a crash never corrupts the cache.
func (s *Store) persist(name string, m *core.Model) error {
	if err := os.MkdirAll(s.opt.Dir, 0o755); err != nil {
		return err
	}
	final := s.path(name)
	tmp, err := os.CreateTemp(s.opt.Dir, "tmp-*"+modelExt)
	if err != nil {
		return err
	}
	if err := modelio.Save(tmp, m); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
