// Serving-layer tests for out-of-core tables: the store=1 upload knob,
// the on-disk model + code store pairing, disk reloads that come back
// store-backed, selection equivalence against an in-memory twin, and the
// per-request slab budget.
package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"subtab/internal/core"
)

func TestAddTableOutOfCoreServesIdentically(t *testing.T) {
	dir := t.TempDir()
	svcOOC := NewService(NewStore(StoreOptions{Dir: dir}), testOptions())
	svcMem := NewService(NewStore(StoreOptions{}), testOptions())
	tbl := testTable("t", 2500, 7)
	mOOC, err := svcOOC.AddTableOutOfCore("t", tbl, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !mOOC.OutOfCore() {
		t.Fatal("AddTableOutOfCore served an in-core model")
	}
	if _, err := svcMem.AddTable("t", testTable("t", 2500, 7), nil, false); err != nil {
		t.Fatal(err)
	}

	// The model file and the code store sit side by side in the cache dir.
	csPath, err := svcOOC.Store().CodeStorePath("t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(csPath); err != nil {
		t.Fatalf("code store file missing: %v", err)
	}

	for _, scale := range []*core.ScaleOptions{nil, scaleForce()} {
		want, err := svcMem.SelectScaled("t", nil, 6, 3, nil, scale)
		if err != nil {
			t.Fatal(err)
		}
		got, err := svcOOC.SelectScaled("t", nil, 6, 3, nil, scale)
		if err != nil {
			t.Fatal(err)
		}
		if subTableFingerprint(got) != subTableFingerprint(want) {
			t.Fatalf("out-of-core serve diverged (scale=%v):\n got %s\nwant %s",
				scale, subTableFingerprint(got), subTableFingerprint(want))
		}
	}

	// A fresh service over the same cache dir reloads the model from disk
	// (modelio v5 external reference) and must serve the same selections,
	// still out-of-core.
	svcReload := NewService(NewStore(StoreOptions{Dir: dir}), testOptions())
	m, err := svcReload.Model("t")
	if err != nil {
		t.Fatal(err)
	}
	if !m.OutOfCore() {
		t.Fatal("disk reload lost the code store backing")
	}
	want, err := svcMem.SelectScaled("t", nil, 6, 3, nil, scaleForce())
	if err != nil {
		t.Fatal(err)
	}
	got, err := svcReload.SelectScaled("t", nil, 6, 3, nil, scaleForce())
	if err != nil {
		t.Fatal(err)
	}
	if subTableFingerprint(got) != subTableFingerprint(want) {
		t.Fatal("reloaded out-of-core model serves different selections")
	}

	// Rules and highlight still work (they materialize a private copy).
	if _, _, err := svcOOC.Rules("t", rulesOptionsForTest()); err != nil {
		t.Fatal(err)
	}

	// RemoveTable drops both files.
	svcOOC.RemoveTable("t")
	if _, err := os.Stat(csPath); !os.IsNotExist(err) {
		t.Fatalf("code store file survived RemoveTable: %v", err)
	}
}

// TestAppendKeepsTableOutOfCore pins that appending to a store-backed
// table re-exports the successor's codes instead of silently regressing
// the table to a resident code matrix: the served model stays out-of-core,
// the store file reflects the new row count, and the whole thing survives
// a disk reload.
func TestAppendKeepsTableOutOfCore(t *testing.T) {
	dir := t.TempDir()
	svc := NewService(NewStore(StoreOptions{Dir: dir}), testOptions())
	if _, err := svc.AddTableOutOfCore("t", testTable("t", 1200, 7), nil, false); err != nil {
		t.Fatal(err)
	}
	delta := testTable("t", 12, 8)
	next, stats, err := svc.AppendRows("t", delta, core.AppendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.AppendedRows != 12 {
		t.Fatalf("appended %d rows, want 12", stats.AppendedRows)
	}
	if !next.OutOfCore() {
		t.Fatal("append regressed the table to inline codes")
	}
	if _, err := next.SelectWith(nil, 6, 3, nil, scaleForce()); err != nil {
		t.Fatal(err)
	}
	// A fresh service over the cache dir sees the appended, still
	// out-of-core model.
	svc2 := NewService(NewStore(StoreOptions{Dir: dir}), testOptions())
	m, err := svc2.Model("t")
	if err != nil {
		t.Fatal(err)
	}
	if m.T.NumRows() != 1212 || !m.OutOfCore() {
		t.Fatalf("reload: %d rows, out_of_core=%v; want 1212, true", m.T.NumRows(), m.OutOfCore())
	}
}

// TestAddTableOutOfCoreNeedsDisk pins the memory-only rejection.
func TestAddTableOutOfCoreNeedsDisk(t *testing.T) {
	svc := NewService(NewStore(StoreOptions{}), testOptions())
	if _, err := svc.AddTableOutOfCore("t", testTable("t", 200, 1), nil, false); err == nil {
		t.Fatal("AddTableOutOfCore succeeded without a disk-backed store")
	}
}

// TestHTTPOutOfCoreUpload drives the store=1 knob and the slab-budget
// request field end to end.
func TestHTTPOutOfCoreUpload(t *testing.T) {
	dir := t.TempDir()
	svc := NewService(NewStore(StoreOptions{Dir: dir}), testOptions())
	srv := httptest.NewServer(NewHandler(svc, nil))
	t.Cleanup(srv.Close)
	csv := testCSV(600)

	resp, err := http.Post(srv.URL+"/tables?name=ooc&store=1&seed=4&workers=1", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	created := decodeBodyMap(t, resp, http.StatusCreated)
	if created["out_of_core"] != true {
		t.Fatalf("upload response = %v, want out_of_core=true", created)
	}

	var info TableInfo
	doJSON(t, "GET", srv.URL+"/tables/ooc", nil, http.StatusOK, &info)
	if !info.OutOfCore {
		t.Fatalf("info = %+v, want OutOfCore", info)
	}

	// Scaled select with a 1-byte slab budget: spills, still answers.
	var sel struct {
		SourceRows []int `json:"source_rows"`
	}
	body := map[string]any{
		"k": 5, "l": 3,
		"scale": map[string]any{"threshold": 1, "sample_budget": 300, "batch_size": 64, "max_iter": 20, "slab_budget": 1},
	}
	doJSON(t, "POST", srv.URL+"/tables/ooc/select", body, http.StatusOK, &sel)
	if len(sel.SourceRows) != 5 {
		t.Fatalf("select returned %d rows, want 5", len(sel.SourceRows))
	}

	// Negative slab budget is the caller's bug.
	bad := map[string]any{"k": 5, "l": 3, "scale": map[string]any{"slab_budget": -1}}
	doJSON(t, "POST", srv.URL+"/tables/ooc/select", bad, http.StatusBadRequest, nil)

	// store=1 without a cache dir is a 400, not a crash.
	memSrv := httptest.NewServer(NewHandler(NewService(NewStore(StoreOptions{}), testOptions()), nil))
	t.Cleanup(memSrv.Close)
	resp, err = http.Post(memSrv.URL+"/tables?name=x&store=1&workers=1", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	decodeBodyMap(t, resp, http.StatusBadRequest)

	// Bad store values are rejected.
	resp, err = http.Post(srv.URL+"/tables?name=y&store=maybe", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	decodeBodyMap(t, resp, http.StatusBadRequest)
}

func decodeBodyMap(t *testing.T, resp *http.Response, wantStatus int) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("status %d, want %d; body %v", resp.StatusCode, wantStatus, out)
	}
	return out
}
