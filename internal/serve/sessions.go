package serve

// Exploration sessions: the service half of the /v1 session API. A session
// is server-side state (package session) over one served table — the
// (column, bin) strata its views have covered, per-column display counts,
// and the last view's rows and columns as drill-down anchors. Session
// selects run the streaming predicate path (core.SelectExplore) with the
// session's coverage bitset deprioritizing already-shown strata and an
// optional DataPilot-style column bias, then fold the returned view back
// into the session.

import (
	"fmt"

	"subtab/internal/core"
	"subtab/internal/memgov"
	"subtab/internal/query"
	"subtab/internal/session"
)

// SessionWeights are the optional DataPilot-style column-bias knobs of a
// session select: each source column's score is multiplied by
// 1 / (1 + NullRate·nullRate(c) + ViewCount·views(c)), so columns full of
// missing values and columns the session has already shown repeatedly give
// way to informative unseen ones. Both zero (or a nil weights block) leaves
// the column step unbiased.
type SessionWeights struct {
	NullRate  float64 `json:"null_rate"`
	ViewCount float64 `json:"view_count"`
}

// SessionInfo describes one exploration session.
type SessionInfo struct {
	Session string `json:"session"`
	Table   string `json:"table"`
	Views   int    `json:"views"`
	Covered int    `json:"covered_strata"`
}

// CreateSession opens an exploration session over the named table. Tables
// with remote shards are refused: session selects bias the stratified
// reservoir and drill-downs stream every code block, both of which need
// the shards local (the coordinator's pushdown path serves plain filtered
// selects, not sessions).
func (s *Service) CreateSession(name string) (SessionInfo, error) {
	gen := s.store.Generation(name)
	m, err := s.store.Get(name)
	if err != nil {
		return SessionInfo{}, err
	}
	if src := m.ShardSource(); src != nil && !src.Complete() {
		return SessionInfo{}, fmt.Errorf("%w: table %q has remote shards; open sessions on an instance holding every shard", ErrBadRequest, name)
	}
	sess, err := s.sessions.Create(name, gen, m.B.NumItems(), m.T.NumCols())
	if err != nil {
		return SessionInfo{}, fmt.Errorf("%w: %v", ErrOverloaded, err)
	}
	return SessionInfo{Session: sess.ID, Table: name}, nil
}

// SessionStatus reports one session's state; unknown ids return ErrNotFound.
func (s *Service) SessionStatus(id string) (SessionInfo, error) {
	sess, ok := s.sessions.Get(id)
	if !ok {
		return SessionInfo{}, fmt.Errorf("%w: session %q", ErrNotFound, id)
	}
	return SessionInfo{
		Session: sess.ID,
		Table:   sess.Table,
		Views:   sess.Views(),
		Covered: sess.Covered().Count(),
	}, nil
}

// DeleteSession closes a session; unknown ids return ErrNotFound.
func (s *Service) DeleteSession(id string) error {
	if !s.sessions.Delete(id) {
		return fmt.Errorf("%w: session %q", ErrNotFound, id)
	}
	return nil
}

// sessionModel resolves a session's table, refusing stale sessions: the
// table was replaced or removed since the session opened, so the session's
// covered strata and anchor rows describe data that no longer exists.
func (s *Service) sessionModel(sess *session.Session) (*core.Model, error) {
	if s.store.Generation(sess.Table) != sess.Gen {
		return nil, fmt.Errorf("%w: session %s: table %q was replaced; open a new session", ErrExists, sess.ID, sess.Table)
	}
	m, err := s.store.Get(sess.Table)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// sessionBias folds the session's state into the per-column bias vector, or
// nil when wt is nil (unbiased column step).
func sessionBias(m *core.Model, sess *session.Session, wt *SessionWeights) []float64 {
	if wt == nil || (wt.NullRate == 0 && wt.ViewCount == 0) {
		return nil
	}
	nulls := m.ColumnNullRates()
	views := sess.ViewCounts()
	bias := make([]float64, len(nulls))
	for c := range bias {
		v := 0.0
		if c < len(views) {
			v = float64(views[c])
		}
		bias[c] = 1 / (1 + wt.NullRate*nulls[c] + wt.ViewCount*v)
	}
	return bias
}

// SessionSelect runs one session-scoped selection: the predicate
// conjunction streams over the code source (never materializing a resident
// table), strata previous views covered are deprioritized in the sampler,
// and the view is folded back into the session before returning. Admission
// control and the per-table concurrency limit apply exactly as for
// SelectScaled.
func (s *Service) SessionSelect(id string, preds []query.Predicate, k, l int, targets []string, scale *core.ScaleOptions, wt *SessionWeights) (*core.SubTable, error) {
	sess, ok := s.sessions.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: session %q", ErrNotFound, id)
	}
	return s.sessionExplore(sess, preds, nil, k, l, targets, scale, wt)
}

// SessionDrillDown expands an anchor from the session's last view into its
// neighborhood and selects the next view inside it. row is a source row of
// the last view; col, when non-empty, names a column of the last view (a
// cell anchor — the neighborhood is the rows sharing that cell's bin),
// otherwise the whole row anchors. The anchor must come from the last
// view; sessions without a view yet are refused.
func (s *Service) SessionDrillDown(id string, row int, col string, k, l int, targets []string, scale *core.ScaleOptions, wt *SessionWeights) (*core.SubTable, int, error) {
	sess, ok := s.sessions.Get(id)
	if !ok {
		return nil, 0, fmt.Errorf("%w: session %q", ErrNotFound, id)
	}
	m, err := s.sessionModel(sess)
	if err != nil {
		return nil, 0, err
	}
	ci := -1
	if col != "" {
		if ci = m.T.ColumnIndex(col); ci < 0 {
			return nil, 0, fmt.Errorf("%w: table %s: unknown column %q", ErrBadRequest, sess.Table, col)
		}
	}
	scope, err := sess.DrillDown(m, row, ci)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	st, err := s.sessionExplore(sess, nil, scope, k, l, targets, scale, wt)
	if err != nil {
		return nil, 0, err
	}
	return st, len(scope), nil
}

// sessionExplore is the shared admission + select + record step behind
// SessionSelect and SessionDrillDown.
func (s *Service) sessionExplore(sess *session.Session, preds []query.Predicate, scope []int, k, l int, targets []string, scale *core.ScaleOptions, wt *SessionWeights) (*core.SubTable, error) {
	release, ok := s.limiter.Acquire(sess.Table)
	if !ok {
		return nil, fmt.Errorf("%w: table %q is at its concurrency limit", ErrOverloaded, sess.Table)
	}
	defer release()
	m, err := s.sessionModel(sess)
	if err != nil {
		return nil, err
	}
	done, err := s.gov.Admit(memgov.ClassRequests, estimateSelectBytes(m, scale))
	if err != nil {
		return nil, fmt.Errorf("%w: select on %q: %w", ErrOverloaded, sess.Table, err)
	}
	defer done()
	spec := core.ExploreSpec{
		Where:   preds,
		Scope:   scope,
		K:       k,
		L:       l,
		Targets: targets,
		Scale:   scale,
		ColBias: sessionBias(m, sess, wt),
	}
	// The coverage bias engages only once the session has shown something:
	// a fresh session's first select is byte-identical to the sessionless
	// path (and keeps its sample-cache hits).
	if sess.Views() > 0 {
		spec.Covered = sess.Covered()
	}
	st, err := m.SelectExplore(spec)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	sess.RecordView(m.ViewItems(st), st.SourceRows, st.ColIdx)
	return st, nil
}
