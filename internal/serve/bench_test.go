package serve

import (
	"os"
	"testing"

	"subtab/internal/core"
	"subtab/internal/modelio"
	"subtab/internal/rules"
)

func rulesOptionsForTest() rules.Options { return rules.Options{} }

func rulesOptions(targets []string) rules.Options { return rules.Options{TargetCols: targets} }

func truncateFile(path string, n int64) error {
	return os.Truncate(path, n)
}

// The benchmarks quantify what the serving layer buys: a warm-cache Select
// versus paying cold Preprocess per request, with disk restore in between.
//
//	BenchmarkColdPreprocess  — no serving layer: every request re-trains
//	BenchmarkDiskLoadSelect  — restart path: load persisted model, select
//	BenchmarkWarmSelect      — steady state: cached model, select only

func benchTable() (*core.Model, error) {
	return core.Preprocess(testTable("bench", 2000, 17), testOptions())
}

func BenchmarkColdPreprocess(b *testing.B) {
	t := testTable("bench", 2000, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.Preprocess(t, testOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Select(10, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiskLoadSelect(b *testing.B) {
	m, err := benchTable()
	if err != nil {
		b.Fatal(err)
	}
	path := b.TempDir() + "/bench.subtab"
	if err := modelio.SaveFile(path, m); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loaded, err := modelio.LoadFile(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := loaded.Select(10, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWarmSelect(b *testing.B) {
	svc := NewService(NewStore(StoreOptions{}), testOptions())
	if _, err := svc.AddTable("bench", testTable("bench", 2000, 17), nil, false); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Select("bench", nil, 10, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWarmSelectParallel(b *testing.B) {
	svc := NewService(NewStore(StoreOptions{}), testOptions())
	if _, err := svc.AddTable("bench", testTable("bench", 2000, 17), nil, false); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := svc.Select("bench", nil, 10, 3, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
