// Governed serving-layer tests: the store's byte-weighted LRU, request
// admission, and the coordinator sample cache must keep the governor's
// ledger exactly consistent with what is actually resident, across every
// lifecycle edge (evict, replace, remove, reload, generation
// invalidation).
package serve

import (
	"errors"
	"net/http/httptest"
	"testing"

	"subtab/internal/core"
	"subtab/internal/memgov"
)

// governedModelBytes sums the store's accounted entry weights under its
// mutex — what ClassModels must equal at every quiescent point.
func governedModelBytes(s *Store) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b int64
	for _, el := range s.entries {
		b += el.Value.(*storeEntry).bytes
	}
	return b
}

// checkModelClass asserts the governor's ClassModels ledger matches the
// store's resident entries exactly.
func checkModelClass(t *testing.T, g *memgov.Governor, s *Store, when string) {
	t.Helper()
	want := governedModelBytes(s)
	if got := g.ClassBytes(memgov.ClassModels); got != want {
		t.Fatalf("%s: ClassModels = %d, store entries hold %d", when, got, want)
	}
}

// TestGovernedStoreEvictionAccounting walks a governed disk-backed store
// through Put / LRU-evict / disk-reload / Update-replace / Remove and pins
// that Stats().Evictions counts every eviction and the ClassModels ledger
// tracks exactly the resident entries at each step — no residue from
// evicted or replaced models, nothing double-counted on reload.
func TestGovernedStoreEvictionAccounting(t *testing.T) {
	g := memgov.New(0) // unlimited: pure ledger, evictions come from MaxModels
	s := NewStore(StoreOptions{MaxModels: 2, Dir: t.TempDir(), Governor: g})

	for _, name := range []string{"a", "b", "c"} {
		if err := s.Put(name, buildModel(t, name, 150)); err != nil {
			t.Fatal(err)
		}
		checkModelClass(t, g, s, "after Put "+name)
	}
	if got := s.Stats().Evictions; got != 1 {
		t.Fatalf("evictions = %d after third Put, want 1", got)
	}

	// Warm the evicted model's twin caches on a resident model, then force
	// its eviction: the ledger must drop both its ClassModels weight and its
	// cache classes (ReleaseVectorCache on the eviction path settles them).
	mb, err := s.Get("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mb.Select(5, 3, nil); err != nil {
		t.Fatal(err)
	}
	if g.ClassBytes(memgov.ClassVectorCache) <= 0 {
		t.Fatal("warm select did not settle vector-cache bytes")
	}
	if _, err := s.Get("c"); err != nil { // touch c so warm b is the cold end
		t.Fatal(err)
	}
	if _, err := s.Get("a"); err != nil { // reloads a, evicts b (LRU)
		t.Fatal(err)
	}
	if got := s.Stats().Evictions; got != 2 {
		t.Fatalf("evictions = %d after reload, want 2", got)
	}
	checkModelClass(t, g, s, "after evicting the warm model")
	if got := g.ClassBytes(memgov.ClassVectorCache); got != 0 {
		t.Fatalf("vector-cache class = %d after evicting its model, want 0", got)
	}

	// Update replaces the model in place: the old weight leaves the ledger,
	// the successor's enters, evictions do not change.
	evBefore := s.Stats().Evictions
	if _, err := s.Update("a", func(cur *core.Model) (*core.Model, error) {
		return buildModel(t, "a", 220), nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Evictions; got != evBefore {
		t.Fatalf("evictions moved %d -> %d on Update, want unchanged", evBefore, got)
	}
	checkModelClass(t, g, s, "after Update replace")

	// A no-op Update (fn returns the current model) must not re-account.
	if _, err := s.Update("a", func(cur *core.Model) (*core.Model, error) {
		return cur, nil
	}); err != nil {
		t.Fatal(err)
	}
	checkModelClass(t, g, s, "after no-op Update")

	for _, name := range s.Names() {
		s.Remove(name)
		checkModelClass(t, g, s, "after Remove "+name)
	}
	if got := g.ClassBytes(memgov.ClassModels); got != 0 {
		t.Fatalf("ClassModels = %d after removing every table, want 0", got)
	}
	if used := g.Used(); used != 0 {
		t.Fatalf("governor used = %d after removing every table, want 0 (some class leaked)", used)
	}
	if g.Peak() <= 0 {
		t.Fatal("governor never recorded a peak")
	}
}

// TestGovernedStoreBudgetEviction pins the byte-weighted LRU: inserts that
// grow ClassModels past the budget trigger the store's cold-end evictor
// (registered under its own label so model-insert Grows reach it), and the
// ledger never strands bytes for the shed entries.
func TestGovernedStoreBudgetEviction(t *testing.T) {
	probe := buildModel(t, "probe", 150)
	perModel := probe.ResidentBytes()
	// Room for ~2 models: the third insert must shed the coldest.
	g := memgov.New(perModel*2 + perModel/2)
	s := NewStore(StoreOptions{MaxModels: 64, Dir: t.TempDir(), Governor: g})

	for _, name := range []string{"a", "b", "c", "d"} {
		if err := s.Put(name, buildModel(t, name, 150)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Evictions; got == 0 {
		t.Fatal("no evictions despite inserts far past the byte budget")
	}
	if got := s.MemoryLen(); got >= 4 {
		t.Fatalf("memory holds %d models, want fewer than the 4 inserted", got)
	}
	checkModelClass(t, g, s, "after budget-driven eviction")
	// The shed tables are still served — from disk, not a rebuild.
	for _, name := range []string{"a", "b", "c", "d"} {
		if _, err := s.Get(name); err != nil {
			t.Fatalf("get %q after eviction: %v", name, err)
		}
	}
	if st := s.Stats(); st.Builds != 0 || st.DiskLoads == 0 {
		t.Fatalf("stats = %+v, want disk reloads and no rebuilds", st)
	}
	checkModelClass(t, g, s, "after reloading shed tables")
}

// TestServiceAdmission drives the two load-shedding refusals through
// Service.SelectScaled: a working set beyond the budget is refused with
// ErrOverloaded wrapping *memgov.ErrOverBudget (the Retry-After source),
// and the per-table concurrency limit sheds with ErrOverloaded alone.
func TestServiceAdmission(t *testing.T) {
	g := memgov.New(1) // any select's estimate exceeds one byte
	svc := NewService(NewStore(StoreOptions{Governor: g}), testOptions())
	svc.SetAdmission(g, 0)
	if _, err := svc.AddTable("t", testTable("t", 300, 5), nil, false); err != nil {
		t.Fatal(err)
	}
	_, err := svc.Select("t", nil, 5, 3, nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var ob *memgov.ErrOverBudget
	if !errors.As(err, &ob) {
		t.Fatalf("err = %v, want *memgov.ErrOverBudget in the chain", err)
	}
	if ob.RetryAfter <= 0 {
		t.Fatal("over-budget refusal carries no Retry-After hint")
	}
	if got := g.ClassBytes(memgov.ClassRequests); got != 0 {
		t.Fatalf("ClassRequests = %d after refusal, want 0 (refusals must not reserve)", got)
	}

	// Raise the budget: the same request is admitted, runs, and releases its
	// reservation on the way out.
	g2 := memgov.New(1 << 30)
	svc.SetAdmission(g2, 1)
	if _, err := svc.Select("t", nil, 5, 3, nil); err != nil {
		t.Fatal(err)
	}
	if got := g2.ClassBytes(memgov.ClassRequests); got != 0 {
		t.Fatalf("ClassRequests = %d after a completed select, want 0", got)
	}

	// Concurrency shed: hold the table's single slot, then request again.
	release, ok := svc.limiter.Acquire("t")
	if !ok {
		t.Fatal("first acquire on an idle table failed")
	}
	_, err = svc.Select("t", nil, 5, 3, nil)
	release()
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v at the concurrency limit, want ErrOverloaded", err)
	}
	if got := svc.LimiterRejections(); got != 1 {
		t.Fatalf("limiter rejections = %d, want 1", got)
	}
	if _, err := svc.Select("t", nil, 5, 3, nil); err != nil {
		t.Fatalf("select after the slot freed: %v", err)
	}
}

// TestCoordCacheGovernorAccounting pins the coordinator sample cache's
// governed lifecycle, including PR 8's generation-keyed invalidation: fills
// settle bytes under ClassCoordCache, a replaced table's stale entry is
// both discarded and un-accounted on the next lookup, and removing the
// table settles the class to zero through the eviction release hook.
func TestCoordCacheGovernorAccounting(t *testing.T) {
	const name = "t"
	coordDir, workerDir := splitCacheDir(t, name, 1200, 3, []int{1, 2})

	worker := NewService(NewStore(StoreOptions{Dir: workerDir, AllowMissingShards: true}), testOptions())
	if _, err := worker.Model(name); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(worker, nil))
	t.Cleanup(srv.Close)

	g := memgov.New(0)
	gen := uint64(0)
	var store *Store
	store = NewStore(StoreOptions{
		Dir:                coordDir,
		AllowMissingShards: true,
		Governor:           g,
		PrepareModel: func(n string, m *core.Model) error {
			if m.ShardSource() == nil || m.ShardSource().Complete() {
				return nil
			}
			sampler, err := NewShardSampler(n, m, ShardPeersOptions{
				Peers:      []string{srv.URL},
				Governor:   g,
				Generation: func() uint64 { return gen },
			})
			if err != nil {
				return err
			}
			m.SetShardSampler(sampler)
			return nil
		},
	})
	coord := NewService(store, testOptions())

	want, err := coord.SelectScaled(name, nil, 6, 3, nil, scaleForce())
	if err != nil {
		t.Fatal(err)
	}
	filled := g.ClassBytes(memgov.ClassCoordCache)
	if filled <= 0 {
		t.Fatalf("ClassCoordCache = %d after a scatter, want > 0", filled)
	}

	// Cache hit: same selection, no additional coord bytes.
	if _, err := coord.SelectScaled(name, nil, 6, 3, nil, scaleForce()); err != nil {
		t.Fatal(err)
	}
	if got := g.ClassBytes(memgov.ClassCoordCache); got != filled {
		t.Fatalf("ClassCoordCache moved %d -> %d on a cache hit", filled, got)
	}

	// Generation bump (the table was "replaced"): the next lookup discards
	// the stale entry, un-accounts it, and re-fills under the new tag —
	// ending with the same byte weight, never the sum of both.
	gen++
	again, err := coord.SelectScaled(name, nil, 6, 3, nil, scaleForce())
	if err != nil {
		t.Fatal(err)
	}
	if subTableFingerprint(again) != subTableFingerprint(want) {
		t.Fatal("re-scatter after generation bump diverged")
	}
	if got := g.ClassBytes(memgov.ClassCoordCache); got != filled {
		t.Fatalf("ClassCoordCache = %d after invalidation refill, want %d (stale entry must be un-accounted)", got, filled)
	}

	// Removing the table releases the model's caches — including, through
	// core.CacheReleaser, the coordinator's sample cache bytes.
	coord.RemoveTable(name)
	if got := g.ClassBytes(memgov.ClassCoordCache); got != 0 {
		t.Fatalf("ClassCoordCache = %d after RemoveTable, want 0", got)
	}
	if got := g.ClassBytes(memgov.ClassModels); got != 0 {
		t.Fatalf("ClassModels = %d after RemoveTable, want 0", got)
	}
}
