package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// testCSV renders a deterministic CSV with planted structure.
func testCSV(rows int) string {
	rng := rand.New(rand.NewSource(23))
	var b strings.Builder
	b.WriteString("amount,status,region\n")
	for i := 0; i < rows; i++ {
		g := rng.Intn(3)
		status := []string{"ok", "late", "failed"}[g]
		fmt.Fprintf(&b, "%d,%s,r%d\n", g*50+rng.Intn(10), status, rng.Intn(4))
	}
	return b.String()
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc := NewService(NewStore(StoreOptions{}), testOptions())
	srv := httptest.NewServer(NewHandler(svc, nil))
	t.Cleanup(srv.Close)
	return srv
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s = %d, want %d; body: %s", method, url, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
}

func uploadCSV(t *testing.T, srv *httptest.Server, name, csv string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(srv.URL+"/tables?name="+name+"&seed=4&workers=1", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST /tables = %d, want %d; body: %s", resp.StatusCode, wantStatus, raw)
	}
	var out map[string]any
	json.Unmarshal(raw, &out)
	return out
}

func TestHTTPLifecycle(t *testing.T) {
	srv := newTestServer(t)
	csv := testCSV(300)

	// Health before any table.
	var health map[string]any
	doJSON(t, "GET", srv.URL+"/healthz", nil, http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Fatalf("health = %v", health)
	}

	// Upload.
	created := uploadCSV(t, srv, "pay", csv, http.StatusCreated)
	if created["rows"] != float64(300) || created["cols"] != float64(3) {
		t.Fatalf("created = %v", created)
	}

	// Duplicate name conflicts; replace=1 overwrites.
	uploadCSV(t, srv, "pay", csv, http.StatusConflict)
	resp, err := http.Post(srv.URL+"/tables?name=pay&replace=1&workers=1", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("replace upload = %d, want 201", resp.StatusCode)
	}

	// Listing and info.
	var list struct {
		Tables []TableInfo `json:"tables"`
	}
	doJSON(t, "GET", srv.URL+"/tables", nil, http.StatusOK, &list)
	if len(list.Tables) != 1 || list.Tables[0].Name != "pay" || !list.Tables[0].Loaded {
		t.Fatalf("tables = %+v", list.Tables)
	}
	var info TableInfo
	doJSON(t, "GET", srv.URL+"/tables/pay", nil, http.StatusOK, &info)
	if info.Rows != 300 || len(info.Columns) != 3 {
		t.Fatalf("info = %+v", info)
	}

	// Whole-table select.
	var sel subTableResponse
	doJSON(t, "POST", srv.URL+"/tables/pay/select",
		map[string]any{"k": 5, "l": 2, "targets": []string{"status"}}, http.StatusOK, &sel)
	if len(sel.SourceRows) == 0 || len(sel.SourceRows) > 5 {
		t.Fatalf("select returned %d rows, want 1..5", len(sel.SourceRows))
	}
	if len(sel.Cols) != 2 || len(sel.Cells) != len(sel.SourceRows) {
		t.Fatalf("select shape: cols=%v cells=%d", sel.Cols, len(sel.Cells))
	}
	if !contains(sel.Cols, "status") {
		t.Fatalf("target column missing from %v", sel.Cols)
	}

	// Query select.
	var qsel subTableResponse
	doJSON(t, "POST", srv.URL+"/tables/pay/query", map[string]any{
		"k": 4, "l": 2,
		"query": map[string]any{
			"where": []map[string]any{{"col": "status", "op": "=", "str": "failed"}},
		},
	}, http.StatusOK, &qsel)
	if len(qsel.SourceRows) == 0 {
		t.Fatal("query select returned no rows")
	}
	for _, row := range qsel.Cells {
		if i := index(qsel.Cols, "status"); i >= 0 && row[i] != "failed" {
			t.Fatalf("query row leaked status %q", row[i])
		}
	}

	// Highlighted select.
	var hsel subTableResponse
	doJSON(t, "POST", srv.URL+"/tables/pay/select",
		map[string]any{"k": 6, "l": 3, "highlight": true}, http.StatusOK, &hsel)
	if len(hsel.RuleLabels) != len(hsel.SourceRows) {
		t.Fatalf("rule labels: %d for %d rows", len(hsel.RuleLabels), len(hsel.SourceRows))
	}

	// Rules.
	var rl struct {
		Count int            `json:"count"`
		Rules []ruleResponse `json:"rules"`
	}
	doJSON(t, "GET", srv.URL+"/tables/pay/rules?min_support=0.05", nil, http.StatusOK, &rl)
	if rl.Count != len(rl.Rules) {
		t.Fatalf("rules count %d != %d", rl.Count, len(rl.Rules))
	}
	if rl.Count == 0 {
		t.Fatal("planted structure mined no rules")
	}

	// Delete.
	doJSON(t, "DELETE", srv.URL+"/tables/pay", nil, http.StatusOK, nil)
	doJSON(t, "GET", srv.URL+"/tables/pay", nil, http.StatusNotFound, nil)
}

func TestHTTPErrors(t *testing.T) {
	srv := newTestServer(t)

	// Unknown table.
	doJSON(t, "POST", srv.URL+"/tables/ghost/select", map[string]any{"k": 3, "l": 2}, http.StatusNotFound, nil)
	doJSON(t, "GET", srv.URL+"/tables/ghost/rules", nil, http.StatusNotFound, nil)
	doJSON(t, "DELETE", srv.URL+"/tables/ghost", nil, http.StatusNotFound, nil)

	// Missing name on upload.
	resp, err := http.Post(srv.URL+"/tables", "text/csv", strings.NewReader("a\n1\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("upload without name = %d, want 400", resp.StatusCode)
	}

	// Bad pipeline knob.
	resp, err = http.Post(srv.URL+"/tables?name=x&bins=-3", "text/csv", strings.NewReader("a\n1\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad bins = %d, want 400", resp.StatusCode)
	}

	uploadCSV(t, srv, "err", testCSV(120), http.StatusCreated)

	// Query endpoint without a query.
	doJSON(t, "POST", srv.URL+"/tables/err/query", map[string]any{"k": 3, "l": 2}, http.StatusBadRequest, nil)

	// Unknown predicate op and unknown aggregate.
	doJSON(t, "POST", srv.URL+"/tables/err/query", map[string]any{
		"query": map[string]any{"where": []map[string]any{{"col": "amount", "op": "~", "num": 1}}},
	}, http.StatusBadRequest, nil)
	doJSON(t, "POST", srv.URL+"/tables/err/query", map[string]any{
		"query": map[string]any{"group_by": []string{"status"}, "aggs": []map[string]any{{"func": "median"}}},
	}, http.StatusBadRequest, nil)

	// Unknown JSON field is rejected (catches client typos).
	doJSON(t, "POST", srv.URL+"/tables/err/select", map[string]any{"rows": 3}, http.StatusBadRequest, nil)

	// Malformed rules knob.
	doJSON(t, "GET", srv.URL+"/tables/err/rules?min_support=2", nil, http.StatusBadRequest, nil)

	// Unknown target column is the client's mistake: 400, not 500.
	doJSON(t, "POST", srv.URL+"/tables/err/select",
		map[string]any{"k": 3, "l": 2, "targets": []string{"nope"}}, http.StatusBadRequest, nil)

	// Impossible dimensions likewise.
	doJSON(t, "POST", srv.URL+"/tables/err/select",
		map[string]any{"k": -1, "l": 2}, http.StatusBadRequest, nil)

	// Unknown mining target column: 400 from the rules endpoint.
	doJSON(t, "GET", srv.URL+"/tables/err/rules?targets=nope", nil, http.StatusBadRequest, nil)
}

func contains(xs []string, s string) bool { return index(xs, s) >= 0 }

func index(xs []string, s string) int {
	for i, x := range xs {
		if x == s {
			return i
		}
	}
	return -1
}
