// Sharded CI smoke: prove the scatter/gather claim at stress size instead
// of trusting the unit sweep. The CI workflow generates a 1M-row table
// (plus standalone shard stores) with subtab-datagen -shards 4, points
// SUBTAB_SHARD_SMOKE_CSV at the CSV and runs this test: the table is
// pre-processed once into a 4-shard layout, a scaled Select runs through
// the in-process goroutine fan-out, then the shards are split across two
// loopback server instances (coordinator + worker) and the same Select
// runs over HTTP — both inside a wall-clock bound, with byte-identical
// fingerprints — and a freshly loaded worker instance must hold only a
// small fraction of the table's inline cell bytes on its heap (its raw
// columns live in mmap'd shard-local pages). Without the env var the test
// skips, so routine `go test ./...` runs never pay for the 1M-row setup.
package serve

import (
	"bufio"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"
	"time"

	"subtab/internal/binning"
	"subtab/internal/core"
	"subtab/internal/corpus"
	"subtab/internal/shard"
	"subtab/internal/table"
	"subtab/internal/word2vec"
)

// shardSmokeSelectBound is the hard wall-clock bound on each scaled
// Select (not the one-off preprocessing): generous for the 1-vCPU CI
// runner, while still catching an accidental O(rows) merge or a scatter
// path gone quadratic. In-process measures ~0.2s; the HTTP mode adds two
// loopback round trips.
const shardSmokeSelectBound = 60 * time.Second

func shardSmokeOptions() core.Options {
	// Selection cost does not depend on embedding quality; train small so
	// the smoke's setup stays affordable on one vCPU (mirrors the
	// out-of-core smoke's rationale).
	return core.Options{
		Bins:        binning.Options{MaxBins: 5, Strategy: binning.KDEValleys, Seed: 3},
		Corpus:      corpus.Options{MaxSentences: 100_000, TupleSentences: true, Seed: 3},
		Embedding:   word2vec.Options{Dim: 8, Epochs: 1, Seed: 3},
		ClusterSeed: 3,
	}
}

func TestShardedSmoke(t *testing.T) {
	csvPath := os.Getenv("SUBTAB_SHARD_SMOKE_CSV")
	if csvPath == "" {
		t.Skip("set SUBTAB_SHARD_SMOKE_CSV to a generated CSV (see the CI sharded smoke step)")
	}
	tbl, err := table.ReadCSVFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("table: %d rows x %d cols", tbl.NumRows(), tbl.NumCols())

	// When datagen also emitted standalone shard stores (-shards), open
	// them against their map: Open verifies every checksum and geometry,
	// so this is an end-to-end check of the emitted artifacts.
	if mapPath := os.Getenv("SUBTAB_SHARD_SMOKE_MAP"); mapPath != "" {
		sm, err := shard.ReadFile(mapPath)
		if err != nil {
			t.Fatal(err)
		}
		src, err := shard.Open(filepath.Dir(mapPath), sm, tbl.NumCols(), false)
		if err != nil {
			t.Fatalf("opening datagen-emitted shard stores: %v", err)
		}
		if src.NumRows() != tbl.NumRows() {
			t.Fatalf("datagen shard map covers %d rows, CSV has %d", src.NumRows(), tbl.NumRows())
		}
		t.Logf("datagen shard stores: %d shards, %d rows, all checksums valid", src.NumShards(), src.NumRows())
		src.Close()
	}

	coordDir, workerDir := t.TempDir(), t.TempDir()
	build := NewService(NewStore(StoreOptions{Dir: coordDir}), shardSmokeOptions())
	start := time.Now()
	if _, err := build.AddTableSharded("smoke", tbl, nil, 4, false); err != nil {
		t.Fatal(err)
	}
	t.Logf("preprocess + 4-shard export: %s", time.Since(start).Round(time.Millisecond))

	// In-process mode: the complete sharded model fans out one goroutine
	// per shard.
	scale := &core.ScaleOptions{Threshold: 50_000}
	start = time.Now()
	inproc, err := build.SelectScaled("smoke", nil, 10, 8, nil, scale)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > shardSmokeSelectBound {
		t.Fatalf("in-process sharded Select took %s, over the %s smoke bound", elapsed, shardSmokeSelectBound)
	}
	t.Logf("in-process scatter/gather Select: %s", elapsed)
	again, err := build.SelectScaled("smoke", nil, 10, 8, nil, scale)
	if err != nil {
		t.Fatal(err)
	}
	if subTableFingerprint(again) != subTableFingerprint(inproc) {
		t.Fatal("repeated in-process sharded Select diverged")
	}

	// HTTP mode: shards 2 and 3 — code files and column files — plus a copy
	// of the model file move to a second instance's cache dir; the
	// coordinator keeps 0 and 1, samples the remote codes over loopback
	// HTTP and fetches remote rows' rendered cells the same way.
	models, err := filepath.Glob(filepath.Join(coordDir, "*.subtab"))
	if err != nil || len(models) != 1 {
		t.Fatalf("model file glob: %v %v", models, err)
	}
	raw, err := os.ReadFile(models[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(workerDir, filepath.Base(models[0])), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	paths, err := build.Store().ShardPaths("smoke", 4)
	if err != nil {
		t.Fatal(err)
	}
	colPaths, err := build.Store().ColumnShardPaths("smoke", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{2, 3} {
		for _, p := range []string{paths[i], colPaths[i]} {
			if err := os.Rename(p, filepath.Join(workerDir, filepath.Base(p))); err != nil {
				t.Fatal(err)
			}
		}
	}
	worker := NewService(NewStore(StoreOptions{Dir: workerDir, AllowMissingShards: true}), shardSmokeOptions())
	srv := httptest.NewServer(NewHandler(worker, nil))
	t.Cleanup(srv.Close)
	coord := NewService(NewStore(StoreOptions{
		Dir:                coordDir,
		AllowMissingShards: true,
		PrepareModel: func(n string, m *core.Model) error {
			if m.ShardSource() == nil || m.ShardSource().Complete() {
				return nil
			}
			sampler, err := NewShardSampler(n, m, ShardPeersOptions{Peers: []string{srv.URL}})
			if err != nil {
				return err
			}
			m.SetShardSampler(sampler)
			return nil
		},
	}), shardSmokeOptions())
	// Load both instances' models up front so the timed Select measures
	// the scatter/gather round, not two 1M-row disk loads.
	if _, err := worker.Model("smoke"); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Model("smoke"); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	overHTTP, err := coord.SelectScaled("smoke", nil, 10, 8, nil, scale)
	elapsed = time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > shardSmokeSelectBound {
		t.Fatalf("HTTP sharded Select took %s, over the %s smoke bound", elapsed, shardSmokeSelectBound)
	}
	t.Logf("2-instance HTTP scatter/gather Select: %s", elapsed)

	if subTableFingerprint(overHTTP) != subTableFingerprint(inproc) {
		t.Fatalf("HTTP scatter/gather diverged from the in-process fan-out:\n got %s\nwant %s",
			subTableFingerprint(overHTTP), subTableFingerprint(inproc))
	}

	// Worker residency: a worker instance serves its shards from mmap'd code
	// and column pages behind a schema husk, so its live-heap cost must be a
	// small fraction of the table's inline cell bytes. Both roles share this
	// test process, so the two-instance "worker RSS < coordinator RSS" claim
	// is measured as the heap retained by a freshly loaded worker instance
	// against a floor on what the inline cells occupy (4 bytes per cell is
	// the categorical minimum; numeric columns cost 8).
	inlineFloor := int64(tbl.NumRows()) * int64(tbl.NumCols()) * 4
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	fresh := NewService(NewStore(StoreOptions{Dir: workerDir, AllowMissingShards: true}), shardSmokeOptions())
	fm, err := fresh.Model("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if !fm.CellsPaged() {
		t.Fatal("worker reload lost its paged cells")
	}
	if sc := fm.ShardCells(); sc == nil || sc.Complete() || !sc.ShardAvailable(2) || !sc.ShardAvailable(3) {
		t.Fatalf("worker owns the wrong column shards: %+v", fm.ShardCells())
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	workerHeap := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	t.Logf("fresh worker instance live heap: %d MiB (inline cells occupy at least %d MiB)",
		workerHeap>>20, inlineFloor>>20)
	if workerHeap > inlineFloor/4 {
		t.Fatalf("fresh worker instance retains %d MiB of heap, more than a quarter of the %d MiB inline-cell floor — the worker is not serving from paged columns",
			workerHeap>>20, inlineFloor>>20)
	}
	debug.FreeOSMemory()
	if rss, ok := procRSSBytes(t, "VmRSS:"); ok {
		t.Logf("process RSS after the 2-instance smoke: %d MiB", rss>>20)
	}
	runtime.KeepAlive(fm)
}

// procRSSBytes reads one RSS figure (VmRSS: current, VmHWM: high-water)
// from /proc/self/status; non-Linux platforms report ok=false.
func procRSSBytes(t *testing.T, key string) (int64, bool) {
	if runtime.GOOS != "linux" {
		return 0, false
	}
	f, err := os.Open("/proc/self/status")
	if err != nil {
		t.Logf("reading /proc/self/status: %v", err)
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || fields[0] != key {
			continue
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb << 10, true
	}
	return 0, false
}
