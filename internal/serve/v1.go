package serve

// The /v1 exploration surface: versioned HTTP handlers for server-side
// exploration sessions. One consolidated select body (where + shape +
// scale + weights) replaces the unversioned select/query split, and every
// error — including the 429 admission path — returns the same structured
// envelope {code, message, retry_after?}.

import (
	"net/http"
	"strings"
	"time"

	"subtab/internal/core"
	"subtab/internal/query"
)

// createSessionRequest is the body of POST /v1/sessions.
type createSessionRequest struct {
	Table string `json:"table"`
}

// v1SelectRequest is the consolidated body of POST
// /v1/sessions/{id}/select: the predicate conjunction, the sub-table
// shape, the per-request scale override, and the session weighting knobs.
// K and L default to 10 when omitted.
type v1SelectRequest struct {
	Where   []predicateDTO  `json:"where"`
	K       int             `json:"k"`
	L       int             `json:"l"`
	Targets []string        `json:"targets"`
	Scale   *scaleDTO       `json:"scale"`
	Weights *SessionWeights `json:"weights"`
}

// v1DrillDownRequest is the body of POST /v1/sessions/{id}/drilldown: the
// anchor (a source row of the last view, plus optionally one of its
// column names for a cell anchor) and the same shape/scale/weights block
// as select.
type v1DrillDownRequest struct {
	Row     int             `json:"row"`
	Col     string          `json:"col"`
	K       int             `json:"k"`
	L       int             `json:"l"`
	Targets []string        `json:"targets"`
	Scale   *scaleDTO       `json:"scale"`
	Weights *SessionWeights `json:"weights"`
}

// v1SubTableResponse is subTableResponse plus the session context: the
// session id, how many views the session has recorded, and — for
// drill-downs — the neighborhood size the select was scoped to.
type v1SubTableResponse struct {
	subTableResponse
	Session   string `json:"session"`
	Views     int    `json:"views"`
	ScopeRows int    `json:"scope_rows,omitempty"`
}

func (h *api) createSession(w http.ResponseWriter, r *http.Request) {
	var req createSessionRequest
	if err := decodeBody(r, &req); err != nil {
		writeBadRequest(w, "%v", err)
		return
	}
	if strings.TrimSpace(req.Table) == "" {
		writeBadRequest(w, "missing required field: table")
		return
	}
	info, err := h.svc.CreateSession(req.Table)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (h *api) sessionStatus(w http.ResponseWriter, r *http.Request) {
	info, err := h.svc.SessionStatus(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (h *api) deleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := h.svc.DeleteSession(id); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// checkShape applies the k/l defaults and the response cell budget shared
// by every select-shaped handler; a non-nil return means the error was
// already written.
func checkShape(w http.ResponseWriter, k, l *int) bool {
	if *k == 0 {
		*k = 10
	}
	if *l == 0 {
		*l = 10
	}
	if *k < 0 || *l < 0 {
		writeBadRequest(w, "k and l must be non-negative, got k=%d l=%d", *k, *l)
		return false
	}
	if *k > maxSelectCells || *l > maxSelectCells || *k**l > maxSelectCells {
		writeBadRequest(w, "k×l = %d×%d exceeds the response budget of %d cells", *k, *l, maxSelectCells)
		return false
	}
	return true
}

func (h *api) sessionSelect(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req v1SelectRequest
	if err := decodeBody(r, &req); err != nil {
		writeBadRequest(w, "%v", err)
		return
	}
	if !checkShape(w, &req.K, &req.L) {
		return
	}
	preds := make([]query.Predicate, 0, len(req.Where))
	for _, p := range req.Where {
		op, err := parseOp(p.Op)
		if err != nil {
			writeBadRequest(w, "%v", err)
			return
		}
		preds = append(preds, query.Predicate{Col: p.Col, Op: op, Num: p.Num, Str: p.Str})
	}
	var scale *core.ScaleOptions
	if req.Scale != nil {
		var err error
		if scale, err = req.Scale.toOptions(); err != nil {
			writeBadRequest(w, "%v", err)
			return
		}
	}
	start := time.Now()
	st, err := h.svc.SessionSelect(id, preds, req.K, req.L, req.Targets, scale, req.Weights)
	if err != nil {
		writeError(w, err)
		return
	}
	h.writeSessionView(w, id, st, 0, start)
}

func (h *api) sessionDrillDown(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req v1DrillDownRequest
	if err := decodeBody(r, &req); err != nil {
		writeBadRequest(w, "%v", err)
		return
	}
	if !checkShape(w, &req.K, &req.L) {
		return
	}
	var scale *core.ScaleOptions
	if req.Scale != nil {
		var err error
		if scale, err = req.Scale.toOptions(); err != nil {
			writeBadRequest(w, "%v", err)
			return
		}
	}
	start := time.Now()
	st, scopeRows, err := h.svc.SessionDrillDown(id, req.Row, req.Col, req.K, req.L, req.Targets, scale, req.Weights)
	if err != nil {
		writeError(w, err)
		return
	}
	h.writeSessionView(w, id, st, scopeRows, start)
}

func (h *api) writeSessionView(w http.ResponseWriter, id string, st *core.SubTable, scopeRows int, start time.Time) {
	info, err := h.svc.SessionStatus(id)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := v1SubTableResponse{
		subTableResponse: subTableResponse{
			Name:       info.Table,
			SourceRows: st.SourceRows,
			Cols:       st.Cols,
			Cells:      viewCells(st.View),
			View:       st.View.String(),
		},
		Session:   id,
		Views:     info.Views,
		ScopeRows: scopeRows,
	}
	resp.TookMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}
