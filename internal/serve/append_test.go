package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"

	"subtab/internal/core"
)

// appendCSV posts a CSV body to the append endpoint and decodes the reply.
func appendCSV(t *testing.T, srv string, name, csv, params string, wantStatus int) map[string]any {
	t.Helper()
	url := srv + "/tables/" + name + "/append"
	if params != "" {
		url += "?" + params
	}
	resp, err := http.Post(url, "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s = %d, want %d; body: %s", url, resp.StatusCode, wantStatus, raw)
	}
	var out map[string]any
	json.Unmarshal(raw, &out)
	return out
}

func TestHTTPAppend(t *testing.T) {
	srv := newTestServer(t)
	uploadCSV(t, srv, "pay", testCSV(300), http.StatusCreated)

	// Same-distribution rows take the incremental path.
	got := appendCSV(t, srv.URL, "pay", testCSV(30), "", http.StatusOK)
	if got["rows"] != float64(330) {
		t.Fatalf("rows = %v, want 330", got["rows"])
	}
	ap, ok := got["append"].(map[string]any)
	if !ok {
		t.Fatalf("no append stats in %v", got)
	}
	if ap["appended_rows"] != float64(30) {
		t.Fatalf("appended_rows = %v, want 30", ap["appended_rows"])
	}
	if ap["rebinned"] != false {
		t.Fatalf("same-distribution append rebinned: %v", ap["rebin_reason"])
	}

	// The appended table keeps serving selects and queries.
	var sel subTableResponse
	doJSON(t, "POST", srv.URL+"/tables/pay/select", map[string]any{"k": 5, "l": 2}, http.StatusOK, &sel)
	for _, r := range sel.SourceRows {
		if r < 0 || r >= 330 {
			t.Fatalf("selected row %d out of range after append", r)
		}
	}
	var info TableInfo
	doJSON(t, "GET", srv.URL+"/tables/pay", nil, http.StatusOK, &info)
	if info.Rows != 330 {
		t.Fatalf("info.Rows = %d, want 330", info.Rows)
	}

	// rebin=1 forces the full path; the response says so.
	got = appendCSV(t, srv.URL, "pay", testCSV(10), "rebin=1", http.StatusOK)
	ap = got["append"].(map[string]any)
	if ap["rebinned"] != true || ap["rebin_reason"] != "forced" {
		t.Fatalf("forced rebin stats = %v", ap)
	}

	// A wildly shifted distribution arriving in bulk trips the drift rebin
	// (the chunk must be big enough to move the table's aggregate
	// distribution past the threshold — small weird chunks are absorbed).
	var b strings.Builder
	b.WriteString("amount,status,region\n")
	for i := 0; i < 150; i++ {
		fmt.Fprintf(&b, "%d,weird,r9\n", 100000+i)
	}
	got = appendCSV(t, srv.URL, "pay", b.String(), "", http.StatusOK)
	ap = got["append"].(map[string]any)
	if ap["rebinned"] != true {
		t.Fatalf("shifted append did not rebin: %v", ap)
	}
}

// TestHTTPAppendNumericLookingCategoricalChunk: a chunk is too small a
// sample to re-infer column types from. Here the categorical "model"
// column's chunk values all parse as numbers; schema-aware parsing must
// keep them categorical and the append must succeed.
func TestHTTPAppendNumericLookingCategoricalChunk(t *testing.T) {
	srv := newTestServer(t)
	var b strings.Builder
	b.WriteString("amount,model\n")
	for i := 0; i < 120; i++ {
		fmt.Fprintf(&b, "%d,%s\n", i%40, []string{"A320", "737", "747"}[i%3])
	}
	uploadCSV(t, srv, "fleet", b.String(), http.StatusCreated)

	got := appendCSV(t, srv.URL, "fleet", "amount,model\n7,737\n9,747\n", "", http.StatusOK)
	if got["rows"] != float64(122) {
		t.Fatalf("rows = %v, want 122", got["rows"])
	}
	ap := got["append"].(map[string]any)
	if ap["new_categories"] != float64(0) {
		t.Fatalf("known categories re-interned as new: %v", ap)
	}

	// The reverse protection: letters in a numeric column are still a 400,
	// named after the column.
	appendCSV(t, srv.URL, "fleet", "amount,model\nlots,737\n", "", http.StatusBadRequest)
}

func TestHTTPAppendErrors(t *testing.T) {
	srv := newTestServer(t)
	uploadCSV(t, srv, "pay", testCSV(120), http.StatusCreated)

	// Unknown table.
	appendCSV(t, srv.URL, "ghost", testCSV(5), "", http.StatusNotFound)

	// Malformed CSV body (ragged row).
	appendCSV(t, srv.URL, "pay", "amount,status,region\n1,ok\n", "", http.StatusBadRequest)

	// Schema mismatch: missing a served column.
	appendCSV(t, srv.URL, "pay", "amount,status\n1,ok\n", "", http.StatusBadRequest)

	// Kind mismatch: non-numeric values in a numeric column.
	appendCSV(t, srv.URL, "pay", "amount,status,region\nlots,ok,r1\n", "", http.StatusBadRequest)

	// Bad knobs — including a mistyped rebin, which must not silently run
	// the incremental path the caller tried to bypass.
	appendCSV(t, srv.URL, "pay", testCSV(5), "drift=-1", http.StatusBadRequest)
	appendCSV(t, srv.URL, "pay", testCSV(5), "epochs=zero", http.StatusBadRequest)
	appendCSV(t, srv.URL, "pay", testCSV(5), "rebin=yes", http.StatusBadRequest)
	appendCSV(t, srv.URL, "pay", testCSV(5), "rebin=True", http.StatusBadRequest)

	// The errors above left the table untouched.
	var info TableInfo
	doJSON(t, "GET", srv.URL+"/tables/pay", nil, http.StatusOK, &info)
	if info.Rows != 120 {
		t.Fatalf("failed appends changed the table: %d rows", info.Rows)
	}
}

func TestHTTPOversizedBody(t *testing.T) {
	prev := maxCSVBody
	maxCSVBody = 256
	defer func() { maxCSVBody = prev }()
	srv := newTestServer(t)
	uploadCSV(t, srv, "pay", testCSV(4), http.StatusCreated)

	big := testCSV(64) // well past 256 bytes
	resp, err := http.Post(srv.URL+"/tables?name=huge", "text/csv", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload = %d, want 413", resp.StatusCode)
	}
	appendCSV(t, srv.URL, "pay", big, "", http.StatusRequestEntityTooLarge)
}

// TestHTTPAppendRacingSelect hammers the select endpoint while rows stream
// in. Every response must succeed against a consistent model: selected
// source rows always within the bounds of some generation's table, never a
// torn state. Run under -race in CI.
func TestHTTPAppendRacingSelect(t *testing.T) {
	srv := newTestServer(t)
	uploadCSV(t, srv, "pay", testCSV(200), http.StatusCreated)

	const appends = 5
	const selectors = 4
	var wg sync.WaitGroup
	errs := make(chan error, 64)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			url := srv.URL + "/tables/pay/append"
			resp, err := http.Post(url, "text/csv", strings.NewReader(testCSV(10)))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("append %d = %d", i, resp.StatusCode)
				return
			}
		}
	}()
	for g := 0; g < selectors; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				var sel subTableResponse
				doJSON(t, "POST", srv.URL+"/tables/pay/select", map[string]any{"k": 4, "l": 2}, http.StatusOK, &sel)
				for _, r := range sel.SourceRows {
					if r < 0 || r >= 200+appends*10 {
						errs <- fmt.Errorf("selected row %d out of any generation's bounds", r)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var info TableInfo
	doJSON(t, "GET", srv.URL+"/tables/pay", nil, http.StatusOK, &info)
	if info.Rows != 200+appends*10 {
		t.Fatalf("final rows = %d, want %d (an append was lost)", info.Rows, 200+appends*10)
	}
}

// TestServiceConcurrentAppendsCompose drives Service.AppendRows directly:
// concurrent appends to one table must serialize and both land.
func TestServiceConcurrentAppendsCompose(t *testing.T) {
	svc := NewService(NewStore(StoreOptions{}), testOptions())
	base := testTable("pay", 150, 3)
	if _, err := svc.AddTable("pay", base, nil, false); err != nil {
		t.Fatal(err)
	}
	const writers = 4
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			delta := testTable("pay", 10, int64(100+w))
			_, _, err := svc.AppendRows("pay", delta, core.AppendOptions{DriftThreshold: 1})
			errs[w] = err
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	m, err := svc.Model("pay")
	if err != nil {
		t.Fatal(err)
	}
	if m.T.NumRows() != 150+writers*10 {
		t.Fatalf("rows = %d, want %d (a concurrent append was lost)", m.T.NumRows(), 150+writers*10)
	}
}

// TestZeroRowAppendIsFreeOfSideEffects: an empty chunk (a polling
// ingester's heartbeat between batches) must not rewrite the model file,
// bump the generation, or flush caches — the model did not change.
func TestZeroRowAppendIsFreeOfSideEffects(t *testing.T) {
	dir := t.TempDir()
	store := NewStore(StoreOptions{Dir: dir})
	svc := NewService(store, testOptions())
	if _, err := svc.AddTable("pay", testTable("pay", 100, 3), nil, false); err != nil {
		t.Fatal(err)
	}
	// Remove the persisted file: a no-op Update must not resurrect it.
	path := store.path("pay")
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	empty := testTable("pay", 0, 1)
	m, stats, err := svc.AppendRows("pay", empty, core.AppendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.AppendedRows != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if m.T.NumRows() != 100 {
		t.Fatalf("rows = %d", m.T.NumRows())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("zero-row append re-persisted an unchanged model")
	}
	// A real append persists again.
	if _, _, err := svc.AppendRows("pay", testTable("pay", 5, 9), core.AppendOptions{DriftThreshold: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("real append did not persist")
	}
}

// TestAppendPersistsThroughStore verifies the disk path: an append on a
// disk-backed store persists the replacement model, so a fresh store over
// the same directory serves the appended table.
func TestAppendPersistsThroughStore(t *testing.T) {
	dir := t.TempDir()
	svc := NewService(NewStore(StoreOptions{Dir: dir}), testOptions())
	if _, err := svc.AddTable("pay", testTable("pay", 120, 3), nil, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.AppendRows("pay", testTable("pay", 15, 7), core.AppendOptions{DriftThreshold: 1}); err != nil {
		t.Fatal(err)
	}

	svc2 := NewService(NewStore(StoreOptions{Dir: dir}), testOptions())
	m, err := svc2.Model("pay")
	if err != nil {
		t.Fatal(err)
	}
	if m.T.NumRows() != 135 {
		t.Fatalf("reloaded rows = %d, want 135", m.T.NumRows())
	}
	// And an append on the reloaded (disk-only) model works too.
	if _, _, err := svc2.AppendRows("pay", testTable("pay", 5, 9), core.AppendOptions{DriftThreshold: 1}); err != nil {
		t.Fatal(err)
	}
	m, err = svc2.Model("pay")
	if err != nil {
		t.Fatal(err)
	}
	if m.T.NumRows() != 140 {
		t.Fatalf("rows after disk-backed append = %d, want 140", m.T.NumRows())
	}
}
