package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"subtab/internal/binning"
	"subtab/internal/core"
	"subtab/internal/memgov"
	"subtab/internal/query"
	"subtab/internal/rules"
	"subtab/internal/shard"
	"subtab/internal/table"
)

// maxCSVBody bounds uploaded CSV bodies (tables beyond this belong in a
// bulk-ingest path, not an HTTP upload). A variable so tests can exercise
// the oversized-body path without allocating a gigabyte.
var maxCSVBody int64 = 1 << 30

// maxSelectCells bounds a select response's k×l cell count. The check runs
// before the selection so a request asking for millions of cells is
// rejected with a 400 instead of materializing an unbounded response — a
// k×l sub-table is a display artifact, and no display shows 64k cells. A
// variable so tests can lower it.
var maxSelectCells = 1 << 16

// NewHandler adapts a Service to an HTTP/JSON API:
//
//	GET    /healthz                 liveness + cache stats
//	GET    /tables                  list served tables
//	POST   /tables?name=N           upload a CSV body and pre-process it
//	GET    /tables/{name}           one table's info
//	DELETE /tables/{name}           drop a table
//	POST   /tables/{name}/append    append CSV rows (incremental ingestion)
//	POST   /tables/{name}/select    k×l sub-table of the whole table (deprecated: /v1 sessions)
//	POST   /tables/{name}/query     k×l sub-table of a query result (deprecated: /v1 sessions)
//	GET    /tables/{name}/rules     mined association rules
//	POST   /shards/{name}/{idx}/sample  shard-exec scan (binary codec)
//	POST   /shards/{name}/{idx}/cells   shard-exec cell gather (binary codec)
//
// plus the versioned exploration surface:
//
//	POST   /v1/sessions                    open an exploration session
//	GET    /v1/sessions/{id}               session state
//	DELETE /v1/sessions/{id}               close a session
//	POST   /v1/sessions/{id}/select        predicate-scoped, coverage-biased select
//	POST   /v1/sessions/{id}/drilldown     expand a row/cell anchor and select inside it
//
// Every response is JSON; errors are one structured envelope
// {"code": "...", "message": "...", "retry_after": n?} with a matching
// status code (retry_after appears only on 429s, mirroring the
// Retry-After header). The unversioned select/query routes answer with a
// Deprecation header pointing at /v1. A nil logger disables request
// logging.
func NewHandler(svc *Service, logger *log.Logger) http.Handler {
	h := &api{svc: svc}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", h.health)
	mux.HandleFunc("GET /tables", h.listTables)
	mux.HandleFunc("POST /tables", h.createTable)
	mux.HandleFunc("GET /tables/{name}", h.tableInfo)
	mux.HandleFunc("DELETE /tables/{name}", h.deleteTable)
	mux.HandleFunc("POST /tables/{name}/append", h.appendRows)
	mux.HandleFunc("POST /tables/{name}/select", deprecated(h.selectWhole))
	mux.HandleFunc("POST /tables/{name}/query", deprecated(h.selectQuery))
	mux.HandleFunc("GET /tables/{name}/rules", h.rules)
	mux.HandleFunc("POST /shards/{name}/{idx}/sample", h.shardSample)
	mux.HandleFunc("POST /shards/{name}/{idx}/cells", h.shardCells)
	mux.HandleFunc("POST /v1/sessions", h.createSession)
	mux.HandleFunc("GET /v1/sessions/{id}", h.sessionStatus)
	mux.HandleFunc("DELETE /v1/sessions/{id}", h.deleteSession)
	mux.HandleFunc("POST /v1/sessions/{id}/select", h.sessionSelect)
	mux.HandleFunc("POST /v1/sessions/{id}/drilldown", h.sessionDrillDown)
	if logger == nil {
		return mux
	}
	return logRequests(logger, mux)
}

// deprecated marks a legacy unversioned route: it still works as a thin
// adapter over the same service, but answers with a Deprecation header
// (RFC 9745) steering clients to the /v1 exploration surface.
func deprecated(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "@1786060800") // 2026-08-07: superseded by /v1/sessions
		w.Header().Set("Link", "</v1/sessions>; rel=\"successor-version\"")
		next(w, r)
	}
}

// logRequests wraps next with per-request logging (method, path, status,
// duration).
func logRequests(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		logger.Printf("%s %s -> %d (%s)", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

type api struct {
	svc *Service
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// errorEnvelope is the single error shape every handler returns: a stable
// machine-readable code, the human-readable message, and — on 429s only —
// the Retry-After hint in seconds (mirroring the header, so JSON-only
// clients need not parse headers).
type errorEnvelope struct {
	Code       string `json:"code"`
	Message    string `json:"message"`
	RetryAfter int    `json:"retry_after,omitempty"`
}

func writeErrorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Code: code, Message: fmt.Sprintf(format, args...)})
}

func writeError(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, "internal"
	env := errorEnvelope{Message: err.Error()}
	switch {
	case errors.Is(err, ErrNotFound):
		status, code = http.StatusNotFound, "not_found"
	case errors.Is(err, ErrExists):
		status, code = http.StatusConflict, "conflict"
	case errors.Is(err, ErrBadRequest):
		status, code = http.StatusBadRequest, "bad_request"
	case errors.Is(err, ErrOverloaded):
		// Load shed: tell the client when to come back. The admission error
		// carries a back-off hint; concurrency-limit sheds clear in one
		// request time, so a second is plenty for both.
		status, code = http.StatusTooManyRequests, "overloaded"
		retry := time.Second
		var ob *memgov.ErrOverBudget
		if errors.As(err, &ob) && ob.RetryAfter > 0 {
			retry = ob.RetryAfter
		}
		secs := int((retry + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		env.RetryAfter = secs
	}
	env.Code = code
	writeJSON(w, status, env)
}

func writeBadRequest(w http.ResponseWriter, format string, args ...any) {
	writeErrorCode(w, http.StatusBadRequest, "bad_request", format, args...)
}

func (h *api) health(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"status": "ok",
		"tables": len(h.svc.Tables()),
		"cache":  h.svc.Store().Stats(),
	}
	if g := h.svc.Governor(); g != nil {
		resp["memory"] = g.Stats()
		resp["concurrency_shed"] = h.svc.LimiterRejections()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *api) listTables(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tables": h.svc.Tables()})
}

func (h *api) tableInfo(w http.ResponseWriter, r *http.Request) {
	info, err := h.svc.Info(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (h *api) deleteTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !h.svc.Store().Contains(name) {
		writeError(w, fmt.Errorf("%w: %q", ErrNotFound, name))
		return
	}
	h.svc.RemoveTable(name)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// createTable ingests a CSV body: POST /tables?name=flights with optional
// pipeline knobs (bins, dim, window, epochs, seed, strategy, columns,
// workers) and replace=1 to overwrite an existing table.
func (h *api) createTable(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	name := qp.Get("name")
	if strings.TrimSpace(name) == "" {
		writeBadRequest(w, "missing required query parameter: name")
		return
	}
	opt, err := pipelineOptions(h.svc.defaults, qp)
	if err != nil {
		writeBadRequest(w, "%v", err)
		return
	}
	var toStore bool
	switch v := qp.Get("store"); v {
	case "", "0", "false":
	case "1", "true":
		toStore = true
	default:
		writeBadRequest(w, "parameter store: want 1/true or 0/false, got %q", v)
		return
	}
	var shards int
	if v := qp.Get("shards"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeBadRequest(w, "parameter shards: want a positive integer, got %q", v)
			return
		}
		shards = n
	}
	t, err := table.ReadCSV(name, http.MaxBytesReader(w, r.Body, maxCSVBody))
	if err != nil {
		writeCSVError(w, err)
		return
	}
	start := time.Now()
	replace := qp.Get("replace") == "1" || qp.Get("replace") == "true"
	var m *core.Model
	switch {
	case shards > 0:
		// Sharded upload: bin codes split into N code store files in the
		// disk cache, scaled selections scatter across them.
		m, err = h.svc.AddTableSharded(name, t, opt, shards, replace)
	case toStore:
		// Out-of-core upload: bin codes live in a code store file in the
		// disk cache; the served model keeps only the table, the binnings
		// and the embedding resident.
		m, err = h.svc.AddTableOutOfCore(name, t, opt, replace)
	default:
		m, err = h.svc.AddTable(name, t, opt, replace)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"name":          name,
		"rows":          m.T.NumRows(),
		"cols":          m.T.NumCols(),
		"columns":       m.T.ColumnNames(),
		"out_of_core":   m.OutOfCore(),
		"preprocess_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
}

// appendRows ingests a CSV body of additional rows: POST
// /tables/{name}/append with optional knobs drift (total-variation re-bin
// threshold), epochs (fine-tune passes for new embedding tokens) and
// rebin=1 (force a full re-preprocess). The body's header must carry the
// served table's columns. In-flight selects keep the pre-append model; the
// response reports what the append did (see core.AppendStats).
func (h *api) appendRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	qp := r.URL.Query()
	var opt core.AppendOptions
	if v := qp.Get("drift"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			writeBadRequest(w, "parameter drift: want a positive number, got %q", v)
			return
		}
		opt.DriftThreshold = f
	}
	if v := qp.Get("epochs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeBadRequest(w, "parameter epochs: want a positive integer, got %q", v)
			return
		}
		opt.FineTuneEpochs = n
	}
	switch v := qp.Get("rebin"); v {
	case "", "0", "false":
	case "1", "true":
		opt.ForceRebin = true
	default:
		// Reject rather than silently run the incremental path the caller
		// explicitly tried to bypass.
		writeBadRequest(w, "parameter rebin: want 1/true or 0/false, got %q", v)
		return
	}
	// Parse the chunk against the served table's column kinds: a chunk is
	// too small a sample to re-infer types from (a categorical column whose
	// few chunk values all look numeric would misparse), and the error for
	// a genuinely non-numeric cell should name the column, not the schema.
	cur, err := h.svc.Model(name)
	if err != nil {
		writeError(w, err)
		return
	}
	rows, err := table.ReadCSVLike(name, http.MaxBytesReader(w, r.Body, maxCSVBody), cur.T)
	if err != nil {
		writeCSVError(w, err)
		return
	}
	start := time.Now()
	m, stats, err := h.svc.AppendRows(name, rows, opt)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":    name,
		"rows":    m.T.NumRows(),
		"cols":    m.T.NumCols(),
		"append":  stats,
		"took_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
}

// shardSample serves the worker half of scatter/gather selection: the
// binary shard-exec codec over POST, not JSON — both sides of the wire
// are subtab-server instances, and the checksummed frame catches
// truncation that a JSON decode would half-accept.
func (h *api) shardSample(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	idx, err := strconv.Atoi(r.PathValue("idx"))
	if err != nil || idx < 0 {
		writeBadRequest(w, "shard index: want a non-negative integer, got %q", r.PathValue("idx"))
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErrorCode(w, http.StatusRequestEntityTooLarge, "too_large",
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeBadRequest(w, "reading request body: %v", err)
		return
	}
	req, err := shard.UnmarshalSampleRequest(raw)
	if err != nil {
		writeBadRequest(w, "%v", err)
		return
	}
	resp, err := h.svc.SampleShard(name, idx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(resp.Marshal())
}

// shardCells serves the worker half of a remote view gather: a coordinator
// rendering a selection over a sharded column store fetches the chosen
// rows' cells from the shard owners. Binary codec like shardSample.
func (h *api) shardCells(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	idx, err := strconv.Atoi(r.PathValue("idx"))
	if err != nil || idx < 0 {
		writeBadRequest(w, "shard index: want a non-negative integer, got %q", r.PathValue("idx"))
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErrorCode(w, http.StatusRequestEntityTooLarge, "too_large",
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeBadRequest(w, "reading request body: %v", err)
		return
	}
	req, err := shard.UnmarshalCellsRequest(raw)
	if err != nil {
		writeBadRequest(w, "%v", err)
		return
	}
	resp, err := h.svc.ShardCells(name, idx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(resp.Marshal())
}

// writeCSVError maps a CSV ingestion failure to a status: an oversized body
// is 413, anything else the client's malformed CSV (400).
func writeCSVError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeErrorCode(w, http.StatusRequestEntityTooLarge, "too_large",
			"request body exceeds %d bytes", tooLarge.Limit)
		return
	}
	writeBadRequest(w, "parsing CSV: %v", err)
}

// pipelineOptions overlays query-parameter knobs on the service defaults.
func pipelineOptions(base core.Options, qp map[string][]string) (*core.Options, error) {
	opt := base
	get := func(key string) (string, bool) {
		vs := qp[key]
		if len(vs) == 0 || vs[0] == "" {
			return "", false
		}
		return vs[0], true
	}
	intKnobs := map[string]*int{
		"bins":    &opt.Bins.MaxBins,
		"dim":     &opt.Embedding.Dim,
		"window":  &opt.Embedding.Window,
		"epochs":  &opt.Embedding.Epochs,
		"workers": &opt.Embedding.Workers,
		// Large-table mode defaults for every select against this table
		// (overridable per request via the select body's scale block).
		"scale_threshold": &opt.Scale.Threshold,
		"scale_budget":    &opt.Scale.SampleBudget,
	}
	for key, dst := range intKnobs {
		if v, ok := get(key); ok {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("parameter %s: want a non-negative integer, got %q", key, v)
			}
			*dst = n
		}
	}
	if v, ok := get("scale_slab_budget"); ok {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("parameter scale_slab_budget: want a non-negative byte count, got %q", v)
		}
		opt.Scale.SlabBudgetBytes = n
	}
	if v, ok := get("seed"); ok {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("parameter seed: want an integer, got %q", v)
		}
		opt.Bins.Seed, opt.Corpus.Seed, opt.Embedding.Seed, opt.ClusterSeed = seed, seed, seed, seed
	}
	if v, ok := get("strategy"); ok {
		switch v {
		case "kde":
			opt.Bins.Strategy = binning.KDEValleys
		case "quantile":
			opt.Bins.Strategy = binning.Quantile
		case "equal-width":
			opt.Bins.Strategy = binning.EqualWidth
		default:
			return nil, fmt.Errorf("parameter strategy: want kde, quantile or equal-width, got %q", v)
		}
	}
	if v, ok := get("columns"); ok {
		switch v {
		case "pattern-groups":
			opt.Columns = core.PatternGroups
		case "centroids":
			opt.Columns = core.Centroids
		default:
			return nil, fmt.Errorf("parameter columns: want pattern-groups or centroids, got %q", v)
		}
	}
	return &opt, nil
}

// selectRequest is the body of /select and /query. K and L default to 10
// when omitted; Query is required for /query and ignored for /select.
// Scale, when present, overrides the served model's large-table selection
// mode for this request only (see core.ScaleOptions).
type selectRequest struct {
	K         int       `json:"k"`
	L         int       `json:"l"`
	Targets   []string  `json:"targets"`
	Highlight bool      `json:"highlight"`
	Query     *queryDTO `json:"query"`
	Scale     *scaleDTO `json:"scale"`
}

// scaleDTO is the JSON shape of core.ScaleOptions. threshold 0 disables the
// scaled path for the request (the explicit way to force exact selection on
// a model configured with a threshold); threshold 1 forces it. slab_budget
// caps the in-memory sampled-vector slab in bytes (0 = never spill).
type scaleDTO struct {
	Threshold    int   `json:"threshold"`
	SampleBudget int   `json:"sample_budget"`
	BatchSize    int   `json:"batch_size"`
	MaxIter      int   `json:"max_iter"`
	SlabBudget   int64 `json:"slab_budget"`
}

func (d *scaleDTO) toOptions() (*core.ScaleOptions, error) {
	if d.Threshold < 0 || d.SampleBudget < 0 || d.BatchSize < 0 || d.MaxIter < 0 || d.SlabBudget < 0 {
		return nil, fmt.Errorf("scale: all knobs must be non-negative")
	}
	return &core.ScaleOptions{
		Threshold:       d.Threshold,
		SampleBudget:    d.SampleBudget,
		BatchSize:       d.BatchSize,
		MaxIter:         d.MaxIter,
		SlabBudgetBytes: d.SlabBudget,
	}, nil
}

type subTableResponse struct {
	Name       string     `json:"name"`
	SourceRows []int      `json:"source_rows"`
	Cols       []string   `json:"cols"`
	Cells      [][]string `json:"cells"`
	View       string     `json:"view"`
	RuleLabels []string   `json:"rule_labels,omitempty"`
	TookMS     float64    `json:"took_ms"`
}

func (h *api) selectWhole(w http.ResponseWriter, r *http.Request) {
	h.doSelect(w, r, false)
}

func (h *api) selectQuery(w http.ResponseWriter, r *http.Request) {
	h.doSelect(w, r, true)
}

func (h *api) doSelect(w http.ResponseWriter, r *http.Request, withQuery bool) {
	name := r.PathValue("name")
	var req selectRequest
	if err := decodeBody(r, &req); err != nil {
		writeBadRequest(w, "%v", err)
		return
	}
	if req.K == 0 {
		req.K = 10
	}
	if req.L == 0 {
		req.L = 10
	}
	if req.K < 0 || req.L < 0 {
		writeBadRequest(w, "k and l must be non-negative, got k=%d l=%d", req.K, req.L)
		return
	}
	// Bound the response before any work happens: each of the k×l cells is
	// materialized three times on the way out (view table, rendered view,
	// JSON cells), so the budget is what keeps one request from holding
	// the response path's memory hostage.
	if req.K > maxSelectCells || req.L > maxSelectCells || req.K*req.L > maxSelectCells {
		writeBadRequest(w, "k×l = %d×%d exceeds the response budget of %d cells", req.K, req.L, maxSelectCells)
		return
	}
	var q *query.Query
	if withQuery {
		if req.Query == nil {
			writeBadRequest(w, "missing required field: query")
			return
		}
		var err error
		if q, err = req.Query.toQuery(); err != nil {
			writeBadRequest(w, "%v", err)
			return
		}
	}
	var scale *core.ScaleOptions
	if req.Scale != nil {
		var err error
		if scale, err = req.Scale.toOptions(); err != nil {
			writeBadRequest(w, "%v", err)
			return
		}
	}
	start := time.Now()
	st, err := h.svc.SelectScaled(name, q, req.K, req.L, req.Targets, scale)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := subTableResponse{
		Name:       name,
		SourceRows: st.SourceRows,
		Cols:       st.Cols,
		Cells:      viewCells(st.View),
		View:       st.View.String(),
	}
	if req.Highlight {
		view, labels, err := h.svc.Highlight(name, rules.Options{TargetCols: req.Targets}, st)
		if err != nil {
			writeError(w, err)
			return
		}
		resp.View, resp.RuleLabels = view, labels
	}
	resp.TookMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

func viewCells(v *table.Table) [][]string {
	cells := make([][]string, v.NumRows())
	for r := range cells {
		row := make([]string, v.NumCols())
		for c := range row {
			row[c] = v.ColumnAt(c).CellString(r)
		}
		cells[r] = row
	}
	return cells
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil // empty body: all fields take their defaults
		}
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// queryDTO is the JSON shape of a query.Query.
type queryDTO struct {
	Where   []predicateDTO `json:"where"`
	Select  []string       `json:"select"`
	GroupBy []string       `json:"group_by"`
	Aggs    []aggregateDTO `json:"aggs"`
	OrderBy string         `json:"order_by"`
	Asc     bool           `json:"asc"`
	Limit   int            `json:"limit"`
}

type predicateDTO struct {
	Col string  `json:"col"`
	Op  string  `json:"op"`
	Num float64 `json:"num"`
	Str string  `json:"str"`
}

type aggregateDTO struct {
	Func string `json:"func"`
	Col  string `json:"col"`
}

func (d *queryDTO) toQuery() (*query.Query, error) {
	q := &query.Query{
		Select:  d.Select,
		GroupBy: d.GroupBy,
		OrderBy: d.OrderBy,
		Asc:     d.Asc,
		Limit:   d.Limit,
	}
	for _, p := range d.Where {
		op, err := parseOp(p.Op)
		if err != nil {
			return nil, err
		}
		q.Where = append(q.Where, query.Predicate{Col: p.Col, Op: op, Num: p.Num, Str: p.Str})
	}
	for _, a := range d.Aggs {
		fn, err := parseAggFunc(a.Func)
		if err != nil {
			return nil, err
		}
		q.Aggs = append(q.Aggs, query.Aggregate{Func: fn, Col: a.Col})
	}
	return q, nil
}

func parseOp(s string) (query.Op, error) {
	switch s {
	case "=", "eq":
		return query.Eq, nil
	case "!=", "neq":
		return query.Neq, nil
	case "<", "lt":
		return query.Lt, nil
	case "<=", "leq":
		return query.Leq, nil
	case ">", "gt":
		return query.Gt, nil
	case ">=", "geq":
		return query.Geq, nil
	case "missing", "is_missing":
		return query.IsMissing, nil
	case "not_missing":
		return query.NotMissing, nil
	default:
		return 0, fmt.Errorf("unknown predicate op %q", s)
	}
}

func parseAggFunc(s string) (query.AggFunc, error) {
	switch s {
	case "count":
		return query.Count, nil
	case "sum":
		return query.Sum, nil
	case "mean", "avg":
		return query.Mean, nil
	case "min":
		return query.Min, nil
	case "max":
		return query.Max, nil
	default:
		return 0, fmt.Errorf("unknown aggregate %q", s)
	}
}

// ruleResponse is the JSON shape of one mined rule.
type ruleResponse struct {
	LHS        []string `json:"lhs"`
	RHS        []string `json:"rhs"`
	Support    float64  `json:"support"`
	Confidence float64  `json:"confidence"`
	Label      string   `json:"label"`
}

// rules serves GET /tables/{name}/rules with mining knobs as query
// parameters: min_support, min_confidence, min_rule_size, max_itemset_size,
// max_rules, targets (comma-separated), all_splits, include_missing.
func (h *api) rules(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	qp := r.URL.Query()
	var opt rules.Options
	for key, dst := range map[string]*float64{
		"min_support":    &opt.MinSupport,
		"min_confidence": &opt.MinConfidence,
	} {
		if v := qp.Get(key); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				writeBadRequest(w, "parameter %s: want a fraction in [0,1], got %q", key, v)
				return
			}
			*dst = f
		}
	}
	for key, dst := range map[string]*int{
		"min_rule_size":    &opt.MinRuleSize,
		"max_itemset_size": &opt.MaxItemsetSize,
		"max_rules":        &opt.MaxRules,
	} {
		if v := qp.Get(key); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				writeBadRequest(w, "parameter %s: want a non-negative integer, got %q", key, v)
				return
			}
			*dst = n
		}
	}
	if v := qp.Get("targets"); v != "" {
		opt.TargetCols = strings.Split(v, ",")
	}
	opt.AllSplits = qp.Get("all_splits") == "1" || qp.Get("all_splits") == "true"
	opt.IncludeMissing = qp.Get("include_missing") == "1" || qp.Get("include_missing") == "true"

	start := time.Now()
	rs, m, err := h.svc.Rules(name, opt)
	if err != nil {
		writeError(w, err)
		return
	}
	out := make([]ruleResponse, len(rs))
	for i := range rs {
		rr := &rs[i]
		out[i] = ruleResponse{
			Support:    rr.Support,
			Confidence: rr.Confidence,
			Label:      rr.Label(m.B),
		}
		for _, it := range rr.LHS {
			out[i].LHS = append(out[i].LHS, m.B.ItemLabel(it))
		}
		for _, it := range rr.RHS {
			out[i].RHS = append(out[i].RHS, m.B.ItemLabel(it))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":    name,
		"count":   len(out),
		"rules":   out,
		"took_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
}
