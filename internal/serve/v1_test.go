package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"subtab/internal/memgov"
)

// v1Response is the decoded shape of a /v1 session view.
type v1Response struct {
	subTableResponse
	Session   string `json:"session"`
	Views     int    `json:"views"`
	ScopeRows int    `json:"scope_rows"`
}

// doRaw issues a JSON request and returns status, headers and raw body —
// the envelope-level view doJSON hides.
func doRaw(t *testing.T, method, url string, body any) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, raw
}

// wantEnvelope asserts the structured error envelope: the given status and
// code, a non-empty message, and returns the envelope for extra checks.
func wantEnvelope(t *testing.T, method, url string, body any, status int, code string) (errorEnvelope, http.Header) {
	t.Helper()
	got, hdr, raw := doRaw(t, method, url, body)
	if got != status {
		t.Fatalf("%s %s = %d, want %d; body: %s", method, url, got, status, raw)
	}
	var env errorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("%s %s: error body %q is not an envelope: %v", method, url, raw, err)
	}
	if env.Code != code || env.Message == "" {
		t.Fatalf("%s %s: envelope %+v, want code %q with a message", method, url, env, code)
	}
	return env, hdr
}

func TestV1SessionWalkthrough(t *testing.T) {
	srv := newTestServer(t)
	uploadCSV(t, srv, "pay", testCSV(300), http.StatusCreated)

	// Create.
	var info SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions", map[string]any{"table": "pay"}, http.StatusCreated, &info)
	if info.Session == "" || info.Table != "pay" || info.Views != 0 {
		t.Fatalf("created session = %+v", info)
	}
	base := srv.URL + "/v1/sessions/" + info.Session

	// Predicate-scoped select through the consolidated body.
	var sel v1Response
	doJSON(t, "POST", base+"/select", map[string]any{
		"where": []map[string]any{{"col": "status", "op": "=", "str": "failed"}},
		"k":     5, "l": 3,
	}, http.StatusOK, &sel)
	if sel.Session != info.Session || sel.Views != 1 {
		t.Fatalf("first select session/views = %q/%d", sel.Session, sel.Views)
	}
	if len(sel.SourceRows) == 0 || len(sel.SourceRows) > 5 {
		t.Fatalf("select returned %d rows", len(sel.SourceRows))
	}
	if i := index(sel.Cols, "status"); i >= 0 {
		for _, row := range sel.Cells {
			if row[i] != "failed" {
				t.Fatalf("filtered select leaked status %q", row[i])
			}
		}
	}

	// Second select with session weights engages coverage + column bias.
	var sel2 v1Response
	doJSON(t, "POST", base+"/select", map[string]any{
		"k": 5, "l": 3,
		"weights": map[string]any{"null_rate": 1, "view_count": 0.5},
	}, http.StatusOK, &sel2)
	if sel2.Views != 2 {
		t.Fatalf("second select views = %d", sel2.Views)
	}

	// Cell-anchored drill-down from the last view.
	var dd v1Response
	doJSON(t, "POST", base+"/drilldown", map[string]any{
		"row": sel2.SourceRows[0], "col": sel2.Cols[0],
		"k": 4, "l": 3,
	}, http.StatusOK, &dd)
	if dd.Views != 3 || dd.ScopeRows <= 0 {
		t.Fatalf("drill-down views/scope = %d/%d", dd.Views, dd.ScopeRows)
	}
	if len(dd.SourceRows) == 0 {
		t.Fatal("drill-down returned no rows")
	}

	// Status reflects the dialogue.
	var status SessionInfo
	doJSON(t, "GET", base, nil, http.StatusOK, &status)
	if status.Views != 3 || status.Covered == 0 {
		t.Fatalf("status = %+v, want 3 views and covered strata", status)
	}

	// Delete, then the session is gone with a typed envelope.
	doJSON(t, "DELETE", base, nil, http.StatusOK, nil)
	wantEnvelope(t, "GET", base, nil, http.StatusNotFound, "not_found")
}

func TestV1ErrorEnvelopes(t *testing.T) {
	srv := newTestServer(t)
	uploadCSV(t, srv, "pay", testCSV(200), http.StatusCreated)

	// Unknown table and missing field on create.
	wantEnvelope(t, "POST", srv.URL+"/v1/sessions", map[string]any{"table": "ghost"}, http.StatusNotFound, "not_found")
	wantEnvelope(t, "POST", srv.URL+"/v1/sessions", map[string]any{}, http.StatusBadRequest, "bad_request")

	var info SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions", map[string]any{"table": "pay"}, http.StatusCreated, &info)
	base := srv.URL + "/v1/sessions/" + info.Session

	// Bad predicate op, bad shape, drill-down without a view: all
	// bad_request envelopes.
	wantEnvelope(t, "POST", base+"/select", map[string]any{
		"where": []map[string]any{{"col": "amount", "op": "~", "num": 1}},
	}, http.StatusBadRequest, "bad_request")
	wantEnvelope(t, "POST", base+"/select", map[string]any{"k": -2}, http.StatusBadRequest, "bad_request")
	wantEnvelope(t, "POST", base+"/drilldown", map[string]any{"row": 0}, http.StatusBadRequest, "bad_request")

	// A select works; a drill-down from a row outside the view is refused.
	var sel v1Response
	doJSON(t, "POST", base+"/select", map[string]any{"k": 4, "l": 2}, http.StatusOK, &sel)
	env, _ := wantEnvelope(t, "POST", base+"/drilldown", map[string]any{"row": -99}, http.StatusBadRequest, "bad_request")
	if !strings.Contains(env.Message, "anchor row") {
		t.Fatalf("anchor refusal message %q", env.Message)
	}

	// Replacing the table strands the session: conflict, not stale results.
	resp, err := http.Post(srv.URL+"/tables?name=pay&replace=1&workers=1", "text/csv", strings.NewReader(testCSV(200)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("replace upload = %d", resp.StatusCode)
	}
	// RemoveTable/replace drops the table's sessions; whether the session
	// vanished (404) or survived long enough to see the generation bump
	// (409), the client gets a typed refusal, never old-table rows.
	code, _, raw := doRaw(t, "POST", base+"/select", map[string]any{"k": 3, "l": 2})
	if code != http.StatusConflict && code != http.StatusNotFound {
		t.Fatalf("select on stale session = %d; body %s", code, raw)
	}
	var env2 errorEnvelope
	if err := json.Unmarshal(raw, &env2); err != nil || (env2.Code != "conflict" && env2.Code != "not_found") {
		t.Fatalf("stale session envelope %s", raw)
	}
}

func TestV1OverloadedEnvelope(t *testing.T) {
	svc := NewService(NewStore(StoreOptions{}), testOptions())
	srv := httptest.NewServer(NewHandler(svc, nil))
	t.Cleanup(srv.Close)
	uploadCSV(t, srv, "pay", testCSV(150), http.StatusCreated)

	var info SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions", map[string]any{"table": "pay"}, http.StatusCreated, &info)

	// A one-byte budget sheds every select at the door.
	svc.SetAdmission(memgov.New(1), 0)
	env, hdr := wantEnvelope(t, "POST", srv.URL+"/v1/sessions/"+info.Session+"/select",
		map[string]any{"k": 3, "l": 2}, http.StatusTooManyRequests, "overloaded")
	if env.RetryAfter <= 0 {
		t.Fatalf("429 envelope retry_after = %d, want > 0", env.RetryAfter)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After header")
	}
}

func TestLegacyRoutesDeprecated(t *testing.T) {
	srv := newTestServer(t)
	uploadCSV(t, srv, "pay", testCSV(150), http.StatusCreated)

	for _, rt := range []struct {
		path string
		body map[string]any
	}{
		{"/tables/pay/select", map[string]any{"k": 3, "l": 2}},
		{"/tables/pay/query", map[string]any{
			"k": 3, "l": 2,
			"query": map[string]any{"where": []map[string]any{{"col": "status", "op": "=", "str": "ok"}}},
		}},
	} {
		code, hdr, raw := doRaw(t, "POST", srv.URL+rt.path, rt.body)
		if code != http.StatusOK {
			t.Fatalf("POST %s = %d; body %s", rt.path, code, raw)
		}
		if dep := hdr.Get("Deprecation"); !strings.HasPrefix(dep, "@") {
			t.Fatalf("POST %s Deprecation header = %q, want @unix-time", rt.path, dep)
		}
		if link := hdr.Get("Link"); !strings.Contains(link, "/v1/sessions") || !strings.Contains(link, "successor-version") {
			t.Fatalf("POST %s Link header = %q", rt.path, link)
		}
	}

	// The versioned surface carries no deprecation marker.
	var info SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions", map[string]any{"table": "pay"}, http.StatusCreated, &info)
	_, hdr, _ := doRaw(t, "GET", srv.URL+"/v1/sessions/"+info.Session, nil)
	if hdr.Get("Deprecation") != "" {
		t.Fatal("/v1 route carries a Deprecation header")
	}
}

// TestV1DrillDownDeterminism replays the same dialogue against two
// independent servers: every view must be identical.
func TestV1DrillDownDeterminism(t *testing.T) {
	run := func() [][]int {
		srv := newTestServer(t)
		uploadCSV(t, srv, "pay", testCSV(300), http.StatusCreated)
		var info SessionInfo
		doJSON(t, "POST", srv.URL+"/v1/sessions", map[string]any{"table": "pay"}, http.StatusCreated, &info)
		base := srv.URL + "/v1/sessions/" + info.Session
		var trace [][]int
		var sel v1Response
		doJSON(t, "POST", base+"/select", map[string]any{
			"where": []map[string]any{{"col": "amount", "op": ">=", "num": 40}},
			"k":     5, "l": 3,
		}, http.StatusOK, &sel)
		trace = append(trace, sel.SourceRows)
		var sel2 v1Response
		doJSON(t, "POST", base+"/select", map[string]any{
			"k": 5, "l": 3,
			"weights": map[string]any{"view_count": 1},
		}, http.StatusOK, &sel2)
		trace = append(trace, sel2.SourceRows)
		var dd v1Response
		doJSON(t, "POST", base+"/drilldown", map[string]any{
			"row": sel2.SourceRows[1], "col": sel2.Cols[0],
			"k": 4, "l": 2,
		}, http.StatusOK, &dd)
		trace = append(trace, append([]int{dd.ScopeRows}, dd.SourceRows...))
		return trace
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replayed dialogue diverged:\n %v\n %v", a, b)
	}
}
