// Serving-layer tests for sharded tables: sharded uploads must serve
// bit-identically to in-memory models, survive disk reloads, clean up
// every shard file on removal, keep their sharding across appends, and —
// the HTTP lift — a coordinator holding some shards must reproduce the
// same selections by sampling the rest from a peer instance.
package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"subtab/internal/core"
	"subtab/internal/shard"
)

func TestAddTableShardedServesIdentically(t *testing.T) {
	dir := t.TempDir()
	svcSh := NewService(NewStore(StoreOptions{Dir: dir}), testOptions())
	svcMem := NewService(NewStore(StoreOptions{}), testOptions())
	m, err := svcSh.AddTableSharded("t", testTable("t", 2500, 7), nil, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if src := m.ShardSource(); src == nil || src.NumShards() != 3 || !src.Complete() {
		t.Fatalf("sharded add produced source %+v", m.ShardSource())
	}
	if _, err := svcMem.AddTable("t", testTable("t", 2500, 7), nil, false); err != nil {
		t.Fatal(err)
	}

	paths, err := svcSh.Store().ShardPaths("t", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("shard file missing: %v", err)
		}
	}
	info, err := svcSh.Info("t")
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != 3 || info.LocalShards != 3 {
		t.Fatalf("info = %+v, want 3/3 shards", info)
	}

	// Exact and scaled selects both match the in-memory twin.
	for _, scale := range []*core.ScaleOptions{nil, scaleForce()} {
		want, err := svcMem.SelectScaled("t", nil, 6, 3, nil, scale)
		if err != nil {
			t.Fatal(err)
		}
		got, err := svcSh.SelectScaled("t", nil, 6, 3, nil, scale)
		if err != nil {
			t.Fatal(err)
		}
		if subTableFingerprint(got) != subTableFingerprint(want) {
			t.Fatalf("sharded serve diverged (scale=%v)", scale)
		}
	}

	// A fresh service over the same cache dir reloads the sharded model
	// from disk (modelio v6) and serves the same scaled selections.
	svcReload := NewService(NewStore(StoreOptions{Dir: dir}), testOptions())
	m2, err := svcReload.Model("t")
	if err != nil {
		t.Fatal(err)
	}
	if src := m2.ShardSource(); src == nil || !src.Complete() {
		t.Fatal("disk reload lost the shard backing")
	}
	want, err := svcMem.SelectScaled("t", nil, 6, 3, nil, scaleForce())
	if err != nil {
		t.Fatal(err)
	}
	got, err := svcReload.SelectScaled("t", nil, 6, 3, nil, scaleForce())
	if err != nil {
		t.Fatal(err)
	}
	if subTableFingerprint(got) != subTableFingerprint(want) {
		t.Fatal("reloaded sharded model serves different selections")
	}

	// RemoveTable deletes the model, every shard file and the sidecar map.
	svcSh.RemoveTable("t")
	left, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("RemoveTable left files behind: %v", left)
	}
}

// TestShardedAppendKeepsSharded pins that appending to a sharded table
// re-exports into the same shard count instead of regressing to inline
// codes, and that the result survives a disk reload.
func TestShardedAppendKeepsSharded(t *testing.T) {
	dir := t.TempDir()
	svc := NewService(NewStore(StoreOptions{Dir: dir}), testOptions())
	if _, err := svc.AddTableSharded("t", testTable("t", 1200, 7), nil, 3, false); err != nil {
		t.Fatal(err)
	}
	next, stats, err := svc.AppendRows("t", testTable("t", 12, 8), core.AppendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.AppendedRows != 12 {
		t.Fatalf("appended %d rows, want 12", stats.AppendedRows)
	}
	src := next.ShardSource()
	if src == nil || src.NumShards() != 3 || src.NumRows() != 1212 {
		t.Fatalf("append changed the sharding: %+v", src)
	}
	if _, err := next.SelectWith(nil, 6, 3, nil, scaleForce()); err != nil {
		t.Fatal(err)
	}
	svc2 := NewService(NewStore(StoreOptions{Dir: dir}), testOptions())
	m, err := svc2.Model("t")
	if err != nil {
		t.Fatal(err)
	}
	if m.T.NumRows() != 1212 || m.ShardSource() == nil {
		t.Fatalf("reload: %d rows, sharded=%v; want 1212, true", m.T.NumRows(), m.ShardSource() != nil)
	}
}

// splitCacheDir builds a sharded table in its own cache dir, then moves
// the shards listed in remote (plus a copy of the model file) into a
// second dir — simulating two instances that each own part of the table.
func splitCacheDir(t *testing.T, name string, rows int, shards int, remote []int) (coordDir, workerDir string) {
	t.Helper()
	coordDir, workerDir = t.TempDir(), t.TempDir()
	build := NewService(NewStore(StoreOptions{Dir: coordDir}), testOptions())
	if _, err := build.AddTableSharded(name, testTable(name, rows, 7), nil, shards, false); err != nil {
		t.Fatal(err)
	}
	models, err := filepath.Glob(filepath.Join(coordDir, "*"+".subtab"))
	if err != nil || len(models) != 1 {
		t.Fatalf("model file glob: %v %v", models, err)
	}
	raw, err := os.ReadFile(models[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(workerDir, filepath.Base(models[0])), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	paths, err := build.Store().ShardPaths(name, shards)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range remote {
		dst := filepath.Join(workerDir, filepath.Base(paths[i]))
		if err := os.Rename(paths[i], dst); err != nil {
			t.Fatal(err)
		}
	}
	return coordDir, workerDir
}

// TestShardedCoordinatorHTTP is the protocol end to end over a real HTTP
// round trip: a coordinator holding shard 0 and a worker holding shards 1
// and 2 of one logical table must together serve exactly the selection an
// in-memory model of the whole table serves.
func TestShardedCoordinatorHTTP(t *testing.T) {
	const name = "t"
	coordDir, workerDir := splitCacheDir(t, name, 2500, 3, []int{1, 2})

	worker := NewService(NewStore(StoreOptions{Dir: workerDir, AllowMissingShards: true}), testOptions())
	wm, err := worker.Model(name)
	if err != nil {
		t.Fatal(err)
	}
	if src := wm.ShardSource(); src.Complete() || !src.ShardAvailable(1) || !src.ShardAvailable(2) {
		t.Fatalf("worker owns the wrong shards: %+v", src)
	}
	srv := httptest.NewServer(NewHandler(worker, nil))
	t.Cleanup(srv.Close)

	coord := NewService(NewStore(StoreOptions{
		Dir:                coordDir,
		AllowMissingShards: true,
		PrepareModel: func(n string, m *core.Model) error {
			if m.ShardSource() == nil || m.ShardSource().Complete() {
				return nil
			}
			sampler, err := NewShardSampler(n, m, ShardPeersOptions{Peers: []string{srv.URL}})
			if err != nil {
				return err
			}
			m.SetShardSampler(sampler)
			return nil
		},
	}), testOptions())

	svcMem := NewService(NewStore(StoreOptions{}), testOptions())
	if _, err := svcMem.AddTable(name, testTable(name, 2500, 7), nil, false); err != nil {
		t.Fatal(err)
	}
	want, err := svcMem.SelectScaled(name, nil, 6, 3, nil, scaleForce())
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.SelectScaled(name, nil, 6, 3, nil, scaleForce())
	if err != nil {
		t.Fatal(err)
	}
	if subTableFingerprint(got) != subTableFingerprint(want) {
		t.Fatalf("HTTP scatter/gather diverged:\n got %s\nwant %s",
			subTableFingerprint(got), subTableFingerprint(want))
	}

	// Repeat select (cache hit on the coordinator) stays identical.
	again, err := coord.SelectScaled(name, nil, 6, 3, nil, scaleForce())
	if err != nil {
		t.Fatal(err)
	}
	if subTableFingerprint(again) != subTableFingerprint(want) {
		t.Fatal("repeat coordinator select diverged")
	}

	// Partial models refuse what needs all rows locally: exact selection,
	// rule mining, appends.
	if _, err := coord.SelectScaled(name, nil, 6, 3, nil, nil); err == nil {
		t.Fatal("exact select succeeded on a partial model")
	}
	if _, _, err := coord.Rules(name, rulesOptionsForTest()); err == nil {
		t.Fatal("rule mining succeeded on a coordinator with remote shards")
	}
	if _, _, err := coord.AppendRows(name, testTable(name, 5, 9), core.AppendOptions{}); err == nil {
		t.Fatal("append succeeded on a coordinator with remote shards")
	}
}

// TestShardSampleEndpointValidation drives the worker endpoint's failure
// modes straight through the HTTP layer.
func TestShardSampleEndpointValidation(t *testing.T) {
	dir := t.TempDir()
	svc := NewService(NewStore(StoreOptions{Dir: dir}), testOptions())
	m, err := svc.AddTableSharded("sh", testTable("sh", 600, 3), nil, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddTable("plain", testTable("plain", 200, 3), nil, false); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(svc, nil))
	t.Cleanup(srv.Close)

	goodReq := &shard.SampleRequest{
		Checksum: m.ShardSource().Desc(0).Checksum,
		Seed:     m.SampleSeed(),
		Budget:   50,
		Cols:     []int{0, 1, 2},
	}
	post := func(path string, body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// The happy path round-trips the codec.
	resp := post("/shards/sh/0/sample", goodReq.Marshal())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good request: status %d", resp.StatusCode)
	}
	raw := readAllBody(t, resp)
	sresp, err := shard.UnmarshalSampleResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(sresp.Rows) == 0 || len(sresp.Codes) != 3 {
		t.Fatalf("sample response: %d rows, %d code cols", len(sresp.Rows), len(sresp.Codes))
	}

	for _, c := range []struct {
		what string
		path string
		body []byte
		want int
	}{
		{"checksum mismatch", "/shards/sh/0/sample", (&shard.SampleRequest{Checksum: goodReq.Checksum + 1, Seed: goodReq.Seed, Budget: 50, Cols: goodReq.Cols}).Marshal(), http.StatusBadRequest},
		{"shard out of range", "/shards/sh/9/sample", goodReq.Marshal(), http.StatusBadRequest},
		{"bad index", "/shards/sh/x/sample", goodReq.Marshal(), http.StatusBadRequest},
		{"unsharded table", "/shards/plain/0/sample", goodReq.Marshal(), http.StatusBadRequest},
		{"unknown table", "/shards/nope/0/sample", goodReq.Marshal(), http.StatusNotFound},
		{"corrupt body", "/shards/sh/0/sample", []byte("garbage"), http.StatusBadRequest},
	} {
		resp := post(c.path, c.body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.what, resp.StatusCode, c.want)
		}
	}
}

func readAllBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestHTTPShardedUpload drives the shards=N upload knob.
func TestHTTPShardedUpload(t *testing.T) {
	dir := t.TempDir()
	svc := NewService(NewStore(StoreOptions{Dir: dir}), testOptions())
	srv := httptest.NewServer(NewHandler(svc, nil))
	t.Cleanup(srv.Close)

	resp, err := http.Post(srv.URL+"/tables?name=sh&shards=4&seed=4&workers=1", "text/csv", strings.NewReader(testCSV(600)))
	if err != nil {
		t.Fatal(err)
	}
	created := decodeBodyMap(t, resp, http.StatusCreated)
	if created["out_of_core"] != true {
		t.Fatalf("upload response = %v, want out_of_core=true", created)
	}
	var info TableInfo
	doJSON(t, "GET", srv.URL+"/tables/sh", nil, http.StatusOK, &info)
	if info.Shards != 4 || info.LocalShards != 4 {
		t.Fatalf("info = %+v, want 4/4 shards", info)
	}

	// shards=0 is rejected; memory-only stores cannot shard.
	resp, err = http.Post(srv.URL+"/tables?name=z&shards=0", "text/csv", strings.NewReader(testCSV(60)))
	if err != nil {
		t.Fatal(err)
	}
	decodeBodyMap(t, resp, http.StatusBadRequest)
	memSrv := httptest.NewServer(NewHandler(NewService(NewStore(StoreOptions{}), testOptions()), nil))
	t.Cleanup(memSrv.Close)
	resp, err = http.Post(memSrv.URL+"/tables?name=z&shards=2&workers=1", "text/csv", strings.NewReader(testCSV(60)))
	if err != nil {
		t.Fatal(err)
	}
	decodeBodyMap(t, resp, http.StatusBadRequest)
}
