// Tests for the large-table selection mode at the serving layer: repeat
// selects must be deterministic (same seed, same model => same sub-table),
// concurrent scaled selects against one served model must be race-clean and
// agree with the serial result (this file runs under CI's -race step), and
// the HTTP layer must accept and validate the per-request scale block.
package serve

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"subtab/internal/core"
	"subtab/internal/query"
)

// scaleForce activates the scaled path on any table size, with a budget
// below the test tables' row counts so sampling genuinely happens.
func scaleForce() *core.ScaleOptions {
	return &core.ScaleOptions{Threshold: 1, SampleBudget: 400, BatchSize: 128, MaxIter: 50}
}

func subTableFingerprint(st *core.SubTable) string {
	return fmt.Sprintf("%v|%v|%v|%s", st.SourceRows, st.ColIdx, st.Cols, st.View.Render(nil))
}

func TestServeScaledSelectRepeatDeterminism(t *testing.T) {
	svc := NewService(NewStore(StoreOptions{}), testOptions())
	if _, err := svc.AddTable("scaled", testTable("scaled", 2500, 7), nil, false); err != nil {
		t.Fatal(err)
	}
	first, err := svc.SelectScaled("scaled", nil, 6, 3, nil, scaleForce())
	if err != nil {
		t.Fatal(err)
	}
	if len(first.SourceRows) != 6 {
		t.Fatalf("scaled select returned %d rows, want 6", len(first.SourceRows))
	}
	for i := 0; i < 4; i++ {
		st, err := svc.SelectScaled("scaled", nil, 6, 3, nil, scaleForce())
		if err != nil {
			t.Fatal(err)
		}
		if subTableFingerprint(st) != subTableFingerprint(first) {
			t.Fatalf("scaled select run %d diverged:\n got %s\nwant %s",
				i, subTableFingerprint(st), subTableFingerprint(first))
		}
	}
	// The explicit zero override forces the exact path; it must agree with
	// the plain Select entry point.
	exact, err := svc.Select("scaled", nil, 6, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	zeroed, err := svc.SelectScaled("scaled", nil, 6, 3, nil, &core.ScaleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if subTableFingerprint(exact) != subTableFingerprint(zeroed) {
		t.Fatal("zero scale override diverged from the exact path")
	}
}

// TestServeScaledSelectConcurrent hammers one served model with concurrent
// scaled selects (mixed with exact selects and a query-restricted variant)
// and requires every result to match its serial reference. Run under -race
// in CI, this is the "any number of selections against one model" contract
// extended to the scaled path.
func TestServeScaledSelectConcurrent(t *testing.T) {
	svc := NewService(NewStore(StoreOptions{}), testOptions())
	if _, err := svc.AddTable("conc-scaled", testTable("conc-scaled", 3000, 13), nil, false); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{Where: []query.Predicate{{Col: "cat", Op: query.Neq, Str: "c2"}}}
	wantWhole, err := svc.SelectScaled("conc-scaled", nil, 5, 3, nil, scaleForce())
	if err != nil {
		t.Fatal(err)
	}
	wantQuery, err := svc.SelectScaled("conc-scaled", q, 4, 2, []string{"cat"}, scaleForce())
	if err != nil {
		t.Fatal(err)
	}
	wantExact, err := svc.Select("conc-scaled", nil, 5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 9
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				switch g % 3 {
				case 0:
					st, err := svc.SelectScaled("conc-scaled", nil, 5, 3, nil, scaleForce())
					if err == nil && subTableFingerprint(st) != subTableFingerprint(wantWhole) {
						err = fmt.Errorf("concurrent scaled select diverged")
					}
					errs[g] = err
				case 1:
					st, err := svc.SelectScaled("conc-scaled", q, 4, 2, []string{"cat"}, scaleForce())
					if err == nil && subTableFingerprint(st) != subTableFingerprint(wantQuery) {
						err = fmt.Errorf("concurrent scaled query select diverged")
					}
					errs[g] = err
				default:
					st, err := svc.Select("conc-scaled", nil, 5, 3, nil)
					if err == nil && subTableFingerprint(st) != subTableFingerprint(wantExact) {
						err = fmt.Errorf("concurrent exact select diverged while scaled selects ran")
					}
					errs[g] = err
				}
				if errs[g] != nil {
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestHTTPSelectScale drives the scale block through the HTTP layer: a
// valid block selects successfully and deterministically, a negative knob
// is a 400.
func TestHTTPSelectScale(t *testing.T) {
	srv := newTestServer(t)
	up, err := http.Post(srv.URL+"/tables?name=big", "text/csv", strings.NewReader(testCSV(1200)))
	if err != nil {
		t.Fatal(err)
	}
	up.Body.Close()
	if up.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", up.StatusCode)
	}
	req := map[string]any{
		"k": 5, "l": 2,
		"scale": map[string]any{"threshold": 1, "sample_budget": 300},
	}
	var first, second struct {
		SourceRows []int `json:"source_rows"`
	}
	doJSON(t, "POST", srv.URL+"/tables/big/select", req, http.StatusOK, &first)
	if len(first.SourceRows) != 5 {
		t.Fatalf("scaled HTTP select returned %d rows, want 5", len(first.SourceRows))
	}
	doJSON(t, "POST", srv.URL+"/tables/big/select", req, http.StatusOK, &second)
	if fmt.Sprint(first.SourceRows) != fmt.Sprint(second.SourceRows) {
		t.Fatalf("scaled HTTP select not deterministic: %v vs %v", first.SourceRows, second.SourceRows)
	}
	bad := map[string]any{"k": 5, "l": 2, "scale": map[string]any{"threshold": -1}}
	doJSON(t, "POST", srv.URL+"/tables/big/select", bad, http.StatusBadRequest, nil)
}
