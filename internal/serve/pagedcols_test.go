// Regression tests for the two serving-layer memory/staleness bugs fixed
// alongside the paged column store: the per-model full-vector cache must not
// outlive its model's store residency, and a coordinator's per-(budget,cols)
// sample cache must not survive a table replacement.
package serve

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"subtab/internal/core"
)

// TestEvictionReleasesVectorCache pins the unbounded-growth fix: once the
// LRU evicts a model, its O(rows×dim) full-table vector cache must become
// collectible even while a caller still references the model itself. Before
// the ReleaseVectorCache hook in insertLocked, a multi-tenant server that
// cycled tables through a small LRU retained every evicted tenant's matrix
// for as long as any handler held the model.
func TestEvictionReleasesVectorCache(t *testing.T) {
	const rows = 40000
	store := NewStore(StoreOptions{Dir: t.TempDir(), MaxModels: 1})
	svc := NewService(store, testOptions())
	m, err := svc.AddTable("a", testTable("a", rows, 7), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	// An exact full-column select warms the rows×dim float32 matrix.
	if _, err := m.SelectWith(nil, 6, 3, nil, nil); err != nil {
		t.Fatal(err)
	}
	matrix := int64(rows) * int64(m.Emb.Dim()) * 4

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	// Inserting a second model into the MaxModels=1 store evicts "a".
	if _, err := svc.AddTable("b", testTable("b", 64, 9), nil, false); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	freed := int64(before.HeapAlloc) - int64(after.HeapAlloc)
	if freed < matrix/2 {
		t.Errorf("eviction freed %d bytes of live heap, want at least %d (half the %d-byte vector cache): the evicted model's cache is still retained",
			freed, matrix/2, matrix)
	}
	// The model reference must stay live past the measurements, so the drop
	// above can only come from the released caches, not the model itself.
	if m.T.NumRows() != rows {
		t.Fatalf("model mutated during eviction: %d rows", m.T.NumRows())
	}
}

// TestShardSampleCacheInvalidatedOnReplace pins the staleness fix: a
// coordinator's cross-request sample cache is keyed to the store's
// replacement generation, so replacing a sharded table forces the next
// scaled select to re-scatter to the workers instead of serving candidate
// rows gathered against the predecessor table.
func TestShardSampleCacheInvalidatedOnReplace(t *testing.T) {
	const name = "t"
	coordDir, workerDir := splitCacheDir(t, name, 2500, 3, []int{1, 2})

	worker := NewService(NewStore(StoreOptions{Dir: workerDir, AllowMissingShards: true}), testOptions())
	var sampleHits atomic.Int64
	base := NewHandler(worker, nil)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/sample") {
			sampleHits.Add(1)
		}
		base.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	var coordStore *Store
	coordStore = NewStore(StoreOptions{
		Dir:                coordDir,
		AllowMissingShards: true,
		PrepareModel: func(n string, m *core.Model) error {
			if m.ShardSource() == nil || m.ShardSource().Complete() {
				return nil
			}
			sampler, err := NewShardSampler(n, m, ShardPeersOptions{
				Peers:      []string{srv.URL},
				Generation: func() uint64 { return coordStore.Generation(n) },
			})
			if err != nil {
				return err
			}
			m.SetShardSampler(sampler)
			return nil
		},
	})
	coord := NewService(coordStore, testOptions())

	want, err := coord.SelectScaled(name, nil, 6, 3, nil, scaleForce())
	if err != nil {
		t.Fatal(err)
	}
	scatters := sampleHits.Load()
	if scatters == 0 {
		t.Fatal("first scaled select did not scatter to the worker")
	}

	// A repeat select is served from the coordinator's sample cache.
	if _, err := coord.SelectScaled(name, nil, 6, 3, nil, scaleForce()); err != nil {
		t.Fatal(err)
	}
	if got := sampleHits.Load(); got != scatters {
		t.Fatalf("repeat select re-scattered (%d → %d sample requests); cache lost", scatters, got)
	}

	// Replace the table (Store.Put bumps the generation). The held model and
	// its sampler keep serving — exactly the window where a stale cached
	// sample used to leak through.
	m, err := coord.Model(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := coordStore.Put(name, m); err != nil {
		t.Fatal(err)
	}
	got, err := coord.SelectScaled(name, nil, 6, 3, nil, scaleForce())
	if err != nil {
		t.Fatal(err)
	}
	if sampleHits.Load() <= scatters {
		t.Error("select after table replacement served the generation-stale cached sample instead of re-scattering")
	}
	if subTableFingerprint(got) != subTableFingerprint(want) {
		t.Error("re-scattered select diverged from the original (same underlying shards)")
	}
}
