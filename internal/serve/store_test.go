package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"subtab/internal/core"
	"subtab/internal/query"
	"subtab/internal/table"
	"subtab/internal/word2vec"
)

// testTable builds a deterministic mixed table.
func testTable(name string, rows int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	nums := make([]float64, rows)
	cats := make([]string, rows)
	grp := make([]string, rows)
	for i := range nums {
		g := rng.Intn(3)
		nums[i] = float64(g*20 + rng.Intn(8))
		cats[i] = fmt.Sprintf("c%d", g)
		grp[i] = fmt.Sprintf("g%d", rng.Intn(4))
	}
	t, err := table.FromColumns(name, []*table.Column{
		table.NewNumeric("num", nums),
		table.NewCategorical("cat", cats),
		table.NewCategorical("grp", grp),
	})
	if err != nil {
		panic(err)
	}
	return t
}

// testOptions are small, deterministic pipeline settings.
func testOptions() core.Options {
	opt := core.Default()
	opt.Embedding = word2vec.Options{Dim: 12, Epochs: 2, Seed: 2}
	opt.ClusterSeed = 9
	return opt
}

func buildModel(tb testing.TB, name string, rows int) *core.Model {
	tb.Helper()
	m, err := core.Preprocess(testTable(name, rows, 11), testOptions())
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// TestSingleflight is the core serving guarantee: N concurrent requests for
// the same un-cached table trigger exactly one Preprocess.
func TestSingleflight(t *testing.T) {
	s := NewStore(StoreOptions{})
	var builds atomic.Int32
	build := func() (*core.Model, error) {
		builds.Add(1)
		time.Sleep(30 * time.Millisecond) // hold the flight open for the herd
		return buildModel(t, "flock", 200), nil
	}
	const n = 16
	models := make([]*core.Model, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := s.GetOrBuild("flock", build)
			if err != nil {
				t.Error(err)
			}
			models[i] = m
		}(i)
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("%d concurrent requests ran %d builds, want 1", n, got)
	}
	for i := 1; i < n; i++ {
		if models[i] != models[0] {
			t.Fatal("concurrent callers received different models")
		}
	}
	if got := s.Stats().Builds; got != 1 {
		t.Fatalf("stats.Builds = %d, want 1", got)
	}
}

func TestSingleflightError(t *testing.T) {
	s := NewStore(StoreOptions{})
	boom := errors.New("boom")
	var builds atomic.Int32
	build := func() (*core.Model, error) {
		builds.Add(1)
		time.Sleep(10 * time.Millisecond)
		return nil, boom
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.GetOrBuild("bad", build); !errors.Is(err, boom) {
				t.Errorf("err = %v, want boom", err)
			}
		}()
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("builds = %d, want 1 (errors must not be cached, but the flight must be shared)", got)
	}
	// A failed build leaves nothing cached: the next request builds again.
	if _, err := s.GetOrBuild("bad", build); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := builds.Load(); got != 2 {
		t.Fatalf("builds = %d, want 2", got)
	}
}

func TestGetUnknown(t *testing.T) {
	s := NewStore(StoreOptions{})
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

// TestLRUEvictionDiskReload exercises the disk-backed LRU: the coldest model
// is evicted from memory but survives on disk and reloads without a build.
func TestLRUEvictionDiskReload(t *testing.T) {
	s := NewStore(StoreOptions{MaxModels: 2, Dir: t.TempDir()})
	for _, name := range []string{"a", "b", "c"} {
		if err := s.Put(name, buildModel(t, name, 150)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.MemoryLen(); got != 2 {
		t.Fatalf("memory holds %d models, want 2", got)
	}
	if got := s.Stats().Evictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	names := s.Names()
	if len(names) != 3 {
		t.Fatalf("Names() = %v, want 3 tables", names)
	}
	// "a" was evicted (LRU); it must come back from disk, not a rebuild.
	m, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if m.T.Name != "a" {
		t.Fatalf("loaded table %q, want %q", m.T.Name, "a")
	}
	st := s.Stats()
	if st.DiskLoads != 1 || st.Builds != 0 {
		t.Fatalf("stats = %+v, want exactly one disk load and no builds", st)
	}
}

func TestRemove(t *testing.T) {
	s := NewStore(StoreOptions{Dir: t.TempDir()})
	if err := s.Put("x", buildModel(t, "x", 120)); err != nil {
		t.Fatal(err)
	}
	if !s.Contains("x") {
		t.Fatal("Contains after Put = false")
	}
	s.Remove("x")
	if s.Contains("x") {
		t.Fatal("Contains after Remove = true")
	}
	if _, err := s.Get("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound (disk copy must be gone too)", err)
	}
}

// TestCorruptDiskSelfHeals: a truncated cache file is treated as a miss and
// rebuilt over.
func TestCorruptDiskSelfHeals(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(StoreOptions{Dir: dir})
	if err := s.Put("h", buildModel(t, "h", 120)); err != nil {
		t.Fatal(err)
	}
	// Drop from memory, then corrupt the file on disk.
	s.mu.Lock()
	el := s.entries["h"]
	s.lru.Remove(el)
	delete(s.entries, "h")
	s.mu.Unlock()
	path := s.path("h")
	if err := truncateFile(path, 64); err != nil {
		t.Fatal(err)
	}
	var rebuilt atomic.Int32
	m, err := s.GetOrBuild("h", func() (*core.Model, error) {
		rebuilt.Add(1)
		return buildModel(t, "h", 120), nil
	})
	if err != nil || m == nil {
		t.Fatal(err)
	}
	if rebuilt.Load() != 1 {
		t.Fatal("corrupt disk cache should fall through to a rebuild")
	}
	// The rebuild must have healed the file: a fresh store loads it.
	s2 := NewStore(StoreOptions{Dir: dir})
	if _, err := s2.Get("h"); err != nil {
		t.Fatalf("healed cache failed to load: %v", err)
	}
}

// TestServiceConcurrentAccess hammers one service from many goroutines mixing
// selects, query-selects, rule mining and table listing. Its real assertion
// is the race detector (go test -race ./internal/serve).
func TestServiceConcurrentAccess(t *testing.T) {
	svc := NewService(NewStore(StoreOptions{}), testOptions())
	if _, err := svc.AddTable("conc", testTable("conc", 300, 5), nil, false); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{Where: []query.Predicate{{Col: "num", Op: query.Geq, Num: 20}}}
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				switch (g + i) % 4 {
				case 0:
					if _, err := svc.Select("conc", nil, 5, 2, nil); err != nil {
						t.Error(err)
					}
				case 1:
					if _, err := svc.Select("conc", q, 4, 2, []string{"cat"}); err != nil {
						t.Error(err)
					}
				case 2:
					if _, _, err := svc.Rules("conc", rulesOptionsForTest()); err != nil {
						t.Error(err)
					}
				case 3:
					if len(svc.Tables()) == 0 {
						t.Error("Tables() = empty")
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// Selections against a warm cache must be deterministic across the run.
	a, err := svc.Select("conc", nil, 5, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Select("conc", nil, 5, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.View.String() != b.View.String() {
		t.Fatal("warm selections diverged")
	}
}

// TestMemoryOnlyNeverEvicts: without a disk cache there is nothing to
// rebuild an evicted model from, so the LRU bound must not apply — an
// acknowledged table must never silently 404.
func TestMemoryOnlyNeverEvicts(t *testing.T) {
	s := NewStore(StoreOptions{MaxModels: 2})
	for _, name := range []string{"a", "b", "c", "d"} {
		if err := s.Put(name, buildModel(t, name, 80)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.MemoryLen(); got != 4 {
		t.Fatalf("memory holds %d models, want all 4", got)
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		if _, err := s.Get(name); err != nil {
			t.Fatalf("Get(%q) after over-bound puts: %v", name, err)
		}
	}
}

// TestBuilderNotPoisonedByLookupFlight: a GetOrBuild carrying a build
// function that arrives while a build-less lookup flight is in progress
// must not inherit the lookup's ErrNotFound — it retries with its build.
func TestBuilderNotPoisonedByLookupFlight(t *testing.T) {
	s := NewStore(StoreOptions{})
	// Plant a build-less flight, as a concurrent Get would.
	c := &flightCall{done: make(chan struct{}), hasBuild: false}
	s.mu.Lock()
	s.inflight["x"] = c
	s.mu.Unlock()

	got := make(chan error, 1)
	go func() {
		_, err := s.GetOrBuild("x", func() (*core.Model, error) {
			return buildModel(t, "x", 80), nil
		})
		got <- err
	}()
	// The builder must be waiting on the lookup flight, not failed.
	select {
	case err := <-got:
		t.Fatalf("builder returned %v before the lookup flight resolved", err)
	case <-time.After(30 * time.Millisecond):
	}
	// Resolve the lookup flight with its natural result: not found.
	c.err = fmt.Errorf("%w: %q", ErrNotFound, "x")
	s.mu.Lock()
	delete(s.inflight, "x")
	s.mu.Unlock()
	close(c.done)
	if err := <-got; err != nil {
		t.Fatalf("builder inherited the lookup's failure: %v", err)
	}
	if _, err := s.Get("x"); err != nil {
		t.Fatalf("model not cached after build: %v", err)
	}
}

// TestPutWinsOverInflightBuild: a replacement Put that lands while a build
// of the same name is in flight must not be clobbered when the build
// finishes — in memory or on disk.
func TestPutWinsOverInflightBuild(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(StoreOptions{Dir: dir})
	replacement := buildModel(t, "new", 100)
	building := make(chan struct{})
	done := make(chan *core.Model, 1)
	go func() {
		m, err := s.GetOrBuild("x", func() (*core.Model, error) {
			close(building)
			time.Sleep(50 * time.Millisecond) // Put lands mid-build
			return buildModel(t, "old", 100), nil
		})
		if err != nil {
			t.Error(err)
		}
		done <- m
	}()
	<-building
	if err := s.Put("x", replacement); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got != replacement {
		t.Fatal("in-flight build caller received the stale model, not the replacement")
	}
	if m, err := s.Get("x"); err != nil || m != replacement {
		t.Fatalf("store serves %v (%p), want the replacement", err, m)
	}
	// Disk must hold the replacement too: a fresh store loads a model whose
	// table is the replacement's ("new"), not the stale build's ("old").
	s2 := NewStore(StoreOptions{Dir: dir})
	m2, err := s2.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if m2.T.Name != "new" {
		t.Fatalf("disk holds table %q, want %q (stale build overwrote the replacement)", m2.T.Name, "new")
	}
}

func TestRulesKeyUnambiguous(t *testing.T) {
	a := rulesKey("t", rulesOptions([]string{"a", "b"}))
	b := rulesKey("t", rulesOptions([]string{"a b"}))
	if a == b {
		t.Fatalf("distinct target sets share cache key %q", a)
	}
}

// TestRulesModelConsistency: rules are always labeled against the model
// they were mined from, even when the table is replaced concurrently.
func TestRulesModelConsistency(t *testing.T) {
	svc := NewService(NewStore(StoreOptions{}), testOptions())
	if _, err := svc.AddTable("r", testTable("v1", 200, 3), nil, false); err != nil {
		t.Fatal(err)
	}
	rs, m, err := svc.Rules("r", rulesOptionsForTest())
	if err != nil {
		t.Fatal(err)
	}
	if m.T.Name != "v1" {
		t.Fatalf("rules mined against %q", m.T.Name)
	}
	if _, err := svc.AddTable("r", testTable("v2", 150, 4), nil, true); err != nil {
		t.Fatal(err)
	}
	// The replace invalidated the cache: a fresh call mines against v2.
	rs2, m2, err := svc.Rules("r", rulesOptionsForTest())
	if err != nil {
		t.Fatal(err)
	}
	if m2.T.Name != "v2" {
		t.Fatalf("post-replace rules mined against %q, want v2", m2.T.Name)
	}
	_ = rs
	_ = rs2
}

func TestServiceAddExistsAndReplace(t *testing.T) {
	svc := NewService(NewStore(StoreOptions{}), testOptions())
	if _, err := svc.AddTable("dup", testTable("dup", 100, 1), nil, false); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddTable("dup", testTable("dup", 100, 2), nil, false); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
	if _, err := svc.AddTable("dup", testTable("dup", 100, 2), nil, true); err != nil {
		t.Fatalf("replace: %v", err)
	}
	if _, err := svc.AddTable("  ", testTable("blank", 50, 1), nil, false); err == nil {
		t.Fatal("blank names must be rejected")
	}
}
