package serve

// Shard-exec: the HTTP lift of the scatter/gather selection protocol.
//
// A table's code store may be split into shards owned by different
// subtab-server instances. The instance a client talks to (the
// coordinator) loads the model with AllowMissingShards, so it holds the
// table, binnings and embedding but only some (possibly zero) shard
// files. Scaled selections then scatter one shard.SampleRequest per
// remote shard to peers (POST /shards/{table}/{idx}/sample), scan local
// shards in-process, and merge the per-shard summaries associatively —
// the same merge the single-process fan-out runs, so the selection is
// bit-identical to a single store holding every row. Each response also
// carries the candidate rows' codes; the coordinator overlays them as a
// sparse code source so the rest of the selection never touches a
// missing shard.
//
// Tables whose raw columns are sharded too (paged column stores)
// extend the lift to view rendering: the coordinator resolves the chosen
// rows' cells from the owning workers (POST /shards/{table}/{idx}/cells),
// one round trip per remote shard covering every view column.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"subtab/internal/binning"
	"subtab/internal/core"
	"subtab/internal/memgov"
	"subtab/internal/query"
	"subtab/internal/shard"
)

// maxShardRespBytes bounds a peer's sample response (a summary is at most
// nItems strata plus budget candidates plus their codes; 64 MiB is far
// beyond any sane configuration and still small enough to read eagerly).
const maxShardRespBytes = 1 << 26

// SampleShard executes one shard's half of a scatter/gather sample: the
// worker side of POST /shards/{name}/{idx}/sample. The request's checksum
// must match the local shard file's identity, so a coordinator and a
// worker whose stores diverged fail loudly instead of merging skewed
// minima. The response carries the shard's summary plus the codes of
// every candidate row, for all table columns.
func (s *Service) SampleShard(name string, idx int, req *shard.SampleRequest) (*shard.SampleResponse, error) {
	m, err := s.store.Get(name)
	if err != nil {
		return nil, err
	}
	src := m.ShardSource()
	if src == nil {
		return nil, fmt.Errorf("%w: table %q is not sharded", ErrBadRequest, name)
	}
	if idx < 0 || idx >= src.NumShards() {
		return nil, fmt.Errorf("%w: shard %d out of range [0, %d)", ErrBadRequest, idx, src.NumShards())
	}
	if !src.ShardAvailable(idx) {
		return nil, fmt.Errorf("%w: shard %d of %q is not held by this instance", ErrBadRequest, idx, name)
	}
	if got, want := req.Checksum, src.Desc(idx).Checksum; got != want {
		return nil, fmt.Errorf("%w: shard %d of %q: request expects checksum %08x, this store has %08x",
			ErrBadRequest, idx, name, got, want)
	}
	sum, matched, err := m.SampleShardFiltered(idx, req.Cols, req.Budget, req.Seed, req.Preds)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	rows := sum.CandidateRows()
	return &shard.SampleResponse{
		Summary: sum,
		Rows:    rows,
		Codes:   gatherShardCodes(src, m.T.NumCols(), rows),
		Matched: matched,
	}, nil
}

// maxShardCellsPerRequest bounds one cells request's row×column product: a
// view gather touches k rows × l columns (hundreds of cells), so a request
// asking for millions is a bug or abuse, not a bigger view.
const maxShardCellsPerRequest = 1 << 20

// ShardCells executes the worker half of a remote view gather: the handler
// behind POST /shards/{name}/{idx}/cells. The request carries shard-local
// row indices and source column indices; the response carries the rendered
// cells, exactly the bytes the coordinator's view assembly would read off a
// local column store. Like SampleShard, the request's checksum must match
// the local column shard's identity.
func (s *Service) ShardCells(name string, idx int, req *shard.CellsRequest) (*shard.CellsResponse, error) {
	m, err := s.store.Get(name)
	if err != nil {
		return nil, err
	}
	sc := m.ShardCells()
	if sc == nil {
		return nil, fmt.Errorf("%w: table %q has no sharded column store", ErrBadRequest, name)
	}
	if idx < 0 || idx >= sc.NumShards() {
		return nil, fmt.Errorf("%w: shard %d out of range [0, %d)", ErrBadRequest, idx, sc.NumShards())
	}
	if !sc.ShardAvailable(idx) {
		return nil, fmt.Errorf("%w: column shard %d of %q is not held by this instance", ErrBadRequest, idx, name)
	}
	if got, want := req.Checksum, sc.Desc(idx).Checksum; got != want {
		return nil, fmt.Errorf("%w: column shard %d of %q: request expects checksum %08x, this store has %08x",
			ErrBadRequest, idx, name, got, want)
	}
	if n := len(req.Cols) * len(req.Rows); n > maxShardCellsPerRequest {
		return nil, fmt.Errorf("%w: request asks for %d cells, limit is %d", ErrBadRequest, n, maxShardCellsPerRequest)
	}
	shardRows := sc.Desc(idx).Rows
	rows := make([]int, len(req.Rows))
	for i, r := range req.Rows {
		if r < 0 || r >= int64(shardRows) {
			return nil, fmt.Errorf("%w: row %d outside column shard %d's range [0, %d)", ErrBadRequest, r, idx, shardRows)
		}
		rows[i] = int(r)
	}
	cells, err := m.GatherShardCells(idx, req.Cols, rows)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return &shard.CellsResponse{Cells: cells}, nil
}

// gatherShardCodes reads the codes of the given global rows for every
// table column (col-major, parallel to rows).
func gatherShardCodes(src *shard.Source, cols int, rows []int64) [][]uint16 {
	codes := make([][]uint16, cols)
	for c := range codes {
		col := make([]uint16, len(rows))
		for k, r := range rows {
			col[k] = src.Code(c, int(r))
		}
		codes[c] = col
	}
	return codes
}

// ShardPeersOptions configures a coordinator's scatter behaviour.
type ShardPeersOptions struct {
	// Peers are the base URLs of the instances holding this table's
	// shards (e.g. "http://10.0.0.7:8080"). A request for shard i is
	// first sent to Peers[i%len(Peers)] and rotates through the rest on
	// retry, so a uniform shard-to-instance assignment needs no explicit
	// placement map.
	Peers []string
	// Timeout bounds each attempt against one peer. Default 30s.
	Timeout time.Duration
	// Retries is the number of additional attempts (against rotated
	// peers) after a failed one. Default 1; negative disables retries.
	Retries int
	// Client overrides the HTTP client (tests). Default http.DefaultClient.
	Client *http.Client
	// Generation, when non-nil, tags cross-request cache entries with its
	// value at fill time and discards entries whose tag no longer matches —
	// wire it to Store.Generation(name) so replacing a sharded table
	// invalidates samples gathered against the predecessor instead of
	// serving its rows forever. Nil keeps the pre-generation behaviour
	// (cache entries live as long as the sampler).
	Generation func() uint64
	// Governor, when non-nil, byte-accounts the sampler's cross-request
	// sample cache under memgov.ClassCoordCache. The cache stays bounded by
	// entry count regardless; the governor sees its true byte weight (the
	// candidate overlays dominate a coordinator's heap) and reclaims it when
	// the serving store evicts the model (via core.CacheReleaser).
	Governor *memgov.Governor
}

// NewShardSampler builds the coordinator side of the protocol: a
// core.ShardSampler that samples m's local shards in-process, fetches the
// remote ones from peers, and merges — install it with
// m.SetShardSampler. The model must be shard-backed; peers are required
// only when some shards are not local. When the model's raw columns are
// sharded too, the same peer set is installed as the column source's cell
// fetcher, so view assembly resolves remote shards' cells over
// POST /shards/{name}/{idx}/cells with one round trip per shard.
func NewShardSampler(name string, m *core.Model, opt ShardPeersOptions) (core.ShardSampler, error) {
	src := m.ShardSource()
	if src == nil {
		return nil, fmt.Errorf("serve: table %q is not shard-backed", name)
	}
	if !src.Complete() && len(opt.Peers) == 0 {
		return nil, fmt.Errorf("serve: table %q has remote shards but no peers were given", name)
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 30 * time.Second
	}
	if opt.Retries < 0 {
		opt.Retries = 0
	} else if opt.Retries == 0 {
		opt.Retries = 1
	}
	if opt.Client == nil {
		opt.Client = http.DefaultClient
	}
	s := &shardSampler{
		name:  name,
		m:     m,
		src:   src,
		opt:   opt,
		cache: make(map[string]sampleResult),
		acct:  opt.Governor.Account(memgov.ClassCoordCache),
	}
	if sc := m.ShardCells(); sc != nil && !sc.Complete() {
		if len(opt.Peers) == 0 {
			return nil, fmt.Errorf("serve: table %q has remote column shards but no peers were given", name)
		}
		sc.SetFetcher(s.fetchCells)
	}
	return s, nil
}

type shardSampler struct {
	name string
	m    *core.Model
	src  *shard.Source
	opt  ShardPeersOptions
	acct *memgov.Account // coord-cache settlement (nil when ungoverned)

	mu         sync.Mutex
	cache      map[string]sampleResult // per (budget, cols): scatter round trips are the expensive half of a scaled select
	cacheBytes int64                   // Σ entry bytes, settled with acct after every mutation
	cacheGen   uint64                  // bumped under mu on every mutation; orders the settles
}

type sampleResult struct {
	rows    []int
	overlay *shard.SparseSource
	matched int    // total rows matching the request's predicates, across shards
	gen     uint64 // ShardPeersOptions.Generation at fill time
	bytes   int64  // estimated residency: rows + overlay rows + overlay codes
}

// Sample runs one full scatter/gather round: scan or fetch every
// non-empty shard, merge the summaries, finish the pick order, and
// overlay the gathered codes. rows is byte-identical to what the
// single-store stratified reservoir would return.
func (s *shardSampler) Sample(cols []int, budget int) ([]int, binning.CodeSource, error) {
	rows, codes, _, err := s.SampleFiltered(cols, budget, nil)
	return rows, codes, err
}

// SampleFiltered is Sample with a predicate conjunction pushed into the
// per-shard scans (core.FilteredShardSampler): each request carries the
// predicates, each worker evaluates them shard-locally inside its scan and
// reports how many of its rows matched, and the merged sample is exactly
// what a single-store filtered reservoir over the whole table would
// return. matched is the total matching row count across shards — the
// figure the scaled-path threshold gates on, since the coordinator never
// materializes the matching row set.
func (s *shardSampler) SampleFiltered(cols []int, budget int, preds []query.Predicate) ([]int, binning.CodeSource, int, error) {
	if budget <= 0 {
		return nil, nil, 0, fmt.Errorf("serve: sample budget must be positive, got %d", budget)
	}
	// The predicate key spells every field unambiguously (%q quotes the
	// strings), so two conjunctions differing only in, say, Num vs Str
	// cannot collide.
	var pk strings.Builder
	for _, p := range preds {
		fmt.Fprintf(&pk, "%q|%d|%x|%q;", p.Col, p.Op, p.Num, p.Str)
	}
	key := fmt.Sprintf("%d|%v|%s", budget, cols, pk.String())
	// The generation is read before the scatter: if the table is replaced
	// while this round is in flight, the result is stored under the old tag
	// and the next lookup discards it instead of serving pre-replace rows.
	var gen uint64
	if s.opt.Generation != nil {
		gen = s.opt.Generation()
	}
	s.mu.Lock()
	if r, ok := s.cache[key]; ok {
		if s.opt.Generation == nil || r.gen == gen {
			s.mu.Unlock()
			return append([]int(nil), r.rows...), r.overlay, r.matched, nil
		}
		delete(s.cache, key)
		s.cacheBytes -= r.bytes
		s.cacheGen++
		cg, cb := s.cacheGen, s.cacheBytes
		s.mu.Unlock()
		s.acct.Settle(cg, cb)
	} else {
		s.mu.Unlock()
	}

	seed := s.m.SampleSeed()
	nCols := s.m.T.NumCols()
	resps := make([]*shard.SampleResponse, s.src.NumShards())
	errs := make([]error, s.src.NumShards())
	var wg sync.WaitGroup
	for i := 0; i < s.src.NumShards(); i++ {
		if s.src.ShardRows(i) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if s.src.ShardAvailable(i) {
				sum, matched, err := s.m.SampleShardFiltered(i, cols, budget, seed, preds)
				if err != nil {
					errs[i] = err
					return
				}
				rows := sum.CandidateRows()
				resps[i] = &shard.SampleResponse{Summary: sum, Rows: rows, Codes: gatherShardCodes(s.src, nCols, rows), Matched: matched}
				return
			}
			resp, err := s.fetch(i, &shard.SampleRequest{
				Checksum: s.src.Desc(i).Checksum,
				Seed:     seed,
				Budget:   budget,
				Cols:     cols,
				Preds:    preds,
			})
			if err == nil {
				err = validateShardResponse(resp, s.src, i, nCols, s.m.B.NumItems())
			}
			if err != nil {
				errs[i] = err
				return
			}
			resps[i] = resp
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, 0, err
		}
	}

	sums := make([]shard.Summary, len(resps))
	total, matched := 0, 0
	for i, r := range resps {
		if r == nil {
			continue
		}
		sums[i] = r.Summary
		total += len(r.Rows)
		matched += r.Matched
	}
	strata, cands := shard.MergeSummaries(sums, s.m.B.NumItems())
	rows := shard.FinishSample(strata, cands, budget)

	// The overlay holds every candidate any shard surfaced (a superset of
	// the final sample); shard ranges are disjoint, so rows cannot repeat.
	allRows := make([]int64, 0, total)
	allCodes := make([][]uint16, nCols)
	for c := range allCodes {
		allCodes[c] = make([]uint16, 0, total)
	}
	for _, r := range resps {
		if r == nil {
			continue
		}
		allRows = append(allRows, r.Rows...)
		for c := range allCodes {
			allCodes[c] = append(allCodes[c], r.Codes[c]...)
		}
	}
	overlay, err := shard.NewSparseSource(s.m.T.NumRows(), nCols, allRows, allCodes)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("serve: assembling sampled overlay for %q: %w", s.name, err)
	}

	// Entry weight: the cached pick order plus the overlay's row ids and its
	// per-column uint16 codes (slice headers ignored; the payloads dominate).
	rb := int64(len(rows))*8 + int64(len(allRows))*(8+2*int64(nCols))
	s.mu.Lock()
	if len(s.cache) >= 8 {
		clear(s.cache)
		s.cacheBytes = 0
	}
	s.cache[key] = sampleResult{rows: rows, overlay: overlay, matched: matched, gen: gen, bytes: rb}
	s.cacheBytes += rb
	s.cacheGen++
	cg, cb := s.cacheGen, s.cacheBytes
	s.mu.Unlock()
	s.acct.Settle(cg, cb)
	return append([]int(nil), rows...), overlay, matched, nil
}

// ReleaseCache drops the coordinator's cross-request sample cache and
// settles its governed bytes to zero — the core.CacheReleaser hook
// core.Model.ReleaseVectorCache forwards to, so a store eviction reclaims
// the coordinator bytes keyed to the model. Settling to zero only ever
// shrinks, so this is safe under the serving store's mutex.
func (s *shardSampler) ReleaseCache() {
	s.mu.Lock()
	clear(s.cache)
	s.cacheBytes = 0
	s.cacheGen++
	cg := s.cacheGen
	s.mu.Unlock()
	s.acct.Settle(cg, 0)
}

// fetch posts the sample request for shard idx, rotating through peers
// across attempts.
func (s *shardSampler) fetch(idx int, req *shard.SampleRequest) (*shard.SampleResponse, error) {
	body := req.Marshal()
	var lastErr error
	for attempt := 0; attempt <= s.opt.Retries; attempt++ {
		peer := s.opt.Peers[(idx+attempt)%len(s.opt.Peers)]
		raw, err := s.post(peer, idx, "sample", body)
		if err == nil {
			resp, err := shard.UnmarshalSampleResponse(raw)
			if err == nil {
				return resp, nil
			}
			lastErr = fmt.Errorf("peer %s: %w", peer, err)
			continue
		}
		lastErr = fmt.Errorf("peer %s: %w", peer, err)
	}
	return nil, fmt.Errorf("serve: sampling shard %d of %q: %w", idx, s.name, lastErr)
}

// fetchCells resolves one remote shard's rendered view cells — the
// shard.CellFetcher a coordinator installs on its sharded column source.
// rows are shard-local; the same peer rotation and retry budget as sample
// fetches apply.
func (s *shardSampler) fetchCells(idx int, cols []int, rows []int) ([][]string, error) {
	sc := s.m.ShardCells()
	if sc == nil {
		return nil, fmt.Errorf("serve: table %q has no sharded column source", s.name)
	}
	rows64 := make([]int64, len(rows))
	for i, r := range rows {
		rows64[i] = int64(r)
	}
	req := &shard.CellsRequest{Checksum: sc.Desc(idx).Checksum, Cols: cols, Rows: rows64}
	body := req.Marshal()
	var lastErr error
	for attempt := 0; attempt <= s.opt.Retries; attempt++ {
		peer := s.opt.Peers[(idx+attempt)%len(s.opt.Peers)]
		raw, err := s.post(peer, idx, "cells", body)
		if err == nil {
			resp, err := shard.UnmarshalCellsResponse(raw)
			if err == nil {
				return resp.Cells, nil
			}
			lastErr = fmt.Errorf("peer %s: %w", peer, err)
			continue
		}
		lastErr = fmt.Errorf("peer %s: %w", peer, err)
	}
	return nil, fmt.Errorf("serve: fetching cells for shard %d of %q: %w", idx, s.name, lastErr)
}

// post sends one checksummed frame to a peer's shard-exec endpoint
// ("sample" or "cells") and returns the raw response frame.
func (s *shardSampler) post(peer string, idx int, endpoint string, body []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.opt.Timeout)
	defer cancel()
	u := strings.TrimRight(peer, "/") + "/shards/" + url.PathEscape(s.name) + "/" + strconv.Itoa(idx) + "/" + endpoint
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	hresp, err := s.opt.Client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return nil, fmt.Errorf("status %d: %s", hresp.StatusCode, strings.TrimSpace(string(msg)))
	}
	raw, err := io.ReadAll(io.LimitReader(hresp.Body, maxShardRespBytes+1))
	if err != nil {
		return nil, err
	}
	if len(raw) > maxShardRespBytes {
		return nil, fmt.Errorf("response exceeds %d bytes", maxShardRespBytes)
	}
	return raw, nil
}

// validateShardResponse rejects a peer response that cannot merge safely:
// rows outside the shard's range, rows disagreeing with its own summary,
// or geometry that does not match this coordinator's model.
func validateShardResponse(resp *shard.SampleResponse, src *shard.Source, idx, nCols, nItems int) error {
	if len(resp.Summary.Strata) != nItems {
		return fmt.Errorf("serve: shard %d response has %d strata, model has %d items", idx, len(resp.Summary.Strata), nItems)
	}
	if len(resp.Codes) != nCols {
		return fmt.Errorf("serve: shard %d response has %d code columns, table has %d", idx, len(resp.Codes), nCols)
	}
	want := resp.Summary.CandidateRows()
	if len(want) != len(resp.Rows) {
		return fmt.Errorf("serve: shard %d response carries %d rows for %d candidates", idx, len(resp.Rows), len(want))
	}
	if resp.Matched < len(resp.Rows) || resp.Matched > src.ShardRows(idx) {
		return fmt.Errorf("serve: shard %d response claims %d matching rows but carries %d candidates of %d shard rows",
			idx, resp.Matched, len(resp.Rows), src.ShardRows(idx))
	}
	lo := int64(src.ShardStart(idx))
	hi := lo + int64(src.ShardRows(idx))
	for k, r := range resp.Rows {
		if r != want[k] {
			return fmt.Errorf("serve: shard %d response rows disagree with its summary", idx)
		}
		if r < lo || r >= hi {
			return fmt.Errorf("serve: shard %d response row %d outside shard range [%d, %d)", idx, r, lo, hi)
		}
	}
	return nil
}
