package serve

import (
	"testing"
	"time"

	"subtab/internal/core"
	"subtab/internal/datagen"
	"subtab/internal/word2vec"
)

// TestColdUploadSmoke is the CI cold-upload smoke: AddTable on a fresh
// 3000-row FL table runs the full pre-processing pipeline (binning, corpus
// construction, embedding training) before the first display can be served —
// the paper's Fig. 9 one-off cost, and the latency a user sits through after
// uploading a table. The deterministic parallel trainer brought this from
// ~1.3s to ~0.35s on the 1-vCPU bench box, so the 2s bound keeps headroom
// for a slow CI runner while still failing on a regression back to the old
// serial-equivalent training cost, which lands at the bound instead of well
// under it. CI runs this as its own step (no -race, no coverage
// instrumentation — both inflate the hot training loop enough to make a
// wall-clock bound meaningless).
func TestColdUploadSmoke(t *testing.T) {
	ds, err := datagen.ByName("FL", 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Default()
	opt.Bins.Seed = 1
	opt.Corpus.Seed = 1
	opt.Embedding = word2vec.Options{Dim: 24, Epochs: 3, Seed: 1}
	opt.ClusterSeed = 1
	svc := NewService(NewStore(StoreOptions{}), opt)

	start := time.Now()
	if _, err := svc.AddTable("fl", ds.T, nil, false); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Select("fl", nil, 10, 5, nil); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("cold upload (preprocess + first select) took %s, over the 2s smoke bound", elapsed)
	}
	t.Logf("cold upload (preprocess + first select): %s", elapsed)
}
