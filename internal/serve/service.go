package serve

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"

	"subtab/internal/core"
	"subtab/internal/memgov"
	"subtab/internal/query"
	"subtab/internal/rules"
	"subtab/internal/session"
	"subtab/internal/shard"
	"subtab/internal/table"
)

// ErrExists is returned by AddTable when the name is already taken and
// replacement was not requested.
var ErrExists = errors.New("serve: table already exists")

// ErrBadRequest wraps failures caused by the request itself — unknown
// columns, impossible dimensions, bad mining knobs — as opposed to faults
// of the service. Selection and mining are deterministic functions of
// (request, healthy model), so once the model resolved, their errors are
// the caller's to fix; the HTTP layer maps this to 400.
var ErrBadRequest = errors.New("serve: bad request")

// ErrOverloaded wraps load-shedding refusals: a select whose estimated
// working set cannot be admitted under the memory budget, or a table
// already at its concurrency limit. The request is valid and may well
// succeed later — the HTTP layer maps this to 429 + Retry-After.
var ErrOverloaded = errors.New("serve: overloaded")

// Service exposes SubTab's interactive operations — select, select-query,
// mine-rules, highlight — over named tables, backed by a Store so that each
// table's pre-processing happens once no matter how many concurrent sessions
// request it. All methods are safe for concurrent use: models are immutable
// after pre-processing, so any number of selections can run against one
// model in parallel.
type Service struct {
	store    *Store
	defaults core.Options

	// gov and limiter, when set (SetAdmission), shed selects at the door:
	// gov admits each select's estimated transient working set against the
	// process budget, limiter bounds per-table concurrency. Both are
	// nil-safe, so the ungoverned path has no branches to configure.
	gov     *memgov.Governor
	limiter *memgov.Limiter

	// sessions holds the live exploration sessions of the /v1 API.
	sessions *session.Manager

	rulesMu    sync.Mutex
	rulesGen   map[string]uint64 // bumped on replace/remove; guards cache inserts
	rulesCache map[string]rulesEntry
}

// rulesEntry pairs mined rules with the model they were mined against, so
// rule item ids are always labeled against the matching binning even when
// the table is concurrently replaced.
type rulesEntry struct {
	rs []rules.Rule
	m  *core.Model
}

// NewService returns a service over the given store; defaults are the
// pipeline options used when AddTable is called without explicit options.
func NewService(store *Store, defaults core.Options) *Service {
	return &Service{
		store:      store,
		defaults:   defaults,
		sessions:   session.NewManager(0),
		rulesGen:   make(map[string]uint64),
		rulesCache: make(map[string]rulesEntry),
	}
}

// Store returns the underlying model store (for stats reporting).
func (s *Service) Store() *Store { return s.store }

// SetAdmission installs request admission control: selects reserve their
// estimated working set with gov (failure sheds with ErrOverloaded → 429)
// and at most perTable selects run concurrently against one table
// (perTable <= 0 disables the limit). Call before serving; typically gov
// is the same governor the store was built with.
func (s *Service) SetAdmission(gov *memgov.Governor, perTable int) {
	s.gov = gov
	s.limiter = memgov.NewLimiter(perTable)
}

// Governor returns the installed admission governor (nil when ungoverned).
func (s *Service) Governor() *memgov.Governor { return s.gov }

// LimiterRejections returns how many requests the per-table concurrency
// limit shed.
func (s *Service) LimiterRejections() int64 { return s.limiter.Rejected() }

// TableInfo describes one table known to the service. Rows, Cols and
// Columns are filled only for models resident in memory; disk-only models
// report Loaded == false and are materialized on first use.
type TableInfo struct {
	Name    string   `json:"name"`
	Loaded  bool     `json:"loaded"`
	Rows    int      `json:"rows,omitempty"`
	Cols    int      `json:"cols,omitempty"`
	Columns []string `json:"columns,omitempty"`
	// OutOfCore reports that the model's bin codes are served from an
	// external code store rather than memory.
	OutOfCore bool `json:"out_of_core,omitempty"`
	// PagedColumns reports that the model's raw displayed columns are served
	// from an on-disk paged column store: selections render by gathering
	// only the selected rows' blocks instead of holding every cell resident.
	PagedColumns bool `json:"paged_columns,omitempty"`
	// Shards is the shard count of a sharded table (0 otherwise);
	// LocalShards counts how many of them this instance holds — fewer
	// than Shards on a coordinator that samples the rest from peers.
	Shards      int `json:"shards,omitempty"`
	LocalShards int `json:"local_shards,omitempty"`
}

// AddTable pre-processes t and registers it under name. Concurrent AddTable
// and Select calls for the same name share a single Preprocess run. With
// replace false, a name that is already served returns ErrExists; with
// replace true, the new model overwrites the old one and cached rules for
// the name are invalidated.
func (s *Service) AddTable(name string, t *table.Table, opt *core.Options, replace bool) (*core.Model, error) {
	if strings.TrimSpace(name) == "" {
		return nil, errors.New("serve: table name must not be empty")
	}
	o := s.defaults
	if opt != nil {
		o = *opt
	}
	build := func() (*core.Model, error) { return core.Preprocess(t, o) }
	if !replace {
		if s.store.Contains(name) {
			return nil, fmt.Errorf("%w: %q", ErrExists, name)
		}
		return s.store.GetOrBuild(name, build)
	}
	m, err := build()
	if err != nil {
		return nil, err
	}
	if err := s.store.Put(name, m); err != nil {
		return nil, err
	}
	s.invalidateRules(name)
	return m, nil
}

// AddTableOutOfCore is AddTable for tables that should serve out-of-core:
// after pre-processing, the bin codes are exported to a code store file in
// the disk cache, the model is switched onto it and the inline codes are
// released, so the served model's resident footprint excludes the per-cell
// code matrix and scaled selections stream the store instead. The raw
// displayed columns page out the same way, to a sibling column store file:
// view assembly gathers the selected rows' blocks instead of indexing an
// in-memory table. The persisted model references both store files
// (modelio v5/v7), so disk reloads come back out-of-core too. Requires a disk-backed store; selections are
// bit-identical to the in-memory path. The whole build — export, attach,
// persist, insert — runs under the table's per-name lock, so concurrent
// uploads of one name serialize instead of pairing one upload's model with
// the other's code store.
func (s *Service) AddTableOutOfCore(name string, t *table.Table, opt *core.Options, replace bool) (*core.Model, error) {
	if strings.TrimSpace(name) == "" {
		return nil, errors.New("serve: table name must not be empty")
	}
	csPath, err := s.store.CodeStorePath(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	colsPath, err := s.store.ColumnStorePath(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	nl := s.store.lockName(name)
	nl.Lock()
	defer nl.Unlock()
	if !replace && s.store.Contains(name) {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	o := s.defaults
	if opt != nil {
		o = *opt
	}
	m, err := core.Preprocess(t, o)
	if err != nil {
		return nil, err
	}
	if _, err := m.UseCodeStoreFile(csPath, 0); err != nil {
		return nil, err
	}
	// Page out the raw displayed columns too: with both stores external the
	// resident model is schema + binnings + embedding, and a select gathers
	// only the k chosen rows' cell blocks back.
	if _, err := m.UseColumnStoreFile(colsPath, 0); err != nil {
		os.Remove(csPath)
		return nil, err
	}
	if err := s.store.putLocked(name, m); err != nil {
		// Do not strand stores whose model never registered.
		os.Remove(csPath)
		os.Remove(colsPath)
		return nil, err
	}
	s.invalidateRules(name)
	return m, nil
}

// AddTableSharded is AddTableOutOfCore with the code store split into
// shards: the bin codes export into `shards` codestore files (rows cut
// evenly), the model serves scaled selections by scattering one goroutine
// per shard, and a sidecar shard-map file records the layout so Remove
// can delete every shard and external tooling can address them. The raw
// displayed columns export into column-store shards cut at the same rows,
// so each worker instance holds the cells its code shard can select. The
// persisted model references the shard map and column shards (modelio
// v6/v7); selections stay bit-identical to the single-store and in-memory
// paths.
func (s *Service) AddTableSharded(name string, t *table.Table, opt *core.Options, shards int, replace bool) (*core.Model, error) {
	if strings.TrimSpace(name) == "" {
		return nil, errors.New("serve: table name must not be empty")
	}
	if shards <= 0 {
		return nil, fmt.Errorf("%w: shard count must be positive, got %d", ErrBadRequest, shards)
	}
	paths, err := s.store.ShardPaths(name, shards)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	colPaths, err := s.store.ColumnShardPaths(name, shards)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	nl := s.store.lockName(name)
	nl.Lock()
	defer nl.Unlock()
	if !replace && s.store.Contains(name) {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	o := s.defaults
	if opt != nil {
		o = *opt
	}
	m, err := core.Preprocess(t, o)
	if err != nil {
		return nil, err
	}
	src, err := m.UseShardedStores(paths, 0)
	if err != nil {
		return nil, err
	}
	cleanup := func() {
		for _, p := range paths {
			os.Remove(p)
		}
		for _, p := range colPaths {
			os.Remove(p)
		}
		os.Remove(s.store.shardMapPath(name))
	}
	// The raw displayed columns shard at the same row cuts as the codes, so
	// a worker instance given shard i's code file and column file holds
	// everything a scatter touching shard i needs: codes to scan, cells to
	// render.
	if _, err := m.UseShardedColumnStores(colPaths, 0); err != nil {
		cleanup()
		return nil, err
	}
	if err := shard.WriteFile(s.store.shardMapPath(name), src.Map()); err != nil {
		cleanup()
		return nil, fmt.Errorf("serve: writing shard map for %q: %w", name, err)
	}
	if err := s.store.putLocked(name, m); err != nil {
		cleanup()
		return nil, err
	}
	s.invalidateRules(name)
	return m, nil
}

// AppendRows ingests rows into the named table via core.Model.Append: the
// replacement model is built off to the side (bin boundaries, embeddings
// and caches reused incrementally; full re-preprocess only on drift) and
// swapped in under the store's per-name lock with a generation bump, so
// selections in flight finish against the model they started with and
// concurrent appends compose instead of losing rows. Cached rules for the
// name are invalidated — they were mined over the old rows.
//
// Out-of-core tables stay out-of-core: Append materializes inline codes
// to build the successor, so the successor's codes are re-exported over
// the table's store file and dropped again before the swap — the memory
// bound the table was uploaded under survives its appends. Paged raw
// columns re-export the same way, over the table's column store (or its
// column shards). In-flight selections on the old model keep reading the
// replaced stores through their open mappings.
func (s *Service) AppendRows(name string, rows *table.Table, opt core.AppendOptions) (*core.Model, core.AppendStats, error) {
	var stats core.AppendStats
	changed := false
	m, err := s.store.Update(name, func(cur *core.Model) (*core.Model, error) {
		if src := cur.ShardSource(); src != nil && !src.Complete() {
			// A coordinator does not hold the rows; appends belong on the
			// instances that own the shards.
			return nil, fmt.Errorf("%w: table %q has remote shards; append on the shard owners", ErrBadRequest, name)
		}
		next, st, err := cur.Append(rows, opt)
		if err != nil {
			// Append fails only on request-shaped faults (schema mismatch
			// with the served table); the model itself is untouched.
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		stats = st
		changed = next != cur
		switch {
		case changed && cur.ShardSource() != nil && next.ShardSource() == nil:
			// Sharded tables stay sharded: re-export the successor's codes
			// into the same shard count and granularity and rewrite the
			// sidecar map. In-flight selections keep their open mappings of
			// the replaced shard files.
			cursrc := cur.ShardSource()
			paths, perr := s.store.ShardPaths(name, cursrc.NumShards())
			if perr != nil {
				return nil, fmt.Errorf("serve: re-exporting shards after append: %w", perr)
			}
			nsrc, err := next.UseShardedStores(paths, cursrc.BlockRows())
			if err != nil {
				return nil, fmt.Errorf("serve: re-exporting shards after append: %w", err)
			}
			if err := shard.WriteFile(s.store.shardMapPath(name), nsrc.Map()); err != nil {
				return nil, fmt.Errorf("serve: rewriting shard map after append: %w", err)
			}
			if cur.CellsPaged() && !next.CellsPaged() {
				// Paged columns stay paged, re-sharded at the successor's cuts.
				colPaths, perr := s.store.ColumnShardPaths(name, cursrc.NumShards())
				if perr != nil {
					return nil, fmt.Errorf("serve: re-exporting column shards after append: %w", perr)
				}
				blockRows := 0
				if sc := cur.ShardCells(); sc != nil && sc.NumShards() > 0 {
					blockRows = sc.Desc(0).BlockRows
				}
				if _, err := next.UseShardedColumnStores(colPaths, blockRows); err != nil {
					return nil, fmt.Errorf("serve: re-exporting column shards after append: %w", err)
				}
			}
		case changed && cur.OutOfCore() && !next.OutOfCore():
			csPath, perr := s.store.CodeStorePath(name)
			if perr != nil {
				return nil, fmt.Errorf("serve: re-exporting code store after append: %w", perr)
			}
			if _, err := next.UseCodeStoreFile(csPath, 0); err != nil {
				return nil, fmt.Errorf("serve: re-exporting code store after append: %w", err)
			}
			if cur.CellsPaged() && !next.CellsPaged() {
				colsPath, perr := s.store.ColumnStorePath(name)
				if perr != nil {
					return nil, fmt.Errorf("serve: re-exporting column store after append: %w", perr)
				}
				if _, err := next.UseColumnStoreFile(colsPath, 0); err != nil {
					return nil, fmt.Errorf("serve: re-exporting column store after append: %w", err)
				}
			}
		}
		return next, nil
	})
	if err != nil {
		return nil, stats, err
	}
	// A zero-row append returns the model unchanged; mined rules stay valid.
	if changed {
		s.invalidateRules(name)
	}
	return m, stats, nil
}

// RemoveTable drops the named table from memory and disk, closing any
// exploration sessions opened on it (their state describes removed data).
func (s *Service) RemoveTable(name string) {
	s.store.Remove(name)
	s.invalidateRules(name)
	s.sessions.DeleteTable(name)
}

// Model returns the pre-processed model for name, loading it from the disk
// cache if it was evicted from memory.
func (s *Service) Model(name string) (*core.Model, error) {
	return s.store.Get(name)
}

// Tables lists every table known to the service.
func (s *Service) Tables() []TableInfo {
	names := s.store.Names()
	infos := make([]TableInfo, 0, len(names))
	for _, name := range names {
		infos = append(infos, s.info(name))
	}
	return infos
}

// Info describes one table; unknown names return ErrNotFound.
func (s *Service) Info(name string) (TableInfo, error) {
	if !s.store.Contains(name) {
		return TableInfo{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return s.info(name), nil
}

func (s *Service) info(name string) TableInfo {
	info := TableInfo{Name: name}
	s.store.mu.Lock()
	el, ok := s.store.entries[name]
	var m *core.Model
	if ok {
		m = el.Value.(*storeEntry).model
	}
	s.store.mu.Unlock()
	if m == nil {
		return info
	}
	info.Loaded = true
	info.Rows = m.T.NumRows()
	info.Cols = m.T.NumCols()
	info.Columns = m.T.ColumnNames()
	info.OutOfCore = m.OutOfCore()
	info.PagedColumns = m.CellsPaged()
	if src := m.ShardSource(); src != nil {
		info.Shards = src.NumShards()
		for i := 0; i < src.NumShards(); i++ {
			if src.ShardAvailable(i) {
				info.LocalShards++
			}
		}
	}
	return info
}

// Select picks a k×l sub-table of the named table, optionally restricted to
// a query result (q nil selects over the whole table).
func (s *Service) Select(name string, q *query.Query, k, l int, targets []string) (*core.SubTable, error) {
	return s.SelectScaled(name, q, k, l, targets, nil)
}

// SelectScaled is Select with a per-request override of the large-table
// selection mode: scale nil uses the model's configured core.Options.Scale,
// anything else replaces it for this request only. Selections stay safe for
// any level of concurrency — the scaled path samples and clusters into
// request-local state, exactly like the exact path. With admission control
// installed (SetAdmission), the request's estimated working set is reserved
// under the memory budget for the duration of the select and the per-table
// concurrency limit applies; refusals return ErrOverloaded.
func (s *Service) SelectScaled(name string, q *query.Query, k, l int, targets []string, scale *core.ScaleOptions) (*core.SubTable, error) {
	release, ok := s.limiter.Acquire(name)
	if !ok {
		return nil, fmt.Errorf("%w: table %q is at its concurrency limit", ErrOverloaded, name)
	}
	defer release()
	m, err := s.store.Get(name)
	if err != nil {
		return nil, err
	}
	done, err := s.gov.Admit(memgov.ClassRequests, estimateSelectBytes(m, scale))
	if err != nil {
		// Keep the *memgov.ErrOverBudget in the chain: the HTTP layer reads
		// its Retry-After hint off the wrapped error.
		return nil, fmt.Errorf("%w: select on %q: %w", ErrOverloaded, name, err)
	}
	defer done()
	st, err := m.SelectWith(q, k, l, targets, scale)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return st, nil
}

// estimateSelectBytes is the transient working set a select reserves under
// memgov.ClassRequests: the tuple-vector slab it materializes (the dominant
// allocation) plus the candidate index. Scaled selects size by the sample
// budget (capped by the slab spill budget when one is set — the spill path
// keeps only one chunk resident); exact selects size by the full row count.
// The estimate is deliberately on the reserve side of truth: pooled buffers
// and k-means state ride inside it.
func estimateSelectBytes(m *core.Model, scale *core.ScaleOptions) int64 {
	sc := m.Opt.Scale
	if scale != nil {
		sc = *scale
	}
	rows := int64(m.T.NumRows())
	dim := int64(m.Emb.Dim())
	if sc.Active(int(rows)) {
		budget := int64(sc.SampleBudget)
		if budget <= 0 {
			budget = 20000 // ScaleOptions default
		}
		n := min(budget, rows)
		slab := n * dim * 4
		if sc.SlabBudgetBytes > 0 && slab > sc.SlabBudgetBytes {
			slab = sc.SlabBudgetBytes
		}
		return slab + n*8
	}
	return rows * dim * 4
}

// Rules mines association rules over the named table's binned
// representation, returning them together with the model they were mined
// against (label rule items against that model, never a freshly fetched
// one — the table may have been replaced in between). Mining depends only
// on the immutable model and the options, so results are cached per
// (table, options); a replace or remove racing a long mining run
// invalidates the in-flight result instead of letting it repopulate the
// cache.
func (s *Service) Rules(name string, opt rules.Options) ([]rules.Rule, *core.Model, error) {
	key := rulesKey(name, opt)
	s.rulesMu.Lock()
	startGen := s.rulesGen[name]
	e, ok := s.rulesCache[key]
	s.rulesMu.Unlock()
	if ok {
		return e.rs, e.m, nil
	}
	m, err := s.store.Get(name)
	if err != nil {
		return nil, nil, err
	}
	if src := m.ShardSource(); src != nil && !src.Complete() {
		// Mining walks every code block; a coordinator holding only some
		// shards cannot do that locally.
		return nil, nil, fmt.Errorf("%w: table %q has remote shards; mine rules on the shard owners", ErrBadRequest, name)
	}
	rs, err := rules.Mine(m.B, opt)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	s.rulesMu.Lock()
	if s.rulesGen[name] == startGen {
		if len(s.rulesCache) >= maxRulesCacheEntries {
			// Coarse bound: mining is tens of milliseconds, so dropping the
			// whole cache is cheaper than bookkeeping an LRU here, and it
			// releases the model references old entries pin.
			clear(s.rulesCache)
		}
		s.rulesCache[key] = rulesEntry{rs: rs, m: m}
	}
	s.rulesMu.Unlock()
	return rs, m, nil
}

// maxRulesCacheEntries bounds the rules cache; each entry pins the model it
// was mined against, so the cache must not grow with distinct option sets.
const maxRulesCacheEntries = 128

// Highlight renders st with the association-rule patterns it exemplifies
// marked in the view (the paper's Figure 1 UI), returning the rendered view
// and one rule label per sub-table row (empty when the row exemplifies no
// rule). Rules are mined (or served from cache) with the given options.
func (s *Service) Highlight(name string, opt rules.Options, st *core.SubTable) (string, []string, error) {
	rs, m, err := s.Rules(name, opt)
	if err != nil {
		return "", nil, err
	}
	hl, perRow := core.Highlight(m.B, rs, st)
	labels := make([]string, len(perRow))
	for i, ri := range perRow {
		if ri >= 0 {
			labels[i] = rs[ri].Label(m.B)
		}
	}
	return st.View.Render(hl), labels, nil
}

// rulesKey encodes every mining option unambiguously (%q quotes the target
// columns, so [\"a\",\"b\"] and [\"a b\"] cannot collide).
func rulesKey(name string, opt rules.Options) string {
	return fmt.Sprintf("%s\x00%g|%g|%d|%d|%q|%t|%d|%t",
		name, opt.MinSupport, opt.MinConfidence, opt.MinRuleSize, opt.MaxItemsetSize,
		opt.TargetCols, opt.AllSplits, opt.MaxRules, opt.IncludeMissing)
}

func (s *Service) invalidateRules(name string) {
	prefix := name + "\x00"
	s.rulesMu.Lock()
	s.rulesGen[name]++
	for k := range s.rulesCache {
		if strings.HasPrefix(k, prefix) {
			delete(s.rulesCache, k)
		}
	}
	s.rulesMu.Unlock()
}
