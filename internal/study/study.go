// Package study simulates the paper's user study (§6.2.1, Table 1 and
// Figure 5). The original study put 15 human analysts in front of sub-tables
// and counted the correct insights they derived plus their questionnaire
// ratings; humans are a gate for this reproduction, so we model the
// *mechanism* the paper reports:
//
//   - An analyst derives a planted (true) pattern when it is visible in the
//     sub-table: all of its columns are displayed and displayed rows
//     exemplify it. Rule highlighting raises the chance of noticing.
//   - An analyst derives an *incorrect* insight from a sub-table-local
//     artifact: a column that looks constant in the sub-table but is not in
//     the full table, or a pair of columns that look perfectly associated in
//     the sub-table but are not in the full table. Unrepresentative
//     sub-tables (random / naive-clustering) manufacture such artifacts;
//     informative ones do not.
//
// Questionnaire ratings are then modelled as noisy functions of the
// analyst's experience (signal found vs. misleading artifacts encountered).
package study

import (
	"math"
	"math/rand"

	"subtab/internal/binning"
	"subtab/internal/datagen"
)

// SubTableView is the displayed artifact an analyst examines: source rows
// and columns of the full table.
type SubTableView struct {
	Rows []int
	Cols []int // column indices
}

// Options configures the simulation.
type Options struct {
	// Analysts is the number of simulated users per task (paper: 15, split
	// across 3 baselines → 5 per baseline per dataset).
	Analysts int
	// Highlight models the rule-coloring UI (on for SP and FL in the paper,
	// off for BL).
	Highlight bool
	// Skill is the base probability of noticing a fully visible pattern
	// (default 0.9 with highlighting).
	Skill float64
	Seed  int64
}

func (o Options) withDefaults() Options {
	if o.Analysts <= 0 {
		o.Analysts = 5
	}
	if o.Skill <= 0 {
		o.Skill = 0.9
	}
	return o
}

// AnalystResult is one simulated user's outcome on one task.
type AnalystResult struct {
	Correct   int
	Incorrect int
}

// Total returns all insights written down.
func (a AnalystResult) Total() int { return a.Correct + a.Incorrect }

// Result aggregates a simulation.
type Result struct {
	PerAnalyst []AnalystResult
	// Artifact counts describing the displayed sub-tables (inputs to the
	// rating model).
	VisiblePatterns int // planted rules visible across the sub-tables
	TotalPatterns   int
	Artifacts       int // misleading sub-table-local artifacts
}

// AvgCorrect returns the mean number of correct insights per analyst.
func (r *Result) AvgCorrect() float64 {
	if len(r.PerAnalyst) == 0 {
		return 0
	}
	s := 0
	for _, a := range r.PerAnalyst {
		s += a.Correct
	}
	return float64(s) / float64(len(r.PerAnalyst))
}

// AvgTotal returns the mean number of insights (correct + incorrect).
func (r *Result) AvgTotal() float64 {
	if len(r.PerAnalyst) == 0 {
		return 0
	}
	s := 0
	for _, a := range r.PerAnalyst {
		s += a.Total()
	}
	return float64(s) / float64(len(r.PerAnalyst))
}

// PctCorrect returns the percentage of derived insights that are correct.
func (r *Result) PctCorrect() float64 {
	c, tot := 0, 0
	for _, a := range r.PerAnalyst {
		c += a.Correct
		tot += a.Total()
	}
	if tot == 0 {
		return 0
	}
	return 100 * float64(c) / float64(tot)
}

// PctNoInsights returns the percentage of analysts deriving no correct
// insight at all (Table 1's "% of users with no insights").
func (r *Result) PctNoInsights() float64 {
	if len(r.PerAnalyst) == 0 {
		return 0
	}
	none := 0
	for _, a := range r.PerAnalyst {
		if a.Correct == 0 {
			none++
		}
	}
	return 100 * float64(none) / float64(len(r.PerAnalyst))
}

// Simulate runs the analyst model over the displayed sub-tables (typically
// one per exploration step of a task).
func Simulate(ds *datagen.Dataset, b *binning.Binned, views []SubTableView, opt Options) *Result {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	res := &Result{}

	// Visibility of each planted rule across the displayed sub-tables:
	// the best (max exemplar count) view that shows all its columns.
	vis := make([]int, len(ds.Planted))
	for pi, pr := range ds.Planted {
		res.TotalPatterns++
		colIdx := make([]int, 0, len(pr.Cols))
		for _, c := range pr.Cols {
			ci := ds.T.ColumnIndex(c)
			if ci >= 0 {
				colIdx = append(colIdx, ci)
			}
		}
		for _, v := range views {
			shown := true
			inView := make(map[int]bool, len(v.Cols))
			for _, c := range v.Cols {
				inView[c] = true
			}
			for _, ci := range colIdx {
				if !inView[ci] {
					shown = false
					break
				}
			}
			if !shown {
				continue
			}
			ex := 0
			for _, r := range v.Rows {
				if pr.Holds(ds.T, r) {
					ex++
				}
			}
			if ex > vis[pi] {
				vis[pi] = ex
			}
		}
		if vis[pi] > 0 {
			res.VisiblePatterns++
		}
	}

	// Misleading artifacts across the views.
	artifacts := 0
	for _, v := range views {
		artifacts += countArtifacts(b, v)
	}
	res.Artifacts = artifacts

	// Analysts.
	noticeBoost := 1.0
	if !opt.Highlight {
		noticeBoost = 0.75
	}
	for a := 0; a < opt.Analysts; a++ {
		var ar AnalystResult
		for pi := range ds.Planted {
			var p float64
			switch {
			case vis[pi] >= 2:
				p = opt.Skill * noticeBoost
			case vis[pi] == 1:
				p = 0.45 * opt.Skill * noticeBoost
			default:
				p = 0.02 // prior knowledge / lucky guess
			}
			if rng.Float64() < p {
				ar.Correct++
			}
		}
		// Each artifact misleads an analyst with some probability; capped so
		// one user does not produce dozens of wrong notes.
		wrongDraws := artifacts
		if wrongDraws > 8 {
			wrongDraws = 8
		}
		for w := 0; w < wrongDraws; w++ {
			if rng.Float64() < 0.45 {
				ar.Incorrect++
			}
		}
		res.PerAnalyst = append(res.PerAnalyst, ar)
	}
	return res
}

// countArtifacts counts misleading sub-table-local patterns: columns that
// look constant but are not, and column pairs that look perfectly
// associated but are not (the "random, false correlation between columns"
// the paper observed in RAN/NC sub-tables).
func countArtifacts(b *binning.Binned, v SubTableView) int {
	if len(v.Rows) < 2 {
		return 0
	}
	n := b.NumRows()
	artifacts := 0

	// Pseudo-constant columns: every displayed row in one bin, but that bin
	// holds under 60% of the full table.
	for _, c := range v.Cols {
		first := b.Code(c, v.Rows[0])
		constant := true
		for _, r := range v.Rows[1:] {
			if b.Code(c, r) != first {
				constant = false
				break
			}
		}
		if !constant {
			continue
		}
		cnt := 0
		for r := 0; r < n; r++ {
			if b.Code(c, r) == first {
				cnt++
			}
		}
		if float64(cnt)/float64(n) < 0.6 {
			artifacts++
		}
	}

	// Falsely perfect pairwise associations: displayed rows realize a
	// one-to-one bin mapping between two columns that has confidence < 0.5
	// in the full table.
	for i := 0; i < len(v.Cols); i++ {
		for j := i + 1; j < len(v.Cols); j++ {
			ci, cj := v.Cols[i], v.Cols[j]
			mapping := make(map[uint16]uint16)
			perfect := true
			for _, r := range v.Rows {
				bi, bj := b.Code(ci, r), b.Code(cj, r)
				if prev, ok := mapping[bi]; ok && prev != bj {
					perfect = false
					break
				}
				mapping[bi] = bj
			}
			if !perfect || len(mapping) < 2 {
				continue
			}
			// Check the mapping's confidence in the full table.
			match, total := 0, 0
			for r := 0; r < n; r++ {
				if bj, ok := mapping[b.Code(ci, r)]; ok {
					total++
					if b.Code(cj, r) == bj {
						match++
					}
				}
			}
			if total > 0 && float64(match)/float64(total) < 0.5 {
				artifacts++
			}
		}
	}
	return artifacts
}

// Ratings models the questionnaire of Figure 5 (Q1 satisfaction vs default
// display, Q2 would use again, Q3 columns relevant, Q4 rows representative),
// each on a 1–5 scale, as noisy functions of what the analysts experienced.
func Ratings(res *Result, combinedScore float64, rng *rand.Rand) [4]float64 {
	signal := 0.0
	if res.TotalPatterns > 0 {
		signal = float64(res.VisiblePatterns) / float64(res.TotalPatterns)
	}
	frustration := math.Min(1, float64(res.Artifacts)/6)
	base := func(x float64) float64 {
		v := 1 + 4*x + rng.NormFloat64()*0.25
		return math.Max(1, math.Min(5, v))
	}
	// Ratings track the analyst's experience: whether the views surfaced
	// true patterns (signal) and whether they misled (frustration); the
	// intrinsic combined score contributes secondarily.
	q1 := base(0.75*signal + 0.25*combinedScore - 0.6*frustration)
	q2 := base(0.8*signal + 0.2*combinedScore - 0.7*frustration)
	q3 := base(0.6*signal + 0.4*combinedScore - 0.4*frustration)
	q4 := base(0.7*signal + 0.3*combinedScore - 0.5*frustration)
	return [4]float64{q1, q2, q3, q4}
}
