package study

import (
	"math/rand"
	"testing"

	"subtab/internal/binning"
	"subtab/internal/datagen"
)

func fixture(t *testing.T) (*datagen.Dataset, *binning.Binned) {
	t.Helper()
	ds := datagen.Flights(3000, 1)
	b, err := binning.Bin(ds.T, binning.Options{MaxBins: 5, Strategy: binning.Quantile, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ds, b
}

// goodView builds a sub-table that deliberately exposes the planted rules:
// all pattern columns plus exemplar rows for each pattern.
func goodView(ds *datagen.Dataset) SubTableView {
	colSet := map[int]bool{}
	var rows []int
	seen := map[int]bool{}
	for _, pr := range ds.Planted {
		for _, c := range pr.Cols {
			colSet[ds.T.ColumnIndex(c)] = true
		}
		found := 0
		for r := 0; r < ds.T.NumRows() && found < 2; r++ {
			if pr.Holds(ds.T, r) && !seen[r] {
				rows = append(rows, r)
				seen[r] = true
				found++
			}
		}
	}
	var cols []int
	for c := range colSet {
		cols = append(cols, c)
	}
	return SubTableView{Rows: rows, Cols: cols}
}

// badView builds a deliberately misleading sub-table: rows sharing one rare
// pattern so columns look constant.
func badView(ds *datagen.Dataset, b *binning.Binned) SubTableView {
	// All rows from the same cancelled cluster: DEP_TIME constant-missing,
	// CANCELLED constant 1 (rare in full table).
	var rows []int
	for r := 0; r < ds.T.NumRows() && len(rows) < 6; r++ {
		if ds.T.Column("CANCELLED").Nums[r] == 1 {
			rows = append(rows, r)
		}
	}
	cols := []int{
		ds.T.ColumnIndex("CANCELLED"),
		ds.T.ColumnIndex("DEPARTURE_TIME"),
		ds.T.ColumnIndex("MONTH"),
		ds.T.ColumnIndex("AIRLINE"),
	}
	return SubTableView{Rows: rows, Cols: cols}
}

func TestSimulateGoodViewFindsInsights(t *testing.T) {
	ds, b := fixture(t)
	res := Simulate(ds, b, []SubTableView{goodView(ds)}, Options{Analysts: 20, Highlight: true, Seed: 2})
	if res.VisiblePatterns < len(ds.Planted)-1 {
		t.Fatalf("visible = %d of %d", res.VisiblePatterns, res.TotalPatterns)
	}
	if res.AvgCorrect() < 2 {
		t.Fatalf("avg correct = %v, want >= 2 on a revealing view", res.AvgCorrect())
	}
	if res.PctNoInsights() > 10 {
		t.Fatalf("pct no insights = %v", res.PctNoInsights())
	}
}

func TestSimulateBadViewMisleads(t *testing.T) {
	ds, b := fixture(t)
	good := Simulate(ds, b, []SubTableView{goodView(ds)}, Options{Analysts: 20, Highlight: true, Seed: 3})
	bad := Simulate(ds, b, []SubTableView{badView(ds, b)}, Options{Analysts: 20, Highlight: true, Seed: 3})
	if bad.AvgCorrect() >= good.AvgCorrect() {
		t.Fatalf("bad view correct (%v) should trail good view (%v)", bad.AvgCorrect(), good.AvgCorrect())
	}
	if bad.Artifacts == 0 {
		t.Fatal("bad view should contain misleading artifacts")
	}
	if bad.PctCorrect() >= good.PctCorrect() {
		t.Fatalf("bad view precision (%v) should trail good view (%v)", bad.PctCorrect(), good.PctCorrect())
	}
}

func TestHighlightHelps(t *testing.T) {
	ds, b := fixture(t)
	views := []SubTableView{goodView(ds)}
	withHL := Simulate(ds, b, views, Options{Analysts: 200, Highlight: true, Seed: 4})
	without := Simulate(ds, b, views, Options{Analysts: 200, Highlight: false, Seed: 4})
	if withHL.AvgCorrect() <= without.AvgCorrect() {
		t.Fatalf("highlighting should help: %v <= %v", withHL.AvgCorrect(), without.AvgCorrect())
	}
}

func TestSimulateDeterministic(t *testing.T) {
	ds, b := fixture(t)
	views := []SubTableView{goodView(ds)}
	a := Simulate(ds, b, views, Options{Analysts: 10, Seed: 5})
	c := Simulate(ds, b, views, Options{Analysts: 10, Seed: 5})
	for i := range a.PerAnalyst {
		if a.PerAnalyst[i] != c.PerAnalyst[i] {
			t.Fatal("same seed must reproduce")
		}
	}
}

func TestEmptyViews(t *testing.T) {
	ds, b := fixture(t)
	res := Simulate(ds, b, nil, Options{Analysts: 5, Seed: 6})
	if res.VisiblePatterns != 0 {
		t.Fatalf("visible = %d", res.VisiblePatterns)
	}
	if res.AvgCorrect() > 0.5 {
		t.Fatalf("avg correct with no views = %v", res.AvgCorrect())
	}
}

func TestResultAggregates(t *testing.T) {
	r := &Result{PerAnalyst: []AnalystResult{{Correct: 2, Incorrect: 1}, {Correct: 0, Incorrect: 2}}}
	if got := r.AvgCorrect(); got != 1 {
		t.Fatalf("AvgCorrect = %v", got)
	}
	if got := r.AvgTotal(); got != 2.5 {
		t.Fatalf("AvgTotal = %v", got)
	}
	if got := r.PctNoInsights(); got != 50 {
		t.Fatalf("PctNoInsights = %v", got)
	}
	if got := r.PctCorrect(); got != 40 {
		t.Fatalf("PctCorrect = %v", got)
	}
	empty := &Result{}
	if empty.AvgCorrect() != 0 || empty.AvgTotal() != 0 || empty.PctNoInsights() != 0 || empty.PctCorrect() != 0 {
		t.Fatal("empty result aggregates should be 0")
	}
}

func TestCountArtifactsCleanView(t *testing.T) {
	ds, b := fixture(t)
	// A genuinely representative mini-view: diverse rows.
	view := SubTableView{Rows: []int{0, 1, 2, 3, 4, 5, 6, 7}, Cols: []int{0, 1, 2}}
	good := countArtifacts(b, view)
	bad := countArtifacts(b, badView(ds, b))
	if good > bad {
		t.Fatalf("diverse view artifacts (%d) exceed misleading view (%d)", good, bad)
	}
}

func TestCountArtifactsTinyView(t *testing.T) {
	_, b := fixture(t)
	if got := countArtifacts(b, SubTableView{Rows: []int{0}, Cols: []int{0}}); got != 0 {
		t.Fatalf("single-row artifacts = %d", got)
	}
}

func TestRatingsOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	good := &Result{VisiblePatterns: 5, TotalPatterns: 5, Artifacts: 0}
	bad := &Result{VisiblePatterns: 0, TotalPatterns: 5, Artifacts: 8}
	rGood := Ratings(good, 0.7, rng)
	rBad := Ratings(bad, 0.2, rng)
	for q := 0; q < 4; q++ {
		if rGood[q] < 1 || rGood[q] > 5 || rBad[q] < 1 || rBad[q] > 5 {
			t.Fatalf("ratings out of scale: %v %v", rGood, rBad)
		}
		if rGood[q] <= rBad[q] {
			t.Fatalf("Q%d: good %v should beat bad %v", q+1, rGood[q], rBad[q])
		}
	}
	if rGood[0] < 4 {
		t.Fatalf("good-experience Q1 = %v, want > 4 (paper: SubTab above 4)", rGood[0])
	}
}
