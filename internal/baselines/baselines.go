// Package baselines implements the six comparison algorithms of the paper's
// evaluation (§6.1):
//
//   - Random (RAN): repeated uniform draws within a budget, keeping the
//     sub-table with the best combined score.
//   - Naive clustering (NC): k-means directly over one-hot encoded rows and
//     over raw column value sequences, bypassing the embedding.
//   - Greedy (Algorithm 1): exhaustive column enumeration with (1-1/e)
//     greedy row selection by cell coverage.
//   - Semi-Greedy: Algorithm 1 traversing column combinations in random
//     order under a time budget.
//   - MAB: multi-armed bandit over row and column arms with UCB exploration.
//   - EmbDI: a graph-walk embedding in the style of Cappuzzo et al. (the
//     paper's reference [7]) followed by SubTab-style centroid selection.
package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"subtab/internal/binning"
	"subtab/internal/bitset"
	"subtab/internal/cluster"
	"subtab/internal/f32"
	"subtab/internal/metrics"
	"subtab/internal/word2vec"
)

// Result is a baseline's selected sub-table with its score and cost.
type Result struct {
	ST         metrics.SubTable
	Score      float64 // combined score under the caller's evaluator
	Elapsed    time.Duration
	Iterations int
}

// targetIndices resolves target column names against the evaluator's table.
func targetIndices(b *binning.Binned, targets []string) ([]int, error) {
	out := make([]int, 0, len(targets))
	for _, name := range targets {
		ci := b.T.ColumnIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("baselines: unknown target column %q", name)
		}
		out = append(out, ci)
	}
	return out, nil
}

// RandomOptions configures the RAN baseline.
type RandomOptions struct {
	K, L    int
	Targets []string
	// TimeBudget bounds wall-clock time (paper: one minute). Zero means
	// iterations only.
	TimeBudget time.Duration
	// MaxIters bounds the number of draws (default 1000 when no budget).
	MaxIters int
	// RowPool restricts row candidates (e.g. to a query result); nil means
	// all rows.
	RowPool []int
	// ColPool restricts column candidates; nil means all columns.
	ColPool []int
	Seed    int64
}

// Random implements the RAN baseline: repeatedly draw k rows and l columns
// uniformly and keep the draw with the highest combined score.
func Random(e *metrics.Evaluator, opt RandomOptions) (*Result, error) {
	start := time.Now()
	tIdx, err := targetIndices(e.B, opt.Targets)
	if err != nil {
		return nil, err
	}
	n, m := e.B.NumRows(), e.B.NumCols()
	rowPool := opt.RowPool
	if rowPool == nil {
		rowPool = make([]int, n)
		for i := range rowPool {
			rowPool[i] = i
		}
	}
	colPool := opt.ColPool
	if colPool == nil {
		colPool = make([]int, m)
		for i := range colPool {
			colPool[i] = i
		}
	}
	if opt.K <= 0 || opt.L <= 0 || len(rowPool) == 0 || len(tIdx) > opt.L {
		return nil, fmt.Errorf("baselines: bad dimensions k=%d l=%d (pool=%d, m=%d, targets=%d)", opt.K, opt.L, len(rowPool), m, len(tIdx))
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 1000
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	best := &Result{Score: -1}
	iters := 0
	for {
		if opt.TimeBudget > 0 && time.Since(start) > opt.TimeBudget {
			break
		}
		if iters >= opt.MaxIters {
			break
		}
		iters++
		rows := sampleDistinct(rng, len(rowPool), opt.K)
		for i, ri := range rows {
			rows[i] = rowPool[ri]
		}
		sort.Ints(rows)
		st := metrics.SubTable{
			Rows: rows,
			Cols: sampleColsFromPool(rng, colPool, opt.L, tIdx),
		}
		if s := e.Combined(st); s > best.Score {
			best.Score = s
			best.ST = st
		}
	}
	best.Elapsed = time.Since(start)
	best.Iterations = iters
	return best, nil
}

// sampleColsFromPool draws l distinct columns from the pool, always
// including the targets.
func sampleColsFromPool(rng *rand.Rand, pool []int, l int, targets []int) []int {
	inTarget := make(map[int]bool, len(targets))
	for _, c := range targets {
		inTarget[c] = true
	}
	cand := make([]int, 0, len(pool))
	for _, c := range pool {
		if !inTarget[c] {
			cand = append(cand, c)
		}
	}
	rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	out := append([]int(nil), targets...)
	for _, c := range cand {
		if len(out) >= l {
			break
		}
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// sampleDistinct draws k distinct indices from [0, n).
func sampleDistinct(rng *rand.Rand, n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := rng.Perm(n)
	out := append([]int(nil), perm[:k]...)
	sort.Ints(out)
	return out
}

// sampleCols draws l distinct columns always including the targets.
func sampleCols(rng *rand.Rand, m, l int, targets []int) []int {
	inTarget := make(map[int]bool, len(targets))
	for _, c := range targets {
		inTarget[c] = true
	}
	pool := make([]int, 0, m)
	for c := 0; c < m; c++ {
		if !inTarget[c] {
			pool = append(pool, c)
		}
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	out := append([]int(nil), targets...)
	for _, c := range pool {
		if len(out) >= l {
			break
		}
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// NCOptions configures the naive-clustering baseline.
type NCOptions struct {
	K, L    int
	Targets []string
	// RowPool restricts row candidates (nil = all rows); ColPool restricts
	// column candidates (nil = all columns).
	RowPool []int
	ColPool []int
	Seed    int64
}

// NaiveClustering implements the NC baseline: rows are one-hot encoded over
// all (column, bin) items and k-means clustered; columns are represented by
// their normalized bin-code sequences and clustered analogously. No
// embedding is involved — this is the paper's "clustering directly on T".
func NaiveClustering(e *metrics.Evaluator, opt NCOptions) (*Result, error) {
	start := time.Now()
	b := e.B
	tIdx, err := targetIndices(b, opt.Targets)
	if err != nil {
		return nil, err
	}
	n, m := b.NumRows(), b.NumCols()
	rowPool := opt.RowPool
	if rowPool == nil {
		rowPool = make([]int, n)
		for i := range rowPool {
			rowPool[i] = i
		}
	}
	colPool := opt.ColPool
	if colPool == nil {
		colPool = make([]int, m)
		for i := range colPool {
			colPool[i] = i
		}
	}
	if opt.K <= 0 || opt.L <= 0 || len(tIdx) > opt.L || len(rowPool) == 0 {
		return nil, fmt.Errorf("baselines: bad dimensions k=%d l=%d", opt.K, opt.L)
	}

	// Row one-hot vectors over the global item space, restricted to the
	// pool's rows and the pool's columns.
	dim := b.NumItems()
	rowVecs := make([][]float32, len(rowPool))
	for i, r := range rowPool {
		v := make([]float32, dim)
		for _, c := range colPool {
			v[b.Item(c, r)] = 1
		}
		rowVecs[i] = v
	}
	rowMat := f32.FromRows(rowVecs)
	rowRes := cluster.KMeansMatrix(rowMat, opt.K, cluster.Options{Seed: opt.Seed})
	rows := make([]int, 0, opt.K)
	for _, i := range rowRes.RepresentativesMatrix(rowMat) {
		rows = append(rows, rowPool[i])
	}
	sort.Ints(rows)

	// Column vectors: the column's bin codes normalized by its bin count —
	// the "analogous" column treatment at the same resolution as the one-hot
	// rows (see DESIGN.md).
	inTarget := make(map[int]bool, len(tIdx))
	for _, c := range tIdx {
		inTarget[c] = true
	}
	var candCols []int
	for _, c := range colPool {
		if !inTarget[c] {
			candCols = append(candCols, c)
		}
	}
	cols := append([]int(nil), tIdx...)
	if need := opt.L - len(tIdx); need > 0 && len(candCols) > 0 {
		colVecs := make([][]float32, len(candCols))
		for i, c := range candCols {
			v := make([]float32, len(rowPool))
			nb := float32(b.Cols[c].NumBins())
			for ri, r := range rowPool {
				v[ri] = float32(b.Code(c, r)) / nb
			}
			colVecs[i] = v
		}
		colMat := f32.FromRows(colVecs)
		colRes := cluster.KMeansMatrix(colMat, need, cluster.Options{Seed: opt.Seed + 1})
		for _, i := range colRes.RepresentativesMatrix(colMat) {
			cols = append(cols, candCols[i])
		}
	}
	sort.Ints(cols)
	st := metrics.SubTable{Rows: rows, Cols: cols}
	return &Result{ST: st, Score: e.Combined(st), Elapsed: time.Since(start), Iterations: 1}, nil
}

// GreedyOptions configures Algorithm 1 and its semi-greedy variant.
type GreedyOptions struct {
	K, L    int
	Targets []string
	// RandomOrder traverses column combinations in random order (the
	// semi-greedy variant of §6.1); otherwise lexicographic.
	RandomOrder bool
	// TimeBudget stops the traversal early (0 = exhaust all combinations;
	// only meaningful with RandomOrder per §4.2's caveat on guarantees).
	TimeBudget time.Duration
	// MaxCombos caps the number of column combinations examined (0 = all).
	MaxCombos int
	Seed      int64
}

// Greedy implements Algorithm 1: for every size-l column combination
// (including the targets), greedily select k rows maximizing cell coverage;
// across combinations keep the sub-table with the best combined score.
func Greedy(e *metrics.Evaluator, opt GreedyOptions) (*Result, error) {
	start := time.Now()
	b := e.B
	tIdx, err := targetIndices(b, opt.Targets)
	if err != nil {
		return nil, err
	}
	m := b.NumCols()
	if opt.K <= 0 || opt.L <= 0 || opt.L > m || len(tIdx) > opt.L {
		return nil, fmt.Errorf("baselines: bad dimensions k=%d l=%d", opt.K, opt.L)
	}
	inTarget := make(map[int]bool, len(tIdx))
	for _, c := range tIdx {
		inTarget[c] = true
	}
	var pool []int
	for c := 0; c < m; c++ {
		if !inTarget[c] {
			pool = append(pool, c)
		}
	}
	need := opt.L - len(tIdx)

	combos := enumerateCombos(len(pool), need)
	if opt.RandomOrder {
		rng := rand.New(rand.NewSource(opt.Seed))
		rng.Shuffle(len(combos), func(i, j int) { combos[i], combos[j] = combos[j], combos[i] })
	}
	if opt.MaxCombos > 0 && len(combos) > opt.MaxCombos {
		combos = combos[:opt.MaxCombos]
	}

	best := &Result{Score: -1}
	examined := 0
	for _, combo := range combos {
		if opt.TimeBudget > 0 && time.Since(start) > opt.TimeBudget && examined > 0 {
			break
		}
		examined++
		cols := append([]int(nil), tIdx...)
		for _, pi := range combo {
			cols = append(cols, pool[pi])
		}
		sort.Ints(cols)
		rows := greedyRowSelection(e, cols, opt.K)
		st := metrics.SubTable{Rows: rows, Cols: cols}
		if s := e.Combined(st); s > best.Score {
			best.Score = s
			best.ST = st
		}
	}
	best.Elapsed = time.Since(start)
	best.Iterations = examined
	return best, nil
}

// greedyRowSelection is GreedyRowSelection of Algorithm 1: k rounds, each
// adding the row with the largest marginal cell-coverage gain over the fixed
// column set. Coverage is maintained incrementally: per-column bitsets of
// described rows plus the set of already-covered rules.
func greedyRowSelection(e *metrics.Evaluator, cols []int, k int) []int {
	b := e.B
	n := b.NumRows()
	colSet := make(map[int]bool, len(cols))
	for _, c := range cols {
		colSet[c] = true
	}
	// Relevant rules (columns within the selection), indexed by row.
	rowRules := make([][]int32, n)
	for ri := range e.Rules {
		r := &e.Rules[ri]
		ok := true
		for _, c := range r.Cols {
			if !colSet[c] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		r.Tuples.ForEach(func(row int) bool {
			rowRules[row] = append(rowRules[row], int32(ri))
			return true
		})
	}

	covered := make(map[int32]bool)
	acc := make(map[int]*bitset.Set, len(cols))
	for _, c := range cols {
		acc[c] = bitset.New(n)
	}
	scratch := make(map[int]*bitset.Set, len(cols))
	for _, c := range cols {
		scratch[c] = bitset.New(n)
	}

	var rows []int
	chosen := make([]bool, n)
	if k > n {
		k = n
	}
	for len(rows) < k {
		bestRow, bestGain := -1, -1
		for t := 0; t < n; t++ {
			if chosen[t] {
				continue
			}
			gain := 0
			if len(rowRules[t]) > 0 {
				touched := make(map[int]bool)
				for _, ri := range rowRules[t] {
					if covered[ri] {
						continue
					}
					r := &e.Rules[ri]
					for _, c := range r.Cols {
						if !touched[c] {
							touched[c] = true
							scratch[c].Clear()
						}
						scratch[c].Or(r.Tuples)
					}
				}
				for c := range touched {
					scratch[c].AndNot(acc[c])
					gain += scratch[c].Count()
				}
			}
			if gain > bestGain {
				bestGain = gain
				bestRow = t
			}
		}
		if bestRow < 0 {
			break
		}
		chosen[bestRow] = true
		rows = append(rows, bestRow)
		for _, ri := range rowRules[bestRow] {
			if covered[ri] {
				continue
			}
			covered[ri] = true
			r := &e.Rules[ri]
			for _, c := range r.Cols {
				acc[c].Or(r.Tuples)
			}
		}
	}
	sort.Ints(rows)
	return rows
}

// enumerateCombos lists all k-subsets of [0, n) as index slices.
func enumerateCombos(n, k int) [][]int {
	if k == 0 {
		return [][]int{{}}
	}
	if k > n {
		return nil
	}
	var out [][]int
	combo := make([]int, k)
	var rec func(start, pos int)
	rec = func(start, pos int) {
		if pos == k {
			out = append(out, append([]int(nil), combo...))
			return
		}
		for i := start; i <= n-(k-pos); i++ {
			combo[pos] = i
			rec(i+1, pos+1)
		}
	}
	rec(0, 0)
	return out
}

// MABOptions configures the multi-armed-bandit baseline.
type MABOptions struct {
	K, L    int
	Targets []string
	// Iterations of select-evaluate-update (default 500).
	Iterations int
	// TimeBudget stops early when positive.
	TimeBudget time.Duration
	// Exploration is the UCB exploration constant (default sqrt(2)).
	Exploration float64
	Seed        int64
}

// MAB implements the multi-armed-bandit baseline of §6.1: every row and
// every column is an arm; each iteration picks the k rows and l columns with
// the highest upper confidence bounds, evaluates the resulting sub-table,
// and credits the reward to all participating arms. As in the paper, "the
// reward (i.e. the cell coverage score) is given to all the columns and rows
// that participated" — the bandit optimizes coverage, which is why its
// returned sub-tables score poorly on the diversity-balanced combined
// metric. The best sub-table seen (by reward) is returned with its combined
// score.
func MAB(e *metrics.Evaluator, opt MABOptions) (*Result, error) {
	start := time.Now()
	b := e.B
	tIdx, err := targetIndices(b, opt.Targets)
	if err != nil {
		return nil, err
	}
	n, m := b.NumRows(), b.NumCols()
	if opt.K <= 0 || opt.L <= 0 || opt.K > n || len(tIdx) > opt.L {
		return nil, fmt.Errorf("baselines: bad dimensions k=%d l=%d", opt.K, opt.L)
	}
	if opt.Iterations <= 0 {
		opt.Iterations = 500
	}
	if opt.Exploration <= 0 {
		opt.Exploration = math.Sqrt2
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	inTarget := make(map[int]bool, len(tIdx))
	for _, c := range tIdx {
		inTarget[c] = true
	}

	rowSum := make([]float64, n)
	rowCnt := make([]float64, n)
	colSum := make([]float64, m)
	colCnt := make([]float64, m)

	ucb := func(sum, cnt float64, t int) float64 {
		if cnt == 0 {
			return math.Inf(1)
		}
		return sum/cnt + opt.Exploration*math.Sqrt(math.Log(float64(t+1))/cnt)
	}

	best := &Result{Score: -1}
	bestReward := -1.0
	iters := 0
	for it := 0; it < opt.Iterations; it++ {
		if opt.TimeBudget > 0 && time.Since(start) > opt.TimeBudget && iters > 0 {
			break
		}
		iters++
		rows := topArms(n, opt.K, rng, func(i int) float64 { return ucb(rowSum[i], rowCnt[i], it) }, nil)
		cols := topArms(m, opt.L-len(tIdx), rng, func(i int) float64 { return ucb(colSum[i], colCnt[i], it) }, inTarget)
		cols = append(cols, tIdx...)
		sort.Ints(cols)
		st := metrics.SubTable{Rows: rows, Cols: cols}
		reward := e.CellCoverage(st)
		for _, r := range rows {
			rowSum[r] += reward
			rowCnt[r]++
		}
		for _, c := range cols {
			colSum[c] += reward
			colCnt[c]++
		}
		if reward > bestReward {
			bestReward = reward
			best.ST = st
		}
	}
	best.Score = e.Combined(best.ST)
	best.Elapsed = time.Since(start)
	best.Iterations = iters
	return best, nil
}

// topArms returns the k arms with the highest scores, breaking ties (and
// infinities) randomly; excluded arms are skipped.
func topArms(n, k int, rng *rand.Rand, score func(int) float64, exclude map[int]bool) []int {
	type arm struct {
		i   int
		s   float64
		tie float64
	}
	arms := make([]arm, 0, n)
	for i := 0; i < n; i++ {
		if exclude != nil && exclude[i] {
			continue
		}
		arms = append(arms, arm{i, score(i), rng.Float64()})
	}
	sort.Slice(arms, func(a, b int) bool {
		if arms[a].s != arms[b].s {
			return arms[a].s > arms[b].s
		}
		return arms[a].tie < arms[b].tie
	})
	if k > len(arms) {
		k = len(arms)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = arms[i].i
	}
	sort.Ints(out)
	return out
}

// EmbDIOptions configures the graph-walk embedding baseline.
type EmbDIOptions struct {
	K, L    int
	Targets []string
	// WalksPerNode and WalkLength shape the random-walk corpus (defaults 10
	// and 20); the larger corpus is what makes EmbDI's pre-processing ~26x
	// slower than SubTab's in the paper.
	WalksPerNode int
	WalkLength   int
	Embedding    word2vec.Options
	Seed         int64
}

// EmbDI implements the EmbDI-style baseline (reference [7]): the table is
// turned into a tripartite graph of row nodes, column nodes and (column,
// bin) value nodes; random walks over the graph form sentences; Word2Vec
// embeds the nodes; rows and columns are then selected by the same k-means
// centroid procedure SubTab uses, but over the node embeddings.
func EmbDI(e *metrics.Evaluator, opt EmbDIOptions) (*Result, error) {
	start := time.Now()
	b := e.B
	tIdx, err := targetIndices(b, opt.Targets)
	if err != nil {
		return nil, err
	}
	n, m := b.NumRows(), b.NumCols()
	if opt.K <= 0 || opt.L <= 0 || len(tIdx) > opt.L {
		return nil, fmt.Errorf("baselines: bad dimensions k=%d l=%d", opt.K, opt.L)
	}
	if opt.WalksPerNode <= 0 {
		opt.WalksPerNode = 10
	}
	if opt.WalkLength <= 0 {
		opt.WalkLength = 20
	}

	// Node id space: rows, then columns, then items.
	rowNode := func(r int) int32 { return int32(r) }
	colNode := func(c int) int32 { return int32(n + c) }
	itemNode := func(item int32) int32 { return int32(n+m) + item }

	// Adjacency: item -> rows is derivable from codes; build item->rows.
	itemRows := make(map[int32][]int32)
	for c := 0; c < m; c++ {
		for r := 0; r < n; r++ {
			it := b.Item(c, r)
			itemRows[it] = append(itemRows[it], int32(r))
		}
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	var sents [][]int32
	walk := func(startRow int) []int32 {
		sent := make([]int32, 0, opt.WalkLength)
		r := startRow
		for len(sent) < opt.WalkLength {
			sent = append(sent, rowNode(r))
			c := rng.Intn(m)
			it := b.Item(c, r)
			sent = append(sent, colNode(c), itemNode(it))
			peers := itemRows[it]
			r = int(peers[rng.Intn(len(peers))])
		}
		return sent
	}
	for r := 0; r < n; r++ {
		for w := 0; w < opt.WalksPerNode; w++ {
			sents = append(sents, walk(r))
		}
	}

	emb := opt.Embedding
	if emb.Seed == 0 {
		emb.Seed = opt.Seed
	}
	model := word2vec.Train(sents, emb)

	// Row and column vectors straight from the node embeddings.
	dim := model.Dim()
	rowVecs := make([][]float32, n)
	for r := 0; r < n; r++ {
		v := model.Vector(rowNode(r))
		if v == nil {
			v = make([]float32, dim)
		}
		rowVecs[r] = v
	}
	rowMat := f32.FromRows(rowVecs)
	rowRes := cluster.KMeansMatrix(rowMat, opt.K, cluster.Options{Seed: opt.Seed})
	rows := rowRes.RepresentativesMatrix(rowMat)

	inTarget := make(map[int]bool, len(tIdx))
	for _, c := range tIdx {
		inTarget[c] = true
	}
	var candCols []int
	for c := 0; c < m; c++ {
		if !inTarget[c] {
			candCols = append(candCols, c)
		}
	}
	cols := append([]int(nil), tIdx...)
	if need := opt.L - len(tIdx); need > 0 && len(candCols) > 0 {
		colVecs := make([][]float32, len(candCols))
		for i, c := range candCols {
			v := model.Vector(colNode(c))
			if v == nil {
				v = make([]float32, dim)
			}
			colVecs[i] = v
		}
		colMat := f32.FromRows(colVecs)
		colRes := cluster.KMeansMatrix(colMat, need, cluster.Options{Seed: opt.Seed + 1})
		for _, i := range colRes.RepresentativesMatrix(colMat) {
			cols = append(cols, candCols[i])
		}
	}
	sort.Ints(cols)
	sort.Ints(rows)
	st := metrics.SubTable{Rows: rows, Cols: cols}
	return &Result{ST: st, Score: e.Combined(st), Elapsed: time.Since(start), Iterations: 1}, nil
}

// BruteForce finds the optimal sub-table by exhaustive search — usable only
// on tiny tables; it is the reference for the greedy guarantee tests.
func BruteForce(e *metrics.Evaluator, k, l int) (*Result, error) {
	start := time.Now()
	b := e.B
	n, m := b.NumRows(), b.NumCols()
	if k <= 0 || l <= 0 || k > n || l > m {
		return nil, fmt.Errorf("baselines: bad dimensions k=%d l=%d", k, l)
	}
	rowCombos := enumerateCombos(n, k)
	colCombos := enumerateCombos(m, l)
	best := &Result{Score: -1}
	for _, rows := range rowCombos {
		for _, cols := range colCombos {
			st := metrics.SubTable{Rows: rows, Cols: cols}
			if s := e.Combined(st); s > best.Score {
				best.Score = s
				best.ST = metrics.SubTable{
					Rows: append([]int(nil), rows...),
					Cols: append([]int(nil), cols...),
				}
			}
		}
	}
	best.Elapsed = time.Since(start)
	best.Iterations = len(rowCombos) * len(colCombos)
	return best, nil
}

// BruteForceMaxCoverage finds the coverage-optimal sub-table (α = 1), the
// OPT of Prop. 4.3.
func BruteForceMaxCoverage(e *metrics.Evaluator, k, l int) (*Result, error) {
	start := time.Now()
	b := e.B
	n, m := b.NumRows(), b.NumCols()
	if k <= 0 || l <= 0 || k > n || l > m {
		return nil, fmt.Errorf("baselines: bad dimensions k=%d l=%d", k, l)
	}
	best := &Result{Score: -1}
	for _, rows := range enumerateCombos(n, k) {
		for _, cols := range enumerateCombos(m, l) {
			st := metrics.SubTable{Rows: rows, Cols: cols}
			if s := e.CellCoverage(st); s > best.Score {
				best.Score = s
				best.ST = metrics.SubTable{
					Rows: append([]int(nil), rows...),
					Cols: append([]int(nil), cols...),
				}
			}
		}
	}
	best.Elapsed = time.Since(start)
	return best, nil
}
