package baselines

import (
	"math/rand"
	"testing"
	"time"

	"subtab/internal/binning"
	"subtab/internal/metrics"
	"subtab/internal/rules"
	"subtab/internal/table"
	"subtab/internal/word2vec"
)

// plantedEvaluator builds a small table with clear patterns, mines rules and
// wraps them in an evaluator.
func plantedEvaluator(t *testing.T, n int, seed int64) *metrics.Evaluator {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := make([]string, n)
	b := make([]string, n)
	c := make([]string, n)
	d := make([]string, n)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			a[i], b[i], c[i] = "a1", "b1", "c1"
		case 1:
			a[i], b[i], c[i] = "a2", "b2", "c2"
		default:
			a[i], b[i], c[i] = "a3", "b3", "c3"
		}
		d[i] = []string{"x", "y"}[rng.Intn(2)]
	}
	tab := table.New("planted")
	for _, col := range []struct {
		name string
		vals []string
	}{{"a", a}, {"b", b}, {"c", c}, {"d", d}} {
		if err := tab.AddColumn(table.NewCategorical(col.name, col.vals)); err != nil {
			t.Fatal(err)
		}
	}
	bn, err := binning.Bin(tab, binning.Options{MaxBins: 5})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rules.Mine(bn, rules.Options{MinSupport: 0.2, MinConfidence: 0.5, MinRuleSize: 2, MaxItemsetSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no rules mined on planted data")
	}
	return metrics.NewEvaluator(bn, rs, 0.5)
}

func checkResult(t *testing.T, e *metrics.Evaluator, res *Result, k, l int) {
	t.Helper()
	if len(res.ST.Rows) > k {
		t.Fatalf("rows = %d > k = %d", len(res.ST.Rows), k)
	}
	if len(res.ST.Cols) > l {
		t.Fatalf("cols = %d > l = %d", len(res.ST.Cols), l)
	}
	n, m := e.B.NumRows(), e.B.NumCols()
	seenR := map[int]bool{}
	for _, r := range res.ST.Rows {
		if r < 0 || r >= n || seenR[r] {
			t.Fatalf("bad rows %v", res.ST.Rows)
		}
		seenR[r] = true
	}
	seenC := map[int]bool{}
	for _, c := range res.ST.Cols {
		if c < 0 || c >= m || seenC[c] {
			t.Fatalf("bad cols %v", res.ST.Cols)
		}
		seenC[c] = true
	}
	if res.Score < 0 || res.Score > 1 {
		t.Fatalf("score = %v", res.Score)
	}
}

func TestRandomBaseline(t *testing.T) {
	e := plantedEvaluator(t, 60, 1)
	res, err := Random(e, RandomOptions{K: 4, L: 3, MaxIters: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, e, res, 4, 3)
	if res.Iterations != 50 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	// Best-of-50 should beat best-of-1 (weakly).
	one, err := Random(e, RandomOptions{K: 4, L: 3, MaxIters: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if one.Score > res.Score {
		t.Fatalf("more draws should not hurt: %v > %v", one.Score, res.Score)
	}
}

func TestRandomWithTargets(t *testing.T) {
	e := plantedEvaluator(t, 60, 2)
	res, err := Random(e, RandomOptions{K: 3, L: 2, Targets: []string{"c"}, MaxIters: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ci := e.B.T.ColumnIndex("c")
	found := false
	for _, c := range res.ST.Cols {
		if c == ci {
			found = true
		}
	}
	if !found {
		t.Fatalf("target column missing: %v", res.ST.Cols)
	}
}

func TestRandomErrors(t *testing.T) {
	e := plantedEvaluator(t, 30, 3)
	if _, err := Random(e, RandomOptions{K: 0, L: 3}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Random(e, RandomOptions{K: 3, L: 3, Targets: []string{"nope"}}); err == nil {
		t.Fatal("unknown target should error")
	}
	if _, err := Random(e, RandomOptions{K: 3, L: 0, Targets: []string{"a"}}); err == nil {
		t.Fatal("targets > l should error")
	}
}

func TestRandomTimeBudget(t *testing.T) {
	e := plantedEvaluator(t, 30, 4)
	start := time.Now()
	res, err := Random(e, RandomOptions{K: 3, L: 3, TimeBudget: 30 * time.Millisecond, MaxIters: 1 << 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("time budget ignored")
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations within budget")
	}
}

func TestNaiveClustering(t *testing.T) {
	e := plantedEvaluator(t, 60, 5)
	res, err := NaiveClustering(e, NCOptions{K: 3, L: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, e, res, 3, 3)
}

func TestNaiveClusteringPool(t *testing.T) {
	e := plantedEvaluator(t, 60, 5)
	pool := []int{0, 3, 6, 9, 12, 15, 18, 21}
	res, err := NaiveClustering(e, NCOptions{K: 3, L: 3, RowPool: pool, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	inPool := map[int]bool{}
	for _, r := range pool {
		inPool[r] = true
	}
	for _, r := range res.ST.Rows {
		if !inPool[r] {
			t.Fatalf("row %d outside pool", r)
		}
	}
}

func TestRandomPool(t *testing.T) {
	e := plantedEvaluator(t, 60, 5)
	pool := []int{1, 2, 3, 4, 5, 6, 7, 8}
	res, err := Random(e, RandomOptions{K: 3, L: 3, RowPool: pool, MaxIters: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	inPool := map[int]bool{}
	for _, r := range pool {
		inPool[r] = true
	}
	for _, r := range res.ST.Rows {
		if !inPool[r] {
			t.Fatalf("row %d outside pool", r)
		}
	}
}

func TestNaiveClusteringTargets(t *testing.T) {
	e := plantedEvaluator(t, 40, 6)
	res, err := NaiveClustering(e, NCOptions{K: 3, L: 2, Targets: []string{"a"}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ai := e.B.T.ColumnIndex("a")
	found := false
	for _, c := range res.ST.Cols {
		if c == ai {
			found = true
		}
	}
	if !found {
		t.Fatalf("target missing from %v", res.ST.Cols)
	}
}

func TestGreedyExhaustive(t *testing.T) {
	e := plantedEvaluator(t, 30, 7)
	res, err := Greedy(e, GreedyOptions{K: 3, L: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, e, res, 3, 2)
	// Exhaustive over C(4,2) = 6 combos.
	if res.Iterations != 6 {
		t.Fatalf("combos examined = %d, want 6", res.Iterations)
	}
}

func TestGreedyBeatsRandomOnAverage(t *testing.T) {
	e := plantedEvaluator(t, 60, 8)
	g, err := Greedy(e, GreedyOptions{K: 4, L: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Random(e, RandomOptions{K: 4, L: 3, MaxIters: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if g.Score < r.Score-0.15 {
		t.Fatalf("greedy (%v) much worse than 3-draw random (%v)", g.Score, r.Score)
	}
}

func TestSemiGreedyMaxCombos(t *testing.T) {
	e := plantedEvaluator(t, 30, 9)
	res, err := Greedy(e, GreedyOptions{K: 3, L: 2, RandomOrder: true, MaxCombos: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 2 {
		t.Fatalf("combos = %d, want 2", res.Iterations)
	}
	checkResult(t, e, res, 3, 2)
}

// TestGreedyApprox verifies the (1-1/e) guarantee of Prop. 4.3 empirically:
// greedy row selection achieves at least (1-1/e) of the optimal cell
// coverage on small random instances.
func TestGreedyApprox(t *testing.T) {
	for trial := int64(0); trial < 3; trial++ {
		e := plantedEvaluator(t, 12, 20+trial)
		k, l := 2, 2
		opt, err := BruteForceMaxCoverage(e, k, l)
		if err != nil {
			t.Fatal(err)
		}
		// Greedy with alpha=1 evaluator (pure coverage).
		e1 := metrics.NewEvaluator(e.B, e.Rules, 1.0)
		g, err := Greedy(e1, GreedyOptions{K: k, L: l, Seed: trial})
		if err != nil {
			t.Fatal(err)
		}
		gCov := e1.CellCoverage(g.ST)
		bound := (1 - 1/2.718281828) * opt.Score
		if gCov < bound-1e-9 {
			t.Fatalf("trial %d: greedy coverage %v < (1-1/e)*OPT = %v", trial, gCov, bound)
		}
	}
}

func TestMAB(t *testing.T) {
	e := plantedEvaluator(t, 40, 10)
	res, err := MAB(e, MABOptions{K: 3, L: 3, Iterations: 60, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, e, res, 3, 3)
	if res.Iterations != 60 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestMABImprovesOverIterations(t *testing.T) {
	e := plantedEvaluator(t, 40, 11)
	few, err := MAB(e, MABOptions{K: 3, L: 3, Iterations: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	many, err := MAB(e, MABOptions{K: 3, L: 3, Iterations: 120, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if many.Score < few.Score {
		t.Fatalf("more iterations should not hurt: %v < %v", many.Score, few.Score)
	}
}

func TestMABTargets(t *testing.T) {
	e := plantedEvaluator(t, 30, 12)
	res, err := MAB(e, MABOptions{K: 3, L: 2, Targets: []string{"b"}, Iterations: 20, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	bi := e.B.T.ColumnIndex("b")
	found := false
	for _, c := range res.ST.Cols {
		if c == bi {
			found = true
		}
	}
	if !found {
		t.Fatalf("target missing: %v", res.ST.Cols)
	}
}

func TestEmbDI(t *testing.T) {
	e := plantedEvaluator(t, 60, 13)
	res, err := EmbDI(e, EmbDIOptions{
		K: 3, L: 3,
		WalksPerNode: 3, WalkLength: 12,
		Embedding: word2vec.Options{Dim: 12, Epochs: 2, Window: 4, Seed: 13},
		Seed:      13,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, e, res, 3, 3)
}

func TestEmbDIBeatsNothing(t *testing.T) {
	// EmbDI should at least find distinct patterns on strongly clustered
	// data — its sub-table should score above the worst possible (0).
	e := plantedEvaluator(t, 60, 14)
	res, err := EmbDI(e, EmbDIOptions{
		K: 3, L: 3,
		WalksPerNode: 4, WalkLength: 16,
		Embedding: word2vec.Options{Dim: 12, Epochs: 3, Window: 4, Seed: 14},
		Seed:      14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= 0 {
		t.Fatalf("EmbDI score = %v", res.Score)
	}
}

func TestBruteForceOptimal(t *testing.T) {
	e := plantedEvaluator(t, 9, 15)
	res, err := BruteForce(e, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force is at least as good as any other method.
	r, err := Random(e, RandomOptions{K: 2, L: 2, MaxIters: 30, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score < r.Score-1e-12 {
		t.Fatalf("brute force (%v) worse than random (%v)", res.Score, r.Score)
	}
	g, err := Greedy(e, GreedyOptions{K: 2, L: 2, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score < g.Score-1e-12 {
		t.Fatalf("brute force (%v) worse than greedy (%v)", res.Score, g.Score)
	}
}

func TestEnumerateCombos(t *testing.T) {
	if got := len(enumerateCombos(5, 2)); got != 10 {
		t.Fatalf("C(5,2) = %d", got)
	}
	if got := len(enumerateCombos(4, 0)); got != 1 {
		t.Fatalf("C(4,0) = %d", got)
	}
	if got := enumerateCombos(2, 3); got != nil {
		t.Fatalf("C(2,3) = %v", got)
	}
	// Elements are strictly increasing.
	for _, c := range enumerateCombos(6, 3) {
		for i := 1; i < len(c); i++ {
			if c[i-1] >= c[i] {
				t.Fatalf("combo not increasing: %v", c)
			}
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := sampleDistinct(rng, 10, 4)
	if len(s) != 4 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[int]bool{}
	for _, x := range s {
		if x < 0 || x >= 10 || seen[x] {
			t.Fatalf("bad sample %v", s)
		}
		seen[x] = true
	}
	// k >= n returns everything.
	all := sampleDistinct(rng, 3, 10)
	if len(all) != 3 {
		t.Fatalf("all = %v", all)
	}
}
