// Package codestore persists per-column bin codes in a chunked on-disk
// format, so the selection pipeline can run over tables whose binned
// representation does not fit in memory. It is the disk half of the
// out-of-core selection path: the stratified min-hash sampler streams
// column blocks out of a store, and only the sampled rows' tuple-vectors
// are ever materialized.
//
// Layout (little-endian):
//
//	header:  "SUBTABCS" magic · u16 version · u32 cols · u64 rows ·
//	         u32 blockRows
//	data:    block-major: for each block b, for each column c, the codes of
//	         rows [b*blockRows, min((b+1)*blockRows, rows)) as u16s — block-
//	         major so a writer can stream row chunks without knowing the
//	         final row count up front
//	index:   one u32 CRC-32C per (block, column) block, in data order
//	footer:  u32 CRC-32C over header+index · "SUBTABCE" end magic
//
// Every offset is computable from the header alone, so Open is O(1) in the
// data size: it validates the header, the exact file length, the footer
// checksum (which covers the block index) and the end magic. A crash mid-
// write leaves a file whose length cannot match its header (the index and
// footer are written last), which Open reports as ErrTruncated; silent
// bit rot inside a block is caught by Verify or by a checked block read.
//
// Readers are safe for concurrent use: the store memory-maps the file on
// platforms that support it and falls back to pread-style ReadAt elsewhere,
// and both access paths are stateless apart from caller-owned scratch.
package codestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
)

// Version is the current store format version.
const Version uint16 = 1

// DefaultBlockRows is the default rows-per-block granularity: 64Ki rows
// keep a per-column block at 128KiB — big enough to amortize I/O, small
// enough that a full column scan needs only one block of scratch.
const DefaultBlockRows = 1 << 16

var (
	magic    = [8]byte{'S', 'U', 'B', 'T', 'A', 'B', 'C', 'S'}
	endMagic = [8]byte{'S', 'U', 'B', 'T', 'A', 'B', 'C', 'E'}
)

// Sentinel errors.
var (
	// ErrTruncated marks a store whose file length does not match its
	// header — the signature of a crashed or interrupted writer.
	ErrTruncated = errors.New("codestore: truncated store file")
	// ErrCorrupt marks structural damage other than truncation (bad magic,
	// checksum mismatch, impossible geometry).
	ErrCorrupt = errors.New("codestore: corrupt store file")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const headerSize = 8 + 2 + 4 + 8 + 4 // magic + version + cols + rows + blockRows

// Writer streams column codes into a store file. Rows are appended in
// chunks (AppendColumns) and flushed block by block; Close finalizes the
// index and footer. A writer that never reaches Close leaves a file Open
// rejects, so a crashed export cannot be mistaken for a complete store.
type Writer struct {
	f         *os.File
	cols      int
	blockRows int
	rows      uint64
	buf       [][]uint16 // per-column pending rows (< blockRows)
	bufLen    int
	crcs      []uint32
	enc       []byte // block encode scratch
	err       error
}

// Create starts a store file at path with the given column count and
// rows-per-block (<= 0 uses DefaultBlockRows). The file is truncated.
func Create(path string, cols, blockRows int) (*Writer, error) {
	if cols <= 0 {
		return nil, fmt.Errorf("codestore: create: need at least one column, got %d", cols)
	}
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, cols: cols, blockRows: blockRows, buf: make([][]uint16, cols)}
	for c := range w.buf {
		w.buf[c] = make([]uint16, 0, blockRows)
	}
	// The header is rewritten with the final row count on Close; writing a
	// placeholder now keeps the data section at a fixed offset. WriteAt does
	// not advance the write offset, so seek past the header explicitly.
	if err := w.writeHeader(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if _, err := f.Seek(headerSize, io.SeekStart); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return w, nil
}

func (w *Writer) writeHeader() error {
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, magic[:]...)
	hdr = binary.LittleEndian.AppendUint16(hdr, Version)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(w.cols))
	hdr = binary.LittleEndian.AppendUint64(hdr, w.rows)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(w.blockRows))
	_, err := w.f.WriteAt(hdr, 0)
	return err
}

// AppendColumns appends one chunk of rows: chunk[c] holds the new codes of
// column c, and every column must contribute the same number of rows.
func (w *Writer) AppendColumns(chunk [][]uint16) error {
	if w.err != nil {
		return w.err
	}
	if len(chunk) != w.cols {
		return w.fail(fmt.Errorf("codestore: chunk has %d columns, store has %d", len(chunk), w.cols))
	}
	n := len(chunk[0])
	for c := 1; c < w.cols; c++ {
		if len(chunk[c]) != n {
			return w.fail(fmt.Errorf("codestore: ragged chunk: column 0 has %d rows, column %d has %d", n, c, len(chunk[c])))
		}
	}
	off := 0
	for off < n {
		take := min(w.blockRows-w.bufLen, n-off)
		for c := range w.buf {
			w.buf[c] = append(w.buf[c], chunk[c][off:off+take]...)
		}
		w.bufLen += take
		off += take
		if w.bufLen == w.blockRows {
			if err := w.flushBlock(); err != nil {
				return err
			}
		}
	}
	w.rows += uint64(n)
	return nil
}

// flushBlock writes the buffered rows of every column as one block.
func (w *Writer) flushBlock() error {
	for c := range w.buf {
		w.enc = w.enc[:0]
		for _, v := range w.buf[c] {
			w.enc = binary.LittleEndian.AppendUint16(w.enc, v)
		}
		w.crcs = append(w.crcs, crc32.Checksum(w.enc, crcTable))
		if _, err := w.f.Write(w.enc); err != nil {
			return w.fail(err)
		}
		w.buf[c] = w.buf[c][:0]
	}
	w.bufLen = 0
	return nil
}

func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// Close flushes the final (possibly short) block, writes the block index,
// the footer checksum and the end magic, rewrites the header with the
// final row count, and syncs the file.
func (w *Writer) Close() error {
	if w.err != nil {
		w.f.Close()
		return w.err
	}
	if w.bufLen > 0 {
		if err := w.flushBlock(); err != nil {
			w.f.Close()
			return err
		}
	}
	tail := make([]byte, 0, 4*len(w.crcs)+4+8)
	for _, crc := range w.crcs {
		tail = binary.LittleEndian.AppendUint32(tail, crc)
	}
	if _, err := w.f.Write(tail); err != nil {
		w.f.Close()
		return err
	}
	if err := w.writeHeader(); err != nil {
		w.f.Close()
		return err
	}
	// The footer checksum covers header + index, so a store whose geometry
	// or index was damaged after the fact fails Open even at the right size.
	h := crc32.New(crcTable)
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, magic[:]...)
	hdr = binary.LittleEndian.AppendUint16(hdr, Version)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(w.cols))
	hdr = binary.LittleEndian.AppendUint64(hdr, w.rows)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(w.blockRows))
	h.Write(hdr)
	h.Write(tail)
	foot := binary.LittleEndian.AppendUint32(nil, h.Sum32())
	foot = append(foot, endMagic[:]...)
	if _, err := w.f.Write(foot); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Abort discards the writer and removes the partial file.
func (w *Writer) Abort() {
	path := w.f.Name()
	w.f.Close()
	os.Remove(path)
}

// WriteFile writes a complete store from in-memory column codes in one
// call (all columns must share one length). blockRows <= 0 uses
// DefaultBlockRows. The file is written to a temp name and renamed into
// place, so a crash never leaves a plausible-looking partial store at path.
func WriteFile(path string, codes [][]uint16, blockRows int) error {
	tmp := path + ".tmp"
	w, err := Create(tmp, len(codes), blockRows)
	if err != nil {
		return err
	}
	if err := w.AppendColumns(codes); err != nil {
		w.Abort()
		return err
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Store is an open, read-only code store. All methods are safe for
// concurrent use. Close releases the mapping/file handle; stores that are
// garbage-collected without Close release their resources via a runtime
// cleanup, so an evicted model cannot leak a mapping forever.
type Store struct {
	path      string
	rows      int
	cols      int
	blockRows int
	nBlocks   int
	crcs      []uint32
	checksum  uint32 // footer CRC: the store's identity for external refs
	reg       *region
	cleanup   runtime.Cleanup
}

// region owns the OS resources (mapping and/or file handle) so the
// runtime cleanup can release them without referencing the Store itself.
type region struct {
	data []byte   // non-nil when memory-mapped
	f    *os.File // non-nil when reading through the file
}

func (r *region) release() {
	if r.data != nil {
		munmap(r.data)
		r.data = nil
	}
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}

// readAt reads into p at off from the mapping or the file.
func (r *region) readAt(p []byte, off int64) error {
	if r.data != nil {
		if off < 0 || off+int64(len(p)) > int64(len(r.data)) {
			return io.ErrUnexpectedEOF
		}
		copy(p, r.data[off:])
		return nil
	}
	_, err := r.f.ReadAt(p, off)
	return err
}

// Open opens the store at path, memory-mapping it when the platform
// supports it and falling back to plain file reads otherwise. It validates
// the header, the exact file length, the footer checksum and the end
// magic; a crashed writer's leftover fails here with ErrTruncated.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := openFile(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

func openFile(f *os.File, path string) (*Store, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, size, headerSize)
	}
	hdr := make([]byte, headerSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, err
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(hdr[8:]); v != Version {
		return nil, fmt.Errorf("%w: store version %d, this build reads version %d", ErrCorrupt, v, Version)
	}
	cols := int(binary.LittleEndian.Uint32(hdr[10:]))
	rows64 := binary.LittleEndian.Uint64(hdr[14:])
	blockRows := int(binary.LittleEndian.Uint32(hdr[22:]))
	// Geometry caps double as overflow guards: with cols <= 2^24 and rows
	// <= 2^40 every size computation below stays far inside int64, so a
	// crafted header cannot wrap dataSize around to match a small file.
	if cols <= 0 || cols > 1<<24 || blockRows <= 0 || rows64 > 1<<40 ||
		(rows64 > 0 && uint64(cols) > (1<<62)/rows64) {
		return nil, fmt.Errorf("%w: impossible geometry (%d cols, %d rows, %d rows/block)", ErrCorrupt, cols, rows64, blockRows)
	}
	rows := int(rows64)
	nBlocks := (rows + blockRows - 1) / blockRows
	dataSize := int64(rows) * int64(cols) * 2
	indexSize := int64(nBlocks) * int64(cols) * 4
	want := int64(headerSize) + dataSize + indexSize + 4 + 8
	if size != want {
		return nil, fmt.Errorf("%w: %d bytes on disk, a %dx%d store needs %d (crashed writer?)", ErrTruncated, size, rows, cols, want)
	}
	tail := make([]byte, indexSize+4+8)
	if _, err := f.ReadAt(tail, int64(headerSize)+dataSize); err != nil {
		return nil, err
	}
	if [8]byte(tail[len(tail)-8:]) != endMagic {
		return nil, fmt.Errorf("%w: missing end magic (crashed writer?)", ErrTruncated)
	}
	h := crc32.New(crcTable)
	h.Write(hdr)
	h.Write(tail[:indexSize])
	footCRC := binary.LittleEndian.Uint32(tail[indexSize:])
	if h.Sum32() != footCRC {
		return nil, fmt.Errorf("%w: footer checksum mismatch", ErrCorrupt)
	}
	crcs := make([]uint32, nBlocks*cols)
	for i := range crcs {
		crcs[i] = binary.LittleEndian.Uint32(tail[i*4:])
	}
	reg := &region{}
	if data, err := mmapFile(f, size); err == nil {
		reg.data = data
		f.Close()
	} else {
		reg.f = f
	}
	st := &Store{
		path: path, rows: rows, cols: cols, blockRows: blockRows,
		nBlocks: nBlocks, crcs: crcs, checksum: footCRC, reg: reg,
	}
	st.cleanup = runtime.AddCleanup(st, func(r *region) { r.release() }, reg)
	return st, nil
}

// Close releases the mapping/file handle. Further reads fail or panic;
// Close is not safe to race with in-flight reads.
func (s *Store) Close() error {
	s.cleanup.Stop()
	s.reg.release()
	return nil
}

// Path returns the file the store was opened from.
func (s *Store) Path() string { return s.path }

// Checksum returns the store's footer CRC — a cheap identity covering the
// geometry and the per-block checksums, used by external references
// (modelio) to detect a swapped or regenerated store.
func (s *Store) Checksum() uint32 { return s.checksum }

// Mapped reports whether the store is memory-mapped (false = ReadAt
// fallback).
func (s *Store) Mapped() bool { return s.reg.data != nil }

// NumRows returns the row count.
func (s *Store) NumRows() int { return s.rows }

// NumCols returns the column count.
func (s *Store) NumCols() int { return s.cols }

// BlockRows returns the rows-per-block granularity.
func (s *Store) BlockRows() int { return s.blockRows }

// NumBlocks returns the number of row blocks.
func (s *Store) NumBlocks() int { return s.nBlocks }

// blockLen returns the row count of block blk (the last may be short).
func (s *Store) blockLen(blk int) int {
	if blk == s.nBlocks-1 {
		if r := s.rows - blk*s.blockRows; r < s.blockRows {
			return r
		}
	}
	return s.blockRows
}

// blockOff returns the file offset of column c's slice of block blk.
// Blocks before blk are all full; within a block columns are contiguous.
func (s *Store) blockOff(c, blk int) int64 {
	off := int64(headerSize) + int64(blk)*int64(s.cols)*int64(s.blockRows)*2
	return off + int64(c)*int64(s.blockLen(blk))*2
}

// ColumnBlock decodes column c's codes for block blk into scratch
// (grown as needed) and returns the decoded slice. Concurrent callers
// must pass distinct scratch.
func (s *Store) ColumnBlock(c, blk int, scratch []uint16) []uint16 {
	n := s.blockLen(blk)
	if cap(scratch) < n {
		scratch = make([]uint16, n)
	}
	scratch = scratch[:n]
	if s.reg.data != nil {
		raw := s.reg.data[s.blockOff(c, blk):]
		for i := range scratch {
			scratch[i] = binary.LittleEndian.Uint16(raw[i*2:])
		}
		return scratch
	}
	raw := make([]byte, n*2)
	if err := s.reg.readAt(raw, s.blockOff(c, blk)); err != nil {
		panic(fmt.Sprintf("codestore: reading block (%d,%d) of %s: %v", c, blk, s.path, err))
	}
	for i := range scratch {
		scratch[i] = binary.LittleEndian.Uint16(raw[i*2:])
	}
	return scratch
}

// Code returns the code of one cell (random access). On the mmap path this
// is a two-byte load; on the fallback path a two-byte pread.
func (s *Store) Code(c, r int) uint16 {
	blk := r / s.blockRows
	off := s.blockOff(c, blk) + int64(r-blk*s.blockRows)*2
	if s.reg.data != nil {
		return binary.LittleEndian.Uint16(s.reg.data[off:])
	}
	var b [2]byte
	if err := s.reg.readAt(b[:], off); err != nil {
		panic(fmt.Sprintf("codestore: reading cell (%d,%d) of %s: %v", c, r, s.path, err))
	}
	return binary.LittleEndian.Uint16(b[:])
}

// Verify re-reads every block and checks it against the per-block
// checksums recorded at write time, returning the first damaged block.
// It is a full sequential read of the file — an explicit integrity pass,
// not something the hot path pays per access.
func (s *Store) Verify() error {
	buf := make([]byte, s.blockRows*2)
	for blk := 0; blk < s.nBlocks; blk++ {
		n := s.blockLen(blk) * 2
		for c := 0; c < s.cols; c++ {
			if err := s.reg.readAt(buf[:n], s.blockOff(c, blk)); err != nil {
				return fmt.Errorf("%w: reading block (col %d, block %d): %v", ErrCorrupt, c, blk, err)
			}
			if got, want := crc32.Checksum(buf[:n], crcTable), s.crcs[blk*s.cols+c]; got != want {
				return fmt.Errorf("%w: block (col %d, block %d) checksum %08x, recorded %08x", ErrCorrupt, c, blk, got, want)
			}
		}
	}
	return nil
}
