// Property tests for the on-disk code store, with deliberate focus on the
// chunk boundaries (rows exactly at / one past the block size), the empty
// store, and crash/corruption detection (truncated tails, per-block
// checksums).
package codestore

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// randCodes builds cols column slices of n random codes < maxCode.
func randCodes(rng *rand.Rand, cols, n, maxCode int) [][]uint16 {
	out := make([][]uint16, cols)
	for c := range out {
		col := make([]uint16, n)
		for r := range col {
			col[r] = uint16(rng.Intn(maxCode))
		}
		out[c] = col
	}
	return out
}

// checkStore verifies every access path of an open store against the
// source codes: whole-column block reads, random access, and Verify.
func checkStore(t *testing.T, s *Store, codes [][]uint16) {
	t.Helper()
	n := 0
	if len(codes) > 0 {
		n = len(codes[0])
	}
	if s.NumRows() != n || s.NumCols() != len(codes) {
		t.Fatalf("store is %dx%d, source is %dx%d", s.NumRows(), s.NumCols(), n, len(codes))
	}
	wantBlocks := 0
	if n > 0 {
		wantBlocks = (n + s.BlockRows() - 1) / s.BlockRows()
	}
	if s.NumBlocks() != wantBlocks {
		t.Fatalf("store has %d blocks, want %d", s.NumBlocks(), wantBlocks)
	}
	var scratch []uint16
	for c := range codes {
		got := 0
		for blk := 0; blk < s.NumBlocks(); blk++ {
			block := s.ColumnBlock(c, blk, scratch)
			scratch = block
			for i, code := range block {
				r := blk*s.BlockRows() + i
				if code != codes[c][r] {
					t.Fatalf("col %d row %d (block %d): got %d want %d", c, r, blk, code, codes[c][r])
				}
				got++
			}
		}
		if got != n {
			t.Fatalf("col %d blocks covered %d rows, want %d", c, got, n)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200 && n > 0; i++ {
		c, r := rng.Intn(len(codes)), rng.Intn(n)
		if got := s.Code(c, r); got != codes[c][r] {
			t.Fatalf("random access (%d,%d): got %d want %d", c, r, got, codes[c][r])
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// TestChunkBoundaries sweeps row counts around the block size — the edge
// cases of block arithmetic: one block exactly, one row past it, multiples,
// a final short block, a single row, and the empty store.
func TestChunkBoundaries(t *testing.T) {
	const blockRows = 64
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, blockRows - 1, blockRows, blockRows + 1, 2 * blockRows, 2*blockRows + 17, 5 * blockRows} {
		codes := randCodes(rng, 3, n, 40)
		path := filepath.Join(t.TempDir(), "s.codes")
		if err := WriteFile(path, codes, blockRows); err != nil {
			t.Fatalf("n=%d: write: %v", n, err)
		}
		s, err := Open(path)
		if err != nil {
			t.Fatalf("n=%d: open: %v", n, err)
		}
		checkStore(t, s, codes)
		s.Close()
	}
}

// TestStreamedChunksMatchOneShot pins that a writer fed odd-sized row
// chunks produces exactly the store a one-shot write does.
func TestStreamedChunksMatchOneShot(t *testing.T) {
	const blockRows, n, cols = 32, 533, 4
	rng := rand.New(rand.NewSource(2))
	codes := randCodes(rng, cols, n, 30)

	dir := t.TempDir()
	oneShot := filepath.Join(dir, "one.codes")
	if err := WriteFile(oneShot, codes, blockRows); err != nil {
		t.Fatal(err)
	}
	streamed := filepath.Join(dir, "stream.codes")
	w, err := Create(streamed, cols, blockRows)
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([][]uint16, cols)
	for start := 0; start < n; {
		// Ragged chunk sizes, including chunks spanning multiple blocks.
		size := min(1+rng.Intn(2*blockRows+5), n-start)
		for c := range chunk {
			chunk[c] = codes[c][start : start+size]
		}
		if err := w.AppendColumns(chunk); err != nil {
			t.Fatal(err)
		}
		start += size
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(oneShot)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("streamed store differs from one-shot store (%d vs %d bytes)", len(b), len(a))
	}
}

// TestReopenAfterCrashTruncatedTail simulates a crashed writer: any
// truncation of a complete store must be rejected at Open (the index and
// footer are written last, so a partial file can never look complete).
func TestReopenAfterCrashTruncatedTail(t *testing.T) {
	const blockRows, n = 16, 100
	rng := rand.New(rand.NewSource(3))
	codes := randCodes(rng, 2, n, 20)
	path := filepath.Join(t.TempDir(), "s.codes")
	if err := WriteFile(path, codes, blockRows); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(full) - 1, len(full) - 8, len(full) - 12, len(full) / 2, headerSize + 1, 3} {
		trunc := filepath.Join(t.TempDir(), "t.codes")
		if err := os.WriteFile(trunc, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(trunc); err == nil {
			t.Fatalf("Open accepted a store truncated to %d of %d bytes", cut, len(full))
		} else if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrTruncated/ErrCorrupt", cut, err)
		}
	}
	// An abandoned writer (no Close) must likewise be rejected.
	abandoned := filepath.Join(t.TempDir(), "a.codes")
	w, err := Create(abandoned, 2, blockRows)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendColumns(codes); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: the writer never reaches Close.
	if _, err := Open(abandoned); err == nil {
		t.Fatal("Open accepted an unfinalized store")
	}
	w.Abort()
}

// TestPerBlockChecksum pins silent-corruption detection: a bit flip inside
// a data block passes Open (geometry and footer are intact) but fails
// Verify against the per-block checksum; a flip in the index fails Open
// outright via the footer checksum.
func TestPerBlockChecksum(t *testing.T) {
	const blockRows, n = 16, 100
	rng := rand.New(rand.NewSource(4))
	codes := randCodes(rng, 2, n, 20)
	path := filepath.Join(t.TempDir(), "s.codes")
	if err := WriteFile(path, codes, blockRows); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a bit in the middle of the data section.
	data := append([]byte(nil), full...)
	data[headerSize+37] ^= 0x04
	flipped := filepath.Join(t.TempDir(), "f.codes")
	if err := os.WriteFile(flipped, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(flipped)
	if err != nil {
		t.Fatalf("Open should defer data-block validation to Verify, got %v", err)
	}
	if err := s.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify on a bit-flipped block: got %v, want ErrCorrupt", err)
	}
	s.Close()

	// Flip a bit in the block index: the footer checksum covers it.
	idx := append([]byte(nil), full...)
	idx[len(idx)-16] ^= 0x01
	badIdx := filepath.Join(t.TempDir(), "i.codes")
	if err := os.WriteFile(badIdx, idx, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(badIdx); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on a flipped index: got %v, want ErrCorrupt", err)
	}
}

// TestWriteFileAtomic pins that WriteFile leaves no temp droppings and
// that a failed write does not clobber an existing store.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.codes")
	codes := randCodes(rand.New(rand.NewSource(5)), 2, 50, 10)
	if err := WriteFile(path, codes, 16); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("store dir has %d entries after WriteFile, want 1", len(entries))
	}
}
