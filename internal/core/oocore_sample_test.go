// Internal test pinning the streaming sampler: the stratified min-hash
// reservoir over a chunked code store must equal the in-memory scan for
// any (budget, seed, candidate subset) — the order-independence claim the
// out-of-core path rests on.
package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"subtab/internal/binning"
	"subtab/internal/codestore"
	"subtab/internal/datagen"
)

func TestStratifiedReservoirStreamsFromStore(t *testing.T) {
	ds := datagen.Generic(1200, 6, 5, 9)
	mem, err := binning.Bin(ds.T, binning.Options{MaxBins: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// An independent binned twin switched onto a store with tiny blocks, so
	// every scan crosses many chunk boundaries.
	ooc, err := binning.Bin(ds.T, binning.Options{MaxBins: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sample.codes")
	w, err := codestore.Create(path, ooc.NumCols(), 37)
	if err != nil {
		t.Fatal(err)
	}
	if err := ooc.ExportCodes(w, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := codestore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := ooc.AttachStore(s); err != nil {
		t.Fatal(err)
	}
	if err := ooc.DropInlineCodes(); err != nil {
		t.Fatal(err)
	}

	cols := make([]int, mem.NumCols())
	for i := range cols {
		cols[i] = i
	}
	allRows := make([]int, mem.NumRows())
	for i := range allRows {
		allRows[i] = i
	}
	rng := rand.New(rand.NewSource(4))
	subset := func(n int) []int {
		out := append([]int(nil), allRows...)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		out = out[:n]
		return out
	}
	cases := [][]int{allRows, subset(700), subset(333), allRows[100:800]}
	for ci, rows := range cases {
		for _, budget := range []int{50, 200, len(rows), len(rows) + 10} {
			for _, seed := range []int64{1, 42, -7} {
				want := stratifiedReservoir(mem, rows, cols, budget, seed)
				got := stratifiedReservoir(ooc, rows, cols, budget, seed)
				if len(want) != len(got) {
					t.Fatalf("case %d budget %d seed %d: %d sampled via store, %d in memory", ci, budget, seed, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("case %d budget %d seed %d: sample[%d] = %d via store, %d in memory", ci, budget, seed, i, got[i], want[i])
					}
				}
			}
		}
	}
}
