// Property-based tests for the stratified reservoir sampler behind the
// scaled selection path. The sampler is pure min-wise hashing, so every
// property is checked across a sweep of seeds, budgets and candidate
// subsets rather than a single lucky configuration.
package core

import (
	"math/rand"
	"testing"

	"subtab/internal/binning"
	"subtab/internal/datagen"
	"subtab/internal/table"
)

// sampleTestBinned builds a binned table with deliberately skewed strata:
// the Generic dataset's pattern column gives a handful of categorical bins,
// and we thin one pattern down to a rare stratum so coverage is actually
// exercised (a uniform sampler would routinely miss it).
func sampleTestBinned(t *testing.T, n int, seed int64) *binning.Binned {
	t.Helper()
	ds := datagen.Generic(n, 6, 5, seed)
	b, err := binning.Bin(ds.T, binning.Options{MaxBins: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func identity(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func allCols(b *binning.Binned) []int {
	cols := make([]int, b.NumCols())
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// assertSortedUnique checks the sampler's output-shape invariant.
func assertSortedUnique(t *testing.T, sample []int) {
	t.Helper()
	for i := 1; i < len(sample); i++ {
		if sample[i] <= sample[i-1] {
			t.Fatalf("sample not sorted/unique at %d: %d then %d", i, sample[i-1], sample[i])
		}
	}
}

func TestStratifiedReservoirSmallTableReturnsAllRows(t *testing.T) {
	b := sampleTestBinned(t, 200, 1)
	rows, cols := identity(200), allCols(b)
	for _, budget := range []int{200, 500, 10_000} {
		got := stratifiedReservoir(b, rows, cols, budget, 7)
		if len(got) != 200 {
			t.Fatalf("budget %d: want all 200 rows, got %d", budget, len(got))
		}
		assertSortedUnique(t, got)
		for i, r := range got {
			if r != i {
				t.Fatalf("budget %d: row %d missing from full return", budget, i)
			}
		}
	}
}

func TestStratifiedReservoirDeterministicPerSeed(t *testing.T) {
	b := sampleTestBinned(t, 3000, 2)
	rows, cols := identity(3000), allCols(b)
	distinct := 0
	for _, seed := range []int64{0, 1, 41, -9} {
		a := stratifiedReservoir(b, rows, cols, 300, seed)
		bb := stratifiedReservoir(b, rows, cols, 300, seed)
		if len(a) != len(bb) {
			t.Fatalf("seed %d: lengths differ: %d vs %d", seed, len(a), len(bb))
		}
		for i := range a {
			if a[i] != bb[i] {
				t.Fatalf("seed %d: sample differs at %d: %d vs %d", seed, i, a[i], bb[i])
			}
		}
		base := stratifiedReservoir(b, rows, cols, 300, 12345)
		for i := range a {
			if a[i] != base[i] {
				distinct++
				break
			}
		}
	}
	if distinct == 0 {
		t.Fatal("every seed produced the reference sample; the seed is not reaching the hash")
	}
}

func TestStratifiedReservoirSortedUniqueWithinBudget(t *testing.T) {
	b := sampleTestBinned(t, 5000, 3)
	cols := allCols(b)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		// Random candidate subsets model query results; random budgets model
		// knob settings.
		var rows []int
		for r := 0; r < 5000; r++ {
			if rng.Float64() < 0.6 {
				rows = append(rows, r)
			}
		}
		budget := 50 + rng.Intn(2000)
		sample := stratifiedReservoir(b, rows, cols, budget, int64(trial))
		if len(rows) > budget && len(sample) != budget {
			t.Fatalf("trial %d: want exactly budget %d rows, got %d", trial, budget, len(sample))
		}
		assertSortedUnique(t, sample)
		inRows := make(map[int]bool, len(rows))
		for _, r := range rows {
			inRows[r] = true
		}
		for _, r := range sample {
			if !inRows[r] {
				t.Fatalf("trial %d: sampled row %d is not a candidate", trial, r)
			}
		}
	}
}

func TestStratifiedReservoirCoversEveryNonEmptyBin(t *testing.T) {
	b := sampleTestBinned(t, 8000, 4)
	cols := allCols(b)
	for _, tc := range []struct {
		name string
		rows []int
	}{
		{"all-rows", identity(8000)},
		{"every-third-row", func() []int {
			var rows []int
			for r := 0; r < 8000; r += 3 {
				rows = append(rows, r)
			}
			return rows
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []int64{1, 2, 77} {
				sample := stratifiedReservoir(b, tc.rows, cols, 400, seed)
				// Strata present among candidates vs strata present in sample.
				want := make(map[int32]bool)
				for _, c := range cols {
					for _, r := range tc.rows {
						want[b.Item(c, r)] = true
					}
				}
				got := make(map[int32]bool)
				for _, c := range cols {
					for _, r := range sample {
						got[b.Item(c, r)] = true
					}
				}
				if len(want) > 400 {
					t.Fatalf("test misconfigured: %d strata exceed the budget", len(want))
				}
				for item := range want {
					if !got[item] {
						t.Errorf("seed %d: stratum %s lost by sampling", seed, b.ItemLabel(item))
					}
				}
			}
		})
	}
}

// TestStratifiedReservoirRareStratumSurvives plants one near-singleton
// category and checks the guarantee that motivates stratification: a uniform
// 100-of-10000 sample would miss a 3-row category with probability ~97%,
// the stratified sampler must never miss it.
func TestStratifiedReservoirRareStratumSurvives(t *testing.T) {
	n := 10_000
	cats := make([]string, n)
	for i := range cats {
		cats[i] = "common"
	}
	cats[17], cats[4242], cats[9001] = "rare", "rare", "rare"
	ds := datagen.Generic(n, 4, 2, 5)
	tbl := ds.T
	if err := tbl.AddColumn(table.NewCategorical("flag", cats)); err != nil {
		t.Fatal(err)
	}
	b, err := binning.Bin(tbl, binning.Options{MaxBins: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cols := allCols(b)
	flagCol := tbl.ColumnIndex("flag")
	for seed := int64(0); seed < 30; seed++ {
		sample := stratifiedReservoir(b, identity(n), cols, 100, seed)
		found := false
		for _, r := range sample {
			if tbl.ColumnAt(flagCol).CellString(r) == "rare" {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("seed %d: rare stratum (3 of %d rows) missing from the sample", seed, n)
		}
	}
}
