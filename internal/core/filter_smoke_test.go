// Predicate-scoped CI smoke: the streaming filter path must answer a
// predicate-scoped scaled select on a fully-paged 1M-row table — codes AND
// raw cells store-backed — without materializing a resident table. Reuses
// the out-of-core smoke's CSV (SUBTAB_OOC_SMOKE_CSV) and RSS plumbing;
// skips without the env var.
package core_test

import (
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"subtab/internal/binning"
	"subtab/internal/core"
	"subtab/internal/corpus"
	"subtab/internal/query"
	"subtab/internal/table"
	"subtab/internal/word2vec"
)

func TestPredicateScopedSmoke(t *testing.T) {
	csvPath := os.Getenv("SUBTAB_OOC_SMOKE_CSV")
	if csvPath == "" {
		t.Skip("set SUBTAB_OOC_SMOKE_CSV to a generated CSV (see the CI out-of-core smoke step)")
	}
	tbl, err := table.ReadCSVFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{
		Bins:        binning.Options{MaxBins: 5, Strategy: binning.KDEValleys, Seed: 3},
		Corpus:      corpus.Options{MaxSentences: 100_000, TupleSentences: true, Seed: 3},
		Embedding:   word2vec.Options{Dim: 8, Epochs: 1, Seed: 3},
		ClusterSeed: 3,
	}
	m, err := core.Preprocess(tbl, opt)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cs, err := m.UseCodeStoreFile(filepath.Join(dir, "smoke.codes"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	st, err := m.UseColumnStoreFile(filepath.Join(dir, "smoke.cols"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !m.OutOfCore() || !m.CellsPaged() {
		t.Fatal("smoke model not fully paged")
	}

	// The bound is deliberately not cut-aligned: the filter must resolve the
	// boundary bin through batched colstore gathers, not from codes alone.
	q := &query.Query{Where: []query.Predicate{{Col: "DISTANCE", Op: query.Geq, Num: 817.5}}}
	scale := &core.ScaleOptions{Threshold: 50_000, SlabBudgetBytes: 256 << 10}

	// Heap watermark before the select: a materialized 1M-row table copy
	// (the escape hatch this path must never take) costs hundreds of MiB and
	// would blow the delta bound immediately.
	debug.FreeOSMemory()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	start := time.Now()
	sub, err := m.SelectWith(q, 10, 8, nil, scale)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.SourceRows) == 0 || len(sub.SourceRows) > 10 {
		t.Fatalf("predicate-scoped select returned %d rows", len(sub.SourceRows))
	}
	if elapsed > smokeSelectBound {
		t.Fatalf("predicate-scoped select took %s, over the %s smoke bound", elapsed, smokeSelectBound)
	}
	t.Logf("predicate-scoped scaled select: %s, %d rows", elapsed, len(sub.SourceRows))

	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	const selectHeapBound = 128 << 20
	if delta := int64(after.HeapAlloc) - int64(before.HeapAlloc); delta > selectHeapBound {
		t.Fatalf("select grew the live heap by %d MiB (bound %d MiB) — a resident table copy crept into the streaming path",
			delta>>20, int64(selectHeapBound)>>20)
	}
	if !m.CellsPaged() || !m.OutOfCore() {
		t.Fatal("select re-materialized inline state")
	}

	// Deterministic repeat, byte for byte.
	again, err := m.SelectWith(q, 10, 8, nil, scale)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(again) != fingerprint(sub) {
		t.Fatal("repeated predicate-scoped select diverged")
	}

	// Same RSS discipline as the unfiltered smoke.
	debug.FreeOSMemory()
	if steady, ok := rssBytes(t, "VmRSS:"); ok {
		t.Logf("steady-state RSS: %d MiB (bound %d MiB)", steady>>20, int64(smokeSteadyRSSBound)>>20)
		if steady > smokeSteadyRSSBound {
			t.Fatalf("steady-state RSS %d MiB exceeds the %d MiB bound", steady>>20, int64(smokeSteadyRSSBound)>>20)
		}
	}
	if peak, ok := rssBytes(t, "VmHWM:"); ok {
		t.Logf("peak RSS: %d MiB (bound %d MiB)", peak>>20, int64(smokePeakRSSBound)>>20)
		if peak > smokePeakRSSBound {
			t.Fatalf("peak RSS %d MiB exceeds the %d MiB bound", peak>>20, int64(smokePeakRSSBound)>>20)
		}
	}
	runtime.KeepAlive(m)
}
