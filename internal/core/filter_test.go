// Property sweep for the streaming predicate path: for any streamable
// query (conjunction + projection + limit), SelectWith's code-level
// streaming evaluation must be byte-identical to the historical
// materialize-then-filter path — over resident, paged and sharded stores,
// exact and scaled — and the exploration operators (coverage-biased
// sampling, drill-down scopes) must be deterministic.
package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"subtab/internal/binning"
	"subtab/internal/bitset"
	"subtab/internal/corpus"
	"subtab/internal/datagen"
	"subtab/internal/query"
	"subtab/internal/word2vec"
)

// filterTestModel builds an independent deterministic FL model; each call
// re-preprocesses so twins never alias inline state.
func filterTestModel(t *testing.T) *Model {
	t.Helper()
	ds, err := datagen.ByName("FL", 900, 5)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		Bins:        binning.Options{MaxBins: 5, Strategy: binning.KDEValleys, Seed: 5},
		Corpus:      corpus.Options{MaxSentences: 100_000, TupleSentences: true, Seed: 5},
		Embedding:   word2vec.Options{Dim: 16, Epochs: 2, Seed: 5},
		ClusterSeed: 11,
	}
	m, err := Preprocess(ds.T, opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// pageOut switches a model onto small-block code and column stores and
// drops the inline copies, so streaming really streams.
func pageOut(t *testing.T, m *Model) {
	t.Helper()
	dir := t.TempDir()
	cs, err := m.UseCodeStoreFile(filepath.Join(dir, "codes"), 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cs.Close() })
	st, err := m.UseColumnStoreFile(filepath.Join(dir, "cols"), 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if !m.OutOfCore() || !m.CellsPaged() {
		t.Fatal("model still resident after paging out")
	}
}

// shardOut is pageOut's sharded form: codes and cells split across three
// shard files each.
func shardOut(t *testing.T, m *Model) {
	t.Helper()
	dir := t.TempDir()
	paths := make([]string, 3)
	colPaths := make([]string, 3)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("codes.%d", i))
		colPaths[i] = filepath.Join(dir, fmt.Sprintf("cols.%d", i))
	}
	src, err := m.UseShardedStores(paths, 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	cells, err := m.UseShardedColumnStores(colPaths, 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cells.Close() })
}

func fpr(st *SubTable) string {
	return fmt.Sprintf("%v|%v|%v|%s", st.SourceRows, st.ColIdx, st.Cols, st.View.Render(nil))
}

// streamableCorpus enumerates the queries the sweep pins: cut-crossing and
// arbitrary numeric bounds, categorical equality (incl. the fallback bin),
// missingness, projections, limits, and an order-by outside the projection
// (a no-op in Apply, so still streamable).
func streamableCorpus(m *Model) []*query.Query {
	carrier := m.T.ColumnAt(m.T.ColumnIndex("AIRLINE")).CellString(0)
	return []*query.Query{
		{Where: []query.Predicate{{Col: "DISTANCE", Op: query.Geq, Num: 800}}},
		{Where: []query.Predicate{{Col: "DISTANCE", Op: query.Lt, Num: 1234.5}}},
		{Where: []query.Predicate{{Col: "AIRLINE", Op: query.Eq, Str: carrier}}},
		{Where: []query.Predicate{{Col: "AIRLINE", Op: query.Neq, Str: carrier}, {Col: "ARRIVAL_DELAY", Op: query.Gt, Num: 0}}},
		{Where: []query.Predicate{{Col: "CANCELLATION_REASON", Op: query.IsMissing}}},
		{Where: []query.Predicate{{Col: "ARRIVAL_DELAY", Op: query.NotMissing}, {Col: "DEPARTURE_DELAY", Op: query.Leq, Num: 30}}},
		{
			Where:  []query.Predicate{{Col: "DISTANCE", Op: query.Gt, Num: 400}},
			Select: []string{"AIRLINE", "DISTANCE", "ARRIVAL_DELAY", "ORIGIN_AIRPORT"},
		},
		{
			Where: []query.Predicate{{Col: "DEPARTURE_DELAY", Op: query.Geq, Num: 10}},
			Limit: 150,
		},
		{
			Where:   []query.Predicate{{Col: "DISTANCE", Op: query.Leq, Num: 2000}},
			Select:  []string{"AIRLINE", "DISTANCE", "TAXI_OUT"},
			OrderBy: "ARRIVAL_DELAY", // outside the projection: no-op, streamable
			Limit:   200,
		},
	}
}

// TestStreamingMatchesMaterialized pins the headline byte-identity: on a
// resident table, the streaming path and the historical Apply-based path
// produce identical selections, exact and scaled.
func TestStreamingMatchesMaterialized(t *testing.T) {
	m := filterTestModel(t)
	scales := map[string]ScaleOptions{
		"exact":  {},
		"scaled": {Threshold: 1, SampleBudget: 300, BatchSize: 128, MaxIter: 50},
	}
	for i, q := range streamableCorpus(m) {
		if !m.streamableQuery(q) {
			t.Fatalf("query %d (%s) unexpectedly not streamable", i, q)
		}
		for name, sc := range scales {
			want, err := m.selectWithMaterialized(q, 8, 6, nil, sc)
			if err != nil {
				t.Fatalf("query %d (%s) %s materialized: %v", i, q, name, err)
			}
			scc := sc
			got, err := m.SelectWith(q, 8, 6, nil, &scc)
			if err != nil {
				t.Fatalf("query %d (%s) %s streaming: %v", i, q, name, err)
			}
			if fpr(got) != fpr(want) {
				t.Fatalf("query %d (%s) %s diverged:\n got %s\nwant %s", i, q, name, fpr(got), fpr(want))
			}
		}
	}
}

// TestStreamingAcrossStores pins cross-store identity: paged and sharded
// twins must reproduce the resident model's streaming selections byte for
// byte (residual predicate checks included — the bounds are deliberately
// not cut-aligned).
func TestStreamingAcrossStores(t *testing.T) {
	resident := filterTestModel(t)
	paged := filterTestModel(t)
	pageOut(t, paged)
	sharded := filterTestModel(t)
	shardOut(t, sharded)
	sc := &ScaleOptions{Threshold: 1, SampleBudget: 300, BatchSize: 128, MaxIter: 50}
	for i, q := range streamableCorpus(resident) {
		want, err := resident.SelectWith(q, 8, 6, nil, sc)
		if err != nil {
			t.Fatalf("query %d (%s) resident: %v", i, q, err)
		}
		for name, twin := range map[string]*Model{"paged": paged, "sharded": sharded} {
			got, err := twin.SelectWith(q, 8, 6, nil, sc)
			if err != nil {
				t.Fatalf("query %d (%s) %s: %v", i, q, name, err)
			}
			if fpr(got) != fpr(want) {
				t.Fatalf("query %d (%s) over %s store diverged:\n got %s\nwant %s", i, q, name, fpr(got), fpr(want))
			}
		}
	}
}

// TestPagedNonStreamableRefused pins satellite behaviour: a query needing
// Apply's resident-cell evaluation on a paged table is refused with the
// typed paged-cells error and a message pointing at the streaming subset —
// never answered by materializing the table.
func TestPagedNonStreamableRefused(t *testing.T) {
	m := filterTestModel(t)
	pageOut(t, m)
	for _, q := range []*query.Query{
		{GroupBy: []string{"AIRLINE"}, Aggs: []query.Aggregate{{Func: query.Count}}},
		{Select: []string{"AIRLINE", "DISTANCE"}, OrderBy: "DISTANCE", Limit: 20},
	} {
		_, err := m.SelectWith(q, 5, 5, nil, nil)
		if err == nil {
			t.Fatalf("query %s on paged table did not error", q)
		}
		if !errors.Is(err, query.ErrCellsPaged) {
			t.Fatalf("query %s: error %v does not wrap query.ErrCellsPaged", q, err)
		}
		if !strings.Contains(err.Error(), "enable streaming predicates") {
			t.Fatalf("query %s: error %q does not point at the streaming subset", q, err)
		}
	}
}

// TestHuskEvaluationRefused pins the query-layer guard: cell-level
// predicate evaluation against a dropped-cells husk returns the typed
// ErrCellsPaged instead of matching against stale or absent cells.
func TestHuskEvaluationRefused(t *testing.T) {
	m := filterTestModel(t)
	pageOut(t, m)
	if m.T.CellsResident() {
		t.Fatal("table cells still resident after paging out")
	}
	q := &query.Query{Where: []query.Predicate{{Col: "DISTANCE", Op: query.Gt, Num: 100}}}
	if _, err := q.MatchingRows(m.T); !errors.Is(err, query.ErrCellsPaged) {
		t.Fatalf("MatchingRows on husk: error %v does not wrap query.ErrCellsPaged", err)
	}
	if _, _, err := q.Apply(m.T); !errors.Is(err, query.ErrCellsPaged) {
		t.Fatalf("Apply on husk: error %v does not wrap query.ErrCellsPaged", err)
	}
}

// TestExploreDeterminism pins the session operators: an empty coverage
// bitset reproduces the unbiased selection exactly, repeated biased
// selections are identical, and coverage bias genuinely changes the
// sample once strata are covered.
func TestExploreDeterminism(t *testing.T) {
	m := filterTestModel(t)
	sc := &ScaleOptions{Threshold: 1, SampleBudget: 120, BatchSize: 128, MaxIter: 50}
	spec := ExploreSpec{
		Where: []query.Predicate{{Col: "DISTANCE", Op: query.Geq, Num: 300}},
		K:     8, L: 6,
		Scale: sc,
	}
	base, err := m.SelectExplore(spec)
	if err != nil {
		t.Fatal(err)
	}
	empty := spec
	empty.Covered = bitset.New(m.B.NumItems())
	unbiased, err := m.SelectExplore(empty)
	if err != nil {
		t.Fatal(err)
	}
	if fpr(unbiased) != fpr(base) {
		t.Fatalf("empty coverage diverged from unbiased:\n got %s\nwant %s", fpr(unbiased), fpr(base))
	}
	covered := bitset.FromIndices(m.B.NumItems(), m.ViewItems(base))
	biasedSpec := spec
	biasedSpec.Covered = covered
	a, err := m.SelectExplore(biasedSpec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.SelectExplore(biasedSpec)
	if err != nil {
		t.Fatal(err)
	}
	if fpr(a) != fpr(b) {
		t.Fatalf("biased selection not deterministic:\n %s\n %s", fpr(a), fpr(b))
	}
}

// TestDrillDownDeterministic replays a whole session — select, cell drill,
// row drill — on two independently preprocessed models: every step must
// produce identical views and scopes.
func TestDrillDownDeterministic(t *testing.T) {
	run := func(m *Model) []string {
		var trace []string
		sc := &ScaleOptions{Threshold: 1, SampleBudget: 120, BatchSize: 128, MaxIter: 50}
		st, err := m.SelectExplore(ExploreSpec{K: 8, L: 6, Scale: sc})
		if err != nil {
			t.Fatal(err)
		}
		trace = append(trace, fpr(st))
		covered := bitset.FromIndices(m.B.NumItems(), m.ViewItems(st))
		anchor := st.SourceRows[2]
		// Cell drill on the view's first column.
		scope, err := m.Neighborhood(anchor, st.ColIdx[0], st.ColIdx)
		if err != nil {
			t.Fatal(err)
		}
		trace = append(trace, fmt.Sprintf("%v", scope))
		st2, err := m.SelectExplore(ExploreSpec{Scope: scope, K: 6, L: 5, Scale: sc, Covered: covered})
		if err != nil {
			t.Fatal(err)
		}
		trace = append(trace, fpr(st2))
		// Row drill from the second view.
		scope2, err := m.Neighborhood(st2.SourceRows[0], -1, st2.ColIdx)
		if err != nil {
			t.Fatal(err)
		}
		trace = append(trace, fmt.Sprintf("%v", scope2))
		return trace
	}
	a, b := run(filterTestModel(t)), run(filterTestModel(t))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("session step %d diverged:\n %s\n %s", i, a[i], b[i])
		}
	}
}
