package core

import (
	"subtab/internal/memgov"
)

// Governor integration: a model's two growable caches — the full-table
// tuple-vector cache and the memoized candidate samples — settle their
// resident bytes with the process-wide ledger (internal/memgov) so one
// -memory-budget covers every tenant. The settles use memgov.Account's
// generation reconciliation: the cache mutates under its own mutex, bumps
// its generation, unlocks, and settles — so a release racing an in-flight
// build nets to the truth regardless of which settle lands first, and no
// governor call ever runs under a model mutex (the governor's eviction
// callbacks take model mutexes; see the memgov locking contract).

// modelGov pairs the per-model settlement accounts. Stored behind an
// atomic.Pointer so selections on an ungoverned model pay one nil-check.
type modelGov struct {
	vec    *memgov.Account
	sample *memgov.Account
}

// SetGovernor registers the model's caches with g and settles any bytes
// already resident (an append-extended model arrives with a warm vector
// cache). Idempotent — repeat calls (a store re-inserting the same model)
// keep the first registration's accounts, because replacing them would
// strand their settled balances. Passing nil is a no-op. Must not be
// called while holding a lock g's evictors acquire.
func (m *Model) SetGovernor(g *memgov.Governor) {
	if g == nil {
		return
	}
	mg := &modelGov{
		vec:    g.Account(memgov.ClassVectorCache),
		sample: g.Account(memgov.ClassSampleCache),
	}
	if !m.gov.CompareAndSwap(nil, mg) {
		return // already governed; keep the accounts holding the balances
	}

	m.fullVecsMu.Lock()
	var vb int64
	if m.fullVecsReady.Load() {
		vb = int64(len(m.fullVecs.Data)) * 4
	}
	vgen := m.fullVecsGen
	m.fullVecsMu.Unlock()
	mg.vec.Settle(vgen, vb)

	m.sampleMu.Lock()
	sb := sampleCacheBytes(m.sampleCache)
	sgen := m.sampleGen
	m.sampleMu.Unlock()
	mg.sample.Settle(sgen, sb)
}

// vecAccount returns the vector-cache settlement account (nil when
// ungoverned; Settle on nil is a no-op).
func (m *Model) vecAccount() *memgov.Account {
	if mg := m.gov.Load(); mg != nil {
		return mg.vec
	}
	return nil
}

// sampleAccount returns the sample-cache settlement account.
func (m *Model) sampleAccount() *memgov.Account {
	if mg := m.gov.Load(); mg != nil {
		return mg.sample
	}
	return nil
}

// sampleCacheBytes estimates the resident bytes of the memoized candidate
// samples (slice headers ignored; the int payloads dominate).
func sampleCacheBytes(c map[int][]int) int64 {
	var b int64
	for _, s := range c {
		b += int64(len(s)) * 8
	}
	return b
}

// CacheBytes reports the bytes the model's governed caches currently hold
// (vector cache + sample cache) — observability for tests and stats.
func (m *Model) CacheBytes() int64 {
	m.fullVecsMu.Lock()
	var b int64
	if m.fullVecsReady.Load() {
		b = int64(len(m.fullVecs.Data)) * 4
	}
	m.fullVecsMu.Unlock()
	m.sampleMu.Lock()
	b += sampleCacheBytes(m.sampleCache)
	m.sampleMu.Unlock()
	return b
}

// ResidentBytes estimates the model's always-resident footprint: table
// cells (when not paged out), bin codes (when inline), embedding matrices,
// the item index, bin counts, and the affinity diagonal. It deliberately
// EXCLUDES the two governed caches (vector cache, sample cache) — those are
// accounted live under their own classes — and anything mmap'd (code/column
// stores), which the OS pages in and out on its own. The estimate reads
// only immutable post-build state, so it is safe to call under any lock
// (the serving store calls it under its mutex to weight the LRU).
func (m *Model) ResidentBytes() int64 {
	var b int64
	if m.T != nil && m.T.CellsResident() {
		b += m.T.ApproxBytes()
	}
	if m.B != nil {
		for _, codes := range m.B.Codes {
			b += int64(len(codes)) * 2
		}
		for i := range m.B.Cols {
			// Covers the schema itself plus the (possibly not yet lazily
			// built) per-bin counts — sized from NumBins rather than read
			// from m.binCounts, which a concurrent select may be filling.
			b += m.B.Cols[i].ApproxBytes() + int64(m.B.Cols[i].NumBins())*8
		}
	}
	if m.Emb != nil {
		b += m.Emb.ApproxBytes()
	}
	b += int64(len(m.itemRow)) * 4
	b += int64(len(m.colAffinity)) * 8
	return b
}
