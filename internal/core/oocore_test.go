// Tests for the out-of-core selection path: a store-backed model (bin
// codes in an mmap'd code store, inline codes dropped) must reproduce the
// in-memory model's selections byte for byte — scaled, exact, query-
// restricted, with and without slab spilling — and the operations that
// need materialized codes (rule mining, appends, persistence) must keep
// working.
package core_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"subtab/internal/core"
	"subtab/internal/modelio"
	"subtab/internal/query"
	"subtab/internal/rules"
)

// outOfCoreTwin builds a second, independent deterministic model and
// switches it onto a code store (small blocks, so chunked scans really
// chunk), leaving the original fully in-memory for comparison.
func outOfCoreTwin(t *testing.T) *core.Model {
	t.Helper()
	m := deterministicModel(t)
	cs, err := m.UseCodeStoreFile(filepath.Join(t.TempDir(), "twin.codes"), 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cs.Close() })
	if !m.OutOfCore() {
		t.Fatal("model still in-core after UseCodeStoreFile")
	}
	return m
}

// TestOutOfCoreScaledSelectMatchesInMemory pins the headline guarantee:
// the scaled path over the code store is bit-identical to the in-memory
// scaled path.
func TestOutOfCoreScaledSelectMatchesInMemory(t *testing.T) {
	mem := deterministicModel(t)
	ooc := outOfCoreTwin(t)
	want, err := mem.SelectWith(nil, 8, 7, nil, forceScale())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ooc.SelectWith(nil, 8, 7, nil, forceScale())
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(got) != fingerprint(want) {
		t.Fatalf("store-backed scaled select diverged:\n got %s\nwant %s", fingerprint(got), fingerprint(want))
	}
}

// TestOutOfCoreSpilledSlabMatches pins the slab spill: a budget far below
// the sampled vectors' size forces the spill file, and the selection must
// not change by a byte.
func TestOutOfCoreSpilledSlabMatches(t *testing.T) {
	mem := deterministicModel(t)
	ooc := outOfCoreTwin(t)
	plain := forceScale()
	want, err := mem.SelectWith(nil, 8, 7, nil, plain)
	if err != nil {
		t.Fatal(err)
	}
	spill := forceScale()
	spill.SlabBudgetBytes = 1 // 300 sampled rows x 16 dims x 4B >> 1B
	got, err := ooc.SelectWith(nil, 8, 7, nil, spill)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(got) != fingerprint(want) {
		t.Fatalf("spilled-slab select diverged:\n got %s\nwant %s", fingerprint(got), fingerprint(want))
	}
	// The in-memory model must spill identically too.
	memSpill, err := mem.SelectWith(nil, 8, 7, nil, spill)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(memSpill) != fingerprint(want) {
		t.Fatalf("in-memory spilled select diverged:\n got %s\nwant %s", fingerprint(memSpill), fingerprint(want))
	}
}

// TestOutOfCoreQueryAndExactSelects drives the store-backed model down the
// non-scaled exact path and the query-restricted scaled path.
func TestOutOfCoreQueryAndExactSelects(t *testing.T) {
	mem := deterministicModel(t)
	ooc := outOfCoreTwin(t)

	wantExact, err := mem.Select(8, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotExact, err := ooc.Select(8, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(gotExact) != fingerprint(wantExact) {
		t.Fatalf("store-backed exact select diverged:\n got %s\nwant %s", fingerprint(gotExact), fingerprint(wantExact))
	}

	q := &query.Query{Limit: 500}
	wantQ, err := mem.SelectWith(q, 6, 5, nil, forceScale())
	if err != nil {
		t.Fatal(err)
	}
	gotQ, err := ooc.SelectWith(q, 6, 5, nil, forceScale())
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(gotQ) != fingerprint(wantQ) {
		t.Fatalf("store-backed query select diverged:\n got %s\nwant %s", fingerprint(gotQ), fingerprint(wantQ))
	}
}

// TestOutOfCoreRulesAndAppend pins the materialization escape hatches:
// mining rules over a store-backed model matches the in-memory mining, and
// an append produces a working (inline) successor model.
func TestOutOfCoreRulesAndAppend(t *testing.T) {
	mem := deterministicModel(t)
	ooc := outOfCoreTwin(t)
	opt := rules.Options{MinSupport: 0.05, MinConfidence: 0.6}
	want, err := rules.Mine(mem.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rules.Mine(ooc.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("store-backed mining found %d rules, in-memory %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Label(mem.B) != got[i].Label(ooc.B) {
			t.Fatalf("rule %d differs: %q vs %q", i, got[i].Label(ooc.B), want[i].Label(mem.B))
		}
	}

	delta := deterministicModel(t).T // same distribution, schema-compatible
	sub, err := delta.SubTableView([]int{0, 1, 2, 3, 4}, delta.ColumnNames())
	if err != nil {
		t.Fatal(err)
	}
	next, stats, err := ooc.Append(sub, core.AppendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if next.T.NumRows() != ooc.T.NumRows()+5 {
		t.Fatalf("append produced %d rows, want %d", next.T.NumRows(), ooc.T.NumRows()+5)
	}
	if stats.Rebinned {
		t.Fatalf("5-row append rebinned: %s", stats.RebinReason)
	}
	if next.OutOfCore() {
		t.Fatal("append result should own inline codes")
	}
	if _, err := next.SelectWith(nil, 6, 5, nil, forceScale()); err != nil {
		t.Fatal(err)
	}
}

// TestOutOfCoreModelRoundTrip pins modelio v5 external references: a
// store-backed model saved next to its code store loads back out-of-core
// and selects identically; a model file without its store, or with a
// mismatched store, fails loudly.
func TestOutOfCoreModelRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := deterministicModel(t)
	cs, err := m.UseCodeStoreFile(filepath.Join(dir, "model.codes"), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	want, err := m.SelectWith(nil, 8, 7, nil, forceScale())
	if err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(dir, "model.subtab")
	if err := modelio.SaveFile(modelPath, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := modelio.LoadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.OutOfCore() {
		t.Fatal("loaded model is not store-backed")
	}
	got, err := loaded.SelectWith(nil, 8, 7, nil, forceScale())
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(got) != fingerprint(want) {
		t.Fatalf("loaded out-of-core model selects differently:\n got %s\nwant %s", fingerprint(got), fingerprint(want))
	}

	// Loading without the store directory must fail with guidance, not
	// guess.
	raw, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := modelio.Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("Load from a bare reader resolved an external store reference")
	}

	// A regenerated (different-seed) store under the referenced name must
	// be rejected by the checksum.
	other := deterministicModel(t)
	if err := other.ExportCodeStore(filepath.Join(dir, "model.codes"), 128); err != nil {
		t.Fatal(err)
	}
	if _, err := modelio.LoadFile(modelPath); err == nil {
		t.Fatal("LoadFile accepted a code store with a different checksum")
	}
}
