package core

import (
	"fmt"
	"sort"

	"subtab/internal/binning"
	"subtab/internal/bitset"
	"subtab/internal/query"
	"subtab/internal/shard"
)

// Streaming predicate-scoped selection: Where/Select/Limit queries compile
// into a code-level filter (binning.CompileFilter) and evaluate over the
// model's CodeSource blocks, with residual cell checks batched through the
// paged column store for bin-boundary rows only. Paged and sharded tables
// therefore filter without materializing a resident copy, and coordinators
// push the conjunction into the per-shard scans. Everything downstream of
// the row set is the historical selection path, so streaming-filter results
// are byte-identical to materialize-then-filter on resident tables.

// streamableQuery reports whether q runs on the streaming path: pure
// conjunction + projection + limit. Group-by synthesizes aggregate rows,
// and an effective order-by (naming a projected column) permutes the row
// order feeding clustering; both need query.Apply's resident-cell
// evaluation. An order-by naming a column outside the projection is a
// no-op in Apply, so it does not block streaming.
func (m *Model) streamableQuery(q *query.Query) bool {
	if len(q.GroupBy) > 0 {
		return false
	}
	if q.OrderBy == "" {
		return true
	}
	if len(q.Select) == 0 {
		return m.T.ColumnIndex(q.OrderBy) < 0
	}
	for _, name := range q.Select {
		if name == q.OrderBy {
			return false
		}
	}
	return true
}

// queryCols resolves a streamable query's working columns — the projection
// in Select order, or every column — with query.Apply's projection errors
// (unknown or duplicate names) reproduced.
func (m *Model) queryCols(q *query.Query) ([]int, error) {
	if len(q.Select) == 0 {
		cols := make([]int, m.T.NumCols())
		for i := range cols {
			cols[i] = i
		}
		return cols, nil
	}
	cols := make([]int, 0, len(q.Select))
	seen := make(map[int]bool, len(q.Select))
	for _, name := range q.Select {
		ci := m.T.ColumnIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("core: applying query: table %s: unknown column %q", m.T.Name, name)
		}
		if seen[ci] {
			return nil, fmt.Errorf("core: applying query: table %s: duplicate column %q", m.T.Name, name)
		}
		seen[ci] = true
		cols = append(cols, ci)
	}
	return cols, nil
}

// selectFiltered runs a selection over the rows matching a predicate
// conjunction, evaluated on the streaming code-level path. scope, when
// non-nil, is a sorted ascending row set (a drill-down neighborhood) the
// matches are intersected with; limit > 0 keeps the first limit matches
// (never combined with a scope — queries carry limits, drill-downs carry
// scopes).
func (m *Model) selectFiltered(preds []query.Predicate, limit int, scope []int, cols []int, k, l int, targets []string, sc ScaleOptions, opt exploreOpts) (*SubTable, error) {
	if src := m.ShardSource(); src != nil && !src.Complete() {
		if len(scope) > 0 {
			return nil, fmt.Errorf("core: drill-down scopes need the table's shards local")
		}
		if limit > 0 {
			return nil, fmt.Errorf("core: a row limit is not supported on tables with remote shards")
		}
		if len(preds) > 0 {
			// Predicate pushdown: each peer filters its own rows inside its
			// scan, so the matching row set never exists on the coordinator.
			opt.preds = preds
			return m.selectFromOpts(nil, cols, k, l, targets, sc, opt)
		}
		// No filter: the historical full-table coordinator path.
		rows := make([]int, m.T.NumRows())
		for i := range rows {
			rows[i] = i
		}
		return m.selectFromOpts(rows, cols, k, l, targets, sc, opt)
	}
	rows, err := m.matchingRows(preds, limit, scope)
	if err != nil {
		return nil, err
	}
	return m.selectFromOpts(rows, cols, k, l, targets, sc, opt)
}

// matchingRows evaluates the conjunction over the model's code source and
// returns the ascending matching rows, intersected with the optional
// sorted scope; limit applies only when no scope is given.
func (m *Model) matchingRows(preds []query.Predicate, limit int, scope []int) ([]int, error) {
	f := m.B.CompileFilter(preds)
	cells, err := m.residualCells(f)
	if err != nil {
		return nil, err
	}
	if scope == nil {
		return f.MatchingRows(m.B.Source(), 0, cells, limit)
	}
	rows, err := f.MatchingRows(m.B.Source(), 0, cells, 0)
	if err != nil {
		return nil, err
	}
	return intersectSorted(rows, scope), nil
}

// residualCells returns the cell reader a compiled filter resolves its
// bin-boundary rows with: the resident columns when present, otherwise the
// paged column store (cellSrc). Exact filters get nil — they are
// guaranteed to issue no cell reads, so husk tables without any cell
// source still filter when every predicate is cut-aligned.
func (m *Model) residualCells(f *binning.Filter) (binning.CellFn, error) {
	if f.Exact() {
		return nil, nil
	}
	if m.T.CellsResident() {
		return func(col int, rows []int) ([]string, error) {
			c := m.T.ColumnAt(col)
			out := make([]string, len(rows))
			for i, r := range rows {
				out[i] = c.CellString(r)
			}
			return out, nil
		}, nil
	}
	if m.cellSrc != nil {
		return m.cellSrc.GatherCells, nil
	}
	return nil, fmt.Errorf("core: residual predicate checks need resident cells or an attached column store")
}

// intersectSorted intersects two ascending int slices.
func intersectSorted(a, b []int) []int {
	out := make([]int, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// FilteredShardSampler is the predicate-pushdown extension of ShardSampler:
// rows/codes are exactly Sample's contract but restricted to the rows
// matching preds (each peer evaluates the conjunction shard-locally), and
// matched is the total matching row count across shards. Implementations
// live in the serving layer.
type FilteredShardSampler interface {
	ShardSampler
	SampleFiltered(cols []int, budget int, preds []query.Predicate) (rows []int, codes binning.CodeSource, matched int, err error)
}

// SampleShardFiltered is SampleShard with a predicate conjunction pushed
// into the scan: the worker evaluates preds over the shard's codes (with
// shard-local residual cell checks), scans only the matching rows, and
// reports how many matched. Empty preds reduce to the unfiltered scan with
// matched = the shard's row count.
func (m *Model) SampleShardFiltered(idx int, cols []int, budget int, seed int64, preds []query.Predicate) (shard.Summary, int, error) {
	src := m.ShardSource()
	if src == nil {
		return shard.Summary{}, 0, fmt.Errorf("core: table is not shard-backed")
	}
	if idx < 0 || idx >= src.NumShards() {
		return shard.Summary{}, 0, fmt.Errorf("core: shard %d out of range [0, %d)", idx, src.NumShards())
	}
	if !src.ShardAvailable(idx) {
		return shard.Summary{}, 0, fmt.Errorf("core: shard %d is not held locally", idx)
	}
	if budget <= 0 {
		return shard.Summary{}, 0, fmt.Errorf("core: sample budget must be positive, got %d", budget)
	}
	for _, c := range cols {
		if c < 0 || c >= m.T.NumCols() {
			return shard.Summary{}, 0, fmt.Errorf("core: column %d out of range [0, %d)", c, m.T.NumCols())
		}
	}
	cs := src.ShardSource(idx)
	start := src.ShardStart(idx)
	if len(preds) == 0 {
		n := 0
		if cs != nil {
			n = cs.NumRows()
		}
		return shard.Scan(m.B, cs, start, cols, budget, seed), n, nil
	}
	f := m.B.CompileFilter(preds)
	cells, err := m.residualCells(f)
	if err != nil {
		return shard.Summary{}, 0, err
	}
	keep, matched, err := f.MatchMask(cs, start, cells)
	if err != nil {
		return shard.Summary{}, 0, err
	}
	return shard.ScanFiltered(m.B, cs, start, cols, budget, seed, keep), matched, nil
}

// ExploreSpec is the consolidated request of an exploration-session select:
// a predicate conjunction, an optional drill-down scope, the sub-table
// shape, and the session's coverage/weighting state. The zero-state spec
// (no scope, no coverage, no bias) selects exactly like
// SelectWith(&query.Query{Where: spec.Where}, ...).
type ExploreSpec struct {
	Where   []query.Predicate
	Scope   []int // sorted ascending source rows bounding the select; nil = whole table
	K, L    int
	Targets []string
	Scale   *ScaleOptions // nil uses the model's configured Options.Scale
	Covered *bitset.Set   // (column, bin) strata already shown this session
	ColBias []float64     // per-source-column score multiplier; nil = unbiased
}

// SelectExplore runs a session-scoped selection: the streaming filter
// bounds the rows, already-covered strata are deprioritized in the
// stratified reservoir, and DataPilot-style column bias weights the column
// step. Deterministic: the result is a fixed function of (model, spec).
func (m *Model) SelectExplore(spec ExploreSpec) (*SubTable, error) {
	sc := m.Opt.Scale
	if spec.Scale != nil {
		sc = *spec.Scale
	}
	cols := make([]int, m.T.NumCols())
	for i := range cols {
		cols[i] = i
	}
	opt := exploreOpts{covered: spec.Covered, colBias: spec.ColBias}
	return m.selectFiltered(spec.Where, 0, spec.Scope, cols, spec.K, spec.L, spec.Targets, sc, opt)
}

// Neighborhood computes a drill-down scope around an anchor, streamed over
// the code source (no cell materialization). col >= 0 expands a cell: the
// rows whose column-col bin equals the anchor's. col < 0 expands a row:
// the rows agreeing with the anchor's bins on at least half (rounded up)
// of viewCols — the columns of the view the anchor was selected from. The
// result is sorted ascending and includes the anchor row.
func (m *Model) Neighborhood(row, col int, viewCols []int) ([]int, error) {
	n := m.T.NumRows()
	if row < 0 || row >= n {
		return nil, fmt.Errorf("core: anchor row %d out of range [0, %d)", row, n)
	}
	src := m.B.Source()
	if ps, ok := src.(binning.PartialCodeSource); ok {
		for blk := 0; blk < src.NumBlocks(); blk++ {
			if !ps.BlockAvailable(blk) {
				return nil, fmt.Errorf("core: drill-down needs every code block local; block %d is remote", blk)
			}
		}
	}
	br := src.BlockRows()
	var scratch []uint16
	if col >= 0 {
		if col >= m.T.NumCols() {
			return nil, fmt.Errorf("core: anchor column %d out of range [0, %d)", col, m.T.NumCols())
		}
		anchor := m.B.Code(col, row)
		var out []int
		for blk := 0; blk < src.NumBlocks(); blk++ {
			codes := src.ColumnBlock(col, blk, scratch)
			scratch = codes
			off := blk * br
			for i, code := range codes {
				if code == anchor {
					out = append(out, off+i)
				}
			}
		}
		return out, nil
	}
	if len(viewCols) == 0 {
		return nil, fmt.Errorf("core: a row drill-down needs the columns of the anchor's view")
	}
	anchors := make([]uint16, len(viewCols))
	for j, c := range viewCols {
		if c < 0 || c >= m.T.NumCols() {
			return nil, fmt.Errorf("core: view column %d out of range [0, %d)", c, m.T.NumCols())
		}
		anchors[j] = m.B.Code(c, row)
	}
	needAgree := (len(viewCols) + 1) / 2
	agree := make([]int, br)
	var out []int
	for blk := 0; blk < src.NumBlocks(); blk++ {
		off := blk * br
		bn := min(br, n-off)
		for i := 0; i < bn; i++ {
			agree[i] = 0
		}
		for j, c := range viewCols {
			codes := src.ColumnBlock(c, blk, scratch)
			scratch = codes
			for i := 0; i < bn; i++ {
				if codes[i] == anchors[j] {
					agree[i]++
				}
			}
		}
		for i := 0; i < bn; i++ {
			if agree[i] >= needAgree {
				out = append(out, off+i)
			}
		}
	}
	return out, nil
}

// ViewItems returns the global (column, bin) item ids a selection
// displays — the strata a session marks covered after showing it. Sorted
// ascending, duplicate-free.
func (m *Model) ViewItems(st *SubTable) []int {
	seen := bitset.New(m.B.NumItems())
	for _, c := range st.ColIdx {
		for _, r := range st.SourceRows {
			seen.Add(int(m.B.ItemOf(c, int(m.B.Code(c, r)))))
		}
	}
	return seen.Indices()
}

// ColumnNullRates returns, per source column, the fraction of rows whose
// cell is missing — the DataPilot quality signal session weights fold into
// the column bias. Computed from the cached bin counts (no cell scan).
func (m *Model) ColumnNullRates() []float64 {
	counts := m.cachedBinCounts()
	out := make([]float64, len(counts))
	n := m.T.NumRows()
	if n == 0 {
		return out
	}
	for c := range counts {
		if mb := m.B.Cols[c].MissingBin; mb >= 0 {
			out[c] = float64(counts[c][mb]) / float64(n)
		}
	}
	return out
}

// biasedColumns is the session-weighted column step: each candidate scores
// (1 + salience) × bias, where salience is the column's strongest affinity
// to any other candidate (patternGroupColumns' measure) and bias is the
// caller's per-source-column multiplier (null-rate and view-count
// penalties). The top need columns win; ties break to the lower column
// index, so the pick is deterministic.
func (m *Model) biasedColumns(candCols []int, need int, bias []float64) []int {
	if need >= len(candCols) {
		return append([]int(nil), candCols...)
	}
	type scored struct {
		c int
		s float64
	}
	sc := make([]scored, len(candCols))
	for i, c := range candCols {
		sal := 0.0
		for j, o := range candCols {
			if j != i {
				if a := m.ColumnAffinity(c, o); a > sal {
					sal = a
				}
			}
		}
		b := 1.0
		if c < len(bias) {
			b = bias[c]
		}
		sc[i] = scored{c: c, s: (1 + sal) * b}
	}
	sort.Slice(sc, func(x, y int) bool {
		if sc[x].s != sc[y].s {
			return sc[x].s > sc[y].s
		}
		return sc[x].c < sc[y].c
	})
	out := make([]int, need)
	for i := range out {
		out[i] = sc[i].c
	}
	sort.Ints(out)
	return out
}
