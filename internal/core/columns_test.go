package core

import (
	"testing"

	"subtab/internal/binning"
	"subtab/internal/metrics"
	"subtab/internal/rules"
)

// TestColumnAffinityStructure verifies that the precomputed column
// affinities rank truly associated column pairs above noise pairs on the
// planted table (the property pattern-group selection rests on).
func TestColumnAffinityStructure(t *testing.T) {
	tab := ruleTable(t, 1200, 21)
	opt := testOptions()
	// KDE binning recovers the fixture's gapped regimes as bins, which is
	// what aligns bin-level co-occurrence with the planted pattern.
	opt.Bins.Strategy = binning.KDEValleys
	opt.Embedding.Dim = 24
	opt.Embedding.Epochs = 6
	m, err := Preprocess(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	ai := tab.ColumnIndex("a")
	bi := tab.ColumnIndex("b")
	ei := tab.ColumnIndex("e") // noise column
	assoc := m.ColumnAffinity(ai, bi)
	noise := m.ColumnAffinity(ai, ei)
	if assoc <= noise {
		t.Fatalf("a-b affinity %v should exceed a-e (noise) affinity %v", assoc, noise)
	}
	// Self-affinity is defined as zero.
	if m.ColumnAffinity(ai, ai) != 0 {
		t.Fatal("self affinity should be 0")
	}
	// Symmetry.
	if m.ColumnAffinity(ai, bi) != m.ColumnAffinity(bi, ai) {
		t.Fatal("affinity must be symmetric")
	}
}

// TestCentroidStrategy runs the literal Algorithm 2 column step end to end.
func TestCentroidStrategy(t *testing.T) {
	tab := ruleTable(t, 300, 22)
	opt := testOptions()
	opt.Columns = Centroids
	m, err := Preprocess(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Select(5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cols) != 3 || len(st.SourceRows) != 5 {
		t.Fatalf("dims = %dx%d", len(st.SourceRows), len(st.Cols))
	}
}

// TestPatternGroupsBeatCentroidsOnCoverage is the column-strategy ablation
// as a test: on rule-rich data the pattern-group step should achieve at
// least the coverage of the literal centroid step.
func TestPatternGroupsBeatCentroidsOnCoverage(t *testing.T) {
	tab := ruleTable(t, 800, 23)
	base := testOptions()
	base.Embedding.Epochs = 6

	pg := base
	pg.Columns = PatternGroups
	mPG, err := Preprocess(tab, pg)
	if err != nil {
		t.Fatal(err)
	}
	ct := base
	ct.Columns = Centroids
	mCT, err := Preprocess(tab, ct)
	if err != nil {
		t.Fatal(err)
	}

	rs, err := rules.Mine(mPG.B, rules.Options{MinSupport: 0.15, MinConfidence: 0.6, MinRuleSize: 2, MaxItemsetSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no rules on planted data")
	}
	e := metrics.NewEvaluator(mPG.B, rs, 0.5)

	stPG, err := mPG.Select(5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	stCT, err := mCT.Select(5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	covPG := e.CellCoverage(stPG.AsMetricSubTable())
	covCT := e.CellCoverage(stCT.AsMetricSubTable())
	if covPG < covCT-0.05 {
		t.Fatalf("pattern groups coverage %v clearly below centroids %v", covPG, covCT)
	}
}

func TestGreedyCore(t *testing.T) {
	// Affinity matrix with a strong pair (0,1), a hub (2) weakly connected
	// to everything: the core must start with the strong pair.
	aff := [][]float64{
		{0, 10, 3, 1},
		{10, 0, 3, 1},
		{3, 3, 0, 3},
		{1, 1, 3, 0},
	}
	got := greedyCore(aff, []int{0, 1, 2, 3})
	if !(got[0] == 0 && got[1] == 1 || got[0] == 1 && got[1] == 0) {
		t.Fatalf("core should start with the strongest pair, got %v", got)
	}
	if len(got) != 4 {
		t.Fatalf("core must keep all members, got %v", got)
	}
	// Tiny groups pass through.
	small := greedyCore(aff, []int{2, 3})
	if len(small) != 2 {
		t.Fatalf("small group = %v", small)
	}
}

func TestPatternGroupsNeedExceedsCandidates(t *testing.T) {
	tab := ruleTable(t, 100, 24)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	cand := []int{0, 1, 2}
	got := m.patternGroupColumns(cand, []int{0, 1, 2, 3, 4}, 10)
	if len(got) != 3 {
		t.Fatalf("should return all candidates when budget exceeds them: %v", got)
	}
}
