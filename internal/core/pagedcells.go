package core

import (
	"fmt"

	"subtab/internal/colstore"
	"subtab/internal/f32"
	"subtab/internal/table"
)

// Paged raw columns: a model's displayed cells — the per-cell state only the
// final k×l view assembly reads — can live in an on-disk column store
// (internal/colstore) instead of memory, completing the out-of-core story
// the code store began. ExportColumnStore writes them, AttachColumnStore
// switches view assembly to gather through the store, and DropInlineCells
// releases the in-memory columns; from then on a selection renders by
// fetching only the selected rows' blocks. Rendered views are byte-identical
// to the in-memory path. Operations that need the raw table back — query
// evaluation, incremental append — transparently materialize a private
// resident copy (the analogue of binning.MaterializedCodes).

// cellMaterializer is the optional CellSource extension a local column store
// provides; over-the-wire coordinator sources cannot (and the operations
// that need it are rejected on coordinators before reaching here).
type cellMaterializer interface {
	MaterializeTable(name string) (*table.Table, error)
}

// ExportColumnStore writes the model's raw displayed columns to a paged
// column store file at path (blockRows <= 0 uses colstore.DefaultBlockRows).
// The store is written to a temp file and renamed into place, so a crash
// cannot leave a plausible partial store behind.
func (m *Model) ExportColumnStore(path string, blockRows int) error {
	if !m.T.CellsResident() {
		return fmt.Errorf("core: exporting column store: table cells are already paged")
	}
	if err := colstore.WriteTable(path, m.T, blockRows); err != nil {
		return fmt.Errorf("core: exporting column store: %w", err)
	}
	return nil
}

// AttachColumnStore attaches an external cell source (typically an opened
// colstore.Store for a file ExportColumnStore wrote, or a coordinator's
// over-the-wire shard gatherer) after validating its geometry against the
// table schema. Attach before the model starts serving; it must not race
// in-flight selections.
func (m *Model) AttachColumnStore(src table.CellSource) error {
	if src.NumRows() != m.T.NumRows() {
		return fmt.Errorf("core: cell source has %d rows, table has %d", src.NumRows(), m.T.NumRows())
	}
	if src.NumCols() != m.T.NumCols() {
		return fmt.Errorf("core: cell source has %d columns, table has %d", src.NumCols(), m.T.NumCols())
	}
	for c := 0; c < m.T.NumCols(); c++ {
		if got, want := src.ColumnName(c), m.T.ColumnAt(c).Name; got != want {
			return fmt.Errorf("core: cell source column %d is %q, table has %q", c, got, want)
		}
	}
	m.cellSrc = src
	return nil
}

// DropInlineCells releases the in-memory raw columns of a model with an
// attached cell source, leaving the table as a schema husk (names, kinds and
// row count only). The bin counts are computed first so no later stage needs
// the cells back for counting. Like AttachColumnStore, not safe to race
// in-flight selections.
func (m *Model) DropInlineCells() error {
	if m.cellSrc == nil {
		return fmt.Errorf("core: dropping inline cells without an attached cell source")
	}
	m.cachedBinCounts()
	m.T.DropCells()
	return nil
}

// UseColumnStoreFile is the one-call form of the export→open→attach→drop
// sequence: it writes the model's raw columns to path, opens the store,
// switches view assembly onto it and releases the inline columns. The
// returned store is owned by the model for reading but may be Closed by the
// caller when the model is discarded (unclosed stores release their mapping
// when garbage collected).
func (m *Model) UseColumnStoreFile(path string, blockRows int) (*colstore.Store, error) {
	if err := m.ExportColumnStore(path, blockRows); err != nil {
		return nil, err
	}
	cs, err := colstore.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: reopening exported column store: %w", err)
	}
	if err := m.AttachColumnStore(cs); err != nil {
		cs.Close()
		return nil, err
	}
	if err := m.DropInlineCells(); err != nil {
		cs.Close()
		return nil, err
	}
	return cs, nil
}

// CellsPaged reports whether the model's raw columns are store-backed
// (inline cells dropped).
func (m *Model) CellsPaged() bool { return !m.T.CellsResident() }

// CellSource returns the attached cell source (nil when views are assembled
// from the in-memory table).
func (m *Model) CellSource() table.CellSource { return m.cellSrc }

// residentTable returns m.T when its cells are resident, else a private
// typed copy materialized from the attached cell source — the whole-table
// escape hatch for query evaluation and append. The copy is never installed
// on the model; callers own it and its footprint.
func (m *Model) residentTable() (*table.Table, error) {
	if m.T.CellsResident() {
		return m.T, nil
	}
	mat, ok := m.cellSrc.(cellMaterializer)
	if !ok {
		return nil, fmt.Errorf("core: table cells are paged and the cell source cannot materialize them (remote shards?)")
	}
	return mat.MaterializeTable(m.T.Name)
}

// ReleaseVectorCache frees the model's full-table tuple-vector cache and the
// memoized candidate samples — the two per-model caches that grow with the
// table — and settles both to zero bytes with the governor. Serving layers
// call it when a model leaves the warm set (store eviction), so an evicted
// tenant's O(rows×dim) cache does not outlive its residency even while
// other references to the model exist. Safe to race in-flight selections:
// a selection that already took a header copy of the matrix keeps its
// (immutable) backing array; a build racing this release re-publishes and
// re-accounts under a later generation. Safe to call under the serving
// store's mutex — the settles here only ever shrink, and Shrink never runs
// eviction callbacks.
func (m *Model) ReleaseVectorCache() {
	m.fullVecsMu.Lock()
	m.fullVecsReady.Store(false)
	m.fullVecs = f32.Matrix{}
	m.fullVecsGen++
	vgen := m.fullVecsGen
	m.fullVecsMu.Unlock()
	m.vecAccount().Settle(vgen, 0)

	m.sampleMu.Lock()
	m.sampleCache = nil
	m.sampleGen++
	sgen := m.sampleGen
	m.sampleMu.Unlock()
	m.sampleAccount().Settle(sgen, 0)

	if r, ok := m.shardSampler.(CacheReleaser); ok {
		r.ReleaseCache()
	}
}
