package core

import (
	"math/rand"
	"testing"

	"subtab/internal/table"
)

// skewedTable has a protected column with a dominant group (90%) and two
// small minorities (5% each), plus feature columns correlated with groups.
func skewedTable(t *testing.T, n int, seed int64) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	group := make([]string, n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		p := rng.Float64()
		switch {
		case p < 0.9:
			group[i] = "majority"
			x[i] = rng.Float64() * 10
		case p < 0.95:
			group[i] = "minorityA"
			x[i] = 100 + rng.Float64()*10
		default:
			group[i] = "minorityB"
			x[i] = 200 + rng.Float64()*10
		}
		y[i] = rng.Float64() * 5
	}
	tab := table.New("skewed")
	if err := tab.AddColumn(table.NewCategorical("group", group)); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn(table.NewNumeric("x", x)); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn(table.NewNumeric("y", y)); err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestSelectFairCoversAllGroups(t *testing.T) {
	tab := skewedTable(t, 600, 31)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.SelectFair(6, 3, nil, FairnessOptions{GroupCol: "group", MinPerGroup: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := m.GroupCounts(st, "group")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"majority", "minorityA", "minorityB"} {
		if counts[g] < 1 {
			t.Fatalf("group %q unrepresented: %v", g, counts)
		}
	}
	if len(st.SourceRows) != 6 {
		t.Fatalf("rows = %d, want 6 (fairness must not change k)", len(st.SourceRows))
	}
}

func TestSelectFairMinPerGroup(t *testing.T) {
	tab := skewedTable(t, 600, 32)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.SelectFair(9, 3, nil, FairnessOptions{GroupCol: "group", MinPerGroup: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := m.GroupCounts(st, "group")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"majority", "minorityA", "minorityB"} {
		if counts[g] < 2 {
			t.Fatalf("group %q has %d rows, want >= 2: %v", g, counts[g], counts)
		}
	}
}

func TestSelectFairUnknownColumn(t *testing.T) {
	tab := skewedTable(t, 100, 33)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SelectFair(4, 2, nil, FairnessOptions{GroupCol: "nope"}); err == nil {
		t.Fatal("unknown fairness column should error")
	}
}

func TestSelectFairAlreadyFair(t *testing.T) {
	// With a balanced group column, the plain selection is usually already
	// fair; SelectFair must not degrade it.
	rng := rand.New(rand.NewSource(34))
	n := 300
	group := make([]string, n)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		group[i] = []string{"a", "b"}[i%2]
		x[i] = float64(i%2)*100 + rng.Float64()*10
	}
	tab := table.New("balanced")
	if err := tab.AddColumn(table.NewCategorical("group", group)); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn(table.NewNumeric("x", x)); err != nil {
		t.Fatal(err)
	}
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.SelectFair(4, 2, nil, FairnessOptions{GroupCol: "group"})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := m.GroupCounts(st, "group")
	if err != nil {
		t.Fatal(err)
	}
	if counts["a"] < 1 || counts["b"] < 1 {
		t.Fatalf("balanced groups should both appear: %v", counts)
	}
}

func TestGroupCountsErrors(t *testing.T) {
	tab := skewedTable(t, 100, 35)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Select(3, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.GroupCounts(st, "nope"); err == nil {
		t.Fatal("unknown column should error")
	}
}
