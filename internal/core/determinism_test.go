// Determinism regression tests for the parallel selection pipeline: with a
// fixed ClusterSeed (and single-worker embedding training), Select must be a
// pure function of the model — across repeated calls, across concurrent
// calls, and across a modelio save/load round-trip. The parallel paths
// (tuple-vector fill, k-means assignment, affinity fill, Jaccard diversity
// scan) only ever write disjoint slots and reduce in fixed order, so any
// scheduling-dependent divergence is a bug this test exists to catch.
package core_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"subtab/internal/binning"
	"subtab/internal/core"
	"subtab/internal/corpus"
	"subtab/internal/datagen"
	"subtab/internal/modelio"
	"subtab/internal/query"
	"subtab/internal/word2vec"
)

func deterministicModel(t *testing.T) *core.Model {
	t.Helper()
	ds, err := datagen.ByName("FL", 900, 5)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{
		Bins:        binning.Options{MaxBins: 5, Strategy: binning.KDEValleys, Seed: 5},
		Corpus:      corpus.Options{MaxSentences: 100_000, TupleSentences: true, Seed: 5},
		Embedding:   word2vec.Options{Dim: 16, Epochs: 2, Seed: 5},
		ClusterSeed: 11,
	}
	m, err := core.Preprocess(ds.T, opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fingerprint renders every observable part of a selection.
func fingerprint(st *core.SubTable) string {
	return fmt.Sprintf("%v|%v|%v|%s", st.SourceRows, st.ColIdx, st.Cols, st.View.Render(nil))
}

func TestSelectByteIdenticalAcrossCalls(t *testing.T) {
	m := deterministicModel(t)
	first, err := m.Select(8, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(first)
	for i := 0; i < 3; i++ {
		st, err := m.Select(8, 7, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprint(st); got != want {
			t.Fatalf("Select run %d diverged:\n got %s\nwant %s", i, got, want)
		}
	}

	q := &query.Query{Limit: 400}
	qFirst, err := m.SelectQuery(q, 6, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	qWant := fingerprint(qFirst)
	for i := 0; i < 3; i++ {
		st, err := m.SelectQuery(q, 6, 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprint(st); got != qWant {
			t.Fatalf("SelectQuery run %d diverged", i)
		}
	}
}

func TestSelectByteIdenticalUnderConcurrency(t *testing.T) {
	m := deterministicModel(t)
	base, err := m.Select(8, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(base)
	const goroutines = 8
	got := make([]string, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st, err := m.Select(8, 7, nil)
			if err != nil {
				errs[g] = err
				return
			}
			got[g] = fingerprint(st)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if got[g] != want {
			t.Fatalf("concurrent Select %d diverged from serial result", g)
		}
	}
}

func TestSelectByteIdenticalAfterModelRoundTrip(t *testing.T) {
	m := deterministicModel(t)
	direct, err := m.Select(8, 7, nil)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := modelio.Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := modelio.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := loaded.Select(8, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(direct) != fingerprint(restored) {
		t.Fatalf("restored model selects differently:\n got %s\nwant %s",
			fingerprint(restored), fingerprint(direct))
	}
}
