package core

import (
	"subtab/internal/cluster"
	"subtab/internal/f32"
)

// ScaleOptions configures the large-table selection mode: above a row-count
// threshold, Select clusters a deterministic stratified sample of the
// candidate rows with mini-batch k-means instead of running exact k-means
// over every tuple-vector, turning the per-display cost from O(rows) into
// O(SampleBudget) and opening million-row tables to interactive selection.
//
// The mode is a pure gate: below the threshold (or with the zero value) the
// selection path is bit-for-bit the exact path, a guarantee pinned by the
// golden fingerprint tests. Above it, selections remain deterministic — the
// sampler is min-hash based and the mini-batch clustering is seeded — so the
// same model and request always yield the same sub-table; the sub-table just
// comes from a principled sample rather than the full relation.
type ScaleOptions struct {
	// Threshold activates the scaled path when the candidate row set (the
	// whole table, or a query result) has at least this many rows. 0 (the
	// default) disables the mode entirely; 1 forces it for any input, which
	// the equivalence tests use to fingerprint the scaled path on small
	// tables.
	Threshold int
	// SampleBudget caps the candidate rows fed to clustering (default
	// 20000). The stratified sampler guarantees every non-empty (column,
	// bin) item among the candidates is represented, budget permitting.
	SampleBudget int
	// BatchSize is the mini-batch size (default 1024).
	BatchSize int
	// MaxIter bounds mini-batch iterations (default 100).
	MaxIter int
}

// Active reports whether the scaled path handles a candidate set of n rows.
func (s ScaleOptions) Active(n int) bool { return s.Threshold > 0 && n >= s.Threshold }

func (s ScaleOptions) withDefaults() ScaleOptions {
	if s.SampleBudget <= 0 {
		s.SampleBudget = 20000
	}
	if s.BatchSize <= 0 {
		s.BatchSize = 1024
	}
	if s.MaxIter <= 0 {
		s.MaxIter = 100
	}
	return s
}

// scaleSampleSeed decorrelates the sampler's hash domain from the k-means
// seeding rng, which also derives from ClusterSeed.
const scaleSampleSeed = 0x5ca1ab1e5eed

// sampleCandidates picks the scaled path's candidate rows: a deterministic
// stratified reservoir over the (column, bin) items of the candidate set.
// Full-table samples are memoized per budget (the cache returns exactly
// what a fresh scan would, so warm and cold selections stay byte-identical);
// the lock doubles as a single-flight so concurrent first selections do not
// scan the table twice. Callers must not mutate the returned slice.
func (m *Model) sampleCandidates(rows, cols []int, budget int) []int {
	seed := m.Opt.ClusterSeed ^ scaleSampleSeed
	if len(rows) != m.T.NumRows() || !identityRows(rows) || !identityCols(cols, m.T.NumCols()) {
		return stratifiedReservoir(m.B, rows, cols, budget, seed)
	}
	m.sampleMu.Lock()
	defer m.sampleMu.Unlock()
	if s, ok := m.sampleCache[budget]; ok {
		return s
	}
	s := stratifiedReservoir(m.B, rows, cols, budget, seed)
	if m.sampleCache == nil {
		m.sampleCache = make(map[int][]int, 1)
	} else if len(m.sampleCache) >= 8 {
		// Warm serving uses one or two budgets; an adversarial budget sweep
		// must not grow the model unboundedly.
		clear(m.sampleCache)
	}
	m.sampleCache[budget] = s
	return s
}

// sampledRowVectors builds the tuple-vector slab for a sampled candidate
// set. A warm full-table cache turns the build into a row gather; otherwise
// only the sampled rows are computed — the scaled path never materializes
// vectors for rows the sample dropped, which is the point of sampling
// before embedding lookup on million-row tables.
func (m *Model) sampledRowVectors(rows, cols []int) (f32.Matrix, func()) {
	dim := m.Emb.Dim()
	buf := getVecBuf(len(rows) * dim)
	mat := f32.Wrap(len(rows), dim, *buf)
	if identityCols(cols, m.T.NumCols()) && m.fullVecsReady.Load() {
		f32.GatherRows(mat, m.fullVecs, rows)
	} else {
		f32.ParallelRange(len(rows), f32.Workers(len(rows)), func(start, end int) {
			idx := make([]int32, len(cols))
			for i := start; i < end; i++ {
				m.rowVectorInto(mat.Row(i), rows[i], cols, idx)
			}
		})
	}
	return mat, func() { putVecBuf(buf) }
}

// scaledRowClustering is the row step of the scaled path: cluster the
// sampled tuple-vectors with seeded mini-batch k-means. The caller maps
// representative indices back through the sample to real row ids.
func (m *Model) scaledRowClustering(vecs f32.Matrix, k int, scale ScaleOptions) *cluster.Result {
	return cluster.MiniBatchKMeans(vecs, k, cluster.MiniBatchOptions{
		BatchSize: scale.BatchSize,
		MaxIter:   scale.MaxIter,
		Seed:      m.Opt.ClusterSeed,
	})
}
