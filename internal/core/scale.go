package core

import (
	"subtab/internal/binning"
	"subtab/internal/cluster"
	"subtab/internal/f32"
)

// ScaleOptions configures the large-table selection mode: above a row-count
// threshold, Select clusters a deterministic stratified sample of the
// candidate rows with mini-batch k-means instead of running exact k-means
// over every tuple-vector, turning the per-display cost from O(rows) into
// O(SampleBudget) and opening million-row tables to interactive selection.
//
// The mode is a pure gate: below the threshold (or with the zero value) the
// selection path is bit-for-bit the exact path, a guarantee pinned by the
// golden fingerprint tests. Above it, selections remain deterministic — the
// sampler is min-hash based and the mini-batch clustering is seeded — so the
// same model and request always yield the same sub-table; the sub-table just
// comes from a principled sample rather than the full relation.
type ScaleOptions struct {
	// Threshold activates the scaled path when the candidate row set (the
	// whole table, or a query result) has at least this many rows. 0 (the
	// default) disables the mode entirely; 1 forces it for any input, which
	// the equivalence tests use to fingerprint the scaled path on small
	// tables.
	Threshold int
	// SampleBudget caps the candidate rows fed to clustering (default
	// 20000). The stratified sampler guarantees every non-empty (column,
	// bin) item among the candidates is represented, budget permitting.
	SampleBudget int
	// BatchSize is the mini-batch size (default 1024).
	BatchSize int
	// MaxIter bounds mini-batch iterations (default 100).
	MaxIter int
	// SlabBudgetBytes caps the in-memory size of the sampled tuple-vector
	// slab: a sample whose vectors (SampleBudget × dim × 4 bytes) exceed
	// the budget is built chunk by chunk into a spill file and clustered by
	// chunked reads, keeping the selection's resident footprint bounded
	// regardless of the sample budget. 0 (the default) never spills — the
	// historical in-memory behaviour. Selections are bit-identical either
	// way.
	SlabBudgetBytes int64
}

// Active reports whether the scaled path handles a candidate set of n rows.
func (s ScaleOptions) Active(n int) bool { return s.Threshold > 0 && n >= s.Threshold }

func (s ScaleOptions) withDefaults() ScaleOptions {
	if s.SampleBudget <= 0 {
		s.SampleBudget = 20000
	}
	if s.BatchSize <= 0 {
		s.BatchSize = 1024
	}
	if s.MaxIter <= 0 {
		s.MaxIter = 100
	}
	return s
}

// scaleSampleSeed decorrelates the sampler's hash domain from the k-means
// seeding rng, which also derives from ClusterSeed.
const scaleSampleSeed = 0x5ca1ab1e5eed

// sampleCandidates picks the scaled path's candidate rows: a deterministic
// stratified reservoir over the (column, bin) items of the candidate set.
// Full-table samples are memoized per budget (the cache returns exactly
// what a fresh scan would, so warm and cold selections stay byte-identical);
// the lock doubles as a single-flight so concurrent first selections do not
// scan the table twice. Callers must not mutate the returned slice.
func (m *Model) sampleCandidates(rows, cols []int, budget int) []int {
	seed := m.Opt.ClusterSeed ^ scaleSampleSeed
	if len(rows) != m.T.NumRows() || !identityRows(rows) || !identityCols(cols, m.T.NumCols()) {
		return stratifiedReservoir(m.B, rows, cols, budget, seed)
	}
	m.sampleMu.Lock()
	if s, ok := m.sampleCache[budget]; ok {
		m.sampleMu.Unlock()
		return s
	}
	s := stratifiedReservoir(m.B, rows, cols, budget, seed)
	if m.sampleCache == nil {
		m.sampleCache = make(map[int][]int, 1)
	} else if len(m.sampleCache) >= 8 {
		// Warm serving uses one or two budgets; an adversarial budget sweep
		// must not grow the model unboundedly.
		clear(m.sampleCache)
	}
	m.sampleCache[budget] = s
	bytes := sampleCacheBytes(m.sampleCache)
	m.sampleGen++
	gen := m.sampleGen
	m.sampleMu.Unlock()
	// Settle outside sampleMu: the grow may run the store's evictor, which
	// takes this very mutex via ReleaseVectorCache.
	m.sampleAccount().Settle(gen, bytes)
	return s
}

// sampledRowSlab builds the tuple-vector slab for a sampled candidate set.
// Under the slab budget (or with no budget) the vectors live in a pooled
// in-memory matrix; over it they are computed chunk by chunk into a spill
// file, so the resident cost of a scaled select is the chunk, not the
// sample. A warm full-table cache turns the in-memory build into a row
// gather; otherwise only the sampled rows are computed — the scaled path
// never materializes vectors for rows the sample dropped, which is the
// point of sampling before embedding lookup on million-row tables.
// The returned cleanup releases the pooled buffer or the spill file.
// src, when non-nil, is a code overlay (the coordinator's gathered shard
// codes) that replaces the model's own code source for the gather.
func (m *Model) sampledRowSlab(rows, cols []int, scale ScaleOptions, src binning.CodeSource) (*f32.Slab, func(), error) {
	dim := m.Emb.Dim()
	need := int64(len(rows)) * int64(dim) * 4
	if scale.SlabBudgetBytes <= 0 || need <= scale.SlabBudgetBytes {
		buf := getVecBuf(len(rows) * dim)
		mat := f32.Wrap(len(rows), dim, *buf)
		if fv, ok := m.cachedFullVecs(); ok && src == nil && identityCols(cols, m.T.NumCols()) {
			f32.GatherRows(mat, fv, rows)
		} else {
			m.gatherTupleVectors(mat, rows, cols, src)
		}
		return f32.WrapSlab(mat), func() { putVecBuf(buf) }, nil
	}
	slab, err := f32.NewSpillSlab(len(rows), dim, "")
	if err != nil {
		return nil, nil, err
	}
	chunkRows := min(slab.ChunkRows(), len(rows))
	buf := getVecBuf(chunkRows * dim)
	defer putVecBuf(buf)
	for start := 0; start < len(rows); start += chunkRows {
		end := min(start+chunkRows, len(rows))
		chunk := f32.Wrap(end-start, dim, (*buf)[:(end-start)*dim])
		m.gatherTupleVectors(chunk, rows[start:end], cols, src)
		if err := slab.WriteChunk(start, chunk); err != nil {
			slab.Close()
			return nil, nil, err
		}
	}
	return slab, func() { slab.Close() }, nil
}

// gatherTupleVectors fills dst with the tuple-vectors of the given rows
// over cols. With resident codes it is the historical per-row parallel
// fill; for a store-backed binning it builds the gather-index slab in
// column-major block order — one sequential pass per column through the
// code store, the access pattern the store's layout is built for — and
// pools whole rows with the f32.MeanPoolRows kernel. Both paths compute
// identical vectors (same per-row index values, same pooling arithmetic).
// A non-nil src overrides where the codes are read (the coordinator
// overlay); otherwise the model's own inline codes or attached store.
func (m *Model) gatherTupleVectors(dst f32.Matrix, rows, cols []int, src binning.CodeSource) {
	if src == nil {
		if m.B.HasInlineCodes() {
			f32.ParallelRange(len(rows), f32.Workers(len(rows)), func(start, end int) {
				idx := make([]int32, len(cols))
				for i := start; i < end; i++ {
					m.rowVectorInto(dst.Row(i), rows[i], cols, idx)
				}
			})
			return
		}
		src = m.B.Source()
	}
	k := len(cols)
	idx := make([]int32, len(rows)*k)
	br := src.BlockRows()
	if len(rows)*8 < src.NumRows() {
		// Sparse gather: the sampled rows touch a small fraction of every
		// block, so per-cell random access (a two-byte mmap load) beats
		// decoding whole blocks to use a sliver of each.
		f32.ParallelRange(len(rows), f32.Workers(len(rows)), func(start, end int) {
			for i := start; i < end; i++ {
				r := rows[i]
				for j, c := range cols {
					idx[i*k+j] = m.itemRow[m.B.ItemOf(c, int(src.Code(c, r)))]
				}
			}
		})
	} else {
		var scratch []uint16
		for j, c := range cols {
			base := m.B.ItemOf(c, 0)
			blk := -1
			var codes []uint16
			for i, r := range rows {
				if nb := r / br; nb != blk {
					blk = nb
					codes = src.ColumnBlock(c, blk, scratch)
					scratch = codes
				}
				idx[i*k+j] = m.itemRow[base+int32(codes[r-blk*br])]
			}
		}
	}
	f32.MeanPoolRows(dst, m.items, idx, k)
}

// scaledRowClustering is the row step of the scaled path: cluster the
// sampled tuple-vector slab with seeded mini-batch k-means (resident slabs
// take the matrix fast path; spilled slabs are clustered through chunked
// reads with bit-identical results). The caller maps representative
// indices back through the sample to real row ids.
func (m *Model) scaledRowClustering(vecs *f32.Slab, k int, scale ScaleOptions) *cluster.Result {
	return cluster.MiniBatchKMeansSource(vecs, k, cluster.MiniBatchOptions{
		BatchSize: scale.BatchSize,
		MaxIter:   scale.MaxIter,
		Seed:      m.Opt.ClusterSeed,
	})
}
