// Property sweep pinning the scatter/gather contract: for any split of a
// table's rows into shards — one shard, many shards, empty shards,
// block-unaligned boundaries — the merged per-shard summaries must
// reproduce the single-store stratified reservoir byte for byte, both
// through the explicit Scan/Merge/Finish protocol (what the HTTP
// coordinator runs) and through the shard-backed fast path inside
// stratifiedReservoir (what a local sharded model runs).
package core

import (
	"math/rand"
	"testing"

	"subtab/internal/binning"
	"subtab/internal/datagen"
	"subtab/internal/shard"
)

// shardMemSource is an in-memory CodeSource over a row slice of a table's
// codes, with its own block granularity so splits need not align with any
// store geometry.
type shardMemSource struct {
	codes     [][]uint16
	blockRows int
}

func (s *shardMemSource) NumRows() int {
	if len(s.codes) == 0 {
		return 0
	}
	return len(s.codes[0])
}
func (s *shardMemSource) NumCols() int   { return len(s.codes) }
func (s *shardMemSource) BlockRows() int { return s.blockRows }
func (s *shardMemSource) NumBlocks() int {
	return (s.NumRows() + s.blockRows - 1) / s.blockRows
}
func (s *shardMemSource) ColumnBlock(c, blk int, scratch []uint16) []uint16 {
	lo := blk * s.blockRows
	hi := min(lo+s.blockRows, s.NumRows())
	return s.codes[c][lo:hi]
}
func (s *shardMemSource) Code(c, r int) uint16 { return s.codes[c][r] }

// randomCuts returns sorted shard boundaries 0 = c0 <= ... <= ck = n,
// biased to produce empty shards and unaligned splits.
func randomCuts(rng *rand.Rand, n, shards int) []int {
	cuts := make([]int, shards+1)
	cuts[shards] = n
	for i := 1; i < shards; i++ {
		if rng.Intn(5) == 0 {
			cuts[i] = cuts[i-1] // deliberate empty shard
			continue
		}
		cuts[i] = rng.Intn(n + 1)
	}
	inner := cuts[1:shards]
	for i := 1; i < len(inner); i++ {
		for j := i; j > 0 && inner[j] < inner[j-1]; j-- {
			inner[j], inner[j-1] = inner[j-1], inner[j]
		}
	}
	return cuts
}

// shardSplit wraps each [cuts[i], cuts[i+1]) row range of b's codes as its
// own in-memory shard source.
func shardSplit(b *binning.Binned, cuts []int, rng *rand.Rand) ([]binning.CodeSource, []int) {
	var srcs []binning.CodeSource
	var counts []int
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		sub := make([][]uint16, b.NumCols())
		for c := range sub {
			sub[c] = b.Codes[c][lo:hi]
		}
		srcs = append(srcs, &shardMemSource{codes: sub, blockRows: 1 + rng.Intn(50)})
		counts = append(counts, hi-lo)
	}
	return srcs, counts
}

func TestShardMergeMatchesSingleScan(t *testing.T) {
	const n = 1100
	b := sampleTestBinned(t, n, 5)
	rows, cols := identity(n), allCols(b)

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		shards := 1 + rng.Intn(6)
		cuts := randomCuts(rng, n, shards)
		srcs, counts := shardSplit(b, cuts, rng)
		for _, budget := range []int{40, 171, 500} {
			for _, seed := range []int64{3, -11, 1 << 33} {
				want := stratifiedReservoir(b, rows, cols, budget, seed)

				// The explicit protocol, as a coordinator runs it: one Scan
				// per shard (shuffled merge order — the merge is
				// commutative), MergeSummaries, FinishSample.
				sums := make([]shard.Summary, len(srcs))
				for i, cs := range srcs {
					sums[i] = shard.Scan(b, cs, cuts[i], cols, budget, seed)
				}
				rng.Shuffle(len(sums), func(i, j int) { sums[i], sums[j] = sums[j], sums[i] })
				strata, cands := shard.MergeSummaries(sums, b.NumItems())
				got := shard.FinishSample(strata, cands, budget)
				assertSameSample(t, "protocol", trial, budget, seed, cuts, got, want)

				// The in-process fast path: a binned twin switched onto the
				// sharded source, sampled through stratifiedReservoir itself.
				src, err := shard.NewSource(srcs, counts, b.NumCols())
				if err != nil {
					t.Fatal(err)
				}
				twin := rebinnedTwin(t, n, 5)
				if err := twin.AttachStore(src); err != nil {
					t.Fatal(err)
				}
				if err := twin.DropInlineCodes(); err != nil {
					t.Fatal(err)
				}
				got2 := stratifiedReservoir(twin, rows, cols, budget, seed)
				assertSameSample(t, "fan-out", trial, budget, seed, cuts, got2, want)
			}
		}
	}
}

// rebinnedTwin rebuilds the same binned table (same data, same binning
// seed) so attaching a store to it cannot alias the original's codes.
func rebinnedTwin(t *testing.T, n int, seed int64) *binning.Binned {
	t.Helper()
	ds := datagen.Generic(n, 6, 5, seed)
	b, err := binning.Bin(ds.T, binning.Options{MaxBins: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func assertSameSample(t *testing.T, path string, trial, budget int, seed int64, cuts []int, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s trial %d budget %d seed %d cuts %v: %d rows sharded, %d single-scan", path, trial, budget, seed, cuts, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s trial %d budget %d seed %d cuts %v: sample[%d] = %d sharded, %d single-scan", path, trial, budget, seed, cuts, i, got[i], want[i])
		}
	}
}

// Budget at or above the row count must reproduce the early-return path
// (the whole candidate set), sharded or not.
func TestShardMergeFullBudget(t *testing.T) {
	const n = 400
	b := sampleTestBinned(t, n, 2)
	rows, cols := identity(n), allCols(b)
	rng := rand.New(rand.NewSource(1))
	cuts := randomCuts(rng, n, 3)
	srcs, _ := shardSplit(b, cuts, rng)
	sums := make([]shard.Summary, len(srcs))
	for i, cs := range srcs {
		sums[i] = shard.Scan(b, cs, cuts[i], cols, n+50, 17)
	}
	strata, cands := shard.MergeSummaries(sums, b.NumItems())
	got := shard.FinishSample(strata, cands, n+50)
	want := stratifiedReservoir(b, rows, cols, n+50, 17)
	assertSameSample(t, "full-budget", 0, n+50, 17, cuts, got, want)
}

// A one-shard split is the degenerate identity: Scan over the whole table
// plus FinishSample is exactly the single scan.
func TestShardMergeSingleShard(t *testing.T) {
	const n = 700
	b := sampleTestBinned(t, n, 8)
	cols := allCols(b)
	sub := make([][]uint16, b.NumCols())
	copy(sub, b.Codes)
	cs := &shardMemSource{codes: sub, blockRows: 61}
	for _, budget := range []int{25, 333} {
		sum := shard.Scan(b, cs, 0, cols, budget, 23)
		strata, cands := shard.MergeSummaries([]shard.Summary{sum}, b.NumItems())
		got := shard.FinishSample(strata, cands, budget)
		want := stratifiedReservoir(b, identity(n), cols, budget, 23)
		assertSameSample(t, "one-shard", 0, budget, 23, []int{0, n}, got, want)
	}
}
