package core

import (
	"fmt"
	"path/filepath"
	"sync"

	"subtab/internal/binning"
	"subtab/internal/colstore"
	"subtab/internal/shard"
)

// Sharded selection: a model's code store may be split into N row-range
// shards (package shard). Locally complete sharded models fan the scaled
// sampler out with one goroutine per shard and merge the per-shard
// summaries associatively — bit-identical to the single-store scan.
// Models with remote shards (a coordinator in a multi-server deployment)
// route sampling through an installed ShardSampler, which gathers the
// same summaries from peers over HTTP plus the candidate rows' codes, so
// the rest of the selection runs locally on an overlay without touching
// the missing shards.

// ShardSampler produces the scaled path's candidate sample for a model
// whose shards are partly remote: rows is exactly what the single-store
// stratified reservoir would return for a full-table scan at this budget,
// and codes covers (at least) those rows so every downstream read of the
// selection resolves locally. Implementations live in the serving layer
// (scatter over peers, gather and merge); they must be safe for
// concurrent use.
type ShardSampler interface {
	Sample(cols []int, budget int) (rows []int, codes binning.CodeSource, err error)
}

// CacheReleaser is the optional extension a ShardSampler implements when it
// holds governed cross-request caches (a coordinator's per-(budget, cols)
// sample results). ReleaseVectorCache forwards to it so evicting a model
// from a serving store also drops — and settles to zero — the coordinator
// bytes keyed to it. Implementations must only shrink governed balances
// (never call back into eviction), because the release may run under the
// serving store's mutex.
type CacheReleaser interface {
	ReleaseCache()
}

// SetShardSampler installs the scatter/gather sampler consulted when the
// model's shards are partly remote. Install before the model starts
// serving; it must not race in-flight selections.
func (m *Model) SetShardSampler(s ShardSampler) { m.shardSampler = s }

// ShardSource returns the model's sharded code source, or nil when the
// model is not shard-backed.
func (m *Model) ShardSource() *shard.Source {
	src, _ := m.B.Source().(*shard.Source)
	return src
}

// SampleSeed returns the seed the scaled sampler ranks rows with — the
// value a coordinator sends to shard peers so remote scans hash
// identically to local ones.
func (m *Model) SampleSeed() int64 { return m.Opt.ClusterSeed ^ scaleSampleSeed }

// SampleShard scans one locally held shard for a scatter/gather sample:
// the worker half of the shard-exec protocol. cols, budget and seed come
// from the coordinator's request; the summary's rows are global ids.
func (m *Model) SampleShard(idx int, cols []int, budget int, seed int64) (shard.Summary, error) {
	sum, _, err := m.SampleShardFiltered(idx, cols, budget, seed, nil)
	return sum, err
}

// UseShardedStores exports the model's codes into len(paths) shard files
// (rows split evenly: shard i owns rows [i*n/N, (i+1)*n/N)), opens them
// as one sharded source, switches the model onto it and releases the
// inline codes — the sharded analogue of UseCodeStoreFile. All paths must
// share one directory (the shard map names files relative to it). The
// returned source is owned by the model for reading; Close it when the
// model is discarded.
func (m *Model) UseShardedStores(paths []string, blockRows int) (*shard.Source, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("core: sharded export needs at least one shard path")
	}
	dir := filepath.Dir(paths[0])
	for _, p := range paths[1:] {
		if filepath.Dir(p) != dir {
			return nil, fmt.Errorf("core: shard files must share one directory, got %q and %q", dir, filepath.Dir(p))
		}
	}
	rows := m.T.NumRows()
	cuts := make([]int, len(paths)+1)
	for i := range cuts {
		cuts[i] = i * rows / len(paths)
	}
	sink, err := shard.NewSplitSink(paths, cuts, m.T.NumCols(), blockRows)
	if err != nil {
		return nil, fmt.Errorf("core: exporting sharded code stores: %w", err)
	}
	if err := m.B.ExportCodes(sink, 0); err != nil {
		sink.Abort()
		return nil, fmt.Errorf("core: exporting sharded code stores: %w", err)
	}
	sm, err := sink.Close()
	if err != nil {
		return nil, fmt.Errorf("core: exporting sharded code stores: %w", err)
	}
	src, err := shard.Open(dir, sm, m.T.NumCols(), false)
	if err != nil {
		return nil, fmt.Errorf("core: reopening sharded code stores: %w", err)
	}
	if err := m.AttachCodeStore(src); err != nil {
		src.Close()
		return nil, err
	}
	if err := m.DropInlineCodes(); err != nil {
		src.Close()
		return nil, err
	}
	return src, nil
}

// shardedReservoir is the local scatter/gather form of the stratified
// reservoir: one goroutine scans each shard, the per-stratum minima and
// phase-2 heaps merge associatively, and the pick order replays exactly —
// byte-identical to the single-store scan (see package shard). covered,
// when non-nil, applies the session coverage bias at the merge's pick step
// (shard.FinishSampleBiased); nil preserves the historical pick order.
func shardedReservoir(b *binning.Binned, src *shard.Source, cols []int, budget int, seed int64, covered func(item int) bool) []int {
	sums := make([]shard.Summary, src.NumShards())
	var wg sync.WaitGroup
	for i := 0; i < src.NumShards(); i++ {
		if src.ShardRows(i) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sums[i] = shard.Scan(b, src.ShardSource(i), src.ShardStart(i), cols, budget, seed)
		}(i)
	}
	wg.Wait()
	strata, cands := shard.MergeSummaries(sums, b.NumItems())
	return shard.FinishSampleBiased(strata, cands, budget, covered)
}

// UseShardedColumnStores exports the model's raw columns into len(paths)
// column-store shard files, cut at exactly the same row ranges as
// UseShardedStores (shard i owns rows [i*n/N, (i+1)*n/N)), opens them as
// one sharded cell source, switches view assembly onto it and releases the
// inline columns — the sharded analogue of UseColumnStoreFile. All paths
// must share one directory. The returned source is owned by the model for
// reading; Close it when the model is discarded.
func (m *Model) UseShardedColumnStores(paths []string, blockRows int) (*shard.Cells, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("core: sharded column export needs at least one shard path")
	}
	if !m.T.CellsResident() {
		return nil, fmt.Errorf("core: exporting sharded column stores: table cells are already paged")
	}
	dir := filepath.Dir(paths[0])
	for _, p := range paths[1:] {
		if filepath.Dir(p) != dir {
			return nil, fmt.Errorf("core: column shard files must share one directory, got %q and %q", dir, filepath.Dir(p))
		}
	}
	rows := m.T.NumRows()
	descs := make([]shard.Desc, len(paths))
	for i, p := range paths {
		start, end := i*rows/len(paths), (i+1)*rows/len(paths)
		if err := colstore.WriteTableRows(p, m.T, start, end, blockRows); err != nil {
			return nil, fmt.Errorf("core: exporting column shard %d: %w", i, err)
		}
		st, err := colstore.Open(p)
		if err != nil {
			return nil, fmt.Errorf("core: reopening column shard %d: %w", i, err)
		}
		descs[i] = shard.Desc{File: filepath.Base(p), Rows: st.NumRows(), BlockRows: st.BlockRows(), Checksum: st.Checksum()}
		st.Close()
	}
	names := make([]string, m.T.NumCols())
	for c := range names {
		names[c] = m.T.ColumnAt(c).Name
	}
	cells, err := shard.OpenCells(dir, descs, names, false)
	if err != nil {
		return nil, fmt.Errorf("core: reopening sharded column stores: %w", err)
	}
	if err := m.AttachColumnStore(cells); err != nil {
		cells.Close()
		return nil, err
	}
	if err := m.DropInlineCells(); err != nil {
		cells.Close()
		return nil, err
	}
	return cells, nil
}

// ShardCells returns the model's sharded cell source, or nil when the
// model's raw columns are not shard-backed.
func (m *Model) ShardCells() *shard.Cells {
	sc, _ := m.cellSrc.(*shard.Cells)
	return sc
}

// GatherShardCells reads rendered cells from one locally held column-store
// shard: the worker half of the shard-exec cells protocol. rows are
// shard-local; cols are source column indices.
func (m *Model) GatherShardCells(idx int, cols []int, rows []int) ([][]string, error) {
	sc := m.ShardCells()
	if sc == nil {
		return nil, fmt.Errorf("core: table's columns are not shard-backed")
	}
	if idx < 0 || idx >= sc.NumShards() {
		return nil, fmt.Errorf("core: shard %d out of range [0, %d)", idx, sc.NumShards())
	}
	for _, c := range cols {
		if c < 0 || c >= m.T.NumCols() {
			return nil, fmt.Errorf("core: column %d out of range [0, %d)", c, m.T.NumCols())
		}
	}
	return sc.ShardGather(idx, cols, rows)
}
