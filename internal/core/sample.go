package core

import (
	"sort"

	"subtab/internal/binning"
	"subtab/internal/shard"
)

// stratifiedReservoir deterministically samples up to budget candidate rows
// for the scaled selection path. Strata are the (column, bin) items of the
// candidate rows over the given columns:
//
//   - Phase 1 (coverage) keeps, for every stratum that is non-empty among
//     the candidates, the row of smallest hash within the stratum — so rare
//     bins (rare categories, outlier numeric regimes) survive sampling no
//     matter how skewed the table is. When the stratum count itself exceeds
//     the budget, strata are served in ascending item-id order.
//   - Phase 2 (fill) spends the remaining budget on the rows with the
//     globally smallest hashes, which is a uniform reservoir over the
//     leftover candidates.
//
// Both phases rank rows by one seeded per-row hash (computed once — the
// per-cell work of the dominant phase-1 scan is then a uint16 read and a
// compare, which is what keeps a 31-column million-row scan in the low
// hundreds of milliseconds on one core) rather than by sequential rng
// draws, so the sample is one fixed function of (binning, rows, cols,
// budget, seed) — no iteration-order or scheduling dependence — and any
// candidate subset of a table samples consistently. The result is sorted
// ascending and duplicate-free; a candidate set no larger than the budget
// is returned whole (sorted).
func stratifiedReservoir(b *binning.Binned, rows, cols []int, budget int, seed int64) []int {
	return stratifiedReservoirBiased(b, rows, cols, budget, seed, nil)
}

// stratifiedReservoirBiased is the session-aware form: covered, when
// non-nil, marks (column, bin) item ids an exploration session has already
// shown, and phase 1 serves the uncovered strata first (each pass in
// ascending item order) — a drill-down's coverage budget goes to strata the
// user has not seen, while phase 2's uniform fill is untouched. covered ==
// nil is bit-identical to the historical sampler.
func stratifiedReservoirBiased(b *binning.Binned, rows, cols []int, budget int, seed int64, covered func(item int) bool) []int {
	if budget <= 0 || len(rows) <= budget {
		out := make([]int, len(rows))
		copy(out, rows)
		sort.Ints(out)
		return out
	}

	// Shard-backed full-table scans scatter: one goroutine per shard, merged
	// associatively (package shard) — same sample, one shard-scan's worth of
	// wall clock. Query subsets fall through to the generic block cursor.
	if src, ok := b.Source().(*shard.Source); ok && src.Complete() &&
		len(rows) == src.NumRows() && identityRows(rows) {
		return shardedReservoir(b, src, cols, budget, seed, covered)
	}

	rowH := make([]uint64, len(rows))
	for i, r := range rows {
		rowH[i] = sampleHash(seed, r)
	}

	// Phase 1: per-stratum min-hash representative. The stratum space is the
	// global item-id space restricted to cols; NumItems is small (columns ×
	// bins), so flat slots beat a map.
	//
	// Codes are read through the binning's CodeSource so the scan runs
	// identically over inline codes and over an on-disk store: min-hash with
	// a value-based tie-break is order-independent, so chunked block scans
	// (and the store's block geometry) cannot change the sample — the
	// property that lets the out-of-core path reproduce the in-memory
	// sample bit for bit.
	bestRow := make([]int, b.NumItems())
	bestHash := make([]uint64, b.NumItems())
	for s := range bestRow {
		bestRow[s] = -1
	}
	update := func(s int32, r int, h uint64) {
		if bestRow[s] < 0 || h < bestHash[s] || (h == bestHash[s] && r < bestRow[s]) {
			bestRow[s], bestHash[s] = r, h
		}
	}
	src := b.Source()
	var scratch []uint16
	for _, c := range cols {
		base := b.ItemOf(c, 0)
		switch {
		case b.HasInlineCodes():
			// Resident codes: the historical single-pass loop, one uint16
			// read and a compare per cell (kept branch-free of the closure —
			// this is the dominant scan of every in-memory scaled select).
			codes := b.Codes[c]
			for i, r := range rows {
				s := base + int32(codes[r])
				h := rowH[i]
				if bestRow[s] < 0 || h < bestHash[s] || (h == bestHash[s] && r < bestRow[s]) {
					bestRow[s], bestHash[s] = r, h
				}
			}
		case len(rows) == src.NumRows() && identityRows(rows):
			// Store-backed full-table scan: stream whole blocks in order.
			br := src.BlockRows()
			for blk := 0; blk < src.NumBlocks(); blk++ {
				codes := src.ColumnBlock(c, blk, scratch)
				scratch = codes
				off := blk * br
				for i, code := range codes {
					update(base+int32(code), off+i, rowH[off+i])
				}
			}
		default:
			// Store-backed candidate subset (a query result): walk the rows
			// with a per-column block cursor — sequential block loads for the
			// (sorted) common case, still correct for any order.
			br := src.BlockRows()
			blk := -1
			var codes []uint16
			for i, r := range rows {
				if nb := r / br; nb != blk {
					blk = nb
					codes = src.ColumnBlock(c, blk, scratch)
					scratch = codes
				}
				update(base+int32(codes[r-blk*br]), r, rowH[i])
			}
		}
	}
	picked := make(map[int]bool, budget)
	sample := make([]int, 0, budget)
	for _, wantCovered := range [2]bool{false, true} {
		if len(sample) >= budget {
			break
		}
		for s := range bestRow {
			if len(sample) >= budget {
				break
			}
			if covered != nil && covered(s) != wantCovered {
				continue
			}
			r := bestRow[s]
			if r < 0 || picked[r] {
				continue
			}
			picked[r] = true
			sample = append(sample, r)
		}
		if covered == nil {
			break
		}
	}

	// Phase 2: uniform fill — the (budget - coverage) rows with the smallest
	// row-keyed hashes, via a bounded max-heap so million-row candidate sets
	// need no full sort. Ties break toward the lower row id.
	if rem := budget - len(sample); rem > 0 {
		heapH := make([]uint64, 0, rem)
		heapR := make([]int, 0, rem)
		greater := func(i, j int) bool {
			if heapH[i] != heapH[j] {
				return heapH[i] > heapH[j]
			}
			return heapR[i] > heapR[j]
		}
		siftDown := func(i int) {
			for {
				l, rch := 2*i+1, 2*i+2
				big := i
				if l < len(heapH) && greater(l, big) {
					big = l
				}
				if rch < len(heapH) && greater(rch, big) {
					big = rch
				}
				if big == i {
					return
				}
				heapH[i], heapH[big] = heapH[big], heapH[i]
				heapR[i], heapR[big] = heapR[big], heapR[i]
				i = big
			}
		}
		for i, r := range rows {
			if picked[r] {
				continue
			}
			h := rowH[i]
			if len(heapH) < rem {
				heapH = append(heapH, h)
				heapR = append(heapR, r)
				for i := len(heapH) - 1; i > 0; {
					p := (i - 1) / 2
					if !greater(i, p) {
						break
					}
					heapH[i], heapH[p] = heapH[p], heapH[i]
					heapR[i], heapR[p] = heapR[p], heapR[i]
					i = p
				}
				continue
			}
			if h > heapH[0] || (h == heapH[0] && r > heapR[0]) {
				continue
			}
			heapH[0], heapR[0] = h, r
			siftDown(0)
		}
		sample = append(sample, heapR...)
	}
	sort.Ints(sample)
	return sample
}

// sampleHash maps (seed, row) to a uniform 64-bit value. The hash lives
// in package shard (shard.RowHash) so per-shard scans — local or on a
// peer — rank rows identically to this whole-table scan.
func sampleHash(seed int64, row int) uint64 {
	return shard.RowHash(seed, int64(row))
}
