package core

import (
	"fmt"
	"os"

	"subtab/internal/binning"
	"subtab/internal/codestore"
)

// Out-of-core selection: a model's bin codes — the per-cell state every
// selection stage reads — can live in an on-disk code store instead of
// memory. ExportCodeStore writes them, AttachCodeStore switches reads to
// the store, and DropInlineCodes releases the in-memory copy; from then on
// the scaled Select path streams the stratified sampler over store blocks
// and gathers only the sampled rows' tuple-vectors, so selection memory is
// bounded by the sample budget (and, with ScaleOptions.SlabBudgetBytes, by
// the spill threshold) rather than the table. Selections are bit-identical
// to the in-memory path. Operations that need the full code matrix at
// memory speed — rule mining, incremental append — transparently
// materialize a private copy (see binning.MaterializedCodes).

// ExportCodeStore writes the model's bin codes to a code store file at
// path (blockRows <= 0 uses codestore.DefaultBlockRows). The store is
// written to a temp file and renamed into place, so a crash cannot leave a
// plausible partial store behind.
func (m *Model) ExportCodeStore(path string, blockRows int) error {
	tmp := path + ".tmp"
	w, err := codestore.Create(tmp, m.T.NumCols(), blockRows)
	if err != nil {
		return fmt.Errorf("core: exporting code store: %w", err)
	}
	if err := m.B.ExportCodes(w, 0); err != nil {
		w.Abort()
		return fmt.Errorf("core: exporting code store: %w", err)
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: exporting code store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// AttachCodeStore attaches an external code source (typically an opened
// codestore.Store for a file ExportCodeStore wrote) after validating its
// geometry and code ranges. The codes must be the model's own — the store
// carries a checksum (see modelio's external references) but this direct
// API trusts the caller's pairing. Attach before the model starts serving;
// it must not race in-flight selections.
func (m *Model) AttachCodeStore(cs binning.CodeSource) error {
	return m.B.AttachStore(cs)
}

// DropInlineCodes releases the in-memory bin codes of a model with an
// attached code store, making the store the only code source. Bin counts
// are computed first (one streamed scan) so the affinity baseline never
// needs the inline codes back. Like AttachCodeStore, not safe to race
// in-flight selections.
func (m *Model) DropInlineCodes() error {
	m.cachedBinCounts()
	return m.B.DropInlineCodes()
}

// UseCodeStoreFile is the one-call form of the export→open→attach→drop
// sequence: it writes the model's codes to path, opens the store, switches
// the model onto it and releases the inline codes. The returned store is
// owned by the model for reading but may be Closed by the caller when the
// model is discarded (unclosed stores release their mapping when garbage
// collected).
func (m *Model) UseCodeStoreFile(path string, blockRows int) (*codestore.Store, error) {
	if err := m.ExportCodeStore(path, blockRows); err != nil {
		return nil, err
	}
	cs, err := codestore.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: reopening exported code store: %w", err)
	}
	if err := m.AttachCodeStore(cs); err != nil {
		cs.Close()
		return nil, err
	}
	if err := m.DropInlineCodes(); err != nil {
		cs.Close()
		return nil, err
	}
	return cs, nil
}

// OutOfCore reports whether the model's codes are store-backed (inline
// codes dropped).
func (m *Model) OutOfCore() bool { return !m.B.HasInlineCodes() }
