package core

import (
	"fmt"

	"subtab/internal/binning"
	"subtab/internal/corpus"
	"subtab/internal/f32"
	"subtab/internal/table"
)

// DefaultDriftThreshold is the per-column distribution shift (total-
// variation distance between the table's bin distribution before and after
// the append — the chunk's divergence weighted by its share of the result)
// above which Append abandons the incremental path and re-preprocesses the
// concatenated table. 0.1 means "a tenth of the table's probability mass
// moved between bins in one append": routine chunks land orders of
// magnitude below it — a tiny chunk cannot trip it by sampling noise,
// because its weight is tiny — while a regime change arriving as a bulk
// load (a disjoint chunk ≥ ~11% of the table) trips it immediately.
const DefaultDriftThreshold = 0.1

// DefaultRebinGrowth caps how much of the table may bypass full binning:
// once incrementally appended rows exceed this fraction of the rows that
// were present at the last full (re)bin, Append re-bins regardless of
// per-chunk drift. Slow drift is invisible to per-append checks (each
// chunk is judged against a distribution that already absorbed its
// predecessors), so the growth cap bounds staleness to one table-doubling
// while keeping the amortized append cost O(1) per row.
const DefaultRebinGrowth = 1.0

// DefaultFineTuneEpochs is the number of fine-tuning passes over the delta
// corpus when an append introduces embedding tokens the model has never
// trained. A couple of epochs against the frozen established vectors is
// enough to place a handful of new items; the full Epochs schedule is for
// training whole vocabularies from scratch.
const DefaultFineTuneEpochs = 2

// AppendOptions configures Model.Append.
type AppendOptions struct {
	// DriftThreshold is the maximum tolerated per-column distribution shift
	// — total-variation distance between the table's bin distribution
	// before and after the append — before a full re-preprocess is forced
	// (<= 0 uses DefaultDriftThreshold; >= 1 disables drift-triggered
	// rebinning — structural rebins and the growth cap still apply).
	DriftThreshold float64
	// RebinGrowth is the fraction of the last-rebinned row count that may
	// be appended incrementally before a full re-bin is forced (<= 0 uses
	// DefaultRebinGrowth; set very large to effectively disable).
	RebinGrowth float64
	// FineTuneEpochs is the number of warm-start training passes over the
	// delta corpus when new embedding tokens appear (<= 0 uses
	// DefaultFineTuneEpochs).
	FineTuneEpochs int
	// ForceRebin skips the incremental path and re-preprocesses the
	// concatenated table unconditionally — the escape hatch for callers that
	// want the exact model a cold Preprocess would build.
	ForceRebin bool
}

func (o AppendOptions) withDefaults() AppendOptions {
	if o.DriftThreshold <= 0 {
		o.DriftThreshold = DefaultDriftThreshold
	}
	if o.RebinGrowth <= 0 {
		o.RebinGrowth = DefaultRebinGrowth
	}
	if o.FineTuneEpochs <= 0 {
		o.FineTuneEpochs = DefaultFineTuneEpochs
	}
	return o
}

// AppendStats describes what an Append did.
type AppendStats struct {
	// AppendedRows is the number of rows ingested.
	AppendedRows int `json:"appended_rows"`
	// Rebinned reports that the append fell back to a full Preprocess of
	// the concatenated table; RebinReason says why ("forced", a structural
	// incompatibility, or drift above the threshold).
	Rebinned    bool   `json:"rebinned"`
	RebinReason string `json:"rebin_reason,omitempty"`
	// MaxDrift / MaxDriftCol locate the column whose overall bin
	// distribution moved the most (the thresholded quantity; also filled on
	// the incremental path, where it was below the threshold).
	// MaxChunkDrift is the worst column's unscaled chunk-vs-table
	// divergence — diagnostic for "unusual chunk, too small to matter yet".
	MaxDrift      float64 `json:"max_drift"`
	MaxDriftCol   string  `json:"max_drift_col,omitempty"`
	MaxChunkDrift float64 `json:"max_chunk_drift"`
	// AppendedSinceRebin is the model's cumulative incremental-ingestion
	// lineage after this append (0 right after a rebin); the growth cap
	// re-bins when it would exceed RebinGrowth × the last-rebinned size.
	AppendedSinceRebin int `json:"appended_since_rebin"`
	// NewCategories counts dictionary entries unseen at bin time, folded
	// into the last non-missing bin until a re-bin runs.
	NewCategories int `json:"new_categories"`
	// NewTokens counts embedding vocabulary entries the fine-tune trained —
	// bins that existed but never appeared in the training corpus until now.
	NewTokens int `json:"new_tokens"`
	// RecomputedVectors counts pre-existing rows whose cached tuple-vectors
	// were recomputed because they contain newly trained items.
	RecomputedVectors int `json:"recomputed_vectors,omitempty"`
}

// Append ingests rows (schema-compatible with m.T, see table.AppendRows)
// and returns a model over the concatenated table. The receiver is never
// mutated — selections running against m are unaffected — so a serving
// layer can swap the returned model in atomically (internal/serve does,
// bumping the store generation).
//
// The incremental path reuses everything expensive from m: bin boundaries
// stay fixed (appended cells are coded against the existing cuts and
// dictionaries), the embedding matrices are shared and at most fine-tuned
// (new tokens trained against the frozen old vectors, old vectors
// byte-identical), bin counts and the column-affinity matrix are updated
// from the delta alone, and a warm full-table tuple-vector cache is
// extended in place rather than discarded. Only row-dependent derived state
// (rules mined over the old rows, cached selections) must be invalidated by
// the caller.
//
// Append falls back to a full Preprocess of the concatenated table — the
// exact model a cold build would produce — when the appended rows are
// structurally incompatible with the existing binning or drift past
// opt.DriftThreshold (see AppendStats). Appending zero rows returns m
// unchanged.
func (m *Model) Append(rows *table.Table, opt AppendOptions) (*Model, AppendStats, error) {
	opt = opt.withDefaults()
	var stats AppendStats
	if rows.NumRows() == 0 {
		if rows.NumCols() != m.T.NumCols() {
			return nil, stats, fmt.Errorf("core: append: %d columns appended to a %d-column table", rows.NumCols(), m.T.NumCols())
		}
		for _, c := range rows.Columns() {
			if m.T.Column(c.Name) == nil {
				return nil, stats, fmt.Errorf("core: append: table has no column %q", c.Name)
			}
		}
		return m, stats, nil
	}
	stats.AppendedRows = rows.NumRows()
	// A paged table is a schema husk; appending needs the old cells back, so
	// materialize a private resident copy first (the serving layer re-pages
	// the result). The binning below also needs newT's appended cells, which
	// the concatenated copy holds either way.
	baseT := m.T
	if !baseT.CellsResident() {
		var err error
		baseT, err = m.residentTable()
		if err != nil {
			return nil, stats, fmt.Errorf("core: append: %w", err)
		}
	}
	newT, err := baseT.AppendRows(rows)
	if err != nil {
		return nil, stats, fmt.Errorf("core: append: %w", err)
	}
	if opt.ForceRebin {
		return m.rebin(newT, &stats, "forced")
	}

	oldN := m.T.NumRows()
	addN := newT.NumRows() - oldN
	if base := oldN - m.appendedSinceRebin; float64(m.appendedSinceRebin+addN) > opt.RebinGrowth*float64(base) {
		return m.rebin(newT, &stats, fmt.Sprintf("%d rows appended since the last re-bin exceed %.2g× the %d rows binned then",
			m.appendedSinceRebin+addN, opt.RebinGrowth, base))
	}

	oldCounts := m.cachedBinCounts()
	b, bstats, err := binning.AppendRows(m.B, newT, oldN, oldCounts)
	stats.MaxDrift, stats.MaxDriftCol = bstats.MaxDrift, bstats.MaxDriftCol
	for _, d := range bstats.ChunkDrift {
		if d > stats.MaxChunkDrift {
			stats.MaxChunkDrift = d
		}
	}
	stats.NewCategories = bstats.NewCategories
	if err != nil {
		return nil, stats, fmt.Errorf("core: append: %w", err)
	}
	if b == nil {
		return m.rebin(newT, &stats, bstats.RebinReason)
	}
	if bstats.MaxDrift > opt.DriftThreshold {
		return m.rebin(newT, &stats, fmt.Sprintf("column %q shifted the table distribution by %.3f > threshold %.3f",
			bstats.MaxDriftCol, bstats.MaxDrift, opt.DriftThreshold))
	}

	// Fine-tune the embedding on the delta corpus. Usually a no-op (every
	// bin of the appended rows already has a trained vector); when new
	// tokens appear they are trained against the frozen old vectors.
	newIdx := make([]int, newT.NumRows()-oldN)
	for i := range newIdx {
		newIdx[i] = oldN + i
	}
	ftOpt := m.Opt.Embedding
	ftOpt.Epochs = opt.FineTuneEpochs
	emb := m.Emb.FineTune(corpus.BuildRows(b, m.Opt.Corpus, newIdx), ftOpt)
	stats.NewTokens = emb.VocabSize() - m.Emb.VocabSize()

	nm := &Model{T: newT, B: b, Emb: emb, Opt: m.Opt, appendedSinceRebin: m.appendedSinceRebin + addN}
	stats.AppendedSinceRebin = nm.appendedSinceRebin
	nm.indexItems()

	// Bin counts and affinities: cumulative counts grow by the delta counts
	// binning already tallied; the affinity fill re-weights the (unchanged
	// for old tokens, newly placed for new ones) association scores by the
	// updated frequencies without touching the table's rows.
	counts := make([][]int64, len(oldCounts))
	for c := range counts {
		cc := make([]int64, len(oldCounts[c]))
		copy(cc, oldCounts[c])
		for bin, add := range bstats.AppendedCounts[c] {
			cc[bin] += add
		}
		counts[c] = cc
	}
	nm.seedBinCounts(counts)
	nm.colAffinity = nm.affinityFromCounts(counts, newT.NumRows())

	// Extend a warm full-table tuple-vector cache: old rows memcpy (their
	// item vectors are frozen), new rows computed fresh. Rows that contain a
	// newly trained item are recomputed so the cache stays bit-identical to
	// what nm would build lazily.
	if fv, ok := m.cachedFullVecs(); ok {
		stats.RecomputedVectors = m.extendFullVecsInto(nm, oldN, fv)
	}
	return nm, stats, nil
}

// rebin is the full-reprocess fallback: the returned model is exactly what
// a cold Preprocess of the concatenated table builds.
func (m *Model) rebin(newT *table.Table, stats *AppendStats, reason string) (*Model, AppendStats, error) {
	stats.Rebinned, stats.RebinReason = true, reason
	nm, err := Preprocess(newT, m.Opt)
	if err != nil {
		return nil, *stats, fmt.Errorf("core: append: re-preprocessing after %s: %w", reason, err)
	}
	return nm, *stats, nil
}

// extendFullVecsInto builds nm's full-table tuple-vector matrix from fv —
// m's warm cache, captured by the caller via cachedFullVecs so a concurrent
// eviction cannot pull it away mid-copy: pre-existing rows are copied
// (frozen item vectors make the copy bit-identical to recomputation),
// except rows containing an item that only now received a trained vector —
// those pooled over fewer cells in m and must be recomputed. Appended rows
// are always computed fresh. Returns the number of recomputed pre-existing
// rows.
func (m *Model) extendFullVecsInto(nm *Model, oldN int, fv f32.Matrix) int {
	n := nm.T.NumRows()
	mc := nm.T.NumCols()
	mat := f32.New(n, nm.Emb.Dim())
	copy(mat.Data[:oldN*mat.C], fv.Data[:oldN*fv.C])

	cols := make([]int, mc)
	for i := range cols {
		cols[i] = i
	}

	// Bins whose item went from unseen to trained, per column.
	var affectedCols []int
	affectedBins := make([][]bool, mc)
	for c := 0; c < mc; c++ {
		nb := nm.B.Cols[c].NumBins()
		var marks []bool
		for bin := 0; bin < nb; bin++ {
			item := nm.B.ItemOf(c, bin)
			if m.itemRow[item] < 0 && nm.itemRow[item] >= 0 {
				if marks == nil {
					marks = make([]bool, nb)
				}
				marks[bin] = true
			}
		}
		if marks != nil {
			affectedCols = append(affectedCols, c)
			affectedBins[c] = marks
		}
	}
	recomputed := 0
	if len(affectedCols) > 0 {
		need := make([]bool, oldN)
		for _, c := range affectedCols {
			codes := nm.B.Codes[c]
			marks := affectedBins[c]
			for r := 0; r < oldN; r++ {
				if marks[codes[r]] {
					need[r] = true
				}
			}
		}
		var hit []int
		for r := 0; r < oldN; r++ {
			if need[r] {
				hit = append(hit, r)
			}
		}
		recomputed = len(hit)
		f32.ParallelRange(len(hit), f32.Workers(len(hit)), func(start, end int) {
			idx := make([]int32, mc)
			for i := start; i < end; i++ {
				nm.rowVectorInto(mat.Row(hit[i]), hit[i], cols, idx)
			}
		})
	}

	f32.ParallelRange(n-oldN, f32.Workers(n-oldN), func(start, end int) {
		idx := make([]int32, mc)
		for r := oldN + start; r < oldN+end; r++ {
			nm.rowVectorInto(mat.Row(r), r, cols, idx)
		}
	})
	nm.seedFullVecs(mat)
	return recomputed
}
