package core_test

import (
	"testing"

	"subtab/internal/core"
	"subtab/internal/table"
	"subtab/internal/word2vec"
)

func tinyOptions() core.Options {
	opt := core.Default()
	opt.Embedding = word2vec.Options{Dim: 4, Epochs: 1, Seed: 1}
	return opt
}

// TestPreprocessDegenerateTables pins the pipeline's behavior on the
// degenerate shapes a streaming feed can produce: pre-processing must
// succeed (or error cleanly), never panic, and selection must either
// produce a well-formed sub-table or a clear error.
func TestPreprocessDegenerateTables(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		m, err := core.Preprocess(table.New("e"), tinyOptions())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Select(3, 2, nil); err == nil {
			t.Fatal("select over an empty table must error")
		}
	})
	t.Run("single-row", func(t *testing.T) {
		tab := table.New("e")
		for _, c := range []*table.Column{
			table.NewNumeric("n", []float64{1}),
			table.NewCategorical("c", []string{"x"}),
		} {
			if err := tab.AddColumn(c); err != nil {
				t.Fatal(err)
			}
		}
		m, err := core.Preprocess(tab, tinyOptions())
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Select(5, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(st.SourceRows) != 1 || st.SourceRows[0] != 0 {
			t.Fatalf("single-row select picked %v", st.SourceRows)
		}
	})
	t.Run("single-column", func(t *testing.T) {
		tab := table.New("e")
		if err := tab.AddColumn(table.NewNumeric("n", []float64{1, 2, 3, 4, 5, 6, 7, 8})); err != nil {
			t.Fatal(err)
		}
		m, err := core.Preprocess(tab, tinyOptions())
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Select(3, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Cols) != 1 || st.Cols[0] != "n" {
			t.Fatalf("single-column select chose %v", st.Cols)
		}
	})
}
