package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"subtab/internal/binning"
	"subtab/internal/corpus"
	"subtab/internal/query"
	"subtab/internal/rules"
	"subtab/internal/table"
	"subtab/internal/word2vec"
)

// ruleTable builds a table with two planted patterns over 4 columns:
// pattern A rows have (a=hi, b=hi, cancelled=1, NaN in d), pattern B rows
// have (a=lo, b=lo, cancelled=0, d present).
func ruleTable(t *testing.T, n int, seed int64) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	d := make([]float64, n)
	e := make([]string, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			a[i] = 100 + rng.Float64()*5
			b[i] = 100 + rng.Float64()*5
			c[i] = 1
			d[i] = math.NaN()
		} else {
			a[i] = rng.Float64() * 5
			b[i] = rng.Float64() * 5
			c[i] = 0
			d[i] = rng.Float64() * 100
		}
		e[i] = []string{"x", "y", "z"}[rng.Intn(3)]
	}
	tab := table.New("planted")
	for _, col := range []struct {
		name string
		vals []float64
	}{{"a", a}, {"b", b}, {"cancelled", c}, {"d", d}} {
		if err := tab.AddColumn(table.NewNumeric(col.name, col.vals)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.AddColumn(table.NewCategorical("e", e)); err != nil {
		t.Fatal(err)
	}
	return tab
}

func testOptions() Options {
	return Options{
		Bins:      binning.Options{MaxBins: 3, Strategy: binning.Quantile, Seed: 1},
		Corpus:    corpus.Options{MaxSentences: 10_000, TupleSentences: true, Seed: 1},
		Embedding: word2vec.Options{Dim: 16, Epochs: 4, Window: 4, Seed: 1},
	}
}

func TestPreprocess(t *testing.T) {
	tab := ruleTable(t, 200, 1)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.B.NumItems() == 0 {
		t.Fatal("no items")
	}
	// Every item that occurs in the data has a vector (column sentences
	// cover every row).
	for c := 0; c < m.B.NumCols(); c++ {
		for r := 0; r < 50; r++ {
			if m.ItemVector(m.B.Item(c, r)) == nil {
				t.Fatalf("item %d (col %d row %d) has no vector", m.B.Item(c, r), c, r)
			}
		}
	}
	if m.ItemVector(-1) != nil || m.ItemVector(int32(m.B.NumItems())) != nil {
		t.Fatal("out-of-range items should have nil vectors")
	}
}

func TestSelectDimensions(t *testing.T) {
	tab := ruleTable(t, 200, 2)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Select(5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.SourceRows) != 5 {
		t.Fatalf("rows = %d, want 5", len(st.SourceRows))
	}
	if len(st.Cols) != 3 {
		t.Fatalf("cols = %v, want 3", st.Cols)
	}
	if st.View.NumRows() != 5 || st.View.NumCols() != 3 {
		t.Fatalf("view dims = %dx%d", st.View.NumRows(), st.View.NumCols())
	}
	// Source rows are valid and unique.
	seen := map[int]bool{}
	for _, r := range st.SourceRows {
		if r < 0 || r >= tab.NumRows() || seen[r] {
			t.Fatalf("bad source rows %v", st.SourceRows)
		}
		seen[r] = true
	}
}

func TestSelectTargetsIncluded(t *testing.T) {
	tab := ruleTable(t, 200, 3)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Select(4, 3, []string{"cancelled"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range st.Cols {
		if c == "cancelled" {
			found = true
		}
	}
	if !found {
		t.Fatalf("target column missing from %v", st.Cols)
	}
}

func TestSelectErrors(t *testing.T) {
	tab := ruleTable(t, 50, 4)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Select(0, 3, nil); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := m.Select(3, 0, nil); err == nil {
		t.Fatal("l=0 should error")
	}
	if _, err := m.Select(3, 3, []string{"nope"}); err == nil {
		t.Fatal("unknown target should error")
	}
	if _, err := m.Select(3, 1, []string{"a", "b"}); err == nil {
		t.Fatal("too many targets should error")
	}
}

func TestSelectKLargerThanTable(t *testing.T) {
	tab := ruleTable(t, 10, 5)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Select(50, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.SourceRows) != 10 || len(st.Cols) != 5 {
		t.Fatalf("dims = %dx%d", len(st.SourceRows), len(st.Cols))
	}
}

func TestSelectSeparatesPatterns(t *testing.T) {
	// k=2 on a table with two strong patterns should pick one row of each.
	tab := ruleTable(t, 400, 6)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Select(2, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	canc := tab.Column("cancelled")
	if len(st.SourceRows) != 2 {
		t.Fatalf("rows = %v", st.SourceRows)
	}
	v0 := canc.Nums[st.SourceRows[0]]
	v1 := canc.Nums[st.SourceRows[1]]
	if v0 == v1 {
		t.Fatalf("both rows from the same pattern (cancelled=%v)", v0)
	}
}

func TestSelectQuery(t *testing.T) {
	tab := ruleTable(t, 300, 7)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := &query.Query{Where: []query.Predicate{{Col: "cancelled", Op: query.Eq, Num: 1}}}
	st, err := m.SelectQuery(q, 4, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// All selected rows satisfy the query.
	for _, r := range st.SourceRows {
		if tab.Column("cancelled").Nums[r] != 1 {
			t.Fatalf("row %d violates the query", r)
		}
	}
}

func TestSelectQueryProjection(t *testing.T) {
	tab := ruleTable(t, 200, 8)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := &query.Query{Select: []string{"a", "b", "cancelled"}}
	st, err := m.SelectQuery(q, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range st.Cols {
		if c != "a" && c != "b" && c != "cancelled" {
			t.Fatalf("column %q outside projection", c)
		}
	}
}

func TestSelectQueryNilIsSelect(t *testing.T) {
	tab := ruleTable(t, 100, 9)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.SelectQuery(nil, 3, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Select(3, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.SourceRows) != len(b.SourceRows) {
		t.Fatal("nil query should behave like Select")
	}
	for i := range a.SourceRows {
		if a.SourceRows[i] != b.SourceRows[i] {
			t.Fatal("nil query selection differs from Select")
		}
	}
}

func TestSelectQueryEmptyResult(t *testing.T) {
	tab := ruleTable(t, 100, 10)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := &query.Query{Where: []query.Predicate{{Col: "cancelled", Op: query.Eq, Num: 42}}}
	if _, err := m.SelectQuery(q, 3, 3, nil); err == nil {
		t.Fatal("empty query result should error")
	}
}

func TestSelectQueryGroupBy(t *testing.T) {
	tab := ruleTable(t, 200, 11)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := &query.Query{
		GroupBy: []string{"e"},
		Aggs:    []query.Aggregate{{Func: query.Count}},
	}
	st, err := m.SelectQuery(q, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.SourceRows) == 0 {
		t.Fatal("group-by selection empty")
	}
}

func TestSelectDeterministic(t *testing.T) {
	tab := ruleTable(t, 150, 12)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Select(5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Select(5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.SourceRows {
		if a.SourceRows[i] != b.SourceRows[i] {
			t.Fatal("selection should be deterministic for a fixed model")
		}
	}
}

func TestHighlight(t *testing.T) {
	tab := ruleTable(t, 300, 13)
	opt := testOptions()
	m, err := Preprocess(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rules.Mine(m.B, rules.Options{MinSupport: 0.2, MinConfidence: 0.5, MinRuleSize: 2, MaxItemsetSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("expected rules on planted data")
	}
	st, err := m.Select(5, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	hl, perRow := Highlight(m.B, rs, st)
	if len(perRow) != len(st.SourceRows) {
		t.Fatalf("perRow = %d", len(perRow))
	}
	anyRule := false
	for vi, ri := range perRow {
		if ri < 0 {
			continue
		}
		anyRule = true
		// Highlighted cells match the rule's columns.
		r := rs[ri]
		nMarked := 0
		for ci := range st.ColIdx {
			if hl(vi, ci) {
				nMarked++
			}
		}
		if nMarked != len(r.Cols) {
			t.Fatalf("row %d: marked %d cells, rule has %d cols", vi, nMarked, len(r.Cols))
		}
	}
	if !anyRule {
		t.Fatal("no row highlighted any rule")
	}
	// The render hook works end to end.
	out := st.View.Render(hl)
	if !strings.Contains(out, "[") {
		t.Fatalf("no highlight markers in render:\n%s", out)
	}
}

func TestAsMetricSubTable(t *testing.T) {
	tab := ruleTable(t, 80, 14)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Select(4, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	ms := st.AsMetricSubTable()
	if len(ms.Rows) != len(st.SourceRows) || len(ms.Cols) != len(st.ColIdx) {
		t.Fatal("metric adapter mismatch")
	}
}

func TestRowColVectors(t *testing.T) {
	tab := ruleTable(t, 100, 15)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	cols := []int{0, 1, 2}
	v := m.RowVector(0, cols)
	if len(v) != m.Emb.Dim() {
		t.Fatalf("row vector dim = %d", len(v))
	}
	rows := []int{0, 1, 2, 3}
	cv := m.ColVector(0, rows)
	if len(cv) != m.Emb.Dim() {
		t.Fatalf("col vector dim = %d", len(cv))
	}
	// Rows from the same pattern have more similar vectors than rows from
	// different patterns.
	same := word2vec.Cosine(m.RowVector(0, cols), m.RowVector(2, cols))
	diff := word2vec.Cosine(m.RowVector(0, cols), m.RowVector(1, cols))
	if same <= diff {
		t.Fatalf("same-pattern sim %v <= cross-pattern sim %v", same, diff)
	}
}
