// Tests for the scaled (large-table) selection path: gate equivalence below
// the threshold, determinism above it, persistence of the scale options
// through the model codec, and the CI smoke that pins interactive selection
// on a 100k-row table.
package core_test

import (
	"bytes"
	"testing"
	"time"

	"subtab/internal/binning"
	"subtab/internal/core"
	"subtab/internal/corpus"
	"subtab/internal/datagen"
	"subtab/internal/modelio"
	"subtab/internal/query"
	"subtab/internal/word2vec"
)

// forceScale activates the scaled path on any input, with a budget small
// enough that sampling actually happens on test-sized tables.
func forceScale() *core.ScaleOptions {
	return &core.ScaleOptions{Threshold: 1, SampleBudget: 300, BatchSize: 128, MaxIter: 50}
}

// TestSelectWithBelowThresholdIsExact pins the gate: with the scaled mode
// configured but the table below its threshold, SelectWith must be
// bit-for-bit the exact path (the facade-level golden tests pin the same
// guarantee against checked-in fingerprints).
func TestSelectWithBelowThresholdIsExact(t *testing.T) {
	m := deterministicModel(t)
	exact, err := m.Select(8, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := m.SelectWith(nil, 8, 7, nil, &core.ScaleOptions{
		Threshold: 1_000_000, SampleBudget: 64, BatchSize: 32, MaxIter: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(exact) != fingerprint(gated) {
		t.Fatalf("below-threshold SelectWith diverged from the exact path:\n got %s\nwant %s",
			fingerprint(gated), fingerprint(exact))
	}
}

func TestSelectWithScaledDeterministic(t *testing.T) {
	m := deterministicModel(t)
	first, err := m.SelectWith(nil, 8, 7, nil, forceScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(first.SourceRows) != 8 {
		t.Fatalf("scaled Select returned %d rows, want 8", len(first.SourceRows))
	}
	for i := 0; i < 3; i++ {
		st, err := m.SelectWith(nil, 8, 7, nil, forceScale())
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(st) != fingerprint(first) {
			t.Fatalf("scaled Select run %d diverged:\n got %s\nwant %s", i, fingerprint(st), fingerprint(first))
		}
	}
}

// TestSelectWithScaledQuerySubset drives the scaled path through a query:
// representatives must come from the query result, and repeat calls must
// agree.
func TestSelectWithScaledQuerySubset(t *testing.T) {
	m := deterministicModel(t)
	q := &query.Query{Limit: 500}
	first, err := m.SelectWith(q, 6, 5, nil, forceScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range first.SourceRows {
		if r < 0 || r >= 500 {
			t.Fatalf("scaled query select picked row %d outside the 500-row query result", r)
		}
	}
	again, err := m.SelectWith(q, 6, 5, nil, forceScale())
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(first) != fingerprint(again) {
		t.Fatal("scaled query select is not deterministic")
	}
}

// TestScaleOptionsSurviveModelRoundTrip pins the v4 codec section: a model
// pre-processed with the scaled mode configured keeps both the options and
// the selections after save/load.
func TestScaleOptionsSurviveModelRoundTrip(t *testing.T) {
	ds, err := datagen.ByName("FL", 900, 5)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{
		Bins:        binning.Options{MaxBins: 5, Strategy: binning.KDEValleys, Seed: 5},
		Corpus:      corpus.Options{MaxSentences: 100_000, TupleSentences: true, Seed: 5},
		Embedding:   word2vec.Options{Dim: 16, Epochs: 2, Seed: 5},
		ClusterSeed: 11,
		Scale:       core.ScaleOptions{Threshold: 100, SampleBudget: 300, BatchSize: 128, MaxIter: 50},
	}
	m, err := core.Preprocess(ds.T, opt)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := m.Select(8, 7, nil) // model-default scale: 900 >= 100 activates
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := modelio.Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := modelio.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Opt.Scale != opt.Scale {
		t.Fatalf("scale options did not round-trip: got %+v want %+v", loaded.Opt.Scale, opt.Scale)
	}
	restored, err := loaded.Select(8, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(direct) != fingerprint(restored) {
		t.Fatalf("restored scaled model selects differently:\n got %s\nwant %s",
			fingerprint(restored), fingerprint(direct))
	}
}

// TestLargeSelectSmoke is the CI large-selection smoke: preprocess a
// 100k-row generated table once (setup, unbounded), then require a scaled
// full-table Select to finish within a generous wall-clock bound — 30s
// covers the 1-vCPU CI runner with an order of magnitude to spare while
// still catching an accidental O(rows·k·iters) regression, which would blow
// past it.
func TestLargeSelectSmoke(t *testing.T) {
	ds := datagen.Generic(100_000, 10, 6, 3)
	opt := core.Options{
		Bins:        binning.Options{MaxBins: 5, Strategy: binning.KDEValleys, Seed: 3},
		Corpus:      corpus.Options{MaxSentences: 100_000, TupleSentences: true, Seed: 3},
		Embedding:   word2vec.Options{Dim: 8, Epochs: 1, Seed: 3},
		ClusterSeed: 3,
	}
	m, err := core.Preprocess(ds.T, opt)
	if err != nil {
		t.Fatal(err)
	}
	scale := &core.ScaleOptions{Threshold: 50_000}
	start := time.Now()
	st, err := m.SelectWith(nil, 10, 8, nil, scale)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.SourceRows) != 10 {
		t.Fatalf("scaled 100k Select returned %d rows, want 10", len(st.SourceRows))
	}
	if elapsed > 30*time.Second {
		t.Fatalf("scaled 100k Select took %s, over the 30s smoke bound", elapsed)
	}
	t.Logf("scaled 100k Select: %s", elapsed)
}
