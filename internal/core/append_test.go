package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"subtab/internal/binning"
	"subtab/internal/core"
	"subtab/internal/corpus"
	"subtab/internal/modelio"
	"subtab/internal/table"
	"subtab/internal/word2vec"
)

// synthTable builds n rows of a 3-column table (numeric bimodal "num",
// categorical "cat", numeric "flag") with a deterministic layout; shift
// displaces the numeric distribution to provoke drift.
func synthTable(t *testing.T, name string, n int, shift float64) *table.Table {
	t.Helper()
	nums := make([]float64, n)
	flags := make([]float64, n)
	cats := make([]string, n)
	for i := 0; i < n; i++ {
		base := float64(i%10) * 0.5
		if i%2 == 0 {
			base += 20
		}
		nums[i] = base + shift
		cats[i] = []string{"a", "b", "c"}[i%3]
		flags[i] = float64(i % 2)
	}
	tab := table.New(name)
	for _, c := range []*table.Column{
		table.NewNumeric("num", nums),
		table.NewCategorical("cat", cats),
		table.NewNumeric("flag", flags),
	} {
		if err := tab.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func synthOptions() core.Options {
	return core.Options{
		Bins:        binning.Options{MaxBins: 5, Strategy: binning.Quantile, Seed: 3},
		Corpus:      corpus.Options{MaxSentences: 100_000, TupleSentences: true, Seed: 3},
		Embedding:   word2vec.Options{Dim: 12, Epochs: 2, Seed: 3},
		ClusterSeed: 7,
	}
}

func mustPreprocess(t *testing.T, tab *table.Table, opt core.Options) *core.Model {
	t.Helper()
	m, err := core.Preprocess(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAppendIncrementalBasics(t *testing.T) {
	base := synthTable(t, "s", 400, 0)
	m := mustPreprocess(t, base, synthOptions())
	delta := synthTable(t, "s", 20, 0)

	nm, stats, err := m.Append(delta, core.AppendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rebinned {
		t.Fatalf("same-distribution append rebinned: %s", stats.RebinReason)
	}
	if nm.T.NumRows() != 420 {
		t.Fatalf("rows = %d, want 420", nm.T.NumRows())
	}
	if m.T.NumRows() != 400 {
		t.Fatal("append mutated the source model's table")
	}
	// The embedding is shared wholesale when no new tokens appeared.
	if stats.NewTokens == 0 && nm.Emb != m.Emb {
		t.Fatal("no new tokens but the embedding was copied")
	}
	// Old rows' tuple-vectors are frozen.
	cols := make([]int, m.T.NumCols())
	for i := range cols {
		cols[i] = i
	}
	for _, r := range []int{0, 13, 399} {
		a, b := m.RowVector(r, cols), nm.RowVector(r, cols)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d vector changed at dim %d", r, i)
			}
		}
	}
	// Incrementally maintained counts match a full scan of the new codes.
	counts := nm.BinCountsData()
	for c := range counts {
		scan := make([]int64, len(counts[c]))
		for _, code := range nm.B.Codes[c] {
			scan[code]++
		}
		for bin := range scan {
			if scan[bin] != counts[c][bin] {
				t.Fatalf("col %d bin %d: incremental count %d, scan %d", c, bin, counts[c][bin], scan[bin])
			}
		}
	}
	// The appended model selects without error and is deterministic.
	st1, err := nm.Select(8, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := nm.Select(8, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(st1) != fingerprint(st2) {
		t.Fatal("appended model selects nondeterministically")
	}
}

func TestAppendAffinityMatchesScratchRecomputation(t *testing.T) {
	base := synthTable(t, "s", 300, 0)
	m := mustPreprocess(t, base, synthOptions())
	delta := synthTable(t, "s", 15, 0)
	nm, stats, err := m.Append(delta, core.AppendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rebinned {
		t.Fatalf("unexpected rebin: %s", stats.RebinReason)
	}
	// Restore() with nil affinity recomputes from the model's own state —
	// the non-incremental reference path. The incremental update must agree
	// bit for bit (frozen embeddings, exact integer counts).
	ref, err := core.Restore(nm.T, nm.B, nm.Emb, nm.Opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := nm.AffinityData(), ref.AffinityData()
	if len(a) != len(b) {
		t.Fatalf("affinity sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("affinity diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAppendWarmVectorCacheMatchesLazyBuild(t *testing.T) {
	opt := synthOptions()
	base := synthTable(t, "s", 300, 0)
	delta := synthTable(t, "s", 12, 0)

	warm := mustPreprocess(t, base, opt)
	if _, err := warm.Select(6, 3, nil); err != nil { // builds the full-vector cache
		t.Fatal(err)
	}
	warmNext, _, err := warm.Append(delta, core.AppendOptions{})
	if err != nil {
		t.Fatal(err)
	}

	cold := mustPreprocess(t, base, opt)
	coldNext, _, err := cold.Append(delta, core.AppendOptions{})
	if err != nil {
		t.Fatal(err)
	}

	a, err := warmNext.Select(8, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := coldNext.Select(8, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a) != fingerprint(b) {
		t.Fatalf("warm-extended cache selects differently from lazy build:\n%s\nvs\n%s",
			fingerprint(a), fingerprint(b))
	}
}

func TestAppendRebinEqualsFreshPreprocess(t *testing.T) {
	opt := synthOptions()
	base := synthTable(t, "s", 300, 0)
	m := mustPreprocess(t, base, opt)

	for _, tc := range []struct {
		name  string
		delta *table.Table
		opt   core.AppendOptions
	}{
		{"forced", synthTable(t, "s", 10, 0), core.AppendOptions{ForceRebin: true}},
		// 80 disjoint rows against 300: the table distribution shifts by
		// ~0.17, past the 0.1 threshold.
		{"drift", synthTable(t, "s", 80, 500), core.AppendOptions{}},
		// Growth cap: a same-distribution append that pushes cumulative
		// incremental growth past RebinGrowth re-bins even with zero drift.
		{"growth", synthTable(t, "s", 20, 0), core.AppendOptions{RebinGrowth: 0.05}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nm, stats, err := m.Append(tc.delta, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if !stats.Rebinned {
				t.Fatalf("expected a rebin (reason empty, drift %.3f)", stats.MaxDrift)
			}
			concat, err := m.T.AppendRows(tc.delta)
			if err != nil {
				t.Fatal(err)
			}
			fresh := mustPreprocess(t, concat, opt)
			a, err := nm.Select(8, 3, nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := fresh.Select(8, 3, nil)
			if err != nil {
				t.Fatal(err)
			}
			if fingerprint(a) != fingerprint(b) {
				t.Fatalf("rebin path diverges from fresh Preprocess:\n%s\nvs\n%s",
					fingerprint(a), fingerprint(b))
			}
		})
	}
}

// TestAppendFineTunesUnseenItems drives the corner the warm-start exists
// for: an item (bin) that the capped training corpus never sampled gets its
// vector only when appended rows surface it, and pre-existing rows holding
// that item must have their cached tuple-vectors recomputed (they pooled
// over fewer cells before).
func TestAppendFineTunesUnseenItems(t *testing.T) {
	build := func(n int, rareAt func(int) bool) *table.Table {
		nums := make([]float64, n)
		cats := make([]string, n)
		for i := range nums {
			nums[i] = float64(i % 8)
			cats[i] = []string{"a", "b"}[i%2]
			if rareAt(i) {
				cats[i] = "rare"
			}
		}
		tab := table.New("s")
		for _, c := range []*table.Column{table.NewNumeric("num", nums), table.NewCategorical("cat", cats)} {
			if err := tab.AddColumn(c); err != nil {
				t.Fatal(err)
			}
		}
		return tab
	}
	opt := synthOptions()
	// Cap the corpus below the row count; seed 14 is verified to exclude
	// row 7 — the only "rare" row — from the sample. If corpus sampling
	// ever changes, re-pick a seed for which the assertion below holds.
	opt.Corpus.MaxSentences = 100
	opt.Corpus.Seed = 14
	base := build(200, func(i int) bool { return i == 7 })
	m := mustPreprocess(t, base, opt)
	code, ok := base.Column("cat").Dict.Lookup("rare")
	if !ok {
		t.Fatal("setup: no rare category")
	}
	rareItem := m.B.ItemOf(1, m.B.Cols[1].CatToBin[code])
	if m.Emb.HasToken(rareItem) {
		t.Fatal("setup: corpus seed 14 no longer excludes the rare row; pick a new seed")
	}
	if _, err := m.Select(6, 2, nil); err != nil { // warm the vector cache
		t.Fatal(err)
	}

	delta := build(12, func(i int) bool { return i == 1 || i == 7 })
	nm, stats, err := m.Append(delta, core.AppendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rebinned {
		t.Fatalf("unexpected rebin: %s (drift %.3f)", stats.RebinReason, stats.MaxDrift)
	}
	if stats.NewTokens < 1 {
		t.Fatalf("NewTokens = %d, want >= 1", stats.NewTokens)
	}
	if !nm.Emb.HasToken(rareItem) {
		t.Fatal("rare item still has no vector after the fine-tune")
	}
	if stats.RecomputedVectors != 1 {
		t.Fatalf("RecomputedVectors = %d, want 1 (row 7)", stats.RecomputedVectors)
	}
	// The warm-extended cache must agree with a cold lazy build.
	cold := mustPreprocess(t, base, opt)
	coldNext, _, err := cold.Append(delta, core.AppendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := nm.Select(8, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := coldNext.Select(8, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a) != fingerprint(b) {
		t.Fatal("warm-extended cache with recomputed rows diverges from lazy build")
	}
}

func TestAppendZeroRows(t *testing.T) {
	base := synthTable(t, "s", 100, 0)
	m := mustPreprocess(t, base, synthOptions())
	empty := synthTable(t, "s", 0, 0)
	nm, stats, err := m.Append(empty, core.AppendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if nm != m {
		t.Fatal("zero-row append must return the model unchanged")
	}
	if stats.AppendedRows != 0 || stats.Rebinned {
		t.Fatalf("unexpected stats: %+v", stats)
	}
}

func TestAppendSchemaMismatch(t *testing.T) {
	base := synthTable(t, "s", 50, 0)
	m := mustPreprocess(t, base, synthOptions())
	bad := table.New("bad")
	if err := bad.AddColumn(table.NewNumeric("num", []float64{1})); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Append(bad, core.AppendOptions{}); err == nil {
		t.Fatal("schema-mismatched append succeeded")
	}
}

func TestAppendChainAccumulates(t *testing.T) {
	base := synthTable(t, "s", 200, 0)
	m := mustPreprocess(t, base, synthOptions())
	cur := m
	for i := 0; i < 3; i++ {
		next, stats, err := cur.Append(synthTable(t, "s", 10, 0), core.AppendOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Rebinned {
			t.Fatalf("chain step %d rebinned: %s", i, stats.RebinReason)
		}
		cur = next
	}
	if cur.T.NumRows() != 230 {
		t.Fatalf("rows = %d, want 230", cur.T.NumRows())
	}
	if _, err := cur.Select(8, 3, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendAfterModelRoundTripMatchesDirect(t *testing.T) {
	opt := synthOptions()
	base := synthTable(t, "s", 250, 0)
	delta := synthTable(t, "s", 12, 0)
	m := mustPreprocess(t, base, opt)

	var buf bytes.Buffer
	if err := modelio.Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := modelio.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	direct, dStats, err := m.Append(delta, core.AppendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	viaDisk, lStats, err := loaded.Append(delta, core.AppendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", dStats) != fmt.Sprintf("%+v", lStats) {
		t.Fatalf("append stats diverge across a save/load cycle:\n%+v\nvs\n%+v", dStats, lStats)
	}
	a, err := direct.Select(8, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := viaDisk.Select(8, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a) != fingerprint(b) {
		t.Fatal("append after save/load selects differently from direct append")
	}

	// The growth lineage survives persistence: a chained model remembers
	// how many rows bypassed full binning.
	if direct.AppendedSinceRebin() != 12 {
		t.Fatalf("AppendedSinceRebin = %d, want 12", direct.AppendedSinceRebin())
	}
	buf.Reset()
	if err := modelio.Save(&buf, direct); err != nil {
		t.Fatal(err)
	}
	reloaded, err := modelio.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.AppendedSinceRebin() != 12 {
		t.Fatalf("reloaded AppendedSinceRebin = %d, want 12", reloaded.AppendedSinceRebin())
	}
}
