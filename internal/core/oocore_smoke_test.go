// Out-of-core CI smoke: prove the memory bound instead of trusting it.
// The CI workflow generates a 1M-row table with subtab-datagen, points
// SUBTAB_OOC_SMOKE_CSV at it and runs this test under GOMEMLIMIT=256MiB:
// the table is pre-processed, its bin codes are moved to an mmap'd code
// store (inline codes dropped), and a scaled Select with a spill-forcing
// slab budget must finish inside the wall-clock bound with the process
// peak RSS under the asserted ceiling. Without the env var the test skips,
// so routine `go test ./...` runs never pay for the 1M-row setup.
package core_test

import (
	"bufio"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"
	"time"

	"subtab/internal/binning"
	"subtab/internal/core"
	"subtab/internal/corpus"
	"subtab/internal/table"
	"subtab/internal/word2vec"
)

// smokeSelectBound is the hard wall-clock bound on the out-of-core scaled
// Select (not the one-off preprocessing) — generous for the 1-vCPU CI
// runner while still catching an accidental O(rows) regression or a
// store-access path gone quadratic (the measured time is ~0.2s).
const smokeSelectBound = 60 * time.Second

// smokeSteadyRSSBound caps the serving steady state: resident memory after
// the selects, with the heap flushed back to the OS. This is what the
// out-of-core path controls — the table and the embedding stay resident,
// the code matrix and the sampled vectors do not. 1M x 31 FL measures
// ~290MiB here; the bound leaves headroom for runner variance while still
// failing if bin codes or a rows-sized vector slab creep back into the
// steady state.
const smokeSteadyRSSBound = 512 << 20

// smokePeakRSSBound caps the whole run's high-water RSS, preprocessing
// included (CSV parsing dominates it; ~875MiB measured). It exists to
// catch egregious regressions — a second table copy, codes duplicated per
// column scan — not to bound the one-off build tightly.
const smokePeakRSSBound = 1280 << 20

func TestOutOfCoreSmoke(t *testing.T) {
	csvPath := os.Getenv("SUBTAB_OOC_SMOKE_CSV")
	if csvPath == "" {
		t.Skip("set SUBTAB_OOC_SMOKE_CSV to a generated CSV (see the CI out-of-core smoke step)")
	}
	tbl, err := table.ReadCSVFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("table: %d rows x %d cols", tbl.NumRows(), tbl.NumCols())

	// Selection cost does not depend on embedding quality; train small so
	// the smoke's setup stays affordable on one vCPU (mirrors the large
	// bench suite's rationale).
	opt := core.Options{
		Bins:        binning.Options{MaxBins: 5, Strategy: binning.KDEValleys, Seed: 3},
		Corpus:      corpus.Options{MaxSentences: 100_000, TupleSentences: true, Seed: 3},
		Embedding:   word2vec.Options{Dim: 8, Epochs: 1, Seed: 3},
		ClusterSeed: 3,
	}
	m, err := core.Preprocess(tbl, opt)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := m.UseCodeStoreFile(filepath.Join(t.TempDir(), "smoke.codes"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	t.Logf("code store: %d blocks of %d rows, mmap=%v", cs.NumBlocks(), cs.BlockRows(), cs.Mapped())

	// Slab budget below the sampled vectors' size (20000 x 8 x 4B = 640KiB)
	// so the spill path runs under the memory cap too.
	scale := &core.ScaleOptions{Threshold: 50_000, SlabBudgetBytes: 256 << 10}
	start := time.Now()
	st, err := m.SelectWith(nil, 10, 8, nil, scale)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.SourceRows) != 10 {
		t.Fatalf("out-of-core Select returned %d rows, want 10", len(st.SourceRows))
	}
	if elapsed > smokeSelectBound {
		t.Fatalf("out-of-core Select took %s, over the %s smoke bound", elapsed, smokeSelectBound)
	}
	t.Logf("out-of-core scaled Select: %s", elapsed)

	// A warm repeat must agree byte for byte (the sample cache and the
	// spill path compose deterministically).
	again, err := m.SelectWith(nil, 10, 8, nil, scale)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(again) != fingerprint(st) {
		t.Fatal("repeated out-of-core Select diverged")
	}

	// RSS assertions (Linux; elsewhere the wall-clock bound stands alone).
	debug.FreeOSMemory()
	if steady, ok := rssBytes(t, "VmRSS:"); ok {
		t.Logf("steady-state RSS: %d MiB (bound %d MiB)", steady>>20, int64(smokeSteadyRSSBound)>>20)
		if steady > smokeSteadyRSSBound {
			t.Fatalf("steady-state RSS %d MiB exceeds the %d MiB bound — the out-of-core path is not honoring the memory budget",
				steady>>20, int64(smokeSteadyRSSBound)>>20)
		}
	}
	if peak, ok := rssBytes(t, "VmHWM:"); ok {
		t.Logf("peak RSS: %d MiB (bound %d MiB)", peak>>20, int64(smokePeakRSSBound)>>20)
		if peak > smokePeakRSSBound {
			t.Fatalf("peak RSS %d MiB exceeds the %d MiB bound", peak>>20, int64(smokePeakRSSBound)>>20)
		}
	}
	// The steady-state figure must describe a live served model, not one
	// the collector already reclaimed.
	runtime.KeepAlive(m)
}

// rssBytes reads one RSS figure (VmRSS: current, VmHWM: high-water) from
// /proc/self/status; non-Linux platforms report ok=false and skip the
// assertion.
func rssBytes(t *testing.T, key string) (int64, bool) {
	if runtime.GOOS != "linux" {
		return 0, false
	}
	f, err := os.Open("/proc/self/status")
	if err != nil {
		t.Logf("reading /proc/self/status: %v", err)
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || fields[0] != key {
			continue
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb << 10, true
	}
	return 0, false
}
