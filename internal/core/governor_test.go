package core

import (
	"sync"
	"testing"

	"subtab/internal/memgov"
)

// TestSelectRacesReleaseVectorCache is the regression test for the
// resettable-sync.Once tear: ReleaseVectorCache used to reassign
// m.fullVecsOnce while a concurrent selection could be inside Do, so an
// eviction racing a cache build could publish a half-built matrix or panic.
// Run under -race: exact-path selects (which build and read the full-table
// vector cache), scaled selects (which populate the sample cache and gather
// from a warm cache), appends-style cache reads, and evictions all hammer
// the same model; every select must keep returning the byte-identical
// sub-table.
func TestSelectRacesReleaseVectorCache(t *testing.T) {
	tab := ruleTable(t, 300, 3)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.Select(5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	scale := &ScaleOptions{Threshold: 1, SampleBudget: 120}
	baseScaled, err := m.SelectWith(nil, 5, 3, nil, scale)
	if err != nil {
		t.Fatal(err)
	}

	iters := 60
	if testing.Short() {
		iters = 25
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				st, err := m.Select(5, 3, nil)
				if err != nil {
					t.Errorf("select: %v", err)
					return
				}
				for j, r := range st.SourceRows {
					if r != base.SourceRows[j] {
						t.Errorf("select rows diverged under eviction race: %v vs %v", st.SourceRows, base.SourceRows)
						return
					}
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				st, err := m.SelectWith(nil, 5, 3, nil, scale)
				if err != nil {
					t.Errorf("scaled select: %v", err)
					return
				}
				for j, r := range st.SourceRows {
					if r != baseScaled.SourceRows[j] {
						t.Errorf("scaled select rows diverged under eviction race: %v vs %v", st.SourceRows, baseScaled.SourceRows)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters*8; i++ {
			m.ReleaseVectorCache()
		}
	}()
	wg.Wait()
}

// TestGovernorCacheAccounting pins the settlement protocol: the governed
// classes track the caches' true residency through warm-up, eviction, and
// the select-vs-evict race, and always end at zero after a final release.
func TestGovernorCacheAccounting(t *testing.T) {
	tab := ruleTable(t, 300, 4)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	g := memgov.New(0) // unlimited: ledger only
	m.SetGovernor(g)

	if _, err := m.Select(5, 3, nil); err != nil {
		t.Fatal(err)
	}
	wantVec := int64(tab.NumRows()) * int64(m.Emb.Dim()) * 4
	if got := g.ClassBytes(memgov.ClassVectorCache); got != wantVec {
		t.Fatalf("vector-cache class = %d after warm select, want %d", got, wantVec)
	}

	scale := &ScaleOptions{Threshold: 1, SampleBudget: 120}
	if _, err := m.SelectWith(nil, 5, 3, nil, scale); err != nil {
		t.Fatal(err)
	}
	if got := g.ClassBytes(memgov.ClassSampleCache); got <= 0 {
		t.Fatalf("sample-cache class = %d after scaled select, want > 0", got)
	}

	m.ReleaseVectorCache()
	if v, s := g.ClassBytes(memgov.ClassVectorCache), g.ClassBytes(memgov.ClassSampleCache); v != 0 || s != 0 {
		t.Fatalf("classes = %d/%d after release, want 0/0", v, s)
	}

	// Race warm-ups against releases; whatever interleaving happened, a
	// final release must settle both classes back to exactly zero (the
	// generation reconciliation makes a release racing an in-flight grant
	// revoke it).
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := m.Select(5, 3, nil); err != nil {
					t.Errorf("select: %v", err)
					return
				}
				if _, err := m.SelectWith(nil, 5, 3, nil, scale); err != nil {
					t.Errorf("scaled select: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			m.ReleaseVectorCache()
		}
	}()
	wg.Wait()
	m.ReleaseVectorCache()
	if v, s := g.ClassBytes(memgov.ClassVectorCache), g.ClassBytes(memgov.ClassSampleCache); v != 0 || s != 0 {
		t.Fatalf("classes = %d/%d after racing release, want 0/0", v, s)
	}
	if used := g.Used(); used != 0 {
		t.Fatalf("governor used = %d after all releases, want 0", used)
	}
	if g.Peak() < wantVec {
		t.Fatalf("peak = %d never reached the warm cache size %d", g.Peak(), wantVec)
	}

	// SetGovernor on an already-warm model settles the existing residency.
	m2, err := Preprocess(ruleTable(t, 200, 5), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Select(4, 3, nil); err != nil {
		t.Fatal(err)
	}
	g2 := memgov.New(0)
	m2.SetGovernor(g2)
	want2 := int64(200) * int64(m2.Emb.Dim()) * 4
	if got := g2.ClassBytes(memgov.ClassVectorCache); got != want2 {
		t.Fatalf("vector-cache class = %d after SetGovernor on warm model, want %d", got, want2)
	}
}

// TestResidentBytesEstimate sanity-checks the store-weighting estimate:
// positive for a resident model, dominated by its real components, and
// stable across calls (it must be safe and cheap under the store mutex).
func TestResidentBytesEstimate(t *testing.T) {
	tab := ruleTable(t, 300, 6)
	m, err := Preprocess(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := m.ResidentBytes()
	if b <= 0 {
		t.Fatalf("ResidentBytes = %d, want > 0", b)
	}
	// Cells (300 rows × 4 numeric × 8B) + codes (300×5×2B) + embedding are
	// all in; the estimate must at least cover the numeric cells alone.
	if b < 300*4*8 {
		t.Fatalf("ResidentBytes = %d, implausibly small", b)
	}
	if again := m.ResidentBytes(); again != b {
		t.Fatalf("ResidentBytes unstable: %d then %d", b, again)
	}
	// The governed caches are excluded: warming them must not change it.
	if _, err := m.Select(5, 3, nil); err != nil {
		t.Fatal(err)
	}
	if warm := m.ResidentBytes(); warm != b {
		t.Fatalf("ResidentBytes changed after cache warm-up: %d -> %d (caches are separately classed)", b, warm)
	}
	if m.CacheBytes() <= 0 {
		t.Fatal("CacheBytes = 0 after warm select")
	}
}
