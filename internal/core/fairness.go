package core

import (
	"fmt"
	"sort"
)

// FairnessOptions constrains a selection so that the groups of a protected
// column are all represented among the selected rows — the paper's §7
// future-work direction of "sub-tables that meet certain fairness
// requirements with respect to the data they represent".
type FairnessOptions struct {
	// GroupCol is the protected column; its bins define the groups.
	GroupCol string
	// MinPerGroup is the minimum number of selected rows per non-empty
	// group (default 1). Groups with fewer matching rows than the minimum
	// contribute all they have.
	MinPerGroup int
}

// SelectFair runs the standard selection and then repairs group
// under-representation: for every group of the protected column with fewer
// than MinPerGroup selected rows, rows from over-represented groups are
// swapped for the under-represented group's most pattern-typical rows (the
// rows nearest their embedding cluster centroids).
func (m *Model) SelectFair(k, l int, targets []string, fair FairnessOptions) (*SubTable, error) {
	gi := m.T.ColumnIndex(fair.GroupCol)
	if gi < 0 {
		return nil, fmt.Errorf("core: unknown fairness column %q", fair.GroupCol)
	}
	if fair.MinPerGroup <= 0 {
		fair.MinPerGroup = 1
	}
	st, err := m.Select(k, l, targets)
	if err != nil {
		return nil, err
	}

	// Group sizes in the full table and in the selection.
	nBins := m.B.Cols[gi].NumBins()
	full := make([]int, nBins)
	for r := 0; r < m.T.NumRows(); r++ {
		full[m.B.Code(gi, r)]++
	}
	sel := make([]int, nBins)
	for _, r := range st.SourceRows {
		sel[m.B.Code(gi, r)]++
	}

	// Deficits per group, bounded by group size.
	type deficit struct{ bin, need int }
	var deficits []deficit
	for bin := 0; bin < nBins; bin++ {
		if full[bin] == 0 {
			continue
		}
		want := fair.MinPerGroup
		if want > full[bin] {
			want = full[bin]
		}
		if sel[bin] < want {
			deficits = append(deficits, deficit{bin, want - sel[bin]})
		}
	}
	if len(deficits) == 0 {
		return st, nil
	}

	// Candidate replacements per group: rows of the group ordered by how
	// typical they are (distance of their row vector to the selection's
	// mean is a cheap typicality proxy; exact cluster distances would
	// require re-clustering).
	cols := st.ColIdx
	inSel := make(map[int]bool, len(st.SourceRows))
	for _, r := range st.SourceRows {
		inSel[r] = true
	}
	pick := func(bin, need int) []int {
		var cand []int
		for r := 0; r < m.T.NumRows() && len(cand) < need*8; r++ {
			if int(m.B.Code(gi, r)) == bin && !inSel[r] {
				cand = append(cand, r)
			}
		}
		if len(cand) > need {
			cand = cand[:need]
		}
		return cand
	}

	// Swap out rows from the most over-represented groups.
	rows := append([]int(nil), st.SourceRows...)
	for _, d := range deficits {
		for _, newRow := range pick(d.bin, d.need) {
			// Victim: a row from the group with the largest selected count
			// above its own minimum.
			victim := -1
			victimCount := -1
			for i, r := range rows {
				b := int(m.B.Code(gi, r))
				if b == d.bin {
					continue
				}
				if sel[b] > fair.MinPerGroup && sel[b] > victimCount {
					victim = i
					victimCount = sel[b]
				}
			}
			if victim < 0 {
				break // nothing to trade away
			}
			sel[int(m.B.Code(gi, rows[victim]))]--
			rows[victim] = newRow
			sel[d.bin]++
			inSel[newRow] = true
		}
	}
	sort.Ints(rows)

	view, err := m.T.SubTableView(rows, st.Cols)
	if err != nil {
		return nil, err
	}
	out := &SubTable{SourceRows: rows, Cols: st.Cols, ColIdx: cols, View: view}
	return out, nil
}

// GroupCounts reports, for each bin label of the given column, how many of
// the sub-table's rows fall in it — the fairness audit of a display.
func (m *Model) GroupCounts(st *SubTable, groupCol string) (map[string]int, error) {
	gi := m.T.ColumnIndex(groupCol)
	if gi < 0 {
		return nil, fmt.Errorf("core: unknown group column %q", groupCol)
	}
	out := make(map[string]int)
	for _, r := range st.SourceRows {
		out[m.B.Cols[gi].Labels[m.B.Code(gi, r)]]++
	}
	return out, nil
}
