// Package core implements SubTab, the paper's practical sub-table selection
// algorithm (Algorithm 2). It has the two phases of Figure 1:
//
//   - Preprocess: normalize and bin the table, build the tabular-sentence
//     corpus, and train a Word2Vec model over the binned cell items. Executed
//     once, when the table is loaded.
//   - Select: derive a vector per row (the average of its cell vectors) and
//     per column (the average of its cell vectors), k-means each, and take
//     the points nearest the centroids as the sub-table's rows and columns.
//     Executed per display — on the full table or on any query result, reusing
//     the pre-computed cell vectors, which is what makes query-time selection
//     interactive.
//
// Target columns (U*) are forced into the output and excluded from the
// column clustering, exactly as in Algorithm 2 lines 13-17.
package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"subtab/internal/binning"
	"subtab/internal/bitset"
	"subtab/internal/cluster"
	"subtab/internal/corpus"
	"subtab/internal/f32"
	"subtab/internal/metrics"
	"subtab/internal/query"
	"subtab/internal/rules"
	"subtab/internal/table"
	"subtab/internal/word2vec"
)

// ColumnStrategy selects how the sub-table's columns are chosen.
type ColumnStrategy int

const (
	// PatternGroups (default) groups columns by their embedding-derived
	// association affinity — skip-gram input·output products approximate
	// PMI, so bins that co-occur score high — and spends the column budget
	// on whole groups, largest first. Rules span *associated* columns, so
	// co-selecting an associated group is what makes multi-column rules
	// coverable. This is an implementation refinement over Algorithm 2's
	// centroid step, which is under-determined on wide tables (column-mean
	// vectors wash out bin-level structure); see DESIGN.md.
	PatternGroups ColumnStrategy = iota
	// Centroids is the literal Algorithm 2 column step: k-means the
	// column-mean vectors into l−|U*| clusters and take the centroids.
	Centroids
)

// Options configures the SubTab pipeline.
type Options struct {
	// Bins configures binning (paper default: 5 bins, KDE valleys).
	Bins binning.Options
	// Corpus configures sentence construction (paper: 100K-sentence cap).
	Corpus corpus.Options
	// Embedding configures Word2Vec training.
	Embedding word2vec.Options
	// Columns selects the column-selection strategy.
	Columns ColumnStrategy
	// ClusterSeed drives the k-means initializations during selection.
	ClusterSeed int64
	// Scale configures the large-table selection mode (mini-batch k-means
	// over a stratified candidate sample above a row-count threshold). The
	// zero value keeps every selection on the exact path.
	Scale ScaleOptions
}

// Default returns the default settings: the paper's binning and corpus cap,
// tuple-sentences only (see DESIGN.md — column-sentences dilute the
// cross-column association signal), and pattern-group column selection.
func Default() Options {
	return Options{
		Bins:   binning.Options{MaxBins: 5, Strategy: binning.KDEValleys},
		Corpus: corpus.Options{MaxSentences: 100_000, TupleSentences: true},
	}
}

// Model is the output of pre-processing: the binned table plus one embedding
// vector per distinct (column, bin) item.
type Model struct {
	T   *table.Table
	B   *binning.Binned
	Emb *word2vec.Model
	Opt Options

	// items is a zero-copy view of the embedding's input-vector table;
	// itemRow[item] is the matrix row holding the item's vector, or -1 when
	// the item never appeared in the training corpus.
	items   f32.Matrix
	itemRow []int32

	// colAffinity is the flat mc×mc global association-affinity matrix
	// (entry [u*mc+w]), computed once at pre-processing time from the
	// embedding (symmetrized, frequency-weighted best bin match) and reused
	// by every selection.
	colAffinity []float64

	// binCounts[c][bin] is the cumulative number of rows of column c in each
	// bin — the integer form of the frequencies the affinity computation
	// weights by. Preprocess fills it; models restored from older persisted
	// formats rebuild it lazily (one scan of the bin codes). Append updates
	// it incrementally from the delta alone.
	binCountsOnce sync.Once
	binCounts     [][]int64

	// appendedSinceRebin counts rows ingested through the incremental
	// append path since the bin boundaries were last computed (Preprocess
	// or a rebin). Per-append drift checks cannot see slow cumulative
	// drift — each chunk is judged against a distribution that already
	// absorbed its predecessors — so Append also re-bins once this exceeds
	// the growth threshold, bounding staleness to one table-doubling at
	// default settings (classic amortization: the occasional full re-bin
	// stays O(1) per appended row).
	appendedSinceRebin int

	// sampleCache memoizes the scaled path's full-table candidate samples
	// by budget: the stratified reservoir is a pure function of (binning,
	// budget, seed), and warm serving issues many scaled selections over
	// the same model, so the one scan that dominates a scaled select's cost
	// runs once per (model, budget) instead of once per display.
	// Query-restricted selections always sample per call. sampleGen counts
	// cache mutations (under sampleMu) and orders the byte settles with the
	// governor (see governor.go).
	sampleMu    sync.Mutex
	sampleCache map[int][]int
	sampleGen   uint64

	// shardSampler, when set, produces scaled-path candidate samples for a
	// model whose shards are partly remote (the coordinator role; see
	// SetShardSampler). Nil on every locally complete model.
	shardSampler ShardSampler

	// cellSrc, when set, supplies rendered cells for view assembly instead of
	// the in-memory table — a paged column store (internal/colstore) or a
	// coordinator's over-the-wire shard gatherer. See AttachColumnStore.
	cellSrc table.CellSource

	// fullVecs caches the tuple-vectors of every row over all columns
	// (built lazily on the first selection that needs them). Full-table
	// displays — the warm serving steady state — reuse the matrix directly,
	// and row-subset selections over the full column set copy rows out of
	// it, because a tuple-vector depends only on the column set.
	//
	// All three fields are guarded by fullVecsMu; fullVecsReady is
	// additionally an atomic so readers can skip the mutex when the cache is
	// cold. The matrix's backing array is immutable once published, so
	// readers take a header copy under the mutex (cachedFullVecs) and may
	// keep using it after ReleaseVectorCache drops the model's reference —
	// eviction racing an in-flight selection is safe by construction (the
	// resettable sync.Once this replaces could tear mid-Do). fullVecsGen
	// counts publications/releases and orders the governor byte settles.
	fullVecsMu    sync.Mutex
	fullVecs      f32.Matrix
	fullVecsGen   uint64
	fullVecsReady atomic.Bool

	// gov, when set (SetGovernor), holds the memgov accounts the two caches
	// above settle their resident bytes with. See governor.go.
	gov atomic.Pointer[modelGov]
}

// indexItems builds the item-id → embedding-row index over the zero-copy
// vector matrix.
func (m *Model) indexItems() {
	m.items = m.Emb.VectorMatrix()
	m.itemRow = make([]int32, m.B.NumItems())
	for item := range m.itemRow {
		m.itemRow[item] = m.Emb.Index(int32(item))
	}
}

// Preprocess runs the pre-processing phase of Algorithm 2 on table t.
func Preprocess(t *table.Table, opt Options) (*Model, error) {
	b, err := binning.Bin(t, opt.Bins)
	if err != nil {
		return nil, fmt.Errorf("core: binning: %w", err)
	}
	sents := corpus.Build(b, opt.Corpus)
	emb := word2vec.Train(sents, opt.Embedding)
	m := &Model{T: t, B: b, Emb: emb, Opt: opt}
	m.indexItems()
	m.computeColumnAffinities()
	return m, nil
}

// Restore rebuilds a pre-processed model from its serialized parts (package
// modelio) without re-running Preprocess. colAffinity must be the flat
// matrix previously obtained from AffinityData; passing nil recomputes it
// (the only expensive step of restoration).
func Restore(t *table.Table, b *binning.Binned, emb *word2vec.Model, opt Options, colAffinity []float64) (*Model, error) {
	if b.T != t {
		return nil, fmt.Errorf("core: restore: binned representation does not wrap the given table")
	}
	m := &Model{T: t, B: b, Emb: emb, Opt: opt}
	m.indexItems()
	if colAffinity == nil {
		m.computeColumnAffinities()
		return m, nil
	}
	mc := t.NumCols()
	if len(colAffinity) != mc*mc {
		return nil, fmt.Errorf("core: restore: affinity matrix has %d entries, table with %d columns needs %d", len(colAffinity), mc, mc*mc)
	}
	m.colAffinity = colAffinity
	return m, nil
}

// AffinityData returns the precomputed column-affinity matrix as one flat
// row-major slice (entry [u*NumCols+w]). It aliases model memory and must
// not be mutated; it exists so the model can be serialized (package modelio)
// and restored without re-running the affinity computation.
func (m *Model) AffinityData() []float64 { return m.colAffinity }

// AffinityMatrix returns the column-affinity matrix as per-row views into
// the flat data, indexed by original column position. The rows alias model
// memory and must not be mutated.
func (m *Model) AffinityMatrix() [][]float64 {
	mc := m.T.NumCols()
	out := make([][]float64, mc)
	for i := range out {
		out[i] = m.colAffinity[i*mc : (i+1)*mc : (i+1)*mc]
	}
	return out
}

// computeColumnAffinities fills the global pairwise column-affinity matrix
// from the cumulative bin counts. Every (i,j) pair is independent and writes
// disjoint cells, so the upper triangle fans out across workers (dynamically
// scheduled — row i of the triangle costs O(mc−i)) with bit-identical
// results at any worker count.
func (m *Model) computeColumnAffinities() {
	m.colAffinity = m.affinityFromCounts(m.cachedBinCounts(), m.T.NumRows())
}

// cachedBinCounts returns the per-column per-bin row counts, computing them
// with one scan of the bin codes the first time they are needed (models
// restored from format versions that predate serialized counts).
func (m *Model) cachedBinCounts() [][]int64 {
	m.binCountsOnce.Do(func() {
		if m.binCounts != nil {
			return
		}
		mc := m.T.NumCols()
		counts := make([][]int64, mc)
		src := m.B.Source()
		f32.ParallelIndex(mc, f32.Workers(mc), func(c int) {
			f := make([]int64, m.B.Cols[c].NumBins())
			var scratch []uint16
			for blk := 0; blk < src.NumBlocks(); blk++ {
				codes := src.ColumnBlock(c, blk, scratch)
				scratch = codes
				for _, code := range codes {
					f[code]++
				}
			}
			counts[c] = f
		})
		m.binCounts = counts
	})
	return m.binCounts
}

// seedBinCounts installs externally known counts (modelio, Append) so the
// lazy scan never runs. It is a no-op once counts exist.
func (m *Model) seedBinCounts(counts [][]int64) {
	m.binCountsOnce.Do(func() { m.binCounts = counts })
}

// BinCountsData returns the cumulative per-column per-bin row counts (the
// integer form of the affinity frequencies). It aliases model memory and
// must not be mutated; it exists so the counts can be serialized (package
// modelio) and appends on a loaded model stay incremental.
func (m *Model) BinCountsData() [][]int64 { return m.cachedBinCounts() }

// AppendedSinceRebin returns the number of rows ingested incrementally
// since the bin boundaries were last computed (serialized by modelio so
// the growth-triggered re-bin survives a save/load cycle).
func (m *Model) AppendedSinceRebin() int { return m.appendedSinceRebin }

// SetAppendedSinceRebin installs the deserialized lineage counter on a
// freshly restored model (package modelio).
func (m *Model) SetAppendedSinceRebin(n int) error {
	if n < 0 || n > m.T.NumRows() {
		return fmt.Errorf("core: %d appended rows for a %d-row table", n, m.T.NumRows())
	}
	m.appendedSinceRebin = n
	return nil
}

// SeedBinCounts installs deserialized bin counts on a freshly restored
// model (package modelio). Counts must match the binning's shape; models
// with counts already computed ignore the call.
func (m *Model) SeedBinCounts(counts [][]int64) error {
	if len(counts) != len(m.B.Cols) {
		return fmt.Errorf("core: %d count columns for %d binned columns", len(counts), len(m.B.Cols))
	}
	for c := range counts {
		if len(counts[c]) != m.B.Cols[c].NumBins() {
			return fmt.Errorf("core: column %d has %d counts, %d bins", c, len(counts[c]), m.B.Cols[c].NumBins())
		}
	}
	m.seedBinCounts(counts)
	return nil
}

// affinityFromCounts computes the flat affinity matrix for the given
// cumulative counts over n rows. The frequency arithmetic (float64 count ×
// 1/n) reproduces the historical per-row accumulation bit for bit: counting
// in float64 is exact far beyond any table size, and the single multiply by
// the inverse is the same final operation.
func (m *Model) affinityFromCounts(counts [][]int64, n int) []float64 {
	mc := m.T.NumCols()
	inv := 1 / float64(max(1, n))
	freqs := make([][]float64, mc)
	for c := range freqs {
		f := make([]float64, len(counts[c]))
		for i, cnt := range counts[c] {
			f[i] = float64(cnt) * inv
		}
		freqs[c] = f
	}
	aff := make([]float64, mc*mc)
	f32.ParallelIndex(mc, f32.Workers(mc), func(i int) {
		for j := i + 1; j < mc; j++ {
			a := (m.directedAffinity(i, j, freqs[i]) + m.directedAffinity(j, i, freqs[j])) / 2
			aff[i*mc+j], aff[j*mc+i] = a, a
		}
	})
	return aff
}

// ColumnAffinity returns the global association affinity of two columns.
func (m *Model) ColumnAffinity(u, w int) float64 {
	if u == w {
		return 0
	}
	return m.colAffinity[u*m.T.NumCols()+w]
}

// ItemVector returns the embedding of a global item id (nil when unseen).
// The returned slice is a view into the embedding matrix.
func (m *Model) ItemVector(item int32) []float32 {
	if item < 0 || int(item) >= len(m.itemRow) {
		return nil
	}
	row := m.itemRow[item]
	if row < 0 {
		return nil
	}
	return m.items.Row(int(row))
}

// RowVector computes the tuple-vector of source row r over the given column
// indices: the component-wise average of its cell vectors (Alg. 2 line 9).
func (m *Model) RowVector(r int, cols []int) []float32 {
	v := make([]float32, m.Emb.Dim())
	m.rowVectorInto(v, r, cols, make([]int32, len(cols)))
	return v
}

// rowVectorInto writes row r's tuple-vector into v, using idx (len(cols))
// as gather scratch.
func (m *Model) rowVectorInto(v []float32, r int, cols []int, idx []int32) {
	for j, c := range cols {
		idx[j] = m.itemRow[m.B.Item(c, r)]
	}
	f32.MeanPoolInto(v, m.items, idx)
}

// ColVector computes the column-vector of column c over the given source
// rows: the average of its cell vectors (Alg. 2 line 14).
func (m *Model) ColVector(c int, rows []int) []float32 {
	v := make([]float32, m.Emb.Dim())
	m.colVectorInto(v, c, rows, make([]int32, len(rows)))
	return v
}

// colVectorInto writes column c's mean vector into v, using idx (len(rows))
// as gather scratch.
func (m *Model) colVectorInto(v []float32, c int, rows []int, idx []int32) {
	for i, r := range rows {
		idx[i] = m.itemRow[m.B.Item(c, r)]
	}
	f32.MeanPoolInto(v, m.items, idx)
}

// SubTable is a selected k×l sub-table.
type SubTable struct {
	// SourceRows are the selected rows as indices into the original table.
	SourceRows []int
	// Cols are the selected column names, in original table order.
	Cols []string
	// ColIdx are the selected columns as indices into the original table.
	ColIdx []int
	// View is the rendered k×l table.
	View *table.Table
}

// AsMetricSubTable adapts the selection for the metrics package.
func (s *SubTable) AsMetricSubTable() metrics.SubTable {
	return metrics.SubTable{Rows: s.SourceRows, Cols: s.ColIdx}
}

// Select runs the selection phase on the whole table (Q = NULL in Alg. 2).
func (m *Model) Select(k, l int, targets []string) (*SubTable, error) {
	return m.SelectWith(nil, k, l, targets, nil)
}

// SelectQuery runs the selection phase on the result of q. Selection and
// projection reuse the pre-computed cell vectors; for group-by queries, each
// result row is represented by its group's first source row (aggregate cells
// do not exist in T and therefore have no embedding).
func (m *Model) SelectQuery(q *query.Query, k, l int, targets []string) (*SubTable, error) {
	return m.SelectWith(q, k, l, targets, nil)
}

// SelectWith is Select/SelectQuery with a per-call override of the
// large-table mode: scale nil uses the model's configured Options.Scale,
// anything else replaces it for this call only (serving layers expose it as
// a request knob). q nil selects over the whole table.
//
// Where/Select/Limit queries run on the streaming path: the conjunction is
// compiled against the binning (binning.CompileFilter) and evaluated over
// code blocks with per-block residual cell checks, so paged and sharded
// tables filter without materializing a resident copy. Queries the
// evaluator cannot compile (group-by/aggregates, an effective order-by)
// fall back to the resident-cell path — and are refused on paged tables
// instead of silently re-inflating RSS.
func (m *Model) SelectWith(q *query.Query, k, l int, targets []string, scale *ScaleOptions) (*SubTable, error) {
	sc := m.Opt.Scale
	if scale != nil {
		sc = *scale
	}
	if q == nil {
		rows := make([]int, m.T.NumRows())
		for i := range rows {
			rows[i] = i
		}
		cols := make([]int, m.T.NumCols())
		for i := range cols {
			cols[i] = i
		}
		return m.selectFrom(rows, cols, k, l, targets, sc)
	}
	if m.streamableQuery(q) {
		cols, err := m.queryCols(q)
		if err != nil {
			return nil, err
		}
		return m.selectFiltered(q.Where, q.Limit, nil, cols, k, l, targets, sc, exploreOpts{})
	}
	return m.selectWithMaterialized(q, k, l, targets, sc)
}

// selectWithMaterialized is the resident-cell query path: full relational
// evaluation (group-by, aggregates, sorting) via query.Apply. It requires
// the raw cells in memory, so paged tables refuse it — re-materializing a
// resident copy would silently re-inflate exactly the footprint paging
// shed. Streamable queries never come here (see SelectWith).
func (m *Model) selectWithMaterialized(q *query.Query, k, l int, targets []string, sc ScaleOptions) (*SubTable, error) {
	if !m.T.CellsResident() {
		return nil, fmt.Errorf("core: query %q needs group-by/aggregate/order-by evaluation over raw cells, which this paged table does not hold; enable streaming predicates by restricting the query to where/select/limit (%w)", q.String(), query.ErrCellsPaged)
	}
	res, srcRows, err := q.Apply(m.T)
	if err != nil {
		return nil, fmt.Errorf("core: applying query: %w", err)
	}
	// Working columns: the result's columns that exist in T (aggregate
	// columns do not; they are excluded from embedding-based selection).
	var cols []int
	for _, name := range res.ColumnNames() {
		if ci := m.T.ColumnIndex(name); ci >= 0 {
			cols = append(cols, ci)
		}
	}
	if len(cols) == 0 {
		// Pure aggregate result: fall back to all original columns.
		cols = make([]int, m.T.NumCols())
		for i := range cols {
			cols[i] = i
		}
	}
	return m.selectFrom(srcRows, cols, k, l, targets, sc)
}

// selectFrom clusters the candidate rows and columns and picks centroids.
func (m *Model) selectFrom(rows, cols []int, k, l int, targets []string, scale ScaleOptions) (*SubTable, error) {
	return m.selectFromOpts(rows, cols, k, l, targets, scale, exploreOpts{})
}

// exploreOpts carries the exploration-session extensions of a selection.
// The zero value leaves the historical selection path untouched — every
// branch it gates is skipped, which is what keeps the never-recording
// goldens valid.
type exploreOpts struct {
	// preds, on a coordinator with remote shards, is the conjunction pushed
	// into the per-shard scans (the rows argument is then nil: the matching
	// row set exists only as shard-local masks).
	preds []query.Predicate
	// covered marks (column, bin) strata — global item ids — the session has
	// already shown; the stratified reservoir serves uncovered strata first.
	covered *bitset.Set
	// colBias multiplies per-source-column selection scores (DataPilot-style
	// null-rate / view-count weighting); nil means unbiased.
	colBias []float64
}

func (m *Model) selectFromOpts(rows, cols []int, k, l int, targets []string, scale ScaleOptions, opt exploreOpts) (*SubTable, error) {
	if k <= 0 || l <= 0 {
		return nil, fmt.Errorf("core: sub-table dimensions must be positive, got %dx%d", k, l)
	}
	remote := false
	if src := m.ShardSource(); src != nil && !src.Complete() {
		remote = true
	}
	pushdown := remote && len(opt.preds) > 0
	if !pushdown && len(rows) == 0 {
		return nil, fmt.Errorf("core: no rows to select from")
	}
	targetIdx := make(map[int]bool, len(targets))
	for _, name := range targets {
		ci := m.T.ColumnIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("core: unknown target column %q", name)
		}
		targetIdx[ci] = true
	}
	if len(targetIdx) > l {
		return nil, fmt.Errorf("core: %d target columns exceed l=%d", len(targetIdx), l)
	}

	// A model with remote shards cannot read arbitrary cells; the only
	// selections it can serve are the scaled paths whose reads all resolve
	// through the scatter/gather sampler's overlay: the full-table scan, or
	// a predicate pushdown (each peer filters its own rows before scanning).
	if remote {
		if m.shardSampler == nil {
			return nil, fmt.Errorf("core: table has remote shards and no shard sampler installed; selections need a coordinator with shard peers")
		}
		if opt.covered != nil || opt.colBias != nil {
			return nil, fmt.Errorf("core: session-biased selections need the table's shards local")
		}
		if !pushdown {
			if !scale.Active(len(rows)) {
				return nil, fmt.Errorf("core: a table with remote shards serves scaled selections only (set ScaleOptions.Threshold)")
			}
			if len(rows) != m.T.NumRows() || !identityRows(rows) || !identityCols(cols, m.T.NumCols()) {
				return nil, fmt.Errorf("core: a table with remote shards serves full-table selections only (queries need the rows local)")
			}
		} else if scale.Threshold <= 0 {
			return nil, fmt.Errorf("core: a table with remote shards serves scaled selections only (set ScaleOptions.Threshold)")
		}
	}

	// Row selection (Alg. 2 lines 8-12): cluster the tuple-vectors, then
	// pick one representative per cluster. Among each cluster's most-central
	// members we take the row least similar (binned Jaccard, the measure of
	// Def. 3.7) to the rows already chosen: centrality keeps representatives
	// typical of their pattern, the Jaccard tie-break keeps the displayed
	// set diverse.
	//
	// All tuple-vectors go into one contiguous matrix. Full-column
	// selections read the cached full-table matrix (a tuple-vector depends
	// only on the column set); anything else fills a pooled slab in
	// parallel — every row writes only its own matrix row, so the fill is
	// deterministic at any worker count.
	//
	// Above the scale threshold the candidate set is first cut to a
	// deterministic stratified sample and clustered with seeded mini-batch
	// k-means; everything downstream (diversity re-rank, column selection)
	// runs over the sampled candidates only, then maps representatives back
	// to real row ids.
	dim := m.Emb.Dim()
	candRows := rows
	// csrc, when non-nil, is the sampled-rows overlay of a coordinator
	// model: every downstream code read of this selection goes through it
	// instead of the (partly remote) shard source.
	var csrc binning.CodeSource
	var rowSlab *f32.Slab
	var rowRes *cluster.Result
	if pushdown || scale.Active(len(rows)) {
		scale = scale.withDefaults()
		if pushdown {
			fs, ok := m.shardSampler.(FilteredShardSampler)
			if !ok {
				return nil, fmt.Errorf("core: installed shard sampler cannot push predicates down to peers")
			}
			sampled, overlay, matched, err := fs.SampleFiltered(cols, scale.SampleBudget, opt.preds)
			if err != nil {
				return nil, fmt.Errorf("core: scatter/gather sampling: %w", err)
			}
			if matched == 0 {
				return nil, fmt.Errorf("core: no rows to select from")
			}
			if !scale.Active(matched) {
				return nil, fmt.Errorf("core: a table with remote shards serves scaled selections only (%d matching rows under threshold %d)", matched, scale.Threshold)
			}
			candRows, csrc = sampled, overlay
		} else if remote {
			sampled, overlay, err := m.shardSampler.Sample(cols, scale.SampleBudget)
			if err != nil {
				return nil, fmt.Errorf("core: scatter/gather sampling: %w", err)
			}
			candRows, csrc = sampled, overlay
		} else if opt.covered != nil {
			// Session-biased samples depend on mutable session state, so
			// they bypass the per-budget sample cache.
			seed := m.Opt.ClusterSeed ^ scaleSampleSeed
			candRows = stratifiedReservoirBiased(m.B, rows, cols, scale.SampleBudget, seed, opt.covered.Contains)
		} else {
			candRows = m.sampleCandidates(rows, cols, scale.SampleBudget)
		}
		slab, done, err := m.sampledRowSlab(candRows, cols, scale, csrc)
		if err != nil {
			return nil, fmt.Errorf("core: building sampled tuple-vector slab: %w", err)
		}
		defer done()
		rowSlab = slab
		rowRes = m.scaledRowClustering(rowSlab, k, scale)
	} else if identityCols(cols, m.T.NumCols()) && !m.OutOfCore() {
		// Store-backed models skip this branch: warming the n×dim full-table
		// vector cache would resurrect the very footprint the code store
		// exists to shed, so they gather per-request below instead (the
		// gather computes bit-identical vectors; see gatherTupleVectors).
		full := m.fullRowVectors()
		if len(rows) == m.T.NumRows() && identityRows(rows) {
			rowSlab = f32.WrapSlab(full)
		} else {
			buf := getVecBuf(len(rows) * dim)
			defer putVecBuf(buf)
			rowVecs := f32.Wrap(len(rows), dim, *buf)
			f32.GatherRows(rowVecs, full, rows)
			rowSlab = f32.WrapSlab(rowVecs)
		}
	} else {
		buf := getVecBuf(len(rows) * dim)
		defer putVecBuf(buf)
		rowVecs := f32.Wrap(len(rows), dim, *buf)
		m.gatherTupleVectors(rowVecs, rows, cols, nil)
		rowSlab = f32.WrapSlab(rowVecs)
	}
	if rowRes == nil {
		mat, _ := rowSlab.Matrix() // exact-path slabs are always resident
		rowRes = cluster.KMeansMatrix(mat, k, cluster.Options{Seed: m.Opt.ClusterSeed})
	}
	repIdx := m.diverseRepresentatives(rowRes, rowSlab, candRows, cols, 16, csrc)
	selRows := make([]int, 0, len(repIdx))
	for _, i := range repIdx {
		selRows = append(selRows, candRows[i])
	}

	// Column selection: targets are forced; the rest of the budget is spent
	// by the configured strategy.
	var candCols []int
	for _, c := range cols {
		if !targetIdx[c] {
			candCols = append(candCols, c)
		}
	}
	need := l - len(targetIdx)
	selColSet := make(map[int]bool, l)
	for c := range targetIdx {
		selColSet[c] = true
	}
	if need > 0 && len(candCols) > 0 {
		// Column vectors average over candidate rows: on the scaled path
		// that is the stratified sample, which keeps the column step
		// O(SampleBudget) per column too.
		var picked []int
		if opt.colBias != nil {
			picked = m.biasedColumns(candCols, need, opt.colBias)
		} else if m.Opt.Columns == Centroids {
			picked = m.centroidColumns(candCols, candRows, need, csrc)
		} else {
			picked = m.patternGroupColumns(candCols, candRows, need)
		}
		for _, c := range picked {
			selColSet[c] = true
		}
	}

	// Assemble the view with columns in original order.
	st := &SubTable{SourceRows: selRows}
	for c := 0; c < m.T.NumCols(); c++ {
		if selColSet[c] {
			st.ColIdx = append(st.ColIdx, c)
			st.Cols = append(st.Cols, m.T.ColumnAt(c).Name)
		}
	}
	var view *table.Table
	var err error
	if m.cellSrc != nil {
		// Paged cells: gather exactly the k×l selected cells out of the
		// column store (or over the wire) instead of indexing the table.
		view, err = table.GatherView(m.cellSrc, m.T.Name, selRows, st.ColIdx)
	} else {
		view, err = m.T.SubTableView(selRows, st.Cols)
	}
	if err != nil {
		return nil, err
	}
	st.View = view
	return st, nil
}

// diverseRepresentatives picks one row per cluster: among the q members
// nearest each cluster's centroid, the one with the lowest average binned
// Jaccard similarity to the rows already picked. Clusters are visited in
// descending size order; the first (dominant) cluster contributes its most
// central member. The per-point centroid distances and the per-candidate
// Jaccard scans run across workers; each slot is written by exactly one
// index and the final argmin scan is serial with first-wins ties, so the
// result is bit-identical to the serial path. The vectors arrive as a slab:
// resident slabs are scanned in place, spilled slabs chunk by chunk, with
// identical distances either way. src, when non-nil, overrides where the
// Jaccard comparisons read their codes (the coordinator overlay).
func (m *Model) diverseRepresentatives(res *cluster.Result, vecs *f32.Slab, rows, cols []int, q int, src binning.CodeSource) []int {
	if res.K == 0 {
		return nil
	}
	n := vecs.Len()
	ds := make([]float64, n)
	if mat, resident := vecs.Matrix(); resident {
		f32.ParallelRange(n, f32.Workers(n), func(start, end int) {
			for i := start; i < end; i++ {
				ds[i] = f32.SqDist(mat.Row(i), res.Centers[res.Assign[i]])
			}
		})
	} else {
		chunkRows := min(vecs.ChunkRows(), n)
		buf := f32.New(chunkRows, vecs.Dim())
		for start := 0; start < n; start += chunkRows {
			cn := min(chunkRows, n-start)
			chunk := f32.Wrap(cn, vecs.Dim(), buf.Data[:cn*vecs.Dim()])
			vecs.ReadChunk(start, chunk)
			f32.ParallelRange(cn, f32.Workers(cn), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					ds[start+i] = f32.SqDist(chunk.Row(i), res.Centers[res.Assign[start+i]])
				}
			})
		}
	}
	type cand struct {
		idx int
		d   float64
	}
	cands := make([][]cand, res.K)
	for i := 0; i < n; i++ {
		c := res.Assign[i]
		cands[c] = append(cands[c], cand{i, ds[i]})
	}
	for c := range cands {
		sort.Slice(cands[c], func(x, y int) bool { return cands[c][x].d < cands[c][y].d })
		if len(cands[c]) > q {
			cands[c] = cands[c][:q]
		}
	}
	order := make([]int, res.K)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		if res.Sizes[order[x]] != res.Sizes[order[y]] {
			return res.Sizes[order[x]] > res.Sizes[order[y]]
		}
		return order[x] < order[y]
	})
	code := m.B.Code
	if src != nil {
		code = src.Code
	}
	jaccard := func(r1, r2 int) float64 {
		if len(cols) == 0 {
			return 0
		}
		same := 0
		for _, c := range cols {
			if code(c, r1) == code(c, r2) {
				same++
			}
		}
		return float64(same) / float64(len(cols))
	}
	sims := make([]float64, q)
	var out []int
	for _, c := range order {
		if len(cands[c]) == 0 {
			continue
		}
		if len(out) == 0 {
			out = append(out, cands[c][0].idx)
			continue
		}
		cs := cands[c]
		f32.ParallelIndex(len(cs), f32.Workers(len(cs)), func(x int) {
			sim := 0.0
			for _, sel := range out {
				sim += jaccard(rows[cs[x].idx], rows[sel])
			}
			sims[x] = sim / float64(len(out))
		})
		best, bestSim := -1, math.Inf(1)
		for x := range cs {
			if sims[x] < bestSim {
				best, bestSim = cs[x].idx, sims[x]
			}
		}
		out = append(out, best)
	}
	return out
}

// centroidColumns is the literal Algorithm 2 column step: k-means over the
// column-mean vectors, one representative per cluster. src, when non-nil,
// overrides where the column vectors read their codes (the coordinator
// overlay); the gather arithmetic is identical either way.
func (m *Model) centroidColumns(candCols, rows []int, need int, src binning.CodeSource) []int {
	colVecs := f32.New(len(candCols), m.Emb.Dim())
	f32.ParallelRange(len(candCols), f32.Workers(len(candCols)), func(start, end int) {
		idx := make([]int32, len(rows))
		for i := start; i < end; i++ {
			c := candCols[i]
			if src == nil {
				m.colVectorInto(colVecs.Row(i), c, rows, idx)
				continue
			}
			for j, r := range rows {
				idx[j] = m.itemRow[m.B.ItemOf(c, int(src.Code(c, r)))]
			}
			f32.MeanPoolInto(colVecs.Row(i), m.items, idx)
		}
	})
	colRes := cluster.KMeansMatrix(colVecs, need, cluster.Options{Seed: m.Opt.ClusterSeed + 1})
	out := make([]int, 0, need)
	for _, i := range colRes.RepresentativesMatrix(colVecs) {
		out = append(out, candCols[i])
	}
	return out
}

// fullRowVectors lazily builds the tuple-vector matrix of every row over
// the full column set, filled in parallel with disjoint per-row writes. The
// arithmetic per row is exactly rowVectorInto's, so cached vectors are
// bit-identical to freshly computed ones. The build runs under fullVecsMu
// (single-flight: concurrent first selections block instead of building
// twice), and the returned matrix header stays valid even if
// ReleaseVectorCache evicts the cache mid-selection — callers hold their
// own reference to the immutable backing array.
func (m *Model) fullRowVectors() f32.Matrix {
	if mat, ok := m.cachedFullVecs(); ok {
		return mat
	}
	m.fullVecsMu.Lock()
	if m.fullVecsReady.Load() {
		mat := m.fullVecs
		m.fullVecsMu.Unlock()
		return mat
	}
	n := m.T.NumRows()
	cols := make([]int, m.T.NumCols())
	for i := range cols {
		cols[i] = i
	}
	mat := f32.New(n, m.Emb.Dim())
	f32.ParallelRange(n, f32.Workers(n), func(start, end int) {
		idx := make([]int32, len(cols))
		for r := start; r < end; r++ {
			m.rowVectorInto(mat.Row(r), r, cols, idx)
		}
	})
	m.fullVecs = mat
	m.fullVecsReady.Store(true)
	m.fullVecsGen++
	gen := m.fullVecsGen
	m.fullVecsMu.Unlock()
	// Settle outside the mutex: the grow may trigger store eviction, whose
	// callback takes model mutexes. A release racing this settle wins by
	// generation (its higher gen discards this one).
	m.vecAccount().Settle(gen, int64(len(mat.Data))*4)
	return mat
}

// cachedFullVecs returns a header copy of the warm full-table vector cache,
// or ok=false when it is cold. The copy remains valid after a concurrent
// ReleaseVectorCache (the backing array is immutable once published).
func (m *Model) cachedFullVecs() (f32.Matrix, bool) {
	if !m.fullVecsReady.Load() {
		return f32.Matrix{}, false
	}
	m.fullVecsMu.Lock()
	mat, ok := m.fullVecs, m.fullVecsReady.Load()
	m.fullVecsMu.Unlock()
	return mat, ok
}

// seedFullVecs installs a pre-built full-table tuple-vector matrix (the
// append path extends the previous model's warm cache). No-op if a cache is
// already published.
func (m *Model) seedFullVecs(mat f32.Matrix) {
	m.fullVecsMu.Lock()
	if m.fullVecsReady.Load() {
		m.fullVecsMu.Unlock()
		return
	}
	m.fullVecs = mat
	m.fullVecsReady.Store(true)
	m.fullVecsGen++
	gen := m.fullVecsGen
	m.fullVecsMu.Unlock()
	m.vecAccount().Settle(gen, int64(len(mat.Data))*4)
}

// identityCols reports whether cols is exactly 0..mc-1.
func identityCols(cols []int, mc int) bool {
	if len(cols) != mc {
		return false
	}
	for i, c := range cols {
		if c != i {
			return false
		}
	}
	return true
}

// identityRows reports whether rows is 0..len(rows)-1.
func identityRows(rows []int) bool {
	for i, r := range rows {
		if r != i {
			return false
		}
	}
	return true
}

// vecBufPool recycles the flat tuple-vector slab across Selects: warm
// serving issues many selections over the same model, and the slab (rows ×
// dim floats) is by far the largest per-request allocation.
var vecBufPool = sync.Pool{New: func() any { return new([]float32) }}

func getVecBuf(n int) *[]float32 {
	buf := vecBufPool.Get().(*[]float32)
	if cap(*buf) < n {
		*buf = make([]float32, n)
	}
	*buf = (*buf)[:n]
	return buf
}

func putVecBuf(buf *[]float32) { vecBufPool.Put(buf) }

// patternGroupColumns groups candidate columns by pairwise association
// affinity (precomputed globally at pre-processing time) and spends the
// budget on whole groups (largest mass first), padding any remaining budget
// with the columns of highest salience.
func (m *Model) patternGroupColumns(candCols, rows []int, need int) []int {
	mcols := len(candCols)
	if need >= mcols {
		return append([]int(nil), candCols...)
	}

	// Pairwise affinities from the precomputed global matrix.
	aff := make([][]float64, mcols)
	for i := range aff {
		aff[i] = make([]float64, mcols)
	}
	var vals []float64
	for i := 0; i < mcols; i++ {
		for j := i + 1; j < mcols; j++ {
			a := m.ColumnAffinity(candCols[i], candCols[j])
			aff[i][j], aff[j][i] = a, a
			vals = append(vals, a)
		}
	}
	if len(vals) == 0 {
		return candCols[:need]
	}
	mean, std := meanStd(vals)
	threshold := mean + 0.75*std

	// Union-find over strong edges.
	parent := make([]int, mcols)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < mcols; i++ {
		for j := i + 1; j < mcols; j++ {
			if aff[i][j] >= threshold {
				parent[find(i)] = find(j)
			}
		}
	}
	groups := map[int][]int{}
	for i := range parent {
		groups[find(i)] = append(groups[find(i)], i)
	}
	// Salience of a column: its strongest affinity to any other column.
	salience := make([]float64, mcols)
	for i := 0; i < mcols; i++ {
		best := math.Inf(-1)
		for j := 0; j < mcols; j++ {
			if j != i && aff[i][j] > best {
				best = aff[i][j]
			}
		}
		salience[i] = best
	}
	type group struct {
		members []int
		mass    float64
	}
	var ranked []group
	for _, g := range groups {
		if len(g) < 2 {
			continue // singletons join the salience pool
		}
		mass := 0.0
		for _, i := range g {
			for _, j := range g {
				if i < j {
					mass += aff[i][j] - mean // positive part above background
				}
			}
		}
		// Order members as a greedy affinity core — start from the group's
		// strongest pair, then repeatedly append the member with the highest
		// total affinity to the members already kept — so that truncation
		// preserves tightly associated column sets (the rule-bearing cores)
		// rather than weakly connected hubs.
		ranked = append(ranked, group{members: greedyCore(aff, g), mass: mass})
	}
	sort.Slice(ranked, func(x, y int) bool {
		if len(ranked[x].members) != len(ranked[y].members) {
			return len(ranked[x].members) > len(ranked[y].members)
		}
		return ranked[x].mass > ranked[y].mass
	})

	picked := make([]int, 0, need)
	taken := make([]bool, mcols)
	for _, g := range ranked {
		for _, i := range g.members {
			if len(picked) >= need {
				break
			}
			picked = append(picked, candCols[i])
			taken[i] = true
		}
	}
	// Pad with the most salient leftover columns.
	if len(picked) < need {
		rest := make([]int, 0, mcols)
		for i := 0; i < mcols; i++ {
			if !taken[i] {
				rest = append(rest, i)
			}
		}
		sort.Slice(rest, func(x, y int) bool { return salience[rest[x]] > salience[rest[y]] })
		for _, i := range rest {
			if len(picked) >= need {
				break
			}
			picked = append(picked, candCols[i])
		}
	}
	return picked
}

// directedAffinity measures how strongly column u's bins associate with
// column w: the frequency-weighted mean, over u's bins, of the best
// association with any of w's bins.
func (m *Model) directedAffinity(u, w int, uFreq []float64) float64 {
	b := m.B
	s, tot := 0.0, 0.0
	for bi, f := range uFreq {
		if f == 0 {
			continue
		}
		best := math.Inf(-1)
		for bj := 0; bj < b.Cols[w].NumBins(); bj++ {
			if a := m.Emb.Association(b.ItemOf(u, bi), b.ItemOf(w, bj)); a > best {
				best = a
			}
		}
		if math.IsInf(best, -1) {
			continue
		}
		s += f * best
		tot += f
	}
	if tot == 0 {
		return 0
	}
	return s / tot
}

// greedyCore orders a group's members by greedy max-affinity growth: the
// strongest pair first, then whichever member is most affine to the kept
// set.
func greedyCore(aff [][]float64, group []int) []int {
	if len(group) <= 2 {
		return group
	}
	bi, bj, best := group[0], group[1], math.Inf(-1)
	for x := 0; x < len(group); x++ {
		for y := x + 1; y < len(group); y++ {
			if a := aff[group[x]][group[y]]; a > best {
				bi, bj, best = group[x], group[y], a
			}
		}
	}
	kept := []int{bi, bj}
	inKept := map[int]bool{bi: true, bj: true}
	for len(kept) < len(group) {
		bestM, bestA := -1, math.Inf(-1)
		for _, m := range group {
			if inKept[m] {
				continue
			}
			a := 0.0
			for _, kmem := range kept {
				a += aff[m][kmem]
			}
			if a > bestA {
				bestM, bestA = m, a
			}
		}
		kept = append(kept, bestM)
		inKept[bestM] = true
	}
	return kept
}

func meanStd(xs []float64) (float64, float64) {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return m, math.Sqrt(v / float64(len(xs)))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Highlight computes, for each sub-table row, one covered association rule
// to highlight (at most one per row, as in the paper's Figure 1 UI) and
// returns a cell predicate for table.Render plus the chosen rule index per
// row (-1 when none).
func Highlight(b *binning.Binned, rs []rules.Rule, st *SubTable) (func(r, ci int) bool, []int) {
	colPos := make(map[int]int, len(st.ColIdx)) // table col -> view col
	colSet := make(map[int]bool, len(st.ColIdx))
	for vi, c := range st.ColIdx {
		colPos[c] = vi
		colSet[c] = true
	}
	perRow := make([]int, len(st.SourceRows))
	mark := make(map[[2]int]bool)
	for vi, srcRow := range st.SourceRows {
		perRow[vi] = -1
		best, bestSize := -1, 0
		for ri := range rs {
			r := &rs[ri]
			if !r.Tuples.Contains(srcRow) {
				continue
			}
			ok := true
			for _, c := range r.Cols {
				if !colSet[c] {
					ok = false
					break
				}
			}
			if ok && len(r.Cols) > bestSize {
				best, bestSize = ri, len(r.Cols)
			}
		}
		perRow[vi] = best
		if best >= 0 {
			for _, c := range rs[best].Cols {
				mark[[2]int{vi, colPos[c]}] = true
			}
		}
	}
	return func(r, ci int) bool { return mark[[2]int{r, ci}] }, perRow
}
