package word2vec

import (
	"math"
	"math/rand"
	"testing"
)

func TestDot(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil) = %v", got)
	}
}

func TestContextVector(t *testing.T) {
	sents := [][]int32{{1, 2}, {2, 3}, {1, 3}}
	m := Train(sents, Options{Dim: 8, Epochs: 2, Seed: 1})
	for _, tok := range []int32{1, 2, 3} {
		cv := m.ContextVector(tok)
		if len(cv) != 8 {
			t.Fatalf("context vector len = %d", len(cv))
		}
	}
	if m.ContextVector(99) != nil {
		t.Fatal("unseen token should have nil context vector")
	}
}

func TestAssociationUnseen(t *testing.T) {
	m := Train([][]int32{{1, 2}}, Options{Dim: 4, Epochs: 1, Seed: 1})
	if got := m.Association(1, 99); got != 0 {
		t.Fatalf("association with unseen = %v", got)
	}
	if got := m.Association(99, 1); got != 0 {
		t.Fatalf("association with unseen = %v", got)
	}
}

func TestAssociationSymmetric(t *testing.T) {
	sents := planted(500, 5)
	m := Train(sents, Options{Dim: 8, Epochs: 2, Seed: 5})
	if a, b := m.Association(0, 1), m.Association(1, 0); math.Abs(a-b) > 1e-9 {
		t.Fatalf("association not symmetric: %v vs %v", a, b)
	}
}

// TestAssociationSeparatesCooccurrence is the core property behind
// pattern-group column selection: tokens that genuinely co-occur must score
// a higher input·output association than tokens that never do.
func TestAssociationSeparatesCooccurrence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var sents [][]int32
	// Tokens 0 and 1 always co-occur (plus one noise partner from 10..59);
	// tokens 0 and 2 never co-occur.
	for i := 0; i < 6000; i++ {
		noise := func() int32 { return int32(10 + rng.Intn(50)) }
		if i%2 == 0 {
			sents = append(sents, []int32{0, 1, noise()})
		} else {
			sents = append(sents, []int32{2, noise(), noise()})
		}
	}
	m := Train(sents, Options{Dim: 16, Epochs: 6, Window: 3, Seed: 17})
	together := m.Association(0, 1)
	apart := m.Association(0, 2)
	if together <= apart {
		t.Fatalf("co-occurring association %v should exceed never-co-occurring %v", together, apart)
	}
	// The margin should be material, not a rounding artifact.
	if together-apart < 0.5 {
		t.Fatalf("association margin too small: %v vs %v", together, apart)
	}
}
