package word2vec

// splitmix is the pseudo-random stream behind the deterministic trainer: one
// independent stream per (seed, epoch, chunk), advanced only by that chunk's
// own draws. The generator (splitmix64, Steele et al. 2014) and the bounded
// reduction below are part of the determinism contract — a chunk's draw
// sequence is a pure function of its stream seed, never of worker count,
// scheduling, or any global counter.
//
// It is also much cheaper than math/rand's rngSource: the training inner
// loop draws ~25 values per center position (context positions plus negative
// samples), so generator cost is a first-order term of the preprocess cold
// path.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n) for 0 < n <= 1<<32 via the multiply-high
// reduction on the top 32 bits. The map is negligibly biased (< n/2^32 —
// immaterial for sentence positions and unigram-table draws) but exact and
// fixed, which is what the bit-reproducibility contract needs.
func (r *splitmix) intn(n int) int {
	return int((r.next() >> 32) * uint64(n) >> 32)
}

// chunkRNG derives the stream for one (epoch, chunk) cell of a training run.
// The three inputs are folded with distinct odd multipliers and passed
// through one splitmix step so adjacent cells land in unrelated regions of
// the state space.
func chunkRNG(seed int64, epoch, chunk int) splitmix {
	r := splitmix{uint64(seed) ^
		uint64(epoch+1)*0xa0761d6478bd642f ^
		uint64(chunk+1)*0xe7037ed1a0b428db}
	r.s = r.next()
	return r
}
