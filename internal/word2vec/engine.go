package word2vec

import (
	"sync"
	"sync/atomic"

	"subtab/internal/f32"
)

// Deterministic sharded-gradient training.
//
// The corpus is split once into fixed-order chunks of consecutive sentences
// (see buildChunks — boundaries depend only on the corpus, never on the
// worker count). Chunks are processed in rounds of
// roundChunks: within a round the shared matrices are frozen, each chunk's
// worker runs plain sequential SGD against a private copy-on-first-touch
// overlay of the rows it reads or writes, and when every chunk of the round
// has finished, the per-chunk sparse deltas (overlay minus snapshot) are
// merged back into the shared matrices in ascending chunk order.
//
// Three schedule choices make the output a pure function of (corpus,
// Options) at ANY worker count:
//
//   - each chunk's rng stream is chunkRNG(seed, epoch, chunkIndex) — derived
//     from the chunk's identity, not from which worker ran it;
//   - the learning rate of a center position is computed from its global
//     position (epoch*epochCenters + chunk.start + offset), replacing the
//     old shared atomic counter whose interleaving made the schedule
//     scheduling-dependent;
//   - delta merges happen in chunk order, so the float32 addition order per
//     row is fixed.
//
// Workers only changes how many of a round's chunks run concurrently;
// parallelism is therefore capped at roundChunks per round, and a run with
// Workers=1 executes the exact same chunk programs serially. Rows below
// trainer.frozen (FineTune's pre-existing vocabulary) are read straight from
// the shared matrices and never enter an overlay, so they stay byte-frozen.
const (
	// Chunk size adapts to the corpus so every epoch gets at least
	// ~epochRounds merge rounds: chunks trained against one snapshot must
	// stay a small fraction of an epoch or staleness degrades embedding
	// quality on small corpora. The bounds keep chunks large enough that the
	// per-chunk overlay copy and delta merge are noise next to the training
	// arithmetic, and small enough that a round's summed deltas cannot
	// overshoot. The target is derived from the corpus alone — never from
	// Workers — so the schedule stays worker-count independent.
	maxChunkCenters = 2048
	minChunkCenters = 64
	epochRounds     = 64
	// roundChunks is the number of chunks per merge round — the parallelism
	// cap. Fixed (never derived from Workers) so the round structure, and
	// with it the output, is worker-count independent. Quality pins the
	// ROUND's center count (the staleness window), so fewer, larger chunks
	// per round cost nothing in quality while halving the per-chunk overhead
	// (overlay first-touch copies, delta pack/merge).
	roundChunks = 4
	// negAttempts bounds negative resampling per slot (see trainer.pair).
	negAttempts = 16
	// deltaClamp bounds each packed delta component. Rounds SUM the deltas of
	// every chunk that touched a row; at high learning rates (EmbDI's 0.1)
	// that summation can overshoot and oscillate to ±Inf. Healthy updates are
	// orders of magnitude below the clamp, so it only engages to keep a
	// diverging run finite — and it is applied per chunk before the merge, so
	// the result is still a pure function of (corpus, Options).
	deltaClamp = 1.0
)

// chunk is a fixed run of consecutive sentences plus the number of center
// positions that precede it within one epoch (the LR-schedule offset).
type chunk struct {
	lo, hi int
	start  int64
}

// buildChunks partitions sentences at sentence boundaries into chunks of
// >= target center positions (sentences shorter than 2 tokens contribute
// none) and returns the per-epoch center total. The target adapts to the
// corpus: epochCenters/(roundChunks*epochRounds), clamped to
// [minChunkCenters, maxChunkCenters].
func buildChunks(sents [][]int32) ([]chunk, int64) {
	var epochCenters int64
	for _, s := range sents {
		if len(s) >= 2 {
			epochCenters += int64(len(s))
		}
	}
	target := epochCenters / (roundChunks * epochRounds)
	if target < minChunkCenters {
		target = minChunkCenters
	}
	if target > maxChunkCenters {
		target = maxChunkCenters
	}
	var chunks []chunk
	var done int64
	cur := chunk{lo: 0, start: 0}
	var centers int64
	for i, s := range sents {
		if len(s) >= 2 {
			centers += int64(len(s))
		}
		if centers >= target {
			cur.hi = i + 1
			chunks = append(chunks, cur)
			done += centers
			cur = chunk{lo: i + 1, start: done}
			centers = 0
		}
	}
	if centers > 0 {
		cur.hi = len(sents)
		chunks = append(chunks, cur)
		done += centers
	}
	return chunks, done
}

// shadowMat is a copy-on-first-touch overlay over one shared matrix. Rows
// materialize on first access (copied from the frozen shared snapshot) and
// all chunk-local updates land here; generation stamps make per-chunk reset
// O(1).
type shadowMat struct {
	data    []float32
	gen     []uint32
	cur     uint32
	touched []int32
}

func newShadowMat(rows, dim int) *shadowMat {
	return &shadowMat{data: make([]float32, rows*dim), gen: make([]uint32, rows)}
}

func (s *shadowMat) reset() {
	s.cur++
	if s.cur == 0 { // generation counter wrapped: invalidate every stamp
		for i := range s.gen {
			s.gen[i] = ^uint32(0)
		}
		s.cur = 1
	}
	s.touched = s.touched[:0]
}

func (s *shadowMat) row(src []float32, r, dim int) []float32 {
	off := r * dim
	if s.gen[r] != s.cur {
		s.gen[r] = s.cur
		copy(s.data[off:off+dim], src[off:off+dim])
		s.touched = append(s.touched, int32(r))
	}
	return s.data[off : off+dim : off+dim]
}

// shadow is one worker's scratch state: overlays for both matrices plus the
// per-pair gradient accumulator.
type shadow struct {
	in, out *shadowMat
	grad    []float32
	tvs     [][]float32 // per-slot target rows, reused across slots
	ids     []int       // per-slot accepted target ids, reused across slots
}

// deltaSlot carries one chunk's packed sparse deltas (touched rows and
// overlay-minus-snapshot values) from its worker to the in-order merge.
type deltaSlot struct {
	inRows, outRows []int32
	inVals, outVals []float32
}

// trainer runs the sharded-gradient schedule over pre-encoded (dense-index)
// sentences, updating vecs/ctx in place.
type trainer struct {
	dim          int
	vecs, ctx    []float32
	sents        [][]int32 // dense-index sentences
	chunks       []chunk
	epochCenters int64
	total        int64 // epochCenters * Epochs
	unigram      []int32
	opt          Options
	frozen       int // rows below this index are read-only (FineTune)
	rows         int
}

func (t *trainer) run() {
	if len(t.chunks) == 0 || t.total <= 0 {
		return
	}
	workers := t.opt.Workers
	if workers > roundChunks {
		workers = roundChunks
	}
	if workers > len(t.chunks) {
		workers = len(t.chunks)
	}
	if workers < 1 {
		workers = 1
	}
	shadows := make([]*shadow, workers)
	for i := range shadows {
		shadows[i] = &shadow{
			in:   newShadowMat(t.rows, t.dim),
			out:  newShadowMat(t.rows, t.dim),
			grad: make([]float32, t.dim),
			tvs:  make([][]float32, 0, t.opt.Negatives+1),
		}
	}
	slots := make([]deltaSlot, roundChunks)

	for epoch := 0; epoch < t.opt.Epochs; epoch++ {
		for base := 0; base < len(t.chunks); base += roundChunks {
			n := len(t.chunks) - base
			if n > roundChunks {
				n = roundChunks
			}
			if workers <= 1 || n == 1 {
				for i := 0; i < n; i++ {
					t.processChunk(epoch, base+i, shadows[0], &slots[i])
				}
			} else {
				var next atomic.Int64
				var wg sync.WaitGroup
				for w := 0; w < workers && w < n; w++ {
					wg.Add(1)
					go func(sh *shadow) {
						defer wg.Done()
						for {
							i := int(next.Add(1)) - 1
							if i >= n {
								return
							}
							t.processChunk(epoch, base+i, sh, &slots[i])
						}
					}(shadows[w])
				}
				wg.Wait()
			}
			// Merge in ascending chunk order: per row the adds commute only
			// up to float rounding, so the fixed order is what pins the bits.
			for i := 0; i < n; i++ {
				t.apply(&slots[i])
			}
		}
	}
}

// apply folds one chunk's packed deltas into the shared matrices.
func (t *trainer) apply(s *deltaSlot) {
	dim := t.dim
	for ti, r := range s.inRows {
		off := int(r) * dim
		f32.Add(t.vecs[off:off+dim], s.inVals[ti*dim:ti*dim+dim])
	}
	for ti, r := range s.outRows {
		off := int(r) * dim
		f32.Add(t.ctx[off:off+dim], s.outVals[ti*dim:ti*dim+dim])
	}
}

// pack converts an overlay into slot deltas: for every touched row,
// value = overlay - snapshot. Runs on the worker before the round barrier,
// while the shared matrix is still the untouched snapshot.
func pack(sm *shadowMat, src []float32, dim int, rows *[]int32, vals *[]float32) {
	*rows = append((*rows)[:0], sm.touched...)
	need := len(sm.touched) * dim
	if cap(*vals) < need {
		*vals = make([]float32, need)
	}
	*vals = (*vals)[:need]
	for ti, r := range sm.touched {
		off := int(r) * dim
		dst := (*vals)[ti*dim : ti*dim+dim]
		cur := sm.data[off : off+dim]
		snap := src[off : off+dim]
		for i := range dst {
			d := cur[i] - snap[i]
			if d > deltaClamp {
				d = deltaClamp
			} else if d < -deltaClamp {
				d = -deltaClamp
			}
			dst[i] = d
		}
	}
}

// processChunk trains one chunk against the round snapshot and leaves its
// packed deltas in slot.
func (t *trainer) processChunk(epoch, ci int, sh *shadow, slot *deltaSlot) {
	c := t.chunks[ci]
	rng := chunkRNG(t.opt.Seed, epoch, ci)
	sh.in.reset()
	sh.out.reset()
	dim := t.dim
	lr0 := t.opt.LearningRate
	minLR := lr0 / 100
	pos := int64(epoch)*t.epochCenters + c.start
	invTotal := 1 / float64(t.total)
	window := t.opt.Window

	for si := c.lo; si < c.hi; si++ {
		sent := t.sents[si]
		if len(sent) < 2 {
			continue
		}
		nCtx := window
		if nCtx > len(sent)-1 {
			nCtx = len(sent) - 1
		}
		for ciPos, center := range sent {
			lr := lr0 * (1 - float64(pos)*invTotal)
			if lr < minLR {
				lr = minLR
			}
			pos++
			cIdx := int(center)
			trainCenter := cIdx >= t.frozen
			var cv []float32
			if trainCenter {
				cv = sh.in.row(t.vecs, cIdx, dim)
			} else {
				off := cIdx * dim
				cv = t.vecs[off : off+dim : off+dim]
			}
			if trainCenter && t.frozen == 0 && t.opt.Negatives < f32.SGSlotMaxBatch {
				t.centerSlots(sh, &rng, cv, sent, ciPos, nCtx, float32(lr))
				continue
			}
			for k := 0; k < nCtx; k++ {
				// Sample a context position != ciPos uniformly.
				cj := rng.intn(len(sent) - 1)
				if cj >= ciPos {
					cj++
				}
				t.pair(sh, &rng, cv, trainCenter, int(sent[cj]), float32(lr))
			}
		}
	}
	pack(sh.in, t.vecs, dim, &slot.inRows, &slot.inVals)
	pack(sh.out, t.ctx, dim, &slot.outRows, &slot.outVals)
}

// centerSlots runs every slot of one center position on the Train-only hot
// path (no frozen rows, Negatives < SGSlotMaxBatch): for each sampled context
// it presamples the slot's targets — resampling any draw that collides with
// an already-accepted target, see Options.Negatives — and hands the whole
// slot to the batched fused kernel. Deduplication makes every target row of a
// slot distinct by construction, so SGSlotDistinct's up-front dots are exact.
func (t *trainer) centerSlots(sh *shadow, rng *splitmix, cv []float32, sent []int32, ciPos, nCtx int, lr float32) {
	dim := t.dim
	grad := sh.grad
	unigram := t.unigram
	var ids [f32.SGSlotMaxBatch]int
	for k := 0; k < nCtx; k++ {
		// Sample a context position != ciPos uniformly.
		cj := rng.intn(len(sent) - 1)
		if cj >= ciPos {
			cj++
		}
		ctx := int(sent[cj])
		ids[0] = ctx
		nt := 1
		tvs := append(sh.tvs[:0], sh.out.row(t.ctx, ctx, dim))
		for n := 1; n <= t.opt.Negatives; n++ {
			// sampleNegative, manually inlined on this hot path.
			accepted := false
			var target int
			for a := 0; a < negAttempts; a++ {
				target = int(unigram[rng.intn(len(unigram))])
				ok := true
				for _, id := range ids[:nt] {
					if id == target {
						ok = false
						break
					}
				}
				if ok {
					accepted = true
					break
				}
			}
			if !accepted {
				continue
			}
			ids[nt] = target
			nt++
			tvs = append(tvs, sh.out.row(t.ctx, target, dim))
		}
		sh.tvs = tvs
		f32.SGSlotDistinct(lr, cv, grad, tvs)
	}
}

// sampleNegative draws a negative target that collides with none of taken
// (the positive context and the slot's already-accepted negatives), redrawing
// on collision up to negAttempts draws. A degenerate unigram table (single-
// token vocabulary) therefore skips the negative instead of spinning; see
// Options.Negatives for the contract.
func (t *trainer) sampleNegative(rng *splitmix, taken []int) (int, bool) {
	for a := 0; a < negAttempts; a++ {
		target := int(t.unigram[rng.intn(len(t.unigram))])
		ok := true
		for _, id := range taken {
			if id == target {
				ok = false
				break
			}
		}
		if ok {
			return target, true
		}
	}
	return 0, false
}

// pair applies one positive update (center, ctx) plus exactly Negatives
// negative updates (deduplicated by resampling, exactly as centerSlots does).
// This is the general path — it handles freeze-boundary cases (FineTune) and
// Negatives >= SGSlotMaxBatch. cv is the center's overlay row (or the frozen
// shared row during a fine-tune); the gradient on the center accumulates in
// sh.grad and lands once at the end, as in the classic word2vec C inner loop.
func (t *trainer) pair(sh *shadow, rng *splitmix, cv []float32, trainCenter bool, ctx int, lr float32) {
	dim := t.dim
	grad := sh.grad
	if trainCenter {
		f32.Zero(grad)
	}
	ids := append(sh.ids[:0], ctx)
	for n := 0; n <= t.opt.Negatives; n++ {
		target := ctx
		var label float32
		if n == 0 {
			label = 1
		} else {
			tg, ok := t.sampleNegative(rng, ids)
			if !ok {
				continue
			}
			target = tg
			ids = append(ids, target)
		}
		trainTarget := target >= t.frozen
		if !trainCenter && !trainTarget {
			continue
		}
		var tv []float32
		if trainTarget {
			tv = sh.out.row(t.ctx, target, dim)
		} else {
			off := target * dim
			tv = t.ctx[off : off+dim : off+dim]
		}
		if trainCenter && trainTarget {
			// One fused kernel computes the logistic gradient and applies it —
			// accumulating g*tv into grad (reading the pre-update tv, as the
			// classic interleaved loop does) and g*cv into tv.
			f32.SGPair(label, lr, cv, tv, grad)
		} else {
			g := (label - f32.Sigmoid32(f32.Dot32(cv, tv))) * lr
			if trainCenter {
				f32.Axpy(g, tv, grad)
			} else {
				f32.Axpy(g, cv, tv)
			}
		}
	}
	sh.ids = ids[:0]
	if trainCenter {
		f32.Add(cv, grad)
	}
}

// absorb extends vocab/tokens/counts with the corpus (new tokens get dense
// indices in first-appearance order) and returns the sentences re-encoded as
// dense indices in one flat backing array. The training loop then indexes
// the matrices directly — the one map lookup per token here replaces the old
// lookup per sampled pair per epoch.
func absorb(sentences [][]int32, vocab map[int32]int32, tokens *[]int32, counts *[]int64) [][]int32 {
	total := 0
	for _, s := range sentences {
		total += len(s)
	}
	backing := make([]int32, total)
	dense := make([][]int32, len(sentences))
	off := 0
	for si, s := range sentences {
		d := backing[off : off+len(s) : off+len(s)]
		off += len(s)
		for i, tok := range s {
			idx, ok := vocab[tok]
			if !ok {
				idx = int32(len(*tokens))
				vocab[tok] = idx
				*tokens = append(*tokens, tok)
				*counts = append(*counts, 0)
			}
			(*counts)[idx]++
			d[i] = idx
		}
		dense[si] = d
	}
	return dense
}
