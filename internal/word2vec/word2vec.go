// Package word2vec implements skip-gram word embedding with negative
// sampling (Mikolov et al., the paper's reference [21]) over integer tokens.
// It is the embedding engine behind SubTab's pre-processing phase, replacing
// gensim in the paper's Python implementation.
//
// Tokens are the global (column, bin) item ids produced by package binning.
// Algorithm 2 sets windowSize = max{n, m}, i.e. every token of a sentence is
// context for every other; enumerating all O(L²) pairs is infeasible for
// column-sentences, so for each center token we sample up to Window context
// positions uniformly from the rest of the sentence — the expected gradient
// matches the full-window objective at a fraction of the cost.
package word2vec

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"subtab/internal/f32"
)

// Options configures training.
type Options struct {
	// Dim is the embedding dimensionality (default 32).
	Dim int
	// Window is the number of context tokens sampled per center token
	// (default 5). The effective window is the whole sentence, as in
	// Algorithm 2; Window only bounds the per-center sample.
	Window int
	// Negatives is the number of negative samples per positive pair
	// (default 4). Every pair gets exactly this many negative updates, and
	// they are pairwise distinct: a draw that collides with the positive
	// context or with an already-accepted negative of the same slot is
	// resampled (bounded, so a degenerate vocabulary with fewer tokens than
	// slots skips the unfillable negatives rather than spinning), not
	// silently dropped.
	Negatives int
	// Epochs is the number of passes over the corpus (default 3).
	Epochs int
	// LearningRate is the initial SGD step size (default 0.025), decaying
	// linearly to LearningRate/100 over training.
	LearningRate float64
	// Seed drives initialization and sampling.
	Seed int64
	// Workers is the number of parallel training goroutines (default
	// runtime.NumCPU()). Training is deterministic at ANY worker count:
	// the sharded-gradient schedule (see engine.go) makes the trained
	// vectors a pure function of (corpus, Options), byte-identical whether
	// the chunks run serially or fanned out. Workers only trades wall-clock
	// time; effective parallelism is capped at the engine's round size.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Dim <= 0 {
		o.Dim = 32
	}
	if o.Window <= 0 {
		o.Window = 5
	}
	if o.Negatives <= 0 {
		o.Negatives = 4
	}
	if o.Epochs <= 0 {
		o.Epochs = 3
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.025
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	return o
}

// Model holds trained token vectors.
type Model struct {
	dim    int
	vocab  map[int32]int32 // token -> dense index
	tokens []int32         // dense index -> token
	vecs   []float32       // input vectors, len = |vocab| * dim
	ctx    []float32       // output (context) vectors, len = |vocab| * dim
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.dim }

// Tokens returns the trained tokens in dense-index order. The returned slice
// aliases model memory and must not be mutated.
func (m *Model) Tokens() []int32 { return m.tokens }

// VectorData returns the input-vector matrix as one flat slice of
// len(Tokens())*Dim() float32s, row i holding the vector of Tokens()[i]. It
// aliases model memory and must not be mutated; it exists so the model can be
// serialized (package modelio).
func (m *Model) VectorData() []float32 { return m.vecs }

// ContextData returns the output (context) vector matrix in the same layout
// as VectorData. It aliases model memory and must not be mutated.
func (m *Model) ContextData() []float32 { return m.ctx }

// VectorMatrix returns the input-vector table as a zero-copy flat matrix
// view: row Index(tok) is Vector(tok). It aliases model memory and must not
// be mutated; it exists so downstream stages (package core) can address the
// whole embedding table without copying it row by row.
func (m *Model) VectorMatrix() f32.Matrix {
	return f32.Wrap(len(m.tokens), m.dim, m.vecs)
}

// ContextMatrix returns the output (context) vector table as a zero-copy
// flat matrix view in the same layout as VectorMatrix.
func (m *Model) ContextMatrix() f32.Matrix {
	return f32.Wrap(len(m.tokens), m.dim, m.ctx)
}

// Index returns the dense row index of tok in VectorMatrix/ContextMatrix,
// or -1 when the token was not seen in training.
func (m *Model) Index(tok int32) int32 {
	if i, ok := m.vocab[tok]; ok {
		return i
	}
	return -1
}

// Restore rebuilds a trained model from its serialized parts: the token list
// (dense-index order) and the flat input/output matrices as returned by
// VectorData/ContextData. The slices are retained, not copied.
func Restore(dim int, tokens []int32, vecs, ctx []float32) (*Model, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("word2vec: restore: dimension %d must be positive", dim)
	}
	if len(vecs) != len(tokens)*dim || len(ctx) != len(tokens)*dim {
		return nil, fmt.Errorf("word2vec: restore: %d tokens at dim %d need %d floats per matrix, got %d input / %d output",
			len(tokens), dim, len(tokens)*dim, len(vecs), len(ctx))
	}
	m := &Model{dim: dim, vocab: make(map[int32]int32, len(tokens)), tokens: tokens, vecs: vecs, ctx: ctx}
	for i, tok := range tokens {
		if _, dup := m.vocab[tok]; dup {
			return nil, fmt.Errorf("word2vec: restore: duplicate token %d", tok)
		}
		m.vocab[tok] = int32(i)
	}
	return m, nil
}

// VocabSize returns the number of distinct tokens.
func (m *Model) VocabSize() int { return len(m.tokens) }

// ApproxBytes estimates the model's resident heap bytes: both vector
// matrices, the token list, and the token→index map (~24 bytes per entry
// counted flat).
func (m *Model) ApproxBytes() int64 {
	return int64(len(m.vecs))*4 + int64(len(m.ctx))*4 +
		int64(len(m.tokens))*4 + int64(len(m.vocab))*24
}

// HasToken reports whether the token was seen in training.
func (m *Model) HasToken(tok int32) bool {
	_, ok := m.vocab[tok]
	return ok
}

// Vector returns the input embedding of tok, or nil when unseen. The
// returned slice aliases model memory and must not be mutated.
func (m *Model) Vector(tok int32) []float32 {
	i, ok := m.vocab[tok]
	if !ok {
		return nil
	}
	return m.vecs[int(i)*m.dim : (int(i)+1)*m.dim]
}

// ContextVector returns the output (context) embedding of tok, or nil when
// unseen. Skip-gram with negative sampling factorizes the corpus PMI matrix
// into input·output products (Levy & Goldberg 2014), so
// Vector(a)·ContextVector(b) measures how strongly a and b co-occur — the
// first-order association signal, as opposed to the input-input cosine
// which measures second-order (distributional) similarity.
func (m *Model) ContextVector(tok int32) []float32 {
	i, ok := m.vocab[tok]
	if !ok {
		return nil
	}
	return m.ctx[int(i)*m.dim : (int(i)+1)*m.dim]
}

// Association returns the symmetrized input·output dot product of two
// tokens — an estimate of their shifted PMI (0 for unseen tokens).
func (m *Model) Association(a, b int32) float64 {
	va, cb := m.Vector(a), m.ContextVector(b)
	vb, ca := m.Vector(b), m.ContextVector(a)
	if va == nil || vb == nil {
		return 0
	}
	return (Dot(va, cb) + Dot(vb, ca)) / 2
}

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float32) float64 { return f32.Dot(a, b) }

// Similarity returns the cosine similarity of two tokens (0 when either is
// unseen or has a zero vector).
func (m *Model) Similarity(a, b int32) float64 {
	va, vb := m.Vector(a), m.Vector(b)
	if va == nil || vb == nil {
		return 0
	}
	return Cosine(va, vb)
}

// Cosine returns the cosine similarity of two vectors (0 for zero vectors).
func Cosine(a, b []float32) float64 { return f32.Cosine(a, b) }

const (
	// unigramMax caps the negative-sampling table; unigramPerToken sets its
	// granularity. Sizing the table to the vocabulary (instead of a flat
	// 2^20 entries) keeps it cache-resident: the training loop hits it with
	// Negatives uniform random reads per pair, and on tabular vocabularies
	// (a few thousand (column,bin) items) those reads were the single
	// largest source of cache misses in the old trainer.
	unigramMax      = 1 << 20
	unigramPerToken = 8
)

// Train learns token embeddings from the corpus. Sentences are slices of
// token ids; sentences shorter than 2 tokens contribute vocabulary but no
// training pairs. The trained vectors are a pure function of (sentences,
// opt): the deterministic sharded-gradient engine (engine.go) produces
// byte-identical output at any Workers setting.
func Train(sentences [][]int32, opt Options) *Model {
	opt = opt.withDefaults()
	m := &Model{dim: opt.Dim, vocab: make(map[int32]int32)}

	// Vocabulary, counts, and dense-index re-encoding in one pass.
	var counts []int64
	dense := absorb(sentences, m.vocab, &m.tokens, &counts)
	v := len(m.tokens)
	if v == 0 {
		return m
	}

	// Init: input vectors uniform in [-0.5/dim, 0.5/dim), output vectors 0.
	rng := rand.New(rand.NewSource(opt.Seed))
	m.vecs = make([]float32, v*opt.Dim)
	m.ctx = make([]float32, v*opt.Dim)
	for i := range m.vecs {
		m.vecs[i] = (rng.Float32() - 0.5) / float32(opt.Dim)
	}

	chunks, epochCenters := buildChunks(dense)
	t := &trainer{
		dim: opt.Dim, vecs: m.vecs, ctx: m.ctx,
		sents: dense, chunks: chunks,
		epochCenters: epochCenters,
		total:        epochCenters * int64(opt.Epochs),
		unigram:      buildUnigram(counts),
		opt:          opt, frozen: 0, rows: v,
	}
	t.run()
	return m
}

// buildUnigram builds the negative-sampling table: dense token indices
// appear proportionally to count^0.75 (zero-count tokens — FineTune's
// pre-existing vocabulary — still get one slot each, so they participate as
// negatives). The table is sized to the vocabulary, unigramPerToken entries
// per token up to unigramMax, so it stays cache-resident under the training
// loop's random reads.
func buildUnigram(counts []int64) []int32 {
	total := 0.0
	pows := make([]float64, len(counts))
	for i, c := range counts {
		pows[i] = math.Pow(float64(c), 0.75)
		total += pows[i]
	}
	size := len(counts) * unigramPerToken
	if size > unigramMax {
		size = unigramMax
	}
	if size < len(counts) {
		size = len(counts)
	}
	table := make([]int32, 0, size)
	for i, p := range pows {
		n := int(p / total * float64(size))
		if n < 1 {
			n = 1
		}
		for j := 0; j < n; j++ {
			table = append(table, int32(i))
		}
	}
	return table
}
