package word2vec

import (
	"math"
	"math/rand"
	"testing"
)

func TestEmptyCorpus(t *testing.T) {
	m := Train(nil, Options{Seed: 1})
	if m.VocabSize() != 0 {
		t.Fatalf("vocab = %d", m.VocabSize())
	}
	if m.Vector(5) != nil {
		t.Fatal("unseen token should have nil vector")
	}
	if m.Similarity(1, 2) != 0 {
		t.Fatal("similarity of unseen tokens should be 0")
	}
}

func TestVocabAndVectors(t *testing.T) {
	sents := [][]int32{{1, 2, 3}, {2, 3, 4}}
	m := Train(sents, Options{Dim: 8, Epochs: 1, Seed: 1})
	if m.VocabSize() != 4 {
		t.Fatalf("vocab = %d, want 4", m.VocabSize())
	}
	if m.Dim() != 8 {
		t.Fatalf("dim = %d", m.Dim())
	}
	for _, tok := range []int32{1, 2, 3, 4} {
		if !m.HasToken(tok) {
			t.Fatalf("token %d missing", tok)
		}
		v := m.Vector(tok)
		if len(v) != 8 {
			t.Fatalf("vector len = %d", len(v))
		}
	}
	if m.HasToken(99) {
		t.Fatal("token 99 should be unseen")
	}
}

func TestCosine(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{1, 0}
	c := []float32{0, 1}
	d := []float32{-1, 0}
	z := []float32{0, 0}
	if got := Cosine(a, b); math.Abs(got-1) > 1e-6 {
		t.Fatalf("cos(a,a) = %v", got)
	}
	if got := Cosine(a, c); math.Abs(got) > 1e-6 {
		t.Fatalf("cos(a,c) = %v", got)
	}
	if got := Cosine(a, d); math.Abs(got+1) > 1e-6 {
		t.Fatalf("cos(a,-a) = %v", got)
	}
	if got := Cosine(a, z); got != 0 {
		t.Fatalf("cos with zero vector = %v", got)
	}
}

func TestBuildUnigramProportions(t *testing.T) {
	counts := []int64{1000, 10, 10}
	table := buildUnigram(counts)
	freq := make([]int, 3)
	for _, i := range table {
		freq[i]++
	}
	if freq[0] <= freq[1] {
		t.Fatalf("frequent token should dominate: %v", freq)
	}
	// Every token appears at least once.
	for i, f := range freq {
		if f == 0 {
			t.Fatalf("token %d absent from unigram table", i)
		}
	}
}

// planted builds a corpus with a distributional-similarity signal: tokens 0
// and 1 each appear with contexts drawn from pool A (10..29), token 2 with
// contexts from a disjoint pool B (30..49). Skip-gram should therefore place
// 0 and 1 close together and 2 far away — exactly the property SubTab relies
// on (items participating in the same data pattern share their context and
// embed nearby).
func planted(nSent int, seed int64) [][]int32 {
	rng := rand.New(rand.NewSource(seed))
	var sents [][]int32
	for i := 0; i < nSent; i++ {
		poolA := func() int32 { return int32(10 + rng.Intn(20)) }
		poolB := func() int32 { return int32(30 + rng.Intn(20)) }
		switch i % 3 {
		case 0:
			sents = append(sents, []int32{0, poolA(), poolA()})
		case 1:
			sents = append(sents, []int32{1, poolA(), poolA()})
		default:
			sents = append(sents, []int32{2, poolB(), poolB()})
		}
	}
	return sents
}

func TestSharedContextDrivesSimilarity(t *testing.T) {
	sents := planted(6000, 7)
	m := Train(sents, Options{Dim: 16, Epochs: 8, Window: 3, Seed: 7})
	simPair := m.Similarity(0, 1)
	simCross := m.Similarity(0, 2)
	if simPair <= simCross {
		t.Fatalf("shared-context pair sim %v should exceed cross-pool sim %v", simPair, simCross)
	}
	if simPair < 0.3 {
		t.Fatalf("shared-context pair sim too low: %v", simPair)
	}
}

func TestDeterministicWithOneWorker(t *testing.T) {
	sents := planted(300, 3)
	m1 := Train(sents, Options{Dim: 8, Epochs: 2, Seed: 42})
	m2 := Train(sents, Options{Dim: 8, Epochs: 2, Seed: 42})
	for _, tok := range []int32{0, 1, 2} {
		v1, v2 := m1.Vector(tok), m2.Vector(tok)
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Fatalf("token %d dim %d: %v != %v", tok, i, v1[i], v2[i])
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	sents := planted(300, 3)
	m1 := Train(sents, Options{Dim: 8, Epochs: 1, Seed: 1})
	m2 := Train(sents, Options{Dim: 8, Epochs: 1, Seed: 2})
	same := true
	v1, v2 := m1.Vector(0), m2.Vector(0)
	for i := range v1 {
		if v1[i] != v2[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different vectors")
	}
}

func TestParallelTrainingRuns(t *testing.T) {
	sents := planted(6000, 9)
	m := Train(sents, Options{Dim: 16, Epochs: 8, Window: 3, Seed: 9, Workers: 4})
	if m.VocabSize() == 0 {
		t.Fatal("parallel training produced empty model")
	}
	// The planted signal should survive parallel (sharded-gradient) training.
	if pair, cross := m.Similarity(0, 1), m.Similarity(0, 2); pair <= cross {
		t.Fatalf("parallel training lost signal: pair %v <= cross %v", pair, cross)
	}
}

func TestSingleTokenSentencesSkipped(t *testing.T) {
	sents := [][]int32{{1}, {2}, {1, 2}}
	m := Train(sents, Options{Dim: 4, Epochs: 1, Seed: 1})
	if m.VocabSize() != 2 {
		t.Fatalf("vocab = %d", m.VocabSize())
	}
}

func TestVectorAliasStability(t *testing.T) {
	sents := [][]int32{{1, 2}, {2, 3}}
	m := Train(sents, Options{Dim: 4, Epochs: 1, Seed: 1})
	v1 := m.Vector(1)
	v2 := m.Vector(1)
	if &v1[0] != &v2[0] {
		t.Fatal("Vector should return a stable view")
	}
}

func TestDefaultsApplied(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Dim != 32 || o.Window != 5 || o.Negatives != 4 || o.Epochs != 3 || o.LearningRate != 0.025 || o.Workers < 1 {
		t.Fatalf("defaults = %+v", o)
	}
}
