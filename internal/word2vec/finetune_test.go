package word2vec

import (
	"testing"
)

func trainSmall(t *testing.T) *Model {
	t.Helper()
	sents := [][]int32{
		{0, 1, 2}, {0, 1, 3}, {2, 3, 0}, {1, 2, 3},
		{0, 2, 1}, {3, 1, 0}, {2, 0, 3}, {1, 3, 2},
	}
	return Train(sents, Options{Dim: 8, Epochs: 3, Seed: 7})
}

func TestFineTuneNoNewTokensReturnsSameModel(t *testing.T) {
	m := trainSmall(t)
	ft := m.FineTune([][]int32{{0, 1, 2}, {3, 0, 1}}, Options{Epochs: 2, Seed: 7})
	if ft != m {
		t.Fatal("fine-tune without new tokens must return the model unchanged")
	}
}

func TestFineTuneFreezesOldVectors(t *testing.T) {
	m := trainSmall(t)
	beforeVecs := append([]float32(nil), m.VectorData()...)
	beforeCtx := append([]float32(nil), m.ContextData()...)

	// Token 9 is new; it appears alongside old tokens.
	ft := m.FineTune([][]int32{{9, 0, 1}, {2, 9, 3}, {9, 1, 0}}, Options{Epochs: 3, Seed: 11})
	if ft == m {
		t.Fatal("fine-tune with a new token returned the same model")
	}
	if ft.VocabSize() != m.VocabSize()+1 {
		t.Fatalf("vocab = %d, want %d", ft.VocabSize(), m.VocabSize()+1)
	}
	// The source model is untouched.
	for i, v := range m.VectorData() {
		if v != beforeVecs[i] {
			t.Fatalf("source input vector mutated at %d", i)
		}
	}
	for i, v := range m.ContextData() {
		if v != beforeCtx[i] {
			t.Fatalf("source context vector mutated at %d", i)
		}
	}
	// Old vectors in the fine-tuned model are byte-identical to the source.
	oldFloats := m.VocabSize() * m.Dim()
	for i := 0; i < oldFloats; i++ {
		if ft.VectorData()[i] != beforeVecs[i] {
			t.Fatalf("old input vector changed at %d: %v -> %v", i, beforeVecs[i], ft.VectorData()[i])
		}
		if ft.ContextData()[i] != beforeCtx[i] {
			t.Fatalf("old context vector changed at %d", i)
		}
	}
	// Old tokens keep their dense indices; the new token is appended.
	for _, tok := range m.Tokens() {
		if ft.Index(tok) != m.Index(tok) {
			t.Fatalf("token %d moved: %d -> %d", tok, m.Index(tok), ft.Index(tok))
		}
	}
	if ft.Index(9) != int32(m.VocabSize()) {
		t.Fatalf("new token index = %d, want %d", ft.Index(9), m.VocabSize())
	}
	// The new token actually trained: non-zero vector, non-zero association
	// with the tokens it co-occurred with.
	nv := ft.Vector(9)
	if nv == nil {
		t.Fatal("new token has no vector")
	}
	allZero := true
	for _, v := range nv {
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("new token vector never trained")
	}
}

func TestFineTuneDeterministicSingleWorker(t *testing.T) {
	m := trainSmall(t)
	sents := [][]int32{{5, 0, 1}, {5, 2, 3}, {0, 5, 1}}
	opt := Options{Epochs: 2, Seed: 13}
	a := m.FineTune(sents, opt)
	b := m.FineTune(sents, opt)
	for i := range a.VectorData() {
		if a.VectorData()[i] != b.VectorData()[i] {
			t.Fatalf("fine-tune not deterministic at %d", i)
		}
	}
}

func TestFineTuneEmptyModel(t *testing.T) {
	m := Train(nil, Options{Dim: 8, Seed: 1})
	ft := m.FineTune([][]int32{{1, 2}, {2, 3}}, Options{Epochs: 2, Seed: 3})
	if ft.VocabSize() != 3 {
		t.Fatalf("vocab = %d, want 3", ft.VocabSize())
	}
	if ft.Dim() != 8 {
		t.Fatalf("dim = %d, want 8", ft.Dim())
	}
}
