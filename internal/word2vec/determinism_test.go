package word2vec

import (
	"reflect"
	"strconv"
	"testing"
)

// modelBytes returns the complete trained state of a model — both matrices —
// so equality checks compare every byte the trainer produced.
func modelBytes(m *Model) ([]int32, []float32, []float32) {
	return m.Tokens(), m.VectorData(), m.ContextData()
}

func requireIdentical(t *testing.T, label string, a, b *Model) {
	t.Helper()
	at, av, ac := modelBytes(a)
	bt, bv, bc := modelBytes(b)
	if !reflect.DeepEqual(at, bt) {
		t.Fatalf("%s: token order diverged", label)
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("%s: input matrix diverged at %d: %v != %v", label, i, av[i], bv[i])
		}
	}
	for i := range ac {
		if ac[i] != bc[i] {
			t.Fatalf("%s: context matrix diverged at %d: %v != %v", label, i, ac[i], bc[i])
		}
	}
}

// TestTrainBitIdenticalAcrossWorkerCounts is the tentpole property: the
// trained model is a pure function of (corpus, Options) — Workers only
// schedules work. The corpus spans many chunks so the sweep actually
// exercises cross-chunk merging, not a degenerate single-chunk run.
func TestTrainBitIdenticalAcrossWorkerCounts(t *testing.T) {
	sents := planted(12000, 21) // ~36k centers: multiple rounds of chunks
	opt := Options{Dim: 16, Epochs: 2, Window: 3, Seed: 99}
	opt.Workers = 1
	ref := Train(sents, opt)
	for _, w := range []int{2, 3, 8} {
		opt.Workers = w
		requireIdentical(t, "workers=1 vs workers="+strconv.Itoa(w), ref, Train(sents, opt))
	}
}

// TestTrainRepeatRunsIdentical: same inputs, same bytes, run to run — at a
// parallel worker count.
func TestTrainRepeatRunsIdentical(t *testing.T) {
	sents := planted(6000, 5)
	opt := Options{Dim: 16, Epochs: 2, Window: 3, Seed: 7, Workers: 8}
	requireIdentical(t, "repeat run", Train(sents, opt), Train(sents, opt))
}

func TestFineTuneBitIdenticalAcrossWorkerCounts(t *testing.T) {
	base := Train(planted(3000, 2), Options{Dim: 16, Epochs: 2, Window: 3, Seed: 3})
	// Delta corpus mixes old tokens with a band of new ones so the fine-tune
	// crosses the freeze boundary in both directions.
	var delta [][]int32
	for i := 0; i < 9000; i++ {
		delta = append(delta, []int32{int32(100 + i%7), int32(10 + i%20), int32(30 + i%20)})
	}
	opt := Options{Epochs: 2, Window: 3, Seed: 31}
	opt.Workers = 1
	ref := base.FineTune(delta, opt)
	for _, w := range []int{2, 3, 8} {
		opt.Workers = w
		requireIdentical(t, "finetune workers=1 vs workers="+strconv.Itoa(w), ref, base.FineTune(delta, opt))
	}
	// Repeat run at a parallel count.
	opt.Workers = 8
	requireIdentical(t, "finetune repeat run", base.FineTune(delta, opt), base.FineTune(delta, opt))
}

// TestAllShortSentences: a corpus of vocabulary-only sentences (every
// sentence under 2 tokens) trains zero pairs but still builds the vocabulary
// with initialized vectors.
func TestAllShortSentences(t *testing.T) {
	sents := [][]int32{{4}, {9}, {4}, {}}
	m := Train(sents, Options{Dim: 8, Epochs: 2, Seed: 1})
	if m.VocabSize() != 2 {
		t.Fatalf("vocab = %d, want 2", m.VocabSize())
	}
	if len(m.Vector(4)) != 8 || len(m.Vector(9)) != 8 {
		t.Fatal("short-sentence tokens must still get vectors")
	}
}

// TestSingleTokenVocab: with one distinct token the unigram table is
// degenerate — every negative draw collides with the positive context, so
// bounded resampling must skip the slot instead of spinning, and training
// must terminate with finite vectors.
func TestSingleTokenVocab(t *testing.T) {
	sents := [][]int32{{7, 7, 7}, {7, 7}}
	m := Train(sents, Options{Dim: 8, Epochs: 3, Seed: 1, Negatives: 4})
	if m.VocabSize() != 1 {
		t.Fatalf("vocab = %d, want 1", m.VocabSize())
	}
	for _, x := range m.Vector(7) {
		if x != x || x > 1e6 || x < -1e6 {
			t.Fatalf("single-token training produced non-finite vector: %v", m.Vector(7))
		}
	}
	// Still deterministic across worker counts.
	m2 := Train(sents, Options{Dim: 8, Epochs: 3, Seed: 1, Negatives: 4, Workers: 8})
	requireIdentical(t, "single-token vocab", m, m2)
}
