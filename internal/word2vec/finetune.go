package word2vec

import (
	"math/rand"
)

// FineTune returns a model warm-started from m and adapted to a delta
// corpus — the incremental half of the append path (core.Model.Append).
// Tokens m has never seen are appended to the vocabulary, initialized
// exactly as Train initializes fresh vectors (seeded uniform input, zero
// context), and trained for opt.Epochs passes over sentences. Every
// pre-existing vector — input and context alike — is frozen: old tokens
// participate as context and as negative samples, anchoring the new vectors
// in the established embedding space, but their own bytes never change, so
// selections that only touch old rows are unaffected by a fine-tune.
//
// When the delta corpus introduces no new tokens the model is returned
// unchanged (frozen vectors make the training pass a no-op): the common
// steady-state append costs nothing here.
//
// opt.Dim is ignored (the dimensionality is m's); Window, Negatives,
// Epochs, LearningRate, Seed and Workers apply as in Train. Like Train,
// FineTune runs the deterministic sharded-gradient schedule: the result is
// byte-identical at any Workers setting.
func (m *Model) FineTune(sentences [][]int32, opt Options) *Model {
	opt = opt.withDefaults()
	opt.Dim = m.dim

	// Extend the vocabulary with the delta corpus's new tokens, in first
	// appearance order, count the delta corpus for negative sampling, and
	// re-encode it as dense indices in the same pass.
	oldV := len(m.tokens)
	vocab := make(map[int32]int32, oldV+8)
	for tok, i := range m.vocab {
		vocab[tok] = i
	}
	tokens := make([]int32, oldV, oldV+8)
	copy(tokens, m.tokens)
	counts := make([]int64, oldV, oldV+8)
	dense := absorb(sentences, vocab, &tokens, &counts)
	v := len(tokens)
	if v == oldV {
		return m
	}

	nm := &Model{dim: m.dim, vocab: vocab, tokens: tokens}
	nm.vecs = make([]float32, v*m.dim)
	copy(nm.vecs, m.vecs)
	nm.ctx = make([]float32, v*m.dim)
	copy(nm.ctx, m.ctx)
	rng := rand.New(rand.NewSource(opt.Seed))
	for i := oldV * m.dim; i < v*m.dim; i++ {
		nm.vecs[i] = (rng.Float32() - 0.5) / float32(m.dim)
	}

	chunks, epochCenters := buildChunks(dense)
	t := &trainer{
		dim: m.dim, vecs: nm.vecs, ctx: nm.ctx,
		sents: dense, chunks: chunks,
		epochCenters: epochCenters,
		total:        epochCenters * int64(opt.Epochs),
		unigram:      buildUnigram(counts),
		opt:          opt, frozen: oldV, rows: v,
	}
	t.run()
	return nm
}
