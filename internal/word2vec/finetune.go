package word2vec

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"subtab/internal/f32"
)

// FineTune returns a model warm-started from m and adapted to a delta
// corpus — the incremental half of the append path (core.Model.Append).
// Tokens m has never seen are appended to the vocabulary, initialized
// exactly as Train initializes fresh vectors (seeded uniform input, zero
// context), and trained for opt.Epochs passes over sentences. Every
// pre-existing vector — input and context alike — is frozen: old tokens
// participate as context and as negative samples, anchoring the new vectors
// in the established embedding space, but their own bytes never change, so
// selections that only touch old rows are unaffected by a fine-tune.
//
// When the delta corpus introduces no new tokens the model is returned
// unchanged (frozen vectors make the training pass a no-op): the common
// steady-state append costs nothing here.
//
// opt.Dim is ignored (the dimensionality is m's); Window, Negatives,
// Epochs, LearningRate, Seed and Workers apply as in Train. As with Train,
// Workers > 1 trains hogwild and is not bit-reproducible.
func (m *Model) FineTune(sentences [][]int32, opt Options) *Model {
	opt = opt.withDefaults()
	opt.Dim = m.dim

	// Extend the vocabulary with the delta corpus's new tokens, in first
	// appearance order, and count the delta corpus for negative sampling.
	oldV := len(m.tokens)
	vocab := make(map[int32]int32, oldV+8)
	for tok, i := range m.vocab {
		vocab[tok] = i
	}
	tokens := make([]int32, oldV, oldV+8)
	copy(tokens, m.tokens)
	counts := make([]int64, oldV, oldV+8)
	totalTokens := 0
	for _, s := range sentences {
		totalTokens += len(s)
		for _, tok := range s {
			if _, ok := vocab[tok]; !ok {
				vocab[tok] = int32(len(tokens))
				tokens = append(tokens, tok)
				counts = append(counts, 0)
			}
			counts[vocab[tok]]++
		}
	}
	v := len(tokens)
	if v == oldV {
		return m
	}

	nm := &Model{dim: m.dim, vocab: vocab, tokens: tokens}
	nm.vecs = make([]float32, v*m.dim)
	copy(nm.vecs, m.vecs)
	nm.ctx = make([]float32, v*m.dim)
	copy(nm.ctx, m.ctx)
	rng := rand.New(rand.NewSource(opt.Seed))
	for i := oldV * m.dim; i < v*m.dim; i++ {
		nm.vecs[i] = (rng.Float32() - 0.5) / float32(m.dim)
	}

	unigram := buildUnigram(counts)
	totalCenters := int64(totalTokens) * int64(opt.Epochs)
	if totalCenters == 0 {
		totalCenters = 1
	}
	var processed atomic.Int64

	workers := opt.Workers
	if workers > len(sentences) && len(sentences) > 0 {
		workers = len(sentences)
	}
	if workers < 1 {
		workers = 1
	}

	minLR := opt.LearningRate / 100
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(opt.Seed ^ int64(epoch*8191+w*131071+1)))
				grad := make([]float32, opt.Dim)
				for si := w; si < len(sentences); si += workers {
					sent := sentences[si]
					if len(sent) < 2 {
						processed.Add(int64(len(sent)))
						continue
					}
					for ci, center := range sent {
						done := processed.Add(1)
						lr := opt.LearningRate * (1 - float64(done)/float64(totalCenters))
						if lr < minLR {
							lr = minLR
						}
						cIdx := nm.vocab[center]
						nCtx := opt.Window
						if nCtx > len(sent)-1 {
							nCtx = len(sent) - 1
						}
						for k := 0; k < nCtx; k++ {
							cj := wrng.Intn(len(sent) - 1)
							if cj >= ci {
								cj++
							}
							ctxIdx := nm.vocab[sent[cj]]
							fineTunePair(nm.vecs, nm.ctx, int(cIdx), int(ctxIdx), oldV, opt, unigram, wrng, grad, float32(lr))
						}
					}
				}
			}(w)
		}
		wg.Wait()
	}
	return nm
}

// fineTunePair is trainPair with a freeze boundary: rows below frozenBelow
// (the pre-existing vocabulary) are read — as context, as anchors, as
// negative samples — but never written. The gradient arithmetic is
// trainPair's, so a boundary of 0 would reproduce Train's updates exactly.
func fineTunePair(in, out []float32, center, ctx, frozenBelow int, opt Options, unigram []int32, rng *rand.Rand, grad []float32, lr float32) {
	dim := opt.Dim
	ci := center * dim
	cv := in[ci : ci+dim]
	trainCenter := center >= frozenBelow
	if trainCenter {
		for i := range grad {
			grad[i] = 0
		}
	}
	for n := 0; n <= opt.Negatives; n++ {
		var target int
		var label float32
		if n == 0 {
			target = ctx
			label = 1
		} else {
			target = int(unigram[rng.Intn(len(unigram))])
			if target == ctx {
				continue
			}
			label = 0
		}
		trainTarget := target >= frozenBelow
		if !trainCenter && !trainTarget {
			continue
		}
		ti := target * dim
		tv := out[ti : ti+dim]
		g := (label - sigmoid(f32.Dot32(cv, tv))) * lr
		if trainCenter {
			f32.Axpy(g, tv, grad)
		}
		if trainTarget {
			f32.Axpy(g, cv, tv)
		}
	}
	if trainCenter {
		f32.Add(cv, grad)
	}
}
