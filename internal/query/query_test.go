package query

import (
	"math"
	"strings"
	"testing"

	"subtab/internal/table"
)

func sample(t *testing.T) *table.Table {
	t.Helper()
	tab := table.New("flights")
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(tab.AddColumn(table.NewNumeric("DISTANCE", []float64{100, 2000, math.NaN(), 550, 1800})))
	must(tab.AddColumn(table.NewCategorical("AIRLINE", []string{"AA", "B6", "AA", "", "B6"})))
	must(tab.AddColumn(table.NewNumeric("CANCELLED", []float64{0, 0, 1, 0, 1})))
	return tab
}

func TestPredicateNumeric(t *testing.T) {
	tab := sample(t)
	cases := []struct {
		p    Predicate
		want []int
	}{
		{Predicate{Col: "DISTANCE", Op: Gt, Num: 1000}, []int{1, 4}},
		{Predicate{Col: "DISTANCE", Op: Geq, Num: 550}, []int{1, 3, 4}},
		{Predicate{Col: "DISTANCE", Op: Lt, Num: 550}, []int{0}},
		{Predicate{Col: "DISTANCE", Op: Leq, Num: 550}, []int{0, 3}},
		{Predicate{Col: "DISTANCE", Op: Eq, Num: 100}, []int{0}},
		{Predicate{Col: "DISTANCE", Op: Neq, Num: 100}, []int{1, 3, 4}},
		{Predicate{Col: "DISTANCE", Op: IsMissing}, []int{2}},
		{Predicate{Col: "DISTANCE", Op: NotMissing}, []int{0, 1, 3, 4}},
	}
	for _, c := range cases {
		q := &Query{Where: []Predicate{c.p}}
		got, _ := q.MatchingRows(tab)
		if len(got) != len(c.want) {
			t.Fatalf("%s: rows = %v, want %v", c.p, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%s: rows = %v, want %v", c.p, got, c.want)
			}
		}
	}
}

func TestPredicateCategorical(t *testing.T) {
	tab := sample(t)
	q := &Query{Where: []Predicate{{Col: "AIRLINE", Op: Eq, Str: "AA"}}}
	got, _ := q.MatchingRows(tab)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("rows = %v", got)
	}
	q = &Query{Where: []Predicate{{Col: "AIRLINE", Op: Neq, Str: "AA"}}}
	got, _ = q.MatchingRows(tab)
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("rows = %v", got)
	}
	// Lt on categorical matches nothing.
	q = &Query{Where: []Predicate{{Col: "AIRLINE", Op: Lt, Str: "AA"}}}
	if got, _ := q.MatchingRows(tab); len(got) != 0 {
		t.Fatalf("ordered op on categorical matched %v", got)
	}
}

func TestPredicateUnknownColumn(t *testing.T) {
	tab := sample(t)
	q := &Query{Where: []Predicate{{Col: "nope", Op: Eq, Num: 1}}}
	if got, _ := q.MatchingRows(tab); len(got) != 0 {
		t.Fatalf("unknown column matched %v", got)
	}
}

func TestConjunction(t *testing.T) {
	tab := sample(t)
	q := &Query{Where: []Predicate{
		{Col: "AIRLINE", Op: Eq, Str: "B6"},
		{Col: "CANCELLED", Op: Eq, Num: 1},
	}}
	got, _ := q.MatchingRows(tab)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("rows = %v", got)
	}
}

func TestApplySelectProject(t *testing.T) {
	tab := sample(t)
	q := &Query{
		Where:  []Predicate{{Col: "CANCELLED", Op: Eq, Num: 0}},
		Select: []string{"AIRLINE", "DISTANCE"},
	}
	res, rows, err := q.Apply(tab)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 || res.NumCols() != 2 {
		t.Fatalf("dims = %dx%d", res.NumRows(), res.NumCols())
	}
	if rows[0] != 0 || rows[1] != 1 || rows[2] != 3 {
		t.Fatalf("source rows = %v", rows)
	}
	if res.ColumnNames()[0] != "AIRLINE" {
		t.Fatalf("cols = %v", res.ColumnNames())
	}
}

func TestApplyProjectUnknown(t *testing.T) {
	tab := sample(t)
	q := &Query{Select: []string{"nope"}}
	if _, _, err := q.Apply(tab); err == nil {
		t.Fatal("unknown projection column should error")
	}
}

func TestApplyOrderBy(t *testing.T) {
	tab := sample(t)
	q := &Query{OrderBy: "DISTANCE", Asc: true}
	res, rows, err := q.Apply(tab)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Column("DISTANCE").Nums
	if d[0] != 100 || d[1] != 550 || d[2] != 1800 || d[3] != 2000 {
		t.Fatalf("sorted = %v", d)
	}
	if rows[0] != 0 || rows[1] != 3 || rows[2] != 4 || rows[3] != 1 {
		t.Fatalf("source rows = %v", rows)
	}
	if !math.IsNaN(d[4]) {
		t.Fatal("missing should sort last")
	}
}

func TestApplyLimit(t *testing.T) {
	tab := sample(t)
	q := &Query{OrderBy: "DISTANCE", Asc: false, Limit: 2}
	res, rows, err := q.Apply(tab)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 || len(rows) != 2 {
		t.Fatalf("limit dims = %d/%d", res.NumRows(), len(rows))
	}
	if res.Column("DISTANCE").Nums[0] != 2000 {
		t.Fatalf("top = %v", res.Column("DISTANCE").Nums)
	}
}

func TestGroupByCount(t *testing.T) {
	tab := sample(t)
	q := &Query{
		GroupBy: []string{"AIRLINE"},
		Aggs:    []Aggregate{{Func: Count}},
	}
	res, rows, err := q.Apply(tab)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 { // AA, B6, missing
		t.Fatalf("groups = %d: %s", res.NumRows(), res)
	}
	if len(rows) != 3 {
		t.Fatalf("representative rows = %v", rows)
	}
	// Find AA group.
	found := false
	for r := 0; r < res.NumRows(); r++ {
		if res.Cell(r, "AIRLINE").Str == "AA" {
			found = true
			if got := res.Cell(r, "count").Num; got != 2 {
				t.Fatalf("count(AA) = %v", got)
			}
		}
	}
	if !found {
		t.Fatal("AA group not found")
	}
}

func TestGroupByAggregates(t *testing.T) {
	tab := sample(t)
	q := &Query{
		GroupBy: []string{"CANCELLED"},
		Aggs: []Aggregate{
			{Func: Mean, Col: "DISTANCE"},
			{Func: Min, Col: "DISTANCE"},
			{Func: Max, Col: "DISTANCE"},
			{Func: Sum, Col: "DISTANCE"},
		},
	}
	res, _, err := q.Apply(tab)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < res.NumRows(); r++ {
		if res.Cell(r, "CANCELLED").Num == 0 {
			if got := res.Cell(r, "mean_DISTANCE").Num; math.Abs(got-883.333) > 0.01 {
				t.Fatalf("mean = %v", got)
			}
			if got := res.Cell(r, "min_DISTANCE").Num; got != 100 {
				t.Fatalf("min = %v", got)
			}
			if got := res.Cell(r, "max_DISTANCE").Num; got != 2000 {
				t.Fatalf("max = %v", got)
			}
			if got := res.Cell(r, "sum_DISTANCE").Num; got != 2650 {
				t.Fatalf("sum = %v", got)
			}
		}
	}
}

func TestGroupByAllMissingAggregate(t *testing.T) {
	tab := sample(t)
	// CANCELLED=1 group has DISTANCE = {NaN, 1800}; restrict to only NaN row.
	q := &Query{
		Where:   []Predicate{{Col: "DISTANCE", Op: IsMissing}},
		GroupBy: []string{"CANCELLED"},
		Aggs:    []Aggregate{{Func: Mean, Col: "DISTANCE"}},
	}
	res, _, err := q.Apply(tab)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.Cell(0, "mean_DISTANCE").Num) && !res.Cell(0, "mean_DISTANCE").Missing {
		t.Fatal("mean over all-missing group should be NaN")
	}
}

func TestGroupByErrors(t *testing.T) {
	tab := sample(t)
	q := &Query{GroupBy: []string{"nope"}, Aggs: []Aggregate{{Func: Count}}}
	if _, _, err := q.Apply(tab); err == nil {
		t.Fatal("unknown group-by column should error")
	}
	q = &Query{GroupBy: []string{"AIRLINE"}, Aggs: []Aggregate{{Func: Mean, Col: "AIRLINE"}}}
	if _, _, err := q.Apply(tab); err == nil {
		t.Fatal("mean over categorical should error")
	}
	q = &Query{GroupBy: []string{"AIRLINE"}, Aggs: []Aggregate{{Func: Mean, Col: "nope"}}}
	if _, _, err := q.Apply(tab); err == nil {
		t.Fatal("unknown aggregate column should error")
	}
}

func TestQueryString(t *testing.T) {
	q := &Query{
		Where:   []Predicate{{Col: "CANCELLED", Op: Eq, Num: 1}, {Col: "AIRLINE", Op: Eq, Str: "AA"}},
		Select:  []string{"DISTANCE"},
		OrderBy: "DISTANCE",
		Limit:   5,
	}
	s := q.String()
	for _, want := range []string{"SELECT DISTANCE", "WHERE", "CANCELLED = 1", `AIRLINE = "AA"`, "ORDER BY DISTANCE DESC", "LIMIT 5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("query string %q missing %q", s, want)
		}
	}
	g := &Query{GroupBy: []string{"AIRLINE"}, Aggs: []Aggregate{{Func: Count}}}
	if !strings.Contains(g.String(), "GROUP BY AIRLINE") {
		t.Fatalf("group-by string = %q", g.String())
	}
	e := &Query{}
	if !strings.Contains(e.String(), "SELECT *") {
		t.Fatalf("empty query string = %q", e.String())
	}
}

func TestOpAggStrings(t *testing.T) {
	ops := map[Op]string{Eq: "=", Neq: "!=", Lt: "<", Leq: "<=", Gt: ">", Geq: ">=", IsMissing: "IS NULL", NotMissing: "IS NOT NULL"}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("Op %d = %q, want %q", op, op.String(), want)
		}
	}
	aggs := map[AggFunc]string{Count: "count", Sum: "sum", Mean: "mean", Min: "min", Max: "max"}
	for a, want := range aggs {
		if a.String() != want {
			t.Errorf("Agg %d = %q, want %q", a, a.String(), want)
		}
	}
}

func TestEmptyQueryIsIdentity(t *testing.T) {
	tab := sample(t)
	q := &Query{}
	res, rows, err := q.Apply(tab)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != tab.NumRows() || res.NumCols() != tab.NumCols() {
		t.Fatal("empty query should be identity")
	}
	for i, r := range rows {
		if r != i {
			t.Fatalf("rows = %v", rows)
		}
	}
}
