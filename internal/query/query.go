// Package query implements the exploratory-query layer over tables:
// selection (conjunctive predicates), projection, group-by with aggregates,
// and sorting. These are exactly the operations of the EDA sessions the
// paper replays in its simulation study (select, project, group-by, sort),
// and SubTab's Selection phase runs on the result of such queries.
package query

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"subtab/internal/table"
)

// ErrCellsPaged is returned when predicate evaluation is asked to run over a
// schema husk — a table whose cell payloads were dropped in favour of an
// external column store. Evaluating predicates there would index nil column
// slices; callers on paged tables must use the code-level streaming
// evaluator (binning.CompileFilter) instead of the resident-cell path.
var ErrCellsPaged = errors.New("query: table cells are paged (schema husk); use the streaming code-level evaluator")

// Op is a comparison operator for selection predicates.
type Op int

const (
	Eq Op = iota // equals (numeric or categorical)
	Neq
	Lt  // numeric only
	Leq // numeric only
	Gt  // numeric only
	Geq // numeric only
	IsMissing
	NotMissing
)

// String returns the SQL-ish spelling of the operator.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Neq:
		return "!="
	case Lt:
		return "<"
	case Leq:
		return "<="
	case Gt:
		return ">"
	case Geq:
		return ">="
	case IsMissing:
		return "IS NULL"
	case NotMissing:
		return "IS NOT NULL"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Predicate is a single column comparison. For categorical columns only
// Eq/Neq/IsMissing/NotMissing are meaningful; Str holds the comparand. For
// numeric columns Num holds the comparand.
type Predicate struct {
	Col string
	Op  Op
	Num float64
	Str string
}

// String renders the predicate, e.g. `DISTANCE >= 1546`.
func (p Predicate) String() string {
	switch p.Op {
	case IsMissing, NotMissing:
		return fmt.Sprintf("%s %s", p.Col, p.Op)
	}
	if p.Str != "" {
		return fmt.Sprintf("%s %s %q", p.Col, p.Op, p.Str)
	}
	return fmt.Sprintf("%s %s %g", p.Col, p.Op, p.Num)
}

// Matches reports whether row r of t satisfies the predicate. Unknown
// columns match nothing. Missing cells only match IsMissing. t must hold
// resident cells — query entry points refuse husk tables with ErrCellsPaged
// before any Matches call can index a dropped column.
func (p Predicate) Matches(t *table.Table, r int) bool {
	c := t.Column(p.Col)
	if c == nil {
		return false
	}
	missing := c.Missing(r)
	switch p.Op {
	case IsMissing:
		return missing
	case NotMissing:
		return !missing
	}
	if missing {
		return false
	}
	if c.Kind == table.Categorical {
		s := c.Dict.String(c.Cats[r])
		switch p.Op {
		case Eq:
			return s == p.Str
		case Neq:
			return s != p.Str
		default:
			return false
		}
	}
	v := c.Nums[r]
	switch p.Op {
	case Eq:
		return v == p.Num
	case Neq:
		return v != p.Num
	case Lt:
		return v < p.Num
	case Leq:
		return v <= p.Num
	case Gt:
		return v > p.Num
	case Geq:
		return v >= p.Num
	default:
		return false
	}
}

// MatchesCell reports whether a rendered cell satisfies the predicate, given
// the column's kind. cell must follow table.Column.CellString's contract:
// "NaN" for missing, table.FormatNum for numeric (shortest round-trip, so
// ParseFloat recovers the exact stored float64), the dictionary string for
// categorical. This is the residual matcher of the code-level evaluator: it
// decides exactly as Matches would, but from the paged column store's
// rendered bytes instead of resident cells. The evaluator only consults it
// for rows whose missingness is already decided from codes (missing rows
// land in the dedicated missing bin), so the categorical value "NaN" —
// ambiguous with the missing rendering — never reaches the Eq/Neq arms for
// a missing row.
func (p Predicate) MatchesCell(kind table.Kind, cell string) bool {
	missing := cell == "NaN" && kind == table.Numeric
	switch p.Op {
	case IsMissing:
		return missing || (kind == table.Categorical && cell == "NaN")
	case NotMissing:
		return !missing && !(kind == table.Categorical && cell == "NaN")
	}
	if missing {
		return false
	}
	if kind == table.Categorical {
		switch p.Op {
		case Eq:
			return cell == p.Str
		case Neq:
			return cell != p.Str
		default:
			return false
		}
	}
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return false
	}
	switch p.Op {
	case Eq:
		return v == p.Num
	case Neq:
		return v != p.Num
	case Lt:
		return v < p.Num
	case Leq:
		return v <= p.Num
	case Gt:
		return v > p.Num
	case Geq:
		return v >= p.Num
	default:
		return false
	}
}

// AggFunc is a group-by aggregate.
type AggFunc int

const (
	Count AggFunc = iota
	Sum
	Mean
	Min
	Max
)

// String returns the aggregate name.
func (a AggFunc) String() string {
	switch a {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Mean:
		return "mean"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(a))
	}
}

// Aggregate pairs an aggregate function with the column it applies to.
// For Count the column may be empty.
type Aggregate struct {
	Func AggFunc
	Col  string
}

// Query is an exploratory query: conjunctive selection, projection, optional
// group-by with aggregates, optional sort, optional row limit.
type Query struct {
	Where   []Predicate // conjunction; empty = all rows
	Select  []string    // projection; empty = all columns
	GroupBy []string    // optional; with Aggs
	Aggs    []Aggregate // used only when GroupBy is non-empty
	OrderBy string      // optional sort column (applied after group-by)
	Asc     bool
	Limit   int // 0 = no limit
}

// String renders the query in a compact SQL-like form.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(q.GroupBy) > 0 {
		b.WriteString(strings.Join(q.GroupBy, ", "))
		for _, a := range q.Aggs {
			fmt.Fprintf(&b, ", %s(%s)", a.Func, a.Col)
		}
	} else if len(q.Select) == 0 {
		b.WriteString("*")
	} else {
		b.WriteString(strings.Join(q.Select, ", "))
	}
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		parts := make([]string, len(q.Where))
		for i, p := range q.Where {
			parts[i] = p.String()
		}
		b.WriteString(strings.Join(parts, " AND "))
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY " + strings.Join(q.GroupBy, ", "))
	}
	if q.OrderBy != "" {
		dir := "DESC"
		if q.Asc {
			dir = "ASC"
		}
		fmt.Fprintf(&b, " ORDER BY %s %s", q.OrderBy, dir)
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

// MatchingRows returns the indices of rows satisfying all Where predicates.
// It refuses schema husks with ErrCellsPaged: a dropped-cells table has nil
// column payloads, so Matches would panic (or silently lie about missing
// cells) instead of evaluating.
func (q *Query) MatchingRows(t *table.Table) ([]int, error) {
	if !t.CellsResident() {
		return nil, fmt.Errorf("evaluating %d predicate(s): %w", len(q.Where), ErrCellsPaged)
	}
	rows := make([]int, 0, t.NumRows())
	for r := 0; r < t.NumRows(); r++ {
		ok := true
		for _, p := range q.Where {
			if !p.Matches(t, r) {
				ok = false
				break
			}
		}
		if ok {
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// Apply executes the query against t and returns the result table together
// with the source-row indices of each result row. For group-by queries the
// source indices are the first member row of each group (the result rows are
// synthesized aggregates, so rowIdx is a representative, not an identity).
// Like MatchingRows, Apply refuses husk tables with ErrCellsPaged.
func (q *Query) Apply(t *table.Table) (*table.Table, []int, error) {
	rows, err := q.MatchingRows(t)
	if err != nil {
		return nil, nil, err
	}

	var res *table.Table
	if len(q.GroupBy) > 0 {
		res, rows, err = q.applyGroupBy(t, rows)
		if err != nil {
			return nil, nil, err
		}
	} else {
		res = t.SelectRows(rows)
		if len(q.Select) > 0 {
			res, err = res.Project(q.Select)
			if err != nil {
				return nil, nil, err
			}
		}
	}

	if q.OrderBy != "" && res.Column(q.OrderBy) != nil {
		perm, err := res.SortIndices(q.OrderBy, q.Asc)
		if err != nil {
			return nil, nil, err
		}
		res = res.SelectRows(perm)
		srcRows := make([]int, len(perm))
		for i, p := range perm {
			srcRows[i] = rows[p]
		}
		rows = srcRows
	}

	if q.Limit > 0 && q.Limit < res.NumRows() {
		keep := make([]int, q.Limit)
		for i := range keep {
			keep[i] = i
		}
		res = res.SelectRows(keep)
		rows = rows[:q.Limit]
	}
	return res, rows, nil
}

// applyGroupBy groups the selected rows by the GroupBy columns and computes
// the aggregates per group.
func (q *Query) applyGroupBy(t *table.Table, rows []int) (*table.Table, []int, error) {
	keyCols := make([]*table.Column, len(q.GroupBy))
	for i, name := range q.GroupBy {
		c := t.Column(name)
		if c == nil {
			return nil, nil, fmt.Errorf("query: unknown group-by column %q", name)
		}
		keyCols[i] = c
	}
	type group struct {
		first int
		rows  []int
	}
	groups := make(map[string]*group)
	var order []string
	for _, r := range rows {
		var key strings.Builder
		for _, c := range keyCols {
			key.WriteString(c.CellString(r))
			key.WriteByte('\x00')
		}
		k := key.String()
		g, ok := groups[k]
		if !ok {
			g = &group{first: r}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, r)
	}
	sort.Strings(order) // deterministic group order

	out := table.New(t.Name)
	firstRows := make([]int, len(order))
	// Key columns.
	for i, name := range q.GroupBy {
		src := keyCols[i]
		if src.Kind == table.Numeric {
			vals := make([]float64, len(order))
			for gi, k := range order {
				vals[gi] = src.Nums[groups[k].first]
			}
			if err := out.AddColumn(table.NewNumeric(name, vals)); err != nil {
				return nil, nil, err
			}
		} else {
			vals := make([]string, len(order))
			for gi, k := range order {
				r := groups[k].first
				if src.Missing(r) {
					vals[gi] = ""
				} else {
					vals[gi] = src.Dict.String(src.Cats[r])
				}
			}
			if err := out.AddColumn(table.NewCategorical(name, vals)); err != nil {
				return nil, nil, err
			}
		}
	}
	// Aggregates.
	for _, agg := range q.Aggs {
		name := agg.Func.String()
		if agg.Col != "" {
			name += "_" + agg.Col
		}
		vals := make([]float64, len(order))
		for gi, k := range order {
			v, err := computeAgg(t, agg, groups[k].rows)
			if err != nil {
				return nil, nil, err
			}
			vals[gi] = v
		}
		if err := out.AddColumn(table.NewNumeric(name, vals)); err != nil {
			return nil, nil, err
		}
	}
	for gi, k := range order {
		firstRows[gi] = groups[k].first
	}
	return out, firstRows, nil
}

func computeAgg(t *table.Table, agg Aggregate, rows []int) (float64, error) {
	if agg.Func == Count {
		return float64(len(rows)), nil
	}
	c := t.Column(agg.Col)
	if c == nil {
		return 0, fmt.Errorf("query: unknown aggregate column %q", agg.Col)
	}
	if c.Kind != table.Numeric {
		return 0, fmt.Errorf("query: aggregate %s over categorical column %q", agg.Func, agg.Col)
	}
	sum, n := 0.0, 0
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		v := c.Nums[r]
		if math.IsNaN(v) {
			continue
		}
		sum += v
		n++
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	switch agg.Func {
	case Sum:
		return sum, nil
	case Mean:
		if n == 0 {
			return math.NaN(), nil
		}
		return sum / float64(n), nil
	case Min:
		if n == 0 {
			return math.NaN(), nil
		}
		return mn, nil
	case Max:
		if n == 0 {
			return math.NaN(), nil
		}
		return mx, nil
	default:
		return 0, fmt.Errorf("query: unsupported aggregate %v", agg.Func)
	}
}
