package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"subtab/internal/table"
)

// randomTable builds a table with one numeric and one categorical column
// from quick-generated data.
func randomTable(nums []float64, cats []uint8) *table.Table {
	n := len(nums)
	if len(cats) < n {
		n = len(cats)
	}
	nv := make([]float64, n)
	cv := make([]string, n)
	for i := 0; i < n; i++ {
		nv[i] = nums[i]
		cv[i] = string(rune('a' + cats[i]%5))
	}
	t := table.New("q")
	_ = t.AddColumn(table.NewNumeric("n", nv))
	_ = t.AddColumn(table.NewCategorical("c", cv))
	return t
}

// Property: predicate conjunction is commutative.
func TestPropConjunctionCommutative(t *testing.T) {
	f := func(nums []float64, cats []uint8, threshold float64) bool {
		tab := randomTable(nums, cats)
		if tab.NumRows() == 0 {
			return true
		}
		p1 := Predicate{Col: "n", Op: Geq, Num: threshold}
		p2 := Predicate{Col: "c", Op: Eq, Str: "a"}
		a, _ := (&Query{Where: []Predicate{p1, p2}}).MatchingRows(tab)
		b, _ := (&Query{Where: []Predicate{p2, p1}}).MatchingRows(tab)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a predicate never grows the result (selection is
// anti-monotone in the conjunction).
func TestPropSelectionAntiMonotone(t *testing.T) {
	f := func(nums []float64, cats []uint8, threshold float64) bool {
		tab := randomTable(nums, cats)
		p1 := Predicate{Col: "n", Op: Geq, Num: threshold}
		p2 := Predicate{Col: "c", Op: Neq, Str: "b"}
		loose, _ := (&Query{Where: []Predicate{p1}}).MatchingRows(tab)
		tight, _ := (&Query{Where: []Predicate{p1, p2}}).MatchingRows(tab)
		if len(tight) > len(loose) {
			return false
		}
		// tight ⊆ loose
		in := map[int]bool{}
		for _, r := range loose {
			in[r] = true
		}
		for _, r := range tight {
			if !in[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: group-by COUNT sums to the number of selected rows.
func TestPropGroupByCountTotal(t *testing.T) {
	f := func(nums []float64, cats []uint8) bool {
		tab := randomTable(nums, cats)
		q := &Query{GroupBy: []string{"c"}, Aggs: []Aggregate{{Func: Count}}}
		res, _, err := q.Apply(tab)
		if err != nil {
			return false
		}
		total := 0.0
		for r := 0; r < res.NumRows(); r++ {
			total += res.Cell(r, "count").Num
		}
		return int(total) == tab.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: ORDER BY emits a permutation of the input rows.
func TestPropOrderByPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		nums := make([]float64, n)
		cats := make([]uint8, n)
		for i := range nums {
			nums[i] = rng.NormFloat64()
			cats[i] = uint8(rng.Intn(5))
		}
		tab := randomTable(nums, cats)
		q := &Query{OrderBy: "n", Asc: trial%2 == 0}
		_, rows, err := q.Apply(tab)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, r := range rows {
			if r < 0 || r >= n || seen[r] {
				t.Fatalf("not a permutation: %v", rows)
			}
			seen[r] = true
		}
		if len(seen) != n {
			t.Fatalf("missing rows: %v", rows)
		}
	}
}
