package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("StdDev of singleton should be 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	mn, mx := MinMax([]float64{3, -1, 7, 2})
	if mn != -1 || mx != 7 {
		t.Fatalf("MinMax = %v, %v", mn, mx)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax of empty should panic")
		}
	}()
	MinMax(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantiles(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	cuts := Quantiles(xs, 4)
	want := []float64{0, 25, 50, 75, 100}
	for i := range want {
		if math.Abs(cuts[i]-want[i]) > 1e-9 {
			t.Fatalf("cuts = %v", cuts)
		}
	}
}

func TestSilvermanBandwidthPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	bw := SilvermanBandwidth(xs)
	if bw <= 0 || bw > 1 {
		t.Fatalf("bandwidth = %v", bw)
	}
	// Constant data still yields a positive bandwidth.
	if bw := SilvermanBandwidth([]float64{5, 5, 5, 5}); bw <= 0 {
		t.Fatalf("constant-data bandwidth = %v", bw)
	}
	if bw := SilvermanBandwidth([]float64{1}); bw != 1 {
		t.Fatalf("tiny-sample bandwidth = %v", bw)
	}
}

func TestKDEDensityIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	k := NewKDE(xs, 0)
	// Trapezoid integral over a wide range.
	lo, hi, steps := -6.0, 6.0, 2000
	h := (hi - lo) / float64(steps)
	integral := 0.0
	for i := 0; i <= steps; i++ {
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		integral += w * k.Density(lo+float64(i)*h)
	}
	integral *= h
	if math.Abs(integral-1) > 0.02 {
		t.Fatalf("density integral = %v", integral)
	}
}

func TestKDEEmptySample(t *testing.T) {
	k := NewKDE(nil, 0)
	if k.Density(0) != 0 {
		t.Fatal("empty-sample density should be 0")
	}
	xs, ds := k.Grid(10)
	if xs != nil || ds != nil {
		t.Fatal("empty-sample grid should be nil")
	}
}

func TestKDEBimodalValley(t *testing.T) {
	// Two well-separated modes at 0 and 10: exactly one valley between them.
	rng := rand.New(rand.NewSource(3))
	var xs []float64
	for i := 0; i < 300; i++ {
		xs = append(xs, rng.NormFloat64()*0.5)
		xs = append(xs, 10+rng.NormFloat64()*0.5)
	}
	k := NewKDE(xs, 0)
	valleys := k.DensityValleys(512)
	if len(valleys) == 0 {
		t.Fatal("expected at least one valley")
	}
	// At least one valley should sit between the modes.
	found := false
	for _, v := range valleys {
		if v > 2 && v < 8 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no valley between modes: %v", valleys)
	}
}

func TestKDEUnimodalNoInteriorValley(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	k := NewKDE(xs, 0)
	valleys := k.DensityValleys(256)
	// A clean unimodal sample should produce few or no interior valleys near
	// the mode; allow edge artifacts but not a valley near 0.
	for _, v := range valleys {
		if v > -0.5 && v < 0.5 {
			t.Fatalf("unexpected valley at %v", v)
		}
	}
}

// Property: Quantile is monotone in q and bounded by min/max.
func TestPropQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(xs, q1), Quantile(xs, q2)
		return v1 <= v2 && v1 >= xs[0] && v2 <= xs[len(xs)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: KDE density is non-negative everywhere.
func TestPropKDENonNegative(t *testing.T) {
	f := func(raw []float64, at float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if math.IsNaN(at) || math.IsInf(at, 0) {
			at = 0
		}
		k := NewKDE(xs, 0)
		return k.Density(at) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
