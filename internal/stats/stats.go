// Package stats provides the small statistical toolkit the binner needs:
// descriptive statistics, quantiles, and a Gaussian kernel density estimator
// whose density valleys drive the paper's KDE-based binning (the paper's
// implementation uses SciPy's gaussian_kde for the same purpose).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs (0 for len < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MinMax returns the minimum and maximum of xs; it panics on empty input.
func MinMax(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	mn, mx := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	return mn, mx
}

// Quantile returns the q-th quantile (0 <= q <= 1) of sorted xs using linear
// interpolation. xs must be sorted ascending and non-empty.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles returns the k+1 quantile cut points dividing sorted xs into k
// equal-frequency parts, i.e. quantiles at 0, 1/k, ..., 1.
func Quantiles(sorted []float64, k int) []float64 {
	cuts := make([]float64, k+1)
	for i := 0; i <= k; i++ {
		cuts[i] = Quantile(sorted, float64(i)/float64(k))
	}
	return cuts
}

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth for a
// Gaussian KDE over xs. A tiny floor keeps the KDE well-defined for
// (near-)constant data.
func SilvermanBandwidth(xs []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 1
	}
	sd := StdDev(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	iqr := Quantile(sorted, 0.75) - Quantile(sorted, 0.25)
	a := sd
	if iqr > 0 && iqr/1.349 < a {
		a = iqr / 1.349
	}
	if a <= 0 {
		a = 1e-9
	}
	return 0.9 * a * math.Pow(n, -0.2)
}

// KDE is a Gaussian kernel density estimate over a fixed sample.
//
// Evaluation is optimized for the binner's workload (hundreds of grid
// evaluations over samples of a few thousand points, per numeric column, on
// the preprocess cold path): the sample is kept sorted so each evaluation
// only visits points within the kernel's effective support, and the Gaussian
// kernel itself is a linearly interpolated lookup table. Both are documented
// approximations: contributions beyond |z| > kdeCutoff (where the kernel is
// < 4e-15) are dropped, and the table interpolation carries ~1e-6 relative
// error — far below the resolution at which density valleys move between
// grid cells. The summation order is the sorted-sample order, fixed for a
// given sample, so Density stays a pure deterministic function of
// (sample, bandwidth, x).
type KDE struct {
	sample    []float64 // sorted ascending
	bandwidth float64
}

const (
	// kdeCutoff truncates the Gaussian kernel: exp(-0.5 z²) at |z| = 8 is
	// ~1.3e-14, below the float64 noise floor of any realistic sum.
	kdeCutoff = 8.0
	// kdeTableSize is the kernel lookup resolution over [0, kdeCutoff²/2):
	// 4096 cells of exp(-u) with linear interpolation keep the relative
	// error under ~1e-6.
	kdeTableSize = 4096
	kdeTableMax  = kdeCutoff * kdeCutoff / 2
	kdeTableStep = kdeTableMax / kdeTableSize
)

// kdeExpTable[i] = exp(-i * kdeTableStep); one extra entry so interpolation
// can always read i+1.
var kdeExpTable = func() [kdeTableSize + 2]float64 {
	var t [kdeTableSize + 2]float64
	for i := range t {
		t[i] = math.Exp(-float64(i) * kdeTableStep)
	}
	return t
}()

// kdeKernel approximates exp(-u) for u in [0, kdeTableMax) by linear
// interpolation of kdeExpTable.
func kdeKernel(u float64) float64 {
	p := u * (1 / kdeTableStep)
	i := int(p)
	frac := p - float64(i)
	return kdeExpTable[i] + frac*(kdeExpTable[i+1]-kdeExpTable[i])
}

// NewKDE builds a KDE over xs with the given bandwidth; bandwidth <= 0 uses
// Silverman's rule. The sample is copied (and kept sorted internally).
func NewKDE(xs []float64, bandwidth float64) *KDE {
	if bandwidth <= 0 {
		bandwidth = SilvermanBandwidth(xs)
	}
	sample := append([]float64(nil), xs...)
	sort.Float64s(sample)
	return &KDE{sample: sample, bandwidth: bandwidth}
}

// Bandwidth returns the KDE bandwidth.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// Density evaluates the estimated density at x.
func (k *KDE) Density(x float64) float64 {
	if len(k.sample) == 0 {
		return 0
	}
	const invSqrt2Pi = 0.3989422804014327
	// Only points within the kernel's effective support contribute; the
	// sorted sample turns that window into one binary search plus a
	// contiguous scan.
	r := kdeCutoff * k.bandwidth
	lo := sort.SearchFloat64s(k.sample, x-r)
	sum := 0.0
	invBW := 1 / k.bandwidth
	for _, s := range k.sample[lo:] {
		if s > x+r {
			break
		}
		z := (x - s) * invBW
		sum += kdeKernel(0.5*z*z) * invSqrt2Pi
	}
	return sum / (float64(len(k.sample)) * k.bandwidth)
}

// Grid evaluates the density at m evenly spaced points spanning
// [min - bw, max + bw] and returns the points and densities.
func (k *KDE) Grid(m int) (xs, ds []float64) {
	if len(k.sample) == 0 || m < 2 {
		return nil, nil
	}
	mn, mx := k.sample[0], k.sample[len(k.sample)-1]
	lo, hi := mn-k.bandwidth, mx+k.bandwidth
	xs = make([]float64, m)
	ds = make([]float64, m)
	step := (hi - lo) / float64(m-1)
	for i := 0; i < m; i++ {
		xs[i] = lo + float64(i)*step
		ds[i] = k.Density(xs[i])
	}
	return xs, ds
}

// DensityValleys returns the x-positions of local minima of the density
// evaluated on an m-point grid, sorted ascending. These are natural bin
// boundaries: they separate modes of the distribution.
func (k *KDE) DensityValleys(m int) []float64 {
	xs, ds := k.Grid(m)
	var valleys []float64
	for i := 1; i < len(ds)-1; i++ {
		if ds[i] < ds[i-1] && ds[i] <= ds[i+1] {
			valleys = append(valleys, xs[i])
		}
	}
	return valleys
}
