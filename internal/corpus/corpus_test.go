package corpus

import (
	"testing"

	"subtab/internal/binning"
	"subtab/internal/table"
)

func binnedTable(t *testing.T, n int) *binning.Binned {
	t.Helper()
	tab := table.New("t")
	a := make([]float64, n)
	b := make([]string, n)
	for i := 0; i < n; i++ {
		a[i] = float64(i % 10)
		b[i] = []string{"x", "y", "z"}[i%3]
	}
	if err := tab.AddColumn(table.NewNumeric("a", a)); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn(table.NewCategorical("b", b)); err != nil {
		t.Fatal(err)
	}
	bn, err := binning.Bin(tab, binning.Options{MaxBins: 3, Strategy: binning.Quantile})
	if err != nil {
		t.Fatal(err)
	}
	return bn
}

func TestBuildBoth(t *testing.T) {
	b := binnedTable(t, 50)
	sents := Build(b, Default())
	// 50 tuple sentences + 2 column sentences.
	if len(sents) != 52 {
		t.Fatalf("sentences = %d, want 52", len(sents))
	}
	// Tuple sentences have m tokens; column sentences have n tokens.
	if len(sents[0]) != 2 {
		t.Fatalf("tuple sentence len = %d", len(sents[0]))
	}
	if len(sents[51]) != 50 {
		t.Fatalf("column sentence len = %d", len(sents[51]))
	}
}

func TestBuildTupleOnly(t *testing.T) {
	b := binnedTable(t, 20)
	sents := Build(b, Options{TupleSentences: true, MaxSentences: 1000})
	if len(sents) != 20 {
		t.Fatalf("sentences = %d, want 20", len(sents))
	}
}

func TestBuildColumnOnly(t *testing.T) {
	b := binnedTable(t, 20)
	sents := Build(b, Options{ColumnSentences: true, MaxSentences: 1000})
	if len(sents) != 2 {
		t.Fatalf("sentences = %d, want 2", len(sents))
	}
}

func TestCapSampling(t *testing.T) {
	b := binnedTable(t, 200)
	sents := Build(b, Options{TupleSentences: true, ColumnSentences: true, MaxSentences: 50, Seed: 1})
	// 50 sampled tuple sentences + 2 column sentences.
	if len(sents) != 52 {
		t.Fatalf("sentences = %d, want 52", len(sents))
	}
}

func TestCapDeterministic(t *testing.T) {
	b := binnedTable(t, 200)
	s1 := Build(b, Options{TupleSentences: true, MaxSentences: 50, Seed: 9})
	s2 := Build(b, Options{TupleSentences: true, MaxSentences: 50, Seed: 9})
	if len(s1) != len(s2) {
		t.Fatal("length mismatch")
	}
	for i := range s1 {
		for j := range s1[i] {
			if s1[i][j] != s2[i][j] {
				t.Fatal("same seed must give same sample")
			}
		}
	}
}

func TestTokensAreValidItems(t *testing.T) {
	b := binnedTable(t, 30)
	sents := Build(b, Default())
	for _, s := range sents {
		for _, tok := range s {
			if tok < 0 || int(tok) >= b.NumItems() {
				t.Fatalf("token %d out of item range [0,%d)", tok, b.NumItems())
			}
		}
	}
}

func TestDefaultsWhenBothDisabled(t *testing.T) {
	b := binnedTable(t, 10)
	sents := Build(b, Options{MaxSentences: 100})
	// Both families default on.
	if len(sents) != 12 {
		t.Fatalf("sentences = %d, want 12", len(sents))
	}
}

func TestBuildRowsDeltaMatchesFullTupleSentences(t *testing.T) {
	b := binnedTable(t, 30)
	full := Build(b, Options{MaxSentences: 100, TupleSentences: true})
	delta := BuildRows(b, Options{MaxSentences: 100, TupleSentences: true}, []int{27, 28, 29})
	if len(delta) != 3 {
		t.Fatalf("delta sentences = %d, want 3", len(delta))
	}
	for i, r := range []int{27, 28, 29} {
		for j := range delta[i] {
			if delta[i][j] != full[r][j] {
				t.Fatalf("delta sentence %d diverges from full tuple-sentence of row %d", i, r)
			}
		}
	}
}

func TestBuildRowsCapped(t *testing.T) {
	b := binnedTable(t, 30)
	rows := make([]int, 30)
	for i := range rows {
		rows[i] = i
	}
	sents := BuildRows(b, Options{MaxSentences: 10, Seed: 4}, rows)
	if len(sents) != 10 {
		t.Fatalf("capped delta = %d sentences, want 10", len(sents))
	}
	// The input slice must not be reordered by the sampling shuffle.
	for i, r := range rows {
		if r != i {
			t.Fatal("BuildRows mutated its input rows slice")
		}
	}
}
