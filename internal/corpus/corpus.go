// Package corpus turns a binned table into the "tabular sentences" that
// Algorithm 2's pre-processing feeds to Word2Vec: one tuple-sentence per row
// (the row's items) and one column-sentence per column (the column's items
// down all rows). As in the paper, the corpus is capped (default 100K
// sentences) by uniform random sampling.
package corpus

import (
	"math/rand"

	"subtab/internal/binning"
)

// Options configures corpus construction.
type Options struct {
	// MaxSentences caps the corpus size (paper: 100K). 0 means the default.
	MaxSentences int
	// TupleSentences / ColumnSentences toggle the two sentence families
	// (both true in the paper; the ablation benches flip them).
	TupleSentences  bool
	ColumnSentences bool
	// Seed drives sampling when the corpus exceeds MaxSentences.
	Seed int64
}

// Default returns the paper's corpus settings.
func Default() Options {
	return Options{MaxSentences: 100_000, TupleSentences: true, ColumnSentences: true}
}

func (o Options) withDefaults() Options {
	if o.MaxSentences <= 0 {
		o.MaxSentences = 100_000
	}
	if !o.TupleSentences && !o.ColumnSentences {
		o.TupleSentences = true
		o.ColumnSentences = true
	}
	return o
}

// Build constructs the sentence corpus from a binned table.
//
// Tuple-sentences dominate the corpus (one per row); the m column-sentences
// are long (n tokens each) and are kept whole — Word2Vec's whole-sentence
// window with per-center context sampling handles their length.
func Build(b *binning.Binned, opt Options) [][]int32 {
	opt = opt.withDefaults()
	n, m := b.NumRows(), b.NumCols()
	var sentences [][]int32

	if opt.TupleSentences {
		rowIdx := make([]int, n)
		for i := range rowIdx {
			rowIdx[i] = i
		}
		sentences = BuildRows(b, opt, rowIdx)
	}

	if opt.ColumnSentences {
		for c := 0; c < m; c++ {
			sent := make([]int32, n)
			for r := 0; r < n; r++ {
				sent[r] = b.Item(c, r)
			}
			sentences = append(sentences, sent)
		}
	}
	return sentences
}

// BuildRows constructs tuple-sentences for just the given rows — Build's
// tuple branch over the full table, and the delta corpus of an incremental
// append (core.Model.Append). The append path never emits column-sentences:
// a column-sentence spans all rows, so there is no per-row delta for it;
// fine-tuning works from tuple-sentences alone, like the pipeline's default
// configuration. The sentence cap applies as in Build, sampling uniformly
// with opt.Seed; the input slice is left unmodified.
func BuildRows(b *binning.Binned, opt Options, rows []int) [][]int32 {
	opt = opt.withDefaults()
	m := b.NumCols()
	if len(rows) > opt.MaxSentences {
		sampled := make([]int, len(rows))
		copy(sampled, rows)
		rng := rand.New(rand.NewSource(opt.Seed))
		rng.Shuffle(len(sampled), func(i, j int) { sampled[i], sampled[j] = sampled[j], sampled[i] })
		rows = sampled[:opt.MaxSentences]
	}
	sentences := make([][]int32, 0, len(rows))
	for _, r := range rows {
		sent := make([]int32, m)
		for c := 0; c < m; c++ {
			sent[c] = b.Item(c, r)
		}
		sentences = append(sentences, sent)
	}
	return sentences
}
