package f32

import (
	"math/rand"
	"os"
	"testing"
)

func randMatrix(rng *rand.Rand, r, c int) Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.Float32()*2 - 1
	}
	return m
}

// TestSpillSlabRoundTrip pins that a spilled slab reads back exactly the
// rows written into it, through every access path, for chunk patterns that
// straddle the write-chunk boundaries.
func TestSpillSlabRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const rows, dim = 500, 9
	src := randMatrix(rng, rows, dim)

	slab, err := NewSpillSlab(rows, dim, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer slab.Close()
	if !slab.Spilled() {
		t.Fatal("NewSpillSlab returned a resident slab")
	}
	if _, ok := slab.Matrix(); ok {
		t.Fatal("spilled slab handed out a matrix")
	}
	for start := 0; start < rows; {
		n := min(1+rng.Intn(97), rows-start)
		chunk := Wrap(n, dim, src.Data[start*dim:(start+n)*dim])
		if err := slab.WriteChunk(start, chunk); err != nil {
			t.Fatal(err)
		}
		start += n
	}

	// Sequential chunked reads.
	got := New(rows, dim)
	for start := 0; start < rows; start += 111 {
		n := min(111, rows-start)
		slab.ReadChunk(start, Wrap(n, dim, got.Data[start*dim:(start+n)*dim]))
	}
	for i := range src.Data {
		if src.Data[i] != got.Data[i] {
			t.Fatalf("ReadChunk data[%d] = %v, want %v", i, got.Data[i], src.Data[i])
		}
	}

	// Scattered gather.
	idx := make([]int, 64)
	for i := range idx {
		idx[i] = rng.Intn(rows)
	}
	dst := New(len(idx), dim)
	slab.Gather(dst, idx)
	for j, r := range idx {
		for d := 0; d < dim; d++ {
			if dst.Row(j)[d] != src.Row(r)[d] {
				t.Fatalf("Gather row %d (slab row %d) dim %d mismatch", j, r, d)
			}
		}
	}
}

// TestSlabCloseRemovesSpillFile pins the temp-file lifecycle.
func TestSlabCloseRemovesSpillFile(t *testing.T) {
	dir := t.TempDir()
	slab, err := NewSpillSlab(10, 4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := slab.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill dir has %d entries after Close, want 0", len(entries))
	}
	if err := slab.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestWrapSlabIsResident pins the zero-copy in-memory path.
func TestWrapSlabIsResident(t *testing.T) {
	m := randMatrix(rand.New(rand.NewSource(2)), 20, 5)
	slab := WrapSlab(m)
	mat, ok := slab.Matrix()
	if !ok || &mat.Data[0] != &m.Data[0] {
		t.Fatal("WrapSlab did not hand back the same backing array")
	}
	dst := New(3, 5)
	slab.Gather(dst, []int{4, 0, 19})
	for d := 0; d < 5; d++ {
		if dst.Row(1)[d] != m.Row(0)[d] {
			t.Fatal("resident gather mismatch")
		}
	}
}

// TestMeanPoolRowsMatchesPerRow pins the batched kernel against per-row
// MeanPoolInto bit for bit, negatives included.
func TestMeanPoolRowsMatchesPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := randMatrix(rng, 40, 7)
	const rows, k = 33, 5
	idx := make([]int32, rows*k)
	for i := range idx {
		idx[i] = int32(rng.Intn(42) - 2) // includes the -1/-2 unseen sentinels
	}
	batch := New(rows, 7)
	MeanPoolRows(batch, src, idx, k)
	want := make([]float32, 7)
	for i := 0; i < rows; i++ {
		MeanPoolInto(want, src, idx[i*k:(i+1)*k])
		for d := range want {
			if batch.Row(i)[d] != want[d] {
				t.Fatalf("row %d dim %d: batched %v, per-row %v", i, d, batch.Row(i)[d], want[d])
			}
		}
	}
}
