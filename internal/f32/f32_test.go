package f32

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestMatrixRowsAndWrap(t *testing.T) {
	m := New(3, 4)
	for i := range m.Data {
		m.Data[i] = float32(i)
	}
	if got := m.Row(1); !reflect.DeepEqual(got, []float32{4, 5, 6, 7}) {
		t.Fatalf("Row(1) = %v", got)
	}
	w := Wrap(3, 4, m.Data)
	if w.R != 3 || w.C != 4 || &w.Data[0] != &m.Data[0] {
		t.Fatal("Wrap must alias, not copy")
	}
	rows := m.Rows()
	rows[2][0] = 99
	if m.Data[8] != 99 {
		t.Fatal("Rows() must return views into the matrix")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Wrap with mismatched length must panic")
		}
	}()
	Wrap(2, 3, m.Data)
}

func TestFromRowsPacks(t *testing.T) {
	rows := [][]float32{{1, 2}, {3, 4}, {5, 6}}
	m := FromRows(rows)
	if m.R != 3 || m.C != 2 {
		t.Fatalf("dims %dx%d", m.R, m.C)
	}
	if !reflect.DeepEqual(m.Data, []float32{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("data %v", m.Data)
	}
	rows[0][0] = 42
	if m.Data[0] != 1 {
		t.Fatal("FromRows must copy")
	}
	if e := FromRows(nil); e.R != 0 || e.Data != nil {
		t.Fatal("empty input must yield an empty matrix")
	}
}

// TestKernelsMatchScalar pins the kernels to their scalar definitions,
// including accumulation types — the refactor's bit-identity contract.
func TestKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(70)
		a, b := make([]float32, n), make([]float32, n)
		for i := range a {
			a[i] = rng.Float32()*2 - 1
			b[i] = rng.Float32()*2 - 1
		}
		var dot64, sq float64
		var dot32 float32
		for i := range a {
			dot64 += float64(a[i]) * float64(b[i])
			dot32 += a[i] * b[i]
			d := float64(a[i]) - float64(b[i])
			sq += d * d
		}
		if got := Dot(a, b); got != dot64 {
			t.Fatalf("Dot = %v, scalar %v", got, dot64)
		}
		if got := Dot32(a, b); got != dot32 {
			t.Fatalf("Dot32 = %v, scalar %v", got, dot32)
		}
		if got := SqDist(a, b); got != sq {
			t.Fatalf("SqDist = %v, scalar %v", got, sq)
		}
		// A completed bounded distance is the exact distance; an aborted one
		// is a prefix that already proves d >= bound.
		if got := SqDistBounded(a, b, math.Inf(1)); got != sq {
			t.Fatalf("SqDistBounded(inf) = %v, want %v", got, sq)
		}
		bound := sq / 2
		if got := SqDistBounded(a, b, bound); got < bound && got != sq {
			t.Fatalf("aborted SqDistBounded returned %v below bound %v without equalling %v", got, bound, sq)
		}
	}
}

func TestAxpyAddScaleZero(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{10, 20, 30}
	Axpy(2, x, y)
	if !reflect.DeepEqual(y, []float32{12, 24, 36}) {
		t.Fatalf("Axpy: %v", y)
	}
	Add(y, x)
	if !reflect.DeepEqual(y, []float32{13, 26, 39}) {
		t.Fatalf("Add: %v", y)
	}
	Scale(0.5, y)
	if !reflect.DeepEqual(y, []float32{6.5, 13, 19.5}) {
		t.Fatalf("Scale: %v", y)
	}
	Zero(y)
	if !reflect.DeepEqual(y, []float32{0, 0, 0}) {
		t.Fatalf("Zero: %v", y)
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float32{1, 0}, []float32{0, 1}); got != 0 {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := Cosine([]float32{2, 0}, []float32{5, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("parallel cosine = %v", got)
	}
	if got := Cosine([]float32{0, 0}, []float32{1, 1}); got != 0 {
		t.Fatalf("zero-vector cosine = %v", got)
	}
}

func TestMeanPoolInto(t *testing.T) {
	src := FromRows([][]float32{{1, 2}, {3, 4}, {5, 10}})
	dst := []float32{99, 99}
	n := MeanPoolInto(dst, src, []int32{0, -1, 2})
	if n != 2 {
		t.Fatalf("pooled %d rows", n)
	}
	if !reflect.DeepEqual(dst, []float32{3, 6}) {
		t.Fatalf("mean = %v", dst)
	}
	if n := MeanPoolInto(dst, src, []int32{-1, -1}); n != 0 || dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("all-unseen pool: n=%d dst=%v", n, dst)
	}
}

func TestParallelRangeCoversDisjointly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		n := 101
		hits := make([]int, n)
		ParallelRange(n, workers, func(start, end int) {
			for i := start; i < end; i++ {
				hits[i]++
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
	ParallelRange(0, 4, func(int, int) { t.Fatal("n=0 must not call fn") })
}

func TestParallelIndexCoversDisjointly(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 32} {
		n := 77
		hits := make([]int32, n)
		ParallelIndex(n, workers, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

// TestMapReduceOrdered verifies the reduction runs in chunk order — the
// property that makes order-sensitive reductions (float sums, first-wins
// argmin) deterministic under parallelism.
func TestMapReduceOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		n := 50
		var got []int
		MapReduceOrdered(n, workers, func(start, end int) int { return start }, func(v int) {
			got = append(got, v)
		})
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("workers=%d: chunks reduced out of order: %v", workers, got)
			}
		}
		sum := 0
		MapReduceOrdered(n, workers, func(start, end int) int {
			s := 0
			for i := start; i < end; i++ {
				s += i
			}
			return s
		}, func(v int) { sum += v })
		if want := n * (n - 1) / 2; sum != want {
			t.Fatalf("workers=%d: sum = %d, want %d", workers, sum, want)
		}
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Fatalf("Workers(0) = %d", w)
	}
	if w := Workers(1); w != 1 {
		t.Fatalf("Workers(1) = %d", w)
	}
	if w := Workers(1 << 20); w < 1 {
		t.Fatalf("Workers(big) = %d", w)
	}
}
