package f32

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestMatrixRowsAndWrap(t *testing.T) {
	m := New(3, 4)
	for i := range m.Data {
		m.Data[i] = float32(i)
	}
	if got := m.Row(1); !reflect.DeepEqual(got, []float32{4, 5, 6, 7}) {
		t.Fatalf("Row(1) = %v", got)
	}
	w := Wrap(3, 4, m.Data)
	if w.R != 3 || w.C != 4 || &w.Data[0] != &m.Data[0] {
		t.Fatal("Wrap must alias, not copy")
	}
	rows := m.Rows()
	rows[2][0] = 99
	if m.Data[8] != 99 {
		t.Fatal("Rows() must return views into the matrix")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Wrap with mismatched length must panic")
		}
	}()
	Wrap(2, 3, m.Data)
}

func TestFromRowsPacks(t *testing.T) {
	rows := [][]float32{{1, 2}, {3, 4}, {5, 6}}
	m := FromRows(rows)
	if m.R != 3 || m.C != 2 {
		t.Fatalf("dims %dx%d", m.R, m.C)
	}
	if !reflect.DeepEqual(m.Data, []float32{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("data %v", m.Data)
	}
	rows[0][0] = 42
	if m.Data[0] != 1 {
		t.Fatal("FromRows must copy")
	}
	if e := FromRows(nil); e.R != 0 || e.Data != nil {
		t.Fatal("empty input must yield an empty matrix")
	}
}

// dot32Reference is the documented accumulation contract of Dot32, written
// out naively: lane i feeds accumulator i mod 4, combined as
// ((s0+s1)+(s2+s3))+tail. The kernel may unroll however it likes as long as
// it computes exactly this function.
func dot32Reference(a, b []float32) float32 {
	var s [4]float32
	n4 := len(a) / 4 * 4
	for i := 0; i < n4; i++ {
		s[i%4] += a[i] * b[i]
	}
	var tail float32
	for i := n4; i < len(a); i++ {
		tail += a[i] * b[i]
	}
	return ((s[0] + s[1]) + (s[2] + s[3])) + tail
}

// TestKernelsMatchScalar pins the kernels to their definitions, including
// accumulation types and (for Dot32) the fixed lane order — the bit-identity
// contract every caller leans on.
func TestKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(70)
		a, b := make([]float32, n), make([]float32, n)
		for i := range a {
			a[i] = rng.Float32()*2 - 1
			b[i] = rng.Float32()*2 - 1
		}
		var dot64, sq float64
		for i := range a {
			dot64 += float64(a[i]) * float64(b[i])
			d := float64(a[i]) - float64(b[i])
			sq += d * d
		}
		if got := Dot(a, b); got != dot64 {
			t.Fatalf("Dot = %v, scalar %v", got, dot64)
		}
		if got, want := Dot32(a, b), dot32Reference(a, b); got != want {
			t.Fatalf("n=%d: Dot32 = %v, lane-order reference %v", n, got, want)
		}
		if got := SqDist(a, b); got != sq {
			t.Fatalf("SqDist = %v, scalar %v", got, sq)
		}
		// Axpy and Add are element-independent: the unrolled kernels must
		// match the scalar loops bit for bit at every length.
		y1 := append([]float32(nil), b...)
		y2 := append([]float32(nil), b...)
		Axpy(0.75, a, y1)
		for i := range y2 {
			y2[i] += 0.75 * a[i]
		}
		if !reflect.DeepEqual(y1, y2) {
			t.Fatalf("n=%d: Axpy diverged from scalar: %v vs %v", n, y1, y2)
		}
		Add(y1, a)
		for i := range y2 {
			y2[i] += a[i]
		}
		if !reflect.DeepEqual(y1, y2) {
			t.Fatalf("n=%d: Add diverged from scalar: %v vs %v", n, y1, y2)
		}
		// SGStep must be the exact fusion of Axpy(g, tv, grad) then
		// Axpy(g, cv, tv): grad reads the pre-update tv.
		cv := a
		tv1 := append([]float32(nil), b...)
		tv2 := append([]float32(nil), b...)
		grad1 := append([]float32(nil), y1...)
		grad2 := append([]float32(nil), y1...)
		const g = float32(-0.37)
		SGStep(g, cv, tv1, grad1)
		Axpy(g, tv2, grad2)
		Axpy(g, cv, tv2)
		if !reflect.DeepEqual(tv1, tv2) || !reflect.DeepEqual(grad1, grad2) {
			t.Fatalf("n=%d: SGStep diverged from its two-Axpy definition", n)
		}
		// A completed bounded distance is the exact distance; an aborted one
		// is a prefix that already proves d >= bound.
		if got := SqDistBounded(a, b, math.Inf(1)); got != sq {
			t.Fatalf("SqDistBounded(inf) = %v, want %v", got, sq)
		}
		bound := sq / 2
		if got := SqDistBounded(a, b, bound); got < bound && got != sq {
			t.Fatalf("aborted SqDistBounded returned %v below bound %v without equalling %v", got, bound, sq)
		}
	}
}

func TestSigmoidTable(t *testing.T) {
	cases := []struct {
		x    float32
		want float64
		tol  float64
	}{
		{0, 0.5, 0.01},
		{10, 1, 1e-9},
		{-10, 0, 1e-9},
		{2, 1 / (1 + math.Exp(-2)), 0.01},
		{-2, 1 / (1 + math.Exp(2)), 0.01},
	}
	for _, c := range cases {
		if got := float64(Sigmoid32(c.x)); math.Abs(got-c.want) > c.tol {
			t.Errorf("Sigmoid32(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

// TestSGPairMatchesComposition pins SGPair to its definition: the exact
// composition of Dot32, Sigmoid32 and SGStep.
func TestSGPairMatchesComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(70)
		cv := make([]float32, n)
		tv1 := make([]float32, n)
		grad1 := make([]float32, n)
		for i := range cv {
			cv[i] = rng.Float32()*2 - 1
			tv1[i] = rng.Float32()*2 - 1
			grad1[i] = rng.Float32()*2 - 1
		}
		tv2 := append([]float32(nil), tv1...)
		grad2 := append([]float32(nil), grad1...)
		label := float32(trial % 2)
		const lr = float32(0.0213)
		SGPair(label, lr, cv, tv1, grad1)
		g := (label - Sigmoid32(Dot32(cv, tv2))) * lr
		SGStep(g, cv, tv2, grad2)
		if !reflect.DeepEqual(tv1, tv2) || !reflect.DeepEqual(grad1, grad2) {
			t.Fatalf("n=%d: SGPair diverged from its composed definition", n)
		}
	}
}

// TestSGSlotMatchesComposition pins SGSlot to its definition: Zero(grad),
// then SGPair per target (tvs[0] positive, rest negative), then Add(cv, grad).
func TestSGSlotMatchesComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		targets := 1 + rng.Intn(10) // >8 exercises the sequential path too
		cv1 := make([]float32, n)
		grad1 := make([]float32, n)
		tvs1 := make([][]float32, targets)
		tvs2 := make([][]float32, targets)
		for i := range cv1 {
			cv1[i] = rng.Float32()*2 - 1
			grad1[i] = rng.Float32()*2 - 1 // stale garbage: SGSlot must zero it
		}
		for ti := range tvs1 {
			if ti > 0 && rng.Intn(4) == 0 {
				// Alias an earlier target row: a duplicate negative draw must
				// see the earlier target's update, which forces SGSlot off its
				// batched path.
				src := rng.Intn(ti)
				tvs1[ti] = tvs1[src]
				tvs2[ti] = tvs2[src]
				continue
			}
			tvs1[ti] = make([]float32, n)
			for i := range tvs1[ti] {
				tvs1[ti][i] = rng.Float32()*2 - 1
			}
			tvs2[ti] = append([]float32(nil), tvs1[ti]...)
		}
		cv2 := append([]float32(nil), cv1...)
		grad2 := make([]float32, n)
		const lr = float32(0.025)
		SGSlot(lr, cv1, grad1, tvs1)
		Zero(grad2)
		for ti := range tvs2 {
			label := float32(0)
			if ti == 0 {
				label = 1
			}
			SGPair(label, lr, cv2, tvs2[ti], grad2)
		}
		Add(cv2, grad2)
		if !reflect.DeepEqual(cv1, cv2) {
			t.Fatalf("n=%d targets=%d: SGSlot center diverged from composition", n, targets)
		}
		for ti := range tvs1 {
			if !reflect.DeepEqual(tvs1[ti], tvs2[ti]) {
				t.Fatalf("n=%d targets=%d: SGSlot target %d diverged from composition", n, targets, ti)
			}
		}
	}
}

func TestAxpyAddScaleZero(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{10, 20, 30}
	Axpy(2, x, y)
	if !reflect.DeepEqual(y, []float32{12, 24, 36}) {
		t.Fatalf("Axpy: %v", y)
	}
	Add(y, x)
	if !reflect.DeepEqual(y, []float32{13, 26, 39}) {
		t.Fatalf("Add: %v", y)
	}
	Scale(0.5, y)
	if !reflect.DeepEqual(y, []float32{6.5, 13, 19.5}) {
		t.Fatalf("Scale: %v", y)
	}
	Zero(y)
	if !reflect.DeepEqual(y, []float32{0, 0, 0}) {
		t.Fatalf("Zero: %v", y)
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float32{1, 0}, []float32{0, 1}); got != 0 {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := Cosine([]float32{2, 0}, []float32{5, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("parallel cosine = %v", got)
	}
	if got := Cosine([]float32{0, 0}, []float32{1, 1}); got != 0 {
		t.Fatalf("zero-vector cosine = %v", got)
	}
}

func TestMeanPoolInto(t *testing.T) {
	src := FromRows([][]float32{{1, 2}, {3, 4}, {5, 10}})
	dst := []float32{99, 99}
	n := MeanPoolInto(dst, src, []int32{0, -1, 2})
	if n != 2 {
		t.Fatalf("pooled %d rows", n)
	}
	if !reflect.DeepEqual(dst, []float32{3, 6}) {
		t.Fatalf("mean = %v", dst)
	}
	if n := MeanPoolInto(dst, src, []int32{-1, -1}); n != 0 || dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("all-unseen pool: n=%d dst=%v", n, dst)
	}
}

func TestParallelRangeCoversDisjointly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		n := 101
		hits := make([]int, n)
		ParallelRange(n, workers, func(start, end int) {
			for i := start; i < end; i++ {
				hits[i]++
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
	ParallelRange(0, 4, func(int, int) { t.Fatal("n=0 must not call fn") })
}

func TestParallelIndexCoversDisjointly(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 32} {
		n := 77
		hits := make([]int32, n)
		ParallelIndex(n, workers, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

// TestMapReduceOrdered verifies the reduction runs in chunk order — the
// property that makes order-sensitive reductions (float sums, first-wins
// argmin) deterministic under parallelism.
func TestMapReduceOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		n := 50
		var got []int
		MapReduceOrdered(n, workers, func(start, end int) int { return start }, func(v int) {
			got = append(got, v)
		})
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("workers=%d: chunks reduced out of order: %v", workers, got)
			}
		}
		sum := 0
		MapReduceOrdered(n, workers, func(start, end int) int {
			s := 0
			for i := start; i < end; i++ {
				s += i
			}
			return s
		}, func(v int) { sum += v })
		if want := n * (n - 1) / 2; sum != want {
			t.Fatalf("workers=%d: sum = %d, want %d", workers, sum, want)
		}
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Fatalf("Workers(0) = %d", w)
	}
	if w := Workers(1); w != 1 {
		t.Fatalf("Workers(1) = %d", w)
	}
	if w := Workers(1 << 20); w < 1 {
		t.Fatalf("Workers(big) = %d", w)
	}
}
