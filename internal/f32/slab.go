package f32

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
)

// MeanPoolRows fills every row of dst with the mean of gathered src rows:
// dst row i pools src rows idx[i*k : (i+1)*k], skipping negative indices
// (the "unseen item" sentinel). Per row it performs exactly MeanPoolInto's
// arithmetic — float32 sums in index order, one multiply by 1/n — so a
// batch built through this kernel is bit-identical to per-row pooling.
// This is the gather kernel of the out-of-core selection path: the caller
// streams bin codes out of a code store in column-major block order,
// transposes them into the per-row index slab idx, and pools whole chunks
// of sampled rows at once.
func MeanPoolRows(dst Matrix, src Matrix, idx []int32, k int) {
	if len(idx) != dst.R*k {
		panic("f32: MeanPoolRows: index slab does not match dst rows")
	}
	ParallelRange(dst.R, Workers(dst.R), func(start, end int) {
		for i := start; i < end; i++ {
			MeanPoolInto(dst.Row(i), src, idx[i*k:(i+1)*k])
		}
	})
}

// spillChunkRows is the row granularity of spill-file I/O.
const spillChunkRows = 4096

// Slab is a bounded row-major float32 buffer for the selection pipeline's
// sampled tuple-vectors: in-memory when it fits the caller's budget, backed
// by an unlinked temp file when it does not. Producers fill it in row
// chunks (WriteChunk); consumers read row chunks (ReadChunk), gather
// scattered rows (Gather), or — when the slab is resident — grab the whole
// matrix with no copy (Matrix). Reads are safe for concurrent use once
// writing is done; Close releases the spill file.
type Slab struct {
	rows, dim int
	mem       Matrix   // resident backing (zero when spilled)
	f         *os.File // spill backing (nil when resident)
	enc       []byte   // write-side encode scratch (producer is single-goroutine)
}

// WrapSlab views an existing in-memory matrix as a Slab (no copy) — the
// fast path when the sampled vectors fit the memory budget.
func WrapSlab(m Matrix) *Slab {
	return &Slab{rows: m.R, dim: m.C, mem: m}
}

// NewSpillSlab creates a file-backed slab of rows×dim float32s in dir
// ("" = the OS temp dir). The file is created unlinked-on-Close; a slab
// that is never Closed leaks a temp file until the OS cleans the dir, so
// callers should defer Close.
func NewSpillSlab(rows, dim int, dir string) (*Slab, error) {
	f, err := os.CreateTemp(dir, "subtab-slab-*.f32")
	if err != nil {
		return nil, err
	}
	// Size the file up front so WriteChunk can write at any offset.
	if err := f.Truncate(int64(rows) * int64(dim) * 4); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	return &Slab{rows: rows, dim: dim, f: f}, nil
}

// Rows returns the row count. Len is an alias so the slab satisfies
// cluster.PointSource.
func (s *Slab) Rows() int { return s.rows }

// Len returns the row count (cluster.PointSource).
func (s *Slab) Len() int { return s.rows }

// Dim returns the vector dimension.
func (s *Slab) Dim() int { return s.dim }

// Spilled reports whether the slab lives in a temp file.
func (s *Slab) Spilled() bool { return s.f != nil }

// Matrix returns the backing matrix and true when the slab is resident;
// spilled slabs return false and must be read through ReadChunk/Gather.
func (s *Slab) Matrix() (Matrix, bool) {
	if s.f != nil {
		return Matrix{}, false
	}
	return s.mem, true
}

// WriteChunk stores rows [start, start+m.R) from m (m.C must equal the
// slab dimension). The producer side is single-goroutine.
func (s *Slab) WriteChunk(start int, m Matrix) error {
	if m.C != s.dim {
		return fmt.Errorf("f32: slab write: chunk dim %d, slab dim %d", m.C, s.dim)
	}
	if start < 0 || start+m.R > s.rows {
		return fmt.Errorf("f32: slab write: rows [%d,%d) out of 0..%d", start, start+m.R, s.rows)
	}
	if s.f == nil {
		copy(s.mem.Data[start*s.dim:], m.Data)
		return nil
	}
	need := len(m.Data) * 4
	if cap(s.enc) < need {
		s.enc = make([]byte, need)
	}
	buf := s.enc[:need]
	for i, v := range m.Data {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	_, err := s.f.WriteAt(buf, int64(start)*int64(s.dim)*4)
	return err
}

// ReadChunk fills dst with rows [start, start+dst.R). For resident slabs
// this is a copy; spilled slabs decode from the file. Concurrent readers
// must pass distinct dst (and scratch is per-call), so chunked scans can
// fan out.
func (s *Slab) ReadChunk(start int, dst Matrix) {
	if dst.C != s.dim || start < 0 || start+dst.R > s.rows {
		panic("f32: slab read: bad chunk geometry")
	}
	if s.f == nil {
		copy(dst.Data, s.mem.Data[start*s.dim:(start+dst.R)*s.dim])
		return
	}
	buf := make([]byte, len(dst.Data)*4)
	if _, err := s.f.ReadAt(buf, int64(start)*int64(s.dim)*4); err != nil {
		panic(fmt.Sprintf("f32: slab read: %v", err))
	}
	for i := range dst.Data {
		dst.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
}

// Gather copies the given rows into dst (dst row j receives slab row
// idx[j]) — the batch-draw primitive of mini-batch clustering over a
// spilled sample.
func (s *Slab) Gather(dst Matrix, idx []int) {
	if dst.C != s.dim || dst.R != len(idx) {
		panic("f32: slab gather: bad geometry")
	}
	if s.f == nil {
		GatherRows(dst, s.mem, idx)
		return
	}
	buf := make([]byte, s.dim*4)
	for j, r := range idx {
		if _, err := s.f.ReadAt(buf, int64(r)*int64(s.dim)*4); err != nil {
			panic(fmt.Sprintf("f32: slab gather: %v", err))
		}
		row := dst.Row(j)
		for i := range row {
			row[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
	}
}

// ChunkRows returns the preferred chunk granularity for sequential scans
// over this slab.
func (s *Slab) ChunkRows() int {
	if s.f == nil {
		return s.rows
	}
	return spillChunkRows
}

// Close releases the spill file (no-op for resident slabs, whose memory is
// the caller's).
func (s *Slab) Close() error {
	if s.f == nil {
		return nil
	}
	name := s.f.Name()
	err := s.f.Close()
	os.Remove(name)
	s.f = nil
	return err
}
