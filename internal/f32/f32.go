// Package f32 is the flat-vector core of the SubTab compute spine. It
// provides a contiguous row-major float32 matrix plus the small kernel set
// the pipeline needs (dot, axpy, scale, squared distance, batched mean-pool)
// and deterministic parallel iteration helpers.
//
// Two properties matter to callers:
//
//   - Every kernel computes ONE fixed arithmetic function of its inputs:
//     accumulation types, operand order and (for the unrolled reductions)
//     lane-to-accumulator assignment are documented contracts, never tuned
//     per platform. Element-wise kernels (Axpy, Add, Scale) unroll without
//     changing a single bit; reductions that unroll with multiple
//     accumulators (Dot32) fix the lane order once, so their output is the
//     same on every machine and at every worker count.
//   - The parallel helpers only hand out disjoint index ranges; combined with
//     MapReduceOrdered's chunk-order reduction, every parallel computation in
//     this codebase is order-deterministic — same inputs, same bytes out,
//     regardless of GOMAXPROCS or scheduling.
package f32

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Matrix is a dense row-major float32 matrix: row i occupies
// Data[i*C : (i+1)*C]. A zero Matrix is an empty matrix.
type Matrix struct {
	R, C int
	Data []float32
}

// New allocates an r×c zero matrix in one contiguous slab.
func New(r, c int) Matrix {
	return Matrix{R: r, C: c, Data: make([]float32, r*c)}
}

// Wrap views an existing flat slice as an r×c matrix without copying.
// len(data) must be r*c.
func Wrap(r, c int, data []float32) Matrix {
	if len(data) != r*c {
		panic("f32: Wrap: data length does not match dimensions")
	}
	return Matrix{R: r, C: c, Data: data}
}

// FromRows packs a slice-of-slices into one contiguous matrix (copying).
// All rows must share one length; an empty input yields an empty matrix.
func FromRows(rows [][]float32) Matrix {
	if len(rows) == 0 {
		return Matrix{}
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	return m
}

// Row returns the i-th row as a view into the matrix (no copy).
func (m Matrix) Row(i int) []float32 {
	return m.Data[i*m.C : (i+1)*m.C : (i+1)*m.C]
}

// Rows materializes per-row views (headers only; the data is not copied).
func (m Matrix) Rows() [][]float32 {
	out := make([][]float32, m.R)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// ---------------------------------------------------------------------------
// Kernels. Accumulation types are part of the contract: Dot, SqDist and
// Cosine accumulate in float64 (as the scalar code they replaced did), while
// Dot32, Axpy, Add and Scale stay in float32 (the word2vec training regime).

// Dot returns the dot product of two equal-length vectors, accumulated in
// float64.
func Dot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// Dot32 returns the dot product accumulated in float32 — the exact
// arithmetic of the skip-gram inner loop. The kernel is unrolled 4-wide with
// four independent accumulators (lane i feeds accumulator i mod 4) combined
// as ((s0+s1)+(s2+s3))+tail; that lane order is FIXED and part of the
// contract — it breaks the add-latency dependency chain without introducing
// any scheduling- or width-dependent variation, so the result is one
// deterministic function of the inputs on every machine.
func Dot32(a, b []float32) float32 {
	// Pinning cap to len lets the prover discharge the chunk-slice bounds
	// checks below (slicing checks cap, not len).
	a = a[:len(a):len(a)]
	b = b[:len(a):len(a)]
	var s0, s1, s2, s3 float32
	i := 0
	// Chunked subslices let the compiler prove every access in bounds: one
	// provable slice op per block, constant indices inside.
	for ; i <= len(a)-4; i += 4 {
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		s0 += x[0] * y[0]
		s1 += x[1] * y[1]
		s2 += x[2] * y[2]
		s3 += x[3] * y[3]
	}
	var t float32
	for ; i < len(a); i++ {
		t += a[i] * b[i]
	}
	return ((s0 + s1) + (s2 + s3)) + t
}

// Axpy adds a*x to y element-wise: y[i] += a * x[i]. The 8-wide unroll is
// pure instruction-level parallelism: every element is independent, so the
// results are bit-identical to the scalar loop at any width.
func Axpy(a float32, x, y []float32) {
	y = y[:len(y):len(y)]
	x = x[:len(y):len(y)]
	i := 0
	for ; i <= len(y)-8; i += 8 {
		yy := y[i : i+8 : i+8]
		xx := x[i : i+8 : i+8]
		yy[0] += a * xx[0]
		yy[1] += a * xx[1]
		yy[2] += a * xx[2]
		yy[3] += a * xx[3]
		yy[4] += a * xx[4]
		yy[5] += a * xx[5]
		yy[6] += a * xx[6]
		yy[7] += a * xx[7]
	}
	for ; i < len(y); i++ {
		y[i] += a * x[i]
	}
}

// Add adds x to dst element-wise: dst[i] += x[i]. Unrolled like Axpy;
// element-independent, so bit-identical to the scalar loop.
func Add(dst, x []float32) {
	dst = dst[:len(dst):len(dst)]
	x = x[:len(dst):len(dst)]
	i := 0
	for ; i <= len(dst)-8; i += 8 {
		dd := dst[i : i+8 : i+8]
		xx := x[i : i+8 : i+8]
		dd[0] += xx[0]
		dd[1] += xx[1]
		dd[2] += xx[2]
		dd[3] += xx[3]
		dd[4] += xx[4]
		dd[5] += xx[5]
		dd[6] += xx[6]
		dd[7] += xx[7]
	}
	for ; i < len(dst); i++ {
		dst[i] += x[i]
	}
}

// ---------------------------------------------------------------------------
// Skip-gram training kernels. The logistic table and the fused pair update
// live here so the embedding trainer's inner loop is one call per target
// row; the lane-order contracts are the same as the standalone kernels'.

const (
	sigTableSize = 1024
	sigMax       = 6.0
	// sigScale converts a logit offset by +sigMax into a table index with
	// one multiply — the classic word2vec C expTable indexing, minus its
	// division.
	sigScale = sigTableSize / (2 * sigMax)
)

// sigTable is a precomputed logistic table over [-sigMax, sigMax].
var sigTable = func() [sigTableSize]float32 {
	var t [sigTableSize]float32
	for i := range t {
		x := (float64(i)/sigTableSize*2 - 1) * sigMax
		t[i] = float32(1 / (1 + math.Exp(-x)))
	}
	return t
}()

// Sigmoid32 is the table-driven logistic function of the training loop:
// values beyond ±sigMax saturate to exactly 0 or 1, values inside map to a
// 1024-cell table — the precomputed-sigmoid trick of the classic word2vec C
// implementation. The table resolution is part of the arithmetic contract.
func Sigmoid32(x float32) float32 {
	if x >= sigMax {
		return 1
	}
	if x <= -sigMax {
		return 0
	}
	i := int((x + sigMax) * sigScale)
	if uint(i) >= sigTableSize {
		// NaN (int conversion yields a huge negative) or the x == sigMax-ε
		// rounding edge: clamp so the function is total — garbage inputs must
		// not crash the trainer, and the clamp keeps it deterministic.
		if i < 0 {
			return sigTable[0]
		}
		i = sigTableSize - 1
	}
	return sigTable[i]
}

// SGPair applies one complete skip-gram update slot against one target row:
// g = (label - Sigmoid32(Dot32(cv, tv))) * lr, then the fused SGStep — one
// call, two passes over tv (dot, then update; the first warms the lines the
// second rewrites). Exactly equivalent to calling those three kernels in
// sequence — the body below is their manual fusion, pinned to the composed
// form by the kernel tests.
func SGPair(label, lr float32, cv, tv, grad []float32) {
	cv = cv[:len(cv):len(cv)]
	tv = tv[:len(cv):len(cv)]
	grad = grad[:len(cv):len(cv)]
	// Dot32, fused: same 4-lane accumulation contract (element i feeds
	// accumulator i mod 4, so the 8-wide block below adds the exact same
	// terms to each lane in the exact same order as the 4-wide loop).
	var s0, s1, s2, s3 float32
	i := 0
	for ; i <= len(cv)-8; i += 8 {
		c := cv[i : i+8 : i+8]
		v := tv[i : i+8 : i+8]
		s0 += c[0] * v[0]
		s1 += c[1] * v[1]
		s2 += c[2] * v[2]
		s3 += c[3] * v[3]
		s0 += c[4] * v[4]
		s1 += c[5] * v[5]
		s2 += c[6] * v[6]
		s3 += c[7] * v[7]
	}
	for ; i <= len(cv)-4; i += 4 {
		c := cv[i : i+4 : i+4]
		v := tv[i : i+4 : i+4]
		s0 += c[0] * v[0]
		s1 += c[1] * v[1]
		s2 += c[2] * v[2]
		s3 += c[3] * v[3]
	}
	var t float32
	for ; i < len(cv); i++ {
		t += cv[i] * tv[i]
	}
	g := (label - Sigmoid32(((s0+s1)+(s2+s3))+t)) * lr
	if g == 0 {
		// Saturated pair (sigmoid hit exactly 0 or 1): every update term is
		// a zero product, so skipping the pass is part of the contract —
		// SGStep short-circuits identically.
		return
	}
	// SGStep, fused.
	i = 0
	for ; i <= len(cv)-8; i += 8 {
		c := cv[i : i+8 : i+8]
		v := tv[i : i+8 : i+8]
		gr := grad[i : i+8 : i+8]
		t0, t1, t2, t3 := v[0], v[1], v[2], v[3]
		t4, t5, t6, t7 := v[4], v[5], v[6], v[7]
		gr[0] += g * t0
		gr[1] += g * t1
		gr[2] += g * t2
		gr[3] += g * t3
		gr[4] += g * t4
		gr[5] += g * t5
		gr[6] += g * t6
		gr[7] += g * t7
		v[0] = t0 + g*c[0]
		v[1] = t1 + g*c[1]
		v[2] = t2 + g*c[2]
		v[3] = t3 + g*c[3]
		v[4] = t4 + g*c[4]
		v[5] = t5 + g*c[5]
		v[6] = t6 + g*c[6]
		v[7] = t7 + g*c[7]
	}
	for ; i <= len(cv)-4; i += 4 {
		c := cv[i : i+4 : i+4]
		v := tv[i : i+4 : i+4]
		gr := grad[i : i+4 : i+4]
		t0, t1, t2, t3 := v[0], v[1], v[2], v[3]
		gr[0] += g * t0
		gr[1] += g * t1
		gr[2] += g * t2
		gr[3] += g * t3
		v[0] = t0 + g*c[0]
		v[1] = t1 + g*c[1]
		v[2] = t2 + g*c[2]
		v[3] = t3 + g*c[3]
	}
	for ; i < len(cv); i++ {
		t := tv[i]
		grad[i] += g * t
		tv[i] = t + g*cv[i]
	}
}

// SGStep is the fused skip-gram update against one target row: with the
// gradient scale g already computed, it accumulates g*tv into grad (the
// pending center update) and adds g*cv to tv. Per lane it performs exactly
// the arithmetic of Axpy(g, tv, grad) followed by Axpy(g, cv, tv) — grad
// reads the pre-update tv lane — but in one pass, loading each tv lane once.
// Element-independent, so bit-identical to the two-call form at any unroll
// width. This is the training inner loop's dominant kernel.
func SGStep(g float32, cv, tv, grad []float32) {
	if g == 0 {
		return // zero gradient: every term below is a zero product
	}
	cv = cv[:len(cv):len(cv)]
	tv = tv[:len(cv):len(cv)]
	grad = grad[:len(cv):len(cv)]
	i := 0
	for ; i <= len(cv)-8; i += 8 {
		c := cv[i : i+8 : i+8]
		v := tv[i : i+8 : i+8]
		gr := grad[i : i+8 : i+8]
		t0, t1, t2, t3 := v[0], v[1], v[2], v[3]
		t4, t5, t6, t7 := v[4], v[5], v[6], v[7]
		gr[0] += g * t0
		gr[1] += g * t1
		gr[2] += g * t2
		gr[3] += g * t3
		gr[4] += g * t4
		gr[5] += g * t5
		gr[6] += g * t6
		gr[7] += g * t7
		v[0] = t0 + g*c[0]
		v[1] = t1 + g*c[1]
		v[2] = t2 + g*c[2]
		v[3] = t3 + g*c[3]
		v[4] = t4 + g*c[4]
		v[5] = t5 + g*c[5]
		v[6] = t6 + g*c[6]
		v[7] = t7 + g*c[7]
	}
	for ; i <= len(cv)-4; i += 4 {
		c := cv[i : i+4 : i+4]
		v := tv[i : i+4 : i+4]
		gr := grad[i : i+4 : i+4]
		t0, t1, t2, t3 := v[0], v[1], v[2], v[3]
		gr[0] += g * t0
		gr[1] += g * t1
		gr[2] += g * t2
		gr[3] += g * t3
		v[0] = t0 + g*c[0]
		v[1] = t1 + g*c[1]
		v[2] = t2 + g*c[2]
		v[3] = t3 + g*c[3]
	}
	for ; i < len(cv); i++ {
		t := tv[i]
		grad[i] += g * t
		tv[i] = t + g*cv[i]
	}
}

// Scale multiplies x by a in place.
func Scale(a float32, x []float32) {
	for i := range x {
		x[i] *= a
	}
}

// Zero clears x.
func Zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// SqDist returns the squared Euclidean distance between two equal-length
// vectors, with per-component widening to float64.
func SqDist(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// SqDistBounded is SqDist with early exit: it returns as soon as the running
// sum strictly exceeds bound. Because the running sum is the exact prefix of
// SqDist's accumulation (same order, same widening) and can only grow, the
// abort is deterministic and nearest-neighbor scans get exactly the result a
// full computation would give: a return value > bound guarantees the true
// distance is > bound, and any return value <= bound IS the exact distance —
// so even exact ties with the incumbent (d == bound) surface precisely and
// index-order tie-breaks behave as if every distance had been computed in
// full.
func SqDistBounded(a, b []float32, bound float64) float64 {
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := float64(a[i]) - float64(b[i])
		s += d0 * d0
		d1 := float64(a[i+1]) - float64(b[i+1])
		s += d1 * d1
		d2 := float64(a[i+2]) - float64(b[i+2])
		s += d2 * d2
		d3 := float64(a[i+3]) - float64(b[i+3])
		s += d3 * d3
		if s > bound {
			return s
		}
	}
	for ; i < len(a); i++ {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// Cosine returns the cosine similarity of two vectors (0 for zero vectors).
func Cosine(a, b []float32) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// MeanPoolInto sets dst to the component-wise mean of the selected rows of
// src, skipping negative indices (the "unseen item" sentinel), and returns
// how many rows were pooled. dst is zeroed first; when nothing is pooled it
// stays zero. The accumulation is float32 sums in index order followed by a
// single multiply by 1/n — bit-identical to the scalar mean loops it
// replaced.
func MeanPoolInto(dst []float32, src Matrix, rows []int32) int {
	Zero(dst)
	n := 0
	for _, r := range rows {
		if r < 0 {
			continue
		}
		Add(dst, src.Row(int(r)))
		n++
	}
	if n > 0 {
		Scale(1/float32(n), dst)
	}
	return n
}

// GatherRows copies the selected rows of src into dst (dst row i receives
// src row rows[i]). Both matrices must share the column count and dst must
// have len(rows) rows. The copies are plain memmoves fanned out across
// workers with disjoint destination rows, so the gather is deterministic at
// any worker count. This is the sampled-row path of the selection pipeline:
// a candidate sample of a warm full-table vector cache is a row gather, not
// a recompute.
func GatherRows(dst, src Matrix, rows []int) {
	if dst.C != src.C {
		panic("f32: GatherRows: column counts differ")
	}
	if dst.R != len(rows) {
		panic("f32: GatherRows: destination rows do not match index count")
	}
	ParallelRange(len(rows), Workers(len(rows)), func(start, end int) {
		for i := start; i < end; i++ {
			copy(dst.Row(i), src.Row(rows[i]))
		}
	})
}

// ---------------------------------------------------------------------------
// Deterministic parallel iteration.

// Workers returns the effective worker count for n independent work items:
// min(GOMAXPROCS, n), at least 1.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ParallelRange splits [0,n) into one contiguous chunk per worker and runs
// fn(start, end) concurrently, blocking until all chunks finish. With
// workers <= 1 (or tiny n) it degenerates to a direct call, so callers need
// no serial fallback. fn must only write state owned by its own index range.
func ParallelRange(n, workers int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= n {
			break
		}
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			fn(start, end)
		}(start, end)
	}
	wg.Wait()
}

// ParallelIndex runs fn(i) for every i in [0,n) across workers with dynamic
// (work-stealing) scheduling — the right shape for triangular or otherwise
// unbalanced loops. fn must only write state owned by index i; under that
// contract the result is independent of scheduling.
func ParallelIndex(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// MapReduceOrdered is a parallel row-map with a deterministic ordered
// reduction: [0,n) is split into contiguous chunks, mapFn runs on the chunks
// concurrently, and reduce is called exactly once per chunk in ascending
// chunk order (chunk 0 first), regardless of which goroutine finishes when.
// Reductions whose operator is order-sensitive (float sums, argmin with
// first-wins tie-breaks) therefore produce one fixed result per input.
func MapReduceOrdered[T any](n, workers int, mapFn func(start, end int) T, reduce func(v T)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		reduce(mapFn(0, n))
		return
	}
	chunk := (n + workers - 1) / workers
	nChunks := (n + chunk - 1) / chunk
	results := make([]T, nChunks)
	ParallelRange(n, workers, func(start, end int) {
		// ParallelRange uses the same chunk arithmetic, so start/chunk
		// recovers this chunk's index.
		results[start/chunk] = mapFn(start, end)
	})
	for i := 0; i < nChunks; i++ {
		reduce(results[i])
	}
}

// SGSlotMaxBatch bounds the batched fast path of SGSlot: slots with more
// targets (Negatives > 7) take the sequential path.
const SGSlotMaxBatch = 8

// SGSlot runs one complete skip-gram slot against one center row: tvs[0] is
// the positive target (label 1), tvs[1:] are negatives (label 0), processed
// in ascending order, with the center update applied at the end. Exactly
// equivalent to Zero(grad); SGPair(label_i, lr, cv, tvs[i], grad) for
// i = 0, 1, ...; Add(cv, grad) — one call per slot instead of one per
// target, so the trainer's hottest path crosses the function boundary
// seven times less.
//
// When every target is a distinct row (detected by backing-array pointer:
// duplicate draws from the trainer alias the same overlay row) the dots and
// sigmoid lookups are computed for all targets up front. The per-target
// dot→table-load→update chain is latency-bound, so letting the independent
// chains overlap is worth ~15% of training time; because the rows are
// distinct and the center update is deferred to the end, the arithmetic —
// and so every output bit — is identical to the sequential order. Slots with
// aliased targets (where target k+1 must see target k's update) fall back to
// the sequential path.
func SGSlot(lr float32, cv, grad []float32, tvs [][]float32) {
	if len(tvs) == 0 || len(cv) == 0 {
		Zero(grad)
		return
	}
	batch := len(tvs) <= SGSlotMaxBatch
	for i := 1; i < len(tvs) && batch; i++ {
		p := &tvs[i][0]
		for j := 0; j < i; j++ {
			if p == &tvs[j][0] {
				batch = false
				break
			}
		}
	}
	if batch {
		SGSlotDistinct(lr, cv, grad, tvs)
		return
	}
	sgSlotSeq(lr, cv, grad, tvs)
}

// SGSlotDistinct is SGSlot's all-distinct-rows path: dots for every target
// first, then the sigmoid gradients, then the updates in target order. It is
// exported for callers that already know every target row is distinct — e.g.
// the trainer, which sees the sampled row ids as integers and can compare
// them for free — skipping SGSlot's per-call pointer scan. The caller's
// guarantees are the contract: 1 <= len(tvs) <= SGSlotMaxBatch, len(cv) > 0,
// and pairwise non-aliased target rows (aliased rows passed here would read
// stale values where SGSlot's sequential order shows earlier updates).
func SGSlotDistinct(lr float32, cv, grad []float32, tvs [][]float32) {
	cv = cv[:len(cv):len(cv)]
	grad = grad[:len(cv):len(cv)]
	var gs [SGSlotMaxBatch]float32
	for k, tv := range tvs {
		tv = tv[:len(cv):len(cv)]
		var s0, s1, s2, s3 float32
		i := 0
		for ; i <= len(cv)-8; i += 8 {
			c := cv[i : i+8 : i+8]
			v := tv[i : i+8 : i+8]
			s0 += c[0] * v[0]
			s1 += c[1] * v[1]
			s2 += c[2] * v[2]
			s3 += c[3] * v[3]
			s0 += c[4] * v[4]
			s1 += c[5] * v[5]
			s2 += c[6] * v[6]
			s3 += c[7] * v[7]
		}
		for ; i <= len(cv)-4; i += 4 {
			c := cv[i : i+4 : i+4]
			v := tv[i : i+4 : i+4]
			s0 += c[0] * v[0]
			s1 += c[1] * v[1]
			s2 += c[2] * v[2]
			s3 += c[3] * v[3]
		}
		var t float32
		for ; i < len(cv); i++ {
			t += cv[i] * tv[i]
		}
		gs[k&(SGSlotMaxBatch-1)] = ((s0 + s1) + (s2 + s3)) + t
	}
	label := float32(1)
	for k := range tvs {
		ki := k & (SGSlotMaxBatch - 1)
		gs[ki] = (label - Sigmoid32(gs[ki])) * lr
		label = 0
	}
	// grad is initialized by the first unsaturated target (g*tv equals
	// 0 + g*tv bit for bit) instead of a separate zeroing pass; if every
	// target saturates, grad is zeroed to honor the contract and the center
	// add is skipped (cv + 0 is the identity).
	ginit := false
	for k, tv := range tvs {
		g := gs[k&(SGSlotMaxBatch-1)]
		if g == 0 {
			continue // saturated: every update term is a zero product
		}
		tv = tv[:len(cv):len(cv)]
		i := 0
		if !ginit {
			ginit = true
			for ; i <= len(cv)-8; i += 8 {
				c := cv[i : i+8 : i+8]
				v := tv[i : i+8 : i+8]
				gr := grad[i : i+8 : i+8]
				t0, t1, t2, t3 := v[0], v[1], v[2], v[3]
				t4, t5, t6, t7 := v[4], v[5], v[6], v[7]
				gr[0] = g * t0
				gr[1] = g * t1
				gr[2] = g * t2
				gr[3] = g * t3
				gr[4] = g * t4
				gr[5] = g * t5
				gr[6] = g * t6
				gr[7] = g * t7
				v[0] = t0 + g*c[0]
				v[1] = t1 + g*c[1]
				v[2] = t2 + g*c[2]
				v[3] = t3 + g*c[3]
				v[4] = t4 + g*c[4]
				v[5] = t5 + g*c[5]
				v[6] = t6 + g*c[6]
				v[7] = t7 + g*c[7]
			}
			for ; i < len(cv); i++ {
				t := tv[i]
				grad[i] = g * t
				tv[i] = t + g*cv[i]
			}
			continue
		}
		for ; i <= len(cv)-8; i += 8 {
			c := cv[i : i+8 : i+8]
			v := tv[i : i+8 : i+8]
			gr := grad[i : i+8 : i+8]
			t0, t1, t2, t3 := v[0], v[1], v[2], v[3]
			t4, t5, t6, t7 := v[4], v[5], v[6], v[7]
			gr[0] += g * t0
			gr[1] += g * t1
			gr[2] += g * t2
			gr[3] += g * t3
			gr[4] += g * t4
			gr[5] += g * t5
			gr[6] += g * t6
			gr[7] += g * t7
			v[0] = t0 + g*c[0]
			v[1] = t1 + g*c[1]
			v[2] = t2 + g*c[2]
			v[3] = t3 + g*c[3]
			v[4] = t4 + g*c[4]
			v[5] = t5 + g*c[5]
			v[6] = t6 + g*c[6]
			v[7] = t7 + g*c[7]
		}
		for ; i < len(cv); i++ {
			t := tv[i]
			grad[i] += g * t
			tv[i] = t + g*cv[i]
		}
	}
	if !ginit {
		Zero(grad)
		return
	}
	i := 0
	for ; i <= len(cv)-8; i += 8 {
		c := cv[i : i+8 : i+8]
		gr := grad[i : i+8 : i+8]
		c[0] += gr[0]
		c[1] += gr[1]
		c[2] += gr[2]
		c[3] += gr[3]
		c[4] += gr[4]
		c[5] += gr[5]
		c[6] += gr[6]
		c[7] += gr[7]
	}
	for ; i < len(cv); i++ {
		cv[i] += grad[i]
	}
}

// sgSlotSeq is SGSlot's fully sequential path: each target's dot is computed
// after the previous target's update, so aliased target rows observe earlier
// updates exactly as the per-target composition does.
func sgSlotSeq(lr float32, cv, grad []float32, tvs [][]float32) {
	cv = cv[:len(cv):len(cv)]
	grad = grad[:len(cv):len(cv)]
	for i := range grad {
		grad[i] = 0
	}
	label := float32(1)
	for _, tv := range tvs {
		tv = tv[:len(cv):len(cv)]
		var s0, s1, s2, s3 float32
		i := 0
		for ; i <= len(cv)-8; i += 8 {
			c := cv[i : i+8 : i+8]
			v := tv[i : i+8 : i+8]
			s0 += c[0] * v[0]
			s1 += c[1] * v[1]
			s2 += c[2] * v[2]
			s3 += c[3] * v[3]
			s0 += c[4] * v[4]
			s1 += c[5] * v[5]
			s2 += c[6] * v[6]
			s3 += c[7] * v[7]
		}
		for ; i <= len(cv)-4; i += 4 {
			c := cv[i : i+4 : i+4]
			v := tv[i : i+4 : i+4]
			s0 += c[0] * v[0]
			s1 += c[1] * v[1]
			s2 += c[2] * v[2]
			s3 += c[3] * v[3]
		}
		var t float32
		for ; i < len(cv); i++ {
			t += cv[i] * tv[i]
		}
		g := (label - Sigmoid32(((s0+s1)+(s2+s3))+t)) * lr
		label = 0
		if g == 0 {
			continue // saturated: every update term is a zero product
		}
		i = 0
		for ; i <= len(cv)-8; i += 8 {
			c := cv[i : i+8 : i+8]
			v := tv[i : i+8 : i+8]
			gr := grad[i : i+8 : i+8]
			t0, t1, t2, t3 := v[0], v[1], v[2], v[3]
			t4, t5, t6, t7 := v[4], v[5], v[6], v[7]
			gr[0] += g * t0
			gr[1] += g * t1
			gr[2] += g * t2
			gr[3] += g * t3
			gr[4] += g * t4
			gr[5] += g * t5
			gr[6] += g * t6
			gr[7] += g * t7
			v[0] = t0 + g*c[0]
			v[1] = t1 + g*c[1]
			v[2] = t2 + g*c[2]
			v[3] = t3 + g*c[3]
			v[4] = t4 + g*c[4]
			v[5] = t5 + g*c[5]
			v[6] = t6 + g*c[6]
			v[7] = t7 + g*c[7]
		}
		for ; i <= len(cv)-4; i += 4 {
			c := cv[i : i+4 : i+4]
			v := tv[i : i+4 : i+4]
			gr := grad[i : i+4 : i+4]
			t0, t1, t2, t3 := v[0], v[1], v[2], v[3]
			gr[0] += g * t0
			gr[1] += g * t1
			gr[2] += g * t2
			gr[3] += g * t3
			v[0] = t0 + g*c[0]
			v[1] = t1 + g*c[1]
			v[2] = t2 + g*c[2]
			v[3] = t3 + g*c[3]
		}
		for ; i < len(cv); i++ {
			t := tv[i]
			grad[i] += g * t
			tv[i] = t + g*cv[i]
		}
	}
	i := 0
	for ; i <= len(cv)-8; i += 8 {
		c := cv[i : i+8 : i+8]
		gr := grad[i : i+8 : i+8]
		c[0] += gr[0]
		c[1] += gr[1]
		c[2] += gr[2]
		c[3] += gr[3]
		c[4] += gr[4]
		c[5] += gr[5]
		c[6] += gr[6]
		c[7] += gr[7]
	}
	for ; i < len(cv); i++ {
		cv[i] += grad[i]
	}
}
