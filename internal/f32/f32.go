// Package f32 is the flat-vector core of the SubTab compute spine. It
// provides a contiguous row-major float32 matrix plus the small kernel set
// the pipeline needs (dot, axpy, scale, squared distance, batched mean-pool)
// and deterministic parallel iteration helpers.
//
// Two properties matter to callers:
//
//   - Kernels perform exactly the arithmetic their scalar predecessors did
//     (same accumulation types, same operand order), so refactoring a caller
//     onto them cannot change results by even one bit.
//   - The parallel helpers only hand out disjoint index ranges; combined with
//     MapReduceOrdered's chunk-order reduction, every parallel computation in
//     this codebase is order-deterministic — same inputs, same bytes out,
//     regardless of GOMAXPROCS or scheduling.
package f32

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Matrix is a dense row-major float32 matrix: row i occupies
// Data[i*C : (i+1)*C]. A zero Matrix is an empty matrix.
type Matrix struct {
	R, C int
	Data []float32
}

// New allocates an r×c zero matrix in one contiguous slab.
func New(r, c int) Matrix {
	return Matrix{R: r, C: c, Data: make([]float32, r*c)}
}

// Wrap views an existing flat slice as an r×c matrix without copying.
// len(data) must be r*c.
func Wrap(r, c int, data []float32) Matrix {
	if len(data) != r*c {
		panic("f32: Wrap: data length does not match dimensions")
	}
	return Matrix{R: r, C: c, Data: data}
}

// FromRows packs a slice-of-slices into one contiguous matrix (copying).
// All rows must share one length; an empty input yields an empty matrix.
func FromRows(rows [][]float32) Matrix {
	if len(rows) == 0 {
		return Matrix{}
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	return m
}

// Row returns the i-th row as a view into the matrix (no copy).
func (m Matrix) Row(i int) []float32 {
	return m.Data[i*m.C : (i+1)*m.C : (i+1)*m.C]
}

// Rows materializes per-row views (headers only; the data is not copied).
func (m Matrix) Rows() [][]float32 {
	out := make([][]float32, m.R)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// ---------------------------------------------------------------------------
// Kernels. Accumulation types are part of the contract: Dot, SqDist and
// Cosine accumulate in float64 (as the scalar code they replaced did), while
// Dot32, Axpy, Add and Scale stay in float32 (the word2vec training regime).

// Dot returns the dot product of two equal-length vectors, accumulated in
// float64.
func Dot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// Dot32 returns the dot product accumulated in float32 — the exact
// arithmetic of the skip-gram inner loop.
func Dot32(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy adds a*x to y element-wise: y[i] += a * x[i].
func Axpy(a float32, x, y []float32) {
	for i := range y {
		y[i] += a * x[i]
	}
}

// Add adds x to dst element-wise: dst[i] += x[i].
func Add(dst, x []float32) {
	for i := range dst {
		dst[i] += x[i]
	}
}

// Scale multiplies x by a in place.
func Scale(a float32, x []float32) {
	for i := range x {
		x[i] *= a
	}
}

// Zero clears x.
func Zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// SqDist returns the squared Euclidean distance between two equal-length
// vectors, with per-component widening to float64.
func SqDist(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// SqDistBounded is SqDist with early exit: it returns as soon as the running
// sum strictly exceeds bound. Because the running sum is the exact prefix of
// SqDist's accumulation (same order, same widening) and can only grow, the
// abort is deterministic and nearest-neighbor scans get exactly the result a
// full computation would give: a return value > bound guarantees the true
// distance is > bound, and any return value <= bound IS the exact distance —
// so even exact ties with the incumbent (d == bound) surface precisely and
// index-order tie-breaks behave as if every distance had been computed in
// full.
func SqDistBounded(a, b []float32, bound float64) float64 {
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := float64(a[i]) - float64(b[i])
		s += d0 * d0
		d1 := float64(a[i+1]) - float64(b[i+1])
		s += d1 * d1
		d2 := float64(a[i+2]) - float64(b[i+2])
		s += d2 * d2
		d3 := float64(a[i+3]) - float64(b[i+3])
		s += d3 * d3
		if s > bound {
			return s
		}
	}
	for ; i < len(a); i++ {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// Cosine returns the cosine similarity of two vectors (0 for zero vectors).
func Cosine(a, b []float32) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// MeanPoolInto sets dst to the component-wise mean of the selected rows of
// src, skipping negative indices (the "unseen item" sentinel), and returns
// how many rows were pooled. dst is zeroed first; when nothing is pooled it
// stays zero. The accumulation is float32 sums in index order followed by a
// single multiply by 1/n — bit-identical to the scalar mean loops it
// replaced.
func MeanPoolInto(dst []float32, src Matrix, rows []int32) int {
	Zero(dst)
	n := 0
	for _, r := range rows {
		if r < 0 {
			continue
		}
		Add(dst, src.Row(int(r)))
		n++
	}
	if n > 0 {
		Scale(1/float32(n), dst)
	}
	return n
}

// GatherRows copies the selected rows of src into dst (dst row i receives
// src row rows[i]). Both matrices must share the column count and dst must
// have len(rows) rows. The copies are plain memmoves fanned out across
// workers with disjoint destination rows, so the gather is deterministic at
// any worker count. This is the sampled-row path of the selection pipeline:
// a candidate sample of a warm full-table vector cache is a row gather, not
// a recompute.
func GatherRows(dst, src Matrix, rows []int) {
	if dst.C != src.C {
		panic("f32: GatherRows: column counts differ")
	}
	if dst.R != len(rows) {
		panic("f32: GatherRows: destination rows do not match index count")
	}
	ParallelRange(len(rows), Workers(len(rows)), func(start, end int) {
		for i := start; i < end; i++ {
			copy(dst.Row(i), src.Row(rows[i]))
		}
	})
}

// ---------------------------------------------------------------------------
// Deterministic parallel iteration.

// Workers returns the effective worker count for n independent work items:
// min(GOMAXPROCS, n), at least 1.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ParallelRange splits [0,n) into one contiguous chunk per worker and runs
// fn(start, end) concurrently, blocking until all chunks finish. With
// workers <= 1 (or tiny n) it degenerates to a direct call, so callers need
// no serial fallback. fn must only write state owned by its own index range.
func ParallelRange(n, workers int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= n {
			break
		}
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			fn(start, end)
		}(start, end)
	}
	wg.Wait()
}

// ParallelIndex runs fn(i) for every i in [0,n) across workers with dynamic
// (work-stealing) scheduling — the right shape for triangular or otherwise
// unbalanced loops. fn must only write state owned by index i; under that
// contract the result is independent of scheduling.
func ParallelIndex(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// MapReduceOrdered is a parallel row-map with a deterministic ordered
// reduction: [0,n) is split into contiguous chunks, mapFn runs on the chunks
// concurrently, and reduce is called exactly once per chunk in ascending
// chunk order (chunk 0 first), regardless of which goroutine finishes when.
// Reductions whose operator is order-sensitive (float sums, argmin with
// first-wins tie-breaks) therefore produce one fixed result per input.
func MapReduceOrdered[T any](n, workers int, mapFn func(start, end int) T, reduce func(v T)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		reduce(mapFn(0, n))
		return
	}
	chunk := (n + workers - 1) / workers
	nChunks := (n + chunk - 1) / chunk
	results := make([]T, nChunks)
	ParallelRange(n, workers, func(start, end int) {
		// ParallelRange uses the same chunk arithmetic, so start/chunk
		// recovers this chunk's index.
		results[start/chunk] = mapFn(start, end)
	})
	for i := 0; i < nChunks; i++ {
		reduce(results[i])
	}
}
