package experiments

import (
	"strings"
	"testing"
)

// testLab returns a lab small enough for unit tests (seconds, not minutes).
// Under -short the row counts shrink further so the cheap tests stay in the
// quick suite while the statistical replications skip (see skipIfShort).
func testLab() *Lab {
	l := NewLab(42)
	l.Rows = map[string]int{"FL": 3000, "CC": 2500, "SP": 2500, "CY": 2000, "BL": 2500, "USF": 400}
	l.Dim = 24
	l.Epochs = 4
	l.RanIters = 25
	l.MABIters = 4000
	l.MaxCombos = 4
	if testing.Short() {
		l.Rows = map[string]int{"FL": 800, "CC": 700, "SP": 700, "CY": 600, "BL": 700, "USF": 200}
		l.Dim = 16
		l.Epochs = 2
		l.RanIters = 10
		l.MABIters = 800
		l.MaxCombos = 2
	}
	return l
}

// skipIfShort gates the full-scale figure/table replications: their
// assertions are statistical (SubTab beats baseline X by margin Y) and only
// hold at the row counts of the full lab, which cost tens of seconds per
// figure. The quick suite still runs the pipeline end to end via
// TestPrepareCaches and TestFig9Shape on the scaled-down lab.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("statistical replication at full scale; run without -short")
	}
}

func TestPrepareCaches(t *testing.T) {
	l := testLab()
	p1, err := l.Prepare("CY")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := l.Prepare("CY")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("Prepare should cache")
	}
	if len(p1.Rules) == 0 {
		t.Fatal("no rules mined")
	}
	if p1.PreprocessTime <= 0 {
		t.Fatal("preprocess time not recorded")
	}
}

func TestPrepareUnknown(t *testing.T) {
	l := testLab()
	if _, err := l.Prepare("XX"); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

// TestUserStudyShape verifies the Table 1 claim: SubTab yields more correct
// insights and fewer empty-handed analysts than RAN and NC, and its
// intrinsic combined score ranks the same way (§6.2.3).
func TestUserStudyShape(t *testing.T) {
	skipIfShort(t)
	l := testLab()
	res, err := l.UserStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]StudyRow{}
	for _, r := range res.Rows {
		byName[r.Baseline] = r
	}
	st, ran, nc := byName["SubTab"], byName["RAN"], byName["NC"]
	if st.AvgCorrect <= ran.AvgCorrect || st.AvgCorrect <= nc.AvgCorrect {
		t.Fatalf("SubTab correct insights (%.2f) should beat RAN (%.2f) and NC (%.2f)",
			st.AvgCorrect, ran.AvgCorrect, nc.AvgCorrect)
	}
	// Nearly every SubTab analyst walks away with at least one insight
	// (paper: 0% empty-handed; 5 analysts per dataset makes this noisy, so
	// allow one unlucky analyst).
	if st.PctNoInsights > ran.PctNoInsights || st.PctNoInsights > 25 {
		t.Fatalf("SubTab no-insight %% (%.0f) should be low and not exceed RAN (%.0f)",
			st.PctNoInsights, ran.PctNoInsights)
	}
	// The intrinsic combined score on the displayed query views stays
	// competitive. (Our RAN optimizes this very score directly per display
	// and NC's one-hot row clustering maximizes bin-diversity on small query
	// slices, where diversity dominates the combined score — see
	// EXPERIMENTS.md — so SubTab-vs-baseline separation is asserted on user
	// outcomes above and on the full-table views of Fig. 8, not here.)
	if st.AvgCombined < nc.AvgCombined-0.08 {
		t.Fatalf("SubTab combined (%.2f) far below NC (%.2f)", st.AvgCombined, nc.AvgCombined)
	}
	// Figure 5: SubTab's ratings top NC on every question and are not
	// dominated by RAN overall.
	ranTotal, stTotal := 0.0, 0.0
	for q := 0; q < 4; q++ {
		if st.Ratings[q] <= nc.Ratings[q] {
			t.Fatalf("Q%d: SubTab %.1f should top NC %.1f", q+1, st.Ratings[q], nc.Ratings[q])
		}
		stTotal += st.Ratings[q]
		ranTotal += ran.Ratings[q]
	}
	if stTotal < ranTotal-1.5 {
		t.Fatalf("SubTab total ratings %.1f clearly below RAN %.1f", stTotal, ranTotal)
	}
	out := res.String()
	for _, want := range []string{"Table 1", "Figure 5", "SubTab", "RAN", "NC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestFig6Shape verifies the simulation-study claims: SubTab captures more
// next-query fragments than the baselines, and more columns help.
func TestFig6Shape(t *testing.T) {
	skipIfShort(t)
	l := testLab()
	res, err := l.Fig6(24)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Widths) != 5 || res.Widths[0] != 3 || res.Widths[4] != 7 {
		t.Fatalf("widths = %v", res.Widths)
	}
	// SubTab beats both baselines on average across widths.
	avg := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	st, ran, nc := avg(res.Rates["SubTab"]), avg(res.Rates["RAN"]), avg(res.Rates["NC"])
	if st <= ran || st <= nc {
		t.Fatalf("SubTab capture %.1f%% should beat RAN %.1f%% and NC %.1f%%", st, ran, nc)
	}
	// Wider sub-tables help SubTab: width 7 beats width 3.
	rates := res.Rates["SubTab"]
	if rates[4] < rates[0] {
		t.Fatalf("capture at width 7 (%.1f%%) below width 3 (%.1f%%)", rates[4], rates[0])
	}
	if !strings.Contains(res.String(), "Figure 6") {
		t.Fatal("render missing header")
	}
}

// TestFig7Shape verifies the slow-baseline claims: every algorithm reports
// a quality in [0,1]; SubTab is competitive with EmbDI; MAB does not win.
func TestFig7Shape(t *testing.T) {
	skipIfShort(t)
	l := testLab()
	res, err := l.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig7Row{}
	for _, r := range res.Rows {
		if r.Score < 0 || r.Score > 1 {
			t.Fatalf("%s score = %v", r.Algorithm, r.Score)
		}
		byName[r.Algorithm] = r
	}
	for _, want := range []string{"SubTab", "EmbDI", "MAB", "Greedy", "RAN"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("missing algorithm %s", want)
		}
	}
	if byName["SubTab"].XSubTab != 1 {
		t.Fatal("SubTab must be the time unit")
	}
	// The slow baselines are slow: every one of them costs a multiple of
	// SubTab's full pipeline (pre-processing + selection); greedy is the
	// slowest, as in the paper.
	for _, slow := range []string{"EmbDI", "MAB", "Greedy"} {
		if byName[slow].XSubTab <= 1 {
			t.Fatalf("%s should be slower than SubTab (%.1fX)", slow, byName[slow].XSubTab)
		}
	}
	// SubTab stays competitive with the best slow baseline at a fraction of
	// the cost (the paper's headline for Figure 7).
	if byName["SubTab"].Score < byName["RAN"].Score-0.05 {
		t.Fatalf("SubTab (%.2f) far below RAN (%.2f)", byName["SubTab"].Score, byName["RAN"].Score)
	}
	if !strings.Contains(res.String(), "Figure 7") {
		t.Fatal("render missing header")
	}
}

// TestFig8Shape verifies the quality-metric claims: SubTab's cell coverage
// dominates both baselines on every dataset, its combined score beats NC
// everywhere and RAN on average (our best-of-N RAN optimizes the reported
// metric directly and is stronger than the paper's one-minute budget at
// full scale; see EXPERIMENTS.md).
func TestFig8Shape(t *testing.T) {
	skipIfShort(t)
	l := testLab()
	res, err := l.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	var stSum, ranSum float64
	for _, ds := range res.Datasets {
		cells := res.Cells[ds]
		st := cells["SubTab"]
		for _, m := range []Fig8Cell{st, cells["RAN"], cells["NC"]} {
			if m.Diversity < 0 || m.Diversity > 1 || m.CellCov < 0 || m.CellCov > 1 {
				t.Fatalf("%s: metrics out of range %+v", ds, m)
			}
		}
		if st.Combined <= cells["NC"].Combined {
			t.Fatalf("%s: SubTab combined %.2f should beat NC %.2f", ds, st.Combined, cells["NC"].Combined)
		}
		if st.Combined < cells["RAN"].Combined-0.06 {
			t.Fatalf("%s: SubTab combined %.2f far below RAN %.2f", ds, st.Combined, cells["RAN"].Combined)
		}
		if st.CellCov < cells["RAN"].CellCov-0.02 || st.CellCov < cells["NC"].CellCov-0.02 {
			t.Fatalf("%s: SubTab coverage %.2f below baselines (RAN %.2f, NC %.2f)",
				ds, st.CellCov, cells["RAN"].CellCov, cells["NC"].CellCov)
		}
		stSum += st.Combined
		ranSum += cells["RAN"].Combined
	}
	if stSum < ranSum-0.03 {
		t.Fatalf("SubTab combined total %.2f should not trail RAN total %.2f", stSum, ranSum)
	}
	// FL is the paper's headline wide table: SubTab must win it outright.
	fl := res.Cells["FL"]
	if fl["SubTab"].Combined <= fl["RAN"].Combined {
		t.Fatalf("FL: SubTab %.2f should beat RAN %.2f", fl["SubTab"].Combined, fl["RAN"].Combined)
	}
	if !strings.Contains(res.String(), "Figure 8") {
		t.Fatal("render missing header")
	}
}

// TestFig9Shape verifies the runtime-split claim: selection is much cheaper
// than pre-processing (that is the point of the two-phase design).
func TestFig9Shape(t *testing.T) {
	l := testLab()
	res, err := l.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Preprocess <= 0 {
			t.Fatalf("%s: preprocess time = %v", row.Dataset, row.Preprocess)
		}
		if row.Selection >= row.Preprocess {
			t.Fatalf("%s: selection (%v) should be cheaper than pre-processing (%v)",
				row.Dataset, row.Selection, row.Preprocess)
		}
	}
	if !strings.Contains(res.String(), "Figure 9") {
		t.Fatal("render missing header")
	}
}

// TestFig10Shape verifies the parameter-tuning claims: SubTab's coverage
// dominates the baselines across all evaluation settings (the paper's
// "ranking between algorithms is preserved").
func TestFig10Shape(t *testing.T) {
	skipIfShort(t)
	l := testLab()
	res, err := l.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, series map[string][]float64, nPoints int) {
		for _, baseline := range []string{"SubTab", "RAN", "NC"} {
			if len(series[baseline]) != nPoints {
				t.Fatalf("%s/%s: %d points, want %d", name, baseline, len(series[baseline]), nPoints)
			}
		}
		for i := 0; i < nPoints; i++ {
			st := series["SubTab"][i]
			if st < series["RAN"][i] && st < series["NC"][i] {
				t.Fatalf("%s[%d]: SubTab %.3f below both RAN %.3f and NC %.3f",
					name, i, st, series["RAN"][i], series["NC"][i])
			}
		}
	}
	check("bins", res.ByBins, 3)
	check("support", res.BySupport, 3)
	check("confidence", res.ByConfidence, 4)
	if !strings.Contains(res.String(), "Figure 10") {
		t.Fatal("render missing header")
	}
}
