// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): Table 1 and Figure 5 (simulated user study), Figure 6
// (EDA-session replay), Figure 7 (slow baselines), Figure 8 (quality
// metrics), Figure 9 (runtime split), and Figure 10 (parameter tuning).
// Each runner returns a result struct whose String() prints the same rows
// or series the paper reports; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"subtab/internal/baselines"
	"subtab/internal/binning"
	"subtab/internal/core"
	"subtab/internal/corpus"
	"subtab/internal/datagen"
	"subtab/internal/eda"
	"subtab/internal/metrics"
	"subtab/internal/query"
	"subtab/internal/rules"
	"subtab/internal/study"
	"subtab/internal/table"
	"subtab/internal/word2vec"
)

// Lab prepares and caches datasets, models, rules and evaluators for the
// experiment runners.
type Lab struct {
	// Rows maps dataset abbreviation to row count (0 or absent = preset).
	Rows map[string]int
	Seed int64

	// Alpha is the combined-score balance (paper default 0.5).
	Alpha float64
	// Mining parameters (paper defaults: support 0.1, confidence 0.6,
	// min rule size 3).
	MinSupport    float64
	MinConfidence float64
	MinRuleSize   int

	// SubTab pipeline knobs.
	Bins      int
	Dim       int
	Epochs    int
	Workers   int
	CorpusCap int
	// ColumnSentences adds column-sentences to the embedding corpus (the
	// paper's corpus includes them; our ablation shows they dilute the
	// cross-column association signal, so the default is tuple-only —
	// see DESIGN.md).
	ColumnSentences bool

	// Baseline budgets.
	RanIters  int
	MABIters  int
	MaxCombos int

	cache map[string]*Prepared
}

// NewLab returns a lab at "bench" scale: small enough for test/bench runs,
// large enough that every planted pattern is minable.
func NewLab(seed int64) *Lab {
	return &Lab{
		Rows:          map[string]int{"FL": 6000, "CC": 5000, "SP": 4000, "CY": 3000, "BL": 4000, "USF": 800},
		Seed:          seed,
		Alpha:         0.5,
		MinSupport:    0.1,
		MinConfidence: 0.6,
		MinRuleSize:   3,
		Bins:          5,
		Dim:           24,
		Epochs:        4,
		Workers:       0, // all cores
		CorpusCap:     100_000,
		RanIters:      25,
		MABIters:      2000,
		MaxCombos:     25,
	}
}

// NewPaperLab returns a lab at the paper-faithful (scaled) dataset sizes of
// DESIGN.md §4. Runs take minutes.
func NewPaperLab(seed int64) *Lab {
	l := NewLab(seed)
	l.Rows = map[string]int{}
	for _, n := range datagen.Names() {
		l.Rows[n] = datagen.DefaultRows(n)
	}
	l.Dim = 32
	l.Epochs = 4
	// RAN's one-minute budget at the paper's scale admits only tens of
	// metric evaluations (each scans |R| rule bitsets over n rows); the
	// equivalent draw count, not the equivalent wall-clock, is what keeps
	// the baseline comparable on our smaller substrate.
	l.RanIters = 60
	l.MABIters = 2000
	l.MaxCombos = 40
	return l
}

// Prepared is a dataset with its binned form, mined rules, evaluator and
// trained SubTab model.
type Prepared struct {
	DS    *datagen.Dataset
	Model *core.Model
	Rules []rules.Rule
	Eval  *metrics.Evaluator

	PreprocessTime time.Duration
	MiningTime     time.Duration
}

func (l *Lab) coreOptions() core.Options {
	return core.Options{
		Bins: binning.Options{MaxBins: l.Bins, Strategy: binning.KDEValleys, Seed: l.Seed},
		Corpus: corpus.Options{
			MaxSentences: l.CorpusCap, TupleSentences: true, ColumnSentences: l.ColumnSentences, Seed: l.Seed,
		},
		Embedding: word2vec.Options{
			Dim: l.Dim, Epochs: l.Epochs, Seed: l.Seed, Workers: l.Workers,
		},
		ClusterSeed: l.Seed,
	}
}

// Prepare returns the cached pipeline state for a dataset, building it on
// first use.
func (l *Lab) Prepare(name string) (*Prepared, error) {
	if l.cache == nil {
		l.cache = make(map[string]*Prepared)
	}
	if p, ok := l.cache[name]; ok {
		return p, nil
	}
	ds, err := datagen.ByName(name, l.Rows[name], l.Seed)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	model, err := core.Preprocess(ds.T, l.coreOptions())
	if err != nil {
		return nil, err
	}
	prepTime := time.Since(start)

	start = time.Now()
	rs, err := rules.Mine(model.B, rules.Options{
		MinSupport:     l.MinSupport,
		MinConfidence:  l.MinConfidence,
		MinRuleSize:    l.MinRuleSize,
		MaxItemsetSize: 3,
		MaxRules:       20_000,
	})
	if err != nil {
		return nil, err
	}
	mineTime := time.Since(start)

	p := &Prepared{
		DS: ds, Model: model, Rules: rs,
		Eval:           metrics.NewEvaluator(model.B, rs, l.Alpha),
		PreprocessTime: prepTime,
		MiningTime:     mineTime,
	}
	l.cache[name] = p
	return p, nil
}

// ---------------------------------------------------------------------------
// Table 1 + Figure 5: simulated user study.
// ---------------------------------------------------------------------------

// StudyRow is one baseline's aggregate over the study datasets.
type StudyRow struct {
	Baseline      string
	AvgCorrect    float64
	PctCorrect    float64
	PctNoInsights float64
	AvgTotal      float64
	AvgCombined   float64 // the intrinsic-metric correlate (§6.2.3)
	Ratings       [4]float64
}

// StudyResult holds the user-study simulation (Table 1 + Figure 5).
type StudyResult struct {
	Datasets []string
	Rows     []StudyRow
}

// String renders Table 1 plus the Figure 5 ratings.
func (r *StudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: user study (simulated; datasets %s)\n", strings.Join(r.Datasets, ", "))
	fmt.Fprintf(&b, "%-8s  %-22s  %-22s  %-16s  %-10s\n", "Metric", "# correct insights", "%% users w/o insights", "# total insights", "combined")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s  %.1f (%.0f%%)%-12s  %.0f%%%-18s  %.2f%-12s  %.2f\n",
			row.Baseline, row.AvgCorrect, row.PctCorrect, "", row.PctNoInsights, "", row.AvgTotal, "", row.AvgCombined)
	}
	b.WriteString("\nFigure 5: questionnaire ratings (1-5)\n")
	fmt.Fprintf(&b, "%-8s  %-12s  %-12s  %-14s  %-12s\n", "Baseline", "Q1 satisf.", "Q2 reuse", "Q3 columns", "Q4 rows")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s  %-12.1f  %-12.1f  %-14.1f  %-12.1f\n",
			row.Baseline, row.Ratings[0], row.Ratings[1], row.Ratings[2], row.Ratings[3])
	}
	return b.String()
}

// UserStudy simulates the §6.2.1 protocol: for each study dataset (SP, FL,
// BL in the paper), an exploration task of several queries; each query's
// result is displayed as a 10×10 sub-table per baseline; simulated analysts
// derive insights; highlighting is on for SP and FL, off for BL.
func (l *Lab) UserStudy() (*StudyResult, error) {
	datasets := []string{"SP", "FL", "BL"}
	k, lCols := 10, 10
	type agg struct {
		correct, total, noInsight, users int
		combined                         float64
		nCombined                        int
		ratings                          [4]float64
		nRatings                         int
	}
	aggs := map[string]*agg{"SubTab": {}, "RAN": {}, "NC": {}}
	rng := rand.New(rand.NewSource(l.Seed + 99))

	for di, name := range datasets {
		p, err := l.Prepare(name)
		if err != nil {
			return nil, err
		}
		// The paper scored only insights relevant to the analysis task
		// ("removed ones that were statistically incorrect or highly
		// irrelevant"); the task is about the dataset's target columns, so
		// only target-involving planted patterns count as scoreable insights.
		taskDS := *p.DS
		taskDS.Planted = nil
		for _, pr := range p.DS.Planted {
			relevant := false
			for _, c := range pr.Cols {
				for _, tc := range p.DS.Targets {
					if c == tc {
						relevant = true
					}
				}
			}
			if relevant {
				taskDS.Planted = append(taskDS.Planted, pr)
			}
		}
		if len(taskDS.Planted) == 0 {
			taskDS.Planted = p.DS.Planted
		}
		highlight := name != "BL" // the paper colored SP and FL only
		sessions := eda.Generate(p.DS, eda.GenOptions{Sessions: 1, MinSteps: 4, MaxSteps: 6, Seed: l.Seed + int64(di)})
		// The exploration opens with a display of the full table (Figure 1's
		// opening step), followed by the task's query displays.
		task := append(eda.Session{{Q: &query.Query{}}}, sessions[0]...)

		for _, baseline := range []string{"SubTab", "RAN", "NC"} {
			var views []study.SubTableView
			var combined float64
			var nViews int
			for si, step := range task {
				st, err := l.selectWithTargets(p, baseline, step.Q, k, lCols, p.DS.Targets, int64(si))
				if err != nil || len(st.Rows) == 0 {
					continue
				}
				views = append(views, study.SubTableView{Rows: st.Rows, Cols: st.Cols})
				combined += p.Eval.Combined(st)
				nViews++
			}
			res := study.Simulate(&taskDS, p.Model.B, views, study.Options{
				Analysts: 5, Highlight: highlight, Seed: l.Seed + int64(di*31),
			})
			a := aggs[baseline]
			for _, ar := range res.PerAnalyst {
				a.correct += ar.Correct
				a.total += ar.Total()
				if ar.Correct == 0 {
					a.noInsight++
				}
				a.users++
			}
			if nViews > 0 {
				a.combined += combined / float64(nViews)
				a.nCombined++
			}
			rt := study.Ratings(res, combined/float64(max(1, nViews)), rng)
			for q := 0; q < 4; q++ {
				a.ratings[q] += rt[q]
			}
			a.nRatings++
		}
	}

	out := &StudyResult{Datasets: datasets}
	for _, baseline := range []string{"SubTab", "RAN", "NC"} {
		a := aggs[baseline]
		row := StudyRow{Baseline: baseline}
		if a.users > 0 {
			row.AvgCorrect = float64(a.correct) / float64(a.users)
			row.AvgTotal = float64(a.total) / float64(a.users)
			row.PctNoInsights = 100 * float64(a.noInsight) / float64(a.users)
		}
		if a.total > 0 {
			row.PctCorrect = 100 * float64(a.correct) / float64(a.total)
		}
		if a.nCombined > 0 {
			row.AvgCombined = a.combined / float64(a.nCombined)
		}
		for q := 0; q < 4; q++ {
			row.Ratings[q] = a.ratings[q] / float64(max(1, a.nRatings))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// selectWith produces a sub-table of a query result with the named
// interactive algorithm.
func (l *Lab) selectWith(p *Prepared, baseline string, q *query.Query, k, lCols int, salt int64) (metrics.SubTable, error) {
	return l.selectWithTargets(p, baseline, q, k, lCols, nil, salt)
}

// selectWithTargets is selectWith with target columns forced into the
// sub-table (the user-study setting; targets apply to every baseline).
func (l *Lab) selectWithTargets(p *Prepared, baseline string, q *query.Query, k, lCols int, targets []string, salt int64) (metrics.SubTable, error) {
	switch baseline {
	case "SubTab":
		st, err := p.Model.SelectQuery(q, k, lCols, targets)
		if err != nil {
			return metrics.SubTable{}, err
		}
		return st.AsMetricSubTable(), nil
	case "RAN":
		pool, err := q.MatchingRows(p.DS.T)
		if err != nil {
			return metrics.SubTable{}, err
		}
		if len(pool) == 0 {
			return metrics.SubTable{}, fmt.Errorf("empty query result")
		}
		kk := min(k, len(pool))
		res, err := baselines.Random(p.Eval, baselines.RandomOptions{
			K: kk, L: lCols, Targets: targets, RowPool: pool, MaxIters: l.RanIters, Seed: l.Seed + salt,
		})
		if err != nil {
			return metrics.SubTable{}, err
		}
		return res.ST, nil
	case "NC":
		pool, err := q.MatchingRows(p.DS.T)
		if err != nil {
			return metrics.SubTable{}, err
		}
		if len(pool) == 0 {
			return metrics.SubTable{}, fmt.Errorf("empty query result")
		}
		kk := min(k, len(pool))
		res, err := baselines.NaiveClustering(p.Eval, baselines.NCOptions{
			K: kk, L: lCols, Targets: targets, RowPool: pool, Seed: l.Seed + salt,
		})
		if err != nil {
			return metrics.SubTable{}, err
		}
		return res.ST, nil
	default:
		return metrics.SubTable{}, fmt.Errorf("unknown baseline %q", baseline)
	}
}

// ---------------------------------------------------------------------------
// Figure 6: simulation-based study on CY.
// ---------------------------------------------------------------------------

// Fig6Result holds % captured next-query fragments per width per baseline.
type Fig6Result struct {
	Widths []int
	// Rates[baseline][i] is the capture percentage at Widths[i].
	Rates map[string][]float64
}

// String renders the Figure 6 series.
func (r *Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: % of captured next-query fragments on CY vs sub-table width\n")
	fmt.Fprintf(&b, "%-8s", "width")
	for _, w := range r.Widths {
		fmt.Fprintf(&b, "%8d", w)
	}
	b.WriteByte('\n')
	for _, baseline := range []string{"SubTab", "RAN", "NC"} {
		fmt.Fprintf(&b, "%-8s", baseline)
		for _, v := range r.Rates[baseline] {
			fmt.Fprintf(&b, "%7.1f%%", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig6 replays generated EDA sessions over CY and measures next-query
// fragment capture for sub-table widths 3-7 (paper protocol, 122 sessions).
func (l *Lab) Fig6(nSessions int) (*Fig6Result, error) {
	p, err := l.Prepare("CY")
	if err != nil {
		return nil, err
	}
	if nSessions <= 0 {
		nSessions = 122
	}
	sessions := eda.Generate(p.DS, eda.GenOptions{Sessions: nSessions, Seed: l.Seed + 6})
	widths := []int{3, 4, 5, 6, 7}
	k := 10
	out := &Fig6Result{Widths: widths, Rates: map[string][]float64{}}
	for _, baseline := range []string{"SubTab", "RAN", "NC"} {
		for wi, w := range widths {
			sel := func(q *query.Query) ([]int, []int, error) {
				st, err := l.selectWith(p, baseline, q, k, w, int64(wi))
				if err != nil {
					return nil, nil, err
				}
				return st.Rows, st.Cols, nil
			}
			res := eda.Replay(p.Model.B, sessions, sel)
			out.Rates[baseline] = append(out.Rates[baseline], res.Rate())
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 7: slow baselines on FL.
// ---------------------------------------------------------------------------

// Fig7Row is one algorithm's quality and time.
type Fig7Row struct {
	Algorithm string
	Score     float64
	Time      time.Duration
	XSubTab   float64 // time as a multiple of SubTab's
}

// Fig7Result holds the slow-baseline comparison.
type Fig7Result struct {
	Rows []Fig7Row
}

// String renders the Figure 7 bars.
func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 7: quality score and total running time on FL (time as X SubTab)\n")
	fmt.Fprintf(&b, "%-8s  %-8s  %-12s  %-8s\n", "Algo", "Quality", "Time", "X SubTab")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s  %-8.2f  %-12s  %.1fX\n", row.Algorithm, row.Score, row.Time.Round(time.Millisecond), row.XSubTab)
	}
	return b.String()
}

// Fig7 compares SubTab against the non-interactive baselines (EmbDI, MAB,
// semi-greedy) plus RAN on the FL dataset, reporting combined score and
// time relative to SubTab (the paper's Figure 7 axes). Budgets are scaled
// from the paper's hours to seconds; the *ratios* are the claim.
func (l *Lab) Fig7() (*Fig7Result, error) {
	p, err := l.Prepare("FL")
	if err != nil {
		return nil, err
	}
	k, lCols := 10, 10
	out := &Fig7Result{}

	// SubTab: pre-processing + one selection.
	start := time.Now()
	st, err := p.Model.Select(k, lCols, nil)
	if err != nil {
		return nil, err
	}
	subTabTime := p.PreprocessTime + time.Since(start)
	subTabScore := p.Eval.Combined(st.AsMetricSubTable())
	out.Rows = append(out.Rows, Fig7Row{Algorithm: "SubTab", Score: subTabScore, Time: subTabTime, XSubTab: 1})

	// EmbDI: graph walks + embedding + selection. The larger random-walk
	// corpus (vs SubTab's one sentence per row) is what made EmbDI's
	// pre-processing ~26x slower in the paper.
	embdi, err := baselines.EmbDI(p.Eval, baselines.EmbDIOptions{
		K: k, L: lCols,
		WalksPerNode: 10, WalkLength: 20,
		Embedding: word2vec.Options{Dim: l.Dim, Epochs: l.Epochs * 2, Seed: l.Seed, Workers: l.Workers},
		Seed:      l.Seed,
	})
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, Fig7Row{Algorithm: "EmbDI", Score: embdi.Score, Time: embdi.Elapsed,
		XSubTab: float64(embdi.Elapsed) / float64(subTabTime)})

	// MAB.
	mab, err := baselines.MAB(p.Eval, baselines.MABOptions{K: k, L: lCols, Iterations: l.MABIters, Seed: l.Seed})
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, Fig7Row{Algorithm: "MAB", Score: mab.Score, Time: mab.Elapsed,
		XSubTab: float64(mab.Elapsed) / float64(subTabTime)})

	// Semi-greedy (Algorithm 1 with random column order, bounded combos).
	gr, err := baselines.Greedy(p.Eval, baselines.GreedyOptions{
		K: k, L: lCols, RandomOrder: true, MaxCombos: l.MaxCombos, Seed: l.Seed,
	})
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, Fig7Row{Algorithm: "Greedy", Score: gr.Score, Time: gr.Elapsed,
		XSubTab: float64(gr.Elapsed) / float64(subTabTime)})

	// RAN reference.
	ran, err := baselines.Random(p.Eval, baselines.RandomOptions{K: k, L: lCols, MaxIters: l.RanIters, Seed: l.Seed})
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, Fig7Row{Algorithm: "RAN", Score: ran.Score, Time: ran.Elapsed,
		XSubTab: float64(ran.Elapsed) / float64(subTabTime)})
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 8: quality metrics per dataset and interactive baseline.
// ---------------------------------------------------------------------------

// Fig8Cell is the metric triple for one (dataset, baseline).
type Fig8Cell struct {
	Diversity float64
	CellCov   float64
	Combined  float64
}

// Fig8Result maps dataset -> baseline -> metrics.
type Fig8Result struct {
	Datasets []string
	Cells    map[string]map[string]Fig8Cell
}

// String renders the Figure 8 groups.
func (r *Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 8: quality metrics per dataset and baseline\n")
	for _, ds := range r.Datasets {
		fmt.Fprintf(&b, "(%s)\n", ds)
		fmt.Fprintf(&b, "  %-8s  %-10s  %-14s  %-10s\n", "Algo", "Diversity", "Cell coverage", "Combined")
		for _, baseline := range []string{"SubTab", "RAN", "NC"} {
			c := r.Cells[ds][baseline]
			fmt.Fprintf(&b, "  %-8s  %-10.2f  %-14.2f  %-10.2f\n", baseline, c.Diversity, c.CellCov, c.Combined)
		}
	}
	return b.String()
}

// Fig8 computes diversity, cell coverage and combined score of 10×10
// sub-tables from SubTab, RAN and NC over FL, SP and CY.
func (l *Lab) Fig8() (*Fig8Result, error) {
	out := &Fig8Result{Datasets: []string{"FL", "SP", "CY"}, Cells: map[string]map[string]Fig8Cell{}}
	k, lCols := 10, 10
	for _, name := range out.Datasets {
		p, err := l.Prepare(name)
		if err != nil {
			return nil, err
		}
		out.Cells[name] = map[string]Fig8Cell{}
		for _, baseline := range []string{"SubTab", "RAN", "NC"} {
			st, err := l.selectWith(p, baseline, &query.Query{}, k, lCols, 8)
			if err != nil {
				return nil, err
			}
			out.Cells[name][baseline] = Fig8Cell{
				Diversity: p.Eval.Diversity(st),
				CellCov:   p.Eval.CellCoverage(st),
				Combined:  p.Eval.Combined(st),
			}
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 9: runtime split.
// ---------------------------------------------------------------------------

// Fig9Row is one dataset's pre-processing and selection wall-clock.
type Fig9Row struct {
	Dataset    string
	RowsCount  int
	Preprocess time.Duration
	Selection  time.Duration
}

// Fig9Result holds the runtime split per dataset.
type Fig9Result struct {
	Rows []Fig9Row
}

// String renders the Figure 9 bars.
func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 9: average running time of SubTab (pre-processing vs centroid selection)\n")
	fmt.Fprintf(&b, "%-8s  %-10s  %-14s  %-14s\n", "Dataset", "Rows", "Pre-process", "Selection")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s  %-10d  %-14s  %-14s\n", row.Dataset, row.RowsCount,
			row.Preprocess.Round(time.Millisecond), row.Selection.Round(time.Millisecond))
	}
	return b.String()
}

// Fig9 measures pre-processing (once) and selection (averaged over the full
// table plus two query results) for FL, CC, SP and CY.
func (l *Lab) Fig9() (*Fig9Result, error) {
	out := &Fig9Result{}
	for _, name := range []string{"FL", "CC", "SP", "CY"} {
		p, err := l.Prepare(name)
		if err != nil {
			return nil, err
		}
		// Selection timing: full table + two representative SP queries.
		queries := selectionQueries(p)
		start := time.Now()
		runs := 0
		for _, q := range queries {
			if _, err := p.Model.SelectQuery(q, 10, 10, nil); err == nil {
				runs++
			}
		}
		var sel time.Duration
		if runs > 0 {
			sel = time.Since(start) / time.Duration(runs)
		}
		out.Rows = append(out.Rows, Fig9Row{
			Dataset: name, RowsCount: p.DS.T.NumRows(),
			Preprocess: p.PreprocessTime, Selection: sel,
		})
	}
	return out, nil
}

// selectionQueries builds the selection workload: the full table plus two
// single-predicate queries over the dataset's first planted rule column.
func selectionQueries(p *Prepared) []*query.Query {
	qs := []*query.Query{nil}
	if len(p.DS.Planted) > 0 {
		col := p.DS.Planted[0].Cols[0]
		c := p.DS.T.Column(col)
		if c != nil && c.Len() > 1 {
			qs = append(qs,
				&query.Query{Where: []query.Predicate{predFor(p, col, 0)}},
				&query.Query{Where: []query.Predicate{predFor(p, col, c.Len()/2)}},
			)
		}
	}
	return qs
}

// predFor builds a predicate matching row r's value in the given column:
// equality for categorical, >= for numeric, IS NULL for missing.
func predFor(p *Prepared, col string, r int) query.Predicate {
	v := p.DS.T.Cell(r, col)
	switch {
	case v.Missing:
		return query.Predicate{Col: col, Op: query.IsMissing}
	case v.Kind == table.Categorical:
		return query.Predicate{Col: col, Op: query.Eq, Str: v.Str}
	default:
		return query.Predicate{Col: col, Op: query.Geq, Num: v.Num}
	}
}

// ---------------------------------------------------------------------------
// Figure 10: parameter tuning.
// ---------------------------------------------------------------------------

// Fig10Result holds cell coverage under varied rule-mining parameters for
// fixed sub-tables (averaged over FL and SP, as in the paper).
type Fig10Result struct {
	BinCounts    []int
	ByBins       map[string][]float64
	Supports     []float64
	BySupport    map[string][]float64
	Confidences  []float64
	ByConfidence map[string][]float64
}

// String renders the three Figure 10 panels.
func (r *Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 10: cell coverage under varied evaluation parameters (FL+SP average)\n")
	writeSeries := func(title string, xs []string, series map[string][]float64) {
		fmt.Fprintf(&b, "(%s)\n", title)
		fmt.Fprintf(&b, "  %-8s", "")
		for _, x := range xs {
			fmt.Fprintf(&b, "%8s", x)
		}
		b.WriteByte('\n')
		for _, baseline := range []string{"SubTab", "RAN", "NC"} {
			fmt.Fprintf(&b, "  %-8s", baseline)
			for _, v := range series[baseline] {
				fmt.Fprintf(&b, "%8.3f", v)
			}
			b.WriteByte('\n')
		}
	}
	xs := make([]string, len(r.BinCounts))
	for i, v := range r.BinCounts {
		xs[i] = fmt.Sprintf("%d", v)
	}
	writeSeries("a: # bins", xs, r.ByBins)
	xs = make([]string, len(r.Supports))
	for i, v := range r.Supports {
		xs[i] = fmt.Sprintf("%.1f", v)
	}
	writeSeries("b: support threshold", xs, r.BySupport)
	xs = make([]string, len(r.Confidences))
	for i, v := range r.Confidences {
		xs[i] = fmt.Sprintf("%.1f", v)
	}
	writeSeries("c: confidence threshold", xs, r.ByConfidence)
	return b.String()
}

// Fig10 evaluates the *same* sub-tables (computed once per algorithm with
// default settings, since none of the algorithms consume rules as input —
// the paper makes this point explicitly) under rule sets mined with varying
// bins, support and confidence. Results are averaged over FL and SP.
func (l *Lab) Fig10() (*Fig10Result, error) {
	datasets := []string{"FL", "SP"}
	k, lCols := 10, 10
	out := &Fig10Result{
		BinCounts:    []int{5, 7, 10},
		Supports:     []float64{0.1, 0.2, 0.3},
		Confidences:  []float64{0.5, 0.6, 0.7, 0.8},
		ByBins:       map[string][]float64{},
		BySupport:    map[string][]float64{},
		ByConfidence: map[string][]float64{},
	}

	// Fixed sub-tables per dataset and algorithm.
	subtables := map[string]map[string]metrics.SubTable{}
	for _, name := range datasets {
		p, err := l.Prepare(name)
		if err != nil {
			return nil, err
		}
		subtables[name] = map[string]metrics.SubTable{}
		for _, baseline := range []string{"SubTab", "RAN", "NC"} {
			st, err := l.selectWith(p, baseline, &query.Query{}, k, lCols, 10)
			if err != nil {
				return nil, err
			}
			subtables[name][baseline] = st
		}
	}

	// evalWith computes average coverage across datasets for an evaluation
	// configuration.
	evalWith := func(bins int, support, confidence float64) (map[string]float64, error) {
		acc := map[string]float64{}
		for _, name := range datasets {
			p, err := l.Prepare(name)
			if err != nil {
				return nil, err
			}
			evalBinned, err := binning.Bin(p.DS.T, binning.Options{
				MaxBins: bins, Strategy: binning.KDEValleys, Seed: l.Seed,
			})
			if err != nil {
				return nil, err
			}
			rs, err := rules.Mine(evalBinned, rules.Options{
				MinSupport: support, MinConfidence: confidence,
				MinRuleSize: l.MinRuleSize, MaxItemsetSize: 3, MaxRules: 20_000,
			})
			if err != nil {
				return nil, err
			}
			ev := metrics.NewEvaluator(evalBinned, rs, l.Alpha)
			for _, baseline := range []string{"SubTab", "RAN", "NC"} {
				acc[baseline] += ev.CellCoverage(subtables[name][baseline])
			}
		}
		for baseline := range acc {
			acc[baseline] /= float64(len(datasets))
		}
		return acc, nil
	}

	for _, bins := range out.BinCounts {
		cov, err := evalWith(bins, l.MinSupport, l.MinConfidence)
		if err != nil {
			return nil, err
		}
		for _, baseline := range []string{"SubTab", "RAN", "NC"} {
			out.ByBins[baseline] = append(out.ByBins[baseline], cov[baseline])
		}
	}
	for _, sup := range out.Supports {
		cov, err := evalWith(l.Bins, sup, l.MinConfidence)
		if err != nil {
			return nil, err
		}
		for _, baseline := range []string{"SubTab", "RAN", "NC"} {
			out.BySupport[baseline] = append(out.BySupport[baseline], cov[baseline])
		}
	}
	for _, conf := range out.Confidences {
		cov, err := evalWith(l.Bins, l.MinSupport, conf)
		if err != nil {
			return nil, err
		}
		for _, baseline := range []string{"SubTab", "RAN", "NC"} {
			out.ByConfidence[baseline] = append(out.ByConfidence[baseline], cov[baseline])
		}
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
