// Tests for the code-level predicate evaluator: compiled filters must
// match the cell-level ground truth (query.Predicate over the resident
// table) exactly, over the inline source and over a block-structured code
// store alike, and cut-aligned/categorical filters must never issue a
// residual cell read.
package binning_test

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"subtab/internal/binning"
	"subtab/internal/query"
	"subtab/internal/table"
)

// predTable builds a deterministic mixed table exercising every evaluator
// regime: numeric with missing cells, a low-cardinality categorical (every
// bin single-category), and a high-cardinality categorical whose tail is
// folded into a mixed fallback bin (forcing residual checks on equality).
func predTable(t *testing.T, n int) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	xs := make([]float64, n)
	ys := make([]float64, n)
	cats := make([]string, n)
	tails := make([]string, n)
	for i := range xs {
		xs[i] = math.Floor(rng.NormFloat64()*50 + 200)
		if rng.Intn(12) == 0 {
			xs[i] = math.NaN()
		}
		ys[i] = float64(rng.Intn(30))
		cats[i] = []string{"alpha", "beta", "gamma"}[rng.Intn(3)]
		if rng.Intn(15) == 0 {
			cats[i] = "" // missing
		}
		tails[i] = fmt.Sprintf("t%02d", rng.Intn(12)) // > MaxBins categories
	}
	tab := table.New("pred")
	for _, c := range []*table.Column{
		table.NewNumeric("x", xs),
		table.NewNumeric("y", ys),
		table.NewCategorical("cat", cats),
		table.NewCategorical("tail", tails),
	} {
		if err := tab.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// tableCells is the residual CellFn a resident table backs.
func tableCells(tab *table.Table) binning.CellFn {
	return func(col int, rows []int) ([]string, error) {
		c := tab.ColumnAt(col)
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = c.CellString(r)
		}
		return out, nil
	}
}

// predCorpus enumerates the conjunctions the sweep checks: every operator,
// cut-aligned and arbitrary numeric bounds, single-bin and fallback-bin
// categorical equality, missingness, unknown columns, and multi-predicate
// conjunctions.
func predCorpus(b *binning.Binned) [][]query.Predicate {
	var cuts []float64
	if len(b.Cols[0].Cuts) > 0 {
		cuts = b.Cols[0].Cuts
	}
	var corpus [][]query.Predicate
	one := func(p query.Predicate) { corpus = append(corpus, []query.Predicate{p}) }
	for _, op := range []query.Op{query.Lt, query.Leq, query.Gt, query.Geq, query.Eq, query.Neq} {
		one(query.Predicate{Col: "x", Op: op, Num: 200})
		one(query.Predicate{Col: "x", Op: op, Num: 187.5})
		one(query.Predicate{Col: "y", Op: op, Num: 14})
		if len(cuts) > 0 {
			// A real cut: the bound every bin either wholly satisfies or
			// wholly violates — the filter must classify with no residuals.
			one(query.Predicate{Col: "x", Op: op, Num: cuts[0]})
		}
	}
	one(query.Predicate{Col: "cat", Op: query.Eq, Str: "beta"})
	one(query.Predicate{Col: "cat", Op: query.Neq, Str: "beta"})
	one(query.Predicate{Col: "cat", Op: query.Eq, Str: "no-such-label"})
	one(query.Predicate{Col: "tail", Op: query.Eq, Str: "t03"})
	one(query.Predicate{Col: "tail", Op: query.Neq, Str: "t07"})
	for _, col := range []string{"x", "cat", "tail"} {
		one(query.Predicate{Col: col, Op: query.IsMissing})
		one(query.Predicate{Col: col, Op: query.NotMissing})
	}
	one(query.Predicate{Col: "ghost", Op: query.Eq, Num: 1})
	corpus = append(corpus,
		[]query.Predicate{
			{Col: "x", Op: query.Gt, Num: 170},
			{Col: "x", Op: query.Leq, Num: 240},
			{Col: "cat", Op: query.Neq, Str: "gamma"},
		},
		[]query.Predicate{
			{Col: "tail", Op: query.Eq, Str: "t01"},
			{Col: "y", Op: query.Geq, Num: 10},
		},
		[]query.Predicate{
			{Col: "x", Op: query.NotMissing},
			{Col: "cat", Op: query.IsMissing},
		},
	)
	return corpus
}

// TestFilterMatchesCellGroundTruth sweeps the corpus over the inline
// source and a small-block code store: both must reproduce the cell-level
// evaluation row for row.
func TestFilterMatchesCellGroundTruth(t *testing.T) {
	tab := predTable(t, 700)
	b, err := binning.Bin(tab, binning.Options{MaxBins: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	store := storeFor(t, b, 64)
	cells := tableCells(tab)
	for i, preds := range predCorpus(b) {
		q := &query.Query{Where: preds}
		want, err := q.MatchingRows(tab)
		if err != nil {
			t.Fatalf("corpus %d (%v): ground truth: %v", i, preds, err)
		}
		f := b.CompileFilter(preds)
		for _, src := range []struct {
			name string
			cs   binning.CodeSource
		}{{"inline", b.Source()}, {"store", store}} {
			got, err := f.MatchingRows(src.cs, 0, cells, 0)
			if err != nil {
				t.Fatalf("corpus %d (%v) over %s: %v", i, preds, src.name, err)
			}
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("corpus %d (%v) over %s:\n got %v\nwant %v", i, preds, src.name, got, want)
			}
		}
	}
}

// TestFilterMatchMaskAgrees pins MatchMask against MatchingRows: the mask's
// set positions (offset by start) are exactly the matching rows, and the
// matched count is their number.
func TestFilterMatchMaskAgrees(t *testing.T) {
	tab := predTable(t, 700)
	b, err := binning.Bin(tab, binning.Options{MaxBins: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cells := tableCells(tab)
	for i, preds := range predCorpus(b) {
		f := b.CompileFilter(preds)
		rows, err := f.MatchingRows(b.Source(), 0, cells, 0)
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		keep, matched, err := f.MatchMask(b.Source(), 0, cells)
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		if matched != len(rows) {
			t.Fatalf("corpus %d (%v): matched = %d, MatchingRows found %d", i, preds, matched, len(rows))
		}
		var fromMask []int
		for r, ok := range keep {
			if ok {
				fromMask = append(fromMask, r)
			}
		}
		if len(fromMask) != len(rows) || (len(rows) > 0 && !reflect.DeepEqual(fromMask, rows)) {
			t.Fatalf("corpus %d (%v): mask rows %v, want %v", i, preds, fromMask, rows)
		}
	}
}

// TestFilterLimitIsPrefix pins limit semantics: the first N ascending
// matches, exactly the unlimited result's prefix.
func TestFilterLimitIsPrefix(t *testing.T) {
	tab := predTable(t, 700)
	b, err := binning.Bin(tab, binning.Options{MaxBins: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cells := tableCells(tab)
	preds := []query.Predicate{{Col: "x", Op: query.Gt, Num: 180}}
	f := b.CompileFilter(preds)
	all, err := f.MatchingRows(b.Source(), 0, cells, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 20 {
		t.Fatalf("corpus too small: %d matches", len(all))
	}
	got, err := f.MatchingRows(b.Source(), 0, cells, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, all[:7]) {
		t.Fatalf("limited rows %v, want prefix %v", got, all[:7])
	}
}

// TestExactFilterNeverReadsCells pins the paged-table guarantee: a filter
// whose every (predicate, bin) classification is decided at the code level
// reports Exact and completes with a CellFn that fails the test if called —
// and with no CellFn at all.
func TestExactFilterNeverReadsCells(t *testing.T) {
	tab := predTable(t, 700)
	b, err := binning.Bin(tab, binning.Options{MaxBins: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	exact := [][]query.Predicate{
		{{Col: "cat", Op: query.Eq, Str: "beta"}}, // single-category bin
		{{Col: "x", Op: query.IsMissing}},
		{{Col: "x", Op: query.NotMissing}},
		{{Col: "ghost", Op: query.Eq, Num: 3}}, // unknown column: empty, no reads
	}
	if len(b.Cols[0].Cuts) > 0 {
		exact = append(exact, []query.Predicate{{Col: "x", Op: query.Leq, Num: b.Cols[0].Cuts[0]}})
	}
	for i, preds := range exact {
		f := b.CompileFilter(preds)
		if !f.Exact() {
			t.Fatalf("corpus %d (%v): filter not exact", i, preds)
		}
		tripwire := binning.CellFn(func(col int, rows []int) ([]string, error) {
			t.Fatalf("corpus %d (%v): residual read of column %d", i, preds, col)
			return nil, nil
		})
		if _, err := f.MatchingRows(b.Source(), 0, tripwire, 0); err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		if _, err := f.MatchingRows(b.Source(), 0, nil, 0); err != nil {
			t.Fatalf("corpus %d with nil cells: %v", i, err)
		}
	}
}

// TestResidualFilterWithoutCellsErrors pins the husk refusal: a filter that
// needs residual checks must error — not guess — when no cell reader
// exists.
func TestResidualFilterWithoutCellsErrors(t *testing.T) {
	tab := predTable(t, 700)
	b, err := binning.Bin(tab, binning.Options{MaxBins: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f := b.CompileFilter([]query.Predicate{{Col: "x", Op: query.Gt, Num: 187.5}})
	if f.Exact() {
		t.Skip("bound happens to be cut-aligned")
	}
	if _, err := f.MatchingRows(b.Source(), 0, nil, 0); err == nil {
		t.Fatal("residual filter with nil CellFn did not error")
	}
}
