// Package binning implements Def. 3.2 of the paper: mapping every column of
// a table onto a small set of bins so that heterogeneous columns can be
// treated uniformly by the rule miner, the metrics, and the embedding.
//
// Numeric columns are split at the valleys of a Gaussian kernel density
// estimate (the paper's method, §6.1), with quantile and equal-width
// strategies available as alternatives and as fallbacks. Categorical columns
// keep their categories as bins, grouping the tail into an "other" bin when
// there are too many. Missing values get a dedicated bin per column: in the
// paper's flights example NaN cells participate in association rules (a
// cancelled flight has NaN departure time), so "missing" must be a
// first-class value.
//
// A binned cell is identified globally by its item id, the (column, bin)
// pair encoded as one int32. Item ids are the alphabet shared by the Apriori
// miner (package rules) and the embedding corpus (package corpus).
package binning

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"subtab/internal/stats"
	"subtab/internal/table"
)

// Strategy selects how numeric columns are cut into bins.
type Strategy int

const (
	// KDEValleys cuts at local minima of a Gaussian KDE (paper default),
	// falling back to Quantile when the density has no usable valleys.
	KDEValleys Strategy = iota
	// Quantile cuts at equal-frequency boundaries.
	Quantile
	// EqualWidth cuts the value range into equal-width intervals.
	EqualWidth
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case KDEValleys:
		return "kde"
	case Quantile:
		return "quantile"
	case EqualWidth:
		return "equal-width"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures binning.
type Options struct {
	// MaxBins bounds the number of non-missing bins per column (paper
	// default: 5).
	MaxBins int
	// Strategy for numeric columns.
	Strategy Strategy
	// SampleSize caps the sample used for KDE estimation (0 = 2000).
	SampleSize int
	// GridSize is the KDE evaluation grid (0 = 256).
	GridSize int
	// Seed drives sampling for KDE.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MaxBins <= 0 {
		o.MaxBins = 5
	}
	if o.SampleSize <= 0 {
		o.SampleSize = 2000
	}
	if o.GridSize <= 0 {
		o.GridSize = 256
	}
	return o
}

// MissingLabel is the label of the dedicated missing-value bin.
const MissingLabel = "missing"

// ColumnBins describes the binning of one column.
type ColumnBins struct {
	Col    string
	Kind   table.Kind
	Labels []string // one per bin, indexed by bin code

	// Numeric: values are assigned to bins by Cuts; bin i covers
	// (Cuts[i-1], Cuts[i]] with open ends at the extremes. len(Cuts) =
	// numeric bins - 1.
	Cuts []float64

	// Categorical: CatToBin maps a category code to its bin.
	CatToBin []int

	// MissingBin is the bin index of the missing bin, or -1 when the column
	// has no missing values.
	MissingBin int
}

// NumBins returns the total number of bins, including the missing bin.
func (cb *ColumnBins) NumBins() int { return len(cb.Labels) }

// ApproxBytes estimates the heap bytes of the binning schema itself:
// labels, cuts, and the category→bin map. Codes are accounted separately
// by their owner (they dominate and may live out-of-core).
func (cb *ColumnBins) ApproxBytes() int64 {
	b := int64(len(cb.Cuts))*8 + int64(len(cb.CatToBin))*8
	for _, l := range cb.Labels {
		b += 16 + int64(len(l))
	}
	return b
}

// BinOfNum returns the bin of a numeric value (not for missing values).
func (cb *ColumnBins) BinOfNum(v float64) int {
	// Binary search over cuts: bin = first i with v <= Cuts[i].
	lo, hi := 0, len(cb.Cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= cb.Cuts[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// BinOfCat returns the bin of a categorical code (not for missing values).
func (cb *ColumnBins) BinOfCat(code int32) int {
	if int(code) < len(cb.CatToBin) {
		return cb.CatToBin[code]
	}
	// Unseen code (e.g. appended after binning): treat as the last
	// non-missing bin ("other" when present).
	return cb.lastNonMissingBin()
}

// lastNonMissingBin is the fallback bin for category codes that did not
// exist when the binning was computed — the single definition of that
// policy, shared by BinOfCat and the append path's CatToBin extension.
func (cb *ColumnBins) lastNonMissingBin() int {
	last := len(cb.Labels) - 1
	if last == cb.MissingBin {
		last--
	}
	if last < 0 {
		last = 0
	}
	return last
}

// Binned is a table with every cell mapped to its bin, plus the global item
// id space shared by mining and embedding.
type Binned struct {
	T    *table.Table
	Cols []ColumnBins

	// Codes[c][r] is the bin code of row r in column c. It is nil for
	// store-backed tables (AttachStore + DropInlineCodes), whose codes are
	// read through the attached CodeSource instead; use Code, Source or
	// MaterializedCodes to stay representation-agnostic.
	Codes [][]uint16

	// store is the external code source of a store-backed table (see
	// source.go). Either Codes or store is always set.
	store CodeSource

	// colBase[c] is the first global item id of column c; column c uses item
	// ids [colBase[c], colBase[c]+Cols[c].NumBins()).
	colBase []int32

	numItems int
}

// Bin computes the binning of t under the given options.
func Bin(t *table.Table, opt Options) (*Binned, error) {
	opt = opt.withDefaults()
	n := t.NumRows()
	b := &Binned{T: t}
	rng := rand.New(rand.NewSource(opt.Seed))
	for _, col := range t.Columns() {
		var cb ColumnBins
		var err error
		if col.Kind == table.Numeric {
			cb, err = binNumeric(col, opt, rng)
		} else {
			cb, err = binCategorical(col, opt)
		}
		if err != nil {
			return nil, err
		}
		codes := make([]uint16, n)
		for r := 0; r < n; r++ {
			var bin int
			switch {
			case col.Missing(r):
				bin = cb.MissingBin
			case col.Kind == table.Numeric:
				bin = cb.BinOfNum(col.Nums[r])
			default:
				bin = cb.BinOfCat(col.Cats[r])
			}
			codes[r] = uint16(bin)
		}
		b.colBase = append(b.colBase, int32(b.numItems))
		b.numItems += cb.NumBins()
		b.Cols = append(b.Cols, cb)
		b.Codes = append(b.Codes, codes)
	}
	return b, nil
}

// Restore rebuilds a Binned from its serialized parts (package modelio),
// recomputing the derived item-id layout instead of re-running Bin. The
// slices are retained, not copied.
func Restore(t *table.Table, cols []ColumnBins, codes [][]uint16) (*Binned, error) {
	if len(cols) != t.NumCols() {
		return nil, fmt.Errorf("binning: restore: %d column binnings for a %d-column table", len(cols), t.NumCols())
	}
	if len(codes) != len(cols) {
		return nil, fmt.Errorf("binning: restore: %d code columns for %d binnings", len(codes), len(cols))
	}
	b := &Binned{T: t, Cols: cols, Codes: codes}
	n := t.NumRows()
	for c := range cols {
		if len(codes[c]) != n {
			return nil, fmt.Errorf("binning: restore: column %d has %d codes, table has %d rows", c, len(codes[c]), n)
		}
		nb := cols[c].NumBins()
		if nb == 0 {
			return nil, fmt.Errorf("binning: restore: column %d has no bins", c)
		}
		for _, code := range codes[c] {
			if int(code) >= nb {
				return nil, fmt.Errorf("binning: restore: column %d code %d out of range (%d bins)", c, code, nb)
			}
		}
		b.colBase = append(b.colBase, int32(b.numItems))
		b.numItems += nb
	}
	return b, nil
}

// NumItems returns the size of the global item-id space.
func (b *Binned) NumItems() int { return b.numItems }

// NumRows returns the number of rows of the underlying table.
func (b *Binned) NumRows() int { return b.T.NumRows() }

// NumCols returns the number of columns.
func (b *Binned) NumCols() int { return len(b.Cols) }

// Item returns the global item id of the cell (row r, column c).
func (b *Binned) Item(c, r int) int32 {
	if b.Codes != nil {
		return b.colBase[c] + int32(b.Codes[c][r])
	}
	return b.colBase[c] + int32(b.store.Code(c, r))
}

// ItemOf returns the global item id of bin `bin` in column c.
func (b *Binned) ItemOf(c, bin int) int32 {
	return b.colBase[c] + int32(bin)
}

// ColOfItem returns the column index owning the given item id.
func (b *Binned) ColOfItem(item int32) int {
	// Binary search over colBase.
	lo, hi := 0, len(b.colBase)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if b.colBase[mid] <= item {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// BinOfItem returns the within-column bin index of the given item id.
func (b *Binned) BinOfItem(item int32) int {
	return int(item - b.colBase[b.ColOfItem(item)])
}

// ItemLabel renders an item id as "COLUMN=binlabel".
func (b *Binned) ItemLabel(item int32) string {
	c := b.ColOfItem(item)
	return b.Cols[c].Col + "=" + b.Cols[c].Labels[b.BinOfItem(item)]
}

// CellLabel returns the bin label of the cell (row r, column c).
func (b *Binned) CellLabel(c, r int) string {
	return b.Cols[c].Labels[b.Code(c, r)]
}

// binNumeric computes bins for a numeric column.
func binNumeric(col *table.Column, opt Options, rng *rand.Rand) (ColumnBins, error) {
	cb := ColumnBins{Col: col.Name, Kind: table.Numeric, MissingBin: -1}
	// Collect non-missing values.
	vals := make([]float64, 0, len(col.Nums))
	hasMissing := false
	for _, v := range col.Nums {
		if math.IsNaN(v) {
			hasMissing = true
			continue
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		cb.Labels = []string{MissingLabel}
		cb.MissingBin = 0
		return cb, nil
	}
	sort.Float64s(vals)
	distinct := countDistinctSorted(vals)
	maxBins := opt.MaxBins
	if distinct < maxBins {
		maxBins = distinct
	}

	var cuts []float64
	if maxBins > 1 {
		switch opt.Strategy {
		case KDEValleys:
			cuts = kdeCuts(vals, maxBins, opt, rng)
		case Quantile:
			cuts = quantileCuts(vals, maxBins)
		case EqualWidth:
			cuts = equalWidthCuts(vals, maxBins)
		default:
			return cb, fmt.Errorf("binning: unknown strategy %v", opt.Strategy)
		}
	}
	cb.Cuts = cuts
	// Labels: interval strings.
	mn, mx := vals[0], vals[len(vals)-1]
	edges := append(append([]float64{mn}, cuts...), mx)
	for i := 0; i+1 < len(edges); i++ {
		cb.Labels = append(cb.Labels, fmt.Sprintf("%.4g..%.4g", edges[i], edges[i+1]))
	}
	if hasMissing {
		cb.MissingBin = len(cb.Labels)
		cb.Labels = append(cb.Labels, MissingLabel)
	}
	return cb, nil
}

// kdeCuts places cuts at KDE density valleys; when the density has no usable
// valleys (or too few), it falls back to quantile cuts.
func kdeCuts(sorted []float64, maxBins int, opt Options, rng *rand.Rand) []float64 {
	sample := sorted
	if len(sample) > opt.SampleSize {
		sample = make([]float64, opt.SampleSize)
		for i := range sample {
			sample[i] = sorted[rng.Intn(len(sorted))]
		}
	}
	kde := stats.NewKDE(sample, 0)
	valleys := kde.DensityValleys(opt.GridSize)
	// Keep only valleys strictly inside the data range.
	mn, mx := sorted[0], sorted[len(sorted)-1]
	inside := valleys[:0]
	for _, v := range valleys {
		if v > mn && v < mx {
			inside = append(inside, v)
		}
	}
	valleys = inside
	if len(valleys) == 0 {
		return quantileCuts(sorted, maxBins)
	}
	if len(valleys) > maxBins-1 {
		// Keep the deepest valleys (lowest density) to respect MaxBins.
		type vd struct {
			x, d float64
		}
		vds := make([]vd, len(valleys))
		for i, v := range valleys {
			vds[i] = vd{v, kde.Density(v)}
		}
		sort.Slice(vds, func(i, j int) bool { return vds[i].d < vds[j].d })
		vds = vds[:maxBins-1]
		valleys = valleys[:0]
		for _, v := range vds {
			valleys = append(valleys, v.x)
		}
		sort.Float64s(valleys)
	}
	return dedupeSorted(valleys)
}

func quantileCuts(sorted []float64, k int) []float64 {
	qs := stats.Quantiles(sorted, k)
	return dedupeSorted(qs[1 : len(qs)-1])
}

func equalWidthCuts(sorted []float64, k int) []float64 {
	mn, mx := sorted[0], sorted[len(sorted)-1]
	if mn == mx {
		return nil
	}
	cuts := make([]float64, 0, k-1)
	step := (mx - mn) / float64(k)
	for i := 1; i < k; i++ {
		cuts = append(cuts, mn+step*float64(i))
	}
	return dedupeSorted(cuts)
}

// binCategorical keeps categories as bins, grouping the tail into "other"
// when the column has more than MaxBins categories. Bin order is by
// descending frequency so bin labels are stable and informative.
func binCategorical(col *table.Column, opt Options) (ColumnBins, error) {
	cb := ColumnBins{Col: col.Name, Kind: table.Categorical, MissingBin: -1}
	dictSize := 0
	if col.Dict != nil {
		dictSize = col.Dict.Size()
	}
	freq := make([]int, dictSize)
	hasMissing := false
	for _, code := range col.Cats {
		if code < 0 {
			hasMissing = true
			continue
		}
		freq[code]++
	}
	order := make([]int, 0, dictSize)
	for code, f := range freq {
		if f > 0 {
			order = append(order, code)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if freq[order[i]] != freq[order[j]] {
			return freq[order[i]] > freq[order[j]]
		}
		return col.Dict.String(int32(order[i])) < col.Dict.String(int32(order[j]))
	})

	cb.CatToBin = make([]int, dictSize)
	for i := range cb.CatToBin {
		cb.CatToBin[i] = -1
	}
	if len(order) <= opt.MaxBins {
		for bin, code := range order {
			cb.CatToBin[code] = bin
			cb.Labels = append(cb.Labels, col.Dict.String(int32(code)))
		}
	} else {
		top := opt.MaxBins - 1
		for bin := 0; bin < top; bin++ {
			code := order[bin]
			cb.CatToBin[code] = bin
			cb.Labels = append(cb.Labels, col.Dict.String(int32(code)))
		}
		otherBin := top
		cb.Labels = append(cb.Labels, "other")
		for _, code := range order[top:] {
			cb.CatToBin[code] = otherBin
		}
	}
	// Codes never seen in the data but present in the dictionary map to the
	// last non-missing bin.
	lastBin := len(cb.Labels) - 1
	for i, bin := range cb.CatToBin {
		if bin < 0 {
			cb.CatToBin[i] = lastBin
		}
	}
	if len(cb.Labels) == 0 {
		// All-missing column.
		cb.Labels = []string{MissingLabel}
		cb.MissingBin = 0
		return cb, nil
	}
	if hasMissing {
		cb.MissingBin = len(cb.Labels)
		cb.Labels = append(cb.Labels, MissingLabel)
	}
	return cb, nil
}

func countDistinctSorted(sorted []float64) int {
	if len(sorted) == 0 {
		return 0
	}
	d := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			d++
		}
	}
	return d
}

func dedupeSorted(xs []float64) []float64 {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
