package binning

import (
	"fmt"

	"subtab/internal/query"
	"subtab/internal/table"
)

// Code-level predicate evaluation: a conjunction of query.Predicates is
// compiled against the binning layout into a per-(predicate, bin) tri-state
// table, so filters run over CodeSource blocks — two-byte reads — instead of
// raw cells. Most bins decide a predicate outright:
//
//   - numeric bins are intervals (Cuts[i-1], Cuts[i]] with open extremes, so
//     a comparison against a threshold is exact for every bin the threshold
//     does not fall into (and exact even there when the threshold is
//     cut-aligned, e.g. Leq at a cut boundary);
//   - non-fallback categorical bins hold exactly one category, so equality
//     is exact; only the fallback bin (the "other"/append catch-all, see
//     lastNonMissingBin) can mix categories;
//   - the dedicated missing bin decides IsMissing/NotMissing exactly and
//     fails every value comparison, exactly like query.Predicate.Matches.
//
// Rows landing in an undecided ("maybe") bin are resolved by a batched
// residual check over their rendered cells (CellFn — on paged tables this is
// colstore gathering only the boundary rows' blocks), using
// query.Predicate.MatchesCell, which decides exactly as Matches would. The
// matched row set is therefore identical to the resident-cell evaluation,
// with no full-table materialization.

// binClass is the compile-time verdict for one (predicate, bin) pair.
type binClass uint8

const (
	binFalse binClass = iota // no row of this bin can satisfy the predicate
	binTrue                  // every row of this bin satisfies it
	binMaybe                 // undecidable from the bin alone: residual check
)

// predProgram is one compiled predicate: the column it reads and its
// per-bin verdict table.
type predProgram struct {
	pred  query.Predicate
	col   int // column index, -1 when the column is unknown (matches nothing)
	kind  table.Kind
	class []binClass
}

// Filter is a compiled conjunction, ready to stream a CodeSource.
type Filter struct {
	preds []predProgram
	exact bool // no maybe bin anywhere: never needs a CellFn
}

// CellFn resolves residual rows: the rendered cell strings (the
// table.CellSource.GatherCells contract) of the given rows — ascending
// global ids — in source column col.
type CellFn func(col int, rows []int) ([]string, error)

// Exact reports whether the filter decides every row from codes alone (no
// residual cell reads will ever be issued).
func (f *Filter) Exact() bool { return f.exact }

// NumPredicates returns the number of compiled predicates.
func (f *Filter) NumPredicates() int { return len(f.preds) }

// CompileFilter compiles a conjunction of predicates against the binning
// layout. Every conjunction compiles — predicates over unknown columns
// match nothing, wrong-kind comparisons match nothing — mirroring
// query.Predicate.Matches exactly.
func (b *Binned) CompileFilter(preds []query.Predicate) *Filter {
	f := &Filter{preds: make([]predProgram, 0, len(preds)), exact: true}
	for _, p := range preds {
		pp := predProgram{pred: p, col: -1}
		for c := range b.Cols {
			if b.Cols[c].Col == p.Col {
				pp.col = c
				break
			}
		}
		if pp.col >= 0 {
			cb := &b.Cols[pp.col]
			pp.kind = cb.Kind
			pp.class = classifyBins(cb, p)
			for _, cl := range pp.class {
				if cl == binMaybe {
					f.exact = false
					break
				}
			}
		}
		f.preds = append(f.preds, pp)
	}
	return f
}

// classifyBins builds the per-bin verdict table of one predicate over one
// column's binning.
func classifyBins(cb *ColumnBins, p query.Predicate) []binClass {
	mixed := mixedFallback(cb)
	class := make([]binClass, cb.NumBins())
	for v := range class {
		class[v] = classifyBin(cb, p, v, mixed)
	}
	return class
}

// mixedFallback reports whether the column's last non-missing bin can hold
// more than one category — the "other" frequency tail, or dictionary codes
// folded in after binning. A fallback bin with exactly one mapped category
// classifies like any other single-category bin.
func mixedFallback(cb *ColumnBins) bool {
	if cb.Kind != table.Categorical {
		return false
	}
	last := cb.lastNonMissingBin()
	if last < 0 {
		return false
	}
	n := 0
	for _, bin := range cb.CatToBin {
		if bin == last {
			if n++; n > 1 {
				return true
			}
		}
	}
	return false
}

func classifyBin(cb *ColumnBins, p query.Predicate, bin int, mixed bool) binClass {
	if bin == cb.MissingBin {
		// Missing cells match IsMissing and nothing else.
		if p.Op == query.IsMissing {
			return binTrue
		}
		return binFalse
	}
	switch p.Op {
	case query.IsMissing:
		return binFalse
	case query.NotMissing:
		return binTrue
	}
	if cb.Kind == table.Categorical {
		switch p.Op {
		case query.Eq, query.Neq:
		default:
			return binFalse // numeric comparisons never match a categorical
		}
		if mixed && bin == cb.lastNonMissingBin() {
			// The fallback bin mixes the frequency tail ("other") and any
			// category appended after binning: only the cells can tell.
			return binMaybe
		}
		match := cb.Labels[bin] == p.Str
		if (p.Op == query.Eq) == match {
			return binTrue
		}
		return binFalse
	}
	// Numeric column: bin is the interval (lo, hi], lo/hi open at the
	// extremes (Cuts has non-missing bins - 1 entries).
	lo, hi := binInterval(cb, bin)
	x := p.Num
	switch p.Op {
	case query.Eq:
		if x <= lo || x > hi {
			return binFalse // x outside (lo, hi]: no row can equal it
		}
		return binMaybe
	case query.Neq:
		if x <= lo || x > hi {
			return binTrue
		}
		return binMaybe
	case query.Lt: // row < x
		if hi < x {
			return binTrue
		}
		if x <= lo {
			return binFalse // every row > lo >= x
		}
		return binMaybe
	case query.Leq: // row <= x
		if hi <= x {
			return binTrue // cut-aligned thresholds are exact here
		}
		if x <= lo {
			return binFalse
		}
		return binMaybe
	case query.Gt: // row > x
		if x <= lo {
			return binTrue
		}
		if hi <= x {
			return binFalse // cut-aligned thresholds are exact here
		}
		return binMaybe
	case query.Geq: // row >= x
		if x <= lo {
			return binTrue
		}
		if hi < x {
			return binFalse
		}
		return binMaybe
	default:
		return binFalse
	}
}

// binInterval returns numeric bin's covered interval (lo, hi], with
// -Inf/+Inf at the open extremes.
func binInterval(cb *ColumnBins, bin int) (lo, hi float64) {
	lo, hi = negInf, posInf
	if bin > 0 {
		lo = cb.Cuts[bin-1]
	}
	if bin < len(cb.Cuts) {
		hi = cb.Cuts[bin]
	}
	return lo, hi
}

var (
	posInf = func() float64 { var z float64; return 1 / z }()
	negInf = -posInf
)

// MatchingRows streams src and returns the ascending global row ids
// matching the conjunction, stopping after limit matches (limit <= 0: no
// limit). start offsets local rows to global ids (0 for whole-table
// sources). cells resolves residual rows; it may be nil for exact filters
// (a residual row with no CellFn is an error, not a guess). Partial sources
// must have every block available.
func (f *Filter) MatchingRows(src CodeSource, start int, cells CellFn, limit int) ([]int, error) {
	var out []int
	err := f.stream(src, start, cells, func(rows []int) bool {
		out = append(out, rows...)
		if limit > 0 && len(out) >= limit {
			out = out[:limit]
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MatchMask evaluates the conjunction over every row of src and returns a
// local-row keep mask plus the matched count — the shard-scan form, where
// the sampler needs random access to the verdicts rather than a row list.
func (f *Filter) MatchMask(src CodeSource, start int, cells CellFn) ([]bool, int, error) {
	n := 0
	if src != nil {
		n = src.NumRows()
	}
	keep := make([]bool, n)
	matched := 0
	err := f.stream(src, start, cells, func(rows []int) bool {
		for _, r := range rows {
			keep[r-start] = true
		}
		matched += len(rows)
		return true
	})
	if err != nil {
		return nil, 0, err
	}
	return keep, matched, nil
}

// stream drives the block loop: per block it classifies every row against
// every predicate, batches one residual cell gather per predicate with
// undecided rows, and emits the block's matching global rows (ascending) to
// emit. emit returning false stops the scan early (the limit path).
func (f *Filter) stream(src CodeSource, start int, cells CellFn, emit func(rows []int) bool) error {
	if src == nil || src.NumRows() == 0 {
		return nil
	}
	// A predicate over an unknown column matches nothing: the conjunction is
	// empty without reading a single block.
	for _, pp := range f.preds {
		if pp.col < 0 {
			return nil
		}
	}
	ps, ok := src.(PartialCodeSource)
	n := src.NumRows()
	br := src.BlockRows()
	alive := make([]bool, br)
	var scratch []uint16
	var batch []int
	for blk := 0; blk < src.NumBlocks(); blk++ {
		if ok && !ps.BlockAvailable(blk) {
			return fmt.Errorf("binning: predicate filter needs block %d, which is not held locally", blk)
		}
		bn := br
		if off := blk * br; off+bn > n {
			bn = n - off
		}
		for i := 0; i < bn; i++ {
			alive[i] = true
		}
		// residual[pi] collects the block-local rows predicate pi cannot
		// decide from codes; resolved in one gather per predicate below.
		var residual [][]int
		for pi := range f.preds {
			pp := &f.preds[pi]
			codes := src.ColumnBlock(pp.col, blk, scratch)
			scratch = codes
			var undecided []int
			for i := 0; i < bn; i++ {
				if !alive[i] {
					continue
				}
				switch pp.class[codes[i]] {
				case binFalse:
					alive[i] = false
				case binMaybe:
					undecided = append(undecided, i)
				}
			}
			if undecided != nil {
				if residual == nil {
					residual = make([][]int, len(f.preds))
				}
				residual[pi] = undecided
			}
		}
		off := blk * br
		for pi := range residual {
			pp := &f.preds[pi]
			var local, global []int
			for _, i := range residual[pi] {
				if alive[i] { // an earlier predicate may have killed the row
					local = append(local, i)
					global = append(global, start+off+i)
				}
			}
			if len(local) == 0 {
				continue
			}
			if cells == nil {
				return fmt.Errorf("binning: predicate %s needs a residual cell check and no cell source is available", pp.pred)
			}
			rendered, err := cells(pp.col, global)
			if err != nil {
				return fmt.Errorf("binning: resolving residual rows of %s: %w", pp.pred, err)
			}
			if len(rendered) != len(global) {
				return fmt.Errorf("binning: residual cell gather returned %d cells, want %d", len(rendered), len(global))
			}
			for j, i := range local {
				if !pp.pred.MatchesCell(pp.kind, rendered[j]) {
					alive[i] = false
				}
			}
		}
		batch = batch[:0]
		for i := 0; i < bn; i++ {
			if alive[i] {
				batch = append(batch, start+off+i)
			}
		}
		if len(batch) > 0 && !emit(batch) {
			return nil
		}
	}
	return nil
}
