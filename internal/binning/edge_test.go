package binning

// Edge-case behavior of Bin that used to be implicitly defined: empty
// tables, zero-row columns, single rows, single columns, all-missing
// numeric columns, single-category columns. These tests turn the current
// (sane) behavior into a contract so refactors cannot silently regress the
// degenerate inputs a streaming ingestion path routinely produces (the
// first chunk of a feed is often tiny or partially empty).

import (
	"math"
	"testing"

	"subtab/internal/table"
)

func TestBinEmptyTable(t *testing.T) {
	b, err := Bin(table.New("e"), Options{MaxBins: 5})
	if err != nil {
		t.Fatal(err)
	}
	if b.NumItems() != 0 || b.NumCols() != 0 || b.NumRows() != 0 {
		t.Fatalf("empty table binned to %d items, %d cols", b.NumItems(), b.NumCols())
	}
}

func TestBinZeroRowColumns(t *testing.T) {
	tab := table.New("e")
	if err := tab.AddColumn(table.NewNumeric("n", nil)); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn(table.NewCategorical("c", nil)); err != nil {
		t.Fatal(err)
	}
	b, err := Bin(tab, Options{MaxBins: 5})
	if err != nil {
		t.Fatal(err)
	}
	// A column with no data gets exactly the missing bin.
	for c, cb := range b.Cols {
		if cb.NumBins() != 1 || cb.MissingBin != 0 {
			t.Fatalf("col %d: %d bins, missing at %d; want the single missing bin", c, cb.NumBins(), cb.MissingBin)
		}
		if len(b.Codes[c]) != 0 {
			t.Fatalf("col %d has %d codes for 0 rows", c, len(b.Codes[c]))
		}
	}
}

func TestBinSingleRow(t *testing.T) {
	tab := table.New("e")
	if err := tab.AddColumn(table.NewNumeric("n", []float64{5})); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn(table.NewCategorical("c", []string{"x"})); err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{KDEValleys, Quantile, EqualWidth} {
		b, err := Bin(tab, Options{MaxBins: 5, Strategy: strat})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if nb := b.Cols[0].NumBins(); nb != 1 {
			t.Fatalf("%v: single value binned into %d bins", strat, nb)
		}
		if len(b.Cols[0].Cuts) != 0 {
			t.Fatalf("%v: single value produced cuts %v", strat, b.Cols[0].Cuts)
		}
		if b.Codes[0][0] != 0 || b.Codes[1][0] != 0 {
			t.Fatalf("%v: single row coded %d/%d", strat, b.Codes[0][0], b.Codes[1][0])
		}
		if b.Cols[1].Labels[0] != "x" {
			t.Fatalf("%v: category label %q", strat, b.Cols[1].Labels[0])
		}
	}
}

func TestBinSingleColumn(t *testing.T) {
	tab := numericTable(t, "n", []float64{1, 2, 3, 4, 5, 6, 7, 8})
	b, err := Bin(tab, Options{MaxBins: 3, Strategy: Quantile})
	if err != nil {
		t.Fatal(err)
	}
	if b.NumCols() != 1 {
		t.Fatalf("cols = %d", b.NumCols())
	}
	if nb := b.Cols[0].NumBins(); nb < 2 || nb > 3 {
		t.Fatalf("8 distinct values in %d bins, want 2-3", nb)
	}
	// Item ids start at 0 for the only column.
	if b.Item(0, 0) < 0 || int(b.Item(0, 0)) >= b.NumItems() {
		t.Fatalf("item id %d out of range", b.Item(0, 0))
	}
}

func TestBinAllNaNNumeric(t *testing.T) {
	tab := numericTable(t, "n", []float64{math.NaN(), math.NaN(), math.NaN()})
	b, err := Bin(tab, Options{MaxBins: 5})
	if err != nil {
		t.Fatal(err)
	}
	cb := b.Cols[0]
	if cb.NumBins() != 1 || cb.MissingBin != 0 || cb.Labels[0] != MissingLabel {
		t.Fatalf("all-NaN column: bins %v, missing at %d", cb.Labels, cb.MissingBin)
	}
	for r := 0; r < 3; r++ {
		if b.Codes[0][r] != 0 {
			t.Fatalf("row %d coded %d", r, b.Codes[0][r])
		}
	}
}

func TestBinSingleCategoryColumn(t *testing.T) {
	tab := table.New("e")
	if err := tab.AddColumn(table.NewCategorical("c", []string{"x", "x", "x", "x"})); err != nil {
		t.Fatal(err)
	}
	b, err := Bin(tab, Options{MaxBins: 5})
	if err != nil {
		t.Fatal(err)
	}
	cb := b.Cols[0]
	if cb.NumBins() != 1 || cb.MissingBin != -1 {
		t.Fatalf("one-category column: %d bins, missing at %d; want 1 and -1", cb.NumBins(), cb.MissingBin)
	}
	if cb.Labels[0] != "x" {
		t.Fatalf("label %q, want x", cb.Labels[0])
	}
	for r := 0; r < 4; r++ {
		if b.Codes[0][r] != 0 {
			t.Fatalf("row %d coded %d", r, b.Codes[0][r])
		}
	}
}

func TestBinConstantNumericKDE(t *testing.T) {
	// A constant column must not trip the KDE path (zero bandwidth).
	tab := numericTable(t, "n", []float64{7, 7, 7, 7, 7})
	b, err := Bin(tab, Options{MaxBins: 5, Strategy: KDEValleys})
	if err != nil {
		t.Fatal(err)
	}
	if nb := b.Cols[0].NumBins(); nb != 1 {
		t.Fatalf("constant column in %d bins", nb)
	}
}

func TestBinTwoDistinctKDE(t *testing.T) {
	tab := numericTable(t, "n", []float64{1, 1, 1, 9, 9})
	b, err := Bin(tab, Options{MaxBins: 5, Strategy: KDEValleys})
	if err != nil {
		t.Fatal(err)
	}
	if nb := b.Cols[0].NumBins(); nb != 2 {
		t.Fatalf("two distinct values in %d bins, want 2", nb)
	}
	if b.Codes[0][0] == b.Codes[0][3] {
		t.Fatal("1 and 9 share a bin")
	}
}
