package binning

import (
	"math/rand"
	"testing"

	"subtab/internal/table"
)

// TestBinningDeterministic: identical inputs and seeds produce identical
// binnings — required for reproducible pipelines.
func TestBinningDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 800
	vals := make([]float64, n)
	cats := make([]string, n)
	for i := range vals {
		vals[i] = rng.NormFloat64()*10 + float64(i%3)*100
		cats[i] = string(rune('a' + rng.Intn(8)))
	}
	build := func() *Binned {
		tab := table.New("t")
		if err := tab.AddColumn(table.NewNumeric("x", append([]float64(nil), vals...))); err != nil {
			t.Fatal(err)
		}
		if err := tab.AddColumn(table.NewCategorical("c", append([]string(nil), cats...))); err != nil {
			t.Fatal(err)
		}
		b, err := Bin(tab, Options{MaxBins: 4, Strategy: KDEValleys, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := build(), build()
	if a.NumItems() != b.NumItems() {
		t.Fatalf("item counts differ: %d vs %d", a.NumItems(), b.NumItems())
	}
	for c := range a.Cols {
		if len(a.Cols[c].Labels) != len(b.Cols[c].Labels) {
			t.Fatalf("col %d label counts differ", c)
		}
		for i := range a.Cols[c].Labels {
			if a.Cols[c].Labels[i] != b.Cols[c].Labels[i] {
				t.Fatalf("col %d label %d differs: %q vs %q", c, i, a.Cols[c].Labels[i], b.Cols[c].Labels[i])
			}
		}
		for r := 0; r < n; r++ {
			if a.Codes[c][r] != b.Codes[c][r] {
				t.Fatalf("col %d row %d code differs", c, r)
			}
		}
	}
}

// TestKDESampleCapRespected: KDE binning over a huge column must not read
// more than SampleSize values into the estimator (indirectly: it still
// terminates fast and produces valid bins).
func TestKDESampleCapRespected(t *testing.T) {
	n := 50_000
	vals := make([]float64, n)
	rng := rand.New(rand.NewSource(9))
	for i := range vals {
		vals[i] = float64(i%2)*1000 + rng.Float64()
	}
	tab := table.New("t")
	if err := tab.AddColumn(table.NewNumeric("x", vals)); err != nil {
		t.Fatal(err)
	}
	b, err := Bin(tab, Options{MaxBins: 5, Strategy: KDEValleys, SampleSize: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cb := b.Cols[0]
	// The two gapped modes must land in different bins.
	if cb.BinOfNum(0.5) == cb.BinOfNum(1000.5) {
		t.Fatalf("modes not separated with capped sample: cuts %v", cb.Cuts)
	}
}
