package binning

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"subtab/internal/table"
)

func numericTable(t *testing.T, name string, vals []float64) *table.Table {
	t.Helper()
	tab := table.New("t")
	if err := tab.AddColumn(table.NewNumeric(name, vals)); err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestQuantileBinning(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	tab := numericTable(t, "x", vals)
	b, err := Bin(tab, Options{MaxBins: 4, Strategy: Quantile})
	if err != nil {
		t.Fatal(err)
	}
	cb := b.Cols[0]
	if cb.NumBins() != 4 {
		t.Fatalf("bins = %d, want 4", cb.NumBins())
	}
	if cb.MissingBin != -1 {
		t.Fatal("no missing bin expected")
	}
	// Roughly equal-frequency bins.
	counts := make([]int, 4)
	for r := 0; r < 100; r++ {
		counts[b.Codes[0][r]]++
	}
	for i, c := range counts {
		if c < 20 || c > 30 {
			t.Fatalf("bin %d count = %d (counts %v)", i, c, counts)
		}
	}
}

func TestEqualWidthBinning(t *testing.T) {
	tab := numericTable(t, "x", []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 10})
	b, err := Bin(tab, Options{MaxBins: 5, Strategy: EqualWidth})
	if err != nil {
		t.Fatal(err)
	}
	cb := b.Cols[0]
	if len(cb.Cuts) != 4 {
		t.Fatalf("cuts = %v", cb.Cuts)
	}
	if cb.Cuts[0] != 2 || cb.Cuts[3] != 8 {
		t.Fatalf("cuts = %v", cb.Cuts)
	}
}

func TestKDEBinningBimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 0, 600)
	for i := 0; i < 300; i++ {
		vals = append(vals, rng.NormFloat64())
		vals = append(vals, 20+rng.NormFloat64())
	}
	tab := numericTable(t, "x", vals)
	b, err := Bin(tab, Options{MaxBins: 5, Strategy: KDEValleys, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cb := b.Cols[0]
	// The valley should split the two modes: values near 0 and near 20 land
	// in different bins.
	lowBin := cb.BinOfNum(0)
	highBin := cb.BinOfNum(20)
	if lowBin == highBin {
		t.Fatalf("modes not separated: cuts = %v", cb.Cuts)
	}
}

func TestKDEFallbackUniform(t *testing.T) {
	// Uniform data has no interior valleys; must fall back to quantiles.
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i % 100)
	}
	tab := numericTable(t, "x", vals)
	b, err := Bin(tab, Options{MaxBins: 5, Strategy: KDEValleys, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Cols[0].NumBins(); got < 2 {
		t.Fatalf("bins = %d, want >= 2", got)
	}
}

func TestMissingNumericGetsOwnBin(t *testing.T) {
	tab := numericTable(t, "x", []float64{1, 2, math.NaN(), 4, 5})
	b, err := Bin(tab, Options{MaxBins: 3, Strategy: Quantile})
	if err != nil {
		t.Fatal(err)
	}
	cb := b.Cols[0]
	if cb.MissingBin < 0 {
		t.Fatal("missing bin expected")
	}
	if cb.Labels[cb.MissingBin] != MissingLabel {
		t.Fatalf("missing label = %q", cb.Labels[cb.MissingBin])
	}
	if int(b.Codes[0][2]) != cb.MissingBin {
		t.Fatal("NaN row should map to missing bin")
	}
}

func TestAllMissingNumeric(t *testing.T) {
	tab := numericTable(t, "x", []float64{math.NaN(), math.NaN()})
	b, err := Bin(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cb := b.Cols[0]
	if cb.NumBins() != 1 || cb.MissingBin != 0 {
		t.Fatalf("all-missing column bins = %+v", cb)
	}
}

func TestConstantNumeric(t *testing.T) {
	tab := numericTable(t, "x", []float64{7, 7, 7})
	b, err := Bin(tab, Options{MaxBins: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Cols[0].NumBins(); got != 1 {
		t.Fatalf("constant column bins = %d", got)
	}
}

func TestCategoricalSmall(t *testing.T) {
	tab := table.New("t")
	if err := tab.AddColumn(table.NewCategorical("airline", []string{"AA", "B6", "AA", "DL", "AA", "B6"})); err != nil {
		t.Fatal(err)
	}
	b, err := Bin(tab, Options{MaxBins: 5})
	if err != nil {
		t.Fatal(err)
	}
	cb := b.Cols[0]
	if cb.NumBins() != 3 {
		t.Fatalf("bins = %d (%v)", cb.NumBins(), cb.Labels)
	}
	// Frequency order: AA (3), B6 (2), DL (1).
	if cb.Labels[0] != "AA" || cb.Labels[1] != "B6" || cb.Labels[2] != "DL" {
		t.Fatalf("labels = %v", cb.Labels)
	}
}

func TestCategoricalOtherGrouping(t *testing.T) {
	vals := []string{"a", "a", "a", "b", "b", "c", "d", "e", "f", "g"}
	tab := table.New("t")
	if err := tab.AddColumn(table.NewCategorical("x", vals)); err != nil {
		t.Fatal(err)
	}
	b, err := Bin(tab, Options{MaxBins: 3})
	if err != nil {
		t.Fatal(err)
	}
	cb := b.Cols[0]
	if cb.NumBins() != 3 {
		t.Fatalf("bins = %d (%v)", cb.NumBins(), cb.Labels)
	}
	if cb.Labels[2] != "other" {
		t.Fatalf("labels = %v", cb.Labels)
	}
	// "c".."g" all map to the other bin.
	col := tab.Column("x")
	for r := 5; r < 10; r++ {
		if int(b.Codes[0][r]) != 2 {
			t.Fatalf("row %d (%s) bin = %d", r, col.CellString(r), b.Codes[0][r])
		}
	}
}

func TestCategoricalMissing(t *testing.T) {
	tab := table.New("t")
	if err := tab.AddColumn(table.NewCategorical("x", []string{"a", "", "b"})); err != nil {
		t.Fatal(err)
	}
	b, err := Bin(tab, Options{MaxBins: 5})
	if err != nil {
		t.Fatal(err)
	}
	cb := b.Cols[0]
	if cb.MissingBin < 0 {
		t.Fatal("missing bin expected")
	}
	if int(b.Codes[0][1]) != cb.MissingBin {
		t.Fatal("missing cell should map to missing bin")
	}
}

func TestItemIDs(t *testing.T) {
	tab := table.New("t")
	if err := tab.AddColumn(table.NewNumeric("num", []float64{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn(table.NewCategorical("cat", []string{"x", "y", "x", "y"})); err != nil {
		t.Fatal(err)
	}
	b, err := Bin(tab, Options{MaxBins: 2, Strategy: Quantile})
	if err != nil {
		t.Fatal(err)
	}
	if b.NumItems() != 4 {
		t.Fatalf("items = %d, want 4", b.NumItems())
	}
	// Item ids partition by column.
	for c := 0; c < 2; c++ {
		for r := 0; r < 4; r++ {
			item := b.Item(c, r)
			if b.ColOfItem(item) != c {
				t.Fatalf("ColOfItem(%d) = %d, want %d", item, b.ColOfItem(item), c)
			}
			if b.BinOfItem(item) != int(b.Codes[c][r]) {
				t.Fatal("BinOfItem mismatch")
			}
		}
	}
	label := b.ItemLabel(b.Item(1, 0))
	if !strings.HasPrefix(label, "cat=") {
		t.Fatalf("label = %q", label)
	}
	if got := b.CellLabel(1, 0); got != "x" {
		t.Fatalf("CellLabel = %q", got)
	}
}

func TestItemOf(t *testing.T) {
	tab := table.New("t")
	if err := tab.AddColumn(table.NewNumeric("a", []float64{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn(table.NewNumeric("b", []float64{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	b, err := Bin(tab, Options{MaxBins: 2, Strategy: Quantile})
	if err != nil {
		t.Fatal(err)
	}
	if b.ItemOf(0, 0) != 0 {
		t.Fatalf("ItemOf(0,0) = %d", b.ItemOf(0, 0))
	}
	if b.ItemOf(1, 0) != int32(b.Cols[0].NumBins()) {
		t.Fatalf("ItemOf(1,0) = %d", b.ItemOf(1, 0))
	}
}

func TestBinOfNumBoundaries(t *testing.T) {
	cb := ColumnBins{Cuts: []float64{10, 20}}
	cases := []struct {
		v    float64
		want int
	}{
		{5, 0}, {10, 0}, {10.5, 1}, {20, 1}, {25, 2},
	}
	for _, c := range cases {
		if got := cb.BinOfNum(c.v); got != c.want {
			t.Errorf("BinOfNum(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if KDEValleys.String() != "kde" || Quantile.String() != "quantile" || EqualWidth.String() != "equal-width" {
		t.Fatal("strategy names")
	}
	if Strategy(42).String() != "Strategy(42)" {
		t.Fatal("unknown strategy name")
	}
}

func TestUnknownStrategyError(t *testing.T) {
	tab := numericTable(t, "x", []float64{1, 2, 3})
	if _, err := Bin(tab, Options{Strategy: Strategy(99)}); err == nil {
		t.Fatal("unknown strategy should error")
	}
}

// Property: every non-missing value maps to a bin in range, missing values
// map to the missing bin, and the number of bins respects MaxBins+1.
func TestPropPartition(t *testing.T) {
	f := func(raw []float64, maxBins uint8) bool {
		mb := int(maxBins%8) + 2
		vals := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsInf(v, 0) {
				v = 0
			}
			vals[i] = v
		}
		if len(vals) == 0 {
			return true
		}
		tab := table.New("t")
		if err := tab.AddColumn(table.NewNumeric("x", vals)); err != nil {
			return false
		}
		for _, strat := range []Strategy{Quantile, EqualWidth, KDEValleys} {
			b, err := Bin(tab, Options{MaxBins: mb, Strategy: strat, Seed: 3})
			if err != nil {
				return false
			}
			cb := b.Cols[0]
			if cb.NumBins() > mb+1 {
				return false
			}
			for r, v := range vals {
				bin := int(b.Codes[0][r])
				if bin < 0 || bin >= cb.NumBins() {
					return false
				}
				if math.IsNaN(v) != (bin == cb.MissingBin) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: numeric binning is monotone — larger values land in equal or
// later bins.
func TestPropMonotoneBins(t *testing.T) {
	f := func(raw []float64) bool {
		vals := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) < 2 {
			return true
		}
		tab := table.New("t")
		if err := tab.AddColumn(table.NewNumeric("x", vals)); err != nil {
			return false
		}
		b, err := Bin(tab, Options{MaxBins: 4, Strategy: Quantile})
		if err != nil {
			return false
		}
		cb := b.Cols[0]
		for i := 0; i < len(vals); i++ {
			for j := 0; j < len(vals); j++ {
				if vals[i] < vals[j] && cb.BinOfNum(vals[i]) > cb.BinOfNum(vals[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMixedTableGlobalItems(t *testing.T) {
	tab := table.New("t")
	cols := []struct {
		name string
		num  bool
	}{{"a", true}, {"b", false}, {"c", true}}
	for _, c := range cols {
		if c.num {
			if err := tab.AddColumn(table.NewNumeric(c.name, []float64{1, 2, 3, 4, 5, 6})); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := tab.AddColumn(table.NewCategorical(c.name, []string{"x", "y", "z", "x", "y", "z"})); err != nil {
				t.Fatal(err)
			}
		}
	}
	b, err := Bin(tab, Options{MaxBins: 3, Strategy: Quantile})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, cb := range b.Cols {
		total += cb.NumBins()
	}
	if b.NumItems() != total {
		t.Fatalf("NumItems = %d, want %d", b.NumItems(), total)
	}
	// Item ids are dense and non-overlapping.
	seen := map[int32]bool{}
	for c := range b.Cols {
		for bin := 0; bin < b.Cols[c].NumBins(); bin++ {
			id := b.ItemOf(c, bin)
			if seen[id] {
				t.Fatalf("duplicate item id %d", id)
			}
			seen[id] = true
			if id < 0 || int(id) >= b.NumItems() {
				t.Fatalf("item id %d out of range", id)
			}
		}
	}
}
