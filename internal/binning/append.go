package binning

import (
	"fmt"

	"subtab/internal/table"
)

// AppendStats reports what an incremental binning extension observed about
// the appended rows. The caller (core.Model.Append) uses it to decide
// whether the incremental result is trustworthy or the table has drifted far
// enough that a full re-bin is warranted.
type AppendStats struct {
	// Drift[c] measures how far column c's overall bin distribution moved
	// because of the append: the total-variation distance between the
	// pre-existing rows' distribution and the concatenated table's, which
	// equals ChunkDrift[c] scaled by the chunk's share of the result
	// (Δn/(n+Δn)). This is the quantity to threshold a re-bin on — it asks
	// "are the bin boundaries stale for the table we now have?", so a tiny
	// chunk can never trip it by sampling noise alone, while a large
	// divergent chunk (or appending to an empty table) scores high.
	Drift []float64
	// ChunkDrift[c] is the unscaled total-variation distance between the
	// appended rows' own bin distribution and the pre-existing rows' (0 =
	// identical, 1 = disjoint) — diagnostic: high chunk drift with low
	// Drift means the chunk is unusual but too small to matter yet.
	ChunkDrift []float64
	// MaxDrift / MaxDriftCol locate the worst-drifting column (by Drift).
	MaxDrift    float64
	MaxDriftCol string
	// NewCategories counts dictionary entries that did not exist when the
	// binning was computed; their rows are folded into the last non-missing
	// bin ("other" when present), which is lossy until a re-bin runs.
	NewCategories int
	// RebinReason is non-empty when the existing binning structurally cannot
	// absorb the appended rows — a missing value in a column that has no
	// missing bin, or a real value in a column whose only bin is the missing
	// bin. Adding a bin would renumber the global item-id space that the
	// embedding and every persisted model are keyed on, so these cases force
	// a full re-bin; AppendRows then returns a nil Binned.
	RebinReason string
	// AppendedCounts[c][bin] counts the appended rows per bin, so callers
	// holding cumulative counts (core.Model) can update them without
	// re-scanning the table.
	AppendedCounts [][]int64
}

// AppendRows extends an existing binning over the concatenated table t,
// whose first firstNew rows are exactly old.T's rows and whose remainder is
// new. Bin boundaries are reused as-is: numeric cuts stay fixed, categorical
// dictionaries may have grown (new codes map to the last non-missing bin),
// and the global item-id space is unchanged — which is what lets the
// embedding, the mined rules and every downstream cache survive the append.
//
// oldCounts, when non-nil, must be the per-column per-bin counts of the
// pre-existing rows (as maintained by core.Model); passing nil makes
// AppendRows recompute them with one scan of the old codes. The returned
// Binned shares old's ColumnBins values (cuts, labels) but owns fresh code
// slices, so old remains fully usable by concurrent readers.
//
// When the appended rows are structurally incompatible with the binning
// (see AppendStats.RebinReason) the returned Binned is nil and the caller
// must fall back to a full Bin of t.
func AppendRows(old *Binned, t *table.Table, firstNew int, oldCounts [][]int64) (*Binned, AppendStats, error) {
	var stats AppendStats
	if t.NumCols() != len(old.Cols) {
		return nil, stats, fmt.Errorf("binning: append: table has %d columns, binning has %d", t.NumCols(), len(old.Cols))
	}
	if firstNew != old.NumRows() {
		return nil, stats, fmt.Errorf("binning: append: %d pre-existing rows, binning covers %d", firstNew, old.NumRows())
	}
	n := t.NumRows()
	if n < firstNew {
		return nil, stats, fmt.Errorf("binning: append: concatenated table has %d rows, fewer than the %d pre-existing", n, firstNew)
	}
	if oldCounts != nil && len(oldCounts) != len(old.Cols) {
		return nil, stats, fmt.Errorf("binning: append: %d count columns for %d binnings", len(oldCounts), len(old.Cols))
	}

	// Store-backed binnings (out-of-core selection) materialize their codes
	// once here: the append result owns fresh inline code slices either way.
	oldCodes, err := old.MaterializedCodes()
	if err != nil {
		return nil, stats, fmt.Errorf("binning: append: %w", err)
	}

	nc := len(old.Cols)
	stats.Drift = make([]float64, nc)
	stats.ChunkDrift = make([]float64, nc)
	stats.AppendedCounts = make([][]int64, nc)
	b := &Binned{T: t}
	for c := 0; c < nc; c++ {
		cb := old.Cols[c] // value copy: Labels/Cuts shared, both immutable
		col := t.ColumnAt(c)
		if col.Name != cb.Col || col.Kind != cb.Kind {
			return nil, stats, fmt.Errorf("binning: append: column %d is %q (%v), binning has %q (%v)",
				c, col.Name, col.Kind, cb.Col, cb.Kind)
		}
		if cb.Kind == table.Categorical {
			// The concatenated table's dictionary may have grown; extend the
			// code→bin map (on a copy) so BinOfCat never hits its fallback
			// heuristics for codes we can account for here.
			dictSize := 0
			if col.Dict != nil {
				dictSize = col.Dict.Size()
			}
			if dictSize > len(cb.CatToBin) {
				stats.NewCategories += dictSize - len(cb.CatToBin)
				ext := make([]int, dictSize)
				copy(ext, cb.CatToBin)
				last := cb.lastNonMissingBin()
				for i := len(cb.CatToBin); i < dictSize; i++ {
					ext[i] = last
				}
				cb.CatToBin = ext
			}
		}
		onlyMissing := cb.NumBins() == 1 && cb.MissingBin == 0

		codes := make([]uint16, n)
		copy(codes, oldCodes[c])
		counts := make([]int64, cb.NumBins())
		for r := firstNew; r < n; r++ {
			var bin int
			switch {
			case col.Missing(r):
				if cb.MissingBin < 0 {
					stats.RebinReason = fmt.Sprintf("column %q: missing value appended to a column binned without a missing bin", cb.Col)
					return nil, stats, nil
				}
				bin = cb.MissingBin
			case onlyMissing:
				stats.RebinReason = fmt.Sprintf("column %q: value appended to a column binned as all-missing", cb.Col)
				return nil, stats, nil
			case cb.Kind == table.Numeric:
				bin = cb.BinOfNum(col.Nums[r])
			default:
				bin = cb.BinOfCat(col.Cats[r])
			}
			if bin < 0 {
				stats.RebinReason = fmt.Sprintf("column %q: appended value has no usable bin", cb.Col)
				return nil, stats, nil
			}
			codes[r] = uint16(bin)
			counts[bin]++
		}
		stats.AppendedCounts[c] = counts

		oc := make([]int64, cb.NumBins())
		if oldCounts != nil {
			if len(oldCounts[c]) != cb.NumBins() {
				return nil, stats, fmt.Errorf("binning: append: column %q has %d counts, %d bins", cb.Col, len(oldCounts[c]), cb.NumBins())
			}
			copy(oc, oldCounts[c])
		} else {
			for r := 0; r < firstNew; r++ {
				oc[codes[r]]++
			}
		}
		stats.ChunkDrift[c] = totalVariation(oc, counts, firstNew, n-firstNew)
		// Exact identity: p_concat − p_old = Δn/(n+Δn) · (p_chunk − p_old),
		// so the table-level shift is the chunk drift scaled by the chunk's
		// share of the concatenated table.
		if n > firstNew {
			stats.Drift[c] = stats.ChunkDrift[c] * float64(n-firstNew) / float64(n)
		}
		if stats.Drift[c] > stats.MaxDrift || stats.MaxDriftCol == "" {
			stats.MaxDrift, stats.MaxDriftCol = stats.Drift[c], cb.Col
		}

		b.colBase = append(b.colBase, int32(b.numItems))
		b.numItems += cb.NumBins()
		b.Cols = append(b.Cols, cb)
		b.Codes = append(b.Codes, codes)
	}
	return b, stats, nil
}

// totalVariation is the TV distance between the bin distributions implied by
// two count vectors: 0.5 * Σ|p_old - p_new|. An empty old side (appending to
// an empty table) counts as maximal drift when anything was appended; an
// empty new side drifts nothing.
func totalVariation(oldCounts, newCounts []int64, oldN, newN int) float64 {
	if newN == 0 {
		return 0
	}
	if oldN == 0 {
		return 1
	}
	s := 0.0
	invOld, invNew := 1/float64(oldN), 1/float64(newN)
	for i := range oldCounts {
		d := float64(oldCounts[i])*invOld - float64(newCounts[i])*invNew
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s / 2
}
