package binning

import (
	"fmt"

	"subtab/internal/table"
)

// CodeSource provides chunked, read-only access to a table's per-column
// bin codes. It is the one interface behind which the selection data path
// (package core) reads codes, so every stage — the stratified sampler, the
// tuple-vector gather, the diversity re-rank, the bin-count scan — runs
// identically whether the codes live in memory (a Binned's inline Codes)
// or in an on-disk store (package codestore, which implements this
// interface structurally). Implementations must be safe for concurrent
// use given distinct scratch slices.
type CodeSource interface {
	NumRows() int
	NumCols() int
	// BlockRows is the rows-per-block granularity (the last block may be
	// short); NumBlocks is the block count.
	BlockRows() int
	NumBlocks() int
	// ColumnBlock returns column c's codes for block blk, decoding into
	// scratch when the codes are not already resident.
	ColumnBlock(c, blk int, scratch []uint16) []uint16
	// Code returns one cell's code (random access).
	Code(c, r int) uint16
}

// PartialCodeSource is a CodeSource that may be missing row ranges: a
// sharded source whose shards are partly owned by remote peers (package
// shard). BlockAvailable reports whether block blk is locally readable;
// full-scan consumers (attach-time validation) skip unavailable blocks,
// and the selection path gates partial sources onto the scatter/gather
// sampler instead of reading them directly.
type PartialCodeSource interface {
	CodeSource
	BlockAvailable(blk int) bool
}

// CodeSink consumes column code chunks — the export half of the
// out-of-core path (codestore.Writer implements it).
type CodeSink interface {
	AppendColumns(chunk [][]uint16) error
}

// inlineSource adapts a Binned's in-memory codes to CodeSource: one block
// spanning every row, returned as a view (no copy).
type inlineSource struct{ b *Binned }

func (s inlineSource) NumRows() int { return s.b.NumRows() }
func (s inlineSource) NumCols() int { return len(s.b.Cols) }
func (s inlineSource) BlockRows() int {
	if n := s.b.NumRows(); n > 0 {
		return n
	}
	return 1
}
func (s inlineSource) NumBlocks() int {
	if s.b.NumRows() > 0 {
		return 1
	}
	return 0
}
func (s inlineSource) ColumnBlock(c, blk int, scratch []uint16) []uint16 { return s.b.Codes[c] }
func (s inlineSource) Code(c, r int) uint16                              { return s.b.Codes[c][r] }

// Source returns the CodeSource for this binned table: the inline codes
// when they are resident, otherwise the attached store.
func (b *Binned) Source() CodeSource {
	if b.Codes != nil {
		return inlineSource{b}
	}
	return b.store
}

// HasInlineCodes reports whether the bin codes are resident in memory.
// Store-backed tables (codes dropped after AttachStore) answer false; the
// selection path works either way, but operations that need random access
// to every cell at full speed (rule mining, incremental append) first
// materialize via MaterializedCodes.
func (b *Binned) HasInlineCodes() bool { return b.Codes != nil }

// Code returns the bin code of the cell (column c, row r), from the inline
// codes or the attached store.
func (b *Binned) Code(c, r int) uint16 {
	if b.Codes != nil {
		return b.Codes[c][r]
	}
	return b.store.Code(c, r)
}

// AttachStore attaches an external code source (an opened codestore) to
// the binned table after validating its geometry and — with one chunked
// scan — that every stored code addresses an existing bin. Once attached,
// DropInlineCodes may release the in-memory codes; the selection path then
// reads blocks out of the store.
func (b *Binned) AttachStore(cs CodeSource) error {
	if cs == nil {
		return fmt.Errorf("binning: attach: nil code source")
	}
	if cs.NumRows() != b.NumRows() || cs.NumCols() != len(b.Cols) {
		return fmt.Errorf("binning: attach: store is %dx%d, binned table is %dx%d",
			cs.NumRows(), cs.NumCols(), b.NumRows(), len(b.Cols))
	}
	if err := b.validateSource(cs); err != nil {
		return err
	}
	b.store = cs
	return nil
}

// validateSource streams every block once and checks each code against the
// owning column's bin count, so a swapped or corrupted store cannot index
// labels or embeddings out of range later. Partial sources are validated
// over the blocks they can read — remote shards are each validated by the
// peer that owns them.
func (b *Binned) validateSource(cs CodeSource) error {
	partial, _ := cs.(PartialCodeSource)
	scratch := make([]uint16, min(cs.BlockRows(), cs.NumRows()))
	for c := range b.Cols {
		nb := uint16(b.Cols[c].NumBins())
		for blk := 0; blk < cs.NumBlocks(); blk++ {
			if partial != nil && !partial.BlockAvailable(blk) {
				continue
			}
			for i, code := range cs.ColumnBlock(c, blk, scratch) {
				if code >= nb {
					return fmt.Errorf("binning: attach: column %d row %d has code %d, column has %d bins",
						c, blk*cs.BlockRows()+i, code, nb)
				}
			}
		}
	}
	return nil
}

// DropInlineCodes releases the in-memory codes of a store-backed table,
// leaving the attached store as the only code source. It must not race
// concurrent readers of this Binned (attach and drop during setup, before
// the model starts serving).
func (b *Binned) DropInlineCodes() error {
	if b.store == nil {
		return fmt.Errorf("binning: cannot drop inline codes without an attached store")
	}
	b.Codes = nil
	return nil
}

// MaterializedCodes returns all per-column codes as in-memory slices: the
// inline codes when resident (no copy), otherwise one chunked read of the
// whole store. It never mutates the Binned, so concurrent selections can
// keep streaming from the store while a caller (rule mining, append)
// materializes its own copy.
func (b *Binned) MaterializedCodes() ([][]uint16, error) {
	if b.Codes != nil {
		return b.Codes, nil
	}
	if b.store == nil {
		return nil, fmt.Errorf("binning: no inline codes and no attached store")
	}
	cs := b.store
	n := b.NumRows()
	out := make([][]uint16, len(b.Cols))
	for c := range out {
		col := make([]uint16, 0, n)
		for blk := 0; blk < cs.NumBlocks(); blk++ {
			col = append(col, cs.ColumnBlock(c, blk, nil)...)
		}
		out[c] = col
	}
	return out, nil
}

// ExportCodes streams the table's codes into sink in chunks of chunkRows
// rows (<= 0 picks a block-sized chunk). It works from the inline codes or
// from an attached store, so a store can be re-exported (compaction, a
// different block size) without materializing the table.
func (b *Binned) ExportCodes(sink CodeSink, chunkRows int) error {
	src := b.Source()
	if src == nil {
		return fmt.Errorf("binning: no codes to export")
	}
	n := b.NumRows()
	if chunkRows <= 0 {
		chunkRows = min(src.BlockRows(), 1<<16)
	}
	mc := len(b.Cols)
	chunk := make([][]uint16, mc)
	scratch := make([][]uint16, mc)
	for start := 0; start < n; start += chunkRows {
		end := min(start+chunkRows, n)
		for c := 0; c < mc; c++ {
			chunk[c] = readRange(src, c, start, end, &scratch[c])
		}
		if err := sink.AppendColumns(chunk); err != nil {
			return err
		}
	}
	if n == 0 {
		// A zero-row table still exports its (empty) columns so the sink
		// records the correct column count.
		for c := 0; c < mc; c++ {
			chunk[c] = nil
		}
		return sink.AppendColumns(chunk)
	}
	return nil
}

// readRange returns column c's codes for rows [start, end), assembling
// across block boundaries into *buf when the range is not a sub-slice of
// one resident block.
func readRange(src CodeSource, c, start, end int, buf *[]uint16) []uint16 {
	br := src.BlockRows()
	if b0 := start / br; b0 == (end-1)/br {
		blk := src.ColumnBlock(c, b0, nil)
		return blk[start-b0*br : end-b0*br]
	}
	if cap(*buf) < end-start {
		*buf = make([]uint16, end-start)
	}
	out := (*buf)[:0]
	for blk := start / br; blk*br < end; blk++ {
		codes := src.ColumnBlock(c, blk, nil)
		lo := max(start-blk*br, 0)
		hi := min(end-blk*br, len(codes))
		out = append(out, codes[lo:hi]...)
	}
	*buf = out
	return out
}

// RestoreWithStore rebuilds a Binned whose codes live in an external store
// (package modelio's v5 external-reference load path): the per-column
// binnings are given inline, the codes stay in cs. Geometry and code
// ranges are validated exactly as in AttachStore.
func RestoreWithStore(t *table.Table, cols []ColumnBins, cs CodeSource) (*Binned, error) {
	if len(cols) != t.NumCols() {
		return nil, fmt.Errorf("binning: restore: %d column binnings for a %d-column table", len(cols), t.NumCols())
	}
	b := &Binned{T: t, Cols: cols}
	for c := range cols {
		nb := cols[c].NumBins()
		if nb == 0 {
			return nil, fmt.Errorf("binning: restore: column %d has no bins", c)
		}
		b.colBase = append(b.colBase, int32(b.numItems))
		b.numItems += nb
	}
	if err := b.AttachStore(cs); err != nil {
		return nil, err
	}
	return b, nil
}
