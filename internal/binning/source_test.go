// Tests for the CodeSource abstraction: the inline view, store attachment
// validation, export/import round trips and materialization.
package binning_test

import (
	"path/filepath"
	"testing"

	"subtab/internal/binning"
	"subtab/internal/codestore"
	"subtab/internal/datagen"
)

func testBinned(t *testing.T) *binning.Binned {
	t.Helper()
	ds := datagen.Generic(500, 5, 4, 3)
	b, err := binning.Bin(ds.T, binning.Options{MaxBins: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// storeFor exports b's codes to a fresh code store with small blocks (so
// block logic is actually exercised) and opens it.
func storeFor(t *testing.T, b *binning.Binned, blockRows int) *codestore.Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "codes")
	w, err := codestore.Create(path, b.NumCols(), blockRows)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ExportCodes(w, 13); err != nil { // ragged chunks across blocks
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := codestore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestInlineSourceMatchesCodes pins the in-memory CodeSource view.
func TestInlineSourceMatchesCodes(t *testing.T) {
	b := testBinned(t)
	src := b.Source()
	if src.NumRows() != b.NumRows() || src.NumCols() != b.NumCols() {
		t.Fatalf("inline source is %dx%d, binned is %dx%d", src.NumRows(), src.NumCols(), b.NumRows(), b.NumCols())
	}
	for c := 0; c < b.NumCols(); c++ {
		seen := 0
		for blk := 0; blk < src.NumBlocks(); blk++ {
			for i, code := range src.ColumnBlock(c, blk, nil) {
				r := blk*src.BlockRows() + i
				if code != b.Codes[c][r] {
					t.Fatalf("col %d row %d: source %d, codes %d", c, r, code, b.Codes[c][r])
				}
				if src.Code(c, r) != code {
					t.Fatalf("col %d row %d: Code disagrees with ColumnBlock", c, r)
				}
				seen++
			}
		}
		if seen != b.NumRows() {
			t.Fatalf("col %d blocks covered %d rows, want %d", c, seen, b.NumRows())
		}
	}
}

// TestStoreRoundTrip pins export → open → attach → drop: every cell must
// read back identically through the store, and materialization must
// reproduce the original codes.
func TestStoreRoundTrip(t *testing.T) {
	b := testBinned(t)
	want := make([][]uint16, b.NumCols())
	for c := range want {
		want[c] = append([]uint16(nil), b.Codes[c]...)
	}
	s := storeFor(t, b, 64)
	if err := b.AttachStore(s); err != nil {
		t.Fatal(err)
	}
	if err := b.DropInlineCodes(); err != nil {
		t.Fatal(err)
	}
	if b.HasInlineCodes() {
		t.Fatal("codes still inline after drop")
	}
	for c := range want {
		for r := range want[c] {
			if got := b.Code(c, r); got != want[c][r] {
				t.Fatalf("store-backed Code(%d,%d) = %d, want %d", c, r, got, want[c][r])
			}
		}
	}
	mat, err := b.MaterializedCodes()
	if err != nil {
		t.Fatal(err)
	}
	for c := range want {
		for r := range want[c] {
			if mat[c][r] != want[c][r] {
				t.Fatalf("materialized (%d,%d) = %d, want %d", c, r, mat[c][r], want[c][r])
			}
		}
	}
	// Items route through the store too.
	if got, wantItem := b.Item(1, 7), b.ItemOf(1, int(want[1][7])); got != wantItem {
		t.Fatalf("Item(1,7) = %d, want %d", got, wantItem)
	}
}

// TestAttachValidation pins the attach-time checks: wrong geometry and
// out-of-range codes are rejected, and dropping without a store fails.
func TestAttachValidation(t *testing.T) {
	b := testBinned(t)
	if err := b.DropInlineCodes(); err == nil {
		t.Fatal("DropInlineCodes without a store should fail")
	}
	other := func() *binning.Binned {
		ds := datagen.Generic(100, 5, 4, 3) // fewer rows
		ob, err := binning.Bin(ds.T, binning.Options{MaxBins: 4, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return ob
	}()
	if err := b.AttachStore(storeFor(t, other, 32)); err == nil {
		t.Fatal("attach accepted a store with the wrong row count")
	}
	// A store whose codes exceed the column's bin count must be rejected:
	// synthesize one by writing inflated codes directly.
	path := filepath.Join(t.TempDir(), "bad.codes")
	codes := make([][]uint16, b.NumCols())
	for c := range codes {
		codes[c] = make([]uint16, b.NumRows())
		for r := range codes[c] {
			codes[c][r] = uint16(b.Cols[c].NumBins()) // one past the last bin
		}
	}
	if err := codestore.WriteFile(path, codes, 64); err != nil {
		t.Fatal(err)
	}
	s, err := codestore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := b.AttachStore(s); err == nil {
		t.Fatal("attach accepted out-of-range codes")
	}
}

// TestRestoreWithStore pins the modelio load path's constructor.
func TestRestoreWithStore(t *testing.T) {
	b := testBinned(t)
	want := make([][]uint16, b.NumCols())
	for c := range want {
		want[c] = append([]uint16(nil), b.Codes[c]...)
	}
	s := storeFor(t, b, 128)
	nb, err := binning.RestoreWithStore(b.T, b.Cols, s)
	if err != nil {
		t.Fatal(err)
	}
	if nb.HasInlineCodes() {
		t.Fatal("RestoreWithStore produced inline codes")
	}
	if nb.NumItems() != b.NumItems() {
		t.Fatalf("restored item space %d, want %d", nb.NumItems(), b.NumItems())
	}
	for c := range want {
		for r := 0; r < len(want[c]); r += 17 {
			if nb.Code(c, r) != want[c][r] {
				t.Fatalf("restored Code(%d,%d) = %d, want %d", c, r, nb.Code(c, r), want[c][r])
			}
		}
	}
}
