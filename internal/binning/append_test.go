package binning

import (
	"math"
	"testing"

	"subtab/internal/table"
)

// mixedTable builds rows of a numeric and a categorical column with an
// optional NaN and a controllable category mix.
func mixedTable(t *testing.T, nums []float64, cats []string) *table.Table {
	t.Helper()
	tab := table.New("t")
	if err := tab.AddColumn(table.NewNumeric("num", nums)); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn(table.NewCategorical("cat", cats)); err != nil {
		t.Fatal(err)
	}
	return tab
}

func concat(t *testing.T, a, b *table.Table) *table.Table {
	t.Helper()
	out, err := a.AppendRows(b)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendRowsSameDistributionCodesMatchFullBin(t *testing.T) {
	nums := make([]float64, 200)
	cats := make([]string, 200)
	for i := range nums {
		nums[i] = float64(i % 10)
		cats[i] = []string{"a", "b", "c"}[i%3]
	}
	old := mixedTable(t, nums, cats)
	b, err := Bin(old, Options{MaxBins: 5, Strategy: Quantile})
	if err != nil {
		t.Fatal(err)
	}
	// Appended rows drawn from the same distribution.
	delta := mixedTable(t, []float64{1, 4, 7, 9}, []string{"a", "c", "b", "a"})
	cat := concat(t, old, delta)
	nb, stats, err := AppendRows(b, cat, old.NumRows(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if nb == nil {
		t.Fatalf("structural rebin: %s", stats.RebinReason)
	}
	if nb.NumItems() != b.NumItems() {
		t.Fatalf("item space changed: %d -> %d", b.NumItems(), nb.NumItems())
	}
	// Old rows keep their codes byte for byte; new rows agree with what a
	// direct Bin of the concatenated table computes (same cuts since the
	// distribution is unchanged enough for quantiles to land identically is
	// NOT guaranteed — so compare against per-value BinOfNum/BinOfCat).
	for c := range nb.Codes {
		for r := 0; r < old.NumRows(); r++ {
			if nb.Codes[c][r] != b.Codes[c][r] {
				t.Fatalf("old code changed at col %d row %d", c, r)
			}
		}
	}
	for r := old.NumRows(); r < cat.NumRows(); r++ {
		wantNum := b.Cols[0].BinOfNum(cat.ColumnAt(0).Nums[r])
		if int(nb.Codes[0][r]) != wantNum {
			t.Fatalf("row %d num bin = %d, want %d", r, nb.Codes[0][r], wantNum)
		}
		wantCat := b.Cols[1].BinOfCat(cat.ColumnAt(1).Cats[r])
		if int(nb.Codes[1][r]) != wantCat {
			t.Fatalf("row %d cat bin = %d, want %d", r, nb.Codes[1][r], wantCat)
		}
	}
	if stats.MaxDrift > 0.3 {
		t.Fatalf("same-distribution append drifted %.3f", stats.MaxDrift)
	}
	if stats.NewCategories != 0 {
		t.Fatalf("NewCategories = %d, want 0", stats.NewCategories)
	}
}

func TestAppendRowsDriftDetected(t *testing.T) {
	nums := make([]float64, 100)
	cats := make([]string, 100)
	for i := range nums {
		nums[i] = float64(i % 5)
		cats[i] = "a"
	}
	old := mixedTable(t, nums, cats)
	b, err := Bin(old, Options{MaxBins: 5, Strategy: Quantile})
	if err != nil {
		t.Fatal(err)
	}
	// A small chunk concentrated far above the old range: the chunk itself
	// is near-disjoint from the table's distribution, but at 4 rows against
	// 100 it barely moves the table — Drift (the thresholded quantity) must
	// stay proportional to the chunk's share, not the chunk's divergence.
	small := mixedTable(t, []float64{100, 101, 102, 103}, []string{"a", "a", "a", "a"})
	cat := concat(t, old, small)
	nb, stats, err := AppendRows(b, cat, old.NumRows(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if nb == nil {
		t.Fatalf("unexpected structural rebin: %s", stats.RebinReason)
	}
	if stats.ChunkDrift[0] < 0.5 {
		t.Fatalf("disjoint chunk reports chunk drift %.3f", stats.ChunkDrift[0])
	}
	if stats.MaxDrift > 0.1 {
		t.Fatalf("4 disjoint rows against 100 moved the table by %.3f; want < 0.1", stats.MaxDrift)
	}

	// The same disjoint distribution arriving as a bulk load (60% of the
	// table) moves the aggregate distribution materially.
	nums60 := make([]float64, 60)
	cats60 := make([]string, 60)
	for i := range nums60 {
		nums60[i] = 100 + float64(i%4)
		cats60[i] = "a"
	}
	bulk := mixedTable(t, nums60, cats60)
	cat = concat(t, old, bulk)
	nb, stats, err = AppendRows(b, cat, old.NumRows(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if nb == nil {
		t.Fatalf("unexpected structural rebin: %s", stats.RebinReason)
	}
	if stats.MaxDrift < 0.25 {
		t.Fatalf("bulk disjoint append moved the table by only %.3f", stats.MaxDrift)
	}
	if stats.MaxDriftCol != "num" {
		t.Fatalf("MaxDriftCol = %q, want num", stats.MaxDriftCol)
	}
}

func TestAppendRowsNewCategoryFoldsIntoLastBin(t *testing.T) {
	cats := make([]string, 60)
	for i := range cats {
		cats[i] = []string{"x", "y"}[i%2]
	}
	old := mixedTable(t, make([]float64, 60), cats)
	b, err := Bin(old, Options{MaxBins: 5})
	if err != nil {
		t.Fatal(err)
	}
	delta := mixedTable(t, []float64{0}, []string{"brand-new"})
	cat := concat(t, old, delta)
	nb, stats, err := AppendRows(b, cat, old.NumRows(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if nb == nil {
		t.Fatalf("unexpected structural rebin: %s", stats.RebinReason)
	}
	if stats.NewCategories != 1 {
		t.Fatalf("NewCategories = %d, want 1", stats.NewCategories)
	}
	// The new category lands in the last non-missing bin.
	catCol := 1
	lastBin := len(b.Cols[catCol].Labels) - 1
	if b.Cols[catCol].MissingBin == lastBin {
		lastBin--
	}
	if got := int(nb.Codes[catCol][old.NumRows()]); got != lastBin {
		t.Fatalf("new category bin = %d, want %d", got, lastBin)
	}
	// The original binning's CatToBin must not have been extended in place.
	if len(b.Cols[catCol].CatToBin) != 2 {
		t.Fatalf("source CatToBin grew to %d", len(b.Cols[catCol].CatToBin))
	}
}

func TestAppendRowsStructuralRebinOnNewMissing(t *testing.T) {
	old := mixedTable(t, []float64{1, 2, 3, 4}, []string{"a", "b", "a", "b"})
	b, err := Bin(old, Options{MaxBins: 5})
	if err != nil {
		t.Fatal(err)
	}
	if b.Cols[0].MissingBin != -1 {
		t.Fatal("setup: old column unexpectedly has a missing bin")
	}
	delta := mixedTable(t, []float64{math.NaN()}, []string{"a"})
	cat := concat(t, old, delta)
	nb, stats, err := AppendRows(b, cat, old.NumRows(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if nb != nil || stats.RebinReason == "" {
		t.Fatalf("missing value in a column without a missing bin must force a rebin (got reason %q)", stats.RebinReason)
	}
}

func TestAppendRowsStructuralRebinOnAllMissingColumn(t *testing.T) {
	old := mixedTable(t, []float64{math.NaN(), math.NaN()}, []string{"a", "b"})
	b, err := Bin(old, Options{MaxBins: 5})
	if err != nil {
		t.Fatal(err)
	}
	delta := mixedTable(t, []float64{3}, []string{"a"})
	cat := concat(t, old, delta)
	nb, stats, err := AppendRows(b, cat, old.NumRows(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if nb != nil || stats.RebinReason == "" {
		t.Fatal("value appended to an all-missing column must force a rebin")
	}
}

func TestAppendRowsCountsMatchScan(t *testing.T) {
	nums := make([]float64, 120)
	cats := make([]string, 120)
	for i := range nums {
		nums[i] = float64(i % 7)
		cats[i] = []string{"a", "b", "c", "d"}[i%4]
	}
	old := mixedTable(t, nums, cats)
	b, err := Bin(old, Options{MaxBins: 4, Strategy: Quantile})
	if err != nil {
		t.Fatal(err)
	}
	// Precomputed old counts and a nil-counts call must agree on drift.
	oldCounts := make([][]int64, len(b.Cols))
	for c := range b.Cols {
		oldCounts[c] = make([]int64, b.Cols[c].NumBins())
		for _, code := range b.Codes[c] {
			oldCounts[c][code]++
		}
	}
	delta := mixedTable(t, []float64{0, 6, 3}, []string{"a", "d", "b"})
	cat := concat(t, old, delta)
	_, statsScan, err := AppendRows(b, cat, old.NumRows(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, statsGiven, err := AppendRows(b, cat, old.NumRows(), oldCounts)
	if err != nil {
		t.Fatal(err)
	}
	for c := range statsScan.Drift {
		if statsScan.Drift[c] != statsGiven.Drift[c] {
			t.Fatalf("drift diverges at col %d: %v vs %v", c, statsScan.Drift[c], statsGiven.Drift[c])
		}
	}
}

func TestAppendRowsToEmptyTableIsMaximalDrift(t *testing.T) {
	old := mixedTable(t, nil, nil)
	b, err := Bin(old, Options{MaxBins: 5})
	if err != nil {
		t.Fatal(err)
	}
	delta := mixedTable(t, []float64{1}, []string{"a"})
	cat := concat(t, old, delta)
	nb, stats, err := AppendRows(b, cat, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// An empty table bins every column as all-missing, so real values are a
	// structural rebin; either way the caller must not trust the increment.
	if nb != nil && stats.MaxDrift < 1 {
		t.Fatalf("append to empty table: drift %.3f, want 1 or structural rebin", stats.MaxDrift)
	}
}
