package shard

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sort"

	"subtab/internal/binning"
	"subtab/internal/codestore"
)

// Source is a binning.CodeSource over N shard stores, presenting them as
// one contiguous code matrix. Blocks are virtual: uniform BlockRows-sized
// row ranges (the last may be short) assembled across shard boundaries,
// so consumers that compute blk = row/BlockRows see exactly the geometry
// a single store would give them, regardless of how the shards were cut.
//
// A Source may be partial: shards owned by remote peers have a nil store.
// Reads that touch a missing shard panic (they are programming errors —
// core gates every partial-model path through the shard sampler), and
// BlockAvailable lets attach-time validation and local scans skip what is
// not here. All methods are safe for concurrent use given distinct
// scratch, like every CodeSource.
type Source struct {
	srcs      []binning.CodeSource // per shard; nil = not local
	descs     []Desc
	starts    []int // len(srcs)+1; starts[i] is shard i's first global row
	rows      int
	cols      int
	blockRows int
	closers   []io.Closer
}

// Open opens the shards of m from dir, validating each store's geometry
// and identity checksum against its descriptor. With allowMissing, shards
// whose files do not exist are left unopened (nil) and the Source is
// partial; any other error fails the open. cols is the expected column
// count of every shard.
func Open(dir string, m *Map, cols int, allowMissing bool) (*Source, error) {
	s := &Source{
		descs:  append([]Desc(nil), m.Shards...),
		starts: m.Starts(),
		rows:   m.TotalRows(),
		cols:   cols,
		srcs:   make([]binning.CodeSource, len(m.Shards)),
	}
	for i, d := range m.Shards {
		st, err := codestore.Open(filepath.Join(dir, d.File))
		if err != nil {
			if allowMissing && errors.Is(err, fs.ErrNotExist) {
				continue
			}
			s.Close()
			return nil, fmt.Errorf("shard: opening shard %d (%s): %w", i, d.File, err)
		}
		if st.Checksum() != d.Checksum {
			st.Close()
			s.Close()
			return nil, fmt.Errorf("shard: shard %d (%s) has checksum %08x, map expects %08x", i, d.File, st.Checksum(), d.Checksum)
		}
		if st.NumRows() != d.Rows || st.NumCols() != cols || st.BlockRows() != d.BlockRows {
			st.Close()
			s.Close()
			return nil, fmt.Errorf("shard: shard %d (%s) is %dx%d at %d rows/block, map expects %dx%d at %d",
				i, d.File, st.NumRows(), st.NumCols(), st.BlockRows(), d.Rows, cols, d.BlockRows)
		}
		s.srcs[i] = st
		s.closers = append(s.closers, st)
	}
	s.initBlockRows()
	return s, nil
}

// NewSource wraps already-open per-shard sources as one Source: src i
// must hold counts[i] rows of cols columns. Used by in-process callers
// and the merge property tests; descriptors are synthesized without file
// identities, so such a Source cannot be persisted by modelio.
func NewSource(srcs []binning.CodeSource, counts []int, cols int) (*Source, error) {
	if len(srcs) != len(counts) {
		return nil, fmt.Errorf("shard: %d sources for %d counts", len(srcs), len(counts))
	}
	s := &Source{cols: cols, srcs: append([]binning.CodeSource(nil), srcs...)}
	s.starts = make([]int, len(srcs)+1)
	for i, src := range srcs {
		if counts[i] < 0 {
			return nil, fmt.Errorf("shard: negative row count for shard %d", i)
		}
		if src != nil && (src.NumRows() != counts[i] || src.NumCols() != cols) {
			return nil, fmt.Errorf("shard: shard %d is %dx%d, want %dx%d", i, src.NumRows(), src.NumCols(), counts[i], cols)
		}
		d := Desc{Rows: counts[i], BlockRows: 1}
		if src != nil {
			d.BlockRows = src.BlockRows()
		}
		s.descs = append(s.descs, d)
		s.starts[i+1] = s.starts[i] + counts[i]
	}
	s.rows = s.starts[len(srcs)]
	s.initBlockRows()
	return s, nil
}

// initBlockRows picks the virtual block granularity: the first shard's
// block size (every sink-written layout is uniform), falling back to the
// codestore default for empty maps.
func (s *Source) initBlockRows() {
	s.blockRows = codestore.DefaultBlockRows
	if len(s.descs) > 0 && s.descs[0].BlockRows > 0 {
		s.blockRows = s.descs[0].BlockRows
	}
}

// Close closes every store this Source opened (NewSource-wrapped sources
// stay the caller's to close).
func (s *Source) Close() error {
	var first error
	for _, c := range s.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.closers = nil
	return first
}

// NumShards returns the shard count.
func (s *Source) NumShards() int { return len(s.srcs) }

// ShardAvailable reports whether shard i's rows are readable locally
// (zero-row shards are vacuously available).
func (s *Source) ShardAvailable(i int) bool { return s.srcs[i] != nil || s.descs[i].Rows == 0 }

// Complete reports whether every shard is locally readable.
func (s *Source) Complete() bool {
	for i := range s.srcs {
		if !s.ShardAvailable(i) {
			return false
		}
	}
	return true
}

// ShardSource returns shard i's underlying CodeSource (nil when not
// local).
func (s *Source) ShardSource(i int) binning.CodeSource { return s.srcs[i] }

// ShardStart returns the global row id of shard i's first row.
func (s *Source) ShardStart(i int) int { return s.starts[i] }

// ShardRows returns shard i's row count.
func (s *Source) ShardRows(i int) int { return s.descs[i].Rows }

// Desc returns shard i's descriptor.
func (s *Source) Desc(i int) Desc { return s.descs[i] }

// ShardDescs returns the full descriptor list (modelio persists it as the
// v6 shard map).
func (s *Source) ShardDescs() []Desc { return s.descs }

// Map returns the shard map describing this source.
func (s *Source) Map() *Map { return &Map{Shards: append([]Desc(nil), s.descs...)} }

// NumRows returns the total row count across shards.
func (s *Source) NumRows() int { return s.rows }

// NumCols returns the column count.
func (s *Source) NumCols() int { return s.cols }

// BlockRows returns the virtual block granularity.
func (s *Source) BlockRows() int { return s.blockRows }

// NumBlocks returns the virtual block count.
func (s *Source) NumBlocks() int { return (s.rows + s.blockRows - 1) / s.blockRows }

// shardAt returns the index of the shard owning global row r (the unique
// non-empty shard with starts[i] <= r < starts[i+1]).
func (s *Source) shardAt(r int) int {
	return sort.Search(len(s.srcs), func(i int) bool { return s.starts[i+1] > r })
}

// BlockAvailable reports whether every shard overlapping virtual block
// blk is locally readable — the skip predicate for partial sources
// (binning attach validation, local scans).
func (s *Source) BlockAvailable(blk int) bool {
	start := blk * s.blockRows
	end := min(start+s.blockRows, s.rows)
	for i := s.shardAt(start); i < len(s.srcs) && s.starts[i] < end; i++ {
		if s.starts[i+1] > s.starts[i] && s.srcs[i] == nil {
			return false
		}
	}
	return true
}

// ColumnBlock assembles column c's codes for virtual block blk into
// scratch. When the block lies inside one shard and aligns with that
// shard's own block geometry (the common case: uniform layouts written by
// SplitSink with block-aligned cuts), the read delegates zero-copy to the
// shard store.
func (s *Source) ColumnBlock(c, blk int, scratch []uint16) []uint16 {
	start := blk * s.blockRows
	end := min(start+s.blockRows, s.rows)
	n := end - start
	i := s.shardAt(start)
	if sh := s.srcs[i]; sh != nil && s.starts[i+1] >= end {
		lo := start - s.starts[i]
		if sbr := sh.BlockRows(); sbr == s.blockRows && lo%sbr == 0 {
			return sh.ColumnBlock(c, lo/sbr, scratch)
		}
	}
	if cap(scratch) < n {
		scratch = make([]uint16, 0, n)
	}
	out := scratch[:0]
	var tmp []uint16
	for ; i < len(s.srcs) && s.starts[i] < end; i++ {
		lo := max(start, s.starts[i]) - s.starts[i]
		hi := min(end, s.starts[i+1]) - s.starts[i]
		if hi <= lo {
			continue
		}
		sh := s.srcs[i]
		if sh == nil {
			panic(fmt.Sprintf("shard: block %d needs shard %d (%s), which is not local", blk, i, s.descs[i].File))
		}
		out = appendShardRange(out, sh, c, lo, hi, &tmp)
	}
	return out
}

// appendShardRange appends rows [lo, hi) of column c from one shard's own
// blocks onto out, reusing *tmp as decode scratch.
func appendShardRange(out []uint16, src binning.CodeSource, c, lo, hi int, tmp *[]uint16) []uint16 {
	br := src.BlockRows()
	for blk := lo / br; blk*br < hi; blk++ {
		codes := src.ColumnBlock(c, blk, *tmp)
		*tmp = codes
		a := max(lo-blk*br, 0)
		b := min(hi-blk*br, len(codes))
		out = append(out, codes[a:b]...)
	}
	return out
}

// Code returns one cell's code (random access through the owning shard).
func (s *Source) Code(c, r int) uint16 {
	i := s.shardAt(r)
	sh := s.srcs[i]
	if sh == nil {
		panic(fmt.Sprintf("shard: row %d lives in shard %d (%s), which is not local", r, i, s.descs[i].File))
	}
	return sh.Code(c, r-s.starts[i])
}

// SparseSource is a binning.CodeSource holding codes for an explicit row
// subset of a larger table: the coordinator-side overlay carrying the
// candidate rows a scatter/gather sample returned, so every downstream
// read of a scaled selection (tuple-vector gather, diversity re-rank,
// column vectors) resolves locally even when the rows' shards are remote.
// Reads outside the covered rows panic. Blocks are single rows, so the
// cursor-based consumers remain correct, if pointless, over it.
type SparseSource struct {
	rows, cols int
	idx        map[int]int32
	rowIDs     []int64
	codes      [][]uint16 // [col][position in rowIDs]
}

// NewSparseSource builds an overlay for the given global rows of a
// rows×cols table; codes[c][k] is column c's code for rowIDs[k].
func NewSparseSource(rows, cols int, rowIDs []int64, codes [][]uint16) (*SparseSource, error) {
	if len(codes) != cols {
		return nil, fmt.Errorf("shard: sparse source has %d code columns, table has %d", len(codes), cols)
	}
	idx := make(map[int]int32, len(rowIDs))
	for k, r := range rowIDs {
		if r < 0 || r >= int64(rows) {
			return nil, fmt.Errorf("shard: sparse source row %d out of range [0, %d)", r, rows)
		}
		if _, dup := idx[int(r)]; dup {
			return nil, fmt.Errorf("shard: sparse source row %d duplicated", r)
		}
		idx[int(r)] = int32(k)
	}
	for c := range codes {
		if len(codes[c]) != len(rowIDs) {
			return nil, fmt.Errorf("shard: sparse source column %d has %d codes for %d rows", c, len(codes[c]), len(rowIDs))
		}
	}
	return &SparseSource{rows: rows, cols: cols, idx: idx, rowIDs: rowIDs, codes: codes}, nil
}

// Covers reports whether global row r is present in the overlay.
func (s *SparseSource) Covers(r int) bool { _, ok := s.idx[r]; return ok }

// NumRows returns the full table's row count (the overlay addresses
// global row ids).
func (s *SparseSource) NumRows() int { return s.rows }

// NumCols returns the column count.
func (s *SparseSource) NumCols() int { return s.cols }

// BlockRows returns 1: each covered row is its own block.
func (s *SparseSource) BlockRows() int { return 1 }

// NumBlocks returns the full table's row count.
func (s *SparseSource) NumBlocks() int { return s.rows }

// ColumnBlock returns the single-row block blk (panics when the row is
// not covered).
func (s *SparseSource) ColumnBlock(c, blk int, scratch []uint16) []uint16 {
	if cap(scratch) < 1 {
		scratch = make([]uint16, 1)
	}
	scratch = scratch[:1]
	scratch[0] = s.Code(c, blk)
	return scratch
}

// Code returns one covered cell's code.
func (s *SparseSource) Code(c, r int) uint16 {
	k, ok := s.idx[r]
	if !ok {
		panic(fmt.Sprintf("shard: row %d is not covered by the sampled overlay", r))
	}
	return s.codes[c][k]
}
