package shard

import (
	"fmt"
	"os"
	"path/filepath"

	"subtab/internal/codestore"
)

// SplitSink implements binning.CodeSink over N codestore writers: streamed
// row chunks are routed to shards by a fixed row-boundary plan, so a
// table's codes export straight into their sharded layout in one pass
// (core.Model.UseShardedStores, cmd/subtab-datagen -shards). Each shard is
// written to its path plus ".tmp"; Close finalizes every store, renames
// them all into place and returns the shard map — a crash mid-export
// leaves only .tmp leftovers that codestore.Open rejects.
type SplitSink struct {
	paths     []string
	cuts      []int // cuts[i] is shard i's first global row; len(paths)+1 entries
	ws        []*codestore.Writer
	blockRows int
	cols      int
	pos       int // global rows consumed so far
	cur       int // shard owning row pos
}

// NewSplitSink starts a sink writing cols-wide shards to the given paths.
// cuts holds the row boundaries: shard i owns global rows
// [cuts[i], cuts[i+1]); it must have len(paths)+1 non-decreasing entries
// starting at 0 (empty shards are allowed). blockRows <= 0 uses
// codestore.DefaultBlockRows.
func NewSplitSink(paths []string, cuts []int, cols, blockRows int) (*SplitSink, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("shard: split sink needs at least one shard")
	}
	if len(cuts) != len(paths)+1 || cuts[0] != 0 {
		return nil, fmt.Errorf("shard: split plan needs %d boundaries starting at 0, got %v", len(paths)+1, cuts)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] < cuts[i-1] {
			return nil, fmt.Errorf("shard: split boundaries must be non-decreasing, got %v", cuts)
		}
	}
	if blockRows <= 0 {
		blockRows = codestore.DefaultBlockRows
	}
	s := &SplitSink{paths: paths, cuts: cuts, blockRows: blockRows, cols: cols}
	for _, p := range paths {
		w, err := codestore.Create(p+".tmp", cols, blockRows)
		if err != nil {
			s.Abort()
			return nil, err
		}
		s.ws = append(s.ws, w)
	}
	return s, nil
}

// AppendColumns routes one chunk of rows to the owning shard writers;
// chunk[c] holds column c's new codes. Rows past the plan's last boundary
// are an error — the plan is the contract.
func (s *SplitSink) AppendColumns(chunk [][]uint16) error {
	if len(chunk) != s.cols {
		return fmt.Errorf("shard: chunk has %d columns, sink has %d", len(chunk), s.cols)
	}
	n := 0
	if s.cols > 0 {
		n = len(chunk[0])
	}
	sub := make([][]uint16, s.cols)
	off := 0
	for off < n {
		for s.cur < len(s.ws) && s.pos >= s.cuts[s.cur+1] {
			s.cur++
		}
		if s.cur >= len(s.ws) {
			return fmt.Errorf("shard: row %d past the split plan's %d rows", s.pos, s.cuts[len(s.cuts)-1])
		}
		take := min(s.cuts[s.cur+1]-s.pos, n-off)
		for c := range sub {
			sub[c] = chunk[c][off : off+take]
		}
		if err := s.ws[s.cur].AppendColumns(sub); err != nil {
			return err
		}
		s.pos += take
		off += take
	}
	if n == 0 && s.pos == 0 {
		// A zero-row export still records the column count in every shard.
		for c := range sub {
			sub[c] = nil
		}
		for _, w := range s.ws {
			if err := w.AppendColumns(sub); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close finalizes every shard store, renames them into place and returns
// the shard map (base file names, per-shard geometry and checksums). The
// export must have delivered exactly the planned row count.
func (s *SplitSink) Close() (*Map, error) {
	if s.pos != s.cuts[len(s.cuts)-1] {
		s.Abort()
		return nil, fmt.Errorf("shard: export delivered %d rows, split plan has %d", s.pos, s.cuts[len(s.cuts)-1])
	}
	for i, w := range s.ws {
		if err := w.Close(); err != nil {
			s.ws[i] = nil
			s.Abort()
			return nil, fmt.Errorf("shard: finalizing shard %d: %w", i, err)
		}
		s.ws[i] = nil
	}
	for _, p := range s.paths {
		if err := os.Rename(p+".tmp", p); err != nil {
			s.Abort()
			return nil, err
		}
	}
	// Reopen each finalized store to record its identity checksum: the map
	// must describe the bytes on disk, not what the writer intended.
	m := &Map{Shards: make([]Desc, 0, len(s.paths))}
	for i, p := range s.paths {
		st, err := codestore.Open(p)
		if err != nil {
			return nil, fmt.Errorf("shard: reopening shard %d: %w", i, err)
		}
		m.Shards = append(m.Shards, Desc{
			File:      filepath.Base(p),
			Rows:      st.NumRows(),
			BlockRows: st.BlockRows(),
			Checksum:  st.Checksum(),
		})
		st.Close()
	}
	return m, nil
}

// Abort discards the sink: open writers are aborted and every shard's
// .tmp file is removed. Finalized shards a failed Close already renamed
// are left behind — they are complete stores and the next export renames
// over them.
func (s *SplitSink) Abort() {
	for i, w := range s.ws {
		if w != nil {
			w.Abort()
			s.ws[i] = nil
		}
	}
	for _, p := range s.paths {
		os.Remove(p + ".tmp")
	}
}
