package shard

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"

	"subtab/internal/colstore"
	"subtab/internal/table"
)

// Sharded raw columns: a table's paged column store (package colstore) is
// split at the same row cuts as its code shards, so a worker holding 1/Nth
// of the codes holds ~1/Nth of the column pages too. Cells presents the N
// stores as one table.CellSource; like Source it may be partial — shards
// owned by remote peers stay nil — and a coordinator installs a CellFetcher
// so gathers spanning remote shards resolve with one round trip per shard.

// CellFetcher fetches rendered cells for one remote shard: cols are source
// column indices, rows are shard-local, and the result is cells[col][row]
// (the shard-exec cells endpoint in the serving layer).
type CellFetcher func(shard int, cols []int, rows []int) ([][]string, error)

// Cells is a table.CellSource over N row-range column-store shards.
type Cells struct {
	descs  []Desc
	starts []int
	stores []*colstore.Store
	names  []string
	fetch  CellFetcher
}

// OpenCells opens the column-store shards described by descs (file names
// resolved against dir) as one cell source over columns named names. With
// allowMissing, shard files that do not exist load as nil — the coordinator
// mode — and gathers touching them need an installed CellFetcher; every
// shard that is present still validates its geometry, identity checksum and
// schema against the descriptor and names.
func OpenCells(dir string, descs []Desc, names []string, allowMissing bool) (*Cells, error) {
	if len(descs) == 0 {
		return nil, fmt.Errorf("shard: cell source needs at least one shard")
	}
	c := &Cells{
		descs:  append([]Desc(nil), descs...),
		starts: make([]int, len(descs)+1),
		stores: make([]*colstore.Store, len(descs)),
		names:  append([]string(nil), names...),
	}
	for i, d := range descs {
		c.starts[i+1] = c.starts[i] + d.Rows
	}
	for i, d := range descs {
		st, err := colstore.Open(filepath.Join(dir, d.File))
		if err != nil {
			if allowMissing && errors.Is(err, fs.ErrNotExist) {
				continue
			}
			c.Close()
			return nil, fmt.Errorf("shard: opening column shard %d (%s): %w", i, d.File, err)
		}
		if st.NumRows() != d.Rows || st.BlockRows() != d.BlockRows {
			st.Close()
			c.Close()
			return nil, fmt.Errorf("shard: column shard %d (%s) is %d rows × %d rows/block, map says %d × %d",
				i, d.File, st.NumRows(), st.BlockRows(), d.Rows, d.BlockRows)
		}
		if st.Checksum() != d.Checksum {
			st.Close()
			c.Close()
			return nil, fmt.Errorf("shard: column shard %d (%s) has checksum %08x, map says %08x",
				i, d.File, st.Checksum(), d.Checksum)
		}
		if st.NumCols() != len(names) {
			st.Close()
			c.Close()
			return nil, fmt.Errorf("shard: column shard %d (%s) has %d columns, table has %d",
				i, d.File, st.NumCols(), len(names))
		}
		for j, name := range names {
			if got := st.ColumnName(j); got != name {
				st.Close()
				c.Close()
				return nil, fmt.Errorf("shard: column shard %d (%s) column %d is %q, table has %q",
					i, d.File, j, got, name)
			}
		}
		c.stores[i] = st
	}
	return c, nil
}

// Close closes every opened shard store.
func (c *Cells) Close() error {
	var first error
	for _, st := range c.stores {
		if st == nil {
			continue
		}
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SetFetcher installs the remote-shard cell fetcher (the coordinator role).
// Install before the source starts serving gathers.
func (c *Cells) SetFetcher(f CellFetcher) { c.fetch = f }

// NumShards returns the shard count.
func (c *Cells) NumShards() int { return len(c.descs) }

// Desc returns shard i's descriptor.
func (c *Cells) Desc(i int) Desc { return c.descs[i] }

// ShardDescs returns a copy of all shard descriptors (modelio serializes
// them as the model's external column-store reference).
func (c *Cells) ShardDescs() []Desc { return append([]Desc(nil), c.descs...) }

// ShardStart returns the global row id of shard i's first row.
func (c *Cells) ShardStart(i int) int { return c.starts[i] }

// ShardAvailable reports whether shard i's store is held locally.
func (c *Cells) ShardAvailable(i int) bool { return c.stores[i] != nil }

// Complete reports whether every shard store is held locally.
func (c *Cells) Complete() bool {
	for _, st := range c.stores {
		if st == nil {
			return false
		}
	}
	return true
}

// NumRows returns the summed row count of all shards.
func (c *Cells) NumRows() int { return c.starts[len(c.starts)-1] }

// NumCols returns the table's column count.
func (c *Cells) NumCols() int { return len(c.names) }

// ColumnName returns the name of column i.
func (c *Cells) ColumnName(i int) string { return c.names[i] }

// shardOf locates the shard owning global row r.
func (c *Cells) shardOf(r int) int {
	return sort.Search(len(c.descs), func(i int) bool { return c.starts[i+1] > r })
}

// GatherCells implements table.CellSource for a single column.
func (c *Cells) GatherCells(col int, rows []int) ([]string, error) {
	out, err := c.GatherViewCells([]int{col}, rows)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// GatherViewCells gathers the cells of every requested column at the given
// global rows in one pass: rows are grouped by owning shard, local shards
// read their stores directly, and each remote shard costs one CellFetcher
// round trip covering all columns. The result is cells[col][row], aligned
// with the request order.
func (c *Cells) GatherViewCells(cols []int, rows []int) ([][]string, error) {
	for _, col := range cols {
		if col < 0 || col >= len(c.names) {
			return nil, fmt.Errorf("shard: column %d out of range [0, %d)", col, len(c.names))
		}
	}
	out := make([][]string, len(cols))
	for j := range out {
		out[j] = make([]string, len(rows))
	}
	// Group request positions by owning shard, preserving order within each
	// group so scatter-back is positional.
	byShard := make(map[int][]int)
	for pos, r := range rows {
		if r < 0 || r >= c.NumRows() {
			return nil, fmt.Errorf("shard: row %d out of range [0, %d)", r, c.NumRows())
		}
		s := c.shardOf(r)
		byShard[s] = append(byShard[s], pos)
	}
	for s, positions := range byShard {
		local := make([]int, len(positions))
		for i, pos := range positions {
			local[i] = rows[pos] - c.starts[s]
		}
		var cells [][]string
		if st := c.stores[s]; st != nil {
			cells = make([][]string, len(cols))
			for j, col := range cols {
				got, err := st.GatherCells(col, local)
				if err != nil {
					return nil, fmt.Errorf("shard: gathering cells from shard %d: %w", s, err)
				}
				cells[j] = got
			}
		} else {
			if c.fetch == nil {
				return nil, fmt.Errorf("shard: shard %d's column pages are remote and no cell fetcher is installed", s)
			}
			got, err := c.fetch(s, cols, local)
			if err != nil {
				return nil, fmt.Errorf("shard: fetching cells from shard %d: %w", s, err)
			}
			if len(got) != len(cols) {
				return nil, fmt.Errorf("shard: shard %d returned %d cell columns, want %d", s, len(got), len(cols))
			}
			for j := range got {
				if len(got[j]) != len(local) {
					return nil, fmt.Errorf("shard: shard %d returned %d cells for column %d, want %d", s, len(got[j]), cols[j], len(local))
				}
			}
			cells = got
		}
		for i, pos := range positions {
			for j := range cols {
				out[j][pos] = cells[j][i]
			}
		}
	}
	return out, nil
}

// MaterializeTable rebuilds the full typed table by concatenating every
// shard store's rows — the whole-table escape hatch behind query evaluation
// and incremental append. Every shard must be held locally (a coordinator
// cannot materialize remote rows; the operations that need this are
// rejected on coordinators before reaching here). Each shard store carries
// the source column's complete dictionary, so categorical codes in the
// concatenated table match the original table's exactly.
func (c *Cells) MaterializeTable(name string) (*table.Table, error) {
	if !c.Complete() {
		return nil, fmt.Errorf("shard: materializing %q needs every column shard locally", name)
	}
	out, err := c.stores[0].MaterializeTable(name)
	if err != nil {
		return nil, fmt.Errorf("shard: materializing %q: %w", name, err)
	}
	for i := 1; i < len(c.stores); i++ {
		part, err := c.stores[i].MaterializeTable(name)
		if err != nil {
			return nil, fmt.Errorf("shard: materializing %q: %w", name, err)
		}
		if out, err = out.AppendRows(part); err != nil {
			return nil, fmt.Errorf("shard: materializing %q: %w", name, err)
		}
	}
	return out, nil
}

// ShardGather reads rendered cells straight from one locally held shard:
// the worker half of the shard-exec cells protocol. rows are shard-local.
func (c *Cells) ShardGather(idx int, cols []int, rows []int) ([][]string, error) {
	if idx < 0 || idx >= len(c.stores) {
		return nil, fmt.Errorf("shard: shard %d out of range [0, %d)", idx, len(c.stores))
	}
	st := c.stores[idx]
	if st == nil {
		return nil, fmt.Errorf("shard: shard %d's column pages are not held locally", idx)
	}
	out := make([][]string, len(cols))
	for j, col := range cols {
		got, err := st.GatherCells(col, rows)
		if err != nil {
			return nil, err
		}
		out[j] = got
	}
	return out, nil
}
