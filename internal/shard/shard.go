// Package shard splits a table's on-disk code store (package codestore)
// into N row-range shards and runs one logical scaled selection across
// them. It has three parts:
//
//   - The shard map: an ordered list of shard descriptors (file name, row
//     count, block size, checksum) plus a checksummed map-file codec, so a
//     sharded table's layout is itself a verifiable artifact.
//   - Source: a binning.CodeSource over N opened shard stores, presenting
//     them as one contiguous code matrix (virtual uniform blocks assembled
//     across shard boundaries). A Source may be partial — shards owned by
//     remote peers stay nil — and reports availability per block so
//     attach-time validation and local scans skip what is not here.
//   - The scatter/gather sampler protocol (sample.go, wire.go): both
//     phases of core's stratified min-hash reservoir merge associatively,
//     so per-shard Scan summaries — computed by local goroutines or remote
//     subtab-server peers — combine into exactly the sample a single
//     full-table scan would produce. Bit-identical selection is the
//     contract, pinned by never-recording golden tests.
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// MapVersion is the current shard-map file format version.
const MapVersion uint16 = 1

var (
	mapMagic    = [8]byte{'S', 'U', 'B', 'T', 'A', 'B', 'S', 'H'}
	mapEndMagic = [8]byte{'S', 'U', 'B', 'T', 'A', 'B', 'S', 'E'}
)

// ErrCorrupt marks a damaged or truncated shard-map file.
var ErrCorrupt = errors.New("shard: corrupt shard map")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Desc describes one shard: the base name of its codestore file, the rows
// it owns (shard i holds global rows [sum of previous Rows, +Rows)), its
// block granularity and the store's identity checksum (the codestore
// footer CRC), which pins the pairing between a map and its files.
type Desc struct {
	File      string
	Rows      int
	BlockRows int
	Checksum  uint32
}

// Map is an ordered shard list: the on-disk layout of one logical table.
type Map struct {
	Shards []Desc
}

// TotalRows returns the summed row count of all shards.
func (m *Map) TotalRows() int {
	n := 0
	for _, d := range m.Shards {
		n += d.Rows
	}
	return n
}

// Starts returns the cumulative global start row of each shard, with one
// trailing entry holding the total row count (len(Shards)+1 entries).
func (m *Map) Starts() []int {
	starts := make([]int, len(m.Shards)+1)
	for i, d := range m.Shards {
		starts[i+1] = starts[i] + d.Rows
	}
	return starts
}

// WriteFile writes the shard map to path (temp file + rename, so a crash
// cannot leave a plausible partial map). Layout, little-endian:
//
//	"SUBTABSH" magic · u16 version · u32 shard count ·
//	per shard: u32 name len · name bytes · u64 rows · u32 blockRows ·
//	u32 checksum · u32 CRC-32C over all preceding bytes · "SUBTABSE"
func WriteFile(path string, m *Map) error {
	for i, d := range m.Shards {
		if d.File == "" || d.File != filepath.Base(d.File) {
			return fmt.Errorf("shard: map entry %d has invalid file name %q", i, d.File)
		}
		if d.Rows < 0 || d.BlockRows <= 0 {
			return fmt.Errorf("shard: map entry %d has impossible geometry (%d rows, %d rows/block)", i, d.Rows, d.BlockRows)
		}
	}
	buf := make([]byte, 0, 64+48*len(m.Shards))
	buf = append(buf, mapMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, MapVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Shards)))
	for _, d := range m.Shards {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d.File)))
		buf = append(buf, d.File...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.Rows))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.BlockRows))
		buf = binary.LittleEndian.AppendUint32(buf, d.Checksum)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	buf = append(buf, mapEndMagic[:]...)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadFile reads and verifies a shard map written by WriteFile.
func ReadFile(path string) (*Map, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeMap(raw)
}

func decodeMap(raw []byte) (*Map, error) {
	const fixed = 8 + 2 + 4 + 4 + 8 // magic + version + count + crc + end magic
	if len(raw) < fixed {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(raw))
	}
	if [8]byte(raw[:8]) != mapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if [8]byte(raw[len(raw)-8:]) != mapEndMagic {
		return nil, fmt.Errorf("%w: missing end magic (truncated?)", ErrCorrupt)
	}
	body := raw[: len(raw)-12 : len(raw)-12]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(raw[len(raw)-12:]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(raw[8:]); v != MapVersion {
		return nil, fmt.Errorf("%w: map version %d, this build reads version %d", ErrCorrupt, v, MapVersion)
	}
	n := int(binary.LittleEndian.Uint32(raw[10:]))
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("%w: %d shards", ErrCorrupt, n)
	}
	off := 14
	m := &Map{Shards: make([]Desc, 0, n)}
	for i := 0; i < n; i++ {
		if off+4 > len(body) {
			return nil, fmt.Errorf("%w: truncated entry %d", ErrCorrupt, i)
		}
		nameLen := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if nameLen < 0 || off+nameLen+16 > len(body) {
			return nil, fmt.Errorf("%w: truncated entry %d", ErrCorrupt, i)
		}
		d := Desc{File: string(body[off : off+nameLen])}
		off += nameLen
		d.Rows = int(binary.LittleEndian.Uint64(body[off:]))
		d.BlockRows = int(binary.LittleEndian.Uint32(body[off+8:]))
		d.Checksum = binary.LittleEndian.Uint32(body[off+12:])
		off += 16
		if d.File == "" || d.File != filepath.Base(d.File) || d.Rows < 0 || d.BlockRows <= 0 {
			return nil, fmt.Errorf("%w: invalid entry %d (%q, %d rows, %d rows/block)", ErrCorrupt, i, d.File, d.Rows, d.BlockRows)
		}
		m.Shards = append(m.Shards, d)
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-off)
	}
	return m, nil
}
