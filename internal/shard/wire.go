package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"subtab/internal/query"
)

// Checksummed request/response codec for the shard-exec HTTP endpoints
// (POST /shards/{table}/{idx}/sample). Both messages are little-endian
// with a magic, a version, and a trailing CRC-32C over everything before
// it, so a truncated or bit-flipped body fails decode instead of skewing
// a merge. The response carries, besides the Summary, the codes of every
// row the summary references — the coordinator finishes the whole
// selection from one round trip per shard.

// Version history: v1 was the unfiltered sampler; v2 adds predicate
// pushdown (SampleRequest.Preds, SampleResponse.Matched). Peers on
// different versions reject each other's frames outright — a mixed fleet
// fails loudly instead of silently sampling unfiltered.
const wireVersion uint16 = 2

var (
	reqMagic  = [4]byte{'S', 'B', 'S', 'Q'}
	respMagic = [4]byte{'S', 'B', 'S', 'R'}
)

// SampleRequest asks a peer to Scan one shard it owns. Checksum is the
// shard store's identity from the coordinator's map — a peer whose file
// disagrees rejects the request rather than contributing skewed minima.
// Preds, when non-empty, is a conjunction the peer evaluates shard-locally
// (code-level with residual cell checks) before sampling, so only matching
// rows contribute minima and candidates.
type SampleRequest struct {
	Checksum uint32
	Seed     int64
	Budget   int
	Cols     []int
	Preds    []query.Predicate
}

// SampleResponse is the peer's Summary plus the referenced rows' codes:
// Rows lists the summary's candidate rows (sorted, global ids) and
// Codes[c][k] is table column c's code for Rows[k]. Matched counts the
// shard's rows satisfying the request's predicates (all rows when the
// request carried none) — the coordinator sums it to gate scaled mode on
// the filtered population, not the table size.
type SampleResponse struct {
	Summary Summary
	Rows    []int64
	Codes   [][]uint16
	Matched int
}

// Marshal encodes the request.
func (r *SampleRequest) Marshal() []byte {
	buf := make([]byte, 0, 32+4*len(r.Cols))
	buf = append(buf, reqMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, wireVersion)
	buf = binary.LittleEndian.AppendUint32(buf, r.Checksum)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Seed))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Budget))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Cols)))
	for _, c := range r.Cols {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Preds)))
	for _, p := range r.Preds {
		buf = appendStr(buf, p.Col)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(p.Op))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Num))
		buf = appendStr(buf, p.Str)
	}
	return appendCRC(buf)
}

// UnmarshalSampleRequest decodes and verifies a request body.
func UnmarshalSampleRequest(raw []byte) (*SampleRequest, error) {
	body, err := checkFrame(raw, reqMagic, "sample request")
	if err != nil {
		return nil, err
	}
	d := &wireDecoder{buf: body, off: 6}
	r := &SampleRequest{
		Checksum: d.u32(),
		Seed:     int64(d.u64()),
		Budget:   int(int64(d.u64())),
	}
	nCols := int(d.u32())
	if nCols < 0 || nCols > 1<<24 {
		return nil, fmt.Errorf("%w: sample request with %d columns", ErrCorrupt, nCols)
	}
	r.Cols = make([]int, nCols)
	for i := range r.Cols {
		r.Cols[i] = int(int32(d.u32()))
	}
	nPreds := int(d.u32())
	if nPreds < 0 || nPreds > 1<<16 {
		return nil, fmt.Errorf("%w: sample request with %d predicates", ErrCorrupt, nPreds)
	}
	if nPreds > 0 {
		r.Preds = make([]query.Predicate, nPreds)
		for i := range r.Preds {
			r.Preds[i].Col = d.str()
			r.Preds[i].Op = query.Op(d.u16())
			r.Preds[i].Num = math.Float64frombits(d.u64())
			r.Preds[i].Str = d.str()
		}
	}
	if err := d.finish("sample request"); err != nil {
		return nil, err
	}
	return r, nil
}

// Marshal encodes the response.
func (r *SampleResponse) Marshal() []byte {
	size := 32 + 16*len(r.Summary.Strata) + 16*len(r.Summary.Cand) + 8*len(r.Rows)
	for _, col := range r.Codes {
		size += 2 * len(col)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, respMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, wireVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Summary.Strata)))
	for _, sm := range r.Summary.Strata {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(sm.Row))
		buf = binary.LittleEndian.AppendUint64(buf, sm.Hash)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Summary.Cand)))
	for _, hr := range r.Summary.Cand {
		buf = binary.LittleEndian.AppendUint64(buf, hr.Hash)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(hr.Row))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Rows)))
	for _, row := range r.Rows {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(row))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Codes)))
	for _, col := range r.Codes {
		for _, v := range col {
			buf = binary.LittleEndian.AppendUint16(buf, v)
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Matched))
	return appendCRC(buf)
}

// UnmarshalSampleResponse decodes and verifies a response body.
func UnmarshalSampleResponse(raw []byte) (*SampleResponse, error) {
	body, err := checkFrame(raw, respMagic, "sample response")
	if err != nil {
		return nil, err
	}
	d := &wireDecoder{buf: body, off: 6}
	r := &SampleResponse{}
	nStrata := int(d.u32())
	if nStrata < 0 || nStrata > 1<<28 || !d.has(16*nStrata) {
		return nil, fmt.Errorf("%w: sample response strata", ErrCorrupt)
	}
	r.Summary.Strata = make([]StratumMin, nStrata)
	for i := range r.Summary.Strata {
		r.Summary.Strata[i].Row = int64(d.u64())
		r.Summary.Strata[i].Hash = d.u64()
	}
	nCand := int(d.u32())
	if nCand < 0 || !d.has(16*nCand) {
		return nil, fmt.Errorf("%w: sample response candidates", ErrCorrupt)
	}
	r.Summary.Cand = make([]HashRow, nCand)
	for i := range r.Summary.Cand {
		r.Summary.Cand[i].Hash = d.u64()
		r.Summary.Cand[i].Row = int64(d.u64())
	}
	nRows := int(d.u32())
	if nRows < 0 || !d.has(8*nRows) {
		return nil, fmt.Errorf("%w: sample response rows", ErrCorrupt)
	}
	r.Rows = make([]int64, nRows)
	for i := range r.Rows {
		r.Rows[i] = int64(d.u64())
	}
	nCols := int(d.u32())
	if nCols < 0 || nCols > 1<<24 || !d.has(2*nCols*nRows) {
		return nil, fmt.Errorf("%w: sample response codes", ErrCorrupt)
	}
	r.Codes = make([][]uint16, nCols)
	for c := range r.Codes {
		col := make([]uint16, nRows)
		for i := range col {
			col[i] = d.u16()
		}
		r.Codes[c] = col
	}
	r.Matched = int(int64(d.u64()))
	if err := d.finish("sample response"); err != nil {
		return nil, err
	}
	return r, nil
}

// appendCRC appends the CRC-32C of buf to buf.
func appendCRC(buf []byte) []byte {
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

// appendStr appends a length-prefixed string (the wireDecoder.str framing).
func appendStr(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// checkFrame verifies length, magic, version and trailing CRC, returning
// the body (everything before the CRC).
func checkFrame(raw []byte, magic [4]byte, what string) ([]byte, error) {
	if len(raw) < 10 {
		return nil, fmt.Errorf("%w: %s of %d bytes", ErrCorrupt, what, len(raw))
	}
	if [4]byte(raw[:4]) != magic {
		return nil, fmt.Errorf("%w: %s has bad magic", ErrCorrupt, what)
	}
	body := raw[: len(raw)-4 : len(raw)-4]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(raw[len(raw)-4:]); got != want {
		return nil, fmt.Errorf("%w: %s checksum mismatch", ErrCorrupt, what)
	}
	if v := binary.LittleEndian.Uint16(raw[4:]); v != wireVersion {
		return nil, fmt.Errorf("%w: %s version %d, this build speaks version %d", ErrCorrupt, what, v, wireVersion)
	}
	return body, nil
}

// wireDecoder reads fixed-width fields with sticky bounds checking.
type wireDecoder struct {
	buf  []byte
	off  int
	fail bool
}

func (d *wireDecoder) has(n int) bool { return !d.fail && n >= 0 && d.off+n <= len(d.buf) }

func (d *wireDecoder) u16() uint16 {
	if !d.has(2) {
		d.fail = true
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *wireDecoder) u32() uint32 {
	if !d.has(4) {
		d.fail = true
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *wireDecoder) u64() uint64 {
	if !d.has(8) {
		d.fail = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *wireDecoder) str() string {
	n := int(d.u32())
	if n < 0 || !d.has(n) {
		d.fail = true
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// finish requires the body to be fully and exactly consumed.
func (d *wireDecoder) finish(what string) error {
	if d.fail || d.off != len(d.buf) {
		return fmt.Errorf("%w: %s has inconsistent length", ErrCorrupt, what)
	}
	return nil
}

var (
	cellsReqMagic  = [4]byte{'S', 'B', 'C', 'Q'}
	cellsRespMagic = [4]byte{'S', 'B', 'C', 'R'}
)

// CellsRequest asks a peer for rendered cells from one column-store shard
// it owns. Checksum is the shard's column-store identity from the
// coordinator's descriptors; Rows are shard-local row indices and Cols are
// source column indices.
type CellsRequest struct {
	Checksum uint32
	Cols     []int
	Rows     []int64
}

// CellsResponse carries the rendered cells: Cells[c][k] is the cell of
// request column Cols[c] at request row Rows[k], the exact bytes the
// resident table would render.
type CellsResponse struct {
	Cells [][]string
}

// Marshal encodes the request.
func (r *CellsRequest) Marshal() []byte {
	buf := make([]byte, 0, 24+4*len(r.Cols)+8*len(r.Rows))
	buf = append(buf, cellsReqMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, wireVersion)
	buf = binary.LittleEndian.AppendUint32(buf, r.Checksum)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Cols)))
	for _, c := range r.Cols {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Rows)))
	for _, row := range r.Rows {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(row))
	}
	return appendCRC(buf)
}

// UnmarshalCellsRequest decodes and verifies a request body.
func UnmarshalCellsRequest(raw []byte) (*CellsRequest, error) {
	body, err := checkFrame(raw, cellsReqMagic, "cells request")
	if err != nil {
		return nil, err
	}
	d := &wireDecoder{buf: body, off: 6}
	r := &CellsRequest{Checksum: d.u32()}
	nCols := int(d.u32())
	if nCols < 0 || nCols > 1<<24 || !d.has(4*nCols) {
		return nil, fmt.Errorf("%w: cells request with %d columns", ErrCorrupt, nCols)
	}
	r.Cols = make([]int, nCols)
	for i := range r.Cols {
		r.Cols[i] = int(int32(d.u32()))
	}
	nRows := int(d.u32())
	if nRows < 0 || !d.has(8*nRows) {
		return nil, fmt.Errorf("%w: cells request rows", ErrCorrupt)
	}
	r.Rows = make([]int64, nRows)
	for i := range r.Rows {
		r.Rows[i] = int64(d.u64())
	}
	if err := d.finish("cells request"); err != nil {
		return nil, err
	}
	return r, nil
}

// Marshal encodes the response.
func (r *CellsResponse) Marshal() []byte {
	size := 16
	for _, col := range r.Cells {
		size += 4
		for _, s := range col {
			size += 4 + len(s)
		}
	}
	buf := make([]byte, 0, size)
	buf = append(buf, cellsRespMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, wireVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Cells)))
	for _, col := range r.Cells {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(col)))
		for _, s := range col {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
			buf = append(buf, s...)
		}
	}
	return appendCRC(buf)
}

// UnmarshalCellsResponse decodes and verifies a response body.
func UnmarshalCellsResponse(raw []byte) (*CellsResponse, error) {
	body, err := checkFrame(raw, cellsRespMagic, "cells response")
	if err != nil {
		return nil, err
	}
	d := &wireDecoder{buf: body, off: 6}
	nCols := int(d.u32())
	if nCols < 0 || nCols > 1<<24 {
		return nil, fmt.Errorf("%w: cells response with %d columns", ErrCorrupt, nCols)
	}
	r := &CellsResponse{Cells: make([][]string, 0, min(nCols, 4096))}
	for c := 0; c < nCols; c++ {
		nCells := int(d.u32())
		if nCells < 0 || !d.has(4*nCells) {
			return nil, fmt.Errorf("%w: cells response column %d", ErrCorrupt, c)
		}
		col := make([]string, nCells)
		for i := range col {
			col[i] = d.str()
		}
		if d.fail {
			return nil, fmt.Errorf("%w: cells response column %d", ErrCorrupt, c)
		}
		r.Cells = append(r.Cells, col)
	}
	if err := d.finish("cells response"); err != nil {
		return nil, err
	}
	return r, nil
}
