package shard

import (
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"subtab/internal/binning"
	"subtab/internal/codestore"
)

// memSource is an in-memory CodeSource with a configurable block size, for
// exercising the virtual-block assembly without files.
type memSource struct {
	codes     [][]uint16 // [col][row]
	blockRows int
}

func (s *memSource) NumRows() int {
	if len(s.codes) == 0 {
		return 0
	}
	return len(s.codes[0])
}
func (s *memSource) NumCols() int   { return len(s.codes) }
func (s *memSource) BlockRows() int { return s.blockRows }
func (s *memSource) NumBlocks() int {
	return (s.NumRows() + s.blockRows - 1) / s.blockRows
}
func (s *memSource) ColumnBlock(c, blk int, scratch []uint16) []uint16 {
	lo := blk * s.blockRows
	hi := min(lo+s.blockRows, s.NumRows())
	return s.codes[c][lo:hi]
}
func (s *memSource) Code(c, r int) uint16 { return s.codes[c][r] }

func randCodes(rng *rand.Rand, cols, rows, bins int) [][]uint16 {
	codes := make([][]uint16, cols)
	for c := range codes {
		codes[c] = make([]uint16, rows)
		for r := range codes[c] {
			codes[c][r] = uint16(rng.Intn(bins))
		}
	}
	return codes
}

func TestMapRoundTrip(t *testing.T) {
	m := &Map{Shards: []Desc{
		{File: "t.codes.000", Rows: 100, BlockRows: 64, Checksum: 0xdeadbeef},
		{File: "t.codes.001", Rows: 0, BlockRows: 64, Checksum: 0},
		{File: "t.codes.002", Rows: 41, BlockRows: 64, Checksum: 7},
	}}
	path := filepath.Join(t.TempDir(), "t.shards")
	if err := WriteFile(path, m); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
	if got.TotalRows() != 141 {
		t.Fatalf("TotalRows = %d, want 141", got.TotalRows())
	}
	if want := []int{0, 100, 100, 141}; !reflect.DeepEqual(got.Starts(), want) {
		t.Fatalf("Starts = %v, want %v", got.Starts(), want)
	}
}

func TestMapRejectsBadNames(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.shards")
	for _, bad := range []Desc{
		{File: "", Rows: 1, BlockRows: 1},
		{File: "sub/dir.codes", Rows: 1, BlockRows: 1},
		{File: "ok.codes", Rows: -1, BlockRows: 1},
		{File: "ok.codes", Rows: 1, BlockRows: 0},
	} {
		if err := WriteFile(path, &Map{Shards: []Desc{bad}}); err == nil {
			t.Errorf("WriteFile accepted invalid descriptor %+v", bad)
		}
	}
}

func TestMapCorruption(t *testing.T) {
	m := &Map{Shards: []Desc{{File: "a.codes", Rows: 5, BlockRows: 4, Checksum: 9}}}
	path := filepath.Join(t.TempDir(), "t.shards")
	if err := WriteFile(path, m); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, mutate func([]byte) []byte) {
		buf := mutate(append([]byte(nil), raw...))
		if _, err := decodeMap(buf); err == nil {
			t.Errorf("%s: decode accepted corrupt map", name)
		}
	}
	check("truncated", func(b []byte) []byte { return b[:len(b)-9] })
	check("short", func(b []byte) []byte { return b[:10] })
	check("bit flip body", func(b []byte) []byte { b[20] ^= 0x40; return b })
	check("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	check("bad end magic", func(b []byte) []byte { b[len(b)-1] = 'X'; return b })
	// A flipped version byte must fail (CRC covers it), and a consistently
	// re-checksummed future version must fail on the version check.
	check("future version", func(b []byte) []byte {
		b[8] = 0xff
		return regenCRC(b)
	})
	// Trailing-bytes case: extra entry bytes inside a re-checksummed body.
	body := append([]byte(nil), raw[:len(raw)-12]...)
	body = append(body, 1, 2, 3)
	if _, err := decodeMap(regenTail(body)); err == nil {
		t.Error("decode accepted map with trailing body bytes")
	}
}

// regenTail appends a fresh CRC and end magic to body.
func regenTail(body []byte) []byte {
	out := append([]byte(nil), body...)
	out = append(out,
		byte(crcOf(body)), byte(crcOf(body)>>8), byte(crcOf(body)>>16), byte(crcOf(body)>>24))
	return append(out, mapEndMagic[:]...)
}

// regenCRC recomputes the trailing CRC of a full map buffer in place.
func regenCRC(b []byte) []byte {
	body := b[: len(b)-12 : len(b)-12]
	c := crcOf(body)
	b[len(b)-12] = byte(c)
	b[len(b)-11] = byte(c >> 8)
	b[len(b)-10] = byte(c >> 16)
	b[len(b)-9] = byte(c >> 24)
	return b
}

func crcOf(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

func TestSplitSinkGeometry(t *testing.T) {
	// 100 rows, 3 cols, cuts at 0/33/33/90/100: an empty shard and
	// block-unaligned boundaries (blockRows 16).
	const rows, cols = 100, 3
	rng := rand.New(rand.NewSource(1))
	codes := randCodes(rng, cols, rows, 40)

	dir := t.TempDir()
	paths := make([]string, 4)
	for i := range paths {
		paths[i] = filepath.Join(dir, "t.codes.00"+string(rune('0'+i)))
	}
	cuts := []int{0, 33, 33, 90, rows}
	sink, err := NewSplitSink(paths, cuts, cols, 16)
	if err != nil {
		t.Fatalf("NewSplitSink: %v", err)
	}
	// Feed in awkward chunk sizes that straddle the cuts.
	chunk := make([][]uint16, cols)
	for off := 0; off < rows; {
		n := min(29, rows-off)
		for c := range chunk {
			chunk[c] = codes[c][off : off+n]
		}
		if err := sink.AppendColumns(chunk); err != nil {
			t.Fatalf("AppendColumns at %d: %v", off, err)
		}
		off += n
	}
	m, err := sink.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	wantRows := []int{33, 0, 57, 10}
	if len(m.Shards) != 4 {
		t.Fatalf("map has %d shards, want 4", len(m.Shards))
	}
	for i, d := range m.Shards {
		if d.Rows != wantRows[i] {
			t.Fatalf("shard %d has %d rows, want %d", i, d.Rows, wantRows[i])
		}
		if d.File != filepath.Base(paths[i]) {
			t.Fatalf("shard %d file %q, want %q", i, d.File, filepath.Base(paths[i]))
		}
	}

	src, err := Open(dir, m, cols, false)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer src.Close()
	if !src.Complete() {
		t.Fatal("source should be complete")
	}
	if src.NumRows() != rows || src.NumCols() != cols {
		t.Fatalf("source is %dx%d, want %dx%d", src.NumRows(), src.NumCols(), rows, cols)
	}
	// Every cell must read back identically, via Code and via ColumnBlock.
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			if got := src.Code(c, r); got != codes[c][r] {
				t.Fatalf("Code(%d, %d) = %d, want %d", c, r, got, codes[c][r])
			}
		}
		var scratch []uint16
		r := 0
		for blk := 0; blk < src.NumBlocks(); blk++ {
			got := src.ColumnBlock(c, blk, scratch)
			scratch = got
			for _, v := range got {
				if v != codes[c][r] {
					t.Fatalf("col %d row %d via block %d: got %d, want %d", c, r, blk, v, codes[c][r])
				}
				r++
			}
		}
		if r != rows {
			t.Fatalf("col %d blocks covered %d rows, want %d", c, r, rows)
		}
	}

	// The map round-trips through its file codec and reopens.
	mapPath := filepath.Join(dir, "t.shards")
	if err := WriteFile(mapPath, m); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	m2, err := ReadFile(mapPath)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	src2, err := Open(dir, m2, cols, false)
	if err != nil {
		t.Fatalf("reopen from read map: %v", err)
	}
	src2.Close()
}

func TestSplitSinkZeroRows(t *testing.T) {
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "z.codes.000"), filepath.Join(dir, "z.codes.001")}
	sink, err := NewSplitSink(paths, []int{0, 0, 0}, 2, 8)
	if err != nil {
		t.Fatalf("NewSplitSink: %v", err)
	}
	if err := sink.AppendColumns([][]uint16{nil, nil}); err != nil {
		t.Fatalf("AppendColumns: %v", err)
	}
	m, err := sink.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	src, err := Open(dir, m, 2, false)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer src.Close()
	if src.NumRows() != 0 || src.NumCols() != 2 || src.NumBlocks() != 0 {
		t.Fatalf("zero-row source: %d rows, %d cols, %d blocks", src.NumRows(), src.NumCols(), src.NumBlocks())
	}
}

func TestOpenValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.codes.000")
	sink, err := NewSplitSink([]string{path}, []int{0, 10}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	chunk := [][]uint16{make([]uint16, 10), make([]uint16, 10)}
	if err := sink.AppendColumns(chunk); err != nil {
		t.Fatal(err)
	}
	m, err := sink.Close()
	if err != nil {
		t.Fatal(err)
	}

	bad := &Map{Shards: []Desc{m.Shards[0]}}
	bad.Shards[0].Checksum ^= 1
	if _, err := Open(dir, bad, 2, false); err == nil {
		t.Error("Open accepted a checksum mismatch")
	}
	bad = &Map{Shards: []Desc{m.Shards[0]}}
	bad.Shards[0].Rows = 11
	if _, err := Open(dir, bad, 2, false); err == nil {
		t.Error("Open accepted a row-count mismatch")
	}
	if _, err := Open(dir, m, 3, false); err == nil {
		t.Error("Open accepted a column-count mismatch")
	}

	missing := &Map{Shards: []Desc{m.Shards[0], {File: "gone.codes", Rows: 5, BlockRows: 4, Checksum: 1}}}
	if _, err := Open(dir, missing, 2, false); err == nil {
		t.Error("Open without allowMissing accepted a missing shard file")
	}
	src, err := Open(dir, missing, 2, true)
	if err != nil {
		t.Fatalf("Open with allowMissing: %v", err)
	}
	defer src.Close()
	if src.Complete() {
		t.Error("partial source claims to be complete")
	}
	if !src.ShardAvailable(0) || src.ShardAvailable(1) {
		t.Error("shard availability wrong")
	}
	// Blocks fully inside shard 0 are available; the boundary block is not.
	if !src.BlockAvailable(0) {
		t.Error("block 0 should be available (rows 0-3 are local)")
	}
	if src.BlockAvailable(2) {
		t.Error("block 2 spans the missing shard and should be unavailable")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Code on a missing shard did not panic")
			}
		}()
		src.Code(0, 12)
	}()
}

func TestSourceVirtualBlocks(t *testing.T) {
	// Shards with heterogeneous internal block sizes still present uniform
	// virtual blocks (the first shard's granularity).
	rng := rand.New(rand.NewSource(7))
	codes := randCodes(rng, 2, 57, 100)
	split := []int{0, 13, 13, 40, 57}
	var srcs []binning.CodeSource
	var counts []int
	for i := 0; i+1 < len(split); i++ {
		lo, hi := split[i], split[i+1]
		sub := make([][]uint16, 2)
		for c := range sub {
			sub[c] = codes[c][lo:hi]
		}
		srcs = append(srcs, &memSource{codes: sub, blockRows: 5 + i})
		counts = append(counts, hi-lo)
	}
	src, err := NewSource(srcs, counts, 2)
	if err != nil {
		t.Fatalf("NewSource: %v", err)
	}
	if src.BlockRows() != 5 {
		t.Fatalf("virtual BlockRows = %d, want 5", src.BlockRows())
	}
	for c := 0; c < 2; c++ {
		r := 0
		var scratch []uint16
		for blk := 0; blk < src.NumBlocks(); blk++ {
			got := src.ColumnBlock(c, blk, scratch)
			scratch = got
			for _, v := range got {
				if v != codes[c][r] {
					t.Fatalf("col %d row %d: got %d, want %d", c, r, v, codes[c][r])
				}
				r++
			}
		}
		if r != 57 {
			t.Fatalf("col %d covered %d rows, want 57", c, r)
		}
	}
}

func TestWireRoundTrip(t *testing.T) {
	req := &SampleRequest{Checksum: 0xabad1dea, Seed: -42, Budget: 256, Cols: []int{0, 3, 7}}
	gotReq, err := UnmarshalSampleRequest(req.Marshal())
	if err != nil {
		t.Fatalf("request round trip: %v", err)
	}
	if !reflect.DeepEqual(gotReq, req) {
		t.Fatalf("request mismatch:\n got %+v\nwant %+v", gotReq, req)
	}

	resp := &SampleResponse{
		Summary: Summary{
			Strata: []StratumMin{{Row: -1}, {Row: 5, Hash: 99}, {Row: 1 << 40, Hash: ^uint64(0)}},
			Cand:   []HashRow{{Hash: 3, Row: 12}, {Hash: 3, Row: 14}},
		},
		Rows:  []int64{5, 12, 14, 1 << 40},
		Codes: [][]uint16{{1, 2, 3, 4}, {9, 8, 7, 6}},
	}
	gotResp, err := UnmarshalSampleResponse(resp.Marshal())
	if err != nil {
		t.Fatalf("response round trip: %v", err)
	}
	if !reflect.DeepEqual(gotResp, resp) {
		t.Fatalf("response mismatch:\n got %+v\nwant %+v", gotResp, resp)
	}

	// Empty response (a zero-row shard) round-trips too, modulo nil vs
	// empty slices.
	empty := &SampleResponse{Summary: Summary{Strata: []StratumMin{}}}
	gotEmpty, err := UnmarshalSampleResponse(empty.Marshal())
	if err != nil {
		t.Fatalf("empty response round trip: %v", err)
	}
	if len(gotEmpty.Summary.Strata) != 0 || len(gotEmpty.Rows) != 0 {
		t.Fatalf("empty response decoded as %+v", gotEmpty)
	}
}

func TestWireCorruption(t *testing.T) {
	req := &SampleRequest{Checksum: 1, Seed: 2, Budget: 3, Cols: []int{4}}
	raw := req.Marshal()
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)-3] },
		"bit flip":  func(b []byte) []byte { b[9] ^= 1; return b },
		"magic":     func(b []byte) []byte { b[0] = 'x'; return b },
		"short":     func(b []byte) []byte { return b[:5] },
	} {
		buf := mutate(append([]byte(nil), raw...))
		if _, err := UnmarshalSampleRequest(buf); err == nil {
			t.Errorf("%s: request decode accepted corrupt frame", name)
		}
	}
	resp := &SampleResponse{Summary: Summary{Strata: []StratumMin{{Row: 1, Hash: 2}}}}
	rraw := resp.Marshal()
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)-1] },
		"bit flip":  func(b []byte) []byte { b[12] ^= 8; return b },
		"swapped":   func(b []byte) []byte { return append(b[:0:0], req.Marshal()...) },
	} {
		buf := mutate(append([]byte(nil), rraw...))
		if _, err := UnmarshalSampleResponse(buf); err == nil {
			t.Errorf("%s: response decode accepted corrupt frame", name)
		}
	}
}

func TestMergeStrataAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mk := func() []StratumMin {
		s := EmptyStrata(16)
		for i := range s {
			if rng.Intn(3) == 0 {
				continue // leave empty
			}
			s[i] = StratumMin{Row: int64(rng.Intn(1000)), Hash: uint64(rng.Intn(8))} // small hash domain forces ties
		}
		return s
	}
	for trial := 0; trial < 50; trial++ {
		a, b, c := mk(), mk(), mk()
		// (a ⊕ b) ⊕ c
		left := append([]StratumMin(nil), a...)
		MergeStrata(left, b)
		MergeStrata(left, c)
		// a ⊕ (b ⊕ c)
		bc := append([]StratumMin(nil), b...)
		MergeStrata(bc, c)
		right := append([]StratumMin(nil), a...)
		MergeStrata(right, bc)
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("trial %d: merge not associative\n left %v\nright %v", trial, left, right)
		}
		// Commutative too.
		ba := append([]StratumMin(nil), b...)
		MergeStrata(ba, a)
		ab := append([]StratumMin(nil), a...)
		MergeStrata(ab, b)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: merge not commutative", trial)
		}
	}
}

func TestCandidateRows(t *testing.T) {
	s := Summary{
		Strata: []StratumMin{{Row: 7, Hash: 1}, {Row: -1}, {Row: 2, Hash: 3}},
		Cand:   []HashRow{{Hash: 1, Row: 7}, {Hash: 2, Row: 9}},
	}
	if got, want := s.CandidateRows(), []int64{2, 7, 9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("CandidateRows = %v, want %v", got, want)
	}
}

func TestSparseSource(t *testing.T) {
	src, err := NewSparseSource(100, 2, []int64{5, 50, 99}, [][]uint16{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatalf("NewSparseSource: %v", err)
	}
	if src.NumRows() != 100 || src.NumCols() != 2 || src.BlockRows() != 1 || src.NumBlocks() != 100 {
		t.Fatal("sparse source geometry wrong")
	}
	if !src.Covers(50) || src.Covers(51) {
		t.Fatal("Covers wrong")
	}
	if src.Code(1, 50) != 5 {
		t.Fatalf("Code(1, 50) = %d, want 5", src.Code(1, 50))
	}
	if got := src.ColumnBlock(0, 99, nil); len(got) != 1 || got[0] != 3 {
		t.Fatalf("ColumnBlock(0, 99) = %v, want [3]", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Code on an uncovered row did not panic")
			}
		}()
		src.Code(0, 51)
	}()
	if _, err := NewSparseSource(10, 1, []int64{3, 3}, [][]uint16{{1, 2}}); err == nil {
		t.Error("NewSparseSource accepted a duplicate row")
	}
	if _, err := NewSparseSource(10, 1, []int64{10}, [][]uint16{{1}}); err == nil {
		t.Error("NewSparseSource accepted an out-of-range row")
	}
}

// Keep codestore's default in view: the sink must fall back to it.
func TestSinkDefaultBlockRows(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "d.codes.000")
	sink, err := NewSplitSink([]string{p}, []int{0, 3}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.AppendColumns([][]uint16{{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	m, err := sink.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards[0].BlockRows != codestore.DefaultBlockRows {
		t.Fatalf("BlockRows = %d, want default %d", m.Shards[0].BlockRows, codestore.DefaultBlockRows)
	}
}
