package shard

import (
	"sort"

	"subtab/internal/binning"
)

// The scatter/gather sampler protocol. core's stratified min-hash
// reservoir has two phases, and both are associative merges over
// per-row (hash, row) pairs:
//
//   - Phase 1 keeps, per (column, bin) stratum, the candidate row with
//     the smallest hash (ties to the lower row id). A per-shard minimum
//     over the shard's row range merges with other shards' minima by the
//     same comparison — min is associative and commutative, so any
//     grouping of rows into shards yields the global minima.
//   - Phase 2 fills the remaining budget with the globally smallest
//     (hash, row) pairs among rows phase 1 did not pick. A shard cannot
//     know the global picked set, so it reports its budget smallest pairs
//     unfiltered. That is always enough: a row among the global
//     rem-smallest unpicked has fewer than picked + rem <= budget
//     shard-local rows ahead of it in (hash, row) order, so it sits
//     within its shard's top budget.
//
// Scan produces the per-shard Summary, MergeStrata folds phase-1 minima,
// and FinishSample replays core's exact pick order over the merged state
// — byte-identical to a single full-table scan, which the property sweep
// in core and the golden never-recording tests pin.

// StratumMin is the phase-1 state of one stratum: the minimal (hash, row)
// pair seen, or Row == -1 when the stratum is empty so far.
type StratumMin struct {
	Row  int64
	Hash uint64
}

// HashRow is one phase-2 candidate: a (hash, row) pair ordered
// lexicographically.
type HashRow struct {
	Hash uint64
	Row  int64
}

// Summary is one shard's contribution to a scatter/gather sample. Strata
// is indexed by global item id; Cand holds the shard's budget smallest
// (hash, row) pairs in ascending order. Rows are global ids throughout.
type Summary struct {
	Strata []StratumMin
	Cand   []HashRow
}

// RowHash maps (seed, global row) to a uniform 64-bit rank with a
// splitmix64-style finalizer. It is the one hash both sampler phases rank
// rows by — core.sampleHash delegates here, so shard-local scans and
// whole-table scans are rank-identical by construction.
func RowHash(seed int64, row int64) uint64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(row)*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// EmptyStrata returns the identity element of the strata merge: numItems
// empty minima.
func EmptyStrata(numItems int) []StratumMin {
	strata := make([]StratumMin, numItems)
	for i := range strata {
		strata[i].Row = -1
	}
	return strata
}

// Scan computes one shard's Summary: cs holds the shard's rows (local ids
// 0..NumRows-1, global ids offset by start), b supplies the item-id space
// (stratum s of column c's code v is b.ItemOf(c, 0)+v), and budget bounds
// the phase-2 candidate list. The scan streams cs block by block, exactly
// like core's single-store scan restricted to this row range.
func Scan(b *binning.Binned, cs binning.CodeSource, start int, cols []int, budget int, seed int64) Summary {
	return ScanFiltered(b, cs, start, cols, budget, seed, nil)
}

// ScanFiltered is Scan restricted to the rows whose local-id entry in keep
// is true (keep == nil keeps every row). Rows filtered out contribute to
// neither phase, so the merged result equals a single-store scan over just
// the matching rows: both sampler phases are per-row min/top-k reductions,
// and dropping a row from every shard's reduction is the same as dropping
// it from the global one.
func ScanFiltered(b *binning.Binned, cs binning.CodeSource, start int, cols []int, budget int, seed int64, keep []bool) Summary {
	strata := EmptyStrata(b.NumItems())
	n := 0
	if cs != nil {
		n = cs.NumRows()
	}
	if n == 0 {
		return Summary{Strata: strata}
	}
	rowH := make([]uint64, n)
	for i := range rowH {
		rowH[i] = RowHash(seed, int64(start+i))
	}
	matched := n
	if keep != nil {
		matched = 0
		for _, k := range keep {
			if k {
				matched++
			}
		}
	}
	if matched == 0 {
		return Summary{Strata: strata}
	}
	var scratch []uint16
	br := cs.BlockRows()
	for _, c := range cols {
		base := b.ItemOf(c, 0)
		for blk := 0; blk < cs.NumBlocks(); blk++ {
			codes := cs.ColumnBlock(c, blk, scratch)
			scratch = codes
			off := blk * br
			for i, code := range codes {
				if keep != nil && !keep[off+i] {
					continue
				}
				s := base + int32(code)
				r := int64(start + off + i)
				h := rowH[off+i]
				if strata[s].Row < 0 || h < strata[s].Hash || (h == strata[s].Hash && r < strata[s].Row) {
					strata[s] = StratumMin{Row: r, Hash: h}
				}
			}
		}
	}

	// Phase-2 candidates: the shard's budget smallest (hash, row) pairs,
	// via the same bounded max-heap core uses (no full sort of the shard).
	rem := min(budget, matched)
	heap := make([]HashRow, 0, rem)
	greater := func(a, b HashRow) bool {
		if a.Hash != b.Hash {
			return a.Hash > b.Hash
		}
		return a.Row > b.Row
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(heap) && greater(heap[l], heap[big]) {
				big = l
			}
			if r < len(heap) && greater(heap[r], heap[big]) {
				big = r
			}
			if big == i {
				return
			}
			heap[i], heap[big] = heap[big], heap[i]
			i = big
		}
	}
	for i := 0; i < n; i++ {
		if keep != nil && !keep[i] {
			continue
		}
		hr := HashRow{Hash: rowH[i], Row: int64(start + i)}
		if len(heap) < rem {
			heap = append(heap, hr)
			for j := len(heap) - 1; j > 0; {
				p := (j - 1) / 2
				if !greater(heap[j], heap[p]) {
					break
				}
				heap[j], heap[p] = heap[p], heap[j]
				j = p
			}
			continue
		}
		if greater(hr, heap[0]) {
			continue
		}
		heap[0] = hr
		siftDown(0)
	}
	sort.Slice(heap, func(i, j int) bool { return greater(heap[j], heap[i]) })
	return Summary{Strata: strata, Cand: heap}
}

// MergeStrata folds src's phase-1 minima into dst element-wise with the
// sampler's (hash, row) comparison. The merge is associative and
// commutative, so shard order cannot change the result.
func MergeStrata(dst, src []StratumMin) {
	for s := range dst {
		o := src[s]
		if o.Row < 0 {
			continue
		}
		if dst[s].Row < 0 || o.Hash < dst[s].Hash || (o.Hash == dst[s].Hash && o.Row < dst[s].Row) {
			dst[s] = o
		}
	}
}

// MergeSummaries folds per-shard summaries (zero-value entries — skipped
// shards — are ignored) into one merged strata array plus the
// concatenated candidate list, ready for FinishSample.
func MergeSummaries(sums []Summary, numItems int) ([]StratumMin, []HashRow) {
	strata := EmptyStrata(numItems)
	var cands []HashRow
	for _, sum := range sums {
		if sum.Strata == nil {
			continue
		}
		MergeStrata(strata, sum.Strata)
		cands = append(cands, sum.Cand...)
	}
	return strata, cands
}

// CandidateRows returns the sorted, duplicate-free global rows a summary
// references (stratum minima plus phase-2 candidates) — the rows whose
// codes a shard ships back so the coordinator can finish the selection
// without another round trip.
func (s Summary) CandidateRows() []int64 {
	seen := make(map[int64]bool, len(s.Cand)+len(s.Strata))
	out := make([]int64, 0, len(s.Cand)+len(s.Strata))
	for _, sm := range s.Strata {
		if sm.Row >= 0 && !seen[sm.Row] {
			seen[sm.Row] = true
			out = append(out, sm.Row)
		}
	}
	for _, hr := range s.Cand {
		if !seen[hr.Row] {
			seen[hr.Row] = true
			out = append(out, hr.Row)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FinishSample replays core's pick order over merged scatter state:
// phase 1 serves strata in ascending item order (skipping empties and
// rows already picked) up to budget, then phase 2 spends the remainder on
// the smallest unpicked (hash, row) candidates. The result is sorted
// ascending — byte-identical to the single-scan sampler's output.
func FinishSample(strata []StratumMin, cands []HashRow, budget int) []int {
	return FinishSampleBiased(strata, cands, budget, nil)
}

// FinishSampleBiased is FinishSample with session coverage bias: phase 1
// serves the strata whose item id covered reports false first (ascending),
// then the already-covered strata (ascending), so a drill-down's budget
// prefers rows representing strata the session has not yet shown. covered
// == nil restores the unbiased order exactly.
func FinishSampleBiased(strata []StratumMin, cands []HashRow, budget int, covered func(item int) bool) []int {
	picked := make(map[int64]bool, budget)
	sample := make([]int, 0, budget)
	passes := [2]bool{false, true}
	for _, wantCovered := range passes {
		if len(sample) >= budget {
			break
		}
		for s := range strata {
			if len(sample) >= budget {
				break
			}
			if covered != nil && covered(s) != wantCovered {
				continue
			}
			r := strata[s].Row
			if r < 0 || picked[r] {
				continue
			}
			picked[r] = true
			sample = append(sample, int(r))
		}
		if covered == nil {
			break
		}
	}
	if rem := budget - len(sample); rem > 0 {
		rest := make([]HashRow, 0, len(cands))
		for _, hr := range cands {
			if !picked[hr.Row] {
				rest = append(rest, hr)
			}
		}
		sort.Slice(rest, func(i, j int) bool {
			if rest[i].Hash != rest[j].Hash {
				return rest[i].Hash < rest[j].Hash
			}
			return rest[i].Row < rest[j].Row
		})
		if len(rest) > rem {
			rest = rest[:rem]
		}
		for _, hr := range rest {
			sample = append(sample, int(hr.Row))
		}
	}
	sort.Ints(sample)
	return sample
}
