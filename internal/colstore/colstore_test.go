// Property tests for the paged raw-column store, mirroring the codestore
// suite: chunk boundaries (rows exactly at / one past the block size), the
// empty store, crash/corruption detection (truncated tails, per-page
// checksums), and — the property the golden fingerprints depend on — cells
// rendered through the store being byte-identical to the resident table.
package colstore

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"subtab/internal/table"
)

// randTable builds a table of numeric and categorical columns with missing
// cells sprinkled in — every cell shape the page encoding distinguishes.
func randTable(rng *rand.Rand, name string, n int) *table.Table {
	t := table.New(name)
	nums := make([]float64, n)
	for r := range nums {
		switch rng.Intn(5) {
		case 0:
			nums[r] = math.NaN() // missing
		case 1:
			nums[r] = float64(rng.Intn(1000)) // integral (FormatNum's short form)
		default:
			nums[r] = rng.NormFloat64() * 100
		}
	}
	if err := t.AddColumn(&table.Column{Name: "num", Kind: table.Numeric, Nums: nums}); err != nil {
		panic(err)
	}
	d := table.NewDict()
	cats := make([]int32, n)
	for r := range cats {
		if rng.Intn(6) == 0 {
			cats[r] = -1 // missing
		} else {
			cats[r] = d.Code(fmt.Sprintf("cat-%d", rng.Intn(12)))
		}
	}
	if err := t.AddColumn(&table.Column{Name: "cat", Kind: table.Categorical, Cats: cats, Dict: d}); err != nil {
		panic(err)
	}
	more := make([]float64, n)
	for r := range more {
		more[r] = float64(r) / 7
	}
	if err := t.AddColumn(&table.Column{Name: "seq", Kind: table.Numeric, Nums: more}); err != nil {
		panic(err)
	}
	return t
}

// checkStore verifies every access path of an open store against the source
// table: geometry, per-cell rendering, random gathers, materialization and
// Verify.
func checkStore(t *testing.T, s *Store, src *table.Table) {
	t.Helper()
	n := src.NumRows()
	if s.NumRows() != n || s.NumCols() != src.NumCols() {
		t.Fatalf("store is %dx%d, source is %dx%d", s.NumRows(), s.NumCols(), n, src.NumCols())
	}
	wantBlocks := 0
	if n > 0 {
		wantBlocks = (n + s.BlockRows() - 1) / s.BlockRows()
	}
	if s.NumBlocks() != wantBlocks {
		t.Fatalf("store has %d blocks, want %d", s.NumBlocks(), wantBlocks)
	}
	for c := 0; c < src.NumCols(); c++ {
		if got, want := s.ColumnName(c), src.ColumnAt(c).Name; got != want {
			t.Fatalf("column %d named %q, want %q", c, got, want)
		}
		if got, want := s.ColumnKind(c), src.ColumnAt(c).Kind; got != want {
			t.Fatalf("column %d kind %v, want %v", c, got, want)
		}
		for r := 0; r < n; r++ {
			got, err := s.Cell(c, r)
			if err != nil {
				t.Fatalf("cell (%d,%d): %v", c, r, err)
			}
			if want := src.ColumnAt(c).CellString(r); got != want {
				t.Fatalf("cell (%d,%d): got %q want %q", c, r, got, want)
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20 && n > 0; i++ {
		c := rng.Intn(src.NumCols())
		rows := make([]int, 1+rng.Intn(10))
		for j := range rows {
			rows[j] = rng.Intn(n) // may repeat — GatherCells allows it
		}
		got, err := s.GatherCells(c, rows)
		if err != nil {
			t.Fatalf("gather col %d: %v", c, err)
		}
		for j, r := range rows {
			if want := src.ColumnAt(c).CellString(r); got[j] != want {
				t.Fatalf("gather col %d row %d: got %q want %q", c, r, got[j], want)
			}
		}
	}
	mat, err := s.MaterializeTable(src.Name)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if mat.NumRows() != n || mat.NumCols() != src.NumCols() {
		t.Fatalf("materialized table is %dx%d, want %dx%d", mat.NumRows(), mat.NumCols(), n, src.NumCols())
	}
	for c := 0; c < src.NumCols(); c++ {
		for r := 0; r < n; r++ {
			if got, want := mat.ColumnAt(c).CellString(r), src.ColumnAt(c).CellString(r); got != want {
				t.Fatalf("materialized cell (%d,%d): got %q want %q", c, r, got, want)
			}
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// TestChunkBoundaries sweeps row counts around the block size — the edge
// cases of block arithmetic: one block exactly, one row past it, multiples,
// a final short block, a single row, and the empty store.
func TestChunkBoundaries(t *testing.T) {
	const blockRows = 64
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, blockRows - 1, blockRows, blockRows + 1, 2 * blockRows, 2*blockRows + 17, 5 * blockRows} {
		src := randTable(rng, "t", n)
		path := filepath.Join(t.TempDir(), "s.cols")
		if err := WriteTable(path, src, blockRows); err != nil {
			t.Fatalf("n=%d: write: %v", n, err)
		}
		s, err := Open(path)
		if err != nil {
			t.Fatalf("n=%d: open: %v", n, err)
		}
		checkStore(t, s, src)
		s.Close()
	}
}

// TestShardRowRanges pins WriteTableRows: shards cut at arbitrary rows
// (including off-block-boundary cuts and an empty shard) must each render
// their slice of the table exactly, with the full dictionary so global codes
// resolve in every shard.
func TestShardRowRanges(t *testing.T) {
	const blockRows, n = 32, 145
	rng := rand.New(rand.NewSource(2))
	src := randTable(rng, "t", n)
	dir := t.TempDir()
	cuts := []int{0, 50, 50, 130, n} // second shard empty: [50, 50)
	for i := 0; i+1 < len(cuts); i++ {
		start, end := cuts[i], cuts[i+1]
		path := filepath.Join(dir, fmt.Sprintf("s.cols.%03d", i))
		if end == start {
			// A zero-row shard is legal on the write side but pointless to
			// open; the sharded layer never cuts one. Skip opening.
			continue
		}
		if err := WriteTableRows(path, src, start, end, blockRows); err != nil {
			t.Fatalf("shard [%d,%d): write: %v", start, end, err)
		}
		s, err := Open(path)
		if err != nil {
			t.Fatalf("shard [%d,%d): open: %v", start, end, err)
		}
		if s.NumRows() != end-start {
			t.Fatalf("shard [%d,%d) has %d rows", start, end, s.NumRows())
		}
		for c := 0; c < src.NumCols(); c++ {
			for r := start; r < end; r++ {
				got, err := s.Cell(c, r-start)
				if err != nil {
					t.Fatalf("shard [%d,%d) cell (%d,%d): %v", start, end, c, r-start, err)
				}
				if want := src.ColumnAt(c).CellString(r); got != want {
					t.Fatalf("shard [%d,%d) cell (%d,%d): got %q want %q", start, end, c, r-start, got, want)
				}
			}
		}
		s.Close()
	}
}

// TestPagedViewMatchesInlineView pins the property the golden fingerprints
// rest on: a view gathered through the store renders byte-identically to
// SubTableView on the resident table, across random row picks (repeats
// included) and column subsets.
func TestPagedViewMatchesInlineView(t *testing.T) {
	const blockRows, n = 16, 145
	rng := rand.New(rand.NewSource(3))
	src := randTable(rng, "t", n)
	path := filepath.Join(t.TempDir(), "s.cols")
	if err := WriteTable(path, src, blockRows); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	allCols := []int{0, 1, 2}
	for trial := 0; trial < 30; trial++ {
		rows := make([]int, 1+rng.Intn(12))
		for j := range rows {
			rows[j] = rng.Intn(n)
		}
		cols := append([]int(nil), allCols[:1+rng.Intn(len(allCols))]...)
		names := make([]string, len(cols))
		for j, c := range cols {
			names[j] = src.ColumnAt(c).Name
		}
		inline, err := src.SubTableView(rows, names)
		if err != nil {
			t.Fatal(err)
		}
		paged, err := table.GatherView(s, src.Name, rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := paged.Render(nil), inline.Render(nil); got != want {
			t.Fatalf("trial %d: paged view renders differently.\n got:\n%s\nwant:\n%s", trial, got, want)
		}
	}
}

// TestReopenAfterCrashTruncatedTail simulates a crashed writer: any
// truncation of a complete store must be rejected at Open (the index and
// footer are written last, so a partial file can never look complete).
func TestReopenAfterCrashTruncatedTail(t *testing.T) {
	const blockRows, n = 16, 100
	rng := rand.New(rand.NewSource(4))
	src := randTable(rng, "t", n)
	path := filepath.Join(t.TempDir(), "s.cols")
	if err := WriteTable(path, src, blockRows); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(full) - 1, len(full) - 8, len(full) - 12, len(full) / 2, headerSize + 1, 3} {
		trunc := filepath.Join(t.TempDir(), "t.cols")
		if err := os.WriteFile(trunc, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(trunc); err == nil {
			t.Fatalf("Open accepted a store truncated to %d of %d bytes", cut, len(full))
		} else if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrTruncated/ErrCorrupt", cut, err)
		}
	}
	// An abandoned writer (no Close) must likewise be rejected.
	abandoned := filepath.Join(t.TempDir(), "a.cols")
	w, err := Create(abandoned, src, blockRows)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendRows(0, n); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: the writer never reaches Close.
	if _, err := Open(abandoned); err == nil {
		t.Fatal("Open accepted an unfinalized store")
	}
	w.Abort()
}

// TestPerPageChecksum pins silent-corruption detection: a bit flip inside a
// data page passes Open (geometry and footer are intact) but fails Verify
// against the per-page checksum; a flip in the page index fails Open
// outright via the footer checksum.
func TestPerPageChecksum(t *testing.T) {
	const blockRows, n = 16, 100
	rng := rand.New(rand.NewSource(5))
	src := randTable(rng, "t", n)
	path := filepath.Join(t.TempDir(), "s.cols")
	if err := WriteTable(path, src, blockRows); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The data section starts after header + metaLen prefix + meta.
	metaLen := int(uint32(full[headerSize]) | uint32(full[headerSize+1])<<8 |
		uint32(full[headerSize+2])<<16 | uint32(full[headerSize+3])<<24)
	dataStart := headerSize + 4 + metaLen

	// Flip a bit in the middle of the data section.
	data := append([]byte(nil), full...)
	data[dataStart+37] ^= 0x04
	flipped := filepath.Join(t.TempDir(), "f.cols")
	if err := os.WriteFile(flipped, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(flipped)
	if err != nil {
		t.Fatalf("Open should defer data-page validation to Verify, got %v", err)
	}
	if err := s.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify on a bit-flipped page: got %v, want ErrCorrupt", err)
	}
	s.Close()

	// Flip a bit in the page index: the footer checksum covers it.
	idx := append([]byte(nil), full...)
	idx[len(idx)-16] ^= 0x01
	badIdx := filepath.Join(t.TempDir(), "i.cols")
	if err := os.WriteFile(badIdx, idx, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(badIdx); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on a flipped index: got %v, want ErrCorrupt", err)
	}
}

// TestWriteTableAtomic pins that WriteTable leaves no temp droppings.
func TestWriteTableAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.cols")
	src := randTable(rand.New(rand.NewSource(6)), "t", 50)
	if err := WriteTable(path, src, 16); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("store dir has %d entries after WriteTable, want 1", len(entries))
	}
}
