// Package colstore persists a table's raw displayed columns in a paged
// on-disk format, so a serving instance can render k×l sub-tables without
// keeping the whole raw table resident. It is the display-side sibling of
// internal/codestore (which pages the bin codes): same block discipline,
// same checksum discipline, same mmap-with-ReadAt-fallback reader.
//
// Layout (little-endian):
//
//	header:  "SUBTABPC" magic · u16 version · u32 cols · u64 rows ·
//	         u32 blockRows
//	meta:    u32 metaLen, then per column: u16 nameLen · name · u8 kind ·
//	         for categorical columns a dictionary page (u32 count, per
//	         string u32 len + bytes) holding the interned strings in code
//	         order
//	data:    block-major: for each block b, for each column c, the cells of
//	         rows [b*blockRows, min((b+1)*blockRows, rows)) in the fixed-
//	         width page encoding (numeric: float64 bits as u64; categorical:
//	         dictionary code as u32, missing -1 as 0xFFFFFFFF)
//	index:   one u32 CRC-32C per (block, column) page, in data order
//	footer:  u32 CRC-32C over header+meta+index · "SUBTABPE" end magic
//
// Every data offset is computable from the header and the column widths, so
// Open reads only header, meta and tail: it validates the magic, the
// geometry, the exact file length, the footer checksum and the end magic. A
// crashed writer leaves a file whose length cannot match its header (index
// and footer are written last), reported as ErrTruncated; silent bit rot
// inside a page is caught by Verify against the per-page checksums.
//
// Readers are safe for concurrent use: both the mmap and the ReadAt access
// paths are stateless apart from caller-owned scratch.
package colstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"runtime"

	"subtab/internal/table"
)

// Version is the current store format version.
const Version uint16 = 1

// DefaultBlockRows is the default rows-per-block granularity: 64Ki rows put
// a numeric column page at 512KiB — big enough to amortize I/O, small
// enough that gathering one row touches a bounded byte range.
const DefaultBlockRows = 1 << 16

var (
	magic    = [8]byte{'S', 'U', 'B', 'T', 'A', 'B', 'P', 'C'}
	endMagic = [8]byte{'S', 'U', 'B', 'T', 'A', 'B', 'P', 'E'}
)

// Sentinel errors.
var (
	// ErrTruncated marks a store whose file length does not match its
	// header — the signature of a crashed or interrupted writer.
	ErrTruncated = errors.New("colstore: truncated store file")
	// ErrCorrupt marks structural damage other than truncation (bad magic,
	// checksum mismatch, impossible geometry, out-of-range dictionary code).
	ErrCorrupt = errors.New("colstore: corrupt store file")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const headerSize = 8 + 2 + 4 + 8 + 4 // magic + version + cols + rows + blockRows

// Writer streams a table's rows into a store file. The schema (names,
// kinds, dictionaries) is fixed at Create; rows are appended in chunks and
// flushed block by block; Close finalizes the index and footer. A writer
// that never reaches Close leaves a file Open rejects.
type Writer struct {
	f         *os.File
	src       []*table.Column // schema (and dictionary) source
	widths    []int
	blockRows int
	rows      uint64
	meta      []byte   // encoded meta section (metaLen prefix included)
	buf       [][]byte // per-column pending page bytes (< blockRows rows)
	bufRows   int
	crcs      []uint32
	err       error
}

// Create starts a store file at path over the table's schema (<= 0
// blockRows uses DefaultBlockRows). The table supplies column names, kinds
// and categorical dictionaries; its cells are appended separately with
// AppendRows, so a shard export can write any row range. The file is
// truncated.
func Create(path string, t *table.Table, blockRows int) (*Writer, error) {
	cols := t.Columns()
	if len(cols) == 0 {
		return nil, fmt.Errorf("colstore: create: table %s has no columns", t.Name)
	}
	if !t.CellsResident() {
		return nil, fmt.Errorf("colstore: create: table %s is already paged", t.Name)
	}
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	meta := binary.LittleEndian.AppendUint32(nil, 0) // length patched below
	for _, c := range cols {
		if len(c.Name) > math.MaxUint16 {
			return nil, fmt.Errorf("colstore: create: column name %d bytes long", len(c.Name))
		}
		meta = binary.LittleEndian.AppendUint16(meta, uint16(len(c.Name)))
		meta = append(meta, c.Name...)
		meta = append(meta, byte(c.Kind))
		if c.Kind == table.Categorical {
			meta = table.AppendDictPage(meta, c.Dict.Strings())
		}
	}
	binary.LittleEndian.PutUint32(meta, uint32(len(meta)-4))
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		f: f, src: cols, blockRows: blockRows, meta: meta,
		widths: make([]int, len(cols)), buf: make([][]byte, len(cols)),
	}
	for i, c := range cols {
		w.widths[i] = table.PageCellWidth(c.Kind)
	}
	// The header is rewritten with the final row count on Close; writing a
	// placeholder (plus the fixed meta section) now keeps the data section
	// at a fixed offset.
	if err := w.writeHeader(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if _, err := f.WriteAt(meta, headerSize); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if _, err := f.Seek(headerSize+int64(len(meta)), io.SeekStart); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return w, nil
}

func (w *Writer) header() []byte {
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, magic[:]...)
	hdr = binary.LittleEndian.AppendUint16(hdr, Version)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(w.src)))
	hdr = binary.LittleEndian.AppendUint64(hdr, w.rows)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(w.blockRows))
	return hdr
}

func (w *Writer) writeHeader() error {
	_, err := w.f.WriteAt(w.header(), 0)
	return err
}

// AppendRows appends the source table's rows [start, start+n).
func (w *Writer) AppendRows(start, n int) error {
	if w.err != nil {
		return w.err
	}
	off := 0
	for off < n {
		take := min(w.blockRows-w.bufRows, n-off)
		for c, col := range w.src {
			w.buf[c] = col.AppendPage(w.buf[c], start+off, take)
		}
		w.bufRows += take
		off += take
		if w.bufRows == w.blockRows {
			if err := w.flushBlock(); err != nil {
				return err
			}
		}
	}
	w.rows += uint64(n)
	return nil
}

// flushBlock writes the buffered rows of every column as one block.
func (w *Writer) flushBlock() error {
	for c := range w.buf {
		w.crcs = append(w.crcs, crc32.Checksum(w.buf[c], crcTable))
		if _, err := w.f.Write(w.buf[c]); err != nil {
			return w.fail(err)
		}
		w.buf[c] = w.buf[c][:0]
	}
	w.bufRows = 0
	return nil
}

func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// Close flushes the final (possibly short) block, writes the page index,
// the footer checksum and the end magic, rewrites the header with the final
// row count, and syncs the file.
func (w *Writer) Close() error {
	if w.err != nil {
		w.f.Close()
		return w.err
	}
	if w.bufRows > 0 {
		if err := w.flushBlock(); err != nil {
			w.f.Close()
			return err
		}
	}
	tail := make([]byte, 0, 4*len(w.crcs))
	for _, crc := range w.crcs {
		tail = binary.LittleEndian.AppendUint32(tail, crc)
	}
	if _, err := w.f.Write(tail); err != nil {
		w.f.Close()
		return err
	}
	if err := w.writeHeader(); err != nil {
		w.f.Close()
		return err
	}
	// The footer checksum covers header + meta + index, so a store whose
	// geometry, schema or index was damaged after the fact fails Open even
	// at the right size.
	h := crc32.New(crcTable)
	h.Write(w.header())
	h.Write(w.meta)
	h.Write(tail)
	foot := binary.LittleEndian.AppendUint32(nil, h.Sum32())
	foot = append(foot, endMagic[:]...)
	if _, err := w.f.Write(foot); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Abort discards the writer and removes the partial file.
func (w *Writer) Abort() {
	path := w.f.Name()
	w.f.Close()
	os.Remove(path)
}

// WriteTable writes a complete store holding all of t's rows. The file is
// written to a temp name and renamed into place.
func WriteTable(path string, t *table.Table, blockRows int) error {
	return WriteTableRows(path, t, 0, t.NumRows(), blockRows)
}

// WriteTableRows writes a store holding t's rows [start, end) — a shard's
// slice of the table, with the full dictionaries so global codes resolve.
// The file is written to a temp name and renamed into place, so a crash
// never leaves a plausible-looking partial store at path.
func WriteTableRows(path string, t *table.Table, start, end, blockRows int) error {
	if start < 0 || end < start || end > t.NumRows() {
		return fmt.Errorf("colstore: rows [%d, %d) out of range for a %d-row table", start, end, t.NumRows())
	}
	tmp := path + ".tmp"
	w, err := Create(tmp, t, blockRows)
	if err != nil {
		return err
	}
	if err := w.AppendRows(start, end-start); err != nil {
		w.Abort()
		return err
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Store is an open, read-only paged column store. All methods are safe for
// concurrent use. Close releases the mapping/file handle; stores that are
// garbage-collected without Close release their resources via a runtime
// cleanup, so an evicted model cannot leak a mapping forever.
//
// Store implements table.CellSource: GatherCells renders the requested
// cells byte-identically to Column.CellString on the resident table.
type Store struct {
	path      string
	rows      int
	cols      int
	blockRows int
	nBlocks   int
	names     []string
	kinds     []table.Kind
	dicts     [][]string
	widths    []int
	prefix    []int64 // prefix[c] = sum of widths[0..c)
	rowWidth  int64
	dataStart int64
	crcs      []uint32
	checksum  uint32 // footer CRC: the store's identity for external refs
	reg       *region
	cleanup   runtime.Cleanup
}

// region owns the OS resources (mapping and/or file handle) so the runtime
// cleanup can release them without referencing the Store itself.
type region struct {
	data []byte   // non-nil when memory-mapped
	f    *os.File // non-nil when reading through the file
}

func (r *region) release() {
	if r.data != nil {
		munmap(r.data)
		r.data = nil
	}
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}

// readAt reads into p at off from the mapping or the file.
func (r *region) readAt(p []byte, off int64) error {
	if r.data != nil {
		if off < 0 || off+int64(len(p)) > int64(len(r.data)) {
			return io.ErrUnexpectedEOF
		}
		copy(p, r.data[off:])
		return nil
	}
	_, err := r.f.ReadAt(p, off)
	return err
}

// Open opens the store at path, memory-mapping it when the platform
// supports it and falling back to plain file reads otherwise. It validates
// the header, the schema section, the exact file length, the footer
// checksum and the end magic; a crashed writer's leftover fails with
// ErrTruncated.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := openFile(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

func openFile(f *os.File, path string) (*Store, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < headerSize+4 {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, size, headerSize+4)
	}
	hdr := make([]byte, headerSize+4)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, err
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(hdr[8:]); v != Version {
		return nil, fmt.Errorf("%w: store version %d, this build reads version %d", ErrCorrupt, v, Version)
	}
	cols := int(binary.LittleEndian.Uint32(hdr[10:]))
	rows64 := binary.LittleEndian.Uint64(hdr[14:])
	blockRows := int(binary.LittleEndian.Uint32(hdr[22:]))
	metaLen := int64(binary.LittleEndian.Uint32(hdr[headerSize:]))
	// Geometry caps double as overflow guards: with cols <= 2^24 and rows
	// <= 2^40 every size computation below stays inside int64, so a crafted
	// header cannot wrap the expected size around to match a small file.
	if cols <= 0 || cols > 1<<24 || blockRows <= 0 || rows64 > 1<<40 ||
		(rows64 > 0 && uint64(cols) > (1<<59)/rows64) {
		return nil, fmt.Errorf("%w: impossible geometry (%d cols, %d rows, %d rows/block)", ErrCorrupt, cols, rows64, blockRows)
	}
	if metaLen > size-int64(headerSize)-4 {
		return nil, fmt.Errorf("%w: schema section claims %d bytes past the file end", ErrTruncated, metaLen)
	}
	rows := int(rows64)
	meta := make([]byte, metaLen)
	if _, err := f.ReadAt(meta, headerSize+4); err != nil {
		return nil, err
	}
	names := make([]string, cols)
	kinds := make([]table.Kind, cols)
	dicts := make([][]string, cols)
	widths := make([]int, cols)
	prefix := make([]int64, cols)
	var rowWidth int64
	off := 0
	for c := 0; c < cols; c++ {
		if len(meta)-off < 2 {
			return nil, fmt.Errorf("%w: schema truncated at column %d", ErrCorrupt, c)
		}
		nameLen := int(binary.LittleEndian.Uint16(meta[off:]))
		off += 2
		if nameLen > len(meta)-off-1 {
			return nil, fmt.Errorf("%w: schema truncated inside column %d's name", ErrCorrupt, c)
		}
		names[c] = string(meta[off : off+nameLen])
		off += nameLen
		kind := table.Kind(meta[off])
		off++
		if kind != table.Numeric && kind != table.Categorical {
			return nil, fmt.Errorf("%w: column %q has kind %d", ErrCorrupt, names[c], int(kind))
		}
		kinds[c] = kind
		if kind == table.Categorical {
			strs, n, err := table.DecodeDictPage(meta[off:])
			if err != nil {
				return nil, fmt.Errorf("%w: column %q dictionary page: %v", ErrCorrupt, names[c], err)
			}
			dicts[c] = strs
			off += n
		}
		widths[c] = table.PageCellWidth(kind)
		prefix[c] = rowWidth
		rowWidth += int64(widths[c])
	}
	if off != len(meta) {
		return nil, fmt.Errorf("%w: schema section has %d trailing bytes", ErrCorrupt, len(meta)-off)
	}
	nBlocks := 0
	if rows > 0 {
		nBlocks = (rows + blockRows - 1) / blockRows
	}
	dataStart := int64(headerSize) + 4 + metaLen
	dataSize := int64(rows) * rowWidth
	indexSize := int64(nBlocks) * int64(cols) * 4
	want := dataStart + dataSize + indexSize + 4 + 8
	if size != want {
		return nil, fmt.Errorf("%w: %d bytes on disk, a %dx%d store needs %d (crashed writer?)", ErrTruncated, size, rows, cols, want)
	}
	tail := make([]byte, indexSize+4+8)
	if _, err := f.ReadAt(tail, dataStart+dataSize); err != nil {
		return nil, err
	}
	if [8]byte(tail[len(tail)-8:]) != endMagic {
		return nil, fmt.Errorf("%w: missing end magic (crashed writer?)", ErrTruncated)
	}
	h := crc32.New(crcTable)
	h.Write(hdr[:headerSize])
	h.Write(hdr[headerSize:]) // metaLen prefix
	h.Write(meta)
	h.Write(tail[:indexSize])
	footCRC := binary.LittleEndian.Uint32(tail[indexSize:])
	if h.Sum32() != footCRC {
		return nil, fmt.Errorf("%w: footer checksum mismatch", ErrCorrupt)
	}
	crcs := make([]uint32, nBlocks*cols)
	for i := range crcs {
		crcs[i] = binary.LittleEndian.Uint32(tail[i*4:])
	}
	reg := &region{}
	if data, err := mmapFile(f, size); err == nil {
		reg.data = data
		f.Close()
	} else {
		reg.f = f
	}
	st := &Store{
		path: path, rows: rows, cols: cols, blockRows: blockRows,
		nBlocks: nBlocks, names: names, kinds: kinds, dicts: dicts,
		widths: widths, prefix: prefix, rowWidth: rowWidth,
		dataStart: dataStart, crcs: crcs, checksum: footCRC, reg: reg,
	}
	st.cleanup = runtime.AddCleanup(st, func(r *region) { r.release() }, reg)
	return st, nil
}

// Close releases the mapping/file handle. Further reads fail or panic;
// Close is not safe to race with in-flight reads.
func (s *Store) Close() error {
	s.cleanup.Stop()
	s.reg.release()
	return nil
}

// Path returns the file the store was opened from.
func (s *Store) Path() string { return s.path }

// Checksum returns the store's footer CRC — a cheap identity covering the
// geometry, the schema (dictionaries included) and the per-page checksums,
// used by external references (modelio) to detect a swapped store.
func (s *Store) Checksum() uint32 { return s.checksum }

// Mapped reports whether the store is memory-mapped (false = ReadAt
// fallback).
func (s *Store) Mapped() bool { return s.reg.data != nil }

// NumRows returns the row count.
func (s *Store) NumRows() int { return s.rows }

// NumCols returns the column count.
func (s *Store) NumCols() int { return s.cols }

// BlockRows returns the rows-per-block granularity.
func (s *Store) BlockRows() int { return s.blockRows }

// NumBlocks returns the number of row blocks.
func (s *Store) NumBlocks() int { return s.nBlocks }

// ColumnName returns the name of column c.
func (s *Store) ColumnName(c int) string { return s.names[c] }

// ColumnKind returns the kind of column c.
func (s *Store) ColumnKind(c int) table.Kind { return s.kinds[c] }

// blockLen returns the row count of block blk (the last may be short).
func (s *Store) blockLen(blk int) int {
	if blk == s.nBlocks-1 {
		if r := s.rows - blk*s.blockRows; r < s.blockRows {
			return r
		}
	}
	return s.blockRows
}

// blockOff returns the file offset of column c's page of block blk. Blocks
// before blk are all full; within a block, column pages are contiguous in
// schema order.
func (s *Store) blockOff(c, blk int) int64 {
	off := s.dataStart + int64(blk)*int64(s.blockRows)*s.rowWidth
	return off + int64(s.blockLen(blk))*s.prefix[c]
}

// cellBytes reads the w raw bytes of cell (c, r) into b.
func (s *Store) cellBytes(b []byte, c, r int) error {
	blk := r / s.blockRows
	off := s.blockOff(c, blk) + int64(r-blk*s.blockRows)*int64(s.widths[c])
	return s.reg.readAt(b, off)
}

// Cell renders one cell — the exact bytes Column.CellString produces on the
// resident column. It errors on out-of-range coordinates or a dictionary
// code the schema's dictionary page does not cover (bit rot; see Verify).
func (s *Store) Cell(c, r int) (string, error) {
	if c < 0 || c >= s.cols || r < 0 || r >= s.rows {
		return "", fmt.Errorf("colstore: cell (%d,%d) out of range for a %dx%d store", c, r, s.rows, s.cols)
	}
	var b [8]byte
	if err := s.cellBytes(b[:s.widths[c]], c, r); err != nil {
		return "", fmt.Errorf("colstore: reading cell (%d,%d) of %s: %w", c, r, s.path, err)
	}
	if s.kinds[c] == table.Numeric {
		v := math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
		if math.IsNaN(v) {
			return "NaN", nil
		}
		return table.FormatNum(v), nil
	}
	code := int32(binary.LittleEndian.Uint32(b[:4]))
	if code < 0 {
		return "NaN", nil
	}
	if int(code) >= len(s.dicts[c]) {
		return "", fmt.Errorf("%w: cell (%d,%d) has dictionary code %d, dictionary holds %d", ErrCorrupt, c, r, code, len(s.dicts[c]))
	}
	return s.dicts[c][code], nil
}

// GatherCells renders column c's cells at the given rows, in order —
// table.CellSource's contract.
func (s *Store) GatherCells(c int, rows []int) ([]string, error) {
	out := make([]string, len(rows))
	for i, r := range rows {
		cell, err := s.Cell(c, r)
		if err != nil {
			return nil, err
		}
		out[i] = cell
	}
	return out, nil
}

// columnPage reads column c's raw page of block blk into scratch (grown as
// needed).
func (s *Store) columnPage(c, blk int, scratch []byte) ([]byte, error) {
	n := s.blockLen(blk) * s.widths[c]
	if cap(scratch) < n {
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	if err := s.reg.readAt(scratch, s.blockOff(c, blk)); err != nil {
		return nil, fmt.Errorf("colstore: reading page (col %d, block %d) of %s: %w", c, blk, s.path, err)
	}
	return scratch, nil
}

// MaterializeTable rebuilds the full typed table — a private copy for
// whole-table scans (query evaluation, append re-binning), the raw-cell
// analogue of binning.MaterializedCodes. The result shares nothing with the
// store and may be mutated freely.
func (s *Store) MaterializeTable(name string) (*table.Table, error) {
	out := table.New(name)
	var scratch []byte
	for c := 0; c < s.cols; c++ {
		col := &table.Column{Name: s.names[c], Kind: s.kinds[c]}
		if s.kinds[c] == table.Numeric {
			col.Nums = make([]float64, 0, s.rows)
		} else {
			col.Cats = make([]int32, 0, s.rows)
			col.Dict = table.DictFromStrings(s.dicts[c])
		}
		for blk := 0; blk < s.nBlocks; blk++ {
			page, err := s.columnPage(c, blk, scratch)
			if err != nil {
				return nil, err
			}
			scratch = page
			if s.kinds[c] == table.Numeric {
				for i := 0; i < len(page); i += 8 {
					col.Nums = append(col.Nums, math.Float64frombits(binary.LittleEndian.Uint64(page[i:])))
				}
			} else {
				dictLen := int32(len(s.dicts[c]))
				for i := 0; i < len(page); i += 4 {
					code := int32(binary.LittleEndian.Uint32(page[i:]))
					if code >= dictLen {
						return nil, fmt.Errorf("%w: column %q holds dictionary code %d, dictionary holds %d", ErrCorrupt, s.names[c], code, dictLen)
					}
					col.Cats = append(col.Cats, code)
				}
			}
		}
		if err := out.AddColumn(col); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Verify re-reads every page and checks it against the per-page checksums
// recorded at write time, returning the first damaged page. It is a full
// sequential read of the file — an explicit integrity pass, not something
// the render path pays per access.
func (s *Store) Verify() error {
	var buf []byte
	for blk := 0; blk < s.nBlocks; blk++ {
		for c := 0; c < s.cols; c++ {
			page, err := s.columnPage(c, blk, buf)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			buf = page
			if got, want := crc32.Checksum(page, crcTable), s.crcs[blk*s.cols+c]; got != want {
				return fmt.Errorf("%w: page (col %d, block %d) checksum %08x, recorded %08x", ErrCorrupt, c, blk, got, want)
			}
		}
	}
	return nil
}
