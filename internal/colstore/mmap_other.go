//go:build !unix

package colstore

import (
	"errors"
	"os"
)

// mmapFile is unavailable on this platform; Open falls back to ReadAt.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

func munmap(data []byte) {}
