//go:build unix

package colstore

import (
	"os"
	"syscall"
)

// mmapFile maps the whole file read-only. Callers fall back to ReadAt on
// any error (empty files cannot be mapped on most unixes, and some
// filesystems refuse mmap entirely).
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(data []byte) { _ = syscall.Munmap(data) }
