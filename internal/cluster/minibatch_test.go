package cluster

import (
	"testing"

	"subtab/internal/f32"
)

// matBlobs packs the blobs helper's output into a flat matrix (nPer points
// per cluster).
func matBlobs(nPer, k, dim int, seed int64) (f32.Matrix, []int) {
	pts, labels := blobs(nPer, k, dim, seed)
	return f32.FromRows(pts), labels
}

func TestMiniBatchKMeansRecoversBlobs(t *testing.T) {
	pts, truth := matBlobs(1250, 4, 8, 1)
	res := MiniBatchKMeans(pts, 4, MiniBatchOptions{Seed: 3})
	if res.K != 4 {
		t.Fatalf("K = %d, want 4", res.K)
	}
	// Every true blob must map to exactly one cluster and vice versa.
	blobToCluster := map[int]int{}
	for i, c := range res.Assign {
		if prev, ok := blobToCluster[truth[i]]; ok && prev != c {
			t.Fatalf("blob %d split across clusters %d and %d", truth[i], prev, c)
		} else if !ok {
			blobToCluster[truth[i]] = c
		}
	}
	if len(blobToCluster) != 4 {
		t.Fatalf("blobs collapsed: %v", blobToCluster)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != pts.R {
		t.Fatalf("sizes sum to %d, want %d", total, pts.R)
	}
}

// TestMiniBatchKMeansDeterministic pins the determinism contract: one fixed
// result per (pts, k, options), at any worker count.
func TestMiniBatchKMeansDeterministic(t *testing.T) {
	pts, _ := matBlobs(600, 5, 6, 2)
	ref := MiniBatchKMeans(pts, 5, MiniBatchOptions{Seed: 7})
	for _, workers := range []int{1, 2, 3, 8} {
		got := MiniBatchKMeans(pts, 5, MiniBatchOptions{Seed: 7, Workers: workers})
		if got.Iterations != ref.Iterations {
			t.Fatalf("workers=%d: iterations %d vs %d", workers, got.Iterations, ref.Iterations)
		}
		for i := range ref.Assign {
			if got.Assign[i] != ref.Assign[i] {
				t.Fatalf("workers=%d: assignment differs at point %d", workers, i)
			}
		}
		for c := range ref.Centers {
			for d := range ref.Centers[c] {
				if got.Centers[c][d] != ref.Centers[c][d] {
					t.Fatalf("workers=%d: center %d component %d differs bitwise", workers, c, d)
				}
			}
		}
	}
	// A different seed must explore a different trajectory.
	other := MiniBatchKMeans(pts, 5, MiniBatchOptions{Seed: 8})
	same := true
	for c := range ref.Centers {
		for d := range ref.Centers[c] {
			if other.Centers[c][d] != ref.Centers[c][d] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seed 7 and seed 8 produced identical centers; the seed is not reaching the batch draws")
	}
}

func TestMiniBatchKMeansDegenerate(t *testing.T) {
	if res := MiniBatchKMeans(f32.Matrix{}, 3, MiniBatchOptions{}); res.K != 0 {
		t.Fatalf("empty input: K = %d, want 0", res.K)
	}
	pts, _ := matBlobs(2, 2, 3, 3)
	res := MiniBatchKMeans(pts, 10, MiniBatchOptions{Seed: 1})
	if res.K != 4 {
		t.Fatalf("k >= n: K = %d, want 4 singletons", res.K)
	}
	for i, c := range res.Assign {
		if c != i || res.Sizes[i] != 1 {
			t.Fatalf("k >= n: point %d in cluster %d (size %d), want its own", i, c, res.Sizes[i])
		}
	}
}

// TestMiniBatchKMeansNoEmptyClusters checks the shared empty-cluster repair
// runs after the final assignment pass: with duplicate-heavy input, every
// cluster still ends non-empty.
func TestMiniBatchKMeansNoEmptyClusters(t *testing.T) {
	pts := f32.New(40, 4)
	for i := 0; i < 40; i++ {
		row := pts.Row(i)
		for d := range row {
			row[d] = float32(i % 2) // only two distinct points
		}
	}
	res := MiniBatchKMeans(pts, 4, MiniBatchOptions{Seed: 5})
	for c, s := range res.Sizes {
		if s == 0 {
			t.Fatalf("cluster %d left empty (sizes %v)", c, res.Sizes)
		}
	}
}

// TestRepresentativesDispersedMatrixMatchesSlices pins the matrix-native
// variant to the deprecated slice-of-slices entry point.
func TestRepresentativesDispersedMatrixMatchesSlices(t *testing.T) {
	pts, _ := matBlobs(200, 3, 5, 4)
	res := KMeansMatrix(pts, 3, Options{Seed: 2})
	want := res.RepresentativesDispersed(pts.Rows(), 8)
	got := res.RepresentativesDispersedMatrix(pts, 8)
	if len(want) != len(got) {
		t.Fatalf("lengths differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("representative %d differs: %d vs %d", i, want[i], got[i])
		}
	}
}
