package cluster

import (
	"math/rand"
	"testing"

	"subtab/internal/f32"
)

// spilledCopy writes pts into a file-backed slab so the source path (chunk
// reads, batch gathers) actually executes.
func spilledCopy(t *testing.T, pts f32.Matrix) *f32.Slab {
	t.Helper()
	slab, err := f32.NewSpillSlab(pts.R, pts.C, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { slab.Close() })
	for start := 0; start < pts.R; start += 100 {
		n := min(100, pts.R-start)
		if err := slab.WriteChunk(start, f32.Wrap(n, pts.C, pts.Data[start*pts.C:(start+n)*pts.C])); err != nil {
			t.Fatal(err)
		}
	}
	return slab
}

func clusterTestPoints(seed int64, n, dim, modes int) f32.Matrix {
	rng := rand.New(rand.NewSource(seed))
	pts := f32.New(n, dim)
	for i := 0; i < n; i++ {
		m := rng.Intn(modes)
		for d := 0; d < dim; d++ {
			pts.Row(i)[d] = float32(m) + float32(rng.NormFloat64())*0.1
		}
	}
	return pts
}

// TestMiniBatchSourceMatchesMatrix pins the out-of-core clustering
// guarantee: mini-batch k-means over a spilled slab must be bit-identical
// — assignments, centers, sizes, iteration count — to the matrix path over
// the same points, across sizes that cross the seeding-subsample and
// batch-size boundaries.
func TestMiniBatchSourceMatchesMatrix(t *testing.T) {
	for _, tc := range []struct{ n, k, batch int }{
		{30, 4, 16},   // n < batch
		{200, 6, 32},  // n < 4*batch (seeding over the whole input)
		{900, 8, 64},  // n > 4*batch (strided seeding subsample)
		{900, 1, 64},  // single cluster
		{10, 10, 16},  // k == n (identity clustering)
		{10, 30, 16},  // k > n
		{500, 12, 50}, // uneven chunking vs the 100-row write chunks
	} {
		pts := clusterTestPoints(int64(tc.n)*31+int64(tc.k), tc.n, 7, max(tc.k, 1))
		opt := MiniBatchOptions{BatchSize: tc.batch, MaxIter: 40, Seed: 99}
		want := MiniBatchKMeans(pts, tc.k, opt)
		got := MiniBatchKMeansSource(spilledCopy(t, pts), tc.k, opt)
		if got.K != want.K || got.Iterations != want.Iterations {
			t.Fatalf("n=%d k=%d: K/iters (%d,%d) vs (%d,%d)", tc.n, tc.k, got.K, got.Iterations, want.K, want.Iterations)
		}
		for i := range want.Assign {
			if got.Assign[i] != want.Assign[i] {
				t.Fatalf("n=%d k=%d: assign[%d] = %d, want %d", tc.n, tc.k, i, got.Assign[i], want.Assign[i])
			}
		}
		for c := range want.Centers {
			if want.Sizes[c] != got.Sizes[c] {
				t.Fatalf("n=%d k=%d: sizes[%d] = %d, want %d", tc.n, tc.k, c, got.Sizes[c], want.Sizes[c])
			}
			for d := range want.Centers[c] {
				if got.Centers[c][d] != want.Centers[c][d] {
					t.Fatalf("n=%d k=%d: center %d dim %d = %v, want %v (not bit-identical)",
						tc.n, tc.k, c, d, got.Centers[c][d], want.Centers[c][d])
				}
			}
		}
	}
}

// TestMiniBatchSourceEmptyRepair forces empty clusters (many duplicate
// points, k close to the distinct count) so the chunked repair scan runs,
// and pins it against the matrix repair.
func TestMiniBatchSourceEmptyRepair(t *testing.T) {
	const n, dim, k = 300, 5, 12
	rng := rand.New(rand.NewSource(5))
	pts := f32.New(n, dim)
	for i := 0; i < n; i++ {
		v := float32(rng.Intn(3)) // only 3 distinct points, k = 12
		for d := 0; d < dim; d++ {
			pts.Row(i)[d] = v
		}
	}
	opt := MiniBatchOptions{BatchSize: 32, MaxIter: 20, Seed: 11}
	want := MiniBatchKMeans(pts, k, opt)
	got := MiniBatchKMeansSource(spilledCopy(t, pts), k, opt)
	for i := range want.Assign {
		if got.Assign[i] != want.Assign[i] {
			t.Fatalf("assign[%d] = %d, want %d", i, got.Assign[i], want.Assign[i])
		}
	}
}

// TestMiniBatchSourceResidentFastPath pins that a resident slab delegates
// to the matrix implementation (same results, no spill machinery).
func TestMiniBatchSourceResidentFastPath(t *testing.T) {
	pts := clusterTestPoints(77, 400, 6, 5)
	opt := MiniBatchOptions{BatchSize: 64, MaxIter: 30, Seed: 7}
	want := MiniBatchKMeans(pts, 5, opt)
	got := MiniBatchKMeansSource(f32.WrapSlab(pts), 5, opt)
	for i := range want.Assign {
		if got.Assign[i] != want.Assign[i] {
			t.Fatalf("resident slab diverged at assign[%d]", i)
		}
	}
}
