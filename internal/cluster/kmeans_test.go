package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// blobs generates k well-separated Gaussian blobs.
func blobs(nPer, k, dim int, seed int64) ([][]float32, []int) {
	rng := rand.New(rand.NewSource(seed))
	var pts [][]float32
	var labels []int
	for c := 0; c < k; c++ {
		for i := 0; i < nPer; i++ {
			p := make([]float32, dim)
			for d := 0; d < dim; d++ {
				p[d] = float32(10*float64(c) + rng.NormFloat64()*0.5)
			}
			pts = append(pts, p)
			labels = append(labels, c)
		}
	}
	return pts, labels
}

func TestKMeansEmpty(t *testing.T) {
	res := KMeans(nil, 3, Options{Seed: 1})
	if res.K != 0 {
		t.Fatalf("K = %d", res.K)
	}
	if res.Representatives(nil) != nil {
		t.Fatal("representatives of empty should be nil")
	}
}

func TestKMeansKZero(t *testing.T) {
	pts, _ := blobs(5, 2, 2, 1)
	res := KMeans(pts, 0, Options{Seed: 1})
	if res.K != 0 {
		t.Fatalf("K = %d", res.K)
	}
}

func TestKMeansKGreaterThanN(t *testing.T) {
	pts, _ := blobs(2, 2, 2, 2) // 4 points
	res := KMeans(pts, 10, Options{Seed: 1})
	if res.K != 4 {
		t.Fatalf("K = %d, want 4", res.K)
	}
	for i, c := range res.Assign {
		if c != i {
			t.Fatalf("assign = %v", res.Assign)
		}
	}
	reps := res.Representatives(pts)
	if len(reps) != 4 {
		t.Fatalf("reps = %v", reps)
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	pts, labels := blobs(50, 3, 4, 3)
	res := KMeans(pts, 3, Options{Seed: 7})
	// Every true blob must map to exactly one cluster.
	blobToCluster := map[int]int{}
	for i, lbl := range labels {
		c := res.Assign[i]
		if prev, ok := blobToCluster[lbl]; ok {
			if prev != c {
				t.Fatalf("blob %d split across clusters %d and %d", lbl, prev, c)
			}
		} else {
			blobToCluster[lbl] = c
		}
	}
	if len(blobToCluster) != 3 {
		t.Fatalf("blob-cluster map = %v", blobToCluster)
	}
}

func TestAssignmentsAreNearest(t *testing.T) {
	pts, _ := blobs(30, 3, 3, 5)
	res := KMeans(pts, 3, Options{Seed: 5})
	for i, p := range pts {
		assigned := sqDist(p, res.Centers[res.Assign[i]])
		for c := range res.Centers {
			if d := sqDist(p, res.Centers[c]); d < assigned-1e-9 {
				t.Fatalf("point %d assigned to %d (d=%v) but %d is closer (d=%v)", i, res.Assign[i], assigned, c, d)
			}
		}
	}
}

func TestSizesConsistent(t *testing.T) {
	pts, _ := blobs(40, 2, 2, 6)
	res := KMeans(pts, 2, Options{Seed: 6})
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(pts) {
		t.Fatalf("sizes sum %d != n %d", total, len(pts))
	}
	counts := make([]int, res.K)
	for _, c := range res.Assign {
		counts[c]++
	}
	for c := range counts {
		if counts[c] != res.Sizes[c] {
			t.Fatalf("sizes = %v, recount = %v", res.Sizes, counts)
		}
	}
}

func TestRepresentativesAreClusterMembers(t *testing.T) {
	pts, _ := blobs(25, 4, 3, 8)
	res := KMeans(pts, 4, Options{Seed: 8})
	reps := res.Representatives(pts)
	if len(reps) != 4 {
		t.Fatalf("reps = %v", reps)
	}
	seen := map[int]bool{}
	for _, r := range reps {
		if r < 0 || r >= len(pts) {
			t.Fatalf("rep %d out of range", r)
		}
		if seen[r] {
			t.Fatalf("duplicate representative %d", r)
		}
		seen[r] = true
	}
	// Ordered by descending cluster size.
	for i := 1; i < len(reps); i++ {
		si := res.Sizes[res.Assign[reps[i-1]]]
		sj := res.Sizes[res.Assign[reps[i]]]
		if si < sj {
			t.Fatalf("representatives not size-ordered: %d < %d", si, sj)
		}
	}
}

func TestRepresentativeIsNearestToCenter(t *testing.T) {
	pts, _ := blobs(30, 2, 2, 9)
	res := KMeans(pts, 2, Options{Seed: 9})
	reps := res.Representatives(pts)
	for _, rep := range reps {
		c := res.Assign[rep]
		repD := sqDist(pts[rep], res.Centers[c])
		for i, p := range pts {
			if res.Assign[i] == c && sqDist(p, res.Centers[c]) < repD-1e-9 {
				t.Fatalf("rep %d not nearest to center %d (point %d closer)", rep, c, i)
			}
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	pts, _ := blobs(40, 3, 3, 10)
	a := KMeans(pts, 3, Options{Seed: 42})
	b := KMeans(pts, 3, Options{Seed: 42})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed must give same clustering")
		}
	}
}

func TestIdenticalPoints(t *testing.T) {
	pts := make([][]float32, 10)
	for i := range pts {
		pts[i] = []float32{1, 1}
	}
	res := KMeans(pts, 3, Options{Seed: 11})
	if res.K != 3 {
		t.Fatalf("K = %d", res.K)
	}
	if res.Inertia(pts) != 0 {
		t.Fatalf("inertia = %v", res.Inertia(pts))
	}
	reps := res.Representatives(pts)
	if len(reps) == 0 {
		t.Fatal("expected representatives")
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	pts, _ := blobs(30, 4, 3, 12)
	i1 := KMeans(pts, 1, Options{Seed: 12}).Inertia(pts)
	i4 := KMeans(pts, 4, Options{Seed: 12}).Inertia(pts)
	if i4 >= i1 {
		t.Fatalf("inertia k=4 (%v) should be < k=1 (%v)", i4, i1)
	}
	if i4 < 0 || math.IsNaN(i4) {
		t.Fatalf("inertia = %v", i4)
	}
}

func TestEmptyClusterRepair(t *testing.T) {
	// Two far blobs, k=3: one cluster would go empty without repair.
	pts, _ := blobs(20, 2, 2, 13)
	res := KMeans(pts, 3, Options{Seed: 13})
	for c, s := range res.Sizes {
		if s == 0 {
			t.Fatalf("cluster %d empty: sizes %v", c, res.Sizes)
		}
	}
}

func TestConvergesWithinMaxIter(t *testing.T) {
	pts, _ := blobs(100, 3, 8, 14)
	res := KMeans(pts, 3, Options{Seed: 14, MaxIter: 100})
	if res.Iterations >= 100 {
		t.Fatalf("did not converge: %d iterations", res.Iterations)
	}
}
