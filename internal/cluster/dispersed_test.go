package cluster

import (
	"testing"
)

func TestRepresentativesDispersedBasics(t *testing.T) {
	pts, _ := blobs(30, 3, 3, 21)
	res := KMeans(pts, 3, Options{Seed: 21})
	reps := res.RepresentativesDispersed(pts, 5)
	if len(reps) != 3 {
		t.Fatalf("reps = %v", reps)
	}
	seen := map[int]bool{}
	clusters := map[int]bool{}
	for _, r := range reps {
		if r < 0 || r >= len(pts) || seen[r] {
			t.Fatalf("bad reps %v", reps)
		}
		seen[r] = true
		clusters[res.Assign[r]] = true
	}
	if len(clusters) != 3 {
		t.Fatalf("reps must come from distinct clusters: %v", reps)
	}
}

func TestRepresentativesDispersedQOne(t *testing.T) {
	pts, _ := blobs(20, 2, 2, 22)
	res := KMeans(pts, 2, Options{Seed: 22})
	a := res.RepresentativesDispersed(pts, 1)
	b := res.Representatives(pts)
	if len(a) != len(b) {
		t.Fatalf("q=1 should match Representatives: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("q=1 should match Representatives: %v vs %v", a, b)
		}
	}
}

func TestRepresentativesDispersedEmpty(t *testing.T) {
	res := KMeans(nil, 2, Options{Seed: 1})
	if got := res.RepresentativesDispersed(nil, 4); got != nil {
		t.Fatalf("empty = %v", got)
	}
}

// Dispersion should never pick a rep far outside the central candidates:
// every rep is among its cluster's q nearest-to-centroid members.
func TestRepresentativesDispersedCentrality(t *testing.T) {
	pts, _ := blobs(40, 2, 3, 23)
	res := KMeans(pts, 2, Options{Seed: 23})
	const q = 5
	reps := res.RepresentativesDispersed(pts, q)
	for _, rep := range reps {
		c := res.Assign[rep]
		d := sqDist(pts[rep], res.Centers[c])
		closer := 0
		for i, p := range pts {
			if res.Assign[i] == c && sqDist(p, res.Centers[c]) < d {
				closer++
			}
		}
		if closer >= q {
			t.Fatalf("rep %d is not among its cluster's %d most central members", rep, q)
		}
	}
}
