package cluster

import (
	"math"
	"math/rand"

	"subtab/internal/f32"
)

// MiniBatchOptions configures MiniBatchKMeans.
type MiniBatchOptions struct {
	// BatchSize is the number of points drawn per iteration (default 1024,
	// capped at the point count).
	BatchSize int
	// MaxIter bounds mini-batch iterations (default 100).
	MaxIter int
	// Seed drives k-means++ initialization and the batch draws.
	Seed int64
	// Tolerance stops early when an iteration moves the centers less than
	// this fraction of the summed center norms at seeding (default 1e-3).
	// Two deliberate differences from the exact path's absolute 1e-4:
	// relative, because embedding scales vary per corpus and an absolute
	// threshold either never fires or fires instantly; looser, because
	// per-center learning rates decay like 1/count, so center movement
	// falls off hyperbolically and a tail-tight threshold would burn the
	// whole iteration budget after assignments stop changing.
	Tolerance float64
	// Workers bounds the parallelism of the assignment steps (default
	// GOMAXPROCS). Results are identical at any setting.
	Workers int
}

func (o MiniBatchOptions) withDefaults(n int) MiniBatchOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = 1024
	}
	if o.BatchSize > n {
		o.BatchSize = n
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-3
	}
	return o
}

// MiniBatchKMeans clusters the rows of pts into k clusters with mini-batch
// Lloyd iterations (Sculley, WWW 2010): each iteration draws a small random
// batch, assigns it against the current centers, and nudges each center
// toward its batch members with a per-center learning rate 1/count. The cost
// per iteration is O(batch·k·dim) instead of O(n·k·dim), which is what lets
// the selection pipeline cluster candidate samples of million-row tables
// interactively. After converging it runs one full assignment pass (plus the
// shared empty-cluster repair) over every point, so Result.Assign/Sizes
// describe the whole input and the representative selectors
// (RepresentativesMatrix, RepresentativesDispersedMatrix) work exactly as
// they do on the exact path. When k >= pts.R every point becomes its own
// cluster, as in KMeansMatrix.
//
// Determinism contract (same as KMeansMatrix): the rng draws, the center
// updates and the learning-rate counters are serial in batch order; the
// batch and final assignment scans fan out across workers but write disjoint
// slots and break ties toward the lowest center index, so the result is one
// fixed function of (pts, k, options) at any worker count.
func MiniBatchKMeans(pts f32.Matrix, k int, opt MiniBatchOptions) *Result {
	n := pts.R
	if n == 0 || k <= 0 {
		return &Result{K: 0}
	}
	if k >= n {
		centers := f32.New(n, pts.C)
		copy(centers.Data, pts.Data)
		res := &Result{K: n, Assign: make([]int, n), Centers: centers.Rows(), Sizes: make([]int, n)}
		for i := 0; i < n; i++ {
			res.Assign[i] = i
			res.Sizes[i] = 1
		}
		return res
	}
	opt = opt.withDefaults(n)
	dim := pts.C
	rng := rand.New(rand.NewSource(opt.Seed))
	workers := opt.Workers
	if workers <= 0 {
		workers = f32.Workers(n)
	}

	// Seeding: k-means++ over a deterministic strided subsample capped at
	// 4×BatchSize points. Seeding only needs to spread the initial centers
	// across the data's modes — the mini-batch iterations do the actual
	// refinement — and full k-means++ is O(k·n), which would rival the
	// entire iteration budget on large samples.
	centers := func() f32.Matrix {
		seedN := 4 * opt.BatchSize
		if n <= seedN {
			return seedPlusPlus(pts, k, rng, workers)
		}
		// i*n/seedN (not a floored stride) so the subsample spans the whole
		// input: a floor stride leaves the tail — up to half the rows —
		// invisible to seeding.
		sub := f32.New(seedN, dim)
		for i := 0; i < seedN; i++ {
			copy(sub.Row(i), pts.Row(i*n/seedN))
		}
		return seedPlusPlus(sub, k, rng, workers)
	}()
	prev := f32.New(k, dim)
	counts := make([]int, k) // per-center lifetime assignment counts
	batch := make([]int, opt.BatchSize)
	bAssign := make([]int, opt.BatchSize)

	// Convergence reference: Tolerance is relative to the seeded centers'
	// summed norms, so the stopping rule is invariant to embedding scale.
	movedRef := 0.0
	for c := 0; c < k; c++ {
		movedRef += math.Sqrt(f32.SqDist(centers.Row(c), prev.Row(c))) // prev is zero
	}
	if movedRef == 0 {
		movedRef = 1 // all-zero seeds: fall back to an absolute threshold
	}

	iter := 0
	for ; iter < opt.MaxIter; iter++ {
		// The batch draws are serial rng calls — part of the determinism
		// contract (sampling with replacement, as in the original algorithm).
		for j := range batch {
			batch[j] = rng.Intn(n)
		}
		// Assign the whole batch against a frozen center snapshot; each batch
		// slot is written by exactly one index, and the bounded scan plus
		// lowest-index tie-break reproduce the serial scan (see KMeansMatrix).
		f32.ParallelRange(len(batch), min(workers, f32.Workers(len(batch))), func(start, end int) {
			for j := start; j < end; j++ {
				p := pts.Row(batch[j])
				best := 0
				bestD := f32.SqDist(p, centers.Row(0))
				for c := 1; c < k; c++ {
					d := f32.SqDistBounded(p, centers.Row(c), bestD)
					if d < bestD || (d == bestD && c < best) {
						best, bestD = c, d
					}
				}
				bAssign[j] = best
			}
		})
		copy(prev.Data, centers.Data)
		// Center update, serial in batch order: each member pulls its center
		// toward itself with the per-center learning rate 1/count, so early
		// batches move centers coarsely and later ones fine-tune (the
		// convergence argument of the original algorithm).
		for j, i := range batch {
			c := bAssign[j]
			counts[c]++
			eta := 1 / float32(counts[c])
			cr := centers.Row(c)
			p := pts.Row(i)
			for d := 0; d < dim; d++ {
				cr[d] += eta * (p[d] - cr[d])
			}
		}
		moved := 0.0
		for c := 0; c < k; c++ {
			moved += math.Sqrt(f32.SqDist(centers.Row(c), prev.Row(c)))
		}
		if moved < opt.Tolerance*movedRef {
			iter++
			break
		}
	}

	// Final full-assignment pass: every point, against the converged centers.
	assign := make([]int, n)
	f32.ParallelRange(n, workers, func(start, end int) {
		for i := start; i < end; i++ {
			p := pts.Row(i)
			best := 0
			bestD := f32.SqDist(p, centers.Row(0))
			for c := 1; c < k; c++ {
				d := f32.SqDistBounded(p, centers.Row(c), bestD)
				if d < bestD || (d == bestD && c < best) {
					best, bestD = c, d
				}
			}
			assign[i] = best
		}
	})
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	repairEmptyClusters(pts, centers, assign, sizes)
	return &Result{K: k, Assign: assign, Centers: centers.Rows(), Sizes: sizes, Iterations: iter}
}
