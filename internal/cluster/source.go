package cluster

import (
	"math"
	"math/rand"

	"subtab/internal/f32"
)

// PointSource provides read access to n points for clustering without
// requiring them to be resident in one matrix — the contract that lets
// mini-batch k-means run over a spilled tuple-vector slab (f32.Slab
// implements it). Reads must be safe for concurrent use with distinct
// destinations.
type PointSource interface {
	Len() int
	Dim() int
	// Gather copies rows idx into dst (dst.R == len(idx)).
	Gather(dst f32.Matrix, idx []int)
	// ReadChunk copies rows [start, start+dst.R) into dst.
	ReadChunk(start int, dst f32.Matrix)
}

// matrixer is the fast-path escape hatch: sources that are really a
// resident matrix (an unspilled f32.Slab) expose it and skip every copy.
type matrixer interface {
	Matrix() (f32.Matrix, bool)
}

// sourceChunkRows is the scan granularity of the generic path; sources
// with an I/O-tuned preference (f32.Slab) override it.
const sourceChunkRows = 4096

func chunkRowsOf(src PointSource) int {
	if c, ok := src.(interface{ ChunkRows() int }); ok {
		if n := c.ChunkRows(); n > 0 {
			return n
		}
	}
	return sourceChunkRows
}

// MiniBatchKMeansSource is MiniBatchKMeans over a PointSource. For a
// resident source it delegates to the matrix implementation; for a spilled
// source it runs the same algorithm through chunked reads and batch
// gathers. Both paths perform identical arithmetic in identical order —
// batches are gathered before assignment, and SqDist over a copied row
// equals SqDist over the original — so the result is bit-identical to
// clustering the materialized matrix, a guarantee pinned by the
// equivalence tests.
func MiniBatchKMeansSource(src PointSource, k int, opt MiniBatchOptions) *Result {
	if m, ok := src.(matrixer); ok {
		if mat, resident := m.Matrix(); resident {
			return MiniBatchKMeans(mat, k, opt)
		}
	}
	n := src.Len()
	if n == 0 || k <= 0 {
		return &Result{K: 0}
	}
	dim := src.Dim()
	if k >= n {
		centers := f32.New(n, dim)
		src.ReadChunk(0, centers)
		res := &Result{K: n, Assign: make([]int, n), Centers: centers.Rows(), Sizes: make([]int, n)}
		for i := 0; i < n; i++ {
			res.Assign[i] = i
			res.Sizes[i] = 1
		}
		return res
	}
	opt = opt.withDefaults(n)
	rng := rand.New(rand.NewSource(opt.Seed))
	workers := opt.Workers
	if workers <= 0 {
		workers = f32.Workers(n)
	}

	// Seeding mirrors the matrix path: k-means++ over the whole input when
	// it is small, over the deterministic strided subsample otherwise. The
	// subsample is gathered into memory — it is capped at 4×BatchSize rows,
	// so seeding never materializes the spilled slab.
	centers := func() f32.Matrix {
		seedN := 4 * opt.BatchSize
		if n <= seedN {
			all := f32.New(n, dim)
			src.ReadChunk(0, all)
			return seedPlusPlus(all, k, rng, workers)
		}
		idx := make([]int, seedN)
		for i := range idx {
			idx[i] = i * n / seedN
		}
		sub := f32.New(seedN, dim)
		src.Gather(sub, idx)
		return seedPlusPlus(sub, k, rng, workers)
	}()
	prev := f32.New(k, dim)
	counts := make([]int, k)
	batch := make([]int, opt.BatchSize)
	bAssign := make([]int, opt.BatchSize)
	batchPts := f32.New(opt.BatchSize, dim)

	movedRef := 0.0
	for c := 0; c < k; c++ {
		movedRef += math.Sqrt(f32.SqDist(centers.Row(c), prev.Row(c))) // prev is zero
	}
	if movedRef == 0 {
		movedRef = 1
	}

	iter := 0
	for ; iter < opt.MaxIter; iter++ {
		for j := range batch {
			batch[j] = rng.Intn(n)
		}
		src.Gather(batchPts, batch)
		f32.ParallelRange(len(batch), min(workers, f32.Workers(len(batch))), func(start, end int) {
			for j := start; j < end; j++ {
				p := batchPts.Row(j)
				best := 0
				bestD := f32.SqDist(p, centers.Row(0))
				for c := 1; c < k; c++ {
					d := f32.SqDistBounded(p, centers.Row(c), bestD)
					if d < bestD || (d == bestD && c < best) {
						best, bestD = c, d
					}
				}
				bAssign[j] = best
			}
		})
		copy(prev.Data, centers.Data)
		for j := range batch {
			c := bAssign[j]
			counts[c]++
			eta := 1 / float32(counts[c])
			cr := centers.Row(c)
			p := batchPts.Row(j)
			for d := 0; d < dim; d++ {
				cr[d] += eta * (p[d] - cr[d])
			}
		}
		moved := 0.0
		for c := 0; c < k; c++ {
			moved += math.Sqrt(f32.SqDist(centers.Row(c), prev.Row(c)))
		}
		if moved < opt.Tolerance*movedRef {
			iter++
			break
		}
	}

	// Final full-assignment pass, chunked: every chunk's rows are read into
	// a private buffer and assigned in parallel; assignment slots are
	// disjoint, so the pass is deterministic at any worker count.
	assign := make([]int, n)
	chunkRows := chunkRowsOf(src)
	buf := f32.New(min(chunkRows, n), dim)
	for start := 0; start < n; start += chunkRows {
		cn := min(chunkRows, n-start)
		chunk := f32.Wrap(cn, dim, buf.Data[:cn*dim])
		src.ReadChunk(start, chunk)
		f32.ParallelRange(cn, min(workers, f32.Workers(cn)), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				p := chunk.Row(i)
				best := 0
				bestD := f32.SqDist(p, centers.Row(0))
				for c := 1; c < k; c++ {
					d := f32.SqDistBounded(p, centers.Row(c), bestD)
					if d < bestD || (d == bestD && c < best) {
						best, bestD = c, d
					}
				}
				assign[start+i] = best
			}
		})
	}
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	repairEmptyClustersSource(src, centers, assign, sizes)
	return &Result{K: k, Assign: assign, Centers: centers.Rows(), Sizes: sizes, Iterations: iter}
}

// repairEmptyClustersSource is repairEmptyClusters over a PointSource: the
// same serial index-order scan (first-found farthest wins on exact ties),
// read chunk by chunk.
func repairEmptyClustersSource(src PointSource, centers f32.Matrix, assign, sizes []int) {
	n := src.Len()
	chunkRows := chunkRowsOf(src)
	var buf f32.Matrix
	for c := range sizes {
		if sizes[c] > 0 {
			continue
		}
		if buf.Data == nil {
			buf = f32.New(min(chunkRows, n), src.Dim())
		}
		far, farD := -1, -1.0
		for start := 0; start < n; start += chunkRows {
			cn := min(chunkRows, n-start)
			chunk := f32.Wrap(cn, src.Dim(), buf.Data[:cn*src.Dim()])
			src.ReadChunk(start, chunk)
			for i := 0; i < cn; i++ {
				if sizes[assign[start+i]] <= 1 {
					continue
				}
				d := f32.SqDist(chunk.Row(i), centers.Row(assign[start+i]))
				if d > farD {
					far, farD = start+i, d
				}
			}
		}
		if far >= 0 {
			sizes[assign[far]]--
			assign[far] = c
			sizes[c] = 1
		}
	}
}
