// Package cluster implements k-means clustering (k-means++ seeding, Lloyd
// iterations, empty-cluster repair) and centroid-representative selection.
// It is the selection engine of Algorithm 2: row vectors and column vectors
// are clustered and the points nearest each centroid become the sub-table's
// rows and columns (the paper uses sklearn's KMeans for this).
package cluster

import (
	"math"
	"math/rand"
	"sort"
)

// Options configures k-means.
type Options struct {
	// MaxIter bounds Lloyd iterations (default 50).
	MaxIter int
	// Seed drives k-means++ initialization.
	Seed int64
	// Tolerance stops early when centroids move less than this (default 1e-4).
	Tolerance float64
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-4
	}
	return o
}

// Result holds a clustering.
type Result struct {
	K          int
	Assign     []int       // point index -> cluster
	Centers    [][]float32 // k centroids
	Sizes      []int       // points per cluster
	Iterations int
}

// KMeans clusters points into k clusters. Points must share one dimension.
// When k >= len(points) every point becomes its own cluster.
func KMeans(points [][]float32, k int, opt Options) *Result {
	opt = opt.withDefaults()
	n := len(points)
	if n == 0 || k <= 0 {
		return &Result{K: 0}
	}
	if k >= n {
		res := &Result{K: n, Assign: make([]int, n), Centers: make([][]float32, n), Sizes: make([]int, n)}
		for i, p := range points {
			res.Assign[i] = i
			res.Centers[i] = append([]float32(nil), p...)
			res.Sizes[i] = 1
		}
		return res
	}
	dim := len(points[0])
	rng := rand.New(rand.NewSource(opt.Seed))

	centers := seedPlusPlus(points, k, rng)
	assign := make([]int, n)
	sizes := make([]int, k)

	iter := 0
	for ; iter < opt.MaxIter; iter++ {
		// Assignment step.
		for i := range sizes {
			sizes[i] = 0
		}
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				d := sqDist(p, ctr)
				if d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			sizes[best]++
		}
		// Empty-cluster repair: seize the point farthest from its center.
		for c := 0; c < k; c++ {
			if sizes[c] > 0 {
				continue
			}
			far, farD := -1, -1.0
			for i, p := range points {
				if sizes[assign[i]] <= 1 {
					continue
				}
				d := sqDist(p, centers[assign[i]])
				if d > farD {
					far, farD = i, d
				}
			}
			if far >= 0 {
				sizes[assign[far]]--
				assign[far] = c
				sizes[c] = 1
			}
		}
		// Update step.
		next := make([][]float32, k)
		for c := range next {
			next[c] = make([]float32, dim)
		}
		counts := make([]int, k)
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				next[c][d] += p[d]
			}
		}
		moved := 0.0
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			inv := 1 / float32(counts[c])
			for d := 0; d < dim; d++ {
				next[c][d] *= inv
			}
			moved += math.Sqrt(sqDist(next[c], centers[c]))
			centers[c] = next[c]
		}
		if moved < opt.Tolerance {
			iter++
			break
		}
	}
	copy(sizes, make([]int, k))
	for i := range sizes {
		sizes[i] = 0
	}
	for _, c := range assign {
		sizes[c]++
	}
	return &Result{K: k, Assign: assign, Centers: centers, Sizes: sizes, Iterations: iter}
}

// Representatives returns, for each cluster, the index of the point nearest
// its centroid — the "centroid selection" of Algorithm 2. Clusters are
// ordered by descending size so that callers taking a prefix favour the
// dominant patterns; empty clusters are skipped.
func (r *Result) Representatives(points [][]float32) []int {
	if r.K == 0 {
		return nil
	}
	best := make([]int, r.K)
	bestD := make([]float64, r.K)
	for c := range best {
		best[c] = -1
		bestD[c] = math.Inf(1)
	}
	for i, p := range points {
		c := r.Assign[i]
		d := sqDist(p, r.Centers[c])
		if d < bestD[c] {
			best[c], bestD[c] = i, d
		}
	}
	// Order clusters by size (desc), stable by cluster id.
	order := make([]int, r.K)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // insertion sort; k is small
		for j := i; j > 0 && r.Sizes[order[j]] > r.Sizes[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	out := make([]int, 0, r.K)
	for _, c := range order {
		if best[c] >= 0 {
			out = append(out, best[c])
		}
	}
	return out
}

// RepresentativesDispersed selects one representative per cluster like
// Representatives, but among each cluster's q most-central members it picks
// the one farthest from the representatives already chosen (greedy max-min
// dispersion). Centrality keeps representatives typical of their pattern;
// the dispersion tie-break keeps the selected set visibly diverse — the two
// goals of the paper's centroid-based selection.
func (r *Result) RepresentativesDispersed(points [][]float32, q int) []int {
	if r.K == 0 {
		return nil
	}
	if q <= 1 {
		return r.Representatives(points)
	}
	// Per cluster: the q members nearest the centroid.
	type cand struct {
		idx int
		d   float64
	}
	cands := make([][]cand, r.K)
	for i, p := range points {
		c := r.Assign[i]
		cands[c] = append(cands[c], cand{i, sqDist(p, r.Centers[c])})
	}
	for c := range cands {
		sort.Slice(cands[c], func(x, y int) bool { return cands[c][x].d < cands[c][y].d })
		if len(cands[c]) > q {
			cands[c] = cands[c][:q]
		}
	}
	order := make([]int, r.K)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		if r.Sizes[order[x]] != r.Sizes[order[y]] {
			return r.Sizes[order[x]] > r.Sizes[order[y]]
		}
		return order[x] < order[y]
	})
	var out []int
	for _, c := range order {
		if len(cands[c]) == 0 {
			continue
		}
		best, bestScore := -1, -1.0
		for _, cd := range cands[c] {
			minD := math.Inf(1)
			for _, sel := range out {
				if d := sqDist(points[cd.idx], points[sel]); d < minD {
					minD = d
				}
			}
			if len(out) == 0 {
				minD = 0
			}
			// Prefer far-from-selected; break ties toward centrality.
			score := minD - 1e-9*cd.d
			if best < 0 || score > bestScore {
				best, bestScore = cd.idx, score
			}
		}
		if len(out) == 0 {
			best = cands[c][0].idx // first cluster: the most central member
		}
		out = append(out, best)
	}
	return out
}

// seedPlusPlus picks k initial centers with the k-means++ D² weighting.
func seedPlusPlus(points [][]float32, k int, rng *rand.Rand) [][]float32 {
	n := len(points)
	centers := make([][]float32, 0, k)
	first := points[rng.Intn(n)]
	centers = append(centers, append([]float32(nil), first...))
	dists := make([]float64, n)
	for i, p := range points {
		dists[i] = sqDist(p, centers[0])
	}
	for len(centers) < k {
		total := 0.0
		for _, d := range dists {
			total += d
		}
		var idx int
		if total == 0 {
			idx = rng.Intn(n) // all points identical to a center
		} else {
			target := rng.Float64() * total
			acc := 0.0
			idx = n - 1
			for i, d := range dists {
				acc += d
				if acc >= target {
					idx = i
					break
				}
			}
		}
		c := append([]float32(nil), points[idx]...)
		centers = append(centers, c)
		for i, p := range points {
			if d := sqDist(p, c); d < dists[i] {
				dists[i] = d
			}
		}
	}
	return centers
}

func sqDist(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// Inertia returns the total within-cluster squared distance — the k-means
// objective, useful for tests and ablations.
func (r *Result) Inertia(points [][]float32) float64 {
	if r.K == 0 {
		return 0
	}
	s := 0.0
	for i, p := range points {
		s += sqDist(p, r.Centers[r.Assign[i]])
	}
	return s
}
